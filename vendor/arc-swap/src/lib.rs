//! Offline stub of the `arc-swap` crate: the subset compaqt uses.
//!
//! [`ArcSwap<T>`] is an atomically swappable `Arc<T>` — a single-value
//! RCU cell. Readers call [`ArcSwap::load_full`] to clone the current
//! `Arc` without ever blocking; writers call [`ArcSwap::store`] /
//! [`ArcSwap::swap`] to publish a replacement.
//!
//! The real crate avoids contending on the `Arc`'s reference count with
//! hazard-pointer-style debt tracking. This stub uses a simpler
//! two-slot ping-pong protocol with the same *lock-free reader*
//! guarantee, which is the property compaqt's store hot path relies on:
//!
//! - Two slots each hold an `Option<Arc<T>>` plus a reader count; an
//!   atomic `current` index names the live slot.
//! - A reader increments the reader count of the slot it believes is
//!   current, re-checks `current`, clones the `Arc`, and decrements.
//!   The re-check makes the hold valid: a writer never mutates a slot
//!   while it is current, and never makes a slot current before its
//!   value write completes, so a validated hold pins an initialized,
//!   immutable `Option`. Readers never take a lock and retry at most
//!   once per concurrent swap.
//! - Writers serialize on a mutex, wait for the *spare* slot's readers
//!   to drain (they can only be stragglers from an earlier epoch, so
//!   the wait is bounded), install the new value there, then flip
//!   `current`. The previous value stays in its slot — still pinned
//!   for any late readers — until the next swap overwrites it, so at
//!   most one superseded generation is kept alive.
//!
//! Store-side writers in compaqt already serialize on a shard write
//! lock, so the writer mutex adds no contention in practice.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

use std::cell::UnsafeCell;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// One ping-pong slot: a value and the count of readers pinning it.
struct Slot<T> {
    readers: AtomicUsize,
    value: UnsafeCell<Option<Arc<T>>>,
}

impl<T> Slot<T> {
    fn new(value: Option<Arc<T>>) -> Self {
        Slot { readers: AtomicUsize::new(0), value: UnsafeCell::new(value) }
    }
}

/// An atomically swappable `Arc<T>`: lock-free reads, serialized writes.
pub struct ArcSwap<T> {
    slots: [Slot<T>; 2],
    /// Index of the live slot. The pointed-to slot always holds `Some`.
    current: AtomicUsize,
    /// Serializes writers; readers never touch it.
    writer: Mutex<()>,
}

// Safety: the slot protocol above confines mutation of each
// `UnsafeCell` to one writer at a time (the mutex) while no reader
// pins the slot, and readers only clone through a shared reference.
// `T` crosses threads only inside an `Arc`, hence the `Send + Sync`
// bounds.
unsafe impl<T: Send + Sync> Send for ArcSwap<T> {}
unsafe impl<T: Send + Sync> Sync for ArcSwap<T> {}

impl<T> ArcSwap<T> {
    /// Creates a cell holding `value`.
    pub fn new(value: Arc<T>) -> Self {
        ArcSwap {
            slots: [Slot::new(Some(value)), Slot::new(None)],
            current: AtomicUsize::new(0),
            writer: Mutex::new(()),
        }
    }

    /// Creates a cell from a bare value (wraps it in an `Arc`).
    pub fn from_pointee(value: T) -> Self {
        ArcSwap::new(Arc::new(value))
    }

    /// Clones the current `Arc` without blocking.
    ///
    /// Lock-free: at most one retry per writer flip that lands between
    /// the index load and the reader-count increment.
    pub fn load_full(&self) -> Arc<T> {
        loop {
            let idx = self.current.load(Ordering::SeqCst);
            let slot = &self.slots[idx];
            slot.readers.fetch_add(1, Ordering::SeqCst);
            if self.current.load(Ordering::SeqCst) == idx {
                // Safety: `current == idx` observed *after* our
                // increment means any writer targeting this slot must
                // first flip `current` away and then wait for our
                // count to drop, so the value is initialized (`Some`)
                // and cannot be mutated while we hold the pin.
                let value = unsafe {
                    (*slot.value.get()).as_ref().expect("current slot always holds a value").clone()
                };
                slot.readers.fetch_sub(1, Ordering::SeqCst);
                return value;
            }
            // A writer flipped between our load and increment; drop the
            // useless pin and retry against the new current slot.
            slot.readers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Publishes `new` as the current value.
    pub fn store(&self, new: Arc<T>) {
        drop(self.swap(new));
    }

    /// Publishes `new` and returns the value it replaced.
    pub fn swap(&self, new: Arc<T>) -> Arc<T> {
        let _serialize = self.writer.lock().expect("arc-swap writer mutex poisoned");
        let old_idx = self.current.load(Ordering::SeqCst);
        let new_idx = 1 - old_idx;
        let spare = &self.slots[new_idx];
        // Drain stragglers still pinning the spare slot from the epoch
        // before last. New readers go to `current == old_idx`, so this
        // wait is bounded by the in-flight loads at this instant.
        while spare.readers.load(Ordering::SeqCst) != 0 {
            std::hint::spin_loop();
        }
        // Safety: the writer mutex excludes other writers and the
        // drained, non-current spare slot has no reader pins, so the
        // cell is ours to mutate.
        unsafe { *spare.value.get() = Some(new) };
        self.current.store(new_idx, Ordering::SeqCst);
        // The superseded value stays in its slot for late readers; hand
        // the caller its own clone.
        let old = &self.slots[old_idx];
        // Safety: a slot's value is only mutated by a writer, writers
        // hold the mutex we hold, and the old slot held `Some` while it
        // was current (values are never taken out, only replaced).
        unsafe {
            (*old.value.get())
                .as_ref()
                .expect("previously current slot always holds a value")
                .clone()
        }
    }
}

impl<T: Default> Default for ArcSwap<T> {
    fn default() -> Self {
        ArcSwap::from_pointee(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for ArcSwap<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("ArcSwap").field(&self.load_full()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn load_returns_what_was_stored() {
        let cell = ArcSwap::from_pointee(1u64);
        assert_eq!(*cell.load_full(), 1);
        cell.store(Arc::new(2));
        assert_eq!(*cell.load_full(), 2);
        let old = cell.swap(Arc::new(3));
        assert_eq!(*old, 2);
        assert_eq!(*cell.load_full(), 3);
    }

    #[test]
    fn same_thread_reads_see_the_latest_store_immediately() {
        let cell = ArcSwap::from_pointee(0u64);
        for v in 1..=100u64 {
            cell.store(Arc::new(v));
            assert_eq!(*cell.load_full(), v);
        }
    }

    #[test]
    fn concurrent_readers_only_ever_observe_published_values() {
        // One writer publishes (gen, gen) pairs; readers must only see
        // internally consistent, monotonically advancing pairs. Readers
        // run until they observe the final generation (not until a stop
        // flag flips), so the test cannot under-run on a single-vCPU
        // box where the writer finishes before a reader is scheduled.
        const FINAL: u64 = 10_000;
        let cell = Arc::new(ArcSwap::from_pointee((0u64, 0u64)));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                thread::spawn(move || {
                    let mut last = 0;
                    let mut loads = 0u64;
                    loop {
                        let pair = cell.load_full();
                        assert_eq!(pair.0, pair.1, "torn or stale-slot read");
                        assert!(pair.0 >= last, "generation went backwards");
                        last = pair.0;
                        loads += 1;
                        if pair.0 == FINAL {
                            return loads;
                        }
                    }
                })
            })
            .collect();
        for gen in 1..=FINAL {
            cell.store(Arc::new((gen, gen)));
        }
        for r in readers {
            assert!(r.join().unwrap() > 0);
        }
        assert_eq!(cell.load_full().0, FINAL);
    }
}
