//! Offline stub of `serde_derive`.
//!
//! This workspace builds in a hermetic container with no crates.io
//! access, so the real serde cannot be vendored. The codebase only uses
//! `#[derive(Serialize, Deserialize)]` as wire-format markers; nothing
//! serializes through serde at runtime (the binary memory-image format in
//! `compaqt-core::bitstream` is hand-rolled). The derives therefore
//! expand to nothing: the types stay plain Rust structs and the derive
//! attributes compile as documentation of intent. Swapping in the real
//! serde later only requires deleting `vendor/serde*` from the workspace
//! patch table.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
