//! Offline micro-benchmark harness, API-compatible with the subset of
//! `criterion` this workspace uses (`benchmark_group`, `throughput`,
//! `bench_function`, `criterion_group!`/`criterion_main!`).
//!
//! The hermetic build container has no crates.io access, so the real
//! criterion cannot be vendored. Measurement model: each benchmark is
//! warmed up, then timed over adaptive batches (batch size doubles until
//! a batch runs at least the 20 ms minimum batch duration); the reported
//! time/iter is the minimum over measured batches, which is robust
//! against scheduler noise on small containers. Results are printed in a
//! `name  time: [..]` format and retained in [`Criterion::results`] so
//! bench binaries can export machine-readable baselines (see
//! `compaqt-bench`'s `codec_throughput`, which writes `BENCH_codec.json`).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Units for reporting per-iteration throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark group name.
    pub group: String,
    /// Benchmark id within the group.
    pub name: String,
    /// Best observed time per iteration, in nanoseconds.
    pub ns_per_iter: f64,
    /// Optional per-iteration workload for throughput reporting.
    pub throughput: Option<Throughput>,
}

impl BenchResult {
    /// Throughput in elements (or bytes) per second, if declared.
    pub fn per_second(&self) -> Option<f64> {
        self.throughput.map(|t| {
            let units = match t {
                Throughput::Elements(n) | Throughput::Bytes(n) => n as f64,
            };
            units / (self.ns_per_iter * 1e-9)
        })
    }
}

/// The benchmark driver: collects and reports measurements.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Minimum duration of one timed batch.
    const MIN_BATCH: Duration = Duration::from_millis(20);
    /// Target total measurement time per benchmark.
    const TARGET_TOTAL: Duration = Duration::from_millis(200);

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, group: name.into(), throughput: None }
    }

    /// Convenience single-benchmark entry point.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
    }

    /// All measurements recorded so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Writes the recorded measurements as a JSON array.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_json(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let mut out = String::from("[\n");
        for (k, r) in self.results.iter().enumerate() {
            let thr = match r.throughput {
                Some(Throughput::Elements(n)) => format!(r#", "elements": {n}"#),
                Some(Throughput::Bytes(n)) => format!(r#", "bytes": {n}"#),
                None => String::new(),
            };
            let per_sec = match r.per_second() {
                Some(v) => format!(r#", "per_second": {v:.1}"#),
                None => String::new(),
            };
            out.push_str(&format!(
                r#"  {{"group": "{}", "name": "{}", "ns_per_iter": {:.1}{thr}{per_sec}}}"#,
                r.group, r.name, r.ns_per_iter
            ));
            out.push_str(if k + 1 == self.results.len() { "\n" } else { ",\n" });
        }
        out.push_str("]\n");
        std::fs::write(path, out)
    }

    /// Prints a closing summary line.
    pub fn final_summary(&self) {
        println!("\n{} benchmarks measured", self.results.len());
    }

    fn record(&mut self, result: BenchResult) {
        let label = if result.group.is_empty() {
            result.name.clone()
        } else {
            format!("{}/{}", result.group, result.name)
        };
        let rate = match result.per_second() {
            Some(v) if matches!(result.throughput, Some(Throughput::Elements(_))) => {
                format!("  thrpt: {:.1} Melem/s", v / 1e6)
            }
            Some(v) => format!("  thrpt: {:.1} MB/s", v / 1e6),
            None => String::new(),
        };
        println!("{label:<40} time: {:>10.1} ns/iter{rate}", result.ns_per_iter);
        self.results.push(result);
    }
}

/// A group of related benchmarks sharing a throughput declaration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration workload of subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Measures one benchmark closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher { batch_iters: 1, best_ns_per_iter: f64::INFINITY };
        f(&mut bencher);
        self.criterion.record(BenchResult {
            group: self.group.clone(),
            name: id.into(),
            ns_per_iter: bencher.best_ns_per_iter,
            throughput: self.throughput,
        });
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Timing driver handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    batch_iters: u64,
    best_ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine`, adaptively growing batch sizes until batches are
    /// long enough to time reliably.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start_all = Instant::now();
        // Warm-up: one untimed call (page/cache warm, lazy init).
        black_box(routine());
        while start_all.elapsed() < Criterion::TARGET_TOTAL {
            let t = Instant::now();
            for _ in 0..self.batch_iters {
                black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed < Criterion::MIN_BATCH {
                self.batch_iters = self.batch_iters.saturating_mul(2);
                continue;
            }
            let ns = elapsed.as_nanos() as f64 / self.batch_iters as f64;
            if ns < self.best_ns_per_iter {
                self.best_ns_per_iter = ns;
            }
        }
        if !self.best_ns_per_iter.is_finite() {
            // Routine so slow a single batch exceeded the budget.
            let t = Instant::now();
            black_box(routine());
            self.best_ns_per_iter = t.elapsed().as_nanos() as f64;
        }
    }
}

/// Bundles benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_reasonable() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(4));
        group.bench_function("sum", |b| b.iter(|| (0..4u64).map(black_box).sum::<u64>()));
        group.finish();
        assert_eq!(c.results().len(), 1);
        let r = &c.results()[0];
        assert!(r.ns_per_iter > 0.0 && r.ns_per_iter < 1e7, "{}", r.ns_per_iter);
        assert!(r.per_second().unwrap() > 0.0);
    }

    #[test]
    fn json_export_is_parseable_shape() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1)));
        let path = std::env::temp_dir().join("criterion_stub_test.json");
        c.write_json(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.trim_start().starts_with('['));
        assert!(text.contains("\"noop\""));
        let _ = std::fs::remove_file(path);
    }
}
