//! Offline data-parallelism shim, API-compatible with the subset of
//! `rayon` this workspace uses: `par_iter().map(..).collect()`,
//! `map_init` (per-worker scratch state) and `for_each`.
//!
//! The hermetic build container has no crates.io access, so real rayon's
//! work-stealing pool cannot be vendored. This shim splits the index
//! space into one contiguous chunk per worker and runs the chunks on
//! `std::thread::scope` threads, preserving input order in `collect`.
//! That is a weaker scheduler than work stealing (no load balancing
//! within a run), but for compaqt's workload — compressing/decompressing
//! a pulse library whose waveforms have similar cost — chunking is within
//! a few percent of optimal, and the API is a drop-in subset so the real
//! rayon can replace this crate without source changes.
//!
//! Worker count: `min(available_parallelism, items)`, overridable with
//! the `RAYON_NUM_THREADS` environment variable (as in real rayon).

use std::ops::Range;

/// Number of worker threads parallel operations will use.
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// An index-addressable parallel pipeline stage.
///
/// Implementation detail of the shim: adapters override [`Self::chunk`]
/// to batch per-worker work (which is what makes `map_init`'s per-worker
/// state possible).
pub trait ParallelIterator: Sync + Sized {
    /// Item type produced by the pipeline.
    type Item: Send;

    /// Total number of items.
    fn pi_len(&self) -> usize;

    /// Produces the item at `index`.
    fn pi_get(&self, index: usize) -> Self::Item;

    /// Produces a contiguous range of items into `out`.
    fn chunk(&self, range: Range<usize>, out: &mut Vec<Self::Item>) {
        for i in range {
            out.push(self.pi_get(i));
        }
    }

    /// Maps every item through `map_op`.
    fn map<R, F>(self, map_op: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, map_op }
    }

    /// Maps every item through `map_op` with a per-worker state value
    /// built by `init` (rayon's `map_init`): scratch buffers are created
    /// once per worker, not once per item.
    fn map_init<T, R, I, F>(self, init: I, map_op: F) -> MapInit<Self, I, F>
    where
        R: Send,
        I: Fn() -> T + Sync,
        F: Fn(&mut T, Self::Item) -> R + Sync,
    {
        MapInit { base: self, init, map_op }
    }

    /// Runs the pipeline, collecting results in input order.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        execute(&self).into_iter().collect()
    }

    /// Runs the pipeline for its side effects.
    fn for_each<F>(self, op: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        let _ = self.map(op).collect::<Vec<()>>();
    }
}

/// Executes a pipeline across scoped worker threads, in input order.
fn execute<P: ParallelIterator>(pipeline: &P) -> Vec<P::Item> {
    execute_with(pipeline, current_num_threads())
}

/// [`execute`] with an explicit worker count (also the testable seam:
/// worker-count edge cases must not depend on the host's core count).
fn execute_with<P: ParallelIterator>(pipeline: &P, workers: usize) -> Vec<P::Item> {
    let n = pipeline.pi_len();
    let workers = workers.min(n).max(1);
    if workers == 1 {
        let mut out = Vec::with_capacity(n);
        pipeline.chunk(0..n, &mut out);
        return out;
    }
    let chunk_len = n.div_ceil(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                // Both bounds clamped: with workers.min(n) and ceil
                // division, a trailing worker's nominal start can still
                // exceed n (e.g. 5 items / 4 workers -> chunk 2, worker 3
                // starts at 6), which must yield an empty chunk, not a
                // `hi - lo` underflow.
                let lo = (w * chunk_len).min(n);
                let hi = ((w + 1) * chunk_len).min(n);
                scope.spawn(move || {
                    let mut part = Vec::with_capacity(hi - lo);
                    pipeline.chunk(lo..hi, &mut part);
                    part
                })
            })
            .collect();
        let mut out = Vec::with_capacity(n);
        for handle in handles {
            out.extend(handle.join().expect("rayon-shim worker panicked"));
        }
        out
    })
}

/// Pipeline stage produced by [`ParallelIterator::map`].
#[derive(Debug)]
pub struct Map<P, F> {
    base: P,
    map_op: F,
}

impl<P, R, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P::Item) -> R + Sync,
{
    type Item = R;

    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }

    fn pi_get(&self, index: usize) -> R {
        (self.map_op)(self.base.pi_get(index))
    }
}

/// Pipeline stage produced by [`ParallelIterator::map_init`].
#[derive(Debug)]
pub struct MapInit<P, I, F> {
    base: P,
    init: I,
    map_op: F,
}

impl<P, T, R, I, F> ParallelIterator for MapInit<P, I, F>
where
    P: ParallelIterator,
    R: Send,
    I: Fn() -> T + Sync,
    F: Fn(&mut T, P::Item) -> R + Sync,
{
    type Item = R;

    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }

    fn pi_get(&self, index: usize) -> R {
        let mut state = (self.init)();
        (self.map_op)(&mut state, self.base.pi_get(index))
    }

    fn chunk(&self, range: Range<usize>, out: &mut Vec<R>) {
        // One state per worker chunk — the whole point of map_init.
        let mut state = (self.init)();
        for i in range {
            out.push((self.map_op)(&mut state, self.base.pi_get(i)));
        }
    }
}

/// Root stage over a slice.
#[derive(Debug)]
pub struct SliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;

    fn pi_len(&self) -> usize {
        self.slice.len()
    }

    fn pi_get(&self, index: usize) -> &'a T {
        &self.slice[index]
    }
}

/// Borrowing entry point (`.par_iter()`), as in rayon's prelude.
pub trait IntoParallelRefIterator<'a> {
    /// The pipeline root type.
    type Iter: ParallelIterator;

    /// Starts a parallel pipeline over `&self`'s elements.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = SliceIter<'a, T>;

    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = SliceIter<'a, T>;

    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

pub mod prelude {
    //! The rayon-style prelude.
    pub use crate::{IntoParallelRefIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let squares: Vec<u64> = xs.par_iter().map(|&x| x * x).collect();
        assert_eq!(squares.len(), 1000);
        for (k, v) in squares.iter().enumerate() {
            assert_eq!(*v, (k * k) as u64);
        }
    }

    #[test]
    fn collect_into_result_short_circuits_value() {
        let xs = vec![1i32, 2, 3, 4];
        let ok: Result<Vec<i32>, String> = xs.par_iter().map(|&x| Ok(x * 2)).collect();
        assert_eq!(ok.unwrap(), vec![2, 4, 6, 8]);
        let err: Result<Vec<i32>, String> =
            xs.par_iter().map(|&x| if x == 3 { Err("three".into()) } else { Ok(x) }).collect();
        assert_eq!(err.unwrap_err(), "three");
    }

    #[test]
    fn map_init_reuses_state_within_chunks() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let inits = AtomicUsize::new(0);
        let xs: Vec<usize> = (0..64).collect();
        let out: Vec<usize> = xs
            .par_iter()
            .map_init(
                || {
                    inits.fetch_add(1, Ordering::SeqCst);
                    Vec::<usize>::new()
                },
                |scratch, &x| {
                    scratch.push(x);
                    scratch.len()
                },
            )
            .collect();
        assert_eq!(out.len(), 64);
        // At most one init per worker, never one per item.
        assert!(inits.load(Ordering::SeqCst) <= super::current_num_threads());
    }

    #[test]
    fn empty_input_is_fine() {
        let xs: Vec<u32> = Vec::new();
        let out: Vec<u32> = xs.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn every_worker_count_partitions_correctly() {
        // Regression: ceil-division chunking can put a trailing worker's
        // nominal start past the item count (5 items / 4 workers), which
        // underflowed `hi - lo` before the bounds were clamped.
        for n in 0..40usize {
            let xs: Vec<usize> = (0..n).collect();
            for workers in 1..=9 {
                let out = super::execute_with(&xs.par_iter().map(|&x| x * 3), workers);
                assert_eq!(out.len(), n, "n={n} workers={workers}");
                for (k, v) in out.iter().enumerate() {
                    assert_eq!(*v, k * 3, "n={n} workers={workers}");
                }
            }
        }
    }
}
