//! Offline stub of the `bytes` crate.
//!
//! Implements exactly the subset the workspace uses —
//! `compaqt-core::bitstream`'s little-endian [`Buf`]/[`BufMut`]
//! accessors plus the slice/deref APIs `compaqt-io`'s zero-copy
//! container reader leans on — over a plain `Vec<u8>` with an `Arc` for
//! cheap slicing. Semantics match the real crate for this subset:
//! `get_*` panics on underflow (callers bounds-check with `remaining()`
//! first), `freeze` converts a mutable buffer into an immutable handle,
//! `slice` produces zero-copy views sharing one backing allocation, and
//! [`Bytes`] derefs to `[u8]` for borrowed reads. This is an API
//! *subset* only — extend it here before leaning on further `bytes`
//! surface.

use std::sync::Arc;

/// Read access to a contiguous byte cursor (little-endian helpers only).
pub trait Buf {
    /// Bytes left between the cursor and the end of the buffer.
    fn remaining(&self) -> usize;
    /// Advances the cursor by `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `cnt` bytes remain.
    fn advance(&mut self, cnt: usize);
    /// Copies out the next `n` bytes and advances.
    fn copy_to_bytes(&mut self, n: usize) -> Bytes;
    /// Reads one byte and advances.
    fn get_u8(&mut self) -> u8;
    /// Reads a little-endian `u16` and advances.
    fn get_u16_le(&mut self) -> u16;
    /// Reads a little-endian `i16` and advances.
    fn get_i16_le(&mut self) -> i16 {
        self.get_u16_le() as i16
    }
    /// Reads a little-endian `u32` and advances.
    fn get_u32_le(&mut self) -> u32;
    /// Reads a little-endian `u64` and advances.
    fn get_u64_le(&mut self) -> u64;
}

/// Write access to a growable byte buffer (little-endian helpers only).
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16);
    /// Appends a little-endian `i16`.
    fn put_i16_le(&mut self, v: i16) {
        self.put_u16_le(v as u16);
    }
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

/// An immutable, cheaply cloneable and sliceable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    /// Cursor (advanced by `get_*`).
    start: usize,
    end: usize,
}

impl Bytes {
    /// Length of the unread portion.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the unread portion is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Zero-copy sub-view of the unread portion.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && self.start + range.end <= self.end);
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    fn bytes(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// A new buffer holding a copy of `data` (the real crate's
    /// constructor for borrowed input).
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// The unread bytes as a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.bytes().to_vec()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.bytes()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes { data: Arc::new(v), start: 0, end }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.bytes()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        self.start += cnt;
    }

    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        let out = self.slice(0..n);
        self.advance(n);
        out
    }

    fn get_u8(&mut self) -> u8 {
        assert!(!self.is_empty(), "buffer underflow");
        let v = self.bytes()[0];
        self.advance(1);
        v
    }

    fn get_u16_le(&mut self) -> u16 {
        assert!(self.len() >= 2, "buffer underflow");
        let b = self.bytes();
        let v = u16::from_le_bytes([b[0], b[1]]);
        self.advance(2);
        v
    }

    fn get_u32_le(&mut self) -> u32 {
        assert!(self.len() >= 4, "buffer underflow");
        let b = self.bytes();
        let v = u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
        self.advance(4);
        v
    }

    fn get_u64_le(&mut self) -> u64 {
        assert!(self.len() >= 8, "buffer underflow");
        let b = self.bytes();
        let v = u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]);
        self.advance(8);
        v
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        *self = &self[cnt..];
    }

    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "buffer underflow");
        let out = Bytes::copy_from_slice(&self[..n]);
        self.advance(n);
        out
    }

    fn get_u8(&mut self) -> u8 {
        assert!(!self.is_empty(), "buffer underflow");
        let v = self[0];
        self.advance(1);
        v
    }

    fn get_u16_le(&mut self) -> u16 {
        assert!(self.len() >= 2, "buffer underflow");
        let v = u16::from_le_bytes([self[0], self[1]]);
        self.advance(2);
        v
    }

    fn get_u32_le(&mut self) -> u32 {
        assert!(self.len() >= 4, "buffer underflow");
        let v = u32::from_le_bytes([self[0], self[1], self[2], self[3]]);
        self.advance(4);
        v
    }

    fn get_u64_le(&mut self) -> u64 {
        assert!(self.len() >= 8, "buffer underflow");
        let v = u64::from_le_bytes([
            self[0], self[1], self[2], self[3], self[4], self[5], self[6], self[7],
        ]);
        self.advance(8);
        v
    }
}

/// A growable byte buffer; freeze it into [`Bytes`] when done writing.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Clears the buffer, keeping its capacity (the real crate's
    /// reuse idiom for per-connection write buffers).
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Shortens the buffer to `len` bytes (no-op if already shorter).
    pub fn truncate(&mut self, len: usize) {
        self.data.truncate(len);
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::DerefMut for BytesMut {
    /// Mutable view of the written bytes — what frame encoders use to
    /// back-patch a length field after the payload is appended.
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(7);
        b.put_u16_le(0xBEEF);
        b.put_i16_le(-2);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_slice(b"hi");
        let mut r = b.freeze();
        assert_eq!(r.remaining(), 1 + 2 + 2 + 4 + 2);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_i16_le(), -2);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.copy_to_bytes(2).to_vec(), b"hi");
        assert!(r.is_empty());
    }

    #[test]
    fn slicing_is_relative_to_cursor() {
        let mut b: Bytes = vec![1, 2, 3, 4, 5].into();
        b.get_u8();
        assert_eq!(b.slice(1..3).to_vec(), vec![3, 4]);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b: Bytes = vec![1].into();
        b.get_u32_le();
    }

    #[test]
    fn u64_round_trip_and_advance() {
        let mut b = BytesMut::new();
        b.put_u64_le(0x0123_4567_89AB_CDEF);
        b.put_u8(9);
        let mut r = b.freeze();
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        r.advance(1);
        assert!(r.is_empty());
    }

    #[test]
    fn slices_are_buf_cursors() {
        let data = [7u8, 0xEF, 0xBE, 1, 2, 3, 4, 5];
        let mut cursor: &[u8] = &data;
        assert_eq!(cursor.remaining(), 8);
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.get_u16_le(), 0xBEEF);
        assert_eq!(cursor.copy_to_bytes(2).to_vec(), vec![1, 2]);
        cursor.advance(1);
        assert_eq!(cursor, &[4, 5]);
    }

    #[test]
    fn bytes_mut_clear_truncate_and_patch_in_place() {
        let mut b = BytesMut::with_capacity(8);
        b.put_u32_le(0);
        b.put_slice(b"xyz");
        b[0..4].copy_from_slice(&3u32.to_le_bytes());
        assert_eq!(&b[..], &[3, 0, 0, 0, b'x', b'y', b'z']);
        b.truncate(4);
        assert_eq!(b.len(), 4);
        b.clear();
        assert!(b.is_empty());
        b.reserve(16);
        b.put_u8(1);
        assert_eq!(&b[..], &[1]);
    }

    #[test]
    fn deref_and_copy_from_slice_view_the_unread_bytes() {
        let mut b = Bytes::copy_from_slice(&[1, 2, 3, 4]);
        b.get_u8();
        assert_eq!(&b[..], &[2, 3, 4]);
        assert_eq!(b.first(), Some(&2));
    }
}
