//! Offline stub of `serde`.
//!
//! The container this workspace builds in has no crates.io access, so the
//! real serde cannot be fetched. The repo uses serde only as
//! `#[derive(Serialize, Deserialize)]` markers on codec data types; all
//! actual wire formats are hand-rolled (see `compaqt-core::bitstream`).
//! This stub provides the two trait names plus the no-op derive macros so
//! the annotations compile unchanged. Nothing in the workspace bounds on
//! these traits.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize` (never implemented or bounded
/// on in this workspace; the derive expands to nothing).
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize` (never implemented or bounded
/// on in this workspace; the derive expands to nothing).
pub trait Deserialize<'de>: Sized {}
