//! Offline mini property-testing harness, API-compatible with the subset
//! of `proptest` this workspace uses.
//!
//! The hermetic build container has no crates.io access, so the real
//! proptest cannot be vendored. This crate re-implements the pieces the
//! test suites rely on:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]` support),
//! * [`strategy::Strategy`] with `prop_map`, implemented for numeric
//!   ranges, [`collection::vec`] and the `num::*::ANY` constants,
//! * [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assume!`].
//!
//! Differences from real proptest: cases are generated from a
//! deterministic per-test seed (derived from the test name) instead of
//! OS entropy, and failing cases are *not* shrunk — the failing values
//! are reported as-is. Both trades favour reproducibility in CI. A
//! `PROPTEST_CASES` environment variable raises (never lowers) the case
//! count, so stress jobs can amplify hostile-input suites.

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use rand::RngExt;
    use std::marker::PhantomData;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through a function.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng.random_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.rng.random_range(self.clone())
        }
    }

    /// Strategy generating any value of an integer type (the `ANY`
    /// constants of [`crate::num`]).
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(pub(crate) PhantomData<T>);

    macro_rules! impl_any_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng.random()
                }
            }
        )*};
    }

    impl_any_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt;

    /// Number of elements a [`vec()`] strategy may generate.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end }
        }
    }

    /// Generates `Vec`s whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.min + 1 == self.size.max {
                self.size.min
            } else {
                rng.rng.random_range(self.size.min..self.size.max)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod num {
    //! Per-type `ANY` strategies (`proptest::num::u64::ANY` etc.).

    macro_rules! any_module {
        ($($m:ident : $t:ty),*) => {$(
            #[allow(missing_docs)]
            pub mod $m {
                use std::marker::PhantomData;
                /// Uniform over the whole value range of the type.
                pub const ANY: crate::strategy::Any<$t> =
                    crate::strategy::Any(PhantomData);
            }
        )*};
    }

    any_module!(u8: u8, u16: u16, u32: u32, u64: u64, usize: usize,
                i8: i8, i16: i16, i32: i32, i64: i64, isize: isize);
}

pub mod test_runner {
    //! The case-execution loop behind [`crate::proptest!`].

    use rand::SeedableRng;

    /// Per-test deterministic random source.
    #[derive(Debug)]
    pub struct TestRng {
        pub(crate) rng: rand::rngs::StdRng,
    }

    impl TestRng {
        /// Seeds a generator deterministically from the test name.
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the name: stable across runs and platforms.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
            }
            TestRng { rng: rand::rngs::StdRng::seed_from_u64(h) }
        }
    }

    /// Runner configuration (`#![proptest_config(..)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` successful cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the inputs; try another case.
        Reject,
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    /// Outcome of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Drives `case` until `config.cases` cases pass, panicking on the
    /// first failure. Rejected cases (via `prop_assume!`) are retried up
    /// to a 20x attempt budget.
    ///
    /// A `PROPTEST_CASES` environment variable *raises* (never lowers)
    /// the case count past the per-test config — CI stress jobs use it
    /// to amplify the hostile-input suites without touching test code.
    pub fn run<F>(config: ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> TestCaseResult,
    {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
            .map_or(config.cases, |env| env.max(config.cases));
        let config = ProptestConfig { cases };
        let mut rng = TestRng::for_test(name);
        let mut passed = 0u32;
        let mut attempts = 0u32;
        while passed < config.cases {
            attempts += 1;
            assert!(
                attempts <= config.cases.saturating_mul(20),
                "proptest '{name}': too many rejected cases"
            );
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => continue,
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest '{name}' failed at case {passed}: {msg}")
                }
            }
        }
    }
}

pub mod prelude {
    //! Everything a `proptest!` test module needs.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
     $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::test_runner::run(config, stringify!($name), |prop_rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), prop_rng);)*
                    let prop_case = move || -> $crate::test_runner::TestCaseResult {
                        $body
                        Ok(())
                    };
                    prop_case()
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Fails the current case with a message unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} ({})", stringify!($cond), format!($($fmt)+)
            )));
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (prop_lhs, prop_rhs) = (&$a, &$b);
        if !(prop_lhs == prop_rhs) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{} != {}: {:?} vs {:?}",
                stringify!($a), stringify!($b), prop_lhs, prop_rhs
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (prop_lhs, prop_rhs) = (&$a, &$b);
        if !(prop_lhs == prop_rhs) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{} != {} ({}): {:?} vs {:?}",
                stringify!($a), stringify!($b), format!($($fmt)+), prop_lhs, prop_rhs
            )));
        }
    }};
}

/// Rejects the current case (retried with fresh inputs) unless the
/// condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respected(v in 3usize..10, f in -1.0f64..1.0) {
            prop_assert!((3..10).contains(&v));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respected(xs in crate::collection::vec(0u8..5, 2..7)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 7);
            prop_assert!(xs.iter().all(|&x| x < 5));
        }

        #[test]
        fn prop_map_applies(doubled in (0u32..50).prop_map(|v| v * 2)) {
            prop_assert_eq!(doubled % 2, 0);
        }

        #[test]
        fn assume_rejects(v in 0u32..10, w in 0u32..10) {
            prop_assume!(v != w);
            prop_assert!(v != w);
        }

        #[test]
        fn any_is_reachable(x in crate::num::u64::ANY) {
            let _ = x;
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic() {
        crate::test_runner::run(ProptestConfig::with_cases(4), "failures_panic", |_| {
            Err(crate::test_runner::TestCaseError::fail("boom"))
        });
    }
}
