//! Offline stub of the `rand` crate.
//!
//! The workspace builds hermetically (no crates.io), so this crate
//! provides the small deterministic-PRNG surface compaqt uses:
//! [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], and the
//! [`RngExt`] extension with `random`, `random_bool` and `random_range`.
//!
//! The generator is SplitMix64 — statistically fine for synthesizing test
//! devices and benchmark circuits, *not* cryptographic. Determinism is
//! the contract that matters here: the same seed must reproduce the same
//! synthetic device across runs and platforms, which SplitMix64's pure
//! 64-bit integer arithmetic guarantees.

/// Seedable random generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A raw 64-bit generator (subset of `rand::RngCore`/`rand::Rng`).
pub trait Rng {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;
}

/// Concrete generators.
pub mod rngs {
    /// Deterministic SplitMix64 generator (stand-in for `rand`'s StdRng).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Types producible by [`RngExt::random`].
pub trait Random {
    /// Draws a uniform value.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for bool {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types with uniform range sampling ([`RngExt::random_range`]).
pub trait SampleUniform: Sized + PartialOrd {
    /// Draws uniformly from `[start, end)` (`end` included when
    /// `inclusive`).
    fn sample_range<R: Rng + ?Sized>(start: Self, end: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(
                start: Self,
                end: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (end as i128 - start as i128) as u128
                    + u128::from(inclusive);
                assert!(span > 0, "cannot sample empty range");
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: Rng + ?Sized>(
        start: Self,
        end: Self,
        _inclusive: bool,
        rng: &mut R,
    ) -> Self {
        assert!(start < end, "cannot sample empty range");
        start + f64::random(rng) * (end - start)
    }
}

/// Ranges samplable by [`RngExt::random_range`] (mirrors
/// `rand::distr::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(*self.start(), *self.end(), true, rng)
    }
}

/// Extension methods available on every [`Rng`] (the convenience half of
/// `rand::Rng`).
pub trait RngExt: Rng {
    /// Draws a uniform value of type `T`.
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Draws `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::random(self) < p
    }

    /// Draws a uniform value from a range.
    fn random_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        let _ = &mut a as &mut dyn Rng; // object safety
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.random_range(3..17);
            assert!((3..17).contains(&v));
            let f = rng.random_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&f));
            let i: i32 = rng.random_range(-5..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn unit_floats_are_in_unit_interval() {
        let mut rng = rngs::StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = rngs::StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }
}
