//! Offline stub of `parking_lot`: the [`Mutex`] subset compaqt uses,
//! implemented over `std::sync::Mutex` with parking_lot's ergonomics
//! (`lock()` returns the guard directly; poisoning is swallowed, matching
//! parking_lot's no-poisoning semantics).

/// A mutual-exclusion lock whose `lock` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps a value in a mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trips() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }
}
