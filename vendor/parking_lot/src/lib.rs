//! Offline stub of `parking_lot`: the [`Mutex`] / [`RwLock`] subset
//! compaqt uses, implemented over the `std::sync` primitives with
//! parking_lot's ergonomics (`lock()`/`read()`/`write()` return the
//! guard directly; poisoning is swallowed, matching parking_lot's
//! no-poisoning semantics).

/// A mutual-exclusion lock whose `lock` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps a value in a mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose `read`/`write` never return a `Result`.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

/// Shared guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;

/// Exclusive guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wraps a value in a reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Acquires a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Mutable access through a unique reference (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trips() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_round_trips() {
        let mut l = RwLock::new(1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        *l.get_mut() += 1;
        assert_eq!(l.into_inner(), 3);
    }

    #[test]
    fn rwlock_allows_concurrent_readers() {
        let l = RwLock::new(7);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
    }
}
