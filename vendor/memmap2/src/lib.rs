//! Offline stub of the `memmap2` crate: the subset compaqt uses.
//!
//! [`Mmap`] is a read-only, private memory mapping of a whole file,
//! dereferencing to `&[u8]`. On unix it calls `mmap(2)` / `munmap(2)`
//! directly through the C library the Rust standard library already
//! links — no new native dependency. On other targets it falls back to
//! reading the file into an owned buffer, keeping the same API (and
//! losing only the demand-paging property, not correctness).

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

use std::fmt;
use std::fs::File;
use std::io;
use std::ops::Deref;

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    // POSIX values shared by every unix target this repo builds on
    // (linux-gnu in CI); declared here because the stub deliberately
    // avoids a libc crate dependency.
    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    /// Maps `len` bytes of `file` read-only. `len` must be non-zero.
    pub(crate) unsafe fn map(file: &File, len: usize) -> io::Result<*const u8> {
        let ptr = mmap(std::ptr::null_mut(), len, PROT_READ, MAP_PRIVATE, file.as_raw_fd(), 0);
        if ptr as isize == -1 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ptr.cast_const().cast())
        }
    }

    pub(crate) unsafe fn unmap(ptr: *const u8, len: usize) {
        let _ = munmap(ptr.cast_mut().cast(), len);
    }
}

/// The backing of a mapping: a real page mapping or the owned fallback.
enum Backing {
    /// `mmap(2)` pages; unmapped on drop. Never used with `len == 0`.
    #[cfg(unix)]
    Pages { ptr: *const u8, len: usize },
    /// Owned copy (zero-length mappings, and all of non-unix).
    Owned(Box<[u8]>),
}

/// A read-only memory map of an entire file.
///
/// Dereferences to `&[u8]`. The mapping is private (`MAP_PRIVATE`):
/// writes by other processes after the map call are not part of this
/// view's contract — callers treat the bytes as an immutable snapshot,
/// which is what makes the `Send + Sync` exposure sound.
pub struct Mmap {
    backing: Backing,
}

// Safety: the mapping is created read-only and never mutated through
// this type; sharing immutable bytes across threads is sound. (As with
// the real crate, truncating the underlying file while mapped is
// outside the contract.)
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps `file` in its entirety, read-only.
    ///
    /// # Safety
    ///
    /// The caller must ensure the file is not truncated or mutated
    /// through the filesystem for the lifetime of the mapping (the same
    /// contract as the real `memmap2::Mmap::map`). Shrinking a mapped
    /// file turns in-bounds reads into faults.
    pub unsafe fn map(file: &File) -> io::Result<Mmap> {
        let len = file.metadata()?.len();
        let len = usize::try_from(len).map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidInput, "file exceeds address space")
        })?;
        #[cfg(unix)]
        {
            if len == 0 {
                // mmap(2) rejects zero-length maps; an empty slice is
                // the honest equivalent.
                return Ok(Mmap { backing: Backing::Owned(Box::new([])) });
            }
            let ptr = sys::map(file, len)?;
            Ok(Mmap { backing: Backing::Pages { ptr, len } })
        }
        #[cfg(not(unix))]
        {
            use std::io::Read;
            let mut buf = Vec::with_capacity(len);
            let mut file = file;
            file.read_to_end(&mut buf)?;
            Ok(Mmap { backing: Backing::Owned(buf.into_boxed_slice()) })
        }
    }

    /// The mapped bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        match &self.backing {
            #[cfg(unix)]
            // Safety: `ptr` is a live PROT_READ mapping of exactly
            // `len` bytes, valid until `Drop` unmaps it.
            Backing::Pages { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Backing::Owned(buf) => buf,
        }
    }

    /// Number of mapped bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the mapping is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        match &self.backing {
            #[cfg(unix)]
            Backing::Pages { ptr, len } => unsafe { sys::unmap(*ptr, *len) },
            Backing::Owned(_) => {}
        }
    }
}

impl Deref for Mmap {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Mmap {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for Mmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mmap").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("memmap2-stub-{}-{tag}", std::process::id()))
    }

    #[test]
    fn maps_file_contents_bit_exactly() {
        let path = temp_path("roundtrip");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::File::create(&path).unwrap().write_all(&payload).unwrap();
        let file = File::open(&path).unwrap();
        let map = unsafe { Mmap::map(&file).unwrap() };
        assert_eq!(&map[..], &payload[..]);
        assert_eq!(map.len(), payload.len());
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_files_map_to_empty_slices() {
        let path = temp_path("empty");
        std::fs::File::create(&path).unwrap();
        let file = File::open(&path).unwrap();
        let map = unsafe { Mmap::map(&file).unwrap() };
        assert!(map.is_empty());
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }
}
