//! Quickstart: compress a calibrated gate pulse, stream it through the
//! modelled hardware decompression engine, and inspect the gains.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use compaqt::core::compress::{Compressor, Variant};
use compaqt::core::engine::DecompressionEngine;
use compaqt::pulse::device::Device;
use compaqt::pulse::vendor::Vendor;
use compaqt::quantum::transmon;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Synthesize a 5-qubit IBM-class machine with unique per-qubit
    //    calibrations (the paper reads these from real backends).
    let device = Device::synthesize(Vendor::Ibm, 5, 0xC0FFEE);
    println!("device: {} ({} qubits)", device.name(), device.n_qubits());

    // 2. Take qubit 2's pi pulse — a DRAG envelope streamed to the DAC at
    //    4.54 GS/s whenever an X gate fires.
    let pulse = device.pi_pulse(2);
    println!(
        "pulse : {pulse} ({} bytes uncompressed)",
        pulse.storage_bytes(device.params().sample_bits)
    );

    // 3. Compress at compile time with the windowed integer DCT (the
    //    COMPAQT design point: WS=16, shift-add-only hardware).
    let compressor = Compressor::new(Variant::IntDctW { ws: 16 });
    let compressed = compressor.compress(&pulse)?;
    println!("codec : {}", compressed.variant.label());
    println!("ratio : {}", compressed.ratio());
    println!("worst-case window: {} stored words", compressed.worst_case_window_words());

    // 4. Decompress through the bit-exact engine model and measure both
    //    the signal distortion and the bandwidth expansion.
    let engine = DecompressionEngine::for_variant(compressed.variant)?;
    let (restored, stats) = engine.decompress(&compressed)?;
    println!("mse   : {:.3e}", pulse.mse(&restored));
    println!(
        "memory words read {} -> DAC samples {} ({:.2}x bandwidth expansion)",
        stats.memory_words_read,
        stats.output_samples,
        stats.bandwidth_expansion()
    );

    // 5. The quantity that actually matters: does the decompressed pulse
    //    still implement the same gate? Evolve a transmon under both.
    let infidelity = transmon::distortion_infidelity(&pulse, &restored);
    println!("distortion-induced gate infidelity: {infidelity:.3e}");
    assert!(infidelity < 1e-3, "compression must not cost gate fidelity");

    // 6. Fidelity-aware compression (Algorithm 1): ask for a target error
    //    and let the compiler pick the threshold.
    let (tuned, threshold) = compressor.compress_with_target(&pulse, 1e-6)?;
    println!("fidelity-aware: threshold {threshold:.4} meets MSE<=1e-6 at ratio {}", tuned.ratio());
    Ok(())
}
