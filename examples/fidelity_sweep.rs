//! Fidelity sweep: how hard can we compress before gates degrade?
//!
//! Sweeps the coefficient threshold, measuring compression ratio,
//! waveform MSE and the distortion-induced gate infidelity from transmon
//! evolution — the trade-off navigated by Algorithm 1.
//!
//! ```sh
//! cargo run --release --example fidelity_sweep
//! ```

use compaqt::core::compress::{Compressor, Variant};
use compaqt::pulse::device::Device;
use compaqt::pulse::vendor::Vendor;
use compaqt::quantum::errors::NoiseModel;
use compaqt::quantum::rb::{run_rb, RbConfig, RbQubits};
use compaqt::quantum::transmon;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = Device::synthesize(Vendor::Ibm, 2, 0xF1DE);
    let pulse = device.pi_pulse(0);
    println!("sweeping threshold on {pulse}");
    println!(
        "{:>9} {:>7} {:>10} {:>12} {:>10}",
        "threshold", "ratio", "mse", "infidelity", "2Q RB p"
    );
    let lib = device.pulse_library();
    for threshold in [0.002, 0.005, 0.01, 0.025, 0.05, 0.1, 0.2] {
        let compressor = Compressor::new(Variant::IntDctW { ws: 16 }).with_threshold(threshold);
        let z = compressor.compress(&pulse)?;
        let restored = z.decompress()?;
        let mse = pulse.mse(&restored);
        let infid = transmon::distortion_infidelity(&pulse, &restored);

        // Full-loop check: run 2Q RB with this compression level.
        let noise = NoiseModel::from_compression(NoiseModel::ibm_baseline(), &lib, &compressor)?;
        let rb = run_rb(
            RbQubits::Two,
            &noise,
            &RbConfig { lengths: vec![1, 10, 30, 60], sequences_per_length: 10, seed: 0x5F },
        );
        println!(
            "{threshold:>9} {:>7.2} {:>10.2e} {:>12.2e} {:>10.4}",
            z.ratio().ratio(),
            mse,
            infid,
            rb.p
        );
    }
    println!("\nMSE tracks gate infidelity across the sweep — the correlation that lets");
    println!("Algorithm 1 tune thresholds at compile time without touching hardware.");
    Ok(())
}
