//! RFSoC capacity planner: how many qubits can one board drive, with and
//! without COMPAQT?
//!
//! Walks the full Section III -> Section V story on a synthesized machine:
//! memory demand, the bandwidth wall, and the compressed-memory fix.
//!
//! ```sh
//! cargo run --release --example rfsoc_capacity_planner -- 100
//! ```

use compaqt::core::compress::{Compressor, Variant};
use compaqt::core::memory::BankedMemory;
use compaqt::core::stats::compress_library;
use compaqt::hw::rfsoc::RfsocModel;
use compaqt::pulse::device::Device;
use compaqt::pulse::memory_model;
use compaqt::pulse::vendor::Vendor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(100);
    let params = Vendor::Ibm.params();

    // Demand side: what does an n-qubit machine ask of waveform memory?
    let capacity = memory_model::total_capacity_bytes(&params, n);
    let bandwidth = memory_model::total_bandwidth_gb(&params, n);
    println!("-- demand for {n} qubits (IBM-class) --");
    println!("waveform capacity : {:.2} MB", capacity / 1e6);
    println!("concurrent-drive bandwidth: {bandwidth:.0} GB/s");
    println!(
        "RFSoC reference   : {:.2} MB capacity, {:.0} GB/s internal bandwidth",
        memory_model::RFSOC_CAPACITY_BYTES / 1e6,
        memory_model::RFSOC_MAX_BANDWIDTH_GB
    );

    // Supply side: the uncompressed bandwidth wall.
    let rfsoc = RfsocModel::default();
    println!("\n-- one RFSoC board (QICK-class, DAC/fabric ratio 16) --");
    println!("capacity-only limit : {} qubits", rfsoc.qubits_by_capacity(&params));
    println!("bandwidth limit     : {} qubits", rfsoc.qubits_by_bandwidth());
    println!("banked uncompressed : {} qubits", rfsoc.qubits_uncompressed());

    // COMPAQT: compress a real library, size the uniform-width memory
    // from the measured worst case, and recount.
    let probe = Device::synthesize(Vendor::Ibm, 16.min(n), 0xACE);
    let lib = probe.pulse_library();
    for ws in [8usize, 16] {
        // Uniform-width memory: cap every window at 3 stored words
        // (Section V-A / Figure 11) so the bank count is fixed.
        let compressor = Compressor::new(Variant::IntDctW { ws }).with_max_window_words(3);
        let report = compress_library(&lib, &compressor)?;
        let worst = report.waveforms.iter().map(|w| w.worst_case_window_words).max().unwrap_or(3);
        let qubits = rfsoc.qubits_supported(worst, ws);
        println!(
            "COMPAQT WS={ws:<2}: overall R {:.2}, mean MSE {:.1e}, worst window {worst} words -> {qubits} qubits ({:.2}x)",
            report.overall.ratio(),
            report.mean_mse(),
            rfsoc.gain(worst, ws),
        );
    }

    // Show the banked layout for one waveform.
    let z = Compressor::new(Variant::IntDctW { ws: 16 })
        .compress(lib.iter().next().map(|(_, wf)| wf).expect("library is non-empty"))?;
    let mut mem = BankedMemory::new();
    let (hi, _) = mem.store(&z);
    println!(
        "\nexample layout: '{}' stripes {} windows across {} banks ({} BRAMs backing)",
        z.name,
        hi.windows,
        hi.banks,
        mem.brams_used()
    );
    Ok(())
}
