//! Library round-trip: compress a whole device library, persist it as
//! a CWL container file, load it back as a fresh serving process would,
//! and serve every gate — then demonstrate the integrity check catching
//! a corrupted byte.
//!
//! ```sh
//! cargo run --release --example library_roundtrip
//! ```

use compaqt::core::compress::{Compressor, Variant, SAMPLE_BYTES};
use compaqt::core::store::StoreConfig;
use compaqt::io::{write_library, Reader};
use compaqt::pulse::device::Device;
use compaqt::pulse::vendor::Vendor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Calibration host: synthesize a 5-qubit machine and compress
    //    its full pulse library with the paper's design point.
    let device = Device::synthesize(Vendor::Ibm, 5, 0x10AD);
    let lib = device.pulse_library();
    let compressor = Compressor::new(Variant::IntDctW { ws: 16 });
    let raw_bytes = lib.total_samples() * SAMPLE_BYTES;
    println!("library : {} gates, {} raw sample bytes", lib.len(), raw_bytes);

    // 2. Save: one deterministic container (same library ⇒ same bytes).
    let bytes = write_library(&lib, &compressor)?;
    println!(
        "save    : {} container bytes ({:.2}x smaller than raw samples)",
        bytes.len(),
        raw_bytes as f64 / bytes.len() as f64
    );
    let path = std::env::temp_dir().join("compaqt_library_roundtrip.cwl");
    std::fs::write(&path, &bytes)?;

    // 3. Load: a serving process validates the whole index (bounds,
    //    ordering, CRC-32 per entry) before trusting a single payload.
    let loaded = std::fs::read(&path)?;
    std::fs::remove_file(&path).ok();
    let reader = Reader::from_vec(loaded)?;
    println!(
        "load    : {} entries validated, library rate {:?} GS/s",
        reader.len(),
        reader.sample_rate_gs()
    );
    for entry in reader.entries().take(3) {
        println!(
            "          {:<12} {:<18} {:>4} payload bytes  crc32 {:08x}",
            format!("{}", entry.gate()),
            entry.variant().label(),
            entry.payload_len(),
            entry.crc32()
        );
    }

    // 4. Serve: bulk-load the sharded store (streams move straight in,
    //    no re-encode) and batch-fetch the whole schedule's gate list.
    let store = reader.into_store(StoreConfig::default())?;
    let gates = store.gates();
    let mut outs: Vec<(Vec<f64>, Vec<f64>)> = gates.iter().map(|_| Default::default()).collect();
    let stats = store.fetch_many(&gates, &mut outs)?;
    let mut served = 0usize;
    for (gate, (i, _)) in gates.iter().zip(&outs) {
        assert_eq!(i.len(), lib.get(gate).expect("served gate came from the library").len());
        served += i.len();
    }
    println!(
        "serve   : {} gates, {served} samples/channel, {:.2}x bandwidth expansion",
        gates.len(),
        stats.bandwidth_expansion()
    );

    // 5. Integrity: a single flipped payload byte is caught at load
    //    time and attributed to the damaged gate.
    let mut mangled = bytes.to_vec();
    let last = mangled.len() - 1;
    mangled[last] ^= 0x04;
    match Reader::from_vec(mangled) {
        Err(e) => println!("corrupt : rejected as expected — {e}"),
        Ok(_) => unreachable!("a flipped payload byte must not validate"),
    }
    Ok(())
}
