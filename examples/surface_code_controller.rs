//! Surface-code controller sizing: the QEC workload that makes waveform
//! bandwidth the binding constraint (Figures 5c and 17).
//!
//! Schedules real syndrome-extraction cycles, profiles their concurrency,
//! and counts how many logical qubits one controller supports with and
//! without compressed waveform memory.
//!
//! ```sh
//! cargo run --release --example surface_code_controller
//! ```

use compaqt::hw::rfsoc::RfsocModel;
use compaqt::pulse::memory_model::rfsoc_bandwidth_per_qubit_gb;
use compaqt::pulse::vendor::Vendor;
use compaqt::quantum::schedule::{asap, profile};
use compaqt::quantum::surface::SurfacePatch;
use compaqt::quantum::transpile::transpile;

fn main() {
    let params = Vendor::Ibm.params();
    let bw = rfsoc_bandwidth_per_qubit_gb();

    println!("-- syndrome-cycle bandwidth profiles --");
    for patch in
        [SurfacePatch::rotated_d3(), SurfacePatch::unrotated(3), SurfacePatch::unrotated(5)]
    {
        let cycle = transpile(&patch.syndrome_cycle());
        let sched = asap(&cycle, &params);
        let prof = profile(&sched, bw);
        println!(
            "{:<12} {:>3} qubits | cycle {:>6.0} ns | peak {:>2} gates / {:>2} channels ({:>3.0}% driven) | BW peak {:>5.0} avg {:>5.0} GB/s",
            patch.name,
            patch.n_qubits,
            sched.makespan_ns,
            prof.peak_gates,
            prof.peak_channels,
            100.0 * prof.peak_channels as f64 / patch.n_qubits as f64,
            prof.peak_bandwidth_gb,
            prof.average_bandwidth_gb,
        );
    }

    println!("\n-- logical qubits per RFSoC controller --");
    let rfsoc = RfsocModel::default();
    println!("{:<14} {:>12} {:>12} {:>12}", "design", "phys qubits", "surface-17", "surface-25");
    for (name, words, ws) in [("uncompressed", 16usize, 16usize), ("WS=8", 3, 8), ("WS=16", 3, 16)]
    {
        println!(
            "{:<14} {:>12} {:>12} {:>12}",
            name,
            rfsoc.qubits_supported(words, ws),
            rfsoc.logical_qubits(words, ws, 17),
            rfsoc.logical_qubits(words, ws, 25),
        );
    }
    println!("\nSurface codes keep >80% of the patch driven concurrently, so the");
    println!("controller must provision peak bandwidth; COMPAQT multiplies it ~5x.");
}
