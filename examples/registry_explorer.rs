//! Registry explorer: list the built-in device fleet, parse a custom
//! device description from registry text, and run the scenario matrix
//! over a few devices — the whole registry-driven pipeline in one tour.
//!
//! ```sh
//! cargo run --release --example registry_explorer
//! ```

use compaqt::io::{run_device, ScenarioVariant};
use compaqt::pulse::registry::{Registry, RegistryError};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The built-in fleet: heavy-hex machines at four scales, surface
    //    patches, a Google-style grid and the Table IX exotic set, plus
    //    the named machines `Device::named_machine` resolves through.
    let registry = Registry::builtin();
    println!("builtin registry: {} devices", registry.len());
    for spec in registry.iter() {
        println!(
            "  {:<16} {:<9} {:<9} {:>4} qubits  topology {:<10} seed {:#x}{}",
            spec.name,
            spec.class.token(),
            format!("{:?}", spec.vendor).to_lowercase(),
            spec.n_qubits(),
            spec.topology.label(),
            spec.seed,
            spec.fdm.map(|f| format!("  fdm {}x{:.0}MHz", f.lanes, f.span_mhz)).unwrap_or_default()
        );
    }

    // 2. The text format: a custom lab device parsed from four lines.
    let text = "\
# a small calibration testbed
device lab-chain
  qubits 6
  topology line
  seed 0xAB5
end
";
    let custom = Registry::parse(text)?;
    let lab = custom.get("lab-chain").expect("just parsed");
    println!(
        "\nparsed custom device: {} ({} qubits, {} gates in its library)",
        lab.name,
        lab.n_qubits(),
        lab.build_library().len()
    );

    // 3. Typed errors: the parser rejects structural lies with line
    //    numbers instead of panicking.
    let bad = "device lab-chain\n  qubits 6\n  qubits 7\nend\n";
    match Registry::parse(bad) {
        Err(e @ RegistryError::DuplicateKey { .. }) => println!("rejected as expected: {e}"),
        other => unreachable!("duplicate key must be a typed error, got {other:?}"),
    }

    // 4. The scenario matrix: compress, container-round-trip and verify
    //    each device under every codec variant. Rows only come back if
    //    every decode path was bit-identical to the direct decode.
    println!("\nscenario matrix (verified bit-exact end to end):");
    println!(
        "  {:<16} {:<16} {:>6} {:>10} {:>8} {:>12} {:>8}",
        "device", "variant", "gates", "bytes", "ratio", "mean MSE", "hot hits"
    );
    for name in ["hex-27", "surface-d3", "exotic-tableix"] {
        let spec = registry.get(name).expect("fleet device");
        let variants = ScenarioVariant::full_matrix();
        for row in run_device(spec, &variants)? {
            println!(
                "  {:<16} {:<16} {:>6} {:>10} {:>7.2}x {:>12.3e} {:>8}",
                row.device,
                row.variant,
                row.gates,
                row.container_bytes,
                row.ratio,
                row.mean_mse,
                row.store_hit_rate.map(|r| format!("{:.0}%", 100.0 * r)).unwrap_or("-".into())
            );
        }
    }
    Ok(())
}
