//! Scraping a live `compaqt-serve` daemon: a store with codec metrics
//! armed serves a device library over loopback while clients generate
//! traffic, then one `Metrics` request pulls the whole telemetry
//! snapshot — store counters, per-variant decode histograms, serve-tier
//! request latencies, and the trace ring — and renders it as a
//! Prometheus-style text exposition.
//!
//! ```sh
//! cargo run --release --example metrics_scrape
//! ```

use compaqt::core::compress::{Compressor, Variant};
use compaqt::core::store::StoreConfig;
use compaqt::io::serve::{serve_with, Client, ServeConfig};
use compaqt::io::{write_library, Reader};
use compaqt::obs::render_text;
use compaqt::pulse::device::Device;
use std::sync::Arc;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A container-loaded store with the per-variant codec
    //    histograms switched on (aggregate histograms are always on).
    let device = Device::named_machine("guadalupe");
    let lib = device.pulse_library();
    let bytes = write_library(&lib, &Compressor::new(Variant::IntDctW { ws: 16 }))?;
    let reader = Reader::new(bytes)?;
    let store = Arc::new(reader.into_store(StoreConfig {
        shards: 8,
        hot_capacity: lib.len(),
        codec_metrics: true,
    })?);

    // 2. Serve it, with slow-request tracing armed at 200 µs so the
    //    trace ring has something to say about loopback traffic.
    let config = ServeConfig {
        max_connections: 16,
        slow_request: Duration::from_micros(200),
        trace_events: 128,
        ..ServeConfig::default()
    };
    let handle = serve_with(Arc::clone(&store), "127.0.0.1:0", config)?;
    let addr = handle.local_addr();
    println!("serving on {addr}");

    // 3. Generate traffic: wire fetches from two clients, plus direct
    //    store decodes so the codec histograms fill.
    let gates = store.gates();
    std::thread::scope(|scope| {
        for _ in 0..2 {
            let gates = &gates;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let (mut i, mut q) = (Vec::new(), Vec::new());
                for gate in gates {
                    client.fetch_into(gate, &mut i, &mut q).expect("fetch");
                }
            });
        }
    });
    let (mut i, mut q) = (Vec::new(), Vec::new());
    for gate in &gates {
        store.fetch_into(gate, &mut i, &mut q)?;
        store.fetch_cached(gate)?;
    }

    // 4. Scrape: one Metrics round trip returns the full snapshot.
    let mut client = Client::connect(addr)?;
    let snap = client.metrics()?;
    println!("\n--- text exposition ({} samples) ---", snap.samples.len());
    print!("{}", render_text(&snap));

    // 5. The same numbers, read programmatically.
    let decode = snap.histogram("store_decode_ns").expect("always present");
    println!("--- highlights ---");
    println!(
        "store decodes: {} samples, p50 ~{} ns, p99 ~{} ns, max ~{} ns",
        decode.count(),
        decode.quantile(0.5),
        decode.quantile(0.99),
        decode.max_estimate()
    );
    if let Some(variant) = snap.histogram("store_decode_ns_int_dct_w16") {
        println!("int-DCT-W (WS=16) decodes: {} samples", variant.count());
    }
    let fetch = snap.histogram("serve_fetch_gate_ns").expect("always present");
    println!("wire fetches: {} requests, p90 ~{} ns", fetch.count(), fetch.quantile(0.9));
    println!(
        "trace ring: {} events in the snapshot ({} dropped under race)",
        snap.events.len(),
        snap.dropped_events
    );
    for event in snap.events.iter().rev().take(5) {
        println!("  [{:>12} ns] {:?} a={} b={}", event.t_ns, event.kind, event.a, event.b);
    }

    drop(client);
    handle.shutdown();
    Ok(())
}
