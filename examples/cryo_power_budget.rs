//! Cryogenic power budgeting: fit as many qubits as possible under a
//! dilution refrigerator's 4 K cooling budget (Section VII-D).
//!
//! ```sh
//! cargo run --release --example cryo_power_budget -- 500
//! ```
//! (argument: cooling budget in mW; default 500 mW)

use compaqt::core::adaptive::AdaptiveCompressor;
use compaqt::core::compress::{Compressor, Variant};
use compaqt::core::stats::compress_library;
use compaqt::hw::power::{CryoDesign, CryoPowerModel};
use compaqt::pulse::device::Device;
use compaqt::pulse::library::GateKind;
use compaqt::pulse::vendor::Vendor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let budget_mw: f64 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(500.0);
    let model = CryoPowerModel::default();
    let device = Device::synthesize(Vendor::Ibm, 16, 0x4B);
    let lib = device.pulse_library();

    // Library statistics feed the power model.
    let ws = 16usize;
    let report = compress_library(&lib, &Compressor::new(Variant::IntDctW { ws }))?;
    let hist = report.samples_per_window_histogram();
    let total: usize = hist.values().sum();
    let avg_words = hist.iter().map(|(&w, &n)| w * n).sum::<usize>() as f64 / total as f64;
    let cap_ratio = report.overall.ratio();

    // How much of the library is flat-top (eligible for adaptive bypass)?
    let adaptive = AdaptiveCompressor::new(Variant::IntDctW { ws });
    let mut bypass_weighted = 0.0;
    let mut samples = 0usize;
    for (gate, wf) in lib.iter() {
        samples += wf.len();
        if matches!(gate.kind, GateKind::Cx | GateKind::Measure) {
            if let Ok(z) = adaptive.compress(wf) {
                bypass_weighted += z.bypass_fraction() * wf.len() as f64;
            }
        }
    }
    let fleet_bypass = bypass_weighted / samples as f64;

    println!("-- per-qubit controller power (mW) --");
    let designs = [
        ("uncompressed", CryoDesign::Uncompressed),
        (
            "COMPAQT WS=16",
            CryoDesign::Compressed {
                ws,
                avg_words_per_window: avg_words,
                capacity_ratio: cap_ratio,
            },
        ),
        (
            "  + adaptive",
            CryoDesign::Adaptive {
                ws,
                avg_words_per_window: avg_words,
                capacity_ratio: cap_ratio,
                bypass_fraction: fleet_bypass,
            },
        ),
    ];
    println!(
        "{:<14} {:>6} {:>8} {:>6} {:>7} | qubits under {budget_mw} mW",
        "design", "DAC", "memory", "IDCT", "total"
    );
    for (name, design) in designs {
        let b = model.breakdown(&design);
        println!(
            "{:<14} {:>6.2} {:>8.2} {:>6.2} {:>7.2} | {}",
            name,
            b.dac_mw,
            b.memory_mw,
            b.idct_mw,
            b.total_mw(),
            (budget_mw / b.total_mw()) as usize
        );
    }
    println!(
        "\nlibrary stats: R={cap_ratio:.2}, {avg_words:.2} words/window, fleet bypass {:.0}%",
        100.0 * fleet_bypass
    );
    Ok(())
}
