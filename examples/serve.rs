//! `compaqt-serve` end to end: host compresses a device library into a
//! CWL container, a daemon loads it into the sharded store and serves
//! it over the CWS wire protocol on loopback, and a fleet of
//! controller clients pulls gates concurrently — compressed on the
//! wire, decoded client-side, bit-identical to a direct store fetch.
//!
//! ```sh
//! cargo run --release --example serve
//! ```

use compaqt::core::compress::{Compressor, Variant};
use compaqt::core::store::StoreConfig;
use compaqt::io::serve::{serve_with, Client, ServeConfig};
use compaqt::io::{write_library, Reader};
use compaqt::pulse::device::Device;
use std::sync::Arc;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Host side: compress the 16-qubit guadalupe library into a CWL
    //    container — the artifact a deployment actually ships.
    let device = Device::named_machine("guadalupe");
    let lib = device.pulse_library();
    let compressor = Compressor::new(Variant::IntDctW { ws: 16 });
    let bytes = write_library(&lib, &compressor)?;
    println!("container: {} gates in {} bytes", lib.len(), bytes.len());

    // 2. Daemon side: validate the container, load the store, listen.
    let reader = Reader::new(bytes)?;
    let store = Arc::new(reader.into_store(StoreConfig {
        shards: 8,
        hot_capacity: lib.len(),
        ..StoreConfig::default()
    })?);
    let config = ServeConfig { max_connections: 16, ..ServeConfig::default() };
    let handle = serve_with(Arc::clone(&store), "127.0.0.1:0", config)?;
    println!("serving on {}", handle.local_addr());

    // 3. Controller side: eight concurrent clients sweep the library.
    let gates = store.gates();
    let addr = handle.local_addr();
    let started = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..8 {
            let gates = &gates;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                client.ping().expect("ping");
                let (mut i, mut q) = (Vec::new(), Vec::new());
                let mut samples = 0usize;
                for gate in gates {
                    let stats = client.fetch_into(gate, &mut i, &mut q).expect("fetch");
                    samples += stats.output_samples;
                }
                println!("client {c}: {} gates, {samples} samples", gates.len());
            });
        }
    });
    let elapsed = started.elapsed();

    // 4. One more client checks the library digest and a batched fetch.
    let mut client = Client::connect(addr)?;
    let digest = client.digest()?;
    println!(
        "digest: {} gates, {} payload bytes, fingerprint {:#018x}",
        digest.gates, digest.payload_bytes, digest.fingerprint
    );
    let batch: Vec<_> = gates.iter().take(16).cloned().collect();
    let mut outs = vec![(Vec::new(), Vec::new()); batch.len()];
    client.fetch_many_into(&batch, &mut outs)?;
    println!("batched: {} gates in one round trip", batch.len());

    let stats = handle.stats();
    println!(
        "server: {} connections, {} requests, {} fetches, {} protocol errors in {:.1} ms",
        stats.connections_accepted,
        stats.requests_served,
        stats.fetches_served,
        stats.protocol_errors,
        elapsed.as_secs_f64() * 1e3
    );
    drop(client);
    handle.shutdown();
    Ok(())
}
