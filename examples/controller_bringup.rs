//! Full controller bring-up: the complete Figure 6 flow.
//!
//! calibration cycle (with drift) -> fidelity-aware compression
//! (Algorithm 1) -> binary memory image -> controller load -> sequencer
//! playback of a scheduled circuit.
//!
//! ```sh
//! cargo run --release --example controller_bringup
//! ```

use compaqt::core::bitstream::{read_image, write_image};
use compaqt::core::calibration::CalibrationLoop;
use compaqt::core::compress::{Compressor, Variant};
use compaqt::core::sequencer::{Controller, ControllerConfig, Instruction};
use compaqt::pulse::device::Device;
use compaqt::pulse::library::{GateId, GateKind, PulseLibrary};
use compaqt::pulse::vendor::Vendor;
use compaqt::quantum::circuits::{self, Op};
use compaqt::quantum::schedule::asap;
use compaqt::quantum::transpile::transpile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A freshly calibrated 5-qubit machine (star coupling: all data
    //    qubits talk to the ancilla q4, matching the Bernstein-Vazirani
    //    circuit we will run) drifts; run two calibration cycles with
    //    fidelity-aware recompression.
    //
    //    Note the target: the uniform 3-word window cap bounds the
    //    achievable MSE near 1e-4 for the widest pulses, so asking for
    //    much less makes Algorithm 1 fall back to uncompressed storage —
    //    the capacity/fidelity trade is real.
    let edges = [(0usize, 4usize), (1, 4), (2, 4), (3, 4)];
    let device = Device::synthesize_with_edges(Vendor::Ibm, 5, 0xB0B, &edges);
    let compressor = Compressor::new(Variant::IntDctW { ws: 16 }).with_max_window_words(3);
    let cal = CalibrationLoop::new(device.clone(), compressor, 1e-4);
    let (reports, compressed_library) = cal.run(2)?;
    for r in &reports {
        println!(
            "cycle {}: {} waveforms, {} met target at default threshold, {} tuned, {} fallback; avg R {:.2} in {:.1} ms",
            r.cycle,
            r.waveforms,
            r.met_at_default,
            r.tuned,
            r.fallback_uncompressed,
            r.ratio.avg,
            r.compression_seconds * 1e3
        );
    }

    // 2. Serialize the compressed library into the controller memory
    //    image and parse it back (host -> controller transfer).
    let image = write_image(&compressed_library);
    println!("\nmemory image: {} bytes for {} waveforms", image.len(), compressed_library.len());
    let records = read_image(image)?;
    assert_eq!(records.len(), compressed_library.len());

    // 3. Load the drifted device's library into a QICK-class controller.
    let drifted = device.with_drift(1, 0.02).with_drift(2, 0.02);
    let lib: PulseLibrary = (*drifted.pulse_library()).clone();
    let controller = Controller::load(ControllerConfig::default(), &lib, &compressor)?;
    println!(
        "controller: {} waveforms resident, {} KB stored",
        controller.waveform_count(),
        controller.stored_bits() / 8192
    );

    // 4. Schedule a Bernstein-Vazirani run and play it on the sequencer.
    let circuit = transpile(&circuits::bernstein_vazirani(4, 0b1011));
    let sched = asap(&circuit, drifted.params());
    let instructions: Vec<Instruction> = sched
        .ops
        .iter()
        .filter_map(|sop| {
            let gate = match sop.op {
                Op::X(q) => Some(GateId::single(GateKind::X, q as u16)),
                Op::Sx(q) => Some(GateId::single(GateKind::Sx, q as u16)),
                Op::Cx(c, t) => Some(GateId::pair(GateKind::Cx, c as u16, t as u16)),
                Op::Measure(q) => Some(GateId::single(GateKind::Measure, q as u16)),
                _ => None,
            }?;
            Some(Instruction { gate, start_ns: sop.start_ns })
        })
        .collect();
    let report = controller.play(&instructions)?;
    println!("\nsequencer: {report}");
    assert!(report.sustained(), "the compressed memory must sustain the circuit");
    println!("\nbring-up complete: compressed memory sustained the whole schedule.");
    Ok(())
}
