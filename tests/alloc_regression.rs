//! Allocation-count regression test for the steady-state codec loops.
//!
//! The tentpole guarantee of the plan/buffer-reuse architecture: once
//! scratches and output buffers are warm, *both* directions of the codec
//! run a whole pulse library with **zero heap allocations** — the code
//! behaves like the hardware pipeline it models (which has SRAMs, not a
//! malloc) on decode, and like a budgeted cryogenic host on encode. This
//! binary installs a counting global allocator and asserts the count is
//! exactly zero across repeated full-library decodes and repeated
//! full-library recompressions.
//!
//! (Run with `harness = false`: the libtest harness's main thread
//! lazily allocates its channel-wait context at whatever moment it
//! first blocks — on a loaded box that lands inside a measured region
//! and reads as a flaky nonzero count. A plain `main` owns the only
//! thread in the process, so the counter sees the codec and nothing
//! else.)

use compaqt::core::compress::{CompressedWaveform, Compressor, Variant};
use compaqt::core::engine::{DecodeScratch, DecompressionEngine, EncodeScratch};
use compaqt::pulse::device::Device;
use compaqt::pulse::vendor::Vendor;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Forwards to the system allocator, counting every alloc/realloc.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn main() {
    if !selected_by_harness_args() {
        return;
    }
    steady_state_library_codec_allocates_nothing();
    println!("alloc_regression: all steady-state codec loops allocated nothing");
}

/// Minimal libtest CLI compatibility for a `harness = false` binary:
/// honors positional name filters, `--skip`, `--exact` and `--list`
/// (and ignores the other flags libtest accepts), so filtered runs like
/// `cargo test --workspace store::` and IDE `--list` discovery behave
/// as they would under the default harness instead of unconditionally
/// running the whole suite.
fn selected_by_harness_args() -> bool {
    const NAME: &str = "steady_state_library_codec_allocates_nothing";
    /// Flags whose value arrives as the next argument.
    const VALUE_FLAGS: &[&str] = &["--format", "--logfile", "--test-threads", "--color", "-Z"];
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut filters: Vec<String> = Vec::new();
    let mut skips: Vec<String> = Vec::new();
    let mut exact = false;
    let mut list = false;
    let mut k = 0;
    while k < args.len() {
        let arg = args[k].as_str();
        match arg {
            "--list" => list = true,
            "--exact" => exact = true,
            "--skip" => {
                if let Some(v) = args.get(k + 1) {
                    skips.push(v.clone());
                    k += 1;
                }
            }
            _ if VALUE_FLAGS.contains(&arg) => k += 1, // consume the value
            _ if arg.starts_with("--skip=") => skips.push(arg["--skip=".len()..].to_string()),
            _ if arg.starts_with('-') => {}
            _ => filters.push(arg.to_string()),
        }
        k += 1;
    }
    if list {
        println!("{NAME}: test");
        println!();
        println!("1 test, 0 benchmarks");
        return false;
    }
    let matches = |pat: &str| if exact { pat == NAME } else { NAME.contains(pat) };
    if skips.iter().any(|p| matches(p)) {
        return false;
    }
    filters.is_empty() || filters.iter().any(|p| matches(p))
}

fn steady_state_library_codec_allocates_nothing() {
    // A realistic library: every gate of a 5-qubit synthetic machine,
    // compressed with the paper's design point (int-DCT-W, WS=16).
    let device = Device::synthesize(Vendor::Ibm, 5, 0xA110C);
    let lib = device.pulse_library();
    let compressor = Compressor::new(Variant::IntDctW { ws: 16 });
    let waveforms: Vec<_> = lib.iter().map(|(_, wf)| wf.clone()).collect();
    assert!(waveforms.len() >= 20, "library should be non-trivial");

    // ---- Encode side: recompress the library into reused output slots.
    let mut enc = EncodeScratch::new();
    let mut slots: Vec<CompressedWaveform> =
        waveforms.iter().map(|_| CompressedWaveform::empty()).collect();

    // Warm-up: two full passes size every scratch buffer, cached plan and
    // per-slot output buffer.
    for _ in 0..2 {
        for (wf, slot) in waveforms.iter().zip(&mut slots) {
            compressor.compress_into(wf, &mut enc, slot).unwrap();
        }
    }

    // Steady state: ten more full-library recompressions, zero allocations
    // (a calibration cycle re-running on fresh calibration data).
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut words = 0usize;
    for _ in 0..10 {
        for (wf, slot) in waveforms.iter().zip(&mut slots) {
            compressor.compress_into(wf, &mut enc, slot).unwrap();
            words += slot.words();
        }
    }
    let delta = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert!(words > 0);
    assert_eq!(
        delta,
        0,
        "steady-state compression of {} waveforms x 10 passes must not allocate, saw {delta}",
        waveforms.len()
    );

    // ---- Encode side, shared slot: one output reused across *every*
    // waveform (mixed window counts). The scratch's spare-window pool
    // must preserve inner capacities as the slot shrinks and regrows.
    let mut shared = CompressedWaveform::empty();
    for _ in 0..2 {
        for wf in &waveforms {
            compressor.compress_into(wf, &mut enc, &mut shared).unwrap();
        }
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..10 {
        for wf in &waveforms {
            compressor.compress_into(wf, &mut enc, &mut shared).unwrap();
        }
    }
    let delta = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(
        delta, 0,
        "shared-slot compression across mixed-size waveforms must not allocate, saw {delta}"
    );

    // ---- Adaptive encode: flat-top waveforms re-encoded into reused
    // `AdaptiveCompressed` slots. The segment layout (head ramp /
    // plateau / tail ramp) is stable across refills, so every ramp
    // stream and the segment list itself must be reused — the adaptive
    // path inherits the same zero-allocation guarantee as the plain
    // windowed encoder it wraps.
    use compaqt::core::adaptive::{AdaptiveCompressed, AdaptiveCompressor};
    use compaqt::pulse::shapes::{GaussianSquare, PulseShape};
    let flat_tops: Vec<_> = (0..8)
        .map(|k| {
            GaussianSquare::new(454 + 16 * k, 0.3 + 0.02 * k as f64, 12.0, 300 + 8 * k)
                .to_waveform("flat", 4.54)
        })
        .collect();
    let adaptive = AdaptiveCompressor::new(Variant::IntDctW { ws: 16 });
    let mut aslots: Vec<AdaptiveCompressed> =
        flat_tops.iter().map(|_| AdaptiveCompressed::empty()).collect();
    for _ in 0..2 {
        for (wf, slot) in flat_tops.iter().zip(&mut aslots) {
            adaptive.compress_into(wf, &mut enc, slot).unwrap();
        }
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut plateau_samples = 0usize;
    for _ in 0..10 {
        for (wf, slot) in flat_tops.iter().zip(&mut aslots) {
            adaptive.compress_into(wf, &mut enc, slot).unwrap();
            plateau_samples += (slot.bypass_fraction() * slot.n_samples as f64) as usize;
        }
    }
    let delta = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert!(plateau_samples > 0);
    assert_eq!(
        delta,
        0,
        "steady-state adaptive compression of {} flat-tops x 10 passes must not allocate, saw {delta}",
        flat_tops.len()
    );

    // ---- Factorized forward kernel: the butterfly path that now backs
    // every integer encode must itself be allocation-free in steady
    // state — plan construction (matrix + butterfly tables) is the one
    // allowed allocation, per window size, paid exactly once. Both
    // kernels run so the matrix oracle inherits the same guarantee.
    use compaqt::dsp::fixed::Q15;
    use compaqt::dsp::plan::IntDctPlan;
    let int_plans: Vec<IntDctPlan> = compaqt::dsp::intdct::SUPPORTED_SIZES
        .iter()
        .map(|&ws| IntDctPlan::new(ws).unwrap())
        .collect();
    let max_ws = *compaqt::dsp::intdct::SUPPORTED_SIZES.iter().max().unwrap();
    let window: Vec<Q15> =
        (0..max_ws).map(|i| Q15::from_f64(0.7 * ((i as f64) * 0.37).sin())).collect();
    let mut coeffs = vec![0i32; max_ws];
    let mut restored = vec![Q15::ZERO; max_ws];
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut acc = 0i64;
    for _ in 0..100 {
        for plan in &int_plans {
            let ws = plan.len();
            assert!(plan.uses_factorized_forward());
            plan.forward_into(&window[..ws], &mut coeffs[..ws]);
            acc += i64::from(coeffs[0]);
            plan.forward_matrix_into(&window[..ws], &mut coeffs[..ws]);
            plan.inverse_into(&coeffs[..ws], &mut restored[..ws]);
            acc += i64::from(restored[ws - 1].raw());
        }
    }
    let delta = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert!(acc != 0);
    assert_eq!(
        delta, 0,
        "factorized forward reuse across all window sizes must not allocate, saw {delta}"
    );

    // ---- Decode side: stream the compressed library back out.
    let engine = DecompressionEngine::for_variant(Variant::IntDctW { ws: 16 }).unwrap();
    let mut scratch = DecodeScratch::new();
    let (mut i, mut q) = (Vec::new(), Vec::new());

    // Warm-up: two full passes size every reusable buffer.
    let mut warm_samples = 0usize;
    for _ in 0..2 {
        for z in &slots {
            let stats = engine.decompress_into(z, &mut scratch, &mut i, &mut q).unwrap();
            warm_samples += stats.output_samples;
        }
    }
    assert!(warm_samples > 0);

    // Steady state: ten more full-library decodes, zero allocations.
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut checksum = 0.0f64;
    for _ in 0..10 {
        for z in &slots {
            engine.decompress_into(z, &mut scratch, &mut i, &mut q).unwrap();
            checksum += i[0] + q[z.n_samples - 1];
        }
    }
    let delta = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert!(checksum.is_finite());
    assert_eq!(
        delta,
        0,
        "steady-state decode of {} waveforms x 10 passes must not allocate, saw {delta}",
        slots.len()
    );

    // ---- Serving path: steady-state store fetches allocate nothing.
    // The sharded store adds lock acquisition, engine lookup, scratch
    // checkout/checkin and counter updates around the same decode — all
    // of which must stay off the heap. `hot_capacity` is a *global*
    // bound, so sizing it at exactly the library keeps every gate
    // cached even if all of them hash to one shard — steady-state
    // `fetch_cached` is pure hits.
    use compaqt::core::store::{Store, StoreConfig};
    let store = Store::from_library_with(
        &lib,
        &compressor,
        StoreConfig { shards: 4, hot_capacity: waveforms.len(), ..StoreConfig::default() },
    )
    .unwrap();
    let gates = store.gates();

    // Warm-up: size the output buffers, build the pooled scratch, fill
    // every hot-set slot.
    for _ in 0..2 {
        for gate in &gates {
            store.fetch_into(gate, &mut i, &mut q).unwrap();
            let cached = store.fetch_cached(gate).unwrap();
            assert!(!cached.i().is_empty());
        }
    }

    // Steady state: ten passes of streaming fetches + hot-cache fetches
    // over the whole library, zero allocations (the runtime serving
    // loop: control hardware pulling one gate at a time).
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut served = 0usize;
    for _ in 0..10 {
        for gate in &gates {
            let stats = store.fetch_into(gate, &mut i, &mut q).unwrap();
            served += stats.output_samples;
            let cached = store.fetch_cached(gate).unwrap();
            served += cached.len();
        }
    }
    let delta = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert!(served > 0);
    let stats = store.stats();
    assert_eq!(stats.hot_misses as usize, gates.len(), "warmed hot set must only hit");
    assert_eq!(
        delta,
        0,
        "steady-state store fetches across {} gates x 10 passes must not allocate, saw {delta}",
        gates.len()
    );

    // ---- Lock-free hot hits in isolation: a `fetch_cached` hit is one
    // atomic snapshot load, a scan, a recency stamp and an `Arc`
    // refcount bump — no shard lock and, pinned here, no heap. (The
    // mixed loop above interleaves `fetch_into`; this loop is *pure*
    // hit traffic, the path the contention bench scales across cores.)
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut hit_samples = 0usize;
    for _ in 0..10 {
        for gate in &gates {
            hit_samples += store.fetch_cached(gate).unwrap().len();
        }
    }
    let delta = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert!(hit_samples > 0);
    assert_eq!(
        delta,
        0,
        "pure lock-free hot-hit traffic across {} gates x 10 passes must not allocate, saw {delta}",
        gates.len()
    );

    // ---- Batched serving: `fetch_many` acquires each shard lock once
    // per batch and runs the whole gate list through one pooled scratch;
    // with reused output buffer pairs the steady-state batch allocates
    // nothing.
    let mut outs: Vec<(Vec<f64>, Vec<f64>)> = gates.iter().map(|_| Default::default()).collect();
    for _ in 0..2 {
        store.fetch_many(&gates, &mut outs).unwrap();
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut batch_samples = 0usize;
    for _ in 0..10 {
        let stats = store.fetch_many(&gates, &mut outs).unwrap();
        batch_samples += stats.output_samples;
    }
    let delta = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert!(batch_samples > 0);
    assert_eq!(
        delta,
        0,
        "steady-state fetch_many over {} gates x 10 passes must not allocate, saw {delta}",
        gates.len()
    );

    // ---- Container serving: a library persisted to CWL bytes and
    // loaded back (`Reader::into_store`) must serve `fetch_into` with
    // zero steady-state allocations, exactly like the store it was
    // drained from — and the reader's own random-access decode path
    // (payload parse into a reused slot + engine decode through the
    // scratch) must be allocation-free too once warm.
    use compaqt::io::{write_store, ContainerScratch, Reader};
    let bytes = write_store(&store).unwrap();
    let reader = Reader::new(bytes.clone()).unwrap();
    let mut cscratch = ContainerScratch::new();
    for _ in 0..2 {
        for gate in &gates {
            reader.fetch_into(gate, &mut cscratch, &mut i, &mut q).unwrap();
        }
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut container_samples = 0usize;
    for _ in 0..10 {
        for gate in &gates {
            let stats = reader.fetch_into(gate, &mut cscratch, &mut i, &mut q).unwrap();
            container_samples += stats.output_samples;
        }
    }
    let delta = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert!(container_samples > 0);
    assert_eq!(
        delta,
        0,
        "steady-state reader fetches across {} gates x 10 passes must not allocate, saw {delta}",
        gates.len()
    );

    let loaded = reader.into_store(compaqt::core::store::StoreConfig::default()).unwrap();
    for _ in 0..2 {
        for gate in &gates {
            loaded.fetch_into(gate, &mut i, &mut q).unwrap();
        }
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut loaded_samples = 0usize;
    for _ in 0..10 {
        for gate in &gates {
            let stats = loaded.fetch_into(gate, &mut i, &mut q).unwrap();
            loaded_samples += stats.output_samples;
        }
    }
    let delta = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert!(loaded_samples > 0);
    assert_eq!(
        delta,
        0,
        "container-loaded store fetches across {} gates x 10 passes must not allocate, saw {delta}",
        gates.len()
    );

    // ---- Lazy-CRC serving: in `LazyCrc` mode the per-entry verdict
    // bitmaps are preallocated at open, so a *first touch* — checksum
    // computed over the borrowed payload, verdict bit set with one
    // `fetch_or` — must not allocate either, and neither may the
    // cached-verdict hits every later touch takes. Buffers are warmed
    // through one lazy reader; a second, still-unjudged reader then
    // takes its first touches entirely inside the measured region.
    use compaqt::io::ReaderOptions;
    let warm_lazy = Reader::open(bytes.clone(), ReaderOptions::lazy_crc()).unwrap();
    let fresh_lazy = Reader::open(bytes.clone(), ReaderOptions::lazy_crc()).unwrap();
    for _ in 0..2 {
        for gate in &gates {
            warm_lazy.fetch_into(gate, &mut cscratch, &mut i, &mut q).unwrap();
        }
    }
    assert_eq!(warm_lazy.crc_checked(), gates.len(), "warm reader fully judged");
    assert_eq!(fresh_lazy.crc_checked(), 0, "fresh reader still unjudged");
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut lazy_samples = 0usize;
    for pass in 0..10 {
        for gate in &gates {
            let stats = fresh_lazy.fetch_into(gate, &mut cscratch, &mut i, &mut q).unwrap();
            lazy_samples += stats.output_samples;
        }
        if pass == 0 {
            // Every entry was just first-touched with zero allocations.
            assert_eq!(fresh_lazy.crc_checked(), gates.len());
        }
    }
    let delta = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert!(lazy_samples > 0);
    assert_eq!(
        delta,
        0,
        "lazy-CRC first touches + cached-verdict fetches across {} gates must not allocate, saw {delta}",
        gates.len()
    );

    // ---- Mixed-shape container serving: alternating entry variants
    // force the reader's reusable stream slot to switch `ChannelData`
    // shapes (Windows ↔ Delta/Raw) on every other fetch. The slot's
    // spare pools must park displaced buffers instead of dropping
    // their capacity, or this loop allocates on every fetch.
    let mut writer = compaqt::io::Writer::new();
    for (k, (gate, wf)) in lib.iter().enumerate() {
        let variant = if k % 2 == 0 { Variant::IntDctW { ws: 16 } } else { Variant::Delta };
        let z = Compressor::new(variant).compress(wf).unwrap();
        writer.add(gate, &z).unwrap();
    }
    let mixed = Reader::new(writer.finish().unwrap()).unwrap();
    let mixed_gates: Vec<_> = mixed.gates().cloned().collect();
    let mut mscratch = ContainerScratch::new();
    for _ in 0..2 {
        for gate in &mixed_gates {
            mixed.fetch_into(gate, &mut mscratch, &mut i, &mut q).unwrap();
        }
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut mixed_samples = 0usize;
    for _ in 0..10 {
        for gate in &mixed_gates {
            let stats = mixed.fetch_into(gate, &mut mscratch, &mut i, &mut q).unwrap();
            mixed_samples += stats.output_samples;
        }
    }
    let delta = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert!(mixed_samples > 0);
    assert_eq!(
        delta,
        0,
        "mixed-shape container fetches across {} gates x 10 passes must not allocate, saw {delta}",
        mixed_gates.len()
    );

    // ---- Wire serving: the server's per-connection request→response
    // machine. `Responder` owns every reusable buffer the fetch path
    // needs (response frame, gate-id parse slots), so once warm,
    // answering Ping / FetchGate / same-shape FetchMany frames — frame
    // parse, CRC check, shard read lock, stream serialization, CRC
    // append — allocates nothing. This is exactly what each
    // `compaqt-serve` connection thread runs per request; only the
    // socket I/O around it is missing here.
    use compaqt::io::serve::{Responder, ServeConfig};
    use compaqt::io::wire::{encode_fetch_gate, encode_fetch_many, encode_ping};
    let requests: Vec<Vec<u8>> = {
        let mut out = bytes::BytesMut::new();
        let mut frames = Vec::new();
        encode_ping(&mut out, 0xD1A6);
        frames.push(out.as_ref().to_vec());
        for gate in &gates {
            encode_fetch_gate(&mut out, gate).unwrap();
            frames.push(out.as_ref().to_vec());
        }
        encode_fetch_many(&mut out, &gates).unwrap();
        frames.push(out.as_ref().to_vec());
        frames
    };
    let mut responder = Responder::new(&ServeConfig::default());
    for _ in 0..2 {
        for frame in &requests {
            responder.respond(&store, frame).unwrap();
        }
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut response_bytes = 0usize;
    for _ in 0..10 {
        for frame in &requests {
            response_bytes += responder.respond(&store, frame).unwrap().len();
        }
    }
    let delta = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert!(response_bytes > 0);
    assert_eq!(
        delta,
        0,
        "steady-state wire responses across {} requests x 10 passes must not allocate, saw {delta}",
        requests.len()
    );

    // ---- Wire serving straight from a container: the same responder,
    // answering from a lazily-validated `Reader` instead of a resident
    // `Store` through the `FetchSource` bridge. Streams are served
    // zero-parse (container payload bytes *are* wire stream bytes), so
    // once the verdict bits and frame buffers are warm this must be as
    // allocation-free as the store path — the larger-than-RAM serving
    // claim in one assertion.
    for _ in 0..2 {
        for frame in &requests {
            responder.respond(&fresh_lazy, frame).unwrap();
        }
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut reader_response_bytes = 0usize;
    for _ in 0..10 {
        for frame in &requests {
            reader_response_bytes += responder.respond(&fresh_lazy, frame).unwrap().len();
        }
    }
    let delta = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert!(reader_response_bytes > 0);
    assert_eq!(
        delta,
        0,
        "zero-parse wire responses from a lazy reader across {} requests x 10 passes must not allocate, saw {delta}",
        requests.len()
    );

    // ---- Instrumented serving: arming every observability instrument
    // must cost the steady state nothing on the heap. A store built
    // with `codec_metrics: true` and a live trace ring records
    // aggregate *and* per-variant latency histograms on each decode
    // (relaxed atomic adds; the per-variant row is found under a read
    // lock once its slot exists); the same fetch loops as above must
    // still count zero.
    use compaqt::obs::TraceRing;
    use std::sync::Arc;
    let obs_store = Store::from_library_with(
        &lib,
        &compressor,
        StoreConfig { shards: 4, hot_capacity: waveforms.len(), codec_metrics: true },
    )
    .unwrap();
    assert!(obs_store.attach_trace(Arc::new(TraceRing::new(64))));
    let obs_gates = obs_store.gates();
    let mut obs_outs: Vec<(Vec<f64>, Vec<f64>)> =
        obs_gates.iter().map(|_| Default::default()).collect();
    for _ in 0..2 {
        for gate in &obs_gates {
            obs_store.fetch_into(gate, &mut i, &mut q).unwrap();
            assert!(!obs_store.fetch_cached(gate).unwrap().i().is_empty());
        }
        obs_store.fetch_many(&obs_gates, &mut obs_outs).unwrap();
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut instrumented = 0usize;
    for _ in 0..10 {
        for gate in &obs_gates {
            instrumented += obs_store.fetch_into(gate, &mut i, &mut q).unwrap().output_samples;
            instrumented += obs_store.fetch_cached(gate).unwrap().len();
        }
        instrumented += obs_store.fetch_many(&obs_gates, &mut obs_outs).unwrap().output_samples;
    }
    let delta = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert!(instrumented > 0);
    assert_eq!(
        delta,
        0,
        "instrumented store fetches across {} gates x 10 passes must not allocate, saw {delta}",
        obs_gates.len()
    );
    // The instruments actually recorded (scraping may allocate — it is
    // the cold path, and runs outside the measured region).
    let mut snap = compaqt::obs::Snapshot::new();
    obs_store.collect_obs(&mut snap);
    assert!(snap.histogram("store_decode_ns").unwrap().count() > 0);
    assert!(snap.histogram("store_decode_ns_int_dct_w16").unwrap().count() > 0);

    // ---- Instrumented wire serving: a responder wired to a serve-tier
    // hub, with slow-request tracing armed so every recorded request
    // also pushes a ring event. Request handling, latency recording and
    // ring stamping must all stay off the heap; only the `Metrics`
    // scrape itself (after the measured region) may allocate.
    use compaqt::io::serve::ServeObs;
    use compaqt::io::wire::{encode_metrics, parse_metrics_report, FrameKind};
    use std::time::Instant;
    let obs_config =
        ServeConfig { slow_request: std::time::Duration::from_nanos(1), ..ServeConfig::default() };
    let serve_obs = Arc::new(ServeObs::new(&obs_config));
    let mut obs_responder = Responder::new(&obs_config);
    obs_responder.attach_obs(Arc::clone(&serve_obs));
    for _ in 0..2 {
        for frame in &requests {
            obs_responder.respond(&obs_store, frame).unwrap();
        }
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut obs_response_bytes = 0usize;
    for _ in 0..10 {
        for frame in &requests {
            let started = Instant::now();
            obs_response_bytes += obs_responder.respond(&obs_store, frame).unwrap().len();
            serve_obs.record_request(FrameKind::FetchGate, started.elapsed().as_nanos() as u64);
        }
    }
    let delta = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert!(obs_response_bytes > 0);
    assert_eq!(
        delta,
        0,
        "instrumented wire responses across {} requests x 10 passes must not allocate, saw {delta}",
        requests.len()
    );
    // The cold scrape sees what the hot loops recorded: per-kind
    // latency counts and the slow-request events stamped above.
    let mut scrape = bytes::BytesMut::new();
    encode_metrics(&mut scrape);
    let report = obs_responder.respond(&obs_store, &scrape).unwrap();
    use compaqt::io::wire::{FRAME_HEADER_BYTES, FRAME_TRAILER_BYTES};
    let payload = &report[FRAME_HEADER_BYTES..report.len() - FRAME_TRAILER_BYTES];
    let snap = parse_metrics_report(payload).unwrap();
    assert_eq!(
        snap.histogram("serve_fetch_gate_ns").unwrap().count(),
        (10 * requests.len()) as u64
    );
    assert!(snap.events.iter().any(|e| e.kind == compaqt::obs::TraceKind::SlowRequest));
}
