//! Allocation-count regression test for the steady-state decode loop.
//!
//! The tentpole guarantee of the plan/buffer-reuse decode path: once the
//! scratch and output buffers are warm, decoding an entire pulse library
//! performs **zero heap allocations** — the engine behaves like the
//! hardware pipeline it models, which has SRAMs, not a malloc. This
//! binary installs a counting global allocator and asserts the count is
//! exactly zero across repeated full-library decodes.
//!
//! (Kept to a single `#[test]` so no concurrent test thread can perturb
//! the counter.)

use compaqt::core::compress::{Compressor, Variant};
use compaqt::core::engine::{DecodeScratch, DecompressionEngine};
use compaqt::pulse::device::Device;
use compaqt::pulse::vendor::Vendor;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Forwards to the system allocator, counting every alloc/realloc.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_library_decode_allocates_nothing() {
    // A realistic library: every gate of a 5-qubit synthetic machine,
    // compressed with the paper's design point (int-DCT-W, WS=16).
    let device = Device::synthesize(Vendor::Ibm, 5, 0xA110C);
    let lib = device.pulse_library();
    let compressor = Compressor::new(Variant::IntDctW { ws: 16 });
    let compressed: Vec<_> = lib.iter().map(|(_, wf)| compressor.compress(wf).unwrap()).collect();
    assert!(compressed.len() >= 20, "library should be non-trivial");

    let engine = DecompressionEngine::for_variant(Variant::IntDctW { ws: 16 }).unwrap();
    let mut scratch = DecodeScratch::new();
    let (mut i, mut q) = (Vec::new(), Vec::new());

    // Warm-up: two full passes size every reusable buffer.
    let mut warm_samples = 0usize;
    for _ in 0..2 {
        for z in &compressed {
            let stats = engine.decompress_into(z, &mut scratch, &mut i, &mut q).unwrap();
            warm_samples += stats.output_samples;
        }
    }
    assert!(warm_samples > 0);

    // Steady state: ten more full-library decodes, zero allocations.
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut checksum = 0.0f64;
    for _ in 0..10 {
        for z in &compressed {
            engine.decompress_into(z, &mut scratch, &mut i, &mut q).unwrap();
            checksum += i[0] + q[z.n_samples - 1];
        }
    }
    let delta = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert!(checksum.is_finite());
    assert_eq!(
        delta,
        0,
        "steady-state decode of {} waveforms x 10 passes must not allocate, saw {delta}",
        compressed.len()
    );
}
