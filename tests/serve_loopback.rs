//! Loopback stress for `compaqt-serve`: a container-loaded [`Store`]
//! behind a real TCP listener, hammered by concurrent blocking
//! clients, must serve every waveform **bit-identical** to a direct
//! in-process `Store::fetch_into`, honor its connection cap with a
//! graceful Busy rejection, free stalled slots via the read timeout,
//! and treat application-level misses (unknown gate) as answers — not
//! as reasons to drop the connection.

use compaqt::core::compress::{Compressor, Variant};
use compaqt::core::store::{Store, StoreConfig};
use compaqt::io::serve::{serve, serve_with, Client, ServeConfig, ServeError, ServeStats};
use compaqt::io::{write_library, ErrorCode, Reader};
use compaqt::pulse::device::Device;
use compaqt::pulse::library::{GateId, GateKind, PulseLibrary};
use std::sync::Arc;
use std::time::Duration;

/// The full 16-qubit guadalupe pulse library — the paper's headline
/// device, and big enough (hundreds of waveforms) that eight clients
/// sweeping it concurrently actually contend on the store's shards.
fn guadalupe() -> Arc<PulseLibrary> {
    Device::named_machine("guadalupe").pulse_library()
}

/// Loads a store the deployment way: library → CWL container bytes →
/// validated [`Reader`] → sharded [`Store`].
fn container_loaded_store(lib: &PulseLibrary) -> Arc<Store> {
    let bytes = write_library(lib, &Compressor::new(Variant::IntDctW { ws: 16 })).unwrap();
    let reader = Reader::new(bytes).unwrap();
    let config = StoreConfig { shards: 8, hot_capacity: lib.len(), ..StoreConfig::default() };
    Arc::new(reader.into_store(config).unwrap())
}

/// Asserts the server's ledger settles at exactly `expected`. Counters
/// increment just after the response bytes are written, so a client can
/// observe its answer a beat before the ledger moves — spin briefly
/// before the final (exact) comparison.
fn assert_exact_ledger(handle: &compaqt::io::serve::ServerHandle, expected: ServeStats) {
    for _ in 0..200 {
        if handle.stats() == expected {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(handle.stats(), expected);
}

#[test]
fn eight_concurrent_clients_fetch_bit_identically() {
    let lib = guadalupe();
    let store = container_loaded_store(&lib);

    // Ground truth: every gate decoded directly, bits recorded.
    let gates = store.gates();
    let expected: Vec<(Vec<u64>, Vec<u64>)> = {
        let (mut i, mut q) = (Vec::new(), Vec::new());
        gates
            .iter()
            .map(|g| {
                store.fetch_into(g, &mut i, &mut q).unwrap();
                (i.iter().map(|s| s.to_bits()).collect(), q.iter().map(|s| s.to_bits()).collect())
            })
            .collect()
    };

    let handle = serve(Arc::clone(&store), "127.0.0.1:0").unwrap();
    let addr = handle.local_addr();

    const CLIENTS: usize = 8;
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let (gates, expected) = (&gates, &expected);
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client.ping().unwrap();
                let (mut i, mut q) = (Vec::new(), Vec::new());
                // Each client sweeps the library from a different
                // starting point so the shard access pattern differs.
                for k in 0..gates.len() {
                    let n = (k + c * gates.len() / CLIENTS) % gates.len();
                    client.fetch_into(&gates[n], &mut i, &mut q).unwrap();
                    let (ei, eq) = &expected[n];
                    assert!(
                        i.iter().map(|s| s.to_bits()).eq(ei.iter().copied()),
                        "served I samples must be bit-identical to Store::fetch_into"
                    );
                    assert!(
                        q.iter().map(|s| s.to_bits()).eq(eq.iter().copied()),
                        "served Q samples must be bit-identical to Store::fetch_into"
                    );
                }
            });
        }
    });

    // The exact ledger: one ping + one fetch per gate per client, and
    // nothing else moved — no rejections, no protocol errors, no
    // timeouts.
    assert_exact_ledger(
        &handle,
        ServeStats {
            connections_accepted: CLIENTS as u64,
            connections_rejected_busy: 0,
            requests_served: (CLIENTS * (gates.len() + 1)) as u64,
            fetches_served: (CLIENTS * gates.len()) as u64,
            protocol_errors: 0,
            timeouts: 0,
        },
    );
    handle.shutdown();
}

#[test]
fn batch_list_and_digest_match_the_store() {
    let lib = guadalupe();
    let store = container_loaded_store(&lib);
    let handle = serve(Arc::clone(&store), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();

    // The served gate list is the store's own (sorted) list.
    let gates = client.gates().unwrap();
    assert_eq!(gates, store.gates());

    // One batched round trip equals per-gate fetches, bit for bit.
    let mut batch: Vec<(Vec<f64>, Vec<f64>)> = vec![(Vec::new(), Vec::new()); gates.len()];
    client.fetch_many_into(&gates, &mut batch).unwrap();
    let (mut i, mut q) = (Vec::new(), Vec::new());
    for (gate, (bi, bq)) in gates.iter().zip(&batch) {
        store.fetch_into(gate, &mut i, &mut q).unwrap();
        assert!(i.iter().map(|s| s.to_bits()).eq(bi.iter().map(|s| s.to_bits())));
        assert!(q.iter().map(|s| s.to_bits()).eq(bq.iter().map(|s| s.to_bits())));
    }

    // The owned-stream fetch returns exactly what the store holds.
    let owned = client.fetch(&gates[0]).unwrap();
    store.with_stream(&gates[0], |z| assert_eq!(&owned, z)).unwrap();

    // The digest counts every gate — and moves when the library does.
    let before = client.digest().unwrap();
    assert_eq!(before.gates as usize, lib.len());
    assert!(before.payload_bytes > 0);
    let extra = GateId::single(GateKind::Custom("loopback_extra".into()), 0);
    store.insert(extra, owned).unwrap();
    let after = client.digest().unwrap();
    assert_eq!(after.gates, before.gates + 1);
    assert!(after.payload_bytes > before.payload_bytes);
    assert_ne!(after.fingerprint, before.fingerprint);

    drop(client);
    handle.shutdown();
}

#[test]
fn connection_cap_rejects_with_busy_then_recovers() {
    let lib = guadalupe();
    let store = container_loaded_store(&lib);
    let config = ServeConfig { max_connections: 1, ..ServeConfig::default() };
    let handle = serve_with(store, "127.0.0.1:0", config).unwrap();
    let addr = handle.local_addr();

    let mut first = Client::connect(addr).unwrap();
    first.ping().unwrap();

    // The second connection is turned away with a typed Busy frame —
    // not a silent reset.
    let mut second = Client::connect(addr).unwrap();
    match second.ping() {
        Err(ServeError::Remote { code: ErrorCode::Busy, .. }) => {}
        other => panic!("expected a Busy rejection, got {other:?}"),
    }

    // Once the first client leaves, its slot frees and service resumes
    // (allow a moment for the connection thread to wind down).
    drop(first);
    let recovered = (0..100).any(|_| {
        std::thread::sleep(Duration::from_millis(10));
        Client::connect(addr).and_then(|mut c| c.ping()).is_ok()
    });
    assert!(recovered, "a freed slot must readmit clients");
    assert!(handle.stats().connections_rejected_busy >= 1);
    // Clients left on their own; the 30 s default deadline never fired.
    assert_eq!(handle.stats().timeouts, 0);
    handle.shutdown();
}

#[test]
fn read_timeout_frees_a_stalled_slot() {
    let lib = guadalupe();
    let store = container_loaded_store(&lib);
    let config = ServeConfig {
        max_connections: 1,
        read_timeout: Duration::from_millis(100),
        ..ServeConfig::default()
    };
    let handle = serve_with(store, "127.0.0.1:0", config).unwrap();
    let addr = handle.local_addr();

    // A client that connects and then says nothing pins the only slot…
    let stalled = Client::connect(addr).unwrap();
    // …until the read timeout disconnects it and frees the slot.
    let recovered = (0..100).any(|_| {
        std::thread::sleep(Duration::from_millis(20));
        Client::connect(addr).and_then(|mut c| c.ping()).is_ok()
    });
    assert!(recovered, "the read timeout must evict a stalled connection");
    // Exactly one deadline fired: the stalled client's. The probing
    // clients above were Busy-rejected or left cleanly (EOF), and
    // neither path counts as a timeout.
    assert_eq!(handle.stats().timeouts, 1);
    drop(stalled);
    handle.shutdown();
}

#[test]
fn unknown_gate_is_an_answer_not_a_disconnect() {
    let lib = guadalupe();
    let store = container_loaded_store(&lib);
    let handle = serve(store, "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();

    let absent = GateId::single(GateKind::Custom("no_such_gate".into()), 77);
    let (mut i, mut q) = (Vec::new(), Vec::new());
    match client.fetch_into(&absent, &mut i, &mut q) {
        Err(ServeError::Remote { code: ErrorCode::UnknownGate, .. }) => {}
        other => panic!("expected an UnknownGate response, got {other:?}"),
    }
    // A batch naming an absent gate is all-or-nothing.
    let mut outs = vec![(Vec::new(), Vec::new())];
    match client.fetch_many_into(std::slice::from_ref(&absent), &mut outs) {
        Err(ServeError::Remote { code: ErrorCode::UnknownGate, .. }) => {}
        other => panic!("expected an UnknownGate batch response, got {other:?}"),
    }

    // The connection survives application-level misses.
    client.ping().unwrap();
    let gates = client.gates().unwrap();
    client.fetch_into(&gates[0], &mut i, &mut q).unwrap();
    assert!(!i.is_empty());

    // The exact ledger: five requests (two misses, ping, list, one
    // fetch), one stream served, and no errors of any kind.
    assert_exact_ledger(
        &handle,
        ServeStats {
            connections_accepted: 1,
            connections_rejected_busy: 0,
            requests_served: 5,
            fetches_served: 1,
            protocol_errors: 0,
            timeouts: 0,
        },
    );
    handle.shutdown();
}
