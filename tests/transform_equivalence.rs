//! Factorized-vs-matrix equivalence suite for the integer DCT.
//!
//! The factorized Loeffler-style butterfly kernel is the *default*
//! forward transform of the codec (`IntDctPlan::forward_into`), so its
//! contract with the dense matrix oracle is the strongest one possible:
//! **bit-exactness**, on every supported window size, for every input —
//! the factorization only reorders exact integer additions, so there is
//! no max-ulp bound to manage. This suite drives both kernels over
//! hostile deterministic patterns (full-scale DC, all-min, alternating
//! sign, impulses) and proptest-generated random windows, asserts `==`
//! on the coefficient streams in both directions, and closes the loop
//! with round-trip composition checks.

use compaqt::dsp::fixed::Q15;
use compaqt::dsp::intdct::{IntDct, SUPPORTED_SIZES};
use compaqt::dsp::plan::IntDctPlan;
use proptest::prelude::*;

/// The window sizes the issue calls out explicitly, plus the rest of the
/// supported family (4 rides along for free).
const EQUIV_SIZES: [usize; 5] = SUPPORTED_SIZES;

/// Named hostile windows: the saturation and sign-flip patterns most
/// likely to expose reassociation overflow or sign bugs in a fixed-point
/// butterfly.
fn hostile_windows(ws: usize) -> Vec<(&'static str, Vec<Q15>)> {
    let mut cases: Vec<(&'static str, Vec<Q15>)> = vec![
        ("all-max", vec![Q15::MAX; ws]),
        ("all-min", vec![Q15::MIN; ws]),
        ("alternating", (0..ws).map(|i| if i % 2 == 0 { Q15::MAX } else { Q15::MIN }).collect()),
        ("dc-half", vec![Q15::from_f64(0.5); ws]),
        ("dc-neg", vec![Q15::from_f64(-0.75); ws]),
        ("zero", vec![Q15::ZERO; ws]),
    ];
    for pos in [0, ws / 2, ws - 1] {
        let mut imp = vec![Q15::ZERO; ws];
        imp[pos] = Q15::MAX;
        cases.push(("impulse-max", imp));
        let mut imp = vec![Q15::ZERO; ws];
        imp[pos] = Q15::MIN;
        cases.push(("impulse-min", imp));
    }
    cases
}

#[test]
fn factorized_forward_is_default_and_bit_exact_on_hostile_windows() {
    for ws in EQUIV_SIZES {
        let plan = IntDctPlan::new(ws).unwrap();
        assert!(plan.uses_factorized_forward(), "ws={ws}: butterfly must be the default");
        let mut fast = vec![0i32; ws];
        let mut oracle = vec![0i32; ws];
        for (name, x) in hostile_windows(ws) {
            plan.forward_into(&x, &mut fast);
            plan.forward_matrix_into(&x, &mut oracle);
            assert_eq!(fast, oracle, "ws={ws} case {name}");
        }
    }
}

#[test]
fn factorized_inverse_is_bit_exact_on_hostile_coefficients() {
    // The inverse accepts arbitrary i32 coefficients (hostile streams
    // included); both kernels accumulate in i64, so they must agree even
    // at the extreme corners of the coefficient range.
    for ws in EQUIV_SIZES {
        let t = IntDct::new(ws).unwrap();
        let hostile: [Vec<i32>; 4] = [
            vec![i32::MAX; ws],
            vec![i32::MIN; ws],
            (0..ws).map(|k| if k % 2 == 0 { i32::MAX } else { i32::MIN }).collect(),
            (0..ws).map(|k| if k == ws - 1 { i32::MIN } else { 0 }).collect(),
        ];
        let mut a = vec![Q15::ZERO; ws];
        let mut b = vec![Q15::ZERO; ws];
        for y in &hostile {
            t.inverse_into(y, &mut a);
            t.inverse_butterfly_into(y, &mut b);
            assert_eq!(a, b, "ws={ws}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn forward_kernels_agree_on_random_windows(raw in proptest::collection::vec(proptest::num::i16::ANY, 64)) {
        for ws in EQUIV_SIZES {
            let x: Vec<Q15> = raw[..ws].iter().map(|&r| Q15::from_raw(r)).collect();
            let plan = IntDctPlan::new(ws).unwrap();
            let mut fast = vec![0i32; ws];
            let mut oracle = vec![0i32; ws];
            plan.forward_into(&x, &mut fast);
            plan.forward_matrix_into(&x, &mut oracle);
            prop_assert_eq!(fast, oracle, "ws={}", ws);
        }
    }

    #[test]
    fn inverse_kernels_agree_on_random_coefficients(raw in proptest::collection::vec(proptest::num::i32::ANY, 64)) {
        for ws in EQUIV_SIZES {
            let t = IntDct::new(ws).unwrap();
            let mut a = vec![Q15::ZERO; ws];
            let mut b = vec![Q15::ZERO; ws];
            t.inverse_into(&raw[..ws], &mut a);
            t.inverse_butterfly_into(&raw[..ws], &mut b);
            prop_assert_eq!(a, b, "ws={}", ws);
        }
    }

    #[test]
    fn round_trip_composition_is_kernel_independent(raw in proptest::collection::vec(proptest::num::i16::ANY, 64)) {
        // forward -> inverse through the factorized kernels must land on
        // the same samples as matrix -> matrix: with identical
        // coefficient streams (asserted above) and bit-exact inverses,
        // the composition cannot diverge — this closes the loop on the
        // full factorized round trip.
        for ws in EQUIV_SIZES {
            let x: Vec<Q15> = raw[..ws].iter().map(|&r| Q15::from_raw(r)).collect();
            let t = IntDct::new(ws).unwrap();
            let mut y_fast = vec![0i32; ws];
            let mut y_oracle = vec![0i32; ws];
            t.forward_into(&x, &mut y_fast);
            t.forward_matrix_into(&x, &mut y_oracle);
            prop_assert_eq!(&y_fast, &y_oracle, "ws={} coefficients", ws);
            let mut back_fast = vec![Q15::ZERO; ws];
            let mut back_oracle = vec![Q15::ZERO; ws];
            t.inverse_butterfly_into(&y_fast, &mut back_fast);
            t.inverse_into(&y_oracle, &mut back_oracle);
            prop_assert_eq!(back_fast, back_oracle, "ws={} reconstruction", ws);
        }
    }

    #[test]
    fn round_trip_error_stays_bounded_for_smooth_windows(
        amp in 0.05f64..0.95,
        freq in 1usize..4,
    ) {
        // Sanity on top of equivalence: the factorized default still
        // reconstructs smooth windows to codec accuracy.
        for ws in EQUIV_SIZES {
            let x: Vec<Q15> = (0..ws)
                .map(|i| {
                    let ph = std::f64::consts::PI * freq as f64 * (i as f64 + 0.5) / ws as f64;
                    Q15::from_f64(amp * ph.sin())
                })
                .collect();
            let t = IntDct::new(ws).unwrap();
            let mut y = vec![0i32; ws];
            t.forward_into(&x, &mut y);
            let mut back = vec![Q15::ZERO; ws];
            t.inverse_butterfly_into(&y, &mut back);
            // Rounding plus the HEVC matrix's documented ~1% row
            // non-orthogonality (see `transform_properties`): the bound
            // scales with amplitude at the large window sizes.
            let bound = 6e-3 + 0.015 * amp;
            for (a, b) in x.iter().zip(&back) {
                prop_assert!((a.to_f64() - b.to_f64()).abs() < bound, "ws={}", ws);
            }
        }
    }
}
