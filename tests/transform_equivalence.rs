//! Factorized-vs-matrix equivalence suite for the integer DCT.
//!
//! The factorized Loeffler-style butterfly kernel is the *default*
//! forward transform of the codec (`IntDctPlan::forward_into`), so its
//! contract with the dense matrix oracle is the strongest one possible:
//! **bit-exactness**, on every supported window size, for every input —
//! the factorization only reorders exact integer additions, so there is
//! no max-ulp bound to manage. This suite drives both kernels over
//! hostile deterministic patterns (full-scale DC, all-min, alternating
//! sign, impulses) and proptest-generated random windows, asserts `==`
//! on the coefficient streams in both directions, and closes the loop
//! with round-trip composition checks.

//!
//! The batched structure-of-arrays kernels ([`BatchedIntDctPlan`],
//! [`BatchedDct`]) extend the same contract across windows: transforming
//! N concatenated windows in one call must be bit-identical to N
//! per-window calls, on every SIMD tier the machine can run, for every
//! batch size including ragged tails past the internal chunk width.

use compaqt::dsp::batched::{BatchedDct, BatchedIntDctPlan, KernelTier, MAX_BATCH_CHUNK};
use compaqt::dsp::dct::Dct;
use compaqt::dsp::fixed::Q15;
use compaqt::dsp::intdct::{IntDct, SUPPORTED_SIZES};
use compaqt::dsp::plan::IntDctPlan;
use proptest::prelude::*;

/// The window sizes the issue calls out explicitly, plus the rest of the
/// supported family (4 rides along for free).
const EQUIV_SIZES: [usize; 5] = SUPPORTED_SIZES;

/// Named hostile windows: the saturation and sign-flip patterns most
/// likely to expose reassociation overflow or sign bugs in a fixed-point
/// butterfly.
fn hostile_windows(ws: usize) -> Vec<(&'static str, Vec<Q15>)> {
    let mut cases: Vec<(&'static str, Vec<Q15>)> = vec![
        ("all-max", vec![Q15::MAX; ws]),
        ("all-min", vec![Q15::MIN; ws]),
        ("alternating", (0..ws).map(|i| if i % 2 == 0 { Q15::MAX } else { Q15::MIN }).collect()),
        ("dc-half", vec![Q15::from_f64(0.5); ws]),
        ("dc-neg", vec![Q15::from_f64(-0.75); ws]),
        ("zero", vec![Q15::ZERO; ws]),
    ];
    for pos in [0, ws / 2, ws - 1] {
        let mut imp = vec![Q15::ZERO; ws];
        imp[pos] = Q15::MAX;
        cases.push(("impulse-max", imp));
        let mut imp = vec![Q15::ZERO; ws];
        imp[pos] = Q15::MIN;
        cases.push(("impulse-min", imp));
    }
    cases
}

#[test]
fn factorized_forward_is_default_and_bit_exact_on_hostile_windows() {
    for ws in EQUIV_SIZES {
        let plan = IntDctPlan::new(ws).unwrap();
        assert!(plan.uses_factorized_forward(), "ws={ws}: butterfly must be the default");
        let mut fast = vec![0i32; ws];
        let mut oracle = vec![0i32; ws];
        for (name, x) in hostile_windows(ws) {
            plan.forward_into(&x, &mut fast);
            plan.forward_matrix_into(&x, &mut oracle);
            assert_eq!(fast, oracle, "ws={ws} case {name}");
        }
    }
}

#[test]
fn factorized_inverse_is_bit_exact_on_hostile_coefficients() {
    // The inverse accepts arbitrary i32 coefficients (hostile streams
    // included); both kernels accumulate in i64, so they must agree even
    // at the extreme corners of the coefficient range.
    for ws in EQUIV_SIZES {
        let t = IntDct::new(ws).unwrap();
        let hostile: [Vec<i32>; 4] = [
            vec![i32::MAX; ws],
            vec![i32::MIN; ws],
            (0..ws).map(|k| if k % 2 == 0 { i32::MAX } else { i32::MIN }).collect(),
            (0..ws).map(|k| if k == ws - 1 { i32::MIN } else { 0 }).collect(),
        ];
        let mut a = vec![Q15::ZERO; ws];
        let mut b = vec![Q15::ZERO; ws];
        for y in &hostile {
            t.inverse_into(y, &mut a);
            t.inverse_butterfly_into(y, &mut b);
            assert_eq!(a, b, "ws={ws}");
        }
    }
}

/// Every SIMD tier the running machine can execute, scalar first. Under
/// `COMPAQT_FORCE_SCALAR` (the CI fallback leg) this collapses to just
/// `Scalar`, so the suite exercises exactly the kernels dispatch could
/// pick — never a tier the CPU would fault on.
fn runnable_tiers() -> Vec<KernelTier> {
    let mut tiers = vec![KernelTier::Scalar];
    match KernelTier::detected() {
        KernelTier::Avx2 => tiers.extend([KernelTier::Sse2, KernelTier::Avx2]),
        KernelTier::Sse2 => tiers.push(KernelTier::Sse2),
        KernelTier::Scalar => {}
    }
    tiers
}

/// Batch sizes that hit the interesting internal shapes: a single
/// window, a partial chunk, exactly one full chunk, and a ragged tail
/// past the chunk width.
const BATCH_SIZES: [usize; 4] = [1, 3, MAX_BATCH_CHUNK, MAX_BATCH_CHUNK + 5];

#[test]
fn batched_forward_is_bit_exact_on_hostile_windows_across_tiers() {
    for ws in EQUIV_SIZES {
        let plan = IntDctPlan::new(ws).unwrap();
        let mut expected = vec![0i32; ws];
        for (name, x) in hostile_windows(ws) {
            plan.forward_into(&x, &mut expected);
            for batch in BATCH_SIZES {
                let windows: Vec<Q15> = x.iter().copied().cycle().take(ws * batch).collect();
                let mut out = vec![0i32; ws * batch];
                for tier in runnable_tiers() {
                    let mut bp = BatchedIntDctPlan::with_tier(IntDct::new(ws).unwrap(), tier);
                    bp.forward_batched_into(&windows, &mut out);
                    for (w, got) in out.chunks_exact(ws).enumerate() {
                        assert_eq!(
                            got, expected,
                            "ws={ws} case {name} batch={batch} tier={tier:?} window={w}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn batched_inverse_is_bit_exact_on_hostile_coefficients_across_tiers() {
    for ws in EQUIV_SIZES {
        let t = IntDct::new(ws).unwrap();
        let hostile: [Vec<i32>; 3] = [
            vec![i32::MAX; ws],
            (0..ws).map(|k| if k % 2 == 0 { i32::MAX } else { i32::MIN }).collect(),
            (0..ws).map(|k| if k == ws - 1 { i32::MIN } else { 0 }).collect(),
        ];
        let mut expected = vec![Q15::ZERO; ws];
        for y in &hostile {
            t.inverse_into(y, &mut expected);
            for batch in BATCH_SIZES {
                let coeffs: Vec<i32> = y.iter().copied().cycle().take(ws * batch).collect();
                let mut out = vec![Q15::ZERO; ws * batch];
                for tier in runnable_tiers() {
                    let mut bp = BatchedIntDctPlan::with_tier(t.clone(), tier);
                    bp.inverse_batched_into(&coeffs, &mut out);
                    for (w, got) in out.chunks_exact(ws).enumerate() {
                        assert_eq!(got, expected, "ws={ws} batch={batch} tier={tier:?} window={w}");
                    }
                }
            }
        }
    }
}

#[test]
fn force_scalar_plan_agrees_with_detected_dispatch() {
    // `from_transform` picks up whatever `KernelTier::detected()` chose
    // for this process (honoring COMPAQT_FORCE_SCALAR); pinning Scalar
    // explicitly must produce the same bits — the dispatch decision can
    // never change results, only speed.
    for ws in EQUIV_SIZES {
        let t = IntDct::new(ws).unwrap();
        let batch = MAX_BATCH_CHUNK + 1;
        let windows: Vec<Q15> =
            (0..ws * batch).map(|i| Q15::from_f64(0.8 * ((i as f64) * 0.61).sin())).collect();
        let mut scalar_out = vec![0i32; ws * batch];
        let mut dispatch_out = vec![0i32; ws * batch];
        BatchedIntDctPlan::with_tier(t.clone(), KernelTier::Scalar)
            .forward_batched_into(&windows, &mut scalar_out);
        let mut dispatched = BatchedIntDctPlan::from_transform(t);
        assert_eq!(dispatched.tier(), KernelTier::detected());
        dispatched.forward_batched_into(&windows, &mut dispatch_out);
        assert_eq!(scalar_out, dispatch_out, "ws={ws}");
        let mut scalar_back = vec![Q15::ZERO; ws * batch];
        let mut dispatch_back = vec![Q15::ZERO; ws * batch];
        BatchedIntDctPlan::with_tier(IntDct::new(ws).unwrap(), KernelTier::Scalar)
            .inverse_batched_into(&scalar_out, &mut scalar_back);
        dispatched.inverse_batched_into(&dispatch_out, &mut dispatch_back);
        assert_eq!(scalar_back, dispatch_back, "ws={ws} inverse");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn batched_forward_matches_per_window_and_oracle_on_random_batches(
        raw in proptest::collection::vec(proptest::num::i16::ANY, 64 * (MAX_BATCH_CHUNK + 5)),
        batch in 1usize..=MAX_BATCH_CHUNK + 5,
    ) {
        for ws in EQUIV_SIZES {
            let windows: Vec<Q15> =
                raw[..ws * batch].iter().map(|&r| Q15::from_raw(r)).collect();
            let plan = IntDctPlan::new(ws).unwrap();
            let mut per_window = vec![0i32; ws * batch];
            let mut oracle = vec![0i32; ws * batch];
            for (x, (f, o)) in windows.chunks_exact(ws).zip(
                per_window.chunks_exact_mut(ws).zip(oracle.chunks_exact_mut(ws)),
            ) {
                plan.forward_into(x, f);
                plan.forward_matrix_into(x, o);
            }
            prop_assert_eq!(&per_window, &oracle, "ws={} per-window vs oracle", ws);
            let mut batched = vec![0i32; ws * batch];
            for tier in runnable_tiers() {
                let mut bp = BatchedIntDctPlan::with_tier(IntDct::new(ws).unwrap(), tier);
                bp.forward_batched_into(&windows, &mut batched);
                prop_assert_eq!(&batched, &per_window, "ws={} batch={} tier={:?}", ws, batch, tier);
            }
        }
    }

    #[test]
    fn batched_inverses_match_per_window_on_random_batches(
        raw in proptest::collection::vec(proptest::num::i32::ANY, 64 * (MAX_BATCH_CHUNK + 5)),
        batch in 1usize..=MAX_BATCH_CHUNK + 5,
    ) {
        for ws in EQUIV_SIZES {
            let coeffs = &raw[..ws * batch];
            let t = IntDct::new(ws).unwrap();
            let mut per_window = vec![Q15::ZERO; ws * batch];
            let mut per_window_f64 = vec![0.0f64; ws * batch];
            for (y, (q, f)) in coeffs.chunks_exact(ws).zip(
                per_window.chunks_exact_mut(ws).zip(per_window_f64.chunks_exact_mut(ws)),
            ) {
                t.inverse_into(y, q);
                t.inverse_f64_into(y, 2, f);
            }
            let mut batched_q = vec![Q15::ZERO; ws * batch];
            let mut batched_f = vec![0.0f64; ws * batch];
            for tier in runnable_tiers() {
                let mut bp = BatchedIntDctPlan::with_tier(t.clone(), tier);
                bp.inverse_batched_into(coeffs, &mut batched_q);
                prop_assert_eq!(&batched_q, &per_window, "ws={} batch={} tier={:?}", ws, batch, tier);
                bp.inverse_f64_batched_into(coeffs, 2, &mut batched_f);
                let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
                prop_assert_eq!(
                    bits(&batched_f),
                    bits(&per_window_f64),
                    "ws={} batch={} tier={:?} f64",
                    ws, batch, tier
                );
            }
        }
    }

    #[test]
    fn batched_float_forward_matches_per_window_bitwise(
        raw in proptest::collection::vec(-1.0f64..1.0, 64 * (MAX_BATCH_CHUNK + 5)),
        batch in 1usize..=MAX_BATCH_CHUNK + 5,
    ) {
        // The f64 twin preserves each lane's accumulation order, so even
        // floating point stays *bitwise* identical to the per-window
        // kernel — checked via to_bits, which -0.0 == 0.0 would hide.
        for ws in EQUIV_SIZES {
            let samples = &raw[..ws * batch];
            let dct = Dct::new(ws);
            let mut per_window = vec![0.0f64; ws * batch];
            for (x, o) in samples.chunks_exact(ws).zip(per_window.chunks_exact_mut(ws)) {
                dct.forward_into(x, o);
            }
            let mut batched = vec![0.0f64; ws * batch];
            for tier in runnable_tiers() {
                let mut bp = BatchedDct::with_tier(Dct::new(ws), tier);
                bp.forward_batched_into(samples, &mut batched);
                let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
                prop_assert_eq!(
                    bits(&batched),
                    bits(&per_window),
                    "ws={} batch={} tier={:?}",
                    ws, batch, tier
                );
            }
        }
    }

    #[test]
    fn forward_kernels_agree_on_random_windows(raw in proptest::collection::vec(proptest::num::i16::ANY, 64)) {
        for ws in EQUIV_SIZES {
            let x: Vec<Q15> = raw[..ws].iter().map(|&r| Q15::from_raw(r)).collect();
            let plan = IntDctPlan::new(ws).unwrap();
            let mut fast = vec![0i32; ws];
            let mut oracle = vec![0i32; ws];
            plan.forward_into(&x, &mut fast);
            plan.forward_matrix_into(&x, &mut oracle);
            prop_assert_eq!(fast, oracle, "ws={}", ws);
        }
    }

    #[test]
    fn inverse_kernels_agree_on_random_coefficients(raw in proptest::collection::vec(proptest::num::i32::ANY, 64)) {
        for ws in EQUIV_SIZES {
            let t = IntDct::new(ws).unwrap();
            let mut a = vec![Q15::ZERO; ws];
            let mut b = vec![Q15::ZERO; ws];
            t.inverse_into(&raw[..ws], &mut a);
            t.inverse_butterfly_into(&raw[..ws], &mut b);
            prop_assert_eq!(a, b, "ws={}", ws);
        }
    }

    #[test]
    fn round_trip_composition_is_kernel_independent(raw in proptest::collection::vec(proptest::num::i16::ANY, 64)) {
        // forward -> inverse through the factorized kernels must land on
        // the same samples as matrix -> matrix: with identical
        // coefficient streams (asserted above) and bit-exact inverses,
        // the composition cannot diverge — this closes the loop on the
        // full factorized round trip.
        for ws in EQUIV_SIZES {
            let x: Vec<Q15> = raw[..ws].iter().map(|&r| Q15::from_raw(r)).collect();
            let t = IntDct::new(ws).unwrap();
            let mut y_fast = vec![0i32; ws];
            let mut y_oracle = vec![0i32; ws];
            t.forward_into(&x, &mut y_fast);
            t.forward_matrix_into(&x, &mut y_oracle);
            prop_assert_eq!(&y_fast, &y_oracle, "ws={} coefficients", ws);
            let mut back_fast = vec![Q15::ZERO; ws];
            let mut back_oracle = vec![Q15::ZERO; ws];
            t.inverse_butterfly_into(&y_fast, &mut back_fast);
            t.inverse_into(&y_oracle, &mut back_oracle);
            prop_assert_eq!(back_fast, back_oracle, "ws={} reconstruction", ws);
        }
    }

    #[test]
    fn round_trip_error_stays_bounded_for_smooth_windows(
        amp in 0.05f64..0.95,
        freq in 1usize..4,
    ) {
        // Sanity on top of equivalence: the factorized default still
        // reconstructs smooth windows to codec accuracy.
        for ws in EQUIV_SIZES {
            let x: Vec<Q15> = (0..ws)
                .map(|i| {
                    let ph = std::f64::consts::PI * freq as f64 * (i as f64 + 0.5) / ws as f64;
                    Q15::from_f64(amp * ph.sin())
                })
                .collect();
            let t = IntDct::new(ws).unwrap();
            let mut y = vec![0i32; ws];
            t.forward_into(&x, &mut y);
            let mut back = vec![Q15::ZERO; ws];
            t.inverse_butterfly_into(&y, &mut back);
            // Rounding plus the HEVC matrix's documented ~1% row
            // non-orthogonality (see `transform_properties`): the bound
            // scales with amplitude at the large window sizes.
            let bound = 6e-3 + 0.015 * amp;
            for (a, b) in x.iter().zip(&back) {
                prop_assert!((a.to_f64() - b.to_f64()).abs() < bound, "ws={}", ws);
            }
        }
    }
}
