//! The registry-driven scenario matrix: every built-in fleet device is
//! compressed with every codec variant, round-tripped through a CWL
//! container (and the serving [`Store`](compaqt::core::store::Store) for
//! plain streams), and verified bit-exact — the CI acceptance gate for
//! the declarative device registry.
//!
//! Debug-profile (`cargo test -q`) runs cover the small fleet devices
//! with the full variant matrix and the large ones with the one-variant
//! smoke matrix; the `#[ignore]`d tests extend full-matrix coverage to
//! the 65/127/433-qubit devices and run in the release-profile
//! `scenario-matrix` CI job via `--include-ignored`.

use compaqt::io::{run_device, run_fleet, ScenarioRow, ScenarioVariant};
use compaqt::pulse::device::Device;
use compaqt::pulse::registry::{self, surface_qubits, DeviceSpec, Registry, TopologyKind};
use compaqt::pulse::topology::Topology;
use compaqt::pulse::vendor::Vendor;
use compaqt::quantum::surface::SurfacePatch;
use proptest::prelude::*;

/// Looks a device up in the built-in registry (panicking with the name
/// on a miss, so a renamed fleet entry fails loudly here).
fn builtin(name: &str) -> &'static DeviceSpec {
    Registry::builtin().get(name).unwrap_or_else(|| panic!("no builtin device {name}"))
}

/// Asserts the invariants every returned row already implies, plus the
/// cross-row sanity the matrix is meant to demonstrate.
fn check_rows(rows: &[ScenarioRow], expected_variants: usize) {
    assert_eq!(rows.len(), expected_variants);
    for row in rows {
        assert!(row.gates > 0, "{}: empty library", row.device);
        assert!(row.container_bytes > 0, "{}: empty container", row.device);
        assert!(
            row.ratio > 1.0,
            "{} / {}: ratio {} is expansion",
            row.device,
            row.variant,
            row.ratio
        );
        assert!(row.mean_mse.is_finite() && row.mean_mse >= 0.0);
        if let Some(rate) = row.store_hit_rate {
            // The store pass re-fetches every gate: second round must hit.
            assert!(rate >= 0.5, "{} / {}: hit rate {rate}", row.device, row.variant);
        }
    }
}

#[test]
fn builtin_fleet_meets_acceptance_floor() {
    let fleet = registry::fleet();
    assert!(fleet.len() >= 6, "fleet has only {} devices", fleet.len());

    let big_heavy_hex =
        fleet.iter().filter(|s| s.topology == TopologyKind::HeavyHex && s.n_qubits() >= 65).count();
    assert!(big_heavy_hex >= 2, "only {big_heavy_hex} heavy-hex devices at >= 65 qubits");

    let surface =
        fleet.iter().filter(|s| matches!(s.topology, TopologyKind::Surface { .. })).count();
    assert!(surface >= 1, "no surface-code patch in the fleet");

    // Every fleet device is registered and validates.
    for spec in &fleet {
        assert_eq!(builtin(&spec.name), spec);
        spec.validate().unwrap();
    }
}

#[test]
fn small_fleet_devices_pass_the_full_matrix() {
    let variants = ScenarioVariant::full_matrix();
    for name in ["hex-27", "exotic-tableix"] {
        let rows = run_device(builtin(name), &variants).unwrap_or_else(|e| panic!("{name}: {e}"));
        check_rows(&rows, variants.len());
    }
}

#[test]
fn remaining_fleet_devices_pass_the_smoke_matrix() {
    // Debug-profile coverage of every other fleet device; the ignored
    // release-CI tests below re-run these with the full matrix.
    let variants = ScenarioVariant::smoke_matrix();
    let specs = ["surface-d3", "sycamore-53", "hex-65", "hex-127", "surface-d5"].map(builtin);
    let rows = run_fleet(specs, &variants).unwrap();
    check_rows(&rows, specs.len() * variants.len());
    // More qubits, more gates — the matrix actually scales with the
    // device, rather than re-running one fixture under new names.
    assert!(rows[2].gates < rows[3].gates, "hex-65 vs hex-127 gate counts");
}

/// Release-profile CI coverage: the full variant matrix on the rest of
/// the fleet — the mid-size devices, the large heavy-hex lattices and
/// the distance-5 surface patch.
#[test]
#[ignore = "full matrix on large devices; run via --include-ignored in release CI"]
fn large_fleet_devices_pass_the_full_matrix() {
    let variants = ScenarioVariant::full_matrix();
    for name in ["surface-d3", "sycamore-53", "hex-65", "hex-127", "surface-d5"] {
        let rows = run_device(builtin(name), &variants).unwrap_or_else(|e| panic!("{name}: {e}"));
        check_rows(&rows, variants.len());
    }
}

/// Release-profile CI coverage: the 433-qubit Osprey-scale device.
#[test]
#[ignore = "433-qubit device; run via --include-ignored in release CI"]
fn osprey_scale_device_passes_the_smoke_matrix() {
    let rows = run_device(builtin("hex-433"), &ScenarioVariant::smoke_matrix()).unwrap();
    check_rows(&rows, 1);
    assert_eq!(rows[0].qubits, 433);
}

#[test]
fn surface_topology_matches_the_quantum_crate_patch() {
    // The registry sizes surface patches as (2d-1)^2 grid lattices; the
    // quantum crate builds the same unrotated patch from stabilizers.
    // Both views must agree on qubit count and on the coupling graph.
    for d in [3usize, 5] {
        let patch = SurfacePatch::unrotated(d);
        let kind = TopologyKind::Surface { distance: d };
        assert_eq!(surface_qubits(d), patch.n_qubits);

        let mut registry_edges: Vec<(usize, usize)> =
            kind.edges(patch.n_qubits).into_iter().map(|(a, b)| (a.min(b), a.max(b))).collect();
        registry_edges.sort_unstable();

        let mut patch_edges: Vec<(usize, usize)> = patch
            .stabilizers
            .iter()
            .flat_map(|s| s.data.iter().map(move |&q| (s.ancilla.min(q), s.ancilla.max(q))))
            .collect();
        patch_edges.sort_unstable();
        patch_edges.dedup();

        assert_eq!(registry_edges, patch_edges, "distance-{d} coupling graphs differ");
    }
}

#[test]
fn named_machines_stay_bit_compatible_with_direct_synthesis() {
    // `Device::named_machine` now routes through the registry; the
    // calibrated libraries must stay bit-identical to the historical
    // direct-synthesis path for every registered machine.
    for spec in registry::named_machines() {
        let via_registry = Device::named_machine(spec.name.trim_start_matches("ibm_"));
        let direct = Device::synthesize(Vendor::Ibm, spec.n_qubits(), spec.seed);
        let (a, b) = (via_registry.pulse_library(), direct.pulse_library());
        assert_eq!(a.len(), b.len(), "{}: gate counts differ", spec.name);
        for (gate, wf) in a.iter_sorted() {
            let other = b.get(gate).unwrap_or_else(|| panic!("{}: {gate} missing", spec.name));
            let same = wf.i().iter().zip(other.i()).all(|(x, y)| x.to_bits() == y.to_bits())
                && wf.q().iter().zip(other.q()).all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(same, "{}: {gate} waveform changed", spec.name);
        }
    }
}

#[test]
fn heavy_hex_couplings_include_the_chain() {
    // The replay suite walks nearest-neighbour CX chains; this is the
    // topological fact that makes those circuits legal on the fleet's
    // heavy-hex devices.
    for n in [27usize, 65] {
        let edges = Topology::HeavyHex.edges(n);
        for i in 1..n {
            assert!(
                edges.contains(&(i - 1, i)),
                "heavy-hex({n}) is missing chain edge ({}, {i})",
                i - 1
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Randomly sized small devices pass a randomly chosen matrix cell —
    /// the matrix is not tuned to the fleet's specific sizes. Case count
    /// is amplified by `PROPTEST_CASES` in the scenario-matrix CI job.
    #[test]
    fn random_small_devices_round_trip(
        qubits in 2usize..6,
        seed in proptest::num::u64::ANY,
        vendor_ibm in 0u8..2,
        cell in 0usize..8,
    ) {
        let vendor = if vendor_ibm == 0 { Vendor::Ibm } else { Vendor::Google };
        let spec = DeviceSpec::transmon("prop-dev", vendor, TopologyKind::Line, qubits, seed);
        spec.validate().unwrap();
        let variants = ScenarioVariant::full_matrix();
        let variant = variants[cell % variants.len()];
        let rows = run_device(&spec, &[variant]).unwrap();
        prop_assert_eq!(rows.len(), 1);
        prop_assert!(rows[0].ratio > 1.0);
    }
}
