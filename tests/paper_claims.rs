//! The paper's headline claims, checked end to end.
//!
//! These are the numbers the abstract promises: ~5x bandwidth/qubit-count
//! gain on RFSoCs, >2.5x cryo memory-power reduction (up to ~4x with
//! adaptive decompression), and <0.1% gate-fidelity degradation.

use compaqt::core::compress::{Compressor, Variant};
use compaqt::core::stats::compress_library;
use compaqt::hw::power::{CryoDesign, CryoPowerModel};
use compaqt::hw::rfsoc::RfsocModel;
use compaqt::pulse::device::Device;
use compaqt::pulse::vendor::Vendor;
use compaqt::quantum::errors::NoiseModel;
use compaqt::quantum::rb::{run_rb, RbConfig, RbQubits};

#[test]
fn claim_5x_more_qubits_per_rfsoc() {
    let rfsoc = RfsocModel::default();
    // Figure 11 / Section V-C: worst case 3 words per window.
    let gain = rfsoc.gain(3, 16);
    assert!(gain > 5.0, "got {gain}");
}

#[test]
fn claim_waveforms_compress_5x_or_more_on_average() {
    let device = Device::named_machine("guadalupe");
    let lib = device.pulse_library();
    let report = compress_library(&lib, &Compressor::new(Variant::IntDctW { ws: 16 })).unwrap();
    let avg = report.ratio_summary().avg;
    assert!(avg > 5.0, "Table VII average: got {avg}");
}

#[test]
fn claim_memory_power_reduction_over_2_5x() {
    let model = CryoPowerModel::default();
    let base = model.breakdown(&CryoDesign::Uncompressed);
    let comp = model.breakdown(&CryoDesign::Compressed {
        ws: 16,
        avg_words_per_window: 2.2,
        capacity_ratio: 6.5,
    });
    let reduction = base.memory_mw / comp.memory_mw;
    assert!(reduction > 2.5, "got {reduction}");
}

#[test]
fn claim_adaptive_reaches_4x_total_reduction() {
    let model = CryoPowerModel::default();
    let base = model.breakdown(&CryoDesign::Uncompressed);
    let adaptive = model.breakdown(&CryoDesign::Adaptive {
        ws: 8,
        avg_words_per_window: 2.2,
        capacity_ratio: 6.5,
        bypass_fraction: 0.78,
    });
    let reduction = base.total_mw() / adaptive.total_mw();
    assert!(reduction > 4.0, "got {reduction}");
}

#[test]
fn claim_fidelity_degradation_under_one_tenth_percent() {
    // Per-gate distortion infidelity for the WS=16 design point stays
    // below 1e-3 across a whole machine's library.
    let device = Device::named_machine("lima");
    let lib = device.pulse_library();
    let noise = NoiseModel::from_compression(
        NoiseModel::ibm_baseline(),
        &lib,
        &Compressor::new(Variant::IntDctW { ws: 16 }),
    )
    .unwrap();
    // coherent angle theta: infidelity = (2/3) sin^2(theta/2) < 1e-3.
    let infid = 2.0 / 3.0 * (noise.coherent_1q_angle / 2.0f64).sin().powi(2);
    assert!(infid < 1e-3, "1Q distortion infidelity {infid:e}");
}

#[test]
fn claim_rb_epc_increase_is_small() {
    // Table III: compressed designs within ~0.003 of baseline p.
    let config = RbConfig { lengths: vec![1, 10, 30, 60], sequences_per_length: 24, seed: 0xC1A1 };
    let device = Device::named_machine("guadalupe");
    let lib = device.pulse_library();
    let baseline_model = NoiseModel::ibm_baseline();
    let compressed_model = NoiseModel::from_compression(
        baseline_model,
        &lib,
        &Compressor::new(Variant::IntDctW { ws: 16 }),
    )
    .unwrap();
    let base = run_rb(RbQubits::Two, &baseline_model, &config);
    let comp = run_rb(RbQubits::Two, &compressed_model, &config);
    assert!(base.p - comp.p < 0.01, "baseline {} vs compressed {}", base.p, comp.p);
}

#[test]
fn claim_bandwidth_wall_is_5x() {
    // Figure 5d: capacity alone supports >200 qubits; bandwidth cuts it
    // below 40 — a 5x drop.
    let rfsoc = RfsocModel::default();
    let by_cap = rfsoc.qubits_by_capacity(&Vendor::Ibm.params());
    let by_bw = rfsoc.qubits_by_bandwidth();
    assert!(by_cap > 200);
    assert!(by_bw < 40);
    assert!(by_cap as f64 / by_bw as f64 > 5.0);
}

#[test]
fn claim_mse_correlates_with_gate_fidelity() {
    // Section IV-C: the compile-time proxy behind Algorithm 1. Spearman
    // check across thresholds: infidelity ordering follows MSE ordering.
    use compaqt::quantum::transmon;
    let device = Device::synthesize(Vendor::Ibm, 1, 0xC0);
    let wf = device.pi_pulse(0);
    let mut pairs = Vec::new();
    for thr in [0.002, 0.01, 0.05, 0.2] {
        let z =
            Compressor::new(Variant::IntDctW { ws: 16 }).with_threshold(thr).compress(&wf).unwrap();
        let restored = z.decompress().unwrap();
        pairs.push((wf.mse(&restored), transmon::distortion_infidelity(&wf, &restored)));
    }
    for w in pairs.windows(2) {
        assert!(w[1].0 >= w[0].0, "MSE should grow with threshold");
        assert!(w[1].1 >= w[0].1 * 0.5, "infidelity should track MSE: {:?}", pairs);
    }
}
