//! Container round-trip properties: write → read → decode must be
//! bit-identical to the in-memory decode for every stream kind the
//! format can hold, and the bytes themselves must be a pure function of
//! the library contents (same library ⇒ identical file, whatever order
//! it was staged in).
//!
//! Three layers are pinned:
//!
//! 1. **stream round-trip** — the parsed payload `==` the original
//!    compressed value (field-exact, not just sample-exact), for plain
//!    variants across WS 8–64, `DCT-N`, `Delta`, overlapped and
//!    adaptive streams;
//! 2. **decode agreement** — `Reader::fetch_into` and a
//!    `Store::from_reader`-loaded store produce the same samples as
//!    decoding the never-serialized stream;
//! 3. **determinism** — container bytes are identical across add
//!    orders and across writer entry points (`Writer` vs
//!    `write_library` vs `write_store`).

use compaqt::core::adaptive::AdaptiveCompressor;
use compaqt::core::compress::{CompressedWaveform, Compressor, Variant};
use compaqt::core::engine::{DecodeScratch, DecompressionEngine};
use compaqt::core::overlap::OverlapCompressor;
use compaqt::core::store::{Store, StoreConfig};
use compaqt::io::{
    write_library, write_report, write_store, ContainerScratch, FromContainer, Reader,
    StreamPayload, Writer,
};
use compaqt::pulse::device::Device;
use compaqt::pulse::library::{GateId, GateKind};
use compaqt::pulse::shapes::{Drag, GaussianSquare, PulseShape};
use compaqt::pulse::vendor::Vendor;
use compaqt::pulse::waveform::Waveform;
use proptest::prelude::*;

mod common;

/// The plain variants the container must carry losslessly.
fn plain_variants() -> [Variant; 10] {
    [
        Variant::Delta,
        Variant::DctN,
        Variant::DctW { ws: 8 },
        Variant::DctW { ws: 16 },
        Variant::DctW { ws: 32 },
        Variant::DctW { ws: 64 },
        Variant::IntDctW { ws: 8 },
        Variant::IntDctW { ws: 16 },
        Variant::IntDctW { ws: 32 },
        Variant::IntDctW { ws: 64 },
    ]
}

fn ramp_pulse(n: usize, amp: f64) -> Waveform {
    Drag::new(n, amp, n as f64 / 4.0, 0.2).to_waveform("X(q0)", 4.54)
}

fn flat_pulse(n: usize, amp: f64) -> Waveform {
    GaussianSquare::new(n, amp, 40.0, (3 * n) / 4).to_waveform("CX(q0,q1)", 4.54)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Plain streams of every variant survive the container bit-exactly
    /// and decode to the same samples through every serving path.
    #[test]
    fn plain_streams_round_trip_bit_exactly(
        variant_idx in 0usize..10,
        n in 70usize..420,
        amp in 0.15f64..0.85,
    ) {
        let variant = plain_variants()[variant_idx];
        let wf = ramp_pulse(n, amp);
        let z = Compressor::new(variant).compress(&wf).unwrap();
        let gate = GateId::single(GateKind::X, 0);
        let mut writer = Writer::new();
        writer.add(&gate, &z).unwrap();
        let reader = Reader::new(writer.finish().unwrap()).unwrap();

        // Field-exact stream round-trip.
        let StreamPayload::Plain(back) = reader.find(&gate).unwrap().read().unwrap() else {
            panic!("plain entry read back as a different kind");
        };
        prop_assert_eq!(&back, &z, "stream must round-trip field-exactly");

        // Decode agreement: in-memory engine vs container fetch vs store.
        let engine = DecompressionEngine::for_variant(variant).unwrap();
        let mut scratch = DecodeScratch::new();
        let (mut i0, mut q0) = (Vec::new(), Vec::new());
        engine.decompress_into(&z, &mut scratch, &mut i0, &mut q0).unwrap();

        let mut cscratch = ContainerScratch::new();
        let (mut i1, mut q1) = (Vec::new(), Vec::new());
        reader.fetch_into(&gate, &mut cscratch, &mut i1, &mut q1).unwrap();
        prop_assert_eq!(&i0, &i1, "reader I decode must be bit-identical");
        prop_assert_eq!(&q0, &q1, "reader Q decode must be bit-identical");

        let store = Store::from_reader(&reader, StoreConfig::default()).unwrap();
        let (mut i2, mut q2) = (Vec::new(), Vec::new());
        store.fetch_into(&gate, &mut i2, &mut q2).unwrap();
        prop_assert_eq!(&i0, &i2, "store I decode must be bit-identical");
        prop_assert_eq!(&q0, &q2, "store Q decode must be bit-identical");
    }

    /// Overlapped and adaptive streams round-trip field-exactly and
    /// decode identically to the never-serialized value.
    #[test]
    fn overlap_and_adaptive_round_trip(
        ws_idx in 0usize..4,
        n in 300usize..900,
        amp in 0.2f64..0.8,
    ) {
        let ws = [8usize, 16, 32, 64][ws_idx];
        let ramp = ramp_pulse(n / 2, amp);
        let flat = flat_pulse(n, amp);
        let lapped = OverlapCompressor::new(ws).unwrap().compress(&ramp).unwrap();
        let adaptive = AdaptiveCompressor::new(Variant::IntDctW { ws: 16 })
            .compress(&flat)
            .unwrap();

        let mut writer = Writer::new();
        let g_overlap = GateId::single(GateKind::X, 1);
        let g_adaptive = GateId::pair(GateKind::Cx, 0, 1);
        writer.add_overlap(&g_overlap, &lapped).unwrap();
        writer.add_adaptive(&g_adaptive, &adaptive).unwrap();
        let reader = Reader::new(writer.finish().unwrap()).unwrap();

        let StreamPayload::Overlap(back) = reader.find(&g_overlap).unwrap().read().unwrap() else {
            panic!("overlap entry read back as a different kind");
        };
        prop_assert_eq!(&back, &lapped);
        let direct = lapped.decompress().unwrap();
        let roundtrip = back.decompress().unwrap();
        prop_assert_eq!(direct.i(), roundtrip.i(), "lapped decode must be bit-identical");
        prop_assert_eq!(direct.q(), roundtrip.q());

        let StreamPayload::Adaptive(back) = reader.find(&g_adaptive).unwrap().read().unwrap()
        else {
            panic!("adaptive entry read back as a different kind");
        };
        prop_assert_eq!(&back, &adaptive);
        let (direct, direct_stats) = adaptive.decompress().unwrap();
        let (roundtrip, roundtrip_stats) = back.decompress().unwrap();
        prop_assert_eq!(direct.i(), roundtrip.i(), "adaptive decode must be bit-identical");
        prop_assert_eq!(direct.q(), roundtrip.q());
        prop_assert_eq!(direct_stats, roundtrip_stats, "engine accounting agrees");
    }
}

/// The same library produces identical container bytes through every
/// writer entry point and every staging order.
#[test]
fn container_bytes_are_deterministic() {
    let lib = Device::synthesize(Vendor::Google, 4, 0xD17E).pulse_library();
    let compressor = Compressor::new(Variant::IntDctW { ws: 16 });

    let direct = write_library(&lib, &compressor).unwrap();

    // Same streams staged in reverse order.
    let entries: Vec<(GateId, CompressedWaveform)> =
        lib.iter().map(|(g, wf)| (g.clone(), compressor.compress(wf).unwrap())).collect();
    let mut reversed = Writer::new();
    for (g, z) in entries.iter().rev() {
        reversed.add(g, z).unwrap();
    }
    assert_eq!(direct.as_ref(), reversed.finish().unwrap().as_ref(), "order independence");

    // Through the compile-side report.
    let report = compaqt::core::stats::compress_library(&lib, &compressor).unwrap();
    assert_eq!(direct.as_ref(), write_report(&report).unwrap().as_ref(), "report path");

    // Through a serving store (hash-map iteration order is arbitrary —
    // the canonical sort must erase it).
    let store = Store::from_library(&lib, &compressor).unwrap();
    assert_eq!(direct.as_ref(), write_store(&store).unwrap().as_ref(), "store path");

    // And a full write → load → write cycle is a fixed point.
    let reader = Reader::new(direct.clone()).unwrap();
    let reloaded = reader.into_store(StoreConfig::default()).unwrap();
    assert_eq!(direct.as_ref(), write_store(&reloaded).unwrap().as_ref(), "reload fixed point");
}

/// One container opened through every [`ContainerSource`] kind — owned
/// bytes, a caller-borrowed region, a memory-mapped file — and both
/// validation modes must serve **bit-identical** results across every
/// stream kind the format holds: same payload bytes, same field-exact
/// stream round-trip, same decoded samples as the owned eager reader.
/// The source is a transport detail; the contract is invariant.
#[test]
fn every_source_kind_serves_bit_identically() {
    // A container with every payload kind: all ten plain variants plus
    // an overlapped and an adaptive stream.
    let mut writer = Writer::new();
    let mut plain_gates = Vec::new();
    for (k, variant) in plain_variants().into_iter().enumerate() {
        let wf = ramp_pulse(180 + 16 * k, 0.2 + 0.05 * k as f64);
        let gate = GateId::single(GateKind::Custom(format!("plain{k}")), k as u16);
        writer.add(&gate, &Compressor::new(variant).compress(&wf).unwrap()).unwrap();
        plain_gates.push(gate);
    }
    let g_overlap = GateId::single(GateKind::X, 40);
    let lapped = OverlapCompressor::new(16).unwrap().compress(&ramp_pulse(260, 0.5)).unwrap();
    writer.add_overlap(&g_overlap, &lapped).unwrap();
    let g_adaptive = GateId::pair(GateKind::Cx, 40, 41);
    let adaptive = AdaptiveCompressor::new(Variant::IntDctW { ws: 16 })
        .compress(&flat_pulse(600, 0.4))
        .unwrap();
    writer.add_adaptive(&g_adaptive, &adaptive).unwrap();
    let bytes = writer.finish().unwrap();

    // Owned + eager is the historical `Reader::new` behaviour — the
    // reference every other (kind, mode) pair must match bit-for-bit.
    let reference = Reader::new(bytes.clone()).unwrap();
    let mut rscratch = ContainerScratch::new();
    let (mut ri, mut rq) = (Vec::new(), Vec::new());

    use compaqt::io::ReaderOptions;
    for kind in common::selected_kinds() {
        for options in [ReaderOptions::new(), ReaderOptions::lazy_crc()] {
            common::with_source(kind, bytes.as_ref(), options, |r| {
                let reader = r.expect("a clean container must open from every source");
                let mode = format!("{kind}/{:?}", reader.validation());
                assert_eq!(reader.len(), reference.len(), "{mode}");
                assert_eq!(
                    reader.gates().collect::<Vec<_>>(),
                    reference.gates().collect::<Vec<_>>(),
                    "{mode}: gate listing"
                );

                // Raw payload bytes are identical regardless of backing.
                for entry in reference.entries() {
                    let other = reader.find(entry.gate()).unwrap();
                    assert_eq!(
                        entry.payload_slice(),
                        other.payload_slice(),
                        "{mode} {}: payload bytes",
                        entry.gate()
                    );
                    assert_eq!(entry.crc32(), other.crc32(), "{mode}: index CRC field");
                }

                // Plain gates: decoded samples and zero-parse stream
                // bytes match the reference exactly.
                let mut scratch = ContainerScratch::new();
                let (mut i, mut q) = (Vec::new(), Vec::new());
                for gate in &plain_gates {
                    reference.fetch_into(gate, &mut rscratch, &mut ri, &mut rq).unwrap();
                    reader.fetch_into(gate, &mut scratch, &mut i, &mut q).unwrap();
                    assert_eq!(ri, i, "{mode} {gate}: I channel");
                    assert_eq!(rq, q, "{mode} {gate}: Q channel");
                    assert_eq!(
                        reference.stream_bytes(gate).unwrap(),
                        reader.stream_bytes(gate).unwrap(),
                        "{mode} {gate}: wire stream bytes"
                    );
                }

                // Lapped and adaptive streams round-trip field-exactly
                // from every backing.
                let StreamPayload::Overlap(back) = reader.find(&g_overlap).unwrap().read().unwrap()
                else {
                    panic!("{mode}: overlap entry read back as a different kind");
                };
                assert_eq!(back, lapped, "{mode}: lapped stream");
                let StreamPayload::Adaptive(back) =
                    reader.find(&g_adaptive).unwrap().read().unwrap()
                else {
                    panic!("{mode}: adaptive entry read back as a different kind");
                };
                assert_eq!(back, adaptive, "{mode}: adaptive stream");
            });
        }
    }
}

/// A store loaded from a container serves every gate of a full device
/// library with samples identical to a store that never left memory.
#[test]
fn container_loaded_store_matches_in_memory_store() {
    let lib = Device::synthesize(Vendor::Ibm, 5, 0x10AD).pulse_library();
    let compressor = Compressor::new(Variant::IntDctW { ws: 16 });
    let in_memory = Store::from_library(&lib, &compressor).unwrap();
    let bytes = write_store(&in_memory).unwrap();
    let loaded = Reader::new(bytes).unwrap().into_store(StoreConfig::default()).unwrap();
    assert_eq!(loaded.len(), in_memory.len());

    let ids = in_memory.gates();
    let mut outs: Vec<(Vec<f64>, Vec<f64>)> = ids.iter().map(|_| Default::default()).collect();
    loaded.fetch_many(&ids, &mut outs).unwrap();
    let (mut i, mut q) = (Vec::new(), Vec::new());
    for (gate, (li, lq)) in ids.iter().zip(&outs) {
        in_memory.fetch_into(gate, &mut i, &mut q).unwrap();
        assert_eq!(&i, li, "{gate}: I channel");
        assert_eq!(&q, lq, "{gate}: Q channel");
    }
}
