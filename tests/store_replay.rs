//! Store traffic replay: drives a serving [`Store`] with the gate
//! traffic of real scheduled circuits on registry fleet devices — a
//! surface-code syndrome cycle on `surface-d3` and a GHZ-style chain on
//! `hex-27` — and checks that every served waveform is bit-identical to
//! a direct decompression of the same stream, with exact hot-set
//! hit/miss accounting.
//!
//! This is the serving-side complement of `tests/scenario_matrix.rs`:
//! the matrix proves every (device, variant) cell round-trips; the
//! replay proves the store behaves under *circuit-shaped* traffic —
//! skewed, repeated fetches in schedule order, not one sweep per gate.

use std::collections::HashMap;
use std::sync::Arc;

use compaqt::core::compress::{Compressor, Variant};
use compaqt::core::stats::compress_library;
use compaqt::core::store::{Store, StoreConfig};
use compaqt::io::{write_report, Reader};
use compaqt::pulse::library::{GateId, GateKind};
use compaqt::pulse::registry::{DeviceSpec, Registry};
use compaqt::pulse::vendor::Vendor;
use compaqt::pulse::waveform::Waveform;
use compaqt::quantum::circuits::{Circuit, Op};
use compaqt::quantum::schedule::asap;
use compaqt::quantum::surface::SurfacePatch;
use compaqt::quantum::transpile::transpile;

/// The design-point compressor used for every replay store.
fn compressor() -> Compressor {
    Compressor::new(Variant::IntDctW { ws: 16 })
}

fn builtin(name: &str) -> &'static DeviceSpec {
    Registry::builtin().get(name).unwrap_or_else(|| panic!("no builtin device {name}"))
}

/// Maps a scheduled circuit op onto the gate id its waveform lives
/// under in an IBM-style library (`None` for virtual gates). CX edges
/// are normalized to the undirected (low, high) order the topology
/// generators emit.
fn gate_of(op: Op) -> Option<GateId> {
    match op {
        Op::X(q) => Some(GateId::single(GateKind::X, q as u16)),
        Op::Sx(q) => Some(GateId::single(GateKind::Sx, q as u16)),
        Op::Measure(q) => Some(GateId::single(GateKind::Measure, q as u16)),
        Op::Cx(a, b) => Some(GateId::pair(GateKind::Cx, a.min(b) as u16, a.max(b) as u16)),
        Op::Rz(..) => None,
        other => panic!("op {other:?} survived transpilation"),
    }
}

/// The replayable gate trace of a circuit: transpile to the IBM basis,
/// ASAP-schedule with the vendor latencies, then list gate ids in
/// schedule order (virtual RZs drop out — they own no waveform).
fn trace(circuit: &Circuit) -> Vec<GateId> {
    let lowered = transpile(circuit);
    let sched = asap(&lowered, &Vendor::Ibm.params());
    let mut timed: Vec<(f64, usize, Op)> =
        sched.ops.iter().enumerate().map(|(k, s)| (s.start_ns, k, s.op)).collect();
    timed.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    timed.into_iter().filter_map(|(_, _, op)| gate_of(op)).collect()
}

fn bits_equal(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Replays a trace against a store, comparing every fetch (both the
/// zero-allocation `fetch_into` path and the hot-set `fetch_cached`
/// path) against the pre-snapshotted direct decodes, then checks the
/// exact hit/miss ledger the trace implies.
fn replay(device: &str, store: &Store, reference: &HashMap<GateId, Waveform>, plays: &[GateId]) {
    assert!(!plays.is_empty());
    let (mut i_buf, mut q_buf) = (Vec::new(), Vec::new());
    let mut seen: Vec<&GateId> = Vec::new();
    for gate in plays {
        let wf = &reference
            .get(gate)
            .unwrap_or_else(|| panic!("{device}: trace gate {gate} not in the library"));
        store
            .fetch_into(gate, &mut i_buf, &mut q_buf)
            .unwrap_or_else(|e| panic!("{device}: fetch_into {gate}: {e}"));
        assert!(
            bits_equal(&i_buf, wf.i()) && bits_equal(&q_buf, wf.q()),
            "{device}: fetch_into({gate}) is not bit-identical to the direct decode"
        );
        let cached: Arc<Waveform> = store
            .fetch_cached(gate)
            .unwrap_or_else(|e| panic!("{device}: fetch_cached {gate}: {e}"));
        assert!(
            bits_equal(cached.i(), wf.i()) && bits_equal(cached.q(), wf.q()),
            "{device}: fetch_cached({gate}) is not bit-identical to the direct decode"
        );
        if !seen.contains(&gate) {
            seen.push(gate);
        }
    }

    // Exact ledger: every play fetched twice; fetch_into always decodes;
    // fetch_cached decodes only on each gate's first appearance (the hot
    // set is sized so circuit traffic can never evict).
    let distinct = seen.len() as u64;
    let total = plays.len() as u64;
    let stats = store.stats();
    assert_eq!(stats.fetches, 2 * total, "{device}: fetch count");
    assert_eq!(stats.decodes, total + distinct, "{device}: decode count");
    assert_eq!(stats.hot_misses, distinct, "{device}: every distinct gate misses once");
    assert_eq!(stats.hot_hits, total - distinct, "{device}: every repeat must hit");
    assert!(
        stats.hit_rate() > 0.5,
        "{device}: circuit traffic should be repeat-heavy, got {}",
        stats.hit_rate()
    );

    // Batched leg: one `fetch_many` over the distinct working set must
    // book exactly one fetch and one decode per requested gate — the
    // per-gate ledger the wire server's FetchMany path also relies on —
    // while leaving the hot-set counters untouched.
    let batch: Vec<GateId> = seen.iter().map(|g| (*g).clone()).collect();
    let mut outs: Vec<(Vec<f64>, Vec<f64>)> = batch.iter().map(|_| Default::default()).collect();
    store
        .fetch_many(&batch, &mut outs)
        .unwrap_or_else(|e| panic!("{device}: fetch_many over the working set: {e}"));
    for (gate, (bi, bq)) in batch.iter().zip(&outs) {
        let wf = &reference[gate];
        assert!(
            bits_equal(bi, wf.i()) && bits_equal(bq, wf.q()),
            "{device}: fetch_many({gate}) is not bit-identical to the direct decode"
        );
    }
    let after = store.stats();
    assert_eq!(after.fetches, stats.fetches + distinct, "{device}: batched fetch count");
    assert_eq!(after.decodes, stats.decodes + distinct, "{device}: batched decode count");
    assert_eq!(after.hot_hits, stats.hot_hits, "{device}: a batch never touches the hot set");
    assert_eq!(after.hot_misses, stats.hot_misses, "{device}: a batch never touches the hot set");
}

/// A store that can never evict under a whole-library working set:
/// `hot_capacity` is an honest global bound, so the library's own size
/// is exactly enough — no per-shard headroom multiplier.
fn roomy_config(library_len: usize) -> StoreConfig {
    StoreConfig { shards: 4, hot_capacity: library_len, ..StoreConfig::default() }
}

#[test]
fn surface_d3_syndrome_cycle_replays_through_the_container_store() {
    // Three rounds of syndrome extraction on the registry's distance-3
    // patch, served from a store loaded *through the CWL container* —
    // the full deployment path.
    let spec = builtin("surface-d3");
    let library = spec.build_library();
    let report = compress_library(&library, &compressor()).unwrap();
    let reference: HashMap<GateId, Waveform> = report
        .waveforms
        .iter()
        .map(|w| (w.gate.clone(), w.compressed.decompress().unwrap()))
        .collect();

    let bytes = write_report(&report).unwrap();
    let reader = Reader::new(bytes).unwrap();
    let store = reader.into_store(roomy_config(library.len())).unwrap();

    let patch = SurfacePatch::unrotated(3);
    assert_eq!(patch.n_qubits, spec.n_qubits());
    let cycle = trace(&patch.syndrome_cycle());
    let plays: Vec<GateId> = (0..3).flat_map(|_| cycle.iter().cloned()).collect();
    assert!(plays.len() > 150, "syndrome traffic should be substantial, got {}", plays.len());
    replay(&spec.name, &store, &reference, &plays);
}

#[test]
fn hex_27_ghz_chain_replays_through_the_direct_store() {
    // A GHZ-style nearest-neighbour chain across all 27 qubits of the
    // heavy-hex device (chain edges are part of the heavy-hex coupling
    // graph), served from a report-loaded store.
    let spec = builtin("hex-27");
    let library = spec.build_library();
    let report = compress_library(&library, &compressor()).unwrap();
    let reference: HashMap<GateId, Waveform> = report
        .waveforms
        .iter()
        .map(|w| (w.gate.clone(), w.compressed.decompress().unwrap()))
        .collect();
    let store = report.into_store(roomy_config(library.len())).unwrap();

    let n = spec.n_qubits();
    let mut ghz = Circuit::new("ghz-chain", n);
    ghz.push(Op::H(0));
    for q in 1..n {
        ghz.push(Op::Cx(q - 1, q));
    }
    for q in 0..n {
        ghz.push(Op::Measure(q));
    }
    // Three shots: everything after the first is pure hot-set traffic.
    let shot = trace(&ghz);
    let plays: Vec<GateId> = (0..3).flat_map(|_| shot.iter().cloned()).collect();
    assert!(plays.len() > 100, "chain traffic should be substantial, got {}", plays.len());
    replay(&spec.name, &store, &reference, &plays);
}

#[test]
fn replay_covers_two_distinct_registry_devices() {
    // The acceptance floor for this suite: the two replayed devices are
    // distinct registry entries with different topologies.
    let a = builtin("surface-d3");
    let b = builtin("hex-27");
    assert_ne!(a.name, b.name);
    assert_ne!(a.topology, b.topology);
    assert_ne!(a.n_qubits(), b.n_qubits());
}
