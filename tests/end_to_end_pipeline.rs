//! End-to-end integration: synthetic device -> pulse library -> software
//! compression -> banked compressed memory -> hardware decompression
//! engine -> transmon evolution. Spans all five crates.

use compaqt::core::compress::{Compressor, Variant};
use compaqt::core::engine::{DecompressionEngine, EngineStats};
use compaqt::core::memory::BankedMemory;
use compaqt::pulse::device::Device;
use compaqt::pulse::vendor::Vendor;
use compaqt::quantum::transmon;

#[test]
fn whole_library_survives_the_full_pipeline() {
    let device = Device::synthesize(Vendor::Ibm, 5, 0xE2E);
    let lib = device.pulse_library();
    let compressor = Compressor::new(Variant::IntDctW { ws: 16 }).with_max_window_words(3);
    let engine = DecompressionEngine::for_variant(Variant::IntDctW { ws: 16 }).unwrap();
    let mut memory = BankedMemory::new();

    for (gate, wf) in lib.iter() {
        let z = compressor.compress(wf).unwrap_or_else(|e| panic!("{gate}: {e}"));
        // Through the banked memory and back.
        let (hi, hq) = memory.store(&z);
        let li = memory.load_channel(hi);
        let lq = memory.load_channel(hq);
        let mut stats = EngineStats::default();
        let i = engine.decode_channel(&li, z.n_samples, &mut stats).unwrap();
        let q = engine.decode_channel(&lq, z.n_samples, &mut stats).unwrap();
        let restored =
            compaqt::pulse::waveform::Waveform::new(wf.name(), i, q, wf.sample_rate_gs());
        let mse = wf.mse(&restored);
        assert!(mse < 1e-4, "{gate}: mse {mse:e}");
        // Bandwidth expansion is the whole point.
        assert!(
            stats.bandwidth_expansion() > 3.0,
            "{gate}: expansion {}",
            stats.bandwidth_expansion()
        );
    }
}

#[test]
fn banked_memory_is_bit_exact_with_direct_decode() {
    let device = Device::synthesize(Vendor::Ibm, 3, 0xBEE);
    let lib = device.pulse_library();
    let compressor = Compressor::new(Variant::IntDctW { ws: 8 });
    let engine = DecompressionEngine::for_variant(Variant::IntDctW { ws: 8 }).unwrap();
    let mut memory = BankedMemory::new();
    for (_, wf) in lib.iter() {
        let z = compressor.compress(wf).unwrap();
        let (hi, _) = memory.store(&z);
        let li = memory.load_channel(hi);
        let mut s1 = EngineStats::default();
        let mut s2 = EngineStats::default();
        let direct = engine.decode_channel(&z.i, z.n_samples, &mut s1).unwrap();
        let banked = engine.decode_channel(&li, z.n_samples, &mut s2).unwrap();
        assert_eq!(direct, banked, "banked path must be bit-exact");
    }
}

#[test]
fn every_gate_keeps_fidelity_after_compression() {
    // The abstract's claim: < 0.1% fidelity degradation.
    let device = Device::synthesize(Vendor::Ibm, 4, 0xF1D);
    let lib = device.pulse_library();
    let compressor = Compressor::new(Variant::IntDctW { ws: 16 });
    for (gate, wf) in lib.iter() {
        let z = compressor.compress(wf).unwrap();
        let restored = z.decompress().unwrap();
        let infid = transmon::distortion_infidelity(wf, &restored);
        assert!(infid < 1e-3, "{gate}: infidelity {infid:e}");
    }
}

#[test]
fn fidelity_aware_compression_trades_ratio_for_error() {
    let device = Device::synthesize(Vendor::Ibm, 2, 0xA1);
    let wf = device.pi_pulse(0);
    let c = Compressor::new(Variant::IntDctW { ws: 16 }).with_threshold(0.1);
    let (loose, _) = c.compress_with_target(&wf, 1e-4).unwrap();
    let (tight, _) = c.compress_with_target(&wf, 1e-7).unwrap();
    assert!(loose.ratio().ratio() >= tight.ratio().ratio());
    let mse_tight = wf.mse(&tight.decompress().unwrap());
    assert!(mse_tight <= 1e-7, "got {mse_tight:e}");
}

#[test]
fn google_style_devices_also_compress() {
    let device = Device::synthesize(Vendor::Google, 9, 0x600613);
    let lib = device.pulse_library();
    let report =
        compaqt::core::stats::compress_library(&lib, &Compressor::new(Variant::IntDctW { ws: 16 }))
            .unwrap();
    assert!(report.overall.ratio() > 3.0, "got {}", report.overall.ratio());
}

#[test]
fn adaptive_pipeline_round_trips_cr_pulses() {
    use compaqt::core::adaptive::AdaptiveCompressor;
    let device = Device::synthesize(Vendor::Ibm, 3, 0xADA);
    let lib = device.pulse_library();
    let adaptive = AdaptiveCompressor::new(Variant::IntDctW { ws: 16 });
    let mut bypassed_any = false;
    for (gate, wf) in lib.iter() {
        if let Ok(z) = adaptive.compress(wf) {
            let (restored, stats) = z.decompress().unwrap();
            assert!(wf.mse(&restored) < 1e-4, "{gate}");
            if stats.bypassed_samples > 0 {
                bypassed_any = true;
            }
        }
    }
    assert!(bypassed_any, "flat-top CR/readout pulses should hit the bypass path");
}
