//! Cross-crate scalability integration: schedules, surface codes and the
//! RFSoC model working together (Figures 5 and 17).

use compaqt::hw::rfsoc::RfsocModel;
use compaqt::pulse::memory_model::{self, rfsoc_bandwidth_per_qubit_gb};
use compaqt::pulse::vendor::Vendor;
use compaqt::quantum::circuits;
use compaqt::quantum::schedule::{asap, profile};
use compaqt::quantum::surface::SurfacePatch;
use compaqt::quantum::transpile::transpile;

#[test]
fn qaoa_peak_bandwidth_comes_from_final_measurement() {
    let params = Vendor::Ibm.params();
    let circuit = transpile(&circuits::qaoa(40, 3, 40));
    let sched = asap(&circuit, &params);
    let prof = profile(&sched, rfsoc_bandwidth_per_qubit_gb());
    // All 40 qubits measured concurrently: peak = 40 channels.
    assert_eq!(prof.peak_channels, 40);
    // Figure 5c shape: average far below peak for NISQ workloads.
    assert!(prof.average_bandwidth_gb < 0.5 * prof.peak_bandwidth_gb);
    // Magnitudes in the paper's regime (~900 GB/s peak).
    assert!((700.0..1100.0).contains(&prof.peak_bandwidth_gb), "got {}", prof.peak_bandwidth_gb);
}

#[test]
fn surface_code_bandwidth_is_sustained() {
    let params = Vendor::Ibm.params();
    for (patch, lo, hi) in
        [(SurfacePatch::unrotated(3), 300.0, 700.0), (SurfacePatch::unrotated(5), 1200.0, 2200.0)]
    {
        let sched = asap(&transpile(&patch.syndrome_cycle()), &params);
        let prof = profile(&sched, rfsoc_bandwidth_per_qubit_gb());
        assert!(
            (lo..hi).contains(&prof.peak_bandwidth_gb),
            "{}: peak {}",
            patch.name,
            prof.peak_bandwidth_gb
        );
        // QEC keeps average within ~2x of peak (Figure 5c).
        assert!(prof.average_bandwidth_gb > 0.4 * prof.peak_bandwidth_gb, "{}", patch.name);
    }
}

#[test]
fn compressed_controller_hosts_a_d5_patch() {
    // An 81-qubit distance-5 patch cannot fit on the uncompressed
    // controller (36 qubits) but fits easily with WS=16 compression.
    let rfsoc = RfsocModel::default();
    assert!(rfsoc.qubits_uncompressed() < 81);
    assert!(rfsoc.qubits_supported(3, 16) >= 81);
}

#[test]
fn demand_crosses_rfsoc_limits_where_the_paper_says() {
    let params = Vendor::Ibm.params();
    // Capacity line (7.56 MB) crossed only for hundreds of qubits.
    let n_cap = (1..1000)
        .find(|&n| {
            memory_model::total_capacity_bytes(&params, n) > memory_model::RFSOC_CAPACITY_BYTES
        })
        .unwrap();
    assert!(n_cap > 200, "capacity crossed at {n_cap}");
    // Bandwidth line (866 GB/s) crossed before 40 qubits.
    let n_bw = (1..1000)
        .find(|&n| memory_model::rfsoc_total_bandwidth_gb(n) > memory_model::RFSOC_MAX_BANDWIDTH_GB)
        .unwrap();
    assert!(n_bw <= 40, "bandwidth crossed at {n_bw}");
}

#[test]
fn transpiled_suite_schedules_cleanly() {
    let params = Vendor::Ibm.params();
    for circuit in circuits::table_vi_suite() {
        let t = transpile(&circuit);
        let sched = asap(&t, &params);
        assert!(sched.makespan_ns > 0.0, "{}", circuit.name);
        let prof = profile(&sched, 1.0);
        assert!(prof.peak_channels <= circuit.n_qubits, "{}", circuit.name);
        assert!(prof.peak_channels > 0, "{}", circuit.name);
    }
}

#[test]
fn logical_qubit_count_scales_5x_with_compression() {
    let rfsoc = RfsocModel::default();
    let base = rfsoc.logical_qubits(16, 16, 17);
    let comp = rfsoc.logical_qubits(3, 16, 17);
    assert!(comp >= 5 * base, "base {base} comp {comp}");
}
