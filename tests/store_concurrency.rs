//! Concurrency and equivalence tests for the serving-path store.
//!
//! The store's contract: any number of reader threads fetching any mix
//! of gates — through the streaming path (`fetch_into`) or the hot set
//! (`fetch_cached`) — observe waveforms **bit-exact** with a
//! single-threaded engine decode, even while writer threads recalibrate
//! gates under them. Readers racing a writer must see either the old or
//! the new calibration in full, never a torn or stale-cached mix.
//!
//! Tests live in a `store` module so CI's threaded-stress step can
//! select exactly this suite plus the in-crate store unit tests with
//! one name filter (`cargo test store::`).

mod store {
    use compaqt::core::compress::{CompressedWaveform, Compressor, Variant};
    use compaqt::core::engine::{DecodeScratch, DecompressionEngine};
    use compaqt::core::store::{Store, StoreConfig, StoreError};
    use compaqt::pulse::device::Device;
    use compaqt::pulse::library::{GateId, PulseLibrary};
    use compaqt::pulse::vendor::Vendor;
    use compaqt::pulse::waveform::Waveform;
    use proptest::prelude::*;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    fn library() -> Arc<PulseLibrary> {
        Device::synthesize(Vendor::Ibm, 4, 0x5708E).pulse_library()
    }

    /// Single-threaded reference: gate -> (I, Q) through the engine.
    fn reference_decodes(
        lib: &PulseLibrary,
        compressor: &Compressor,
    ) -> HashMap<GateId, (Vec<f64>, Vec<f64>)> {
        let engine = DecompressionEngine::for_variant(compressor.variant()).unwrap();
        let mut scratch = DecodeScratch::new();
        let mut out = HashMap::new();
        for (gate, wf) in lib.iter() {
            let z = compressor.compress(wf).unwrap();
            let (mut i, mut q) = (Vec::new(), Vec::new());
            engine.decompress_into(&z, &mut scratch, &mut i, &mut q).unwrap();
            out.insert(gate.clone(), (i, q));
        }
        out
    }

    #[test]
    fn concurrent_readers_are_bit_exact_with_sequential_decode() {
        let lib = library();
        let compressor = Compressor::new(Variant::IntDctW { ws: 16 });
        let store = Store::from_library(&lib, &compressor).unwrap();
        let reference = reference_decodes(&lib, &compressor);
        let gates: Vec<GateId> = store.gates();

        const READERS: usize = 8;
        const PASSES: usize = 20;
        std::thread::scope(|scope| {
            for r in 0..READERS {
                let store = &store;
                let gates = &gates;
                let reference = &reference;
                scope.spawn(move || {
                    let (mut i, mut q) = (Vec::new(), Vec::new());
                    for pass in 0..PASSES {
                        // Stagger start points so readers collide on
                        // different shards each pass.
                        for k in 0..gates.len() {
                            let gate = &gates[(k + r + pass) % gates.len()];
                            let (ri, rq) = &reference[gate];
                            store.fetch_into(gate, &mut i, &mut q).unwrap();
                            assert_eq!(ri, &i, "{gate}: fetch_into I channel");
                            assert_eq!(rq, &q, "{gate}: fetch_into Q channel");
                            let cached = store.fetch_cached(gate).unwrap();
                            assert_eq!(ri.as_slice(), cached.i(), "{gate}: cached I channel");
                            assert_eq!(rq.as_slice(), cached.q(), "{gate}: cached Q channel");
                        }
                    }
                });
            }
        });
        let stats = store.stats();
        assert_eq!(stats.fetches, (READERS * PASSES * gates.len() * 2) as u64);
        assert!(stats.hot_hits > 0, "repeat cached fetches must hit");
    }

    #[test]
    fn writers_and_readers_interleave_without_torn_or_stale_reads() {
        // Two full calibrations of the same device; writers flip every
        // gate back and forth between them while readers continuously
        // fetch. Every read must match calibration A or calibration B
        // exactly — a torn waveform or a stale hot-set decode after an
        // insert would match neither.
        let lib = library();
        let compressor = Compressor::new(Variant::IntDctW { ws: 16 });
        let recalibrated: PulseLibrary = lib
            .iter()
            .map(|(gate, wf)| {
                let bumped: Vec<f64> = wf.i().iter().map(|v| v * 0.5).collect();
                (gate.clone(), Waveform::new(format!("{gate}"), bumped, wf.q().to_vec(), 4.54))
            })
            .collect();
        let ref_a = reference_decodes(&lib, &compressor);
        let ref_b = reference_decodes(&recalibrated, &compressor);
        let streams_a: HashMap<GateId, CompressedWaveform> =
            lib.iter().map(|(gate, wf)| (gate.clone(), compressor.compress(wf).unwrap())).collect();
        let streams_b: HashMap<GateId, CompressedWaveform> = recalibrated
            .iter()
            .map(|(gate, wf)| (gate.clone(), compressor.compress(wf).unwrap()))
            .collect();

        let store = Store::from_library_with(
            &lib,
            &compressor,
            StoreConfig { shards: 4, hot_capacity: 256, ..StoreConfig::default() },
        )
        .unwrap();
        let gates: Vec<GateId> = store.gates();
        let stop = AtomicBool::new(false);

        const WRITERS: usize = 2;
        const READERS: usize = 6;
        std::thread::scope(|scope| {
            for w in 0..WRITERS {
                let store = &store;
                let gates = &gates;
                let (streams_a, streams_b) = (&streams_a, &streams_b);
                let stop = &stop;
                scope.spawn(move || {
                    let mut flip = w % 2 == 0;
                    while !stop.load(Ordering::Relaxed) {
                        for gate in gates.iter().skip(w).step_by(WRITERS) {
                            let src = if flip { streams_b } else { streams_a };
                            store.insert(gate.clone(), src[gate].clone()).unwrap();
                        }
                        flip = !flip;
                    }
                });
            }
            let readers: Vec<_> = (0..READERS)
                .map(|r| {
                    let store = &store;
                    let gates = &gates;
                    let (ref_a, ref_b) = (&ref_a, &ref_b);
                    scope.spawn(move || {
                        let (mut i, mut q) = (Vec::new(), Vec::new());
                        for pass in 0..30 {
                            for k in 0..gates.len() {
                                let gate = &gates[(k + r + pass) % gates.len()];
                                let a = &ref_a[gate];
                                let b = &ref_b[gate];
                                store.fetch_into(gate, &mut i, &mut q).unwrap();
                                let streamed_ok = (a.0 == i && a.1 == q) || (b.0 == i && b.1 == q);
                                assert!(streamed_ok, "{gate}: fetch_into saw a torn calibration");
                                let cached = store.fetch_cached(gate).unwrap();
                                let ci = cached.i();
                                let cq = cached.q();
                                let cached_ok =
                                    (a.0 == ci && a.1 == cq) || (b.0 == ci && b.1 == cq);
                                assert!(
                                    cached_ok,
                                    "{gate}: fetch_cached saw a torn or stale decode"
                                );
                            }
                        }
                    })
                })
                .collect();
            for handle in readers {
                handle.join().unwrap();
            }
            stop.store(true, Ordering::Relaxed);
        });
        // Final state must be exactly one of the two calibrations.
        let (mut i, mut q) = (Vec::new(), Vec::new());
        for gate in &gates {
            store.fetch_into(gate, &mut i, &mut q).unwrap();
            let a = &ref_a[gate];
            let b = &ref_b[gate];
            assert!((a.0 == i && a.1 == q) || (b.0 == i && b.1 == q), "{gate}");
        }
    }

    /// The lock-free hot path's freshness contract, cross-thread: a
    /// `fetch_cached` that *begins* after an `insert` returned must
    /// observe that insert's calibration (or a newer one) — never an
    /// older decode left in the snapshot. Each round publishes a
    /// distinct calibration, so a stale hit is distinguishable from a
    /// legitimately-newer one: the observed round may only move
    /// forward from what the reader saw published before fetching.
    #[test]
    fn cached_fetch_begun_after_insert_observes_the_new_calibration() {
        use std::sync::atomic::AtomicU64;

        const ROUNDS: u64 = 64;
        let lib = library();
        let compressor = Compressor::new(Variant::IntDctW { ws: 16 });
        let store = Store::from_library(&lib, &compressor).unwrap();
        let gate = store.gates().remove(0);
        let base = lib.get(&gate).unwrap();

        // One distinct stream (and reference decode) per round.
        let mut streams = Vec::new();
        let mut refs: Vec<Vec<f64>> = Vec::new();
        let engine = DecompressionEngine::for_variant(compressor.variant()).unwrap();
        let mut scratch = DecodeScratch::new();
        for r in 0..=ROUNDS {
            let scaled: Vec<f64> =
                base.i().iter().map(|v| v * (1.0 + r as f64 / ROUNDS as f64)).collect();
            let wf = Waveform::new(format!("{gate}"), scaled, base.q().to_vec(), 4.54);
            let z = compressor.compress(&wf).unwrap();
            let (mut i, mut q) = (Vec::new(), Vec::new());
            engine.decompress_into(&z, &mut scratch, &mut i, &mut q).unwrap();
            streams.push(z);
            refs.push(i);
        }

        // `published` only advances *after* the matching insert
        // returned, so round k visible ⇒ insert k complete.
        let published = AtomicU64::new(u64::MAX); // nothing published yet
        std::thread::scope(|scope| {
            let store = &store;
            let (streams, refs, gate) = (&streams, &refs, &gate);
            let published = &published;
            scope.spawn(move || {
                for r in 0..=ROUNDS {
                    store.insert(gate.clone(), streams[r as usize].clone()).unwrap();
                    published.store(r, Ordering::SeqCst);
                }
            });
            scope.spawn(move || {
                loop {
                    let before = published.load(Ordering::SeqCst);
                    if before == u64::MAX {
                        std::hint::spin_loop();
                        continue; // nothing published yet
                    }
                    let seen = store.fetch_cached(gate).unwrap();
                    let observed = refs
                        .iter()
                        .position(|r| r.as_slice() == seen.i())
                        .expect("cached fetch returned a waveform no calibration produced");
                    assert!(
                        observed as u64 >= before,
                        "fetch begun after round {before} returned stale round {observed}"
                    );
                    if before == ROUNDS {
                        return;
                    }
                }
            });
        });
        // The settled state is exactly the final calibration.
        assert_eq!(store.fetch_cached(&gate).unwrap().i(), refs[ROUNDS as usize].as_slice());
    }

    #[test]
    fn removed_gates_error_while_others_keep_serving() {
        let lib = library();
        let compressor = Compressor::new(Variant::IntDctW { ws: 16 });
        let store = Store::from_library(&lib, &compressor).unwrap();
        let gates = store.gates();
        let (victims, survivors) = gates.split_at(gates.len() / 2);
        std::thread::scope(|scope| {
            let store = &store;
            scope.spawn(move || {
                for gate in victims {
                    assert!(store.remove(gate).is_some());
                }
            });
            for _ in 0..4 {
                scope.spawn(move || {
                    let (mut i, mut q) = (Vec::new(), Vec::new());
                    for _ in 0..10 {
                        for gate in survivors {
                            store.fetch_into(gate, &mut i, &mut q).unwrap();
                            assert!(!i.is_empty());
                        }
                    }
                });
            }
        });
        for gate in victims {
            assert!(matches!(store.fetch_cached(gate), Err(StoreError::UnknownGate(_))));
        }
        assert_eq!(store.len(), survivors.len());
    }

    /// All variants the codec supports, across every window size.
    fn all_variants() -> Vec<Variant> {
        let mut v = vec![Variant::Delta, Variant::DctN];
        for ws in compaqt::dsp::intdct::SUPPORTED_SIZES {
            v.push(Variant::DctW { ws });
            v.push(Variant::IntDctW { ws });
        }
        v
    }

    /// Random low-harmonic mixtures: the smooth band-limited waveform
    /// class the codec is designed for.
    fn smooth_signal(len: usize) -> impl Strategy<Value = Vec<f64>> {
        proptest::collection::vec(-1.0f64..1.0, 6).prop_map(move |coeffs| {
            (0..len)
                .map(|t| {
                    let x = t as f64 / len as f64;
                    let mut v = 0.0;
                    for (k, c) in coeffs.iter().enumerate() {
                        v += c * (std::f64::consts::PI * (k + 1) as f64 * x).sin();
                    }
                    0.9 * v / coeffs.len() as f64
                })
                .collect()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn fetch_into_matches_decompress_into_for_every_variant(xs in smooth_signal(160)) {
            // The store's fetch path is the engine's `_into` path plus
            // sharding, pooling and accounting — none of which may
            // perturb a single sample, for any encoding variant.
            let wf = Waveform::from_real("prop", xs, 4.54);
            let store = Store::new(StoreConfig { shards: 2, hot_capacity: 4, ..StoreConfig::default() });
            let mut scratch = DecodeScratch::new();
            let (mut ei, mut eq) = (Vec::new(), Vec::new());
            let (mut si, mut sq) = (Vec::new(), Vec::new());
            for (k, variant) in all_variants().into_iter().enumerate() {
                let gate = GateId::single(
                    compaqt::pulse::library::GateKind::Custom(format!("v{k}")),
                    k as u16,
                );
                let z = Compressor::new(variant).compress(&wf).unwrap();
                let engine = DecompressionEngine::for_variant(variant).unwrap();
                let expect_stats =
                    engine.decompress_into(&z, &mut scratch, &mut ei, &mut eq).unwrap();
                store.insert(gate.clone(), z).unwrap();
                let stats = store.fetch_into(&gate, &mut si, &mut sq).unwrap();
                prop_assert_eq!(&ei, &si, "{:?}: I channel must be bit-exact", variant);
                prop_assert_eq!(&eq, &sq, "{:?}: Q channel must be bit-exact", variant);
                prop_assert_eq!(expect_stats, stats, "{:?}: engine stats must agree", variant);
                // The cached path decodes through the same kernels.
                let cached = store.fetch_cached(&gate).unwrap();
                prop_assert_eq!(&ei[..], cached.i(), "{:?}: cached I channel", variant);
                prop_assert_eq!(&eq[..], cached.q(), "{:?}: cached Q channel", variant);
            }
        }
    }
}
