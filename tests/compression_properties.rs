//! Property-based tests of the codec invariants (proptest).

use compaqt::core::compress::{Compressor, Variant, DEFAULT_THRESHOLD};
use compaqt::dsp::dct::{dct2, dct3};
use compaqt::dsp::fixed::Q15;
use compaqt::dsp::intdct::IntDct;
use compaqt::dsp::rle::{CodedWord, RleDecoder, RleEncoder};
use compaqt::pulse::waveform::Waveform;
use proptest::prelude::*;

/// A strategy for smooth band-limited signals (the waveform class):
/// random low-harmonic mixtures, bounded amplitude.
fn smooth_signal(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1.0f64..1.0, 6).prop_map(move |coeffs| {
        (0..len)
            .map(|t| {
                let x = t as f64 / len as f64;
                let mut v = 0.0;
                for (k, c) in coeffs.iter().enumerate() {
                    v += c * (std::f64::consts::PI * (k + 1) as f64 * x).sin();
                }
                0.9 * v / coeffs.len() as f64
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dct_round_trips_arbitrary_signals(xs in proptest::collection::vec(-1.0f64..1.0, 1..80)) {
        let back = dct3(&dct2(&xs));
        for (a, b) in xs.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn int_dct_round_trip_error_is_bounded(xs in smooth_signal(16)) {
        let t = IntDct::new(16).unwrap();
        let q: Vec<Q15> = xs.iter().map(|&v| Q15::from_f64(v)).collect();
        let back = t.inverse(&t.forward(&q));
        for (a, b) in q.iter().zip(&back) {
            prop_assert!((a.to_f64() - b.to_f64()).abs() < 5e-3,
                "{} vs {}", a.to_f64(), b.to_f64());
        }
    }

    #[test]
    fn rle_round_trips_arbitrary_sparse_windows(
        head in proptest::collection::vec(-16384i32..16383, 0..16),
        zeros in 0usize..16,
    ) {
        let mut coeffs = head.clone();
        coeffs.extend(std::iter::repeat_n(0, zeros));
        if coeffs.is_empty() { coeffs.push(0); }
        let words = RleEncoder::new().encode_window(&coeffs);
        let back = RleDecoder::new().decode_window(&words, coeffs.len()).unwrap();
        prop_assert_eq!(back, coeffs);
    }

    #[test]
    fn packed_words_round_trip(raw in proptest::num::u16::ANY) {
        // Any 16-bit pattern decodes to a word that re-encodes identically.
        let word = CodedWord::unpack(raw);
        prop_assert_eq!(CodedWord::unpack(word.pack()), word);
    }

    #[test]
    fn compression_error_is_bounded_by_threshold(xs in smooth_signal(160)) {
        let wf = Waveform::from_real("prop", xs, 4.54);
        let z = Compressor::new(Variant::IntDctW { ws: 16 }).compress(&wf).unwrap();
        let restored = z.decompress().unwrap();
        // Each zeroed coefficient is below the threshold; MSE is bounded
        // by threshold^2 plus integer rounding.
        prop_assert!(wf.mse(&restored) < DEFAULT_THRESHOLD * DEFAULT_THRESHOLD + 1e-6);
    }

    #[test]
    fn compression_never_expands_smooth_signals(xs in smooth_signal(256)) {
        let wf = Waveform::from_real("prop", xs, 4.54);
        let z = Compressor::new(Variant::IntDctW { ws: 16 }).compress(&wf).unwrap();
        prop_assert!(z.ratio().ratio() >= 1.0, "ratio {}", z.ratio());
    }

    #[test]
    fn window_cap_is_always_respected(xs in smooth_signal(200), cap in 2usize..6) {
        let wf = Waveform::from_real("prop", xs, 4.54);
        let z = Compressor::new(Variant::IntDctW { ws: 16 })
            .with_max_window_words(cap)
            .compress(&wf)
            .unwrap();
        prop_assert!(z.worst_case_window_words() <= cap);
        // Still decodable.
        prop_assert!(z.decompress().is_ok());
    }

    #[test]
    fn channels_always_have_equal_window_words(
        i in smooth_signal(120),
        q in smooth_signal(120),
    ) {
        let wf = Waveform::new("prop", i, q, 4.54);
        let z = Compressor::new(Variant::IntDctW { ws: 8 }).compress(&wf).unwrap();
        prop_assert_eq!(z.i.window_word_counts(), z.q.window_word_counts());
    }

    #[test]
    fn delta_is_lossless_when_it_applies(xs in smooth_signal(100)) {
        // Shift positive so there are no zero crossings.
        let shifted: Vec<f64> = xs.iter().map(|v| 0.45 + v * 0.2).collect();
        let wf = Waveform::from_real("prop", shifted, 4.54);
        let z = Compressor::new(Variant::Delta).compress(&wf).unwrap();
        let restored = z.decompress().unwrap();
        prop_assert!(wf.mse(&restored) < 1e-9, "delta must be lossless: {:e}", wf.mse(&restored));
    }

    #[test]
    fn engine_stats_account_every_sample(xs in smooth_signal(96)) {
        use compaqt::core::engine::{DecompressionEngine, EngineStats};
        let wf = Waveform::from_real("prop", xs, 4.54);
        let z = Compressor::new(Variant::IntDctW { ws: 8 }).compress(&wf).unwrap();
        let engine = DecompressionEngine::for_variant(z.variant).unwrap();
        let mut stats = EngineStats::default();
        let i = engine.decode_channel(&z.i, z.n_samples, &mut stats).unwrap();
        prop_assert_eq!(i.len(), 96);
        prop_assert_eq!(stats.memory_words_read, z.i.words());
    }
}
