//! Round-trip property tests over *both* decode paths.
//!
//! Every compression variant is pushed through the allocating decoder
//! and the plan/buffer-reuse (`_into`) decoder, and the two
//! reconstructions must agree **bit-exactly** (f64 `==`, not a
//! tolerance): the zero-allocation path is a pure refactor of the
//! arithmetic, so any ULP of drift is a bug. Engine stats must agree
//! exactly as well.

use compaqt::core::batch;
use compaqt::core::compress::{Compressor, Variant};
use compaqt::core::engine::{DecodeScratch, DecompressionEngine};
use compaqt::pulse::waveform::Waveform;
use proptest::prelude::*;

/// All variants the codec supports, across every window size.
fn all_variants() -> Vec<Variant> {
    let mut v = vec![Variant::Delta, Variant::DctN];
    for ws in compaqt::dsp::intdct::SUPPORTED_SIZES {
        v.push(Variant::DctW { ws });
        v.push(Variant::IntDctW { ws });
    }
    v
}

/// Random low-harmonic mixtures: the smooth band-limited waveform class.
fn smooth_signal(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1.0f64..1.0, 6).prop_map(move |coeffs| {
        (0..len)
            .map(|t| {
                let x = t as f64 / len as f64;
                let mut v = 0.0;
                for (k, c) in coeffs.iter().enumerate() {
                    v += c * (std::f64::consts::PI * (k + 1) as f64 * x).sin();
                }
                0.9 * v / coeffs.len() as f64
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_variant_agrees_across_paths(xs in smooth_signal(160)) {
        let wf = Waveform::from_real("prop", xs, 4.54);
        let mut scratch = DecodeScratch::new();
        let (mut i, mut q) = (Vec::new(), Vec::new());
        for variant in all_variants() {
            let z = Compressor::new(variant).compress(&wf).unwrap();
            let engine = DecompressionEngine::for_variant(variant).unwrap();
            let (alloc, alloc_stats) = engine.decompress(&z).unwrap();
            let stats = engine.decompress_into(&z, &mut scratch, &mut i, &mut q).unwrap();
            prop_assert_eq!(alloc.i(), &i[..], "{:?}: I channel must be bit-exact", variant);
            prop_assert_eq!(alloc.q(), &q[..], "{:?}: Q channel must be bit-exact", variant);
            prop_assert_eq!(alloc_stats, stats);
        }
    }

    #[test]
    fn odd_lengths_agree_across_paths(
        xs in smooth_signal(137),
        ws_idx in 0usize..4,
    ) {
        // Padding paths: waveform length not a multiple of the window.
        let ws = compaqt::dsp::intdct::SUPPORTED_SIZES[ws_idx];
        let wf = Waveform::from_real("prop", xs, 4.54);
        let mut scratch = DecodeScratch::new();
        let (mut i, mut q) = (Vec::new(), Vec::new());
        for variant in [Variant::DctW { ws }, Variant::IntDctW { ws }] {
            let z = Compressor::new(variant).compress(&wf).unwrap();
            let engine = DecompressionEngine::for_variant(variant).unwrap();
            let (alloc, _) = engine.decompress(&z).unwrap();
            engine.decompress_into(&z, &mut scratch, &mut i, &mut q).unwrap();
            prop_assert_eq!(alloc.i(), &i[..]);
            prop_assert_eq!(alloc.q(), &q[..]);
        }
    }

    #[test]
    fn batch_decoders_agree_with_single_path(xs in smooth_signal(96)) {
        let wf = Waveform::from_real("prop", xs, 4.54);
        let zs: Vec<_> = all_variants()
            .into_iter()
            .map(|v| Compressor::new(v).compress(&wf).unwrap())
            .collect();
        let (seq, seq_stats) = batch::decompress_library(&zs).unwrap();
        let (par, par_stats) = batch::decompress_library_par(&zs).unwrap();
        prop_assert_eq!(seq_stats, par_stats);
        for ((z, a), b) in zs.iter().zip(&seq).zip(&par) {
            let engine = DecompressionEngine::for_variant(z.variant).unwrap();
            let (single, _) = engine.decompress(z).unwrap();
            prop_assert_eq!(single.i(), a.i());
            prop_assert_eq!(a.i(), b.i());
            prop_assert_eq!(a.q(), b.q());
        }
    }

    #[test]
    fn window_cap_streams_agree_across_paths(xs in smooth_signal(200), cap in 2usize..5) {
        let wf = Waveform::from_real("prop", xs, 4.54);
        let z = Compressor::new(Variant::IntDctW { ws: 16 })
            .with_max_window_words(cap)
            .compress(&wf)
            .unwrap();
        let engine = DecompressionEngine::for_variant(z.variant).unwrap();
        let (alloc, _) = engine.decompress(&z).unwrap();
        let mut scratch = DecodeScratch::new();
        let (mut i, mut q) = (Vec::new(), Vec::new());
        engine.decompress_into(&z, &mut scratch, &mut i, &mut q).unwrap();
        prop_assert_eq!(alloc.i(), &i[..]);
        prop_assert_eq!(alloc.q(), &q[..]);
    }
}
