//! Round-trip property tests over *both* paths of *both* codec
//! directions.
//!
//! Every compression variant is pushed through the allocating decoder
//! and the plan/buffer-reuse (`_into`) decoder, and the two
//! reconstructions must agree **bit-exactly** (f64 `==`, not a
//! tolerance): the zero-allocation path is a pure refactor of the
//! arithmetic, so any ULP of drift is a bug. Engine stats must agree
//! exactly as well. The same contract binds the encode side: a reused
//! [`EncodeScratch`] + output slot must produce streams `==` to the
//! allocating compressor's, for every variant, window size, and encoder
//! (plain, overlapped, adaptive).

use compaqt::core::batch;
use compaqt::core::compress::{CompressedWaveform, Compressor, Variant};
use compaqt::core::engine::{DecodeScratch, DecompressionEngine, EncodeScratch};
use compaqt::pulse::waveform::Waveform;
use proptest::prelude::*;

/// All variants the codec supports, across every window size.
fn all_variants() -> Vec<Variant> {
    let mut v = vec![Variant::Delta, Variant::DctN];
    for ws in compaqt::dsp::intdct::SUPPORTED_SIZES {
        v.push(Variant::DctW { ws });
        v.push(Variant::IntDctW { ws });
    }
    v
}

/// Random low-harmonic mixtures: the smooth band-limited waveform class.
fn smooth_signal(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1.0f64..1.0, 6).prop_map(move |coeffs| {
        (0..len)
            .map(|t| {
                let x = t as f64 / len as f64;
                let mut v = 0.0;
                for (k, c) in coeffs.iter().enumerate() {
                    v += c * (std::f64::consts::PI * (k + 1) as f64 * x).sin();
                }
                0.9 * v / coeffs.len() as f64
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_variant_agrees_across_paths(xs in smooth_signal(160)) {
        let wf = Waveform::from_real("prop", xs, 4.54);
        let mut scratch = DecodeScratch::new();
        let (mut i, mut q) = (Vec::new(), Vec::new());
        for variant in all_variants() {
            let z = Compressor::new(variant).compress(&wf).unwrap();
            let engine = DecompressionEngine::for_variant(variant).unwrap();
            let (alloc, alloc_stats) = engine.decompress(&z).unwrap();
            let stats = engine.decompress_into(&z, &mut scratch, &mut i, &mut q).unwrap();
            prop_assert_eq!(alloc.i(), &i[..], "{:?}: I channel must be bit-exact", variant);
            prop_assert_eq!(alloc.q(), &q[..], "{:?}: Q channel must be bit-exact", variant);
            prop_assert_eq!(alloc_stats, stats);
        }
    }

    #[test]
    fn odd_lengths_agree_across_paths(
        xs in smooth_signal(137),
        ws_idx in 0usize..5,
    ) {
        // Padding paths: waveform length not a multiple of the window.
        let ws = compaqt::dsp::intdct::SUPPORTED_SIZES[ws_idx];
        let wf = Waveform::from_real("prop", xs, 4.54);
        let mut scratch = DecodeScratch::new();
        let (mut i, mut q) = (Vec::new(), Vec::new());
        for variant in [Variant::DctW { ws }, Variant::IntDctW { ws }] {
            let z = Compressor::new(variant).compress(&wf).unwrap();
            let engine = DecompressionEngine::for_variant(variant).unwrap();
            let (alloc, _) = engine.decompress(&z).unwrap();
            engine.decompress_into(&z, &mut scratch, &mut i, &mut q).unwrap();
            prop_assert_eq!(alloc.i(), &i[..]);
            prop_assert_eq!(alloc.q(), &q[..]);
        }
    }

    #[test]
    fn batch_decoders_agree_with_single_path(xs in smooth_signal(96)) {
        let wf = Waveform::from_real("prop", xs, 4.54);
        let zs: Vec<_> = all_variants()
            .into_iter()
            .map(|v| Compressor::new(v).compress(&wf).unwrap())
            .collect();
        let (seq, seq_stats) = batch::decompress_library(&zs).unwrap();
        let (par, par_stats) = batch::decompress_library_par(&zs).unwrap();
        prop_assert_eq!(seq_stats, par_stats);
        for ((z, a), b) in zs.iter().zip(&seq).zip(&par) {
            let engine = DecompressionEngine::for_variant(z.variant).unwrap();
            let (single, _) = engine.decompress(z).unwrap();
            prop_assert_eq!(single.i(), a.i());
            prop_assert_eq!(a.i(), b.i());
            prop_assert_eq!(a.q(), b.q());
        }
    }

    #[test]
    fn every_variant_compresses_identically_across_paths(xs in smooth_signal(160)) {
        // The reuse encoder must be a pure refactor: one scratch and one
        // output slot shared across all variants (worst case for stale
        // state) still produce streams identical to the allocating path.
        let wf = Waveform::from_real("prop", xs, 4.54);
        let mut scratch = EncodeScratch::new();
        let mut out = CompressedWaveform::empty();
        for variant in all_variants() {
            let compressor = Compressor::new(variant);
            compressor.compress_into(&wf, &mut scratch, &mut out).unwrap();
            prop_assert_eq!(&out, &compressor.compress(&wf).unwrap(),
                "{:?}: compress_into must be bit-exact", variant);
        }
    }

    #[test]
    fn capped_and_thresholded_encodes_agree_across_paths(
        xs in smooth_signal(200),
        cap in 2usize..5,
        thr_millis in 1u32..60,
    ) {
        let wf = Waveform::from_real("prop", xs, 4.54);
        let compressor = Compressor::new(Variant::IntDctW { ws: 16 })
            .with_threshold(f64::from(thr_millis) / 1000.0)
            .with_max_window_words(cap);
        let mut scratch = EncodeScratch::new();
        let mut out = CompressedWaveform::empty();
        compressor.compress_into(&wf, &mut scratch, &mut out).unwrap();
        prop_assert_eq!(&out, &compressor.compress(&wf).unwrap());
    }

    #[test]
    fn overlap_and_adaptive_encoders_agree_across_paths(xs in smooth_signal(454)) {
        use compaqt::core::adaptive::AdaptiveCompressor;
        use compaqt::core::overlap::{OverlapCompressed, OverlapCompressor};
        use compaqt::pulse::shapes::{GaussianSquare, PulseShape};
        let wf = Waveform::from_real("prop", xs, 4.54);
        let mut scratch = EncodeScratch::new();
        let lapped = OverlapCompressor::new(8).unwrap();
        let mut out = OverlapCompressed::empty();
        lapped.compress_into(&wf, &mut scratch, &mut out).unwrap();
        prop_assert_eq!(&out, &lapped.compress(&wf).unwrap());
        // Flat-top for the adaptive encoder (synthetic plateau).
        let flat = GaussianSquare::new(454, 0.35, 12.0, 360).to_waveform("flat", 4.54);
        let adaptive = AdaptiveCompressor::new(Variant::IntDctW { ws: 16 });
        prop_assert_eq!(
            adaptive.compress_with(&flat, &mut scratch).unwrap(),
            adaptive.compress(&flat).unwrap()
        );
    }

    #[test]
    fn window_cap_streams_agree_across_paths(xs in smooth_signal(200), cap in 2usize..5) {
        let wf = Waveform::from_real("prop", xs, 4.54);
        let z = Compressor::new(Variant::IntDctW { ws: 16 })
            .with_max_window_words(cap)
            .compress(&wf)
            .unwrap();
        let engine = DecompressionEngine::for_variant(z.variant).unwrap();
        let (alloc, _) = engine.decompress(&z).unwrap();
        let mut scratch = DecodeScratch::new();
        let (mut i, mut q) = (Vec::new(), Vec::new());
        engine.decompress_into(&z, &mut scratch, &mut i, &mut q).unwrap();
        prop_assert_eq!(alloc.i(), &i[..]);
        prop_assert_eq!(alloc.q(), &q[..]);
    }
}

/// A mixed-length `DCT-N` library exercises the keyed plan cache: every
/// waveform length needs its own full-length transform plan, and before
/// the cache a single cached slot was rebuilt on every length change.
#[test]
fn mixed_length_dct_n_library_round_trips_through_shared_scratches() {
    use compaqt::pulse::shapes::{GaussianSquare, PulseShape};
    // More distinct lengths than fit in one plan slot, revisited in an
    // alternating order that would thrash a single-entry cache.
    let lengths = [136usize, 1362, 454, 160, 320, 136, 1362, 454, 160, 320, 136, 1362];
    let compressor = Compressor::new(Variant::DctN);
    let engine = DecompressionEngine::for_variant(Variant::DctN).unwrap();
    let mut enc = EncodeScratch::new();
    let mut dec = DecodeScratch::new();
    let mut z = CompressedWaveform::empty();
    let (mut i, mut q) = (Vec::new(), Vec::new());
    for &n in &lengths {
        let wf = GaussianSquare::new(n, 0.3, n as f64 / 30.0, n / 2).to_waveform("w", 4.54);
        // Encode through the shared scratch == allocating encode.
        compressor.compress_into(&wf, &mut enc, &mut z).unwrap();
        assert_eq!(z, compressor.compress(&wf).unwrap(), "n={n}: encode paths diverge");
        // Decode through the shared scratch == allocating decode.
        let (alloc, _) = engine.decompress(&z).unwrap();
        engine.decompress_into(&z, &mut dec, &mut i, &mut q).unwrap();
        assert_eq!(alloc.i(), &i[..], "n={n}: decode paths diverge");
        assert_eq!(alloc.q(), &q[..], "n={n}: decode paths diverge");
    }
    // Five distinct lengths -> five cached plans on each side, within the
    // bound; revisits were cache hits, not rebuilds.
    assert_eq!(enc.plan_cache().len(), 5);
    assert_eq!(dec.plan_cache().len(), 5);
    assert!(enc.plan_cache().len() <= enc.plan_cache().capacity());
    assert!(dec.plan_cache().len() <= dec.plan_cache().capacity());
}

/// Adversarial length sequences must never grow the cache past its
/// bound, and evicted-then-revisited lengths must still decode exactly.
#[test]
fn plan_cache_stays_bounded_under_adversarial_length_sequences() {
    use compaqt::dsp::plan::DctPlanCache;
    use compaqt::pulse::shapes::{Gaussian, PulseShape};
    let cap = DctPlanCache::DEFAULT_CAPACITY;
    // A sweep of more distinct lengths than the bound, then a revisit of
    // the oldest (guaranteed-evicted) length.
    let lengths: Vec<usize> = (0..cap + 4).map(|k| 96 + 16 * k).collect();
    let compressor = Compressor::new(Variant::DctN);
    let engine = DecompressionEngine::for_variant(Variant::DctN).unwrap();
    let mut dec = DecodeScratch::new();
    let (mut i, mut q) = (Vec::new(), Vec::new());
    for &n in lengths.iter().chain([lengths[0]].iter()) {
        let wf = Gaussian::new(n, 0.5, n as f64 / 5.0).to_waveform("g", 4.54);
        let z = compressor.compress(&wf).unwrap();
        let (alloc, _) = engine.decompress(&z).unwrap();
        engine.decompress_into(&z, &mut dec, &mut i, &mut q).unwrap();
        assert_eq!(alloc.i(), &i[..], "n={n}");
        assert!(dec.plan_cache().len() <= cap, "n={n}: cache exceeded its bound");
    }
    assert_eq!(dec.plan_cache().len(), cap, "sweep should fill the cache exactly");
    assert!(dec.plan_cache().contains(lengths[0]), "revisited length must be re-cached");
}
