//! Ledger invariants for the observability tier (`compaqt-obs`) and
//! its wire exposure:
//!
//! 1. **histogram properties** (proptest) — every recorded sample lands
//!    in exactly the bucket whose bounds contain it, quantile estimates
//!    stay inside the rank bucket's bounds and are monotone in `q`,
//!    `max_estimate` dominates every sample, and shard-local snapshots
//!    merge into the distribution one histogram would have seen;
//! 2. **trace-ring integrity** — drop-oldest retention is exact in the
//!    single-writer case, and under a multi-thread write storm every
//!    event a concurrent snapshot returns is internally consistent
//!    (never torn), with the recorded/dropped accounting intact;
//! 3. **metrics over loopback** — a live daemon answers the `Metrics`
//!    request with a snapshot whose wire encoding is *canonical*
//!    (re-encoding the parsed snapshot reproduces the payload bit for
//!    bit) and whose text exposition is byte-stable across the round
//!    trip.

use compaqt::core::compress::{Compressor, Variant};
use compaqt::core::store::StoreConfig;
use compaqt::io::serve::{serve_with, Client, ServeConfig};
use compaqt::io::wire::{encode_metrics_report, parse_metrics_report};
use compaqt::io::{write_library, Reader};
use compaqt::obs::{
    bucket_bounds, render_text, Histogram, HistogramSnapshot, Snapshot, TraceEvent, TraceKind,
    TraceRing, BUCKETS,
};
use compaqt::pulse::device::Device;
use compaqt::pulse::vendor::Vendor;
use proptest::prelude::*;
use std::sync::Arc;

/// The bucket a value must land in, derived from the *public* bounds
/// contract rather than the implementation's bit twiddling: the unique
/// `b` with `bucket_bounds(b).0 <= v <= bucket_bounds(b).1`.
fn bucket_of(v: u64) -> usize {
    (0..BUCKETS)
        .find(|&b| {
            let (low, high) = bucket_bounds(b);
            low <= v && v <= high
        })
        .expect("bucket bounds must cover every u64")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bucket placement, quantile bounds/monotonicity, max domination
    /// and merge additivity, for arbitrary sample sets.
    #[test]
    fn histogram_buckets_and_quantiles_respect_their_bounds(
        samples in proptest::collection::vec(proptest::num::u64::ANY, 1..200),
        split in proptest::num::usize::ANY,
        q_milli in 0u64..=1000,
    ) {
        let hist = Histogram::new();
        for &s in &samples {
            hist.record(s);
        }
        let snap = hist.snapshot();
        prop_assert_eq!(snap.count(), samples.len() as u64);

        // Each bucket holds exactly the samples its bounds admit.
        for b in 0..BUCKETS {
            let (low, high) = bucket_bounds(b);
            let expected = samples.iter().filter(|&&s| low <= s && s <= high).count() as u64;
            prop_assert_eq!(snap.buckets[b], expected, "bucket {}", b);
        }

        // A quantile estimate lives inside the bounds of the bucket
        // holding the true rank-th smallest sample.
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let q = q_milli as f64 / 1000.0;
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let (low, high) = bucket_bounds(bucket_of(sorted[rank - 1]));
        let estimate = snap.quantile(q);
        prop_assert!(low <= estimate && estimate <= high,
            "q={} estimate {} outside [{}, {}]", q, estimate, low, high);

        // Monotone in q, and the max estimate dominates every sample.
        let (p50, p90, p99) = (snap.quantile(0.5), snap.quantile(0.9), snap.quantile(0.99));
        prop_assert!(p50 <= p90 && p90 <= p99 && p99 <= snap.max_estimate());
        prop_assert!(snap.max_estimate() >= *sorted.last().unwrap());

        // Shard-local recording merges into the global distribution.
        let cut = split % (samples.len() + 1);
        let (left, right) = (Histogram::new(), Histogram::new());
        for &s in &samples[..cut] {
            left.record(s);
        }
        for &s in &samples[cut..] {
            right.record(s);
        }
        let mut merged = left.snapshot();
        merged.merge(&right.snapshot());
        prop_assert_eq!(merged, snap);
    }

    /// Any snapshot survives the wire round trip unchanged, and the
    /// encoding is canonical: re-encoding the parsed snapshot is
    /// bit-identical, and so is the rendered text exposition.
    #[test]
    fn snapshot_wire_round_trip_is_canonical(
        counters in proptest::collection::vec(proptest::num::u64::ANY, 0..4),
        hist_samples in proptest::collection::vec(proptest::num::u64::ANY, 0..40),
        event_words in proptest::collection::vec(proptest::num::u64::ANY, 0..30),
        dropped in proptest::num::u64::ANY,
    ) {
        let mut snap = Snapshot::new();
        for (k, &v) in counters.iter().enumerate() {
            snap.push_counter(format!("counter_{k}"), v);
            snap.push_gauge(format!("gauge_{k}"), v / 2);
        }
        let hist = Histogram::new();
        for &s in &hist_samples {
            hist.record(s);
        }
        snap.push_histogram("latency_ns", hist.snapshot());
        // Each word triple becomes one event; the first word picks the
        // kind (every tag is valid modulo 8).
        for triple in event_words.chunks_exact(3) {
            let kind = TraceKind::from_tag((triple[0] % 8) as u8 + 1).unwrap();
            snap.events.push(TraceEvent { kind, a: triple[1], b: triple[2], t_ns: triple[0] });
        }
        snap.dropped_events = dropped;

        let mut wire = bytes::BytesMut::new();
        encode_metrics_report(&mut wire, &snap).unwrap();
        let payload = payload_of(&wire);
        let parsed = parse_metrics_report(payload).unwrap();
        prop_assert_eq!(&parsed, &snap);

        let mut rewire = bytes::BytesMut::new();
        encode_metrics_report(&mut rewire, &parsed).unwrap();
        prop_assert_eq!(payload_of(&rewire), payload, "re-encoding must be bit-identical");
        prop_assert_eq!(render_text(&parsed), render_text(&snap));
    }
}

/// Strips the frame header and CRC trailer off an encoded frame.
fn payload_of(frame: &[u8]) -> &[u8] {
    use compaqt::io::wire::{FRAME_HEADER_BYTES, FRAME_TRAILER_BYTES};
    &frame[FRAME_HEADER_BYTES..frame.len() - FRAME_TRAILER_BYTES]
}

/// Single-writer retention is exact: after `3 * capacity` pushes the
/// ring holds precisely the newest `capacity` events, in order, with
/// nothing dropped (no writer was ever raced).
#[test]
fn ring_drops_oldest_exactly_in_single_writer_order() {
    let ring = TraceRing::new(8);
    let cap = ring.capacity() as u64;
    for k in 0..3 * cap {
        ring.push(TraceKind::HotEviction, k, 3 * cap - k);
    }
    assert_eq!(ring.recorded(), 3 * cap);
    assert_eq!(ring.dropped(), 0, "an unraced writer never abandons an event");
    let events = ring.snapshot();
    assert_eq!(events.len(), ring.capacity());
    for (offset, event) in events.iter().enumerate() {
        let k = 2 * cap + offset as u64;
        assert_eq!(event.kind, TraceKind::HotEviction);
        assert_eq!(event.a, k, "retained events are the newest, oldest first");
        assert_eq!(event.b, 3 * cap - k);
    }
}

/// Concurrent-writer integrity: eight writer threads storm a small ring
/// (maximum lap pressure) while the main thread snapshots continuously.
/// Every event any snapshot returns must be internally consistent —
/// `a` and `b` carry a redundant encoding a torn read would break —
/// and the recorded/dropped ledger must account for every claim.
/// Run with `RUST_TEST_THREADS=8` in CI so the storm is real.
#[test]
fn ring_snapshots_are_never_torn_under_concurrent_writers() {
    const WRITERS: u64 = 8;
    const PUSHES: u64 = 20_000;
    let ring = Arc::new(TraceRing::new(16));

    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let ring = Arc::clone(&ring);
            scope.spawn(move || {
                for seq in 0..PUSHES {
                    // Redundant payload: b encodes (writer, seq) so a
                    // torn a/b pair is detectable in any snapshot.
                    ring.push(TraceKind::SlowRequest, w, w * PUSHES + seq);
                }
            });
        }
        // Snapshot throughout the storm; every observed event must be
        // whole.
        let mut scratch = Vec::new();
        for _ in 0..200 {
            scratch.clear();
            ring.snapshot_into(&mut scratch);
            assert!(scratch.len() <= ring.capacity());
            for event in &scratch {
                assert_eq!(event.kind, TraceKind::SlowRequest, "torn event kind");
                assert!(event.a < WRITERS, "torn event: writer {} out of range", event.a);
                assert_eq!(event.b / PUSHES, event.a, "torn event: a/b disagree");
                assert!(event.b % PUSHES < PUSHES);
            }
        }
    });

    // Every claim is accounted for: recorded counts all attempts,
    // dropped only the raced ones, and the final ring is full and
    // clean.
    assert_eq!(ring.recorded(), WRITERS * PUSHES);
    assert!(ring.dropped() <= ring.recorded());
    let final_events = ring.snapshot();
    assert!(!final_events.is_empty());
    for event in &final_events {
        assert_eq!(event.b / PUSHES, event.a);
    }
}

/// The live-daemon scrape: a served store (codec metrics armed, a
/// deliberately hair-trigger slow-request threshold) answers `Metrics`
/// with a snapshot carrying both tiers' telemetry, and the exposition
/// survives the wire bit-for-bit.
#[test]
fn metrics_over_loopback_round_trips_bit_identically() {
    let lib = Device::synthesize(Vendor::Ibm, 3, 0x0B5).pulse_library();
    let bytes = write_library(&lib, &Compressor::new(Variant::IntDctW { ws: 16 })).unwrap();
    let reader = Reader::new(bytes).unwrap();
    let store = Arc::new(
        reader
            .into_store(StoreConfig { shards: 4, hot_capacity: lib.len(), codec_metrics: true })
            .unwrap(),
    );
    let config = ServeConfig {
        slow_request: std::time::Duration::from_nanos(1),
        trace_events: 64,
        ..ServeConfig::default()
    };
    let handle = serve_with(Arc::clone(&store), "127.0.0.1:0", config).unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();

    client.ping().unwrap();
    let gates = client.gates().unwrap();
    let (mut i, mut q) = (Vec::new(), Vec::new());
    for gate in gates.iter().take(4) {
        client.fetch_into(gate, &mut i, &mut q).unwrap();
    }
    // Decode through the store directly so the codec histograms have
    // samples regardless of how the serve path fetches streams (wire
    // fetches are zero-parse and never decode), and warm one hot-set
    // slot so the residency gauge moves.
    store.fetch_into(&gates[0], &mut i, &mut q).unwrap();
    store.fetch_cached(&gates[0]).unwrap();

    // First scrape: both tiers are present with live values.
    let snap = client.metrics().unwrap();
    assert!(snap.counter("serve_requests").unwrap() >= 6, "ping + list + 4 fetches");
    assert_eq!(snap.counter("serve_protocol_errors"), Some(0));
    assert_eq!(snap.counter("serve_timeouts"), Some(0));
    assert_eq!(snap.gauge("serve_connections"), Some(1), "exactly this client is connected");
    assert_eq!(snap.counter("store_fetches"), Some(2), "the two direct store calls above");
    assert!(snap.histogram("store_decode_ns").unwrap().count() >= 1);
    assert!(
        snap.histogram("store_decode_ns_int_dct_w16").unwrap().count() >= 1,
        "per-variant breakdown is armed"
    );
    assert!(snap.gauge("store_hot_len").unwrap() >= 1);
    // The hair-trigger threshold made every request slow; events from
    // the serve tier's ring ride along in the same snapshot.
    assert!(snap.events.iter().any(|e| e.kind == TraceKind::ConnOpen));
    assert!(snap.events.iter().any(|e| e.kind == TraceKind::SlowRequest));

    // Second scrape: the first Metrics request itself is now ledgered
    // in its own latency histogram.
    let second = client.metrics().unwrap();
    assert!(second.histogram("serve_metrics_ns").unwrap().count() >= 1);
    assert!(second.counter("serve_requests").unwrap() > snap.counter("serve_requests").unwrap());

    // Canonical wire form: re-encoding the scraped snapshot must be
    // bit-identical to a fresh encoding of its parse, and the text
    // exposition byte-stable across the round trip.
    let mut wire = bytes::BytesMut::new();
    encode_metrics_report(&mut wire, &second).unwrap();
    let parsed = parse_metrics_report(payload_of(&wire)).unwrap();
    assert_eq!(parsed, second);
    let mut rewire = bytes::BytesMut::new();
    encode_metrics_report(&mut rewire, &parsed).unwrap();
    assert_eq!(&*rewire, &*wire, "scraped snapshots re-encode bit-identically");
    let text = render_text(&second);
    assert_eq!(render_text(&parsed), text);
    assert!(text.contains("serve_requests"), "exposition names every sample");

    // The in-process hub is the same ledger the wire reported.
    let stats = handle.stats();
    assert_eq!(stats.connections_accepted, 1);
    assert_eq!(stats.protocol_errors, 0);
    assert!(handle.obs().ring().recorded() > 0);

    drop(client);
    handle.shutdown();
}

/// An empty snapshot — no samples, no events — is also canonical on
/// the wire (the degenerate case a fresh daemon with an uninstrumented
/// source would serve).
#[test]
fn empty_snapshot_round_trips() {
    let snap = Snapshot::new();
    let mut wire = bytes::BytesMut::new();
    encode_metrics_report(&mut wire, &snap).unwrap();
    let parsed = parse_metrics_report(payload_of(&wire)).unwrap();
    assert_eq!(parsed, snap);
    assert_eq!(parsed.samples.len(), 0);
    assert_eq!(parsed.events.len(), 0);
    assert_eq!(parsed.dropped_events, 0);
    assert_eq!(HistogramSnapshot::empty().count(), 0);
}
