//! Hostile-registry robustness: [`Registry::parse_bytes`] fed
//! attacker-controlled text must return a typed [`RegistryError`] —
//! never panic, never overflow, and never build a spec that fails its
//! own validation.
//!
//! The mangler attacks every layer of the text format:
//!
//! 1. **arbitrary garbage** — random byte buffers (usually not even
//!    UTF-8) through the full parser;
//! 2. **bit flips on clean registry text** — the canonical built-in
//!    fleet serialization with one bit damaged anywhere;
//! 3. **truncation** — every prefix of the clean text;
//! 4. **structured lies** — duplicate keys, duplicate devices, absurd
//!    counts that would size allocations if trusted, keys on device
//!    classes that must reject them;
//! 5. **splices** — random line-level shuffles of real directives.

use compaqt::pulse::registry::{Registry, RegistryError, MAX_QUBITS};
use proptest::prelude::*;

/// The clean text under attack, rendered once from the built-in fleet —
/// at amplified case counts the time goes to mangling, not to
/// re-serializing the same registry thousands of times.
fn clean_text() -> &'static str {
    static TEXT: std::sync::OnceLock<String> = std::sync::OnceLock::new();
    TEXT.get_or_init(|| Registry::builtin().to_text())
}

/// A parse outcome is acceptable iff it is `Ok` or a typed error; this
/// helper exists so every proptest drives the same total-function
/// contract, including the round-trip of survivors.
fn parse_is_total(bytes: &[u8]) {
    if let Ok(reg) = Registry::parse_bytes(bytes) {
        // A surviving registry must be internally consistent: every
        // entry validates, is findable by name, and re-serializes to
        // text that parses back to the same registry.
        for spec in reg.iter() {
            spec.validate().expect("a parsed spec must validate");
            assert_eq!(reg.get(&spec.name), Some(spec));
        }
        let reparsed = Registry::parse(&reg.to_text()).expect("canonical text must parse");
        assert_eq!(reparsed.len(), reg.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary bytes never panic the parser.
    #[test]
    fn arbitrary_garbage_never_panics(
        garbage in proptest::collection::vec(proptest::num::u8::ANY, 0..512),
    ) {
        parse_is_total(&garbage);
    }

    /// A single bit flip anywhere in clean registry text either parses
    /// (the flip landed in a name or comment) or fails typed.
    #[test]
    fn bit_flips_never_panic(pos in proptest::num::usize::ANY, bit in 0u32..8) {
        let mut bytes = clean_text().as_bytes().to_vec();
        let k = pos % bytes.len();
        bytes[k] ^= 1 << bit;
        parse_is_total(&bytes);
    }

    /// Every truncation of the clean text is total: either the cut fell
    /// on a device boundary (still parses) or the parser reports the
    /// torn structure as a typed error.
    #[test]
    fn truncations_never_panic(cut in proptest::num::usize::ANY) {
        let bytes = clean_text().as_bytes();
        parse_is_total(&bytes[..cut % bytes.len()]);
    }

    /// Random line-level splices of real directives — devices inside
    /// devices, strays outside any block, reordered keys — are total.
    #[test]
    fn line_splices_never_panic(
        picks in proptest::collection::vec(proptest::num::usize::ANY, 1..40),
    ) {
        let lines: Vec<&str> = clean_text().lines().collect();
        let spliced: Vec<&str> = picks.iter().map(|&p| lines[p % lines.len()]).collect();
        parse_is_total(spliced.join("\n").as_bytes());
    }

    /// Absurd numeric claims are rejected with a typed count/value error
    /// before anything is sized from them.
    #[test]
    fn overflow_counts_are_typed_errors(count in proptest::num::u64::ANY) {
        prop_assume!(count > MAX_QUBITS as u64);
        let text = format!("device huge\nqubits {count}\nend\n");
        let err = Registry::parse(&text).expect_err("an absurd qubit count must not parse");
        prop_assert!(matches!(
            err,
            RegistryError::CountOutOfRange { .. } | RegistryError::InvalidValue { .. }
        ), "got {err:?}");
    }

    /// Duplicating any key-value line inside a device block is a typed
    /// duplicate-key error, wherever the line lands.
    #[test]
    fn duplicate_keys_are_typed_errors(device_ix in proptest::num::usize::ANY) {
        let text = clean_text();
        let blocks: Vec<&str> = text.split("\n\n").collect();
        let block = blocks[device_ix % blocks.len()].trim();
        // Duplicate the first key line (the line after `device <name>`).
        let mut lines: Vec<&str> = block.lines().collect();
        prop_assume!(lines.len() > 2);
        let dup = lines[1];
        lines.insert(2, dup);
        let err = Registry::parse(&lines.join("\n"))
            .expect_err("a duplicated key must not parse");
        prop_assert!(
            matches!(err, RegistryError::DuplicateKey { .. }),
            "expected DuplicateKey, got {err:?}"
        );
    }
}

/// Deliberate structural lies, each pinned to its typed rejection.
#[test]
fn structural_lies_are_rejected() {
    // Not UTF-8.
    assert_eq!(Registry::parse_bytes(&[0x64, 0xFF, 0xFE]).unwrap_err(), RegistryError::NotUtf8);

    // Key-value junk outside any device block.
    let err = Registry::parse("qubits 5\n").unwrap_err();
    assert!(matches!(err, RegistryError::JunkOutsideDevice { line: 1 }), "{err:?}");

    // A device block opened inside another.
    let err = Registry::parse("device a\ndevice b\nend\nend\n").unwrap_err();
    assert!(matches!(err, RegistryError::NestedDevice { line: 2 }), "{err:?}");

    // `end` with no open block.
    let err = Registry::parse("end\n").unwrap_err();
    assert!(matches!(err, RegistryError::StrayEnd { line: 1 }), "{err:?}");

    // A block the text never closes.
    let err = Registry::parse("device a\nqubits 3\n").unwrap_err();
    assert!(matches!(err, RegistryError::UnterminatedDevice { .. }), "{err:?}");

    // The same device declared twice (reported where the second block
    // completes and tries to register).
    let err = Registry::parse("device a\nqubits 3\nend\ndevice a\nqubits 3\nend\n").unwrap_err();
    assert!(matches!(err, RegistryError::DuplicateDevice { line: 6, .. }), "{err:?}");

    // A key the grammar does not know.
    let err = Registry::parse("device a\ncolor red\nend\n").unwrap_err();
    assert!(matches!(err, RegistryError::UnknownKey { line: 2, .. }), "{err:?}");

    // A value the key cannot hold.
    let err = Registry::parse("device a\nqubits banana\nend\n").unwrap_err();
    assert!(matches!(err, RegistryError::InvalidValue { line: 2, .. }), "{err:?}");

    // A transmon device with no way to resolve its qubit count.
    let err = Registry::parse("device a\nend\n").unwrap_err();
    assert!(matches!(err, RegistryError::MissingField { .. }), "{err:?}");

    // Exotic devices own their qubit count; declaring one is a lie.
    let err = Registry::parse("device a\nclass exotic\nqubits 9\nend\n").unwrap_err();
    assert!(matches!(err, RegistryError::KeyNotAllowed { line: 3, .. }), "{err:?}");

    // Surface patches derive (2d-1)^2 qubits; contradicting it is a lie.
    let err = Registry::parse("device a\ntopology surface:3\nqubits 7\nend\n").unwrap_err();
    assert!(matches!(err, RegistryError::SurfaceSizeMismatch { .. }), "{err:?}");
}

/// The clean fleet text itself parses back bit-for-bit: the hostile
/// suite is attacking a baseline that genuinely round-trips.
#[test]
fn clean_text_round_trips() {
    let reg = Registry::parse(clean_text()).unwrap();
    assert_eq!(&reg, Registry::builtin());
    assert_eq!(reg.to_text(), clean_text());
}
