//! Hostile-container robustness: a `Reader` fed attacker-controlled
//! bytes must return a typed [`ContainerError`] — never panic, never
//! overflow, and never size an allocation from an unverified claim.
//!
//! The mangler attacks every structural layer:
//!
//! 1. **arbitrary garbage** — random buffers through the full
//!    validator;
//! 2. **bit flips on a real container** — anywhere in header, index or
//!    payload; index and payload flips are caught by their CRC-32s, and
//!    the rare header flip that still validates (e.g. the rate bits)
//!    must leave a reader that *serves* without panicking;
//! 3. **truncation** — every prefix of a real container is rejected;
//! 4. **metadata lies** — length fields, offsets, counts and section
//!    sizes rewritten to claim what the bytes cannot back, including
//!    overlap and out-of-bounds layouts and absurd entry counts that
//!    would buy multi-gigabyte allocations if trusted;
//! 5. **CRC damage and version skew** — payload flips surface as
//!    [`ContainerError::CrcMismatch`], future versions as
//!    [`ContainerError::VersionSkew`].

use compaqt::core::compress::{Compressor, Variant};
use compaqt::core::store::StoreConfig;
use compaqt::io::{write_library, ContainerError, ContainerScratch, Reader};
use compaqt::pulse::device::Device;
use compaqt::pulse::vendor::Vendor;
use proptest::prelude::*;

/// Header layout offsets (see the `compaqt-io` crate docs).
const VERSION_AT: usize = 4;
const COUNT_AT: usize = 16;
const INDEX_BYTES_AT: usize = 20;
const PAYLOAD_BYTES_AT: usize = 28;
const INDEX_CRC_AT: usize = 36;
const HEADER_BYTES: usize = 40;

/// Rewrites the header's index CRC to match the (mangled) index bytes,
/// modelling a *consistent* forger — the structural checks underneath
/// the checksum are what's under test then.
fn fix_index_crc(bytes: &mut [u8]) {
    let index_bytes =
        u64::from_le_bytes(bytes[INDEX_BYTES_AT..INDEX_BYTES_AT + 8].try_into().unwrap()) as usize;
    let crc = compaqt::io::crc32::crc32(&bytes[HEADER_BYTES..HEADER_BYTES + index_bytes]);
    bytes[INDEX_CRC_AT..INDEX_CRC_AT + 4].copy_from_slice(&crc.to_le_bytes());
}

/// The clean container under attack, built once — at amplified case
/// counts the time goes to mangling, not to recompressing the same
/// library thousands of times.
fn container_bytes() -> Vec<u8> {
    static BYTES: std::sync::OnceLock<Vec<u8>> = std::sync::OnceLock::new();
    BYTES
        .get_or_init(|| {
            let lib = Device::synthesize(Vendor::Ibm, 2, 0x5EED).pulse_library();
            write_library(&lib, &Compressor::new(Variant::IntDctW { ws: 16 })).unwrap().to_vec()
        })
        .clone()
}

fn patch_u32(bytes: &mut [u8], at: usize, v: u32) {
    bytes[at..at + 4].copy_from_slice(&v.to_le_bytes());
}

fn patch_u64(bytes: &mut [u8], at: usize, v: u64) {
    bytes[at..at + 8].copy_from_slice(&v.to_le_bytes());
}

/// Exercises a reader that happened to validate: every entry must list,
/// read and decode (or error) without panicking, and the store bridge
/// must stay total as well.
fn drive_survivor(reader: &Reader) {
    let mut scratch = ContainerScratch::new();
    let (mut i, mut q) = (Vec::new(), Vec::new());
    for entry in reader.entries() {
        let _ = entry.payload().len();
        if let Ok(stream) = entry.read() {
            let _ = stream.decompress();
        }
        let gate = entry.gate().clone();
        assert!(reader.find(&gate).is_some(), "listed entries must be findable");
        let _ = reader.fetch_into(&gate, &mut scratch, &mut i, &mut q);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Arbitrary bytes never panic the validator.
    #[test]
    fn arbitrary_garbage_never_panics(
        garbage in proptest::collection::vec(proptest::num::u8::ANY, 0..320),
    ) {
        // Validation is vanishingly unlikely — but a survivor must
        // still be total.
        if let Ok(reader) = Reader::from_vec(garbage) {
            drive_survivor(&reader);
        }
    }

    /// A single bit flip anywhere in a real container either fails
    /// validation with a typed error or leaves a reader that serves
    /// without panicking.
    #[test]
    fn bit_flips_never_panic(
        pos in proptest::num::usize::ANY,
        bit in 0u32..8,
    ) {
        let mut bytes = container_bytes();
        let k = pos % bytes.len();
        bytes[k] ^= 1 << bit;
        if let Ok(reader) = Reader::from_vec(bytes) {
            drive_survivor(&reader);
            let _ = reader.into_store(StoreConfig::default());
        }
    }

    /// Every truncation of a real container is rejected with a typed
    /// error (never accepted, never a panic).
    #[test]
    fn truncations_are_always_rejected(cut in proptest::num::usize::ANY) {
        let bytes = container_bytes();
        let cut = cut % bytes.len();
        let err = Reader::from_vec(bytes[..cut].to_vec())
            .expect_err("a truncated container must not validate");
        prop_assert!(matches!(
            err,
            ContainerError::Truncated
                | ContainerError::IndexInvalid(_)
                | ContainerError::CrcMismatch { .. }
        ));
    }

    /// Any rewrite of an index byte is caught by the header's index
    /// CRC-32 — a damaged index must never validate, because a flipped
    /// gate field would otherwise silently remap an intact payload to
    /// the wrong gate. A *consistent* forger who also fixes the index
    /// CRC still faces the structural checks (and must then serve
    /// totally if it survives them).
    #[test]
    fn index_rewrites_are_rejected_or_survive_totally(
        at in proptest::num::usize::ANY,
        value in proptest::num::u8::ANY,
    ) {
        let mut bytes = container_bytes();
        let index_bytes =
            u64::from_le_bytes(bytes[INDEX_BYTES_AT..INDEX_BYTES_AT + 8].try_into().unwrap());
        let at = HEADER_BYTES + at % index_bytes as usize;
        let changed = bytes[at] != value;
        bytes[at] = value;
        match Reader::from_vec(bytes.clone()) {
            Ok(reader) => {
                prop_assert!(!changed, "a changed index byte must fail the index checksum");
                drive_survivor(&reader);
            }
            Err(e) => {
                if changed {
                    prop_assert_eq!(e, ContainerError::IndexCrcMismatch);
                }
            }
        }
        // Consistent forger: fix the checksum, keep the mangled bytes.
        fix_index_crc(&mut bytes);
        if let Ok(reader) = Reader::from_vec(bytes) {
            drive_survivor(&reader);
        }
    }
}

/// Deliberate metadata lies, each pinned to a typed rejection.
#[test]
fn metadata_lies_are_rejected() {
    let clean = container_bytes();

    // Version skew.
    let mut bad = clean.clone();
    bad[VERSION_AT] = 0xFE;
    assert_eq!(Reader::from_vec(bad).unwrap_err(), ContainerError::VersionSkew { found: 0xFE });

    // Entry count inflated to 4 billion: must be rejected *before* any
    // index storage is sized from it (a trusting reader would try to
    // reserve ~100 GiB here).
    let mut bad = clean.clone();
    patch_u32(&mut bad, COUNT_AT, u32::MAX);
    assert!(matches!(Reader::from_vec(bad).unwrap_err(), ContainerError::IndexInvalid(_)));

    // Section sizes that do not add up to the file.
    let mut bad = clean.clone();
    patch_u64(&mut bad, INDEX_BYTES_AT, u64::MAX / 2);
    assert_eq!(Reader::from_vec(bad).unwrap_err(), ContainerError::Truncated);
    let mut bad = clean.clone();
    patch_u64(&mut bad, PAYLOAD_BYTES_AT, 0);
    assert!(matches!(Reader::from_vec(bad).unwrap_err(), ContainerError::IndexInvalid(_)));
}

/// Offset/length lies inside the index: overlap, gaps and
/// out-of-bounds ranges are all structural errors, and payload damage
/// behind an intact index is a per-gate CRC mismatch.
#[test]
fn layout_lies_and_crc_damage_are_rejected() {
    let clean = container_bytes();
    let index_bytes =
        u64::from_le_bytes(clean[INDEX_BYTES_AT..INDEX_BYTES_AT + 8].try_into().unwrap()) as usize;

    // The first index entry is a no-custom-name gate:
    //   kind:u8 nq:u8 qubit:u16 codec:u8 vtag:u8 ws:u16 → offset next.
    let nq = clean[HEADER_BYTES + 1] as usize;
    let first_offset_at = HEADER_BYTES + 2 + 2 * nq + 4;

    // Without fixing the header's index CRC, any index rewrite is a
    // checksum mismatch before structure is even looked at.
    let mut bad = clean.clone();
    patch_u64(&mut bad, first_offset_at, 2);
    assert_eq!(Reader::from_vec(bad).unwrap_err(), ContainerError::IndexCrcMismatch);

    // Consistent forgers (index CRC recomputed) face the structural
    // checks. Offset pushed forward: the first range now overlaps the
    // second (and leaves a gap at zero) — contiguity catches both.
    let mut bad = clean.clone();
    patch_u64(&mut bad, first_offset_at, 2);
    fix_index_crc(&mut bad);
    assert!(matches!(Reader::from_vec(bad).unwrap_err(), ContainerError::IndexInvalid(_)));

    // Length inflated: every later range shifts out of place and the
    // section sum no longer closes.
    let mut bad = clean.clone();
    let len_at = first_offset_at + 8;
    let len = u32::from_le_bytes(clean[len_at..len_at + 4].try_into().unwrap());
    patch_u32(&mut bad, len_at, len + 2);
    fix_index_crc(&mut bad);
    assert!(matches!(Reader::from_vec(bad).unwrap_err(), ContainerError::IndexInvalid(_)));

    // Length inflated past the whole payload section: out of bounds.
    let mut bad = clean.clone();
    patch_u32(&mut bad, len_at, u32::MAX);
    fix_index_crc(&mut bad);
    assert!(matches!(Reader::from_vec(bad).unwrap_err(), ContainerError::IndexInvalid(_)));

    // The attack the index checksum exists for: rewrite the first
    // entry's qubit id so an intact, payload-CRC-valid pulse would be
    // served under the wrong gate. The index CRC refuses it.
    let mut bad = clean.clone();
    bad[HEADER_BYTES + 2] = 9; // X(q0) → X(q9), payloads untouched
    assert_eq!(Reader::from_vec(bad).unwrap_err(), ContainerError::IndexCrcMismatch);

    // Payload flip behind an intact index: CRC catches it and names
    // the damaged gate.
    let mut bad = clean.clone();
    let payload_base = HEADER_BYTES + index_bytes;
    bad[payload_base + 3] ^= 0x40;
    assert!(matches!(Reader::from_vec(bad).unwrap_err(), ContainerError::CrcMismatch { .. }));
}
