//! Hostile-container robustness: a `Reader` fed attacker-controlled
//! bytes must return a typed [`ContainerError`] — never panic, never
//! overflow, and never size an allocation from an unverified claim.
//!
//! The mangler attacks every structural layer:
//!
//! 1. **arbitrary garbage** — random buffers through the full
//!    validator;
//! 2. **bit flips on a real container** — anywhere in header, index or
//!    payload; index and payload flips are caught by their CRC-32s, and
//!    the rare header flip that still validates (e.g. the rate bits)
//!    must leave a reader that *serves* without panicking;
//! 3. **truncation** — every prefix of a real container is rejected;
//! 4. **metadata lies** — length fields, offsets, counts and section
//!    sizes rewritten to claim what the bytes cannot back, including
//!    overlap and out-of-bounds layouts and absurd entry counts that
//!    would buy multi-gigabyte allocations if trusted;
//! 5. **CRC damage and version skew** — payload flips surface as
//!    [`ContainerError::CrcMismatch`], future versions as
//!    [`ContainerError::VersionSkew`].

use compaqt::core::compress::{Compressor, Variant};
use compaqt::core::store::StoreConfig;
use compaqt::io::{write_library, ContainerError, ContainerScratch, Reader, ReaderOptions};
use compaqt::obs::{Snapshot, TraceKind, TraceRing};
use compaqt::pulse::device::Device;
use compaqt::pulse::vendor::Vendor;
use proptest::prelude::*;
use std::sync::Arc;

mod common;

/// Header layout offsets (see the `compaqt-io` crate docs).
const VERSION_AT: usize = 4;
const COUNT_AT: usize = 16;
const INDEX_BYTES_AT: usize = 20;
const PAYLOAD_BYTES_AT: usize = 28;
const INDEX_CRC_AT: usize = 36;
const HEADER_BYTES: usize = 40;

/// Rewrites the header's index CRC to match the (mangled) index bytes,
/// modelling a *consistent* forger — the structural checks underneath
/// the checksum are what's under test then.
fn fix_index_crc(bytes: &mut [u8]) {
    let index_bytes =
        u64::from_le_bytes(bytes[INDEX_BYTES_AT..INDEX_BYTES_AT + 8].try_into().unwrap()) as usize;
    let crc = compaqt::io::crc32::crc32(&bytes[HEADER_BYTES..HEADER_BYTES + index_bytes]);
    bytes[INDEX_CRC_AT..INDEX_CRC_AT + 4].copy_from_slice(&crc.to_le_bytes());
}

/// The clean container under attack, built once — at amplified case
/// counts the time goes to mangling, not to recompressing the same
/// library thousands of times.
fn container_bytes() -> Vec<u8> {
    static BYTES: std::sync::OnceLock<Vec<u8>> = std::sync::OnceLock::new();
    BYTES
        .get_or_init(|| {
            let lib = Device::synthesize(Vendor::Ibm, 2, 0x5EED).pulse_library();
            write_library(&lib, &Compressor::new(Variant::IntDctW { ws: 16 })).unwrap().to_vec()
        })
        .clone()
}

fn patch_u32(bytes: &mut [u8], at: usize, v: u32) {
    bytes[at..at + 4].copy_from_slice(&v.to_le_bytes());
}

fn patch_u64(bytes: &mut [u8], at: usize, v: u64) {
    bytes[at..at + 8].copy_from_slice(&v.to_le_bytes());
}

/// Exercises a reader that happened to validate: every entry must list,
/// read and decode (or error) without panicking, and the store bridge
/// must stay total as well.
fn drive_survivor(reader: &Reader) {
    let mut scratch = ContainerScratch::new();
    let (mut i, mut q) = (Vec::new(), Vec::new());
    for entry in reader.entries() {
        let _ = entry.payload().len();
        if let Ok(stream) = entry.read() {
            let _ = stream.decompress();
        }
        let gate = entry.gate().clone();
        assert!(reader.find(&gate).is_some(), "listed entries must be findable");
        let _ = reader.fetch_into(&gate, &mut scratch, &mut i, &mut q);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Arbitrary bytes never panic the validator.
    #[test]
    fn arbitrary_garbage_never_panics(
        garbage in proptest::collection::vec(proptest::num::u8::ANY, 0..320),
    ) {
        // Validation is vanishingly unlikely — but a survivor must
        // still be total.
        if let Ok(reader) = Reader::from_vec(garbage) {
            drive_survivor(&reader);
        }
    }

    /// A single bit flip anywhere in a real container either fails
    /// validation with a typed error or leaves a reader that serves
    /// without panicking.
    #[test]
    fn bit_flips_never_panic(
        pos in proptest::num::usize::ANY,
        bit in 0u32..8,
    ) {
        let mut bytes = container_bytes();
        let k = pos % bytes.len();
        bytes[k] ^= 1 << bit;
        if let Ok(reader) = Reader::from_vec(bytes) {
            drive_survivor(&reader);
            let _ = reader.into_store(StoreConfig::default());
        }
    }

    /// Every truncation of a real container is rejected with a typed
    /// error (never accepted, never a panic).
    #[test]
    fn truncations_are_always_rejected(cut in proptest::num::usize::ANY) {
        let bytes = container_bytes();
        let cut = cut % bytes.len();
        let err = Reader::from_vec(bytes[..cut].to_vec())
            .expect_err("a truncated container must not validate");
        prop_assert!(matches!(
            err,
            ContainerError::Truncated
                | ContainerError::IndexInvalid(_)
                | ContainerError::CrcMismatch { .. }
        ));
    }

    /// Any rewrite of an index byte is caught by the header's index
    /// CRC-32 — a damaged index must never validate, because a flipped
    /// gate field would otherwise silently remap an intact payload to
    /// the wrong gate. A *consistent* forger who also fixes the index
    /// CRC still faces the structural checks (and must then serve
    /// totally if it survives them).
    #[test]
    fn index_rewrites_are_rejected_or_survive_totally(
        at in proptest::num::usize::ANY,
        value in proptest::num::u8::ANY,
    ) {
        let mut bytes = container_bytes();
        let index_bytes =
            u64::from_le_bytes(bytes[INDEX_BYTES_AT..INDEX_BYTES_AT + 8].try_into().unwrap());
        let at = HEADER_BYTES + at % index_bytes as usize;
        let changed = bytes[at] != value;
        bytes[at] = value;
        match Reader::from_vec(bytes.clone()) {
            Ok(reader) => {
                prop_assert!(!changed, "a changed index byte must fail the index checksum");
                drive_survivor(&reader);
            }
            Err(e) => {
                if changed {
                    prop_assert_eq!(e, ContainerError::IndexCrcMismatch);
                }
            }
        }
        // Consistent forger: fix the checksum, keep the mangled bytes.
        fix_index_crc(&mut bytes);
        if let Ok(reader) = Reader::from_vec(bytes) {
            drive_survivor(&reader);
        }
    }
}

/// Deliberate metadata lies, each pinned to a typed rejection.
#[test]
fn metadata_lies_are_rejected() {
    let clean = container_bytes();

    // Version skew.
    let mut bad = clean.clone();
    bad[VERSION_AT] = 0xFE;
    assert_eq!(Reader::from_vec(bad).unwrap_err(), ContainerError::VersionSkew { found: 0xFE });

    // Entry count inflated to 4 billion: must be rejected *before* any
    // index storage is sized from it (a trusting reader would try to
    // reserve ~100 GiB here).
    let mut bad = clean.clone();
    patch_u32(&mut bad, COUNT_AT, u32::MAX);
    assert!(matches!(Reader::from_vec(bad).unwrap_err(), ContainerError::IndexInvalid(_)));

    // Section sizes that do not add up to the file.
    let mut bad = clean.clone();
    patch_u64(&mut bad, INDEX_BYTES_AT, u64::MAX / 2);
    assert_eq!(Reader::from_vec(bad).unwrap_err(), ContainerError::Truncated);
    let mut bad = clean.clone();
    patch_u64(&mut bad, PAYLOAD_BYTES_AT, 0);
    assert!(matches!(Reader::from_vec(bad).unwrap_err(), ContainerError::IndexInvalid(_)));
}

/// Offset/length lies inside the index: overlap, gaps and
/// out-of-bounds ranges are all structural errors, and payload damage
/// behind an intact index is a per-gate CRC mismatch.
#[test]
fn layout_lies_and_crc_damage_are_rejected() {
    let clean = container_bytes();
    let index_bytes =
        u64::from_le_bytes(clean[INDEX_BYTES_AT..INDEX_BYTES_AT + 8].try_into().unwrap()) as usize;

    // The first index entry is a no-custom-name gate:
    //   kind:u8 nq:u8 qubit:u16 codec:u8 vtag:u8 ws:u16 → offset next.
    let nq = clean[HEADER_BYTES + 1] as usize;
    let first_offset_at = HEADER_BYTES + 2 + 2 * nq + 4;

    // Without fixing the header's index CRC, any index rewrite is a
    // checksum mismatch before structure is even looked at.
    let mut bad = clean.clone();
    patch_u64(&mut bad, first_offset_at, 2);
    assert_eq!(Reader::from_vec(bad).unwrap_err(), ContainerError::IndexCrcMismatch);

    // Consistent forgers (index CRC recomputed) face the structural
    // checks. Offset pushed forward: the first range now overlaps the
    // second (and leaves a gap at zero) — contiguity catches both.
    let mut bad = clean.clone();
    patch_u64(&mut bad, first_offset_at, 2);
    fix_index_crc(&mut bad);
    assert!(matches!(Reader::from_vec(bad).unwrap_err(), ContainerError::IndexInvalid(_)));

    // Length inflated: every later range shifts out of place and the
    // section sum no longer closes.
    let mut bad = clean.clone();
    let len_at = first_offset_at + 8;
    let len = u32::from_le_bytes(clean[len_at..len_at + 4].try_into().unwrap());
    patch_u32(&mut bad, len_at, len + 2);
    fix_index_crc(&mut bad);
    assert!(matches!(Reader::from_vec(bad).unwrap_err(), ContainerError::IndexInvalid(_)));

    // Length inflated past the whole payload section: out of bounds.
    let mut bad = clean.clone();
    patch_u32(&mut bad, len_at, u32::MAX);
    fix_index_crc(&mut bad);
    assert!(matches!(Reader::from_vec(bad).unwrap_err(), ContainerError::IndexInvalid(_)));

    // The attack the index checksum exists for: rewrite the first
    // entry's qubit id so an intact, payload-CRC-valid pulse would be
    // served under the wrong gate. The index CRC refuses it.
    let mut bad = clean.clone();
    bad[HEADER_BYTES + 2] = 9; // X(q0) → X(q9), payloads untouched
    assert_eq!(Reader::from_vec(bad).unwrap_err(), ContainerError::IndexCrcMismatch);

    // Payload flip behind an intact index: CRC catches it and names
    // the damaged gate.
    let mut bad = clean.clone();
    let payload_base = HEADER_BYTES + index_bytes;
    bad[payload_base + 3] ^= 0x40;
    assert!(matches!(Reader::from_vec(bad).unwrap_err(), ContainerError::CrcMismatch { .. }));
}

/// Lazy-CRC mode defers payload verdicts to first touch, and then
/// caches them: a damaged payload behind an intact index opens fine
/// (the O(index) larger-than-RAM contract), fails **typed** the first
/// time its gate is touched, and keeps failing identically from the
/// cached verdict — it never panics and never serves rotten samples.
/// Every source kind must behave identically.
#[test]
fn lazy_crc_defers_verdicts_and_caches_failures() {
    let clean = container_bytes();
    let index_bytes =
        u64::from_le_bytes(clean[INDEX_BYTES_AT..INDEX_BYTES_AT + 8].try_into().unwrap()) as usize;
    let mut bad = clean.clone();
    // Damage the first entry's payload (offset 0 in the payload section).
    bad[HEADER_BYTES + index_bytes + 3] ^= 0x40;

    // Eager mode (the Reader::new path) refuses the container at open.
    assert!(matches!(
        Reader::from_vec(bad.clone()).unwrap_err(),
        ContainerError::CrcMismatch { .. }
    ));

    // Reference decodes from the clean container, for the undamaged
    // gates the lazy reader must still serve bit-exactly.
    let reference = Reader::from_vec(clean.clone()).unwrap();

    // The reader's validation-progress gauges, as a scrape would see
    // them: (reader_crc_checked, reader_crc_failed).
    let crc_gauges = |reader: &Reader| -> (u64, u64) {
        let mut snap = Snapshot::new();
        reader.collect_obs(&mut snap);
        (snap.gauge("reader_crc_checked").unwrap(), snap.gauge("reader_crc_failed").unwrap())
    };

    for kind in common::selected_kinds() {
        common::with_source(kind, &bad, ReaderOptions::lazy_crc(), |r| {
            let reader = r.expect("a damaged payload must not fail an O(index) lazy open");
            assert_eq!(reader.source_kind(), kind);
            assert_eq!(reader.crc_checked(), 0, "{kind}: open must not touch payload CRCs");
            assert_eq!(crc_gauges(&reader), (0, 0), "{kind}: gauges start untouched");
            let ring = Arc::new(TraceRing::new(16));
            assert!(reader.attach_trace(Arc::clone(&ring)), "{kind}: first attach wins");

            let damaged = reader.entries().next().unwrap().gate().clone();
            let mut scratch = ContainerScratch::new();
            let (mut i, mut q) = (Vec::new(), Vec::new());

            // First touch: typed failure naming the damaged gate.
            let first = reader.fetch_into(&damaged, &mut scratch, &mut i, &mut q).unwrap_err();
            assert_eq!(first, ContainerError::CrcMismatch { gate: damaged.clone() }, "{kind}");
            assert_eq!(reader.crc_checked(), 1, "{kind}: exactly one verdict recorded");
            assert_eq!(crc_gauges(&reader), (1, 1), "{kind}: one check, one failure");
            let fails = ring.snapshot();
            assert_eq!(fails.len(), 1, "{kind}: first touch emits one trace event");
            assert_eq!(fails[0].kind, TraceKind::CrcFail, "{kind}");
            assert_eq!(fails[0].a, 0, "{kind}: the damaged entry is index 0");

            // Every later touch serves the cached verdict — same typed
            // error through every read surface, no recheck, no panic.
            let again = reader.fetch_into(&damaged, &mut scratch, &mut i, &mut q).unwrap_err();
            assert_eq!(again, first, "{kind}: cached verdict must match the first touch");
            let entry = reader.find(&damaged).unwrap();
            assert_eq!(entry.verify().unwrap_err(), first, "{kind}: verify sees the verdict");
            assert_eq!(entry.read().unwrap_err(), first, "{kind}: read sees the verdict");
            assert_eq!(reader.crc_checked(), 1, "{kind}: verdict is cached, not recounted");
            assert_eq!(crc_gauges(&reader), (1, 1), "{kind}: cached replays move no gauge");
            assert_eq!(ring.snapshot().len(), 1, "{kind}: cached replays re-emit no event");

            // Undamaged gates still serve, bit-identical to the clean
            // eager reader — and validation progress is monotone, one
            // gauge step per first touch, with no further failures.
            let (mut ri, mut rq) = (Vec::new(), Vec::new());
            let mut rscratch = ContainerScratch::new();
            let mut last_checked = 1;
            for gate in reference.gates().filter(|g| **g != damaged) {
                reader.fetch_into(gate, &mut scratch, &mut i, &mut q).unwrap();
                reference.fetch_into(gate, &mut rscratch, &mut ri, &mut rq).unwrap();
                assert_eq!(i, ri, "{kind} {gate}: lazy I decode");
                assert_eq!(q, rq, "{kind} {gate}: lazy Q decode");
                let (checked, failed) = crc_gauges(&reader);
                assert_eq!(checked, last_checked + 1, "{kind}: progress is monotone");
                assert_eq!(failed, 1, "{kind}: clean gates add no failures");
                last_checked = checked;
            }
            assert_eq!(reader.crc_checked(), reader.len(), "{kind}: every entry now judged");
            assert_eq!(
                crc_gauges(&reader),
                (reader.len() as u64, 1),
                "{kind}: final gauges — all judged, one bad"
            );
        });
    }
}

/// Truncation is structural, not a payload property: even lazy mode
/// rejects a cut container at open with a typed error — deferral never
/// lets a short buffer through to be discovered (or panicked over) at
/// fetch time.
#[test]
fn lazy_crc_still_rejects_truncation_at_open() {
    let clean = container_bytes();
    let index_bytes =
        u64::from_le_bytes(clean[INDEX_BYTES_AT..INDEX_BYTES_AT + 8].try_into().unwrap()) as usize;
    for cut in [clean.len() - 1, HEADER_BYTES + index_bytes + 1, HEADER_BYTES + 1] {
        for kind in common::selected_kinds() {
            common::with_source(kind, &clean[..cut], ReaderOptions::lazy_crc(), |r| {
                let err = r.expect_err("a truncated container must not open lazily either");
                assert!(
                    matches!(err, ContainerError::Truncated | ContainerError::IndexInvalid(_)),
                    "{kind} cut at {cut}: got {err:?}"
                );
            });
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any single payload bit flip under lazy validation: the open
    /// succeeds, exactly one gate fails its first touch with a CRC
    /// mismatch naming itself, repeat touches reproduce the identical
    /// error from the cached verdict, and every other gate still
    /// decodes — across every source kind.
    #[test]
    fn lazy_payload_flips_fail_typed_on_first_touch(
        pos in proptest::num::usize::ANY,
        bit in 0u32..8,
    ) {
        let mut bytes = container_bytes();
        let index_bytes =
            u64::from_le_bytes(bytes[INDEX_BYTES_AT..INDEX_BYTES_AT + 8].try_into().unwrap())
                as usize;
        let payload_base = HEADER_BYTES + index_bytes;
        let k = payload_base + pos % (bytes.len() - payload_base);
        bytes[k] ^= 1 << bit;

        for kind in common::selected_kinds() {
            common::with_source(kind, &bytes, ReaderOptions::lazy_crc(), |r| {
                let reader = r.expect("payload damage must not fail a lazy open");
                let mut scratch = ContainerScratch::new();
                let (mut i, mut q) = (Vec::new(), Vec::new());
                let mut failures = 0usize;
                let gates: Vec<_> = reader.gates().cloned().collect();
                for gate in &gates {
                    let first = reader.fetch_into(gate, &mut scratch, &mut i, &mut q);
                    let second = reader.fetch_into(gate, &mut scratch, &mut i, &mut q);
                    match (&first, &second) {
                        (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "{} {}: stable decode", kind, gate),
                        (Err(a), Err(b)) => {
                            prop_assert_eq!(a, b, "{} {}: stable cached verdict", kind, gate);
                            prop_assert_eq!(
                                a,
                                &ContainerError::CrcMismatch { gate: gate.clone() },
                                "{} {}: flip must surface as that gate's CRC mismatch",
                                kind,
                                gate
                            );
                            failures += 1;
                        }
                        _ => prop_assert!(false, "{} {}: verdict flipped between touches", kind, gate),
                    }
                }
                prop_assert_eq!(failures, 1, "{}: exactly the damaged gate fails", kind);
                prop_assert_eq!(reader.crc_checked(), reader.len());
                Ok(())
            })?;
        }
    }
}
