//! Shared helpers for the container integration suites: open the same
//! bytes through every [`ContainerSource`] kind, routed by the
//! `COMPAQT_SOURCE_KIND` env var so CI can run each suite once per
//! kind (owned | borrowed | mapped) while a plain `cargo test` covers
//! all three in one run.
#![allow(dead_code)] // each test binary uses a subset of these helpers

use compaqt::io::{ContainerError, ContainerSource, Reader, ReaderOptions};
use std::sync::atomic::{AtomicU64, Ordering};

/// Every source kind a [`Reader`] can open, by its
/// [`Reader::source_kind`] name.
pub const KINDS: [&str; 3] = ["owned", "borrowed", "mapped"];

/// The source kinds this run must cover: the one named by
/// `COMPAQT_SOURCE_KIND` if set (unknown names panic rather than
/// silently testing nothing), all three otherwise.
pub fn selected_kinds() -> Vec<&'static str> {
    match std::env::var("COMPAQT_SOURCE_KIND") {
        Ok(v) => {
            let kind = KINDS.iter().find(|k| **k == v).unwrap_or_else(|| {
                panic!("unknown COMPAQT_SOURCE_KIND {v:?} (want one of {KINDS:?})")
            });
            vec![*kind]
        }
        Err(_) => KINDS.to_vec(),
    }
}

/// Opens `bytes` as a reader backed by `kind` and hands the open result
/// to `f`. The mapped kind round-trips through a unique temp file,
/// removed before returning, so hostile-byte proptests can hammer it
/// without littering the filesystem.
pub fn with_source<R>(
    kind: &str,
    bytes: &[u8],
    options: ReaderOptions,
    f: impl FnOnce(Result<Reader<'_>, ContainerError>) -> R,
) -> R {
    match kind {
        "owned" => f(Reader::open(bytes::Bytes::copy_from_slice(bytes), options)),
        "borrowed" => f(Reader::open(bytes, options)),
        "mapped" => {
            static UNIQUE: AtomicU64 = AtomicU64::new(0);
            let path = std::env::temp_dir().join(format!(
                "compaqt-source-{}-{}.cwl",
                std::process::id(),
                UNIQUE.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::write(&path, bytes).expect("write temp container for mmap");
            let source = ContainerSource::map_path(&path).expect("map temp container");
            let out = f(Reader::open(source, options));
            let _ = std::fs::remove_file(&path);
            out
        }
        other => panic!("unknown source kind {other:?}"),
    }
}
