//! Hostile-wire robustness for `compaqt-serve`, mirroring
//! `container_hostile`: a server (or client-side frame parser) fed
//! attacker-controlled bytes must answer with a typed
//! [`ProtocolError`] / error frame and a clean close — never a panic,
//! never an allocation sized from a lying length field, and never a
//! dead server: after every attack the listener must still serve the
//! next well-formed client.
//!
//! The mangler attacks both layers:
//!
//! 1. **arbitrary garbage** through the pure frame validator and the
//!    full [`Responder`] (no sockets — this is the layer the
//!    `alloc_regression` suite also drives);
//! 2. **bit flips on a real request frame** over a real socket —
//!    magic, version, kind, length and CRC damage all land here;
//! 3. **truncation** — every prefix of a real frame, delivered with a
//!    write-side shutdown so the server sees EOF mid-frame;
//! 4. **length lies** — the header's `len` field rewritten to claim
//!    payloads the bytes cannot back, including multi-gigabyte claims
//!    that must be rejected *before* any buffer is sized from them;
//! 5. **payload lies** — well-framed, CRC-valid payloads whose inner
//!    structure is wrong (bad gate encodings, batch counts that lie).

use compaqt::core::compress::{Compressor, Variant};
use compaqt::core::store::{Store, StoreConfig};
use compaqt::io::serve::{serve, Client, Responder, ServeConfig};
use compaqt::io::wire::{
    begin_frame, encode_fetch_gate, end_frame, parse_frame, FrameKind, DEFAULT_MAX_FRAME_BYTES,
};
use compaqt::pulse::device::Device;
use compaqt::pulse::library::{GateId, GateKind};
use compaqt::pulse::vendor::Vendor;
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Arc;

fn test_store() -> Arc<Store> {
    let lib = Device::synthesize(Vendor::Ibm, 2, 0x5EED).pulse_library();
    let compressor = Compressor::new(Variant::IntDctW { ws: 16 });
    let config = StoreConfig { shards: 4, hot_capacity: lib.len(), ..StoreConfig::default() };
    Arc::new(Store::from_library_with(&lib, &compressor, config).unwrap())
}

/// A real, well-formed `FetchGate` request frame to mangle.
fn clean_request() -> Vec<u8> {
    let mut out = bytes::BytesMut::new();
    encode_fetch_gate(&mut out, &GateId::single(GateKind::X, 0)).unwrap();
    out.as_ref().to_vec()
}

/// Delivers raw bytes to the server, closes the write side so the
/// server never stalls waiting for more, and drains whatever the
/// server says until it closes. Returns the response bytes.
///
/// The invariant under test is liveness, not the response: the server
/// thread must survive to serve the next client.
fn deliver(addr: SocketAddr, bytes: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(std::time::Duration::from_secs(5))).unwrap();
    // The server may close mid-write on garbage; broken pipes are the
    // attack working, not a test failure.
    let _ = stream.write_all(bytes);
    let _ = stream.shutdown(Shutdown::Write);
    let mut response = Vec::new();
    let _ = stream.read_to_end(&mut response);
    response
}

/// After an attack, a well-formed client must still be served.
fn assert_still_serving(addr: SocketAddr) {
    let mut client = Client::connect(addr).unwrap();
    client.ping().unwrap();
    let (mut i, mut q) = (Vec::new(), Vec::new());
    client.fetch_into(&GateId::single(GateKind::X, 0), &mut i, &mut q).unwrap();
    assert!(!i.is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Arbitrary bytes never panic the pure frame validator, and a
    /// frame that happens to validate never panics the responder.
    #[test]
    fn arbitrary_garbage_never_panics_the_responder(
        garbage in proptest::collection::vec(proptest::num::u8::ANY, 0..256),
    ) {
        let store = test_store();
        let mut responder = Responder::new(&ServeConfig::default());
        let _ = parse_frame(&garbage, DEFAULT_MAX_FRAME_BYTES);
        let _ = responder.respond(&store, &garbage);
        // A responder that survived garbage must still answer cleanly.
        let clean = clean_request();
        prop_assert!(responder.respond(&store, &clean).is_ok());
    }

    /// A single bit flip anywhere in a real request either still
    /// parses (payload-adjacent flips caught by the CRC — so parsing
    /// implies the flip landed nowhere) or is a typed error; the
    /// responder never panics either way.
    #[test]
    fn bit_flips_never_panic(pos in proptest::num::usize::ANY, bit in 0u32..8) {
        let store = test_store();
        let mut responder = Responder::new(&ServeConfig::default());
        let mut frame = clean_request();
        let k = pos % frame.len();
        frame[k] ^= 1 << bit;
        let _ = responder.respond(&store, &frame);
        let clean = clean_request();
        prop_assert!(responder.respond(&store, &clean).is_ok());
    }

    /// Every truncation of a real frame is rejected as Truncated (or
    /// whatever typed error an earlier header check hits) — never
    /// accepted, never a panic.
    #[test]
    fn truncations_are_always_rejected(cut in proptest::num::usize::ANY) {
        let store = test_store();
        let mut responder = Responder::new(&ServeConfig::default());
        let frame = clean_request();
        let cut = cut % frame.len();
        prop_assert!(responder.respond(&store, &frame[..cut]).is_err());
    }

    /// A rewritten length field can never buy a response: too-large
    /// claims die at the header check, and any other lie breaks the
    /// CRC or the payload structure.
    #[test]
    fn length_lies_are_always_rejected(len in proptest::num::u32::ANY) {
        let store = test_store();
        let mut responder = Responder::new(&ServeConfig::default());
        let mut frame = clean_request();
        let truth = (frame.len() - 16) as u32;
        prop_assume!(len != truth);
        frame[8..12].copy_from_slice(&len.to_le_bytes());
        prop_assert!(responder.respond(&store, &frame).is_err());
    }
}

/// The socket-level mangler: every attack lands on a live server, and
/// after each one the server must serve a fresh well-formed client.
#[test]
fn mangled_frames_on_the_wire_never_kill_the_server() {
    let store = test_store();
    let handle = serve(store, "127.0.0.1:0").unwrap();
    let addr = handle.local_addr();
    let clean = clean_request();

    // Bit flips across the whole frame — header, payload and CRC.
    for k in 0..clean.len() {
        let mut frame = clean.clone();
        frame[k] ^= 0x10;
        deliver(addr, &frame);
    }
    // Every truncation, including the empty send (a clean EOF).
    for cut in 0..clean.len() {
        deliver(addr, &clean[..cut]);
    }
    // Length lies, including an oversized claim a trusting server
    // would turn into a multi-gigabyte buffer.
    for lie in [0u32, 1, u32::MAX, DEFAULT_MAX_FRAME_BYTES + 1, 1 << 30] {
        let mut frame = clean.clone();
        frame[8..12].copy_from_slice(&lie.to_le_bytes());
        deliver(addr, &frame);
    }
    // CRC corruption with intact structure.
    let mut frame = clean.clone();
    let last = frame.len() - 1;
    frame[last] ^= 0xFF;
    deliver(addr, &frame);
    // A response kind sent as a request.
    let mut out = bytes::BytesMut::new();
    begin_frame(&mut out, FrameKind::Pong);
    end_frame(&mut out);
    deliver(addr, &out);
    // Well-framed, CRC-valid, structurally rotten payload: a FetchGate
    // whose gate encoding is garbage.
    let mut out = bytes::BytesMut::new();
    begin_frame(&mut out, FrameKind::FetchGate);
    bytes::BufMut::put_slice(&mut out, &[0xEE, 0xEE, 0xEE]);
    end_frame(&mut out);
    deliver(addr, &out);

    assert_still_serving(addr);
    let stats = handle.stats();
    assert!(stats.protocol_errors > 0, "the attacks above must register as protocol errors");
    // Every attack was answered (or EOF'd) immediately — nothing sat
    // on a read deadline, and no slot was ever contended.
    assert_eq!(stats.timeouts, 0, "protocol rejections must not masquerade as timeouts");
    assert_eq!(stats.connections_rejected_busy, 0);
    handle.shutdown();
}

/// The deterministic oversized-claim check: a header claiming a
/// payload over the cap is rejected *before* any payload byte is read
/// or buffered — the error frame comes back immediately, with the
/// claimed gigabytes never sent.
#[test]
fn oversized_claims_are_rejected_before_buffering() {
    let store = test_store();
    let handle = serve(store, "127.0.0.1:0").unwrap();
    let addr = handle.local_addr();

    // Header only: magic, version, FetchGate, and a 1 GiB length claim.
    let mut header = Vec::new();
    header.extend_from_slice(&u32::from_le_bytes(*b"CWS\0").to_le_bytes());
    header.extend_from_slice(&1u16.to_le_bytes());
    header.extend_from_slice(&0x0002u16.to_le_bytes());
    header.extend_from_slice(&(1u32 << 30).to_le_bytes());

    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(std::time::Duration::from_secs(5))).unwrap();
    stream.write_all(&header).unwrap();
    // Do NOT shut down the write side: if the server (wrongly) waited
    // for the claimed payload, the read below would time out.
    let mut response = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => response.extend_from_slice(&chunk[..n]),
            Err(e) => panic!("expected an immediate error frame, got {e}"),
        }
    }
    let (kind, _) = parse_frame(&response, DEFAULT_MAX_FRAME_BYTES).unwrap();
    assert_eq!(kind, FrameKind::Error);

    assert_still_serving(addr);
    handle.shutdown();
}
