//! Hostile-bitstream robustness: truncated, length-lying and bit-flipped
//! streams must come back as errors (or clamped output) — never as a
//! panic, an arithmetic overflow, or an out-of-bounds access.
//!
//! The decompression engine models hardware that sits between untrusted
//! waveform memory and a DAC; the software model holds itself to the
//! same standard. Three layers are attacked here:
//!
//! 1. the raw [`RleDecoder`] over arbitrary 16-bit words (every `u16`
//!    unpacks to *some* codeword, so the byte-mangler explores the whole
//!    wire alphabet),
//! 2. [`DecompressionEngine::decompress`]/[`decompress_into`] over
//!    compressor-produced streams whose words were bit-flipped or
//!    truncated,
//! 3. stream *metadata* lies: wrong window counts, absurd `n_samples`
//!    claims (which must be rejected before any buffer is sized from
//!    them), hostile delta headers and delta chains that would overflow
//!    a naive accumulator.
//!
//! [`decompress_into`]: DecompressionEngine::decompress_into

use compaqt::core::compress::{ChannelData, CompressedWaveform, Compressor, Variant};
use compaqt::core::engine::{DecodeScratch, DecompressionEngine, EngineStats};
use compaqt::core::CompressError;
use compaqt::dsp::rle::{CodedWord, RleCodeword, RleDecoder, MAX_RUN};
use compaqt::pulse::shapes::{Drag, PulseShape};
use proptest::prelude::*;

/// Decodes a mangled waveform through both engine paths; both must agree
/// on panicking never and may only differ in nothing (they share the
/// arithmetic).
fn decode_both_paths(z: &CompressedWaveform) {
    let Ok(engine) = DecompressionEngine::for_variant(z.variant) else {
        return; // hostile variant header: rejected, done.
    };
    let alloc = engine.decompress(z);
    let mut scratch = DecodeScratch::new();
    let (mut i, mut q) = (Vec::new(), Vec::new());
    let reuse = engine.decompress_into(z, &mut scratch, &mut i, &mut q);
    match (&alloc, &reuse) {
        (Ok((wf, _)), Ok(_)) => {
            assert_eq!(wf.i(), &i[..], "paths must agree on accepted streams");
            assert_eq!(wf.q(), &q[..], "paths must agree on accepted streams");
            assert!(i.len() <= z.n_samples, "output clamped to the sample claim");
        }
        (Err(_), Err(_)) => {}
        _ => panic!("one path accepted what the other rejected: {alloc:?} vs {reuse:?}"),
    }
}

fn x_pulse_stream(variant: Variant) -> CompressedWaveform {
    let wf = Drag::new(136, 0.5, 34.0, 0.2).to_waveform("X(q0)", 4.54);
    Compressor::new(variant).compress(&wf).unwrap()
}

fn mangle_variants() -> [Variant; 5] {
    [
        Variant::IntDctW { ws: 16 },
        Variant::IntDctW { ws: 8 },
        Variant::DctW { ws: 16 },
        Variant::DctN,
        Variant::Delta,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_words_never_panic_the_rle_decoder(
        raw in proptest::collection::vec(proptest::num::u16::ANY, 0..48),
        window in 0usize..70,
    ) {
        // Every u16 unpacks to a valid codeword, so this sweeps the whole
        // wire alphabet, tag bits included.
        let words: Vec<CodedWord> = raw.iter().map(|&w| CodedWord::unpack(w)).collect();
        let dec = RleDecoder::new();
        let mut buf = vec![0i32; window];
        let into = dec.decode_window_into(&words, &mut buf);
        let alloc = dec.decode_window(&words, window);
        // The two entry points agree; success means an exact fill.
        prop_assert_eq!(into.is_ok(), alloc.is_ok());
        if let Ok(v) = alloc {
            prop_assert_eq!(v.len(), window);
            prop_assert_eq!(v, buf);
        }
        // The unbounded stream decoder is total over repeat-safe input.
        match dec.decode_stream(&words) {
            Ok(out) => prop_assert!(out.len() <= raw.len() * usize::from(MAX_RUN)),
            Err(e) => prop_assert_eq!(e, compaqt::dsp::rle::RleError::RepeatWithoutSample),
        }
    }

    #[test]
    fn bit_flipped_streams_never_panic(
        variant_idx in 0usize..5,
        w_idx in proptest::num::usize::ANY,
        word_idx in proptest::num::usize::ANY,
        bit in 0u32..16,
    ) {
        let mut z = x_pulse_stream(mangle_variants()[variant_idx]);
        for ch in [&mut z.i, &mut z.q] {
            match ch {
                ChannelData::Windows(windows) if !windows.is_empty() => {
                    let wi = w_idx % windows.len();
                    if !windows[wi].is_empty() {
                        let pi = word_idx % windows[wi].len();
                        let flipped = windows[wi][pi].pack() ^ (1 << bit);
                        windows[wi][pi] = CodedWord::unpack(flipped);
                    }
                }
                ChannelData::Delta { deltas, .. } if !deltas.is_empty() => {
                    let pi = word_idx % deltas.len();
                    deltas[pi] = (deltas[pi] as u16 ^ (1u16 << bit)) as i16;
                }
                ChannelData::Raw(samples) if !samples.is_empty() => {
                    let pi = word_idx % samples.len();
                    samples[pi] = (samples[pi] as u16 ^ (1u16 << bit)) as i16;
                }
                _ => {}
            }
        }
        decode_both_paths(&z);
    }

    #[test]
    fn truncated_streams_never_panic(
        variant_idx in 0usize..5,
        w_idx in proptest::num::usize::ANY,
        keep in proptest::num::usize::ANY,
    ) {
        let mut z = x_pulse_stream(mangle_variants()[variant_idx]);
        match &mut z.i {
            ChannelData::Windows(windows) if !windows.is_empty() => {
                // Truncate one window's words, then drop trailing windows.
                let wi = w_idx % windows.len();
                let len = windows[wi].len();
                windows[wi].truncate(keep % (len + 1));
                let n = windows.len();
                windows.truncate(1 + w_idx % n);
            }
            ChannelData::Delta { deltas, .. } => {
                let len = deltas.len();
                deltas.truncate(keep % (len + 1));
            }
            ChannelData::Raw(samples) => {
                let len = samples.len();
                samples.truncate(keep % (len + 1));
            }
            _ => {}
        }
        decode_both_paths(&z);
    }

    #[test]
    fn length_lying_streams_never_panic_or_overallocate(
        variant_idx in 0usize..5,
        lie in proptest::num::usize::ANY,
    ) {
        // n_samples is pure metadata; claims up to usize::MAX must be
        // rejected (or clamped) before any buffer is sized from them.
        let mut z = x_pulse_stream(mangle_variants()[variant_idx]);
        z.n_samples = lie;
        decode_both_paths(&z);
        let _ = z.ratio();
        let _ = z.words();
    }

    #[test]
    fn hostile_run_codewords_never_panic_the_engine(
        run in 0u16..=MAX_RUN,
        repeat in proptest::num::usize::ANY,
        coeff in proptest::num::i16::ANY,
    ) {
        // Hand-built window lists with adversarial run lengths and
        // repeat-previous codewords (which the windowed compressor never
        // emits, forcing the fused kernel's fallback).
        let window = vec![
            CodedWord::Coeff(((coeff as u16) & 0x7FFF) as i16),
            CodedWord::Rle(RleCodeword { run, repeat_previous: repeat % 2 == 1 }),
        ];
        let z = CompressedWaveform {
            name: "hostile".into(),
            variant: Variant::IntDctW { ws: 16 },
            n_samples: 16,
            sample_rate_gs: 4.54,
            i: ChannelData::Windows(vec![window.clone()]),
            q: ChannelData::Windows(vec![window]),
        };
        decode_both_paths(&z);
    }
}

#[test]
fn dct_n_stream_with_extra_windows_is_rejected() {
    let mut z = x_pulse_stream(Variant::DctN);
    if let ChannelData::Windows(windows) = &mut z.i {
        let dup = windows[0].clone();
        windows.push(dup);
    }
    let engine = DecompressionEngine::for_variant(Variant::DctN).unwrap();
    let mut stats = EngineStats::default();
    let err = engine.decode_channel(&z.i, z.n_samples, &mut stats).unwrap_err();
    assert!(matches!(err, CompressError::MalformedStream { .. }), "got {err:?}");
}

#[test]
fn dct_n_sample_claim_beyond_rle_expansion_is_rejected_before_allocation() {
    // A 1-word DCT-N stream claiming billions of samples must error out
    // without ever allocating the claimed buffer.
    let z = CompressedWaveform {
        name: "liar".into(),
        variant: Variant::DctN,
        n_samples: usize::MAX,
        sample_rate_gs: 4.54,
        i: ChannelData::Windows(vec![vec![CodedWord::Coeff(5)]]),
        q: ChannelData::Windows(vec![vec![CodedWord::Coeff(5)]]),
    };
    let engine = DecompressionEngine::for_variant(Variant::DctN).unwrap();
    let err = engine.decompress(&z).unwrap_err();
    assert!(matches!(err, CompressError::MalformedStream { .. }), "got {err:?}");
    let mut scratch = DecodeScratch::new();
    let (mut i, mut q) = (Vec::new(), Vec::new());
    let err = engine.decompress_into(&z, &mut scratch, &mut i, &mut q).unwrap_err();
    assert!(matches!(err, CompressError::MalformedStream { .. }), "got {err:?}");
}

#[test]
fn sibling_decode_paths_reject_hostile_streams_too() {
    // The hardening must not stop at the engine: batch, overlap and
    // adaptive decoders share the same pub attacker-controlled structs.
    use compaqt::core::adaptive::{AdaptiveCompressed, Segment};
    use compaqt::core::batch;
    use compaqt::core::overlap::{OverlapCompressed, OverlapCompressor};

    // Batch decode over a stream whose channels diverge (Raw decode
    // ignores n_samples) and whose rate is zero: error, not a panic.
    let shape_lie = CompressedWaveform {
        name: "lie".into(),
        variant: Variant::Delta,
        n_samples: 10,
        sample_rate_gs: 0.0,
        i: ChannelData::Raw(vec![0; 10]),
        q: ChannelData::Raw(vec![]),
    };
    assert!(matches!(
        batch::decompress_library(std::slice::from_ref(&shape_lie)),
        Err(CompressError::MalformedStream { .. })
    ));
    assert!(matches!(
        batch::decompress_library_par(std::slice::from_ref(&shape_lie)),
        Err(CompressError::MalformedStream { .. })
    ));

    // Overlap twin: hostile sample-count claims must not overflow the
    // accounting, and a bogus rate must not reach Waveform::new.
    let mut o = OverlapCompressed::empty();
    o.ws = 16;
    o.n_samples = usize::MAX;
    let _ = o.ratio();
    assert!(o.decompress().is_err());
    let wf = Drag::new(136, 0.5, 34.0, 0.2).to_waveform("X(q0)", 4.54);
    let mut good = OverlapCompressor::new(16).unwrap().compress(&wf).unwrap();
    good.sample_rate_gs = f64::NAN;
    assert!(matches!(good.decompress(), Err(CompressError::MalformedStream { .. })));

    // Adaptive twin: zero-length and absurd plateau claims are rejected
    // before any sample is produced from the metadata.
    for len in [0usize, usize::MAX] {
        let a = AdaptiveCompressed {
            name: "plateau".into(),
            n_samples: usize::MAX,
            sample_rate_gs: 4.54,
            variant: Variant::IntDctW { ws: 16 },
            segments: vec![Segment::Constant {
                i_value: compaqt::dsp::fixed::Q15::from_f64(0.5),
                q_value: compaqt::dsp::fixed::Q15::ZERO,
                len,
            }],
        };
        let _ = a.ratio();
        let _ = a.plateau_words();
        assert!(matches!(a.decompress(), Err(CompressError::MalformedStream { .. })), "len={len}");
        let engine = DecompressionEngine::for_variant(a.variant).unwrap();
        let mut scratch = DecodeScratch::new();
        let (mut i, mut q) = (Vec::new(), Vec::new());
        assert!(
            matches!(
                a.decompress_with(&engine, &mut scratch, &mut i, &mut q),
                Err(CompressError::MalformedStream { .. })
            ),
            "len={len}"
        );
    }
}

#[test]
fn saturating_delta_chains_decode_without_overflow() {
    // 100k max-magnitude deltas would overflow an i32 accumulator by
    // ~50x; the wrapping i16 accumulator (matching the DAC register the
    // hardware would wrap in) must survive and stay in range.
    let z = CompressedWaveform {
        name: "walker".into(),
        variant: Variant::Delta,
        n_samples: 100_001,
        sample_rate_gs: 4.54,
        i: ChannelData::Delta { base: 0, bits: 16, deltas: vec![i16::MAX; 100_000] },
        q: ChannelData::Delta { base: 0, bits: u32::MAX, deltas: vec![i16::MIN; 100_000] },
    };
    let engine = DecompressionEngine::for_variant(Variant::Delta).unwrap();
    let (wf, _) = engine.decompress(&z).unwrap();
    assert!(wf.i().iter().chain(wf.q()).all(|v| (-1.0..1.0).contains(v)));
    let _ = z.ratio(); // saturating size accounting on the absurd header
}
