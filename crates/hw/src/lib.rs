//! # compaqt-hw
//!
//! Hardware models for the COMPAQT reproduction (Maurya & Tannu, MICRO
//! 2022): the RFSoC qubit-capacity model (Table V, Figures 5d/17), the
//! FPGA resource and timing models (Tables IV/VIII, Figure 16), and the
//! cryogenic-ASIC power model (Figures 18/19).
//!
//! The paper derives these numbers from Vivado synthesis and the
//! Destiny/CACTI memory models; neither toolchain exists here, so each is
//! replaced by a first-order analytical model *calibrated to the paper's
//! reported design points* and exercised by the same sweeps. See
//! DESIGN.md for the substitution rationale.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod power;
pub mod resources;
pub mod rfsoc;
pub mod sfq;
pub mod timing;

pub use power::{CryoPowerModel, PowerBreakdown};
pub use rfsoc::RfsocModel;
