//! # compaqt-hw
//!
//! Hardware models for the COMPAQT reproduction (Maurya & Tannu, MICRO
//! 2022): the RFSoC qubit-capacity model (Table V, Figures 5d/17), the
//! FPGA resource and timing models (Tables IV/VIII, Figure 16), and the
//! cryogenic-ASIC power model (Figures 18/19).
//!
//! The paper derives these numbers from Vivado synthesis and the
//! Destiny/CACTI memory models; neither toolchain exists here, so each is
//! replaced by a first-order analytical model *calibrated to the paper's
//! reported design points* and exercised by the same sweeps. See
//! DESIGN.md for the substitution rationale.
//!
//! # Role in the COMPAQT pipeline
//!
//! This crate answers "what does the decompression engine cost, and what
//! does the saved bandwidth buy?". It consumes the codec's outputs —
//! compression ratios, worst-case window words, engine operation counts
//! from `compaqt-core` — and produces the system-level numbers: qubits
//! per RFSoC ([`rfsoc`]), LUT/FF/BRAM budgets and clock closure
//! ([`resources`], [`timing`]), and the cryogenic power budget
//! ([`power`], including the adaptive-bypass savings of Figure 19).
//! Models are pure functions of their parameter structs: no global
//! state, so sweeps parallelize trivially.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod power;
pub mod resources;
pub mod rfsoc;
pub mod sfq;
pub mod timing;

pub use power::{CryoPowerModel, PowerBreakdown};
pub use rfsoc::RfsocModel;
