//! FPGA resource estimation (Table VIII).
//!
//! Substitutes Vivado synthesis with a first-order LUT/FF model over the
//! engine's operator counts, calibrated to the paper's synthesized
//! design points on the Xilinx ZU7EV.

use compaqt_dsp::csd::EngineResources;
use serde::{Deserialize, Serialize};

/// Total LUTs on the Xilinx ZU7EV used for the paper's evaluation.
pub const ZU7EV_LUTS: usize = 230_400;
/// Total flip-flops on the Xilinx ZU7EV.
pub const ZU7EV_FFS: usize = 460_800;

/// Datapath width of the decompression engine in bits.
pub const DATAPATH_BITS: usize = 16;

/// LUT/FF usage of one design block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FpgaUsage {
    /// Look-up tables.
    pub luts: usize,
    /// Flip-flops.
    pub ffs: usize,
}

impl FpgaUsage {
    /// LUT utilization as a percentage of the ZU7EV.
    pub fn lut_percent(&self) -> f64 {
        100.0 * self.luts as f64 / ZU7EV_LUTS as f64
    }

    /// FF utilization as a percentage of the ZU7EV.
    pub fn ff_percent(&self) -> f64 {
        100.0 * self.ffs as f64 / ZU7EV_FFS as f64
    }
}

/// The QICK baseline controller (one qubit, including AXI plumbing) as
/// synthesized in the paper.
pub fn baseline_qick() -> FpgaUsage {
    FpgaUsage { luts: 3386, ffs: 6448 }
}

/// Table VIII's synthesized IDCT engine numbers.
///
/// # Panics
///
/// Panics for window sizes the paper did not synthesize (8/16/32).
pub fn int_dct_paper(ws: usize) -> FpgaUsage {
    match ws {
        8 => FpgaUsage { luts: 601, ffs: 266 },
        16 => FpgaUsage { luts: 1954, ffs: 671 },
        32 => FpgaUsage { luts: 9063, ffs: 1197 },
        _ => panic!("Table VIII covers WS=8/16/32, got {ws}"),
    }
}

/// First-order LUT/FF estimate from operator counts: an n-bit
/// adder/subtractor costs ~n LUTs (carry chains pack 1 bit/LUT), constant
/// shifters are wiring, and the window buffer plus output registers
/// dominate FFs. The 0.7 LUT packing factor is calibrated against the
/// WS=8 design point.
pub fn estimate(res: &EngineResources, ws: usize) -> FpgaUsage {
    let adder_luts = (res.adders as f64 * DATAPATH_BITS as f64 * 0.7) as usize;
    // A hardware multiplier in fabric costs ~n^2/2 LUTs.
    let mult_luts = res.multipliers * DATAPATH_BITS * DATAPATH_BITS / 2;
    // Input + output window registers plus a modest control overhead.
    let ffs = 2 * ws * DATAPATH_BITS + res.adders / 2;
    FpgaUsage { luts: adder_luts + mult_luts, ffs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compaqt_dsp::csd::engine_resources;

    #[test]
    fn paper_utilization_percentages_match_table_viii() {
        // Table VIII quotes 1.4% LUT for the baseline and 0.26%/0.85%/3.93%
        // for WS=8/16/32.
        assert!((baseline_qick().lut_percent() - 1.4).abs() < 0.1);
        assert!((int_dct_paper(8).lut_percent() - 0.26).abs() < 0.02);
        assert!((int_dct_paper(16).lut_percent() - 0.85).abs() < 0.02);
        assert!((int_dct_paper(32).lut_percent() - 3.93).abs() < 0.02);
    }

    #[test]
    fn estimates_land_within_2x_of_synthesis() {
        for ws in [8, 16] {
            let est = estimate(&engine_resources(ws, false), ws);
            let paper = int_dct_paper(ws);
            let rel = est.luts as f64 / paper.luts as f64;
            assert!((0.5..2.5).contains(&rel), "ws={ws}: est {} vs paper {}", est.luts, paper.luts);
        }
    }

    #[test]
    fn ws32_is_disproportionately_expensive() {
        // The paper's conclusion: WS=32 is a sub-optimal design point
        // (>4x the LUTs of WS=16).
        let r16 = int_dct_paper(16);
        let r32 = int_dct_paper(32);
        assert!(r32.luts as f64 / r16.luts as f64 > 4.0);
    }

    #[test]
    fn engine_is_small_next_to_baseline() {
        // WS=8/16 engines use fewer LUTs than the one-qubit baseline
        // itself — the compression trade is cheap.
        assert!(int_dct_paper(8).luts < baseline_qick().luts);
        assert!(int_dct_paper(16).luts < baseline_qick().luts);
    }

    #[test]
    fn estimate_scales_with_window() {
        let e8 = estimate(&engine_resources(8, false), 8);
        let e16 = estimate(&engine_resources(16, false), 16);
        assert!(e16.luts > e8.luts);
        assert!(e16.ffs > e8.ffs);
    }
}
