//! Clock-frequency degradation model (Figure 16).
//!
//! Inserting the decompression engine into the waveform path lengthens
//! the critical path. The multiplier-based `DCT-W` engine costs ~33% of
//! the baseline frequency even pipelined; the shift-add `int-DCT-W`
//! engines cost 8-17% unpipelined (and can be pipelined to zero cost,
//! Section VII-C).

use compaqt_core::compress::Variant;
use serde::{Deserialize, Serialize};

/// Structural delay model in nanoseconds (40nm-class FPGA fabric,
/// calibrated to the paper's 294 MHz QICK baseline).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingModel {
    /// Baseline critical path (1 / 294 MHz).
    pub base_path_ns: f64,
    /// Delay of one carry-chain adder level.
    pub adder_level_ns: f64,
    /// Delay of a 16-bit fabric multiplier.
    pub multiplier_ns: f64,
}

impl Default for TimingModel {
    fn default() -> Self {
        TimingModel { base_path_ns: 3.4, adder_level_ns: 0.105, multiplier_ns: 1.7 }
    }
}

/// A decompression-engine design point for timing analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineDesign {
    /// Which transform the engine implements.
    pub variant: Variant,
    /// Whether the engine is pipelined (registers between stages).
    pub pipelined: bool,
}

impl TimingModel {
    /// Baseline fabric frequency in MHz.
    pub fn baseline_mhz(&self) -> f64 {
        1000.0 / self.base_path_ns
    }

    /// Extra combinational delay the engine inserts into the clock path.
    pub fn engine_delay_ns(&self, design: &EngineDesign) -> f64 {
        let ws = design.variant.window_size().unwrap_or(8);
        // Adder-tree depth of an N-point partial butterfly: one CSD
        // shift-add chain (~2 levels) plus the accumulation tree.
        let tree_levels = 2 + (ws as f64 / 2.0).log2().ceil() as usize;
        match design.variant {
            Variant::DctW { .. } => {
                // One multiplier plus the accumulation tree dominates.
                let full = self.multiplier_ns + tree_levels as f64 * self.adder_level_ns;
                if design.pipelined {
                    // Pipelining splits it, but the multiplier stage still
                    // limits the clock.
                    self.multiplier_ns
                } else {
                    full
                }
            }
            Variant::IntDctW { .. } => {
                let full = tree_levels as f64 * self.adder_level_ns;
                if design.pipelined {
                    0.0
                } else {
                    full
                }
            }
            _ => 0.0,
        }
    }

    /// Maximum clock frequency with the engine inserted, in MHz.
    pub fn max_frequency_mhz(&self, design: &EngineDesign) -> f64 {
        1000.0 / (self.base_path_ns + self.engine_delay_ns(design))
    }

    /// Frequency normalized to the baseline (the Figure 16 bars).
    pub fn normalized_frequency(&self, design: &EngineDesign) -> f64 {
        self.max_frequency_mhz(design) / self.baseline_mhz()
    }
}

/// The paper's Figure 16 normalized frequencies.
pub fn figure_16_paper(variant: Variant, pipelined: bool) -> f64 {
    match (variant, pipelined) {
        (Variant::DctW { ws: 8 }, true) => 0.67,
        (Variant::IntDctW { ws: 8 }, false) => 0.92,
        (Variant::IntDctW { ws: 16 }, false) => 0.90,
        (Variant::IntDctW { ws: 32 }, false) => 0.83,
        _ => 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_design(ws: usize) -> EngineDesign {
        EngineDesign { variant: Variant::IntDctW { ws }, pipelined: false }
    }

    #[test]
    fn baseline_is_294_mhz() {
        let m = TimingModel::default();
        assert!((m.baseline_mhz() - 294.0).abs() < 1.0);
    }

    #[test]
    fn int_dct_degradation_is_at_most_17_percent() {
        // Section VII-C: "worst-case degradation of 10%" for WS=8/16;
        // WS=32 drops to 0.83.
        let m = TimingModel::default();
        for ws in [8, 16] {
            let nf = m.normalized_frequency(&int_design(ws));
            assert!((0.85..1.0).contains(&nf), "ws={ws}: {nf}");
        }
        let nf32 = m.normalized_frequency(&int_design(32));
        assert!((0.78..0.92).contains(&nf32), "ws=32: {nf32}");
    }

    #[test]
    fn dct_w_multiplier_is_much_worse() {
        let m = TimingModel::default();
        let dct_w = m.normalized_frequency(&EngineDesign {
            variant: Variant::DctW { ws: 8 },
            pipelined: true,
        });
        // Figure 16: 0.67 for the pipelined DCT-W engine.
        assert!((0.6..0.75).contains(&dct_w), "got {dct_w}");
        assert!(dct_w < m.normalized_frequency(&int_design(8)));
    }

    #[test]
    fn pipelined_int_engine_has_no_degradation() {
        let m = TimingModel::default();
        let nf = m.normalized_frequency(&EngineDesign {
            variant: Variant::IntDctW { ws: 16 },
            pipelined: true,
        });
        assert!((nf - 1.0).abs() < 1e-12);
    }

    #[test]
    fn model_tracks_paper_within_8_percent() {
        let m = TimingModel::default();
        let cases = [
            (int_design(8), figure_16_paper(Variant::IntDctW { ws: 8 }, false)),
            (int_design(16), figure_16_paper(Variant::IntDctW { ws: 16 }, false)),
            (int_design(32), figure_16_paper(Variant::IntDctW { ws: 32 }, false)),
            (
                EngineDesign { variant: Variant::DctW { ws: 8 }, pipelined: true },
                figure_16_paper(Variant::DctW { ws: 8 }, true),
            ),
        ];
        for (design, paper) in cases {
            let ours = m.normalized_frequency(&design);
            assert!(
                (ours - paper).abs() / paper < 0.08,
                "{design:?}: ours {ours} vs paper {paper}"
            );
        }
    }

    #[test]
    fn larger_windows_are_slower() {
        let m = TimingModel::default();
        assert!(m.max_frequency_mhz(&int_design(32)) < m.max_frequency_mhz(&int_design(8)));
    }
}
