//! SFQ controller memory study (Section IX / Discussion).
//!
//! Single-flux-quantum control chips (e.g. DigiQ) run at 4 K with on-chip
//! memory limited to tens of kilobytes — far below even one qubit's 18 KB
//! waveform library at IBM-class sample rates. The paper's closing
//! insight: compressed waveform storage is what makes waveform-table
//! control plausible in that regime. This module quantifies it.

use serde::{Deserialize, Serialize};

/// An SFQ control chip's waveform-memory budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SfqController {
    /// On-chip memory available for waveform storage, in KB.
    pub memory_kb: f64,
    /// Fraction of that memory usable by the waveform table (the rest
    /// holds instruction sequences).
    pub waveform_fraction: f64,
}

impl Default for SfqController {
    fn default() -> Self {
        // "tens of kilobytes": a 64 KB chip with half for waveforms.
        SfqController { memory_kb: 64.0, waveform_fraction: 0.5 }
    }
}

impl SfqController {
    /// Waveform-table bytes available.
    pub fn waveform_bytes(&self) -> f64 {
        self.memory_kb * 1024.0 * self.waveform_fraction
    }

    /// Qubits whose libraries fit, given a per-qubit library size and a
    /// compression ratio (1.0 = uncompressed).
    pub fn qubits_supported(&self, library_bytes_per_qubit: f64, compression_ratio: f64) -> usize {
        assert!(compression_ratio >= 1.0, "ratio below 1 would be expansion");
        (self.waveform_bytes() * compression_ratio / library_bytes_per_qubit).floor() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const IBM_LIBRARY_BYTES: f64 = 18.0 * 1024.0;

    #[test]
    fn uncompressed_sfq_barely_fits_one_qubit() {
        let chip = SfqController::default();
        assert_eq!(chip.qubits_supported(IBM_LIBRARY_BYTES, 1.0), 1);
    }

    #[test]
    fn compression_makes_sfq_control_plausible() {
        // Table VII average ratio ~6.5 turns 1 qubit into 11.
        let chip = SfqController::default();
        let n = chip.qubits_supported(IBM_LIBRARY_BYTES, 6.5);
        assert!(n >= 10, "got {n}");
    }

    #[test]
    fn qubits_scale_linearly_with_ratio() {
        let chip = SfqController::default();
        let base = chip.qubits_supported(IBM_LIBRARY_BYTES, 1.0);
        let comp = chip.qubits_supported(IBM_LIBRARY_BYTES, 5.0);
        assert!(comp >= 5 * base);
    }

    #[test]
    #[should_panic(expected = "expansion")]
    fn sub_unity_ratio_rejected() {
        SfqController::default().qubits_supported(IBM_LIBRARY_BYTES, 0.5);
    }
}
