//! Cryogenic ASIC power model (Section VII-D, Figures 18 and 19).
//!
//! Substitutes Destiny/CACTI + Synopsys DC with an analytical model:
//! SRAM dynamic energy per access grows with the square root of capacity
//! (wordline/bitline scaling) over a fixed periphery floor, leakage grows
//! linearly with capacity, and engine power follows its operator counts.
//! Calibrated so the uncompressed one-qubit controller dissipates the
//! paper's ~14 mW of memory power next to a 2 mW DAC.

use compaqt_dsp::csd::EngineResources;
use serde::{Deserialize, Serialize};

/// Reference capacity: the 18 KB per-qubit library of Table I.
pub const REFERENCE_CAPACITY_BYTES: f64 = 18.0 * 1024.0;

/// The cryogenic controller power model (one qubit's control slice).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CryoPowerModel {
    /// DAC power in mW (the paper adds 2 mW as a reference).
    pub dac_mw: f64,
    /// Capacity-independent memory periphery power (clocking, address
    /// generation, sense-amp bias) in mW while the memory is active.
    pub periphery_mw: f64,
    /// SRAM periphery energy floor per 16-bit access, in pJ.
    pub sram_floor_pj: f64,
    /// SRAM array energy per access at the reference capacity, in pJ.
    pub sram_array_pj: f64,
    /// SRAM leakage in mW per KB.
    pub leakage_mw_per_kb: f64,
    /// Energy per 16-bit adder operation, in pJ (40nm class).
    pub adder_pj: f64,
    /// Energy per shifter operation (wiring + mux), in pJ.
    pub shifter_pj: f64,
    /// Energy per 16-bit multiplier operation, in pJ.
    pub multiplier_pj: f64,
    /// DAC sample rate in GS/s (word rate per channel).
    pub sample_rate_gs: f64,
    /// Channels per qubit.
    pub channels: usize,
}

impl Default for CryoPowerModel {
    fn default() -> Self {
        CryoPowerModel {
            dac_mw: 2.0,
            periphery_mw: 2.2,
            sram_floor_pj: 0.40,
            sram_array_pj: 0.85,
            leakage_mw_per_kb: 0.035,
            adder_pj: 0.010,
            shifter_pj: 0.001,
            multiplier_pj: 0.15,
            sample_rate_gs: 4.54,
            channels: 2,
        }
    }
}

/// A power breakdown for one controller design (one Figure 18/19 bar).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// DAC power in mW.
    pub dac_mw: f64,
    /// Waveform-memory power in mW.
    pub memory_mw: f64,
    /// IDCT engine power in mW.
    pub idct_mw: f64,
}

impl PowerBreakdown {
    /// Total power.
    pub fn total_mw(&self) -> f64 {
        self.dac_mw + self.memory_mw + self.idct_mw
    }
}

/// A controller design point for the power sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CryoDesign {
    /// Uncompressed waveform memory at the reference capacity.
    Uncompressed,
    /// COMPAQT with a windowed integer DCT.
    Compressed {
        /// Window size.
        ws: usize,
        /// Average stored words per window (from compression stats; the
        /// ASIC fetches sequentially so the average, not the worst case,
        /// sets the access rate — Section VII-D).
        avg_words_per_window: f64,
        /// Capacity compression ratio of the library.
        capacity_ratio: f64,
    },
    /// COMPAQT with adaptive (IDCT-bypass) decompression of flat-tops.
    Adaptive {
        /// Window size.
        ws: usize,
        /// Average stored words per window in the DCT-coded ramps.
        avg_words_per_window: f64,
        /// Capacity compression ratio.
        capacity_ratio: f64,
        /// Fraction of output samples produced by the bypass path.
        bypass_fraction: f64,
    },
}

impl CryoPowerModel {
    /// Dynamic SRAM energy per 16-bit access for a given capacity.
    pub fn sram_access_pj(&self, capacity_bytes: f64) -> f64 {
        self.sram_floor_pj + self.sram_array_pj * (capacity_bytes / REFERENCE_CAPACITY_BYTES).sqrt()
    }

    /// Memory power for a given capacity and access rate (16-bit words
    /// per second, in GHz). `active_fraction` scales the dynamic and
    /// periphery components for duty-cycled memories (the adaptive
    /// bypass idles both; leakage never sleeps).
    pub fn memory_power_mw(
        &self,
        capacity_bytes: f64,
        access_rate_ghz: f64,
        active_fraction: f64,
    ) -> f64 {
        let dynamic = access_rate_ghz * self.sram_access_pj(capacity_bytes);
        let leakage = self.leakage_mw_per_kb * capacity_bytes / 1024.0;
        (dynamic + self.periphery_mw) * active_fraction.clamp(0.0, 1.0) + leakage
    }

    /// IDCT engine power at a given window rate (window evaluations per
    /// second, in GHz).
    pub fn idct_power_mw(&self, res: &EngineResources, window_rate_ghz: f64) -> f64 {
        let per_window = res.adders as f64 * self.adder_pj
            + res.shifters as f64 * self.shifter_pj
            + res.multipliers as f64 * self.multiplier_pj;
        window_rate_ghz * per_window
    }

    /// Full breakdown for a design point (one bar of Figures 18/19).
    pub fn breakdown(&self, design: &CryoDesign) -> PowerBreakdown {
        let word_rate_ghz = self.sample_rate_gs * self.channels as f64;
        match *design {
            CryoDesign::Uncompressed => PowerBreakdown {
                dac_mw: self.dac_mw,
                memory_mw: self.memory_power_mw(REFERENCE_CAPACITY_BYTES, word_rate_ghz, 1.0),
                idct_mw: 0.0,
            },
            CryoDesign::Compressed { ws, avg_words_per_window, capacity_ratio } => {
                let capacity = REFERENCE_CAPACITY_BYTES / capacity_ratio.max(1.0);
                let access_rate = word_rate_ghz * avg_words_per_window / ws as f64;
                let window_rate = word_rate_ghz / ws as f64;
                PowerBreakdown {
                    dac_mw: self.dac_mw,
                    memory_mw: self.memory_power_mw(capacity, access_rate, 1.0),
                    idct_mw: self.idct_power_mw(&EngineResources::int_dct_w(ws), window_rate),
                }
            }
            CryoDesign::Adaptive { ws, avg_words_per_window, capacity_ratio, bypass_fraction } => {
                let active = 1.0 - bypass_fraction;
                let capacity = REFERENCE_CAPACITY_BYTES / capacity_ratio.max(1.0);
                let access_rate = word_rate_ghz * avg_words_per_window / ws as f64;
                let window_rate = word_rate_ghz / ws as f64 * active;
                PowerBreakdown {
                    dac_mw: self.dac_mw,
                    memory_mw: self.memory_power_mw(capacity, access_rate, active),
                    idct_mw: self.idct_power_mw(&EngineResources::int_dct_w(ws), window_rate),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compressed(ws: usize) -> CryoDesign {
        // Typical library stats: ~2.3 stored words per window, ~6x capacity.
        CryoDesign::Compressed { ws, avg_words_per_window: 2.3, capacity_ratio: 6.0 }
    }

    #[test]
    fn uncompressed_memory_dominates() {
        // Figure 18: memory is ~14 mW next to the 2 mW DAC.
        let m = CryoPowerModel::default();
        let b = m.breakdown(&CryoDesign::Uncompressed);
        assert!((10.0..18.0).contains(&b.memory_mw), "got {}", b.memory_mw);
        assert_eq!(b.dac_mw, 2.0);
        assert_eq!(b.idct_mw, 0.0);
    }

    #[test]
    fn compression_reduces_memory_power_at_least_2_5x() {
        let m = CryoPowerModel::default();
        let base = m.breakdown(&CryoDesign::Uncompressed);
        for ws in [8, 16] {
            let comp = m.breakdown(&compressed(ws));
            let reduction = base.memory_mw / comp.memory_mw;
            assert!(reduction > 2.5, "ws={ws}: memory reduction {reduction}");
        }
    }

    #[test]
    fn idct_overhead_does_not_eat_the_savings() {
        // "the overhead of using the IDCT engine does not overshadow the
        // decrease in memory power".
        let m = CryoPowerModel::default();
        let base = m.breakdown(&CryoDesign::Uncompressed);
        let comp = m.breakdown(&compressed(16));
        assert!(comp.idct_mw < base.memory_mw / 4.0);
        assert!(comp.total_mw() < base.total_mw() / 1.8, "total {}", comp.total_mw());
    }

    #[test]
    fn adaptive_gives_further_savings() {
        // Figure 19: a 100ns flat-top with ~80% plateau bypass yields ~4x
        // total reduction.
        let m = CryoPowerModel::default();
        let base = m.breakdown(&CryoDesign::Uncompressed);
        let adaptive = m.breakdown(&CryoDesign::Adaptive {
            ws: 8,
            avg_words_per_window: 2.3,
            capacity_ratio: 6.0,
            bypass_fraction: 0.8,
        });
        let plain = m.breakdown(&compressed(8));
        assert!(adaptive.total_mw() < plain.total_mw());
        let reduction = base.total_mw() / adaptive.total_mw();
        assert!(reduction > 3.0, "got {reduction}");
    }

    #[test]
    fn access_energy_grows_with_capacity() {
        let m = CryoPowerModel::default();
        assert!(m.sram_access_pj(32.0 * 1024.0) > m.sram_access_pj(2.0 * 1024.0));
    }

    #[test]
    fn larger_windows_need_fewer_accesses() {
        let m = CryoPowerModel::default();
        let p8 = m.breakdown(&compressed(8));
        let p16 = m.breakdown(&compressed(16));
        assert!(p16.memory_mw < p8.memory_mw);
    }

    #[test]
    fn bypass_scales_memory_power_down() {
        let m = CryoPowerModel::default();
        let no_bypass = m.breakdown(&CryoDesign::Adaptive {
            ws: 8,
            avg_words_per_window: 2.3,
            capacity_ratio: 6.0,
            bypass_fraction: 0.0,
        });
        let plain = m.breakdown(&compressed(8));
        assert!((no_bypass.memory_mw - plain.memory_mw).abs() < 1e-12);
    }
}
