//! RFSoC qubit-capacity model (Section V-C, Table V, Figures 5d and 17b).
//!
//! FPGA BRAMs are the scarce resource: driving one qubit channel at the
//! DAC rate needs `clock_ratio` BRAM banks uncompressed (the fabric is
//! 16x slower than the DACs on QICK). Compression shrinks the words per
//! window to a small worst case, cutting banks per channel and
//! multiplying the number of qubits one board can drive.

use compaqt_core::memory::banks_per_channel;
use compaqt_pulse::memory_model;
use compaqt_pulse::vendor::VendorParams;
use serde::{Deserialize, Serialize};

/// An RFSoC platform description (defaults model QICK on a Xilinx
/// UltraScale+ RFSoC).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RfsocModel {
    /// Total BRAM blocks on the device.
    pub bram_count: usize,
    /// BRAMs consumed by non-waveform system logic (AXI, sequencer...).
    pub system_brams: usize,
    /// DAC-to-fabric clock ratio (16 on QICK).
    pub clock_ratio: usize,
    /// Channels per qubit (I and Q).
    pub channels_per_qubit: usize,
    /// Baseline fabric clock in MHz.
    pub fabric_clock_mhz: f64,
}

impl Default for RfsocModel {
    fn default() -> Self {
        RfsocModel {
            bram_count: 1260,
            system_brams: 108,
            clock_ratio: 16,
            channels_per_qubit: 2,
            fabric_clock_mhz: 294.0,
        }
    }
}

impl RfsocModel {
    /// BRAM banks needed per qubit for a memory storing `words_per_window`
    /// words per `ws`-sample window (uncompressed: `words == ws`).
    pub fn banks_per_qubit(&self, words_per_window: usize, ws: usize) -> usize {
        self.channels_per_qubit * banks_per_channel(self.clock_ratio, words_per_window, ws)
    }

    /// Number of qubits the board can drive concurrently at full DAC rate.
    pub fn qubits_supported(&self, words_per_window: usize, ws: usize) -> usize {
        let available = self.bram_count.saturating_sub(self.system_brams);
        available / self.banks_per_qubit(words_per_window, ws).max(1)
    }

    /// Qubits supported with uncompressed waveform memory (the QICK
    /// baseline: ~36 on the reference device).
    pub fn qubits_uncompressed(&self) -> usize {
        self.qubits_supported(16, 16)
    }

    /// Qubit-count gain over the uncompressed baseline for a compressed
    /// design (Table V: 2.66x for WS=8, 5.33x for WS=16 at the Figure 11
    /// worst case of 3 words/window).
    pub fn gain(&self, words_per_window: usize, ws: usize) -> f64 {
        self.qubits_supported(words_per_window, ws) as f64
            / self.qubits_uncompressed().max(1) as f64
    }

    /// Figure 5d: maximum qubits if only *capacity* constrained.
    pub fn qubits_by_capacity(&self, params: &VendorParams) -> usize {
        memory_model::rfsoc_qubits_by_capacity(params)
    }

    /// Figure 5d: maximum qubits if *bandwidth* constrained (the binding
    /// constraint; < 40 on the reference RFSoC).
    pub fn qubits_by_bandwidth(&self) -> usize {
        memory_model::rfsoc_qubits_by_bandwidth()
    }

    /// Figure 17b: logical qubits supported, given the physical qubits of
    /// one code patch.
    pub fn logical_qubits(&self, words_per_window: usize, ws: usize, patch_qubits: usize) -> usize {
        self.qubits_supported(words_per_window, ws) / patch_qubits.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compaqt_pulse::vendor::Vendor;

    #[test]
    fn baseline_matches_qick_36_qubits() {
        let m = RfsocModel::default();
        assert_eq!(m.qubits_uncompressed(), 36);
    }

    #[test]
    fn compressed_counts_match_section_v() {
        // "Using COMPAQT with WS=8, number of qubits can be increased to
        // about 95 qubits, and for WS=16, we can drive 191 qubits".
        let m = RfsocModel::default();
        let q8 = m.qubits_supported(3, 8);
        let q16 = m.qubits_supported(3, 16);
        assert!((90..=100).contains(&q8), "WS=8 got {q8}");
        assert!((185..=200).contains(&q16), "WS=16 got {q16}");
    }

    #[test]
    fn gains_match_table_v() {
        let m = RfsocModel::default();
        assert!((m.gain(3, 8) - 2.66).abs() < 0.1, "got {}", m.gain(3, 8));
        assert!((m.gain(3, 16) - 5.33).abs() < 0.1, "got {}", m.gain(3, 16));
    }

    #[test]
    fn non_multiple_ratio_gains_less() {
        // Section V-C's example: ratio 6 with WS=8 gives only 2x.
        let m = RfsocModel { clock_ratio: 6, ..RfsocModel::default() };
        let gain = m.gain(3, 8);
        assert!((1.8..=2.2).contains(&gain), "got {gain}");
    }

    #[test]
    fn figure_5d_shapes() {
        let m = RfsocModel::default();
        let by_cap = m.qubits_by_capacity(&Vendor::Ibm.params());
        let by_bw = m.qubits_by_bandwidth();
        assert!(by_cap > 200, "capacity allows >200, got {by_cap}");
        assert!(by_bw < 40, "bandwidth limits to <40, got {by_bw}");
        // The "5x drop" headline.
        let drop = by_cap as f64 / by_bw as f64;
        assert!(drop > 4.0, "got {drop}");
    }

    #[test]
    fn logical_qubit_scaling_matches_figure_17b() {
        let m = RfsocModel::default();
        // distance-3 rotated patches (17 qubits each).
        let base = m.logical_qubits(16, 16, 17);
        let ws16 = m.logical_qubits(3, 16, 17);
        assert_eq!(base, 2);
        assert!(ws16 >= 10, "got {ws16}");
        // "COMPAQT can control 5x more logical qubits".
        assert!(ws16 / base.max(1) >= 5);
    }

    #[test]
    fn system_brams_reduce_capacity() {
        let lean = RfsocModel { system_brams: 0, ..RfsocModel::default() };
        assert!(lean.qubits_uncompressed() > RfsocModel::default().qubits_uncompressed());
    }
}
