//! Property tests of the hardware models: monotonicity and conservation
//! laws the analytical substitutions must obey.

use compaqt_core::compress::Variant;
use compaqt_dsp::csd::EngineResources;
use compaqt_hw::power::{CryoDesign, CryoPowerModel};
use compaqt_hw::rfsoc::RfsocModel;
use compaqt_hw::timing::{EngineDesign, TimingModel};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn qubits_supported_is_monotone_in_banks(extra in 0usize..2000) {
        let small = RfsocModel::default();
        let big = RfsocModel { bram_count: small.bram_count + extra, ..small };
        prop_assert!(big.qubits_supported(3, 16) >= small.qubits_supported(3, 16));
    }

    #[test]
    fn qubits_supported_decreases_with_window_words(w1 in 1usize..16, w2 in 1usize..16) {
        let m = RfsocModel::default();
        if w1 <= w2 {
            prop_assert!(m.qubits_supported(w1, 16) >= m.qubits_supported(w2, 16));
        }
    }

    #[test]
    fn gain_never_exceeds_window_over_words(words in 1usize..16) {
        // The physical bound: a window of ws samples stored in `words`
        // words cannot expand bandwidth more than ws/words.
        let m = RfsocModel::default();
        let gain = m.gain(words, 16);
        prop_assert!(gain <= 16.0 / words as f64 + 1e-9, "gain {gain} words {words}");
    }

    #[test]
    fn memory_power_is_monotone_in_rate(r1 in 0.1f64..20.0, r2 in 0.1f64..20.0) {
        let m = CryoPowerModel::default();
        if r1 <= r2 {
            prop_assert!(
                m.memory_power_mw(18_432.0, r1, 1.0) <= m.memory_power_mw(18_432.0, r2, 1.0)
            );
        }
    }

    #[test]
    fn memory_power_is_monotone_in_capacity(c1 in 256.0f64..64_000.0, c2 in 256.0f64..64_000.0) {
        let m = CryoPowerModel::default();
        if c1 <= c2 {
            prop_assert!(m.memory_power_mw(c1, 9.0, 1.0) <= m.memory_power_mw(c2, 9.0, 1.0));
        }
    }

    #[test]
    fn bypass_only_helps(bypass in 0.0f64..1.0) {
        let m = CryoPowerModel::default();
        let with = m.breakdown(&CryoDesign::Adaptive {
            ws: 16,
            avg_words_per_window: 2.2,
            capacity_ratio: 6.0,
            bypass_fraction: bypass,
        });
        let without = m.breakdown(&CryoDesign::Compressed {
            ws: 16,
            avg_words_per_window: 2.2,
            capacity_ratio: 6.0,
        });
        prop_assert!(with.total_mw() <= without.total_mw() + 1e-12);
    }

    #[test]
    fn compression_power_beats_uncompressed(
        words in 1.0f64..4.0,
        ratio in 2.0f64..10.0,
    ) {
        let m = CryoPowerModel::default();
        let base = m.breakdown(&CryoDesign::Uncompressed);
        let comp = m.breakdown(&CryoDesign::Compressed {
            ws: 16,
            avg_words_per_window: words,
            capacity_ratio: ratio,
        });
        prop_assert!(comp.total_mw() < base.total_mw(), "comp {} base {}", comp.total_mw(), base.total_mw());
    }

    #[test]
    fn engine_delay_is_nonnegative_and_bounded(ws_idx in 0usize..3) {
        let ws = [8usize, 16, 32][ws_idx];
        let m = TimingModel::default();
        for pipelined in [false, true] {
            let d = EngineDesign { variant: Variant::IntDctW { ws }, pipelined };
            let delay = m.engine_delay_ns(&d);
            prop_assert!(delay >= 0.0);
            prop_assert!(m.normalized_frequency(&d) <= 1.0 + 1e-12);
            prop_assert!(m.normalized_frequency(&d) > 0.5);
        }
    }

    #[test]
    fn idct_power_scales_linearly_with_rate(rate in 0.01f64..2.0) {
        let m = CryoPowerModel::default();
        let res = EngineResources::int_dct_w(16);
        let p1 = m.idct_power_mw(&res, rate);
        let p2 = m.idct_power_mw(&res, 2.0 * rate);
        prop_assert!((p2 - 2.0 * p1).abs() < 1e-9);
    }
}
