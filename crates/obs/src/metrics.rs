//! Atomic metric primitives: counters, gauges and log2-bucketed
//! histograms.
//!
//! Everything here is const-constructible (usable in `static`s via
//! [`static_metrics!`](crate::static_metrics)), records with relaxed
//! atomics only, and allocates nothing on the recording path. Snapshots
//! are plain arrays/integers: cheap to copy, mergeable bucket-wise, and
//! safe to serialize.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event count. Recording is one relaxed
/// `fetch_add` — safe on any hot path.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter (const: usable in statics).
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n` to the count.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to the count.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that can move both ways (connections open, cache residency,
/// validation progress). Same cost model as [`Counter`].
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A zeroed gauge (const: usable in statics).
    pub const fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Increments the gauge by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Decrements the gauge by `n`. Callers pair this with a prior
    /// [`Gauge::add`]; an unpaired decrement wraps (the gauge is a raw
    /// `u64`, not a checked quantity).
    #[inline]
    pub fn sub(&self, n: u64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one per possible bit length of a `u64`
/// sample (plus the zero bucket), so bucketing is a `leading_zeros`
/// and never a search.
pub const BUCKETS: usize = 64;

/// A lock-free log2-bucketed histogram.
///
/// Bucket `b` holds samples whose bit length is `b`: bucket 0 holds
/// exactly the value 0, bucket `b ≥ 1` holds `[2^(b-1), 2^b - 1]`, and
/// the last bucket additionally absorbs everything from `2^62` up to
/// `u64::MAX`. [`Histogram::record`] is a single relaxed `fetch_add`
/// on the computed bucket — the entire hot-path cost.
///
/// Quantiles are *estimates* read off a [`HistogramSnapshot`]: the
/// midpoint of the bucket containing the requested rank, so any
/// estimate is within its bucket's bounds (a factor-of-2 relative
/// error ceiling, exact for the zero bucket).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// The index of the bucket a sample lands in.
#[inline]
fn bucket_index(value: u64) -> usize {
    ((u64::BITS - value.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// The inclusive `[low, high]` value range of bucket `b`.
///
/// # Panics
///
/// Panics if `b >= BUCKETS`.
pub fn bucket_bounds(b: usize) -> (u64, u64) {
    assert!(b < BUCKETS, "bucket index out of range");
    match b {
        0 => (0, 0),
        _ if b == BUCKETS - 1 => (1 << (b - 1), u64::MAX),
        _ => (1 << (b - 1), (1 << b) - 1),
    }
}

/// The midpoint estimate reported for bucket `b`.
fn bucket_midpoint(b: usize) -> u64 {
    let (low, high) = bucket_bounds(b);
    low + (high - low) / 2
}

impl Histogram {
    /// A zeroed histogram (const: usable in statics).
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram { buckets: [ZERO; BUCKETS] }
    }

    /// Records one sample: a `leading_zeros` and one relaxed
    /// `fetch_add`, zero allocations.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts. Concurrent recording
    /// keeps running; the snapshot is internally consistent enough for
    /// monitoring (each bucket is read once, relaxed).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot { buckets }
    }
}

/// A plain-array copy of a [`Histogram`]'s bucket counts: mergeable,
/// serializable, and the surface quantile estimates are read from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts; see [`Histogram`] for the bucket →
    /// value-range mapping.
    pub buckets: [u64; BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with every bucket zero.
    pub const fn empty() -> Self {
        HistogramSnapshot { buckets: [0; BUCKETS] }
    }

    /// Total recorded samples (saturating: merged snapshots of
    /// pathological counts cannot wrap into a lying total).
    pub fn count(&self) -> u64 {
        self.buckets.iter().fold(0u64, |acc, &b| acc.saturating_add(b))
    }

    /// `true` when no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(|&b| b == 0)
    }

    /// Adds another snapshot's counts bucket-wise (saturating) —
    /// shard-local histograms fold into one distribution.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a = a.saturating_add(*b);
        }
    }

    /// The estimated `q`-quantile (`0.0 ..= 1.0`): the midpoint of the
    /// bucket containing the sample of that rank, hence always within
    /// that bucket's bounds. Returns 0 for an empty snapshot; `q`
    /// outside `[0, 1]` is clamped.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the requested sample, 1-based, at least 1 so q=0 is
        // the smallest recorded sample's bucket.
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(n);
            if seen >= rank {
                return bucket_midpoint(b);
            }
        }
        bucket_midpoint(BUCKETS - 1)
    }

    /// The estimated maximum: the upper bound of the highest non-empty
    /// bucket (0 when empty).
    pub fn max_estimate(&self) -> u64 {
        self.buckets.iter().rposition(|&n| n > 0).map(|b| bucket_bounds(b).1).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_u64_range_exactly_once() {
        assert_eq!(bucket_bounds(0), (0, 0));
        assert_eq!(bucket_bounds(1), (1, 1));
        assert_eq!(bucket_bounds(2), (2, 3));
        assert_eq!(bucket_bounds(3), (4, 7));
        assert_eq!(bucket_bounds(BUCKETS - 1).1, u64::MAX);
        // Adjacent buckets tile the range with no gap or overlap.
        for b in 1..BUCKETS {
            assert_eq!(bucket_bounds(b).0, bucket_bounds(b - 1).1 + 1, "bucket {b}");
        }
        // Every sample lands in the bucket whose bounds contain it.
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, 1 << 40, u64::MAX] {
            let b = bucket_index(v);
            let (low, high) = bucket_bounds(b);
            assert!(low <= v && v <= high, "value {v} escaped bucket {b} [{low}, {high}]");
        }
    }

    #[test]
    fn quantiles_sit_inside_their_buckets() {
        let h = Histogram::new();
        for v in [3u64, 3, 3, 3, 100, 100, 100, 5000, 5000, 1_000_000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 10);
        // p50 rank is sample 5 (value 100, bucket bounds [64, 127]).
        let p50 = snap.quantile(0.5);
        assert!((64..=127).contains(&p50), "p50 estimate {p50}");
        // p99 rank is sample 10 (value 1_000_000).
        let p99 = snap.quantile(0.99);
        let (low, high) = bucket_bounds(bucket_index(1_000_000));
        assert!((low..=high).contains(&p99), "p99 estimate {p99}");
        // max estimate is an upper bound on every recorded sample.
        assert!(snap.max_estimate() >= 1_000_000);
        assert_eq!(HistogramSnapshot::empty().quantile(0.5), 0);
        assert_eq!(HistogramSnapshot::empty().max_estimate(), 0);
    }

    #[test]
    fn merge_is_bucketwise_addition() {
        let (a, b) = (Histogram::new(), Histogram::new());
        for v in 0..100u64 {
            a.record(v);
            b.record(v * 1000);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count(), 200);
        for k in 0..BUCKETS {
            assert_eq!(merged.buckets[k], a.snapshot().buckets[k] + b.snapshot().buckets[k]);
        }
    }

    #[test]
    fn counters_and_gauges_move_as_told() {
        let c = Counter::new();
        c.incr();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.add(5);
        g.sub(2);
        assert_eq!(g.get(), 3);
        g.set(7);
        assert_eq!(g.get(), 7);
    }
}
