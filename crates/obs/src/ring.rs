//! A bounded lock-free trace of typed events.
//!
//! [`TraceRing`] answers "what just happened" for a live daemon: a
//! fixed-capacity ring of [`TraceEvent`] slots with drop-oldest
//! semantics. Writers claim a slot with one `fetch_add`, stamp it with
//! a seqlock-style sequence (odd while writing, even when published)
//! and store the event as four relaxed atomic words — no lock, no
//! allocation, no torn reads. Readers ([`TraceRing::snapshot_into`])
//! skip any slot whose stamp says a writer is mid-flight or has lapped
//! it, so a snapshot only ever contains fully published events.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// The process-wide monotonic clock epoch: timestamps are nanoseconds
/// since the first call, so every subsystem's events sort on one axis.
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// What kind of thing happened. The `a`/`b` payload fields of the
/// carrying [`TraceEvent`] are kind-specific (documented per variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A client connection was accepted (`a` = active connections).
    ConnOpen,
    /// A client connection ended (`a` = requests served on it).
    ConnClose,
    /// A request exceeded the configured slow threshold (`a` = request
    /// kind tag, `b` = latency in nanoseconds).
    SlowRequest,
    /// A connection was rejected at the connection cap (`a` = cap).
    BusyRejected,
    /// A connection died to a framing violation (`a` = running
    /// protocol-error count).
    ProtocolError,
    /// A lazy-CRC first touch found damaged payload bytes (`a` = entry
    /// index).
    CrcFail,
    /// The hot set evicted an entry to admit another (`a` = shard
    /// index, `b` = hot entries resident after the eviction).
    HotEviction,
    /// A recalibrated waveform was published over a live gate (`a` =
    /// new generation stamp).
    RecalibrationPublish,
}

impl TraceKind {
    /// The on-wire tag.
    pub fn tag(self) -> u8 {
        match self {
            TraceKind::ConnOpen => 1,
            TraceKind::ConnClose => 2,
            TraceKind::SlowRequest => 3,
            TraceKind::BusyRejected => 4,
            TraceKind::ProtocolError => 5,
            TraceKind::CrcFail => 6,
            TraceKind::HotEviction => 7,
            TraceKind::RecalibrationPublish => 8,
        }
    }

    /// Decodes an on-wire tag.
    pub fn from_tag(tag: u8) -> Option<TraceKind> {
        match tag {
            1 => Some(TraceKind::ConnOpen),
            2 => Some(TraceKind::ConnClose),
            3 => Some(TraceKind::SlowRequest),
            4 => Some(TraceKind::BusyRejected),
            5 => Some(TraceKind::ProtocolError),
            6 => Some(TraceKind::CrcFail),
            7 => Some(TraceKind::HotEviction),
            8 => Some(TraceKind::RecalibrationPublish),
            _ => None,
        }
    }

    /// A stable snake_case name (used by the text exposition).
    pub fn as_str(self) -> &'static str {
        match self {
            TraceKind::ConnOpen => "conn_open",
            TraceKind::ConnClose => "conn_close",
            TraceKind::SlowRequest => "slow_request",
            TraceKind::BusyRejected => "busy_rejected",
            TraceKind::ProtocolError => "protocol_error",
            TraceKind::CrcFail => "crc_fail",
            TraceKind::HotEviction => "hot_eviction",
            TraceKind::RecalibrationPublish => "recalibration_publish",
        }
    }
}

/// One published trace event. Plain `Copy` data: two kind-specific
/// payload words and a [`now_ns`] timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// What happened.
    pub kind: TraceKind,
    /// First kind-specific payload word (see [`TraceKind`]).
    pub a: u64,
    /// Second kind-specific payload word (see [`TraceKind`]).
    pub b: u64,
    /// Nanoseconds since the process trace epoch ([`now_ns`]).
    pub t_ns: u64,
}

/// One ring slot. The event payload is stored as four separate relaxed
/// atomics (not an `UnsafeCell`), so a racing reader's loads are
/// well-defined; the `seq` stamp decides whether what it read was a
/// fully published event.
struct Slot {
    /// Seqlock stamp: `0` = never written; `2k+1` = claim `k` being
    /// written; `2k+2` = claim `k` published.
    seq: AtomicU64,
    kind: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
    t_ns: AtomicU64,
}

/// The bounded lock-free event ring. See the [module docs](self).
pub struct TraceRing {
    slots: Box<[Slot]>,
    /// Next global claim index; slot = claim & mask.
    head: AtomicU64,
    /// Events abandoned because their slot's previous writer was still
    /// mid-publish when the ring lapped it (never blocks the writer).
    dropped: AtomicU64,
    mask: u64,
}

impl std::fmt::Debug for TraceRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRing")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.head.load(Ordering::Relaxed))
            .field("dropped", &self.dropped.load(Ordering::Relaxed))
            .finish()
    }
}

impl TraceRing {
    /// A ring holding the most recent `capacity` events (rounded up to
    /// a power of two, minimum 2).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let slots = (0..cap)
            .map(|_| Slot {
                seq: AtomicU64::new(0),
                kind: AtomicU64::new(0),
                a: AtomicU64::new(0),
                b: AtomicU64::new(0),
                t_ns: AtomicU64::new(0),
            })
            .collect();
        TraceRing {
            slots,
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            mask: cap as u64 - 1,
        }
    }

    /// Slot count (events retained before drop-oldest kicks in).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (including since-overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Events abandoned because a lapped slot's writer was mid-publish.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Records an event stamped with [`now_ns`]. Lock-free and
    /// allocation-free; the oldest retained event is overwritten.
    #[inline]
    pub fn push(&self, kind: TraceKind, a: u64, b: u64) {
        self.push_event(TraceEvent { kind, a, b, t_ns: now_ns() });
    }

    /// Records a fully specified event (caller supplies the
    /// timestamp). Same cost model as [`TraceRing::push`].
    pub fn push_event(&self, event: TraceEvent) {
        let claim = self.head.fetch_add(1, Ordering::Relaxed);
        let cap = self.slots.len() as u64;
        let slot = &self.slots[(claim & self.mask) as usize];
        // The stamp this slot must carry before we may take it: its
        // previous lap's published stamp (or 0 on the first lap). A
        // failed CAS means that writer is still mid-publish — drop our
        // event rather than block or tear theirs.
        let expected = if claim >= cap { 2 * (claim - cap) + 2 } else { 0 };
        if slot
            .seq
            .compare_exchange(expected, 2 * claim + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        slot.kind.store(u64::from(event.kind.tag()), Ordering::Relaxed);
        slot.a.store(event.a, Ordering::Relaxed);
        slot.b.store(event.b, Ordering::Relaxed);
        slot.t_ns.store(event.t_ns, Ordering::Relaxed);
        slot.seq.store(2 * claim + 2, Ordering::Release);
    }

    /// Appends the currently published events to `out`, oldest first.
    /// Slots a writer is racing on (or has lapped past) are skipped, so
    /// every returned event is internally consistent. Cold path; `out`
    /// may grow.
    pub fn snapshot_into(&self, out: &mut Vec<TraceEvent>) {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let start = head.saturating_sub(cap);
        for claim in start..head {
            let slot = &self.slots[(claim & self.mask) as usize];
            let want = 2 * claim + 2;
            if slot.seq.load(Ordering::Acquire) != want {
                continue;
            }
            let event = TraceEvent {
                kind: match TraceKind::from_tag(slot.kind.load(Ordering::Relaxed) as u8) {
                    Some(kind) => kind,
                    None => continue, // torn by a racing lap; stamp check below also fails
                },
                a: slot.a.load(Ordering::Relaxed),
                b: slot.b.load(Ordering::Relaxed),
                t_ns: slot.t_ns.load(Ordering::Relaxed),
            };
            // Seqlock read validation: if the stamp moved while we
            // copied, a writer lapped us — discard the copy.
            if slot.seq.load(Ordering::Acquire) == want {
                out.push(event);
            }
        }
    }

    /// The currently published events, oldest first (cold path).
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.slots.len());
        self.snapshot_into(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_the_newest_events_and_drops_the_oldest() {
        let ring = TraceRing::new(4);
        assert_eq!(ring.capacity(), 4);
        for k in 0..10u64 {
            ring.push(TraceKind::SlowRequest, k, 2 * k);
        }
        let events = ring.snapshot();
        assert_eq!(events.len(), 4, "ring keeps exactly its capacity");
        let got: Vec<u64> = events.iter().map(|e| e.a).collect();
        assert_eq!(got, vec![6, 7, 8, 9], "drop-oldest keeps the newest claims in order");
        assert_eq!(ring.recorded(), 10);
        assert_eq!(ring.dropped(), 0, "single-threaded pushes never collide");
    }

    #[test]
    fn every_kind_round_trips_its_tag() {
        for kind in [
            TraceKind::ConnOpen,
            TraceKind::ConnClose,
            TraceKind::SlowRequest,
            TraceKind::BusyRejected,
            TraceKind::ProtocolError,
            TraceKind::CrcFail,
            TraceKind::HotEviction,
            TraceKind::RecalibrationPublish,
        ] {
            assert_eq!(TraceKind::from_tag(kind.tag()), Some(kind));
            assert!(!kind.as_str().is_empty());
        }
        assert_eq!(TraceKind::from_tag(0), None);
        assert_eq!(TraceKind::from_tag(99), None);
    }

    #[test]
    fn timestamps_are_monotone() {
        let ring = TraceRing::new(8);
        ring.push(TraceKind::ConnOpen, 1, 0);
        ring.push(TraceKind::ConnClose, 1, 0);
        let events = ring.snapshot();
        assert!(events.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
    }

    #[test]
    fn concurrent_writers_never_tear_a_published_event() {
        use std::sync::Arc;
        let ring = Arc::new(TraceRing::new(64));
        let threads: Vec<_> = (0..4u64)
            .map(|t| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for k in 0..2000u64 {
                        // Invariant each event carries: b == a * 3 + kind tag.
                        let a = t * 10_000 + k;
                        ring.push(TraceKind::HotEviction, a, a * 3 + 7);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let events = ring.snapshot();
        assert!(!events.is_empty());
        for e in &events {
            assert_eq!(e.kind, TraceKind::HotEviction);
            assert_eq!(e.b, e.a * 3 + 7, "published event must never mix two writers' words");
        }
        assert_eq!(ring.recorded(), 8000);
        assert!(events.len() <= ring.capacity());
    }
}
