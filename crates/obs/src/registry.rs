//! The registry: named metrics, pluggable collectors and one trace
//! ring, snapshotted together and rendered as Prometheus-style text.
//!
//! A [`Registry`] is **instantiable**, not process-global: a serve
//! daemon, a store under test and a bench harness each own their own,
//! so parallel tests can assert exact ledgers without cross-talk.
//! Registration is the cold path (allocates, takes a mutex); recording
//! happens on the metric handles themselves and never touches the
//! registry. Process-lifetime statics declared with
//! [`static_metrics!`](crate::static_metrics) join a registry by
//! reference.

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use crate::ring::{TraceEvent, TraceRing};
use std::fmt::Write as _;
use std::ops::Deref;
use std::sync::{Arc, Mutex, OnceLock};

/// A handle to a registered metric: shared (`Arc`) or a
/// process-lifetime static.
#[derive(Debug)]
enum Handle<T: 'static> {
    Shared(Arc<T>),
    Static(&'static T),
}

impl<T> Clone for Handle<T> {
    fn clone(&self) -> Self {
        match self {
            Handle::Shared(m) => Handle::Shared(Arc::clone(m)),
            Handle::Static(m) => Handle::Static(m),
        }
    }
}

impl<T> Deref for Handle<T> {
    type Target = T;

    fn deref(&self) -> &T {
        match self {
            Handle::Shared(m) => m,
            Handle::Static(m) => m,
        }
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Handle<Counter>),
    Gauge(Handle<Gauge>),
    Histogram(Handle<Histogram>),
}

/// Anything that contributes samples (and possibly events) to a
/// snapshot beyond the registry's own named metrics — a store walking
/// its shard counters, a reader reporting validation progress.
pub trait Collect: Send + Sync {
    /// Appends this collector's current samples/events to `out`.
    fn collect(&self, out: &mut Snapshot);
}

/// One named sample in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// The metric name (snake_case; sanitized at render time).
    pub name: String,
    /// The sampled value.
    pub value: Value,
}

/// A sampled metric value.
///
/// The histogram variant inlines its full 512-byte bucket array:
/// samples exist only on the cold scrape path, where one contiguous
/// `Vec<Sample>` beats a pointer chase per histogram.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A monotone count.
    Counter(u64),
    /// A point-in-time level.
    Gauge(u64),
    /// A full bucket distribution.
    Histogram(HistogramSnapshot),
}

/// A point-in-time view of everything a registry (or collector set)
/// knows: named samples plus the trace ring's published events. Plain
/// data — cheap to merge, serialize and render.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Named samples, in registration/collection order.
    pub samples: Vec<Sample>,
    /// Published trace events, oldest first.
    pub events: Vec<TraceEvent>,
    /// Events the ring abandoned under write contention.
    pub dropped_events: u64,
}

impl Snapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Snapshot::default()
    }

    /// Appends a counter sample.
    pub fn push_counter(&mut self, name: impl Into<String>, value: u64) {
        self.samples.push(Sample { name: name.into(), value: Value::Counter(value) });
    }

    /// Appends a gauge sample.
    pub fn push_gauge(&mut self, name: impl Into<String>, value: u64) {
        self.samples.push(Sample { name: name.into(), value: Value::Gauge(value) });
    }

    /// Appends a histogram sample.
    pub fn push_histogram(&mut self, name: impl Into<String>, value: HistogramSnapshot) {
        self.samples.push(Sample { name: name.into(), value: Value::Histogram(value) });
    }

    /// The first sample with this name, if any.
    pub fn find(&self, name: &str) -> Option<&Value> {
        self.samples.iter().find(|s| s.name == name).map(|s| &s.value)
    }

    /// The value of the named counter, if present as one.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.find(name) {
            Some(Value::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// The value of the named gauge, if present as one.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        match self.find(name) {
            Some(Value::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// The named histogram, if present as one.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.find(name) {
            Some(Value::Histogram(h)) => Some(h),
            _ => None,
        }
    }
}

/// The instantiable metrics registry. See the [module docs](self).
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<Vec<(String, Metric)>>,
    collectors: Mutex<Vec<Arc<dyn Collect>>>,
    ring: OnceLock<Arc<TraceRing>>,
}

impl std::fmt::Debug for dyn Collect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("dyn Collect")
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Returns the named counter, creating and registering it on first
    /// use. Reusing a name with a different metric kind panics — one
    /// name, one meaning.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut metrics = self.metrics.lock().unwrap();
        if let Some((_, m)) = metrics.iter().find(|(n, _)| n == name) {
            match m {
                Metric::Counter(Handle::Shared(c)) => return Arc::clone(c),
                _ => panic!("metric {name:?} already registered with a different kind"),
            }
        }
        let c = Arc::new(Counter::new());
        metrics.push((name.to_string(), Metric::Counter(Handle::Shared(Arc::clone(&c)))));
        c
    }

    /// Returns the named gauge, creating and registering it on first
    /// use. Same reuse rule as [`Registry::counter`].
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut metrics = self.metrics.lock().unwrap();
        if let Some((_, m)) = metrics.iter().find(|(n, _)| n == name) {
            match m {
                Metric::Gauge(Handle::Shared(g)) => return Arc::clone(g),
                _ => panic!("metric {name:?} already registered with a different kind"),
            }
        }
        let g = Arc::new(Gauge::new());
        metrics.push((name.to_string(), Metric::Gauge(Handle::Shared(Arc::clone(&g)))));
        g
    }

    /// Returns the named histogram, creating and registering it on
    /// first use. Same reuse rule as [`Registry::counter`].
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut metrics = self.metrics.lock().unwrap();
        if let Some((_, m)) = metrics.iter().find(|(n, _)| n == name) {
            match m {
                Metric::Histogram(Handle::Shared(h)) => return Arc::clone(h),
                _ => panic!("metric {name:?} already registered with a different kind"),
            }
        }
        let h = Arc::new(Histogram::new());
        metrics.push((name.to_string(), Metric::Histogram(Handle::Shared(Arc::clone(&h)))));
        h
    }

    /// Registers a [`static_metrics!`](crate::static_metrics)-declared
    /// counter under `name`.
    pub fn register_static_counter(&self, name: &str, counter: &'static Counter) {
        self.metrics
            .lock()
            .unwrap()
            .push((name.to_string(), Metric::Counter(Handle::Static(counter))));
    }

    /// Registers a static gauge under `name`.
    pub fn register_static_gauge(&self, name: &str, gauge: &'static Gauge) {
        self.metrics.lock().unwrap().push((name.to_string(), Metric::Gauge(Handle::Static(gauge))));
    }

    /// Registers a static histogram under `name`.
    pub fn register_static_histogram(&self, name: &str, histogram: &'static Histogram) {
        self.metrics
            .lock()
            .unwrap()
            .push((name.to_string(), Metric::Histogram(Handle::Static(histogram))));
    }

    /// Adds a collector whose samples join every future snapshot.
    pub fn register_collector(&self, collector: Arc<dyn Collect>) {
        self.collectors.lock().unwrap().push(collector);
    }

    /// Attaches the trace ring snapshots read events from. First call
    /// wins (returns `false` if a ring was already attached).
    pub fn set_trace(&self, ring: Arc<TraceRing>) -> bool {
        self.ring.set(ring).is_ok()
    }

    /// The attached trace ring, if any.
    pub fn trace(&self) -> Option<&Arc<TraceRing>> {
        self.ring.get()
    }

    /// Samples every registered metric, runs every collector and
    /// copies the trace ring's published events. Cold path; allocates.
    pub fn snapshot(&self) -> Snapshot {
        let mut out = Snapshot::new();
        for (name, metric) in self.metrics.lock().unwrap().iter() {
            match metric {
                Metric::Counter(c) => out.push_counter(name.clone(), c.get()),
                Metric::Gauge(g) => out.push_gauge(name.clone(), g.get()),
                Metric::Histogram(h) => out.push_histogram(name.clone(), h.snapshot()),
            }
        }
        let collectors: Vec<Arc<dyn Collect>> = self.collectors.lock().unwrap().clone();
        for collector in collectors {
            collector.collect(&mut out);
        }
        if let Some(ring) = self.ring.get() {
            ring.snapshot_into(&mut out.events);
            out.dropped_events += ring.dropped();
        }
        out
    }
}

/// Sanitizes a metric name for the text exposition: anything outside
/// `[A-Za-z0-9_:]` becomes `_`.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == ':' { c } else { '_' })
        .collect()
}

/// Renders a snapshot as Prometheus-style exposition text (cold path,
/// allocation allowed): `# TYPE` headers, cumulative `_bucket{le=..}`
/// lines for non-empty histogram buckets, `{quantile=..}` estimate
/// lines (p50/p90/p99), `_count`/`_max` totals, and the trace events
/// as trailing `# trace` comment lines. Deterministic: equal snapshots
/// render byte-identical text.
pub fn render_text(snap: &Snapshot) -> String {
    let mut out = String::new();
    for sample in &snap.samples {
        let name = sanitize(&sample.name);
        match &sample.value {
            Value::Counter(v) => {
                let _ = writeln!(out, "# TYPE {name} counter\n{name} {v}");
            }
            Value::Gauge(v) => {
                let _ = writeln!(out, "# TYPE {name} gauge\n{name} {v}");
            }
            Value::Histogram(h) => {
                let _ = writeln!(out, "# TYPE {name} histogram");
                let mut cumulative = 0u64;
                for (b, &n) in h.buckets.iter().enumerate() {
                    if n == 0 {
                        continue;
                    }
                    cumulative = cumulative.saturating_add(n);
                    let le = crate::metrics::bucket_bounds(b).1;
                    let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
                }
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
                for (q, label) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                    let _ = writeln!(out, "{name}{{quantile=\"{label}\"}} {}", h.quantile(q));
                }
                let _ = writeln!(out, "{name}_count {}", h.count());
                let _ = writeln!(out, "{name}_max {}", h.max_estimate());
            }
        }
    }
    if snap.dropped_events > 0 {
        let _ = writeln!(out, "# trace_dropped {}", snap.dropped_events);
    }
    for e in &snap.events {
        let _ = writeln!(out, "# trace {} a={} b={} t_ns={}", e.kind.as_str(), e.a, e.b, e.t_ns);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::TraceKind;

    #[test]
    fn registry_snapshot_carries_every_registered_metric() {
        let registry = Registry::new();
        let fetches = registry.counter("fetches");
        let conns = registry.gauge("connections");
        let lat = registry.histogram("request_ns");
        fetches.add(3);
        conns.add(2);
        lat.record(900);
        lat.record(90_000);

        let ring = Arc::new(TraceRing::new(8));
        ring.push(TraceKind::BusyRejected, 64, 0);
        assert!(registry.set_trace(Arc::clone(&ring)));
        assert!(!registry.set_trace(ring), "second attach is refused");

        let snap = registry.snapshot();
        assert_eq!(snap.counter("fetches"), Some(3));
        assert_eq!(snap.gauge("connections"), Some(2));
        let h = snap.histogram("request_ns").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.events[0].kind, TraceKind::BusyRejected);

        // Same-name requests share the cell; the count keeps growing.
        registry.counter("fetches").incr();
        assert_eq!(registry.snapshot().counter("fetches"), Some(4));
    }

    #[test]
    fn collectors_join_the_snapshot() {
        struct Fixed;
        impl Collect for Fixed {
            fn collect(&self, out: &mut Snapshot) {
                out.push_gauge("fixed_gauge", 7);
            }
        }
        let registry = Registry::new();
        registry.register_collector(Arc::new(Fixed));
        assert_eq!(registry.snapshot().gauge("fixed_gauge"), Some(7));
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn reusing_a_name_with_a_different_kind_panics() {
        let registry = Registry::new();
        registry.counter("x");
        registry.gauge("x");
    }

    #[test]
    fn render_text_is_deterministic_and_complete() {
        let mut snap = Snapshot::new();
        snap.push_counter("fetches", 12);
        snap.push_gauge("conns", 3);
        let h = crate::metrics::Histogram::new();
        for v in [100u64, 100, 5000] {
            h.record(v);
        }
        snap.push_histogram("lat ns", h.snapshot()); // space gets sanitized
        snap.events.push(TraceEvent { kind: TraceKind::ConnOpen, a: 1, b: 0, t_ns: 42 });

        let text = render_text(&snap);
        assert_eq!(text, render_text(&snap.clone()), "equal snapshots render identically");
        assert!(text.contains("# TYPE fetches counter\nfetches 12\n"));
        assert!(text.contains("# TYPE conns gauge\nconns 3\n"));
        assert!(text.contains("# TYPE lat_ns histogram"));
        assert!(text.contains("lat_ns_bucket{le=\"127\"} 2"));
        assert!(text.contains("lat_ns_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("lat_ns_count 3"));
        assert!(text.contains("{quantile=\"0.99\"}"));
        assert!(text.contains("# trace conn_open a=1 b=0 t_ns=42"));
    }
}
