//! Zero-overhead telemetry for the COMPAQT serving stack.
//!
//! Production control hardware treats per-request latency distributions
//! and structured event logs as first-class — an operator must be able
//! to answer "what is p99 fetch latency", "how far has lazy-CRC
//! validation progressed", "why did this request take 2 ms" without
//! attaching a debugger. This crate supplies that layer under the
//! repo's standing constraints: the hot paths it instruments are
//! **lock-free and zero-allocation**, so every hot-path primitive here
//! is a relaxed atomic operation on preallocated storage.
//!
//! Three pieces:
//!
//! - [`metrics`] — named atomic [`Counter`]s, [`Gauge`]s and
//!   log2-bucketed latency [`Histogram`]s (`[AtomicU64; 64]` fixed
//!   buckets; `record()` is a single relaxed `fetch_add`; p50/p90/p99
//!   and max are estimated from bucket midpoints on snapshots, which
//!   are plain arrays and merge bucket-wise).
//! - [`ring`] — a bounded lock-free [`TraceRing`] of typed
//!   [`TraceEvent`]s (connection open/close, slow request, Busy
//!   rejection, protocol error, lazy-CRC first-touch failure, hot-set
//!   eviction, recalibration publish) with monotonic timestamps,
//!   seqlock-style slot stamping and drop-oldest semantics.
//! - [`registry`] — an instantiable [`Registry`] tying metrics,
//!   [`Collect`]ors and a trace ring into mergeable [`Snapshot`]s, plus
//!   Prometheus-style text exposition ([`render_text`], cold path,
//!   allocation allowed).
//!
//! Metrics are either `Arc`-shared through a registry or declared as
//! const-initialized statics with [`static_metrics!`], so a hot-path
//! `record()`/`incr()` never allocates and never takes a lock.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod metrics;
pub mod registry;
pub mod ring;

pub use metrics::{bucket_bounds, Counter, Gauge, Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{render_text, Collect, Registry, Sample, Snapshot, Value};
pub use ring::{now_ns, TraceEvent, TraceKind, TraceRing};

/// Declares const-initialized static metrics, so hot-path recording is
/// a single relaxed atomic add on a process-lifetime cell — no lazy
/// initialization, no lock, no allocation.
///
/// ```
/// use compaqt_obs::{static_metrics, Registry};
///
/// static_metrics! {
///     /// Total widgets frobbed.
///     static WIDGETS: Counter;
///     /// Frob latency in nanoseconds.
///     static FROB_NS: Histogram;
/// }
///
/// WIDGETS.incr();
/// FROB_NS.record(1280);
///
/// let registry = Registry::new();
/// registry.register_static_counter("widgets", &WIDGETS);
/// registry.register_static_histogram("frob_ns", &FROB_NS);
/// assert_eq!(registry.snapshot().counter("widgets"), Some(1));
/// ```
#[macro_export]
macro_rules! static_metrics {
    ($($(#[$meta:meta])* $vis:vis static $name:ident : $kind:ident;)+) => {
        $($(#[$meta])* $vis static $name: $crate::$kind = $crate::$kind::new();)+
    };
}
