//! Control-hardware parameter sets (Table I).
//!
//! These are the per-vendor constants the paper uses to estimate waveform
//! memory capacity and bandwidth: DAC sampling rate, packed I+Q sample
//! size, gate set and latencies, and connectivity.

use crate::topology::Topology;
use serde::{Deserialize, Serialize};

/// A control-hardware vendor archetype.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Vendor {
    /// IBM-style fixed-frequency transmons: X/SX/CX (cross-resonance) on a
    /// heavy-hexagonal lattice, 4.54 GS/s DACs, 32-bit I+Q samples.
    Ibm,
    /// Google-style tunable transmons: fsim/iSWAP/phased-XZ on a grid,
    /// 1 GS/s DACs, 28-bit samples.
    Google,
}

impl Vendor {
    /// The Table I parameters for this vendor.
    pub fn params(&self) -> VendorParams {
        match self {
            Vendor::Ibm => VendorParams {
                vendor: *self,
                name: "IBM",
                sampling_rate_gs: 4.54,
                sample_bits: 32,
                single_qubit_gate_types: 2, // X, SX
                two_qubit_gate_types: 1,    // CX
                tau_1q_ns: 30.0,
                tau_2q_ns: 300.0,
                tau_readout_ns: 300.0,
                topology: Topology::HeavyHex,
            },
            Vendor::Google => VendorParams {
                vendor: *self,
                name: "Google",
                sampling_rate_gs: 1.0,
                sample_bits: 28,
                single_qubit_gate_types: 1, // phased XZ
                two_qubit_gate_types: 2,    // fsim, iSWAP
                tau_1q_ns: 25.0,
                tau_2q_ns: 30.0,
                tau_readout_ns: 500.0,
                topology: Topology::Grid,
            },
        }
    }
}

/// The Table I parameter set used by the capacity/bandwidth models.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VendorParams {
    /// Which vendor archetype this is.
    pub vendor: Vendor,
    /// Human-readable vendor name.
    pub name: &'static str,
    /// DAC sampling rate `fs` in GS/s.
    pub sampling_rate_gs: f64,
    /// Packed I+Q sample size `Ns` in bits.
    pub sample_bits: u32,
    /// Number of distinct single-qubit gate waveforms per qubit (`nsq`).
    pub single_qubit_gate_types: usize,
    /// Number of distinct two-qubit gate waveforms per coupled pair (`ntq`).
    pub two_qubit_gate_types: usize,
    /// Single-qubit gate latency in ns.
    pub tau_1q_ns: f64,
    /// Two-qubit gate latency in ns.
    pub tau_2q_ns: f64,
    /// Readout latency in ns.
    pub tau_readout_ns: f64,
    /// Connectivity family.
    pub topology: Topology,
}

impl VendorParams {
    /// Number of DAC samples spanned by a gate of `tau_ns` nanoseconds.
    pub fn samples_for(&self, tau_ns: f64) -> usize {
        (self.sampling_rate_gs * tau_ns).round() as usize
    }

    /// Bytes needed to store one waveform of `tau_ns` nanoseconds at this
    /// vendor's sample size (`fs * Ns * tau`, the Section III MC term).
    pub fn waveform_bytes(&self, tau_ns: f64) -> f64 {
        self.samples_for(tau_ns) as f64 * f64::from(self.sample_bits) / 8.0
    }

    /// Required waveform-memory read bandwidth per driven qubit, in GB/s
    /// (`BW = fs * Ns`, Section III).
    pub fn bandwidth_per_qubit_gb(&self) -> f64 {
        self.sampling_rate_gs * f64::from(self.sample_bits) / 8.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ibm_bandwidth_exceeds_16_gb_per_qubit() {
        // Section III: "more than 16 GB/s" per qubit on IBM systems.
        let bw = Vendor::Ibm.params().bandwidth_per_qubit_gb();
        assert!(bw > 16.0 && bw < 20.0, "got {bw}");
    }

    #[test]
    fn ibm_sample_counts() {
        let p = Vendor::Ibm.params();
        assert_eq!(p.samples_for(30.0), 136);
        assert_eq!(p.samples_for(300.0), 1362);
    }

    #[test]
    fn google_params_match_table_i() {
        let p = Vendor::Google.params();
        assert_eq!(p.sample_bits, 28);
        assert_eq!(p.samples_for(25.0), 25);
        assert_eq!(p.topology, Topology::Grid);
    }

    #[test]
    fn waveform_bytes_scale_with_duration() {
        let p = Vendor::Ibm.params();
        let b1 = p.waveform_bytes(30.0);
        let b2 = p.waveform_bytes(300.0);
        assert!((b2 / b1 - 10.0).abs() < 0.2);
        // 1362 samples * 4 bytes = 5448.
        assert!((b2 - 5448.0).abs() < 1.0);
    }
}
