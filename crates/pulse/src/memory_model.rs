//! Waveform-memory capacity and bandwidth demand (Section III).
//!
//! The paper's demand model:
//!
//! ```text
//! MC = sum_i fs*Ns*tau_i  (1Q gates)
//!    + sum_j fs*Ns*tau_j  (d * ntq two-qubit gates)
//!    + fs*Ns*tau_readout
//! BW = fs * Ns            (per concurrently driven qubit)
//! ```
//!
//! plus the RFSoC reference lines of Figure 5: on-chip BRAM+URAM capacity
//! of 7.56 MB and a peak internal memory bandwidth of 866 GB/s.

use crate::vendor::VendorParams;
use serde::{Deserialize, Serialize};

/// Total on-chip memory capacity of the reference RFSoC (BRAM + URAM),
/// the horizontal line of Figure 5(a).
pub const RFSOC_CAPACITY_BYTES: f64 = 7.56e6;

/// Peak internal BRAM bandwidth of the reference RFSoC in GB/s, the
/// horizontal line of Figure 5(b) (1260 BRAMs behind an FPGA fabric clock
/// 16x slower than the DACs).
pub const RFSOC_MAX_BANDWIDTH_GB: f64 = 866.0;

/// Sampling rate of the RFSoC's integrated DACs in GS/s.
pub const RFSOC_DAC_RATE_GS: f64 = 6.0;

/// Packed I+Q sample size of the RFSoC DACs: two 16-bit sample words
/// (the 14-bit DAC codes are stored left-justified in 16-bit memory words).
pub const RFSOC_SAMPLE_BITS: u32 = 32;

/// Memory bandwidth one qubit demands from the RFSoC waveform memory, in
/// GB/s (6 GS/s * 32-bit samples = 24 GB/s).
pub fn rfsoc_bandwidth_per_qubit_gb() -> f64 {
    RFSOC_DAC_RATE_GS * f64::from(RFSOC_SAMPLE_BITS) / 8.0
}

/// Waveform-memory capacity one qubit of degree `degree` requires, in
/// bytes (the Section III `MC` equation).
pub fn capacity_per_qubit_bytes(p: &VendorParams, degree: f64) -> f64 {
    let one_q = p.single_qubit_gate_types as f64 * p.waveform_bytes(p.tau_1q_ns);
    let two_q = degree * p.two_qubit_gate_types as f64 * p.waveform_bytes(p.tau_2q_ns);
    let readout = p.waveform_bytes(p.tau_readout_ns);
    one_q + two_q + readout
}

/// Total waveform-memory capacity for an `n`-qubit machine, in bytes,
/// using the vendor topology's per-qubit degrees.
pub fn total_capacity_bytes(p: &VendorParams, n: usize) -> f64 {
    p.topology.degrees(n).iter().map(|&d| capacity_per_qubit_bytes(p, d as f64)).sum()
}

/// Total memory bandwidth to drive all `n` qubits concurrently, in GB/s.
pub fn total_bandwidth_gb(p: &VendorParams, n: usize) -> f64 {
    n as f64 * p.bandwidth_per_qubit_gb()
}

/// Bandwidth to drive `n` qubits concurrently from an RFSoC's 6 GS/s
/// DACs, in GB/s — the demand curve of Figure 5(b).
pub fn rfsoc_total_bandwidth_gb(n: usize) -> f64 {
    n as f64 * rfsoc_bandwidth_per_qubit_gb()
}

/// One point of a capacity/bandwidth scaling curve (Figure 5a/5b).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DemandPoint {
    /// Qubit count.
    pub qubits: usize,
    /// Required capacity in MB.
    pub capacity_mb: f64,
    /// Required bandwidth in GB/s.
    pub bandwidth_gb: f64,
}

/// Sweeps the demand model over qubit counts (Figure 5a/5b series).
pub fn demand_sweep(p: &VendorParams, counts: impl IntoIterator<Item = usize>) -> Vec<DemandPoint> {
    counts
        .into_iter()
        .map(|n| DemandPoint {
            qubits: n,
            capacity_mb: total_capacity_bytes(p, n) / 1e6,
            bandwidth_gb: total_bandwidth_gb(p, n),
        })
        .collect()
}

/// Maximum qubits supportable under the RFSoC *capacity* constraint alone
/// (Figure 5d, left bar).
pub fn rfsoc_qubits_by_capacity(p: &VendorParams) -> usize {
    let mut n = 1usize;
    while total_capacity_bytes(p, n + 1) <= RFSOC_CAPACITY_BYTES {
        n += 1;
        if n > 10_000 {
            break;
        }
    }
    n
}

/// Maximum qubits supportable under the RFSoC *bandwidth* constraint alone
/// (Figure 5d, right bar): internal BRAM bandwidth divided by per-qubit
/// DAC demand.
pub fn rfsoc_qubits_by_bandwidth() -> usize {
    (RFSOC_MAX_BANDWIDTH_GB / rfsoc_bandwidth_per_qubit_gb()).floor() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vendor::Vendor;

    #[test]
    fn ibm_capacity_per_qubit_is_about_18kb() {
        let p = Vendor::Ibm.params();
        let mc = capacity_per_qubit_bytes(&p, 2.0);
        assert!((16_000.0..20_000.0).contains(&mc), "got {mc}");
    }

    #[test]
    fn google_capacity_per_qubit_is_about_3kb() {
        let p = Vendor::Google.params();
        let mc = capacity_per_qubit_bytes(&p, 4.0);
        assert!((2_000.0..3_500.0).contains(&mc), "got {mc}");
    }

    #[test]
    fn capacity_scales_linearly() {
        let p = Vendor::Ibm.params();
        let c100 = total_capacity_bytes(&p, 100);
        let c200 = total_capacity_bytes(&p, 200);
        let ratio = c200 / c100;
        assert!((1.8..2.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn hundred_qubit_machine_needs_megabytes() {
        // Section I: "a hundred-qubit quantum computer would require up to
        // 5MB of memory for pulse shapes of basic gates".
        let p = Vendor::Ibm.params();
        let mb = total_capacity_bytes(&p, 100) / 1e6;
        assert!((1.0..6.0).contains(&mb), "got {mb} MB");
    }

    #[test]
    fn rfsoc_per_qubit_bandwidth_is_24_gb() {
        assert!((rfsoc_bandwidth_per_qubit_gb() - 24.0).abs() < 1e-9);
    }

    #[test]
    fn rfsoc_bandwidth_limits_to_under_40_qubits() {
        // Figure 5(d): bandwidth constraint -> fewer than 40 qubits; the
        // QICK baseline works out to ~36.
        let n = rfsoc_qubits_by_bandwidth();
        assert!(n < 40, "got {n}");
        assert!(n >= 30, "got {n}");
    }

    #[test]
    fn rfsoc_capacity_supports_over_200_qubits() {
        // Figure 5(d): capacity alone supports > 200 qubits.
        let n = rfsoc_qubits_by_capacity(&Vendor::Ibm.params());
        assert!(n > 200, "got {n}");
    }

    #[test]
    fn two_hundred_qubits_demand_terabytes_per_second() {
        // Figure 5(b): the demand curve reaches multiple TB/s by 200 qubits.
        let bw = rfsoc_total_bandwidth_gb(200);
        assert!(bw > 3_000.0, "got {bw} GB/s");
    }

    #[test]
    fn demand_sweep_is_monotone() {
        let pts = demand_sweep(&Vendor::Ibm.params(), [10, 50, 100, 150]);
        for w in pts.windows(2) {
            assert!(w[1].capacity_mb > w[0].capacity_mb);
            assert!(w[1].bandwidth_gb > w[0].bandwidth_gb);
        }
    }
}
