//! The I/Q waveform type streamed from waveform memory to the DACs.
//!
//! A pulse envelope has two channels: in-phase (I) rotates the qubit about
//! the Bloch-sphere X axis, quadrature (Q) about the Y axis (Section II-B).
//! The waveform memory stores both; the sample size `Ns` of Table I counts
//! the packed I+Q word (e.g. 32 bits = two 16-bit channels on IBM systems).

use compaqt_dsp::fixed::Q15;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A named, sampled I/Q pulse envelope.
///
/// Samples are real values in `[-1, 1)` (full scale of the DAC). The
/// waveform also records the DAC sampling rate so durations can be
/// recovered.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Waveform {
    name: String,
    i: Vec<f64>,
    q: Vec<f64>,
    sample_rate_gs: f64,
}

impl Waveform {
    /// Creates a waveform from I and Q channel samples.
    ///
    /// # Panics
    ///
    /// Panics if the channels differ in length, are empty, or the sample
    /// rate is not positive.
    pub fn new(name: impl Into<String>, i: Vec<f64>, q: Vec<f64>, sample_rate_gs: f64) -> Self {
        assert_eq!(i.len(), q.len(), "I and Q channels must have equal length");
        assert!(!i.is_empty(), "waveform must contain samples");
        assert!(sample_rate_gs > 0.0, "sample rate must be positive");
        Waveform { name: name.into(), i, q, sample_rate_gs }
    }

    /// Creates a purely in-phase waveform (Q channel zero).
    pub fn from_real(name: impl Into<String>, i: Vec<f64>, sample_rate_gs: f64) -> Self {
        let q = vec![0.0; i.len()];
        Waveform::new(name, i, q, sample_rate_gs)
    }

    /// The waveform's name (gate + qubit, e.g. `"X(q3)"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of samples per channel.
    pub fn len(&self) -> usize {
        self.i.len()
    }

    /// `true` if the waveform holds no samples (never; construction forbids it).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// In-phase channel samples.
    pub fn i(&self) -> &[f64] {
        &self.i
    }

    /// Quadrature channel samples.
    pub fn q(&self) -> &[f64] {
        &self.q
    }

    /// DAC sampling rate in gigasamples per second.
    pub fn sample_rate_gs(&self) -> f64 {
        self.sample_rate_gs
    }

    /// Pulse duration in nanoseconds.
    pub fn duration_ns(&self) -> f64 {
        self.len() as f64 / self.sample_rate_gs
    }

    /// Peak envelope magnitude `max |I + iQ|`.
    pub fn peak_amplitude(&self) -> f64 {
        self.i.iter().zip(&self.q).map(|(a, b)| (a * a + b * b).sqrt()).fold(0.0, f64::max)
    }

    /// Uncompressed storage footprint in bytes for a packed I+Q sample of
    /// `sample_bits` bits (Table I's `Ns`).
    pub fn storage_bytes(&self, sample_bits: u32) -> usize {
        (self.len() * sample_bits as usize).div_ceil(8)
    }

    /// Mean squared error against another waveform, averaged over both
    /// channels — the distortion metric of Figure 7(c).
    ///
    /// # Panics
    ///
    /// Panics if the waveforms have different lengths.
    pub fn mse(&self, other: &Waveform) -> f64 {
        assert_eq!(self.len(), other.len(), "waveform lengths must match");
        let ei = compaqt_dsp::metrics::mse(&self.i, &other.i);
        let eq = compaqt_dsp::metrics::mse(&self.q, &other.q);
        (ei + eq) / 2.0
    }

    /// Quantizes the I channel to Q1.15 DAC samples.
    pub fn i_q15(&self) -> Vec<Q15> {
        compaqt_dsp::fixed::quantize(&self.i)
    }

    /// Quantizes the Q channel to Q1.15 DAC samples.
    pub fn q_q15(&self) -> Vec<Q15> {
        compaqt_dsp::fixed::quantize(&self.q)
    }

    /// Rebuilds a waveform from quantized channels (used after the
    /// decompression pipeline).
    ///
    /// # Panics
    ///
    /// Panics if the channels differ in length or are empty.
    pub fn from_q15(name: impl Into<String>, i: &[Q15], q: &[Q15], sample_rate_gs: f64) -> Self {
        Waveform::new(
            name,
            compaqt_dsp::fixed::dequantize(i),
            compaqt_dsp::fixed::dequantize(q),
            sample_rate_gs,
        )
    }

    /// Returns `(plateau_start, plateau_len)` if the waveform has a
    /// constant flat-top plateau of at least `min_len` samples (within
    /// one Q1.15 LSB), as the adaptive decompression path of Section V-D
    /// looks for. Detection runs on the I channel.
    pub fn flat_top_plateau(&self, min_len: usize) -> Option<(usize, usize)> {
        let lsb = 2.0 / 65536.0;
        let mut best: Option<(usize, usize)> = None;
        let mut start = 0;
        let mut run = 1;
        for idx in 1..self.i.len() {
            if (self.i[idx] - self.i[idx - 1]).abs() <= lsb && self.i[start].abs() > lsb {
                run += 1;
            } else {
                if run >= min_len && best.is_none_or(|(_, l)| run > l) {
                    best = Some((start, run));
                }
                start = idx;
                run = 1;
            }
        }
        if run >= min_len && best.is_none_or(|(_, l)| run > l) {
            best = Some((start, run));
        }
        best
    }
}

impl fmt::Display for Waveform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{} samples @ {} GS/s = {:.1} ns]",
            self.name,
            self.len(),
            self.sample_rate_gs,
            self.duration_ns()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wf(i: Vec<f64>) -> Waveform {
        Waveform::from_real("test", i, 4.54)
    }

    #[test]
    fn duration_follows_sample_rate() {
        let w = Waveform::from_real("x", vec![0.0; 454], 4.54);
        assert!((w.duration_ns() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn storage_matches_table_i_sample_size() {
        // IBM: 136 samples of a 30ns 1Q gate at 32 bits -> 544 bytes.
        let w = Waveform::from_real("x", vec![0.0; 136], 4.54);
        assert_eq!(w.storage_bytes(32), 544);
        // Google: 28-bit samples.
        let g = Waveform::from_real("g", vec![0.0; 25], 1.0);
        assert_eq!(g.storage_bytes(28), 88); // ceil(700/8)
    }

    #[test]
    fn mse_is_zero_for_identical() {
        let w = wf(vec![0.1, 0.2, 0.3]);
        assert_eq!(w.mse(&w.clone()), 0.0);
    }

    #[test]
    fn mse_averages_channels() {
        let a = Waveform::new("a", vec![0.0, 0.0], vec![0.0, 0.0], 1.0);
        let b = Waveform::new("b", vec![0.2, 0.2], vec![0.0, 0.0], 1.0);
        // I-channel MSE = 0.04, Q = 0 -> mean 0.02.
        assert!((a.mse(&b) - 0.02).abs() < 1e-12);
    }

    #[test]
    fn peak_amplitude_combines_iq() {
        let w = Waveform::new("a", vec![0.3, 0.0], vec![0.4, 0.0], 1.0);
        assert!((w.peak_amplitude() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn q15_round_trip() {
        let w = wf(vec![0.25, -0.5, 0.75]);
        let back = Waveform::from_q15("back", &w.i_q15(), &w.q_q15(), w.sample_rate_gs());
        assert!(w.mse(&back) < 1e-9);
    }

    #[test]
    fn flat_top_detected() {
        let mut i = vec![0.0, 0.2, 0.4];
        i.extend(vec![0.5; 100]);
        i.extend(vec![0.4, 0.2, 0.0]);
        let w = wf(i);
        let (start, len) = w.flat_top_plateau(50).unwrap();
        assert_eq!(start, 3);
        assert_eq!(len, 100);
    }

    #[test]
    fn no_plateau_in_gaussian() {
        let i: Vec<f64> = (0..160)
            .map(|n| {
                let t = (n as f64 - 80.0) / 25.0;
                0.6 * (-0.5 * t * t).exp()
            })
            .collect();
        assert!(wf(i).flat_top_plateau(16).is_none());
    }

    #[test]
    fn zero_plateau_is_not_flat_top() {
        // Leading/trailing zeros must not count as a plateau.
        let mut i = vec![0.0; 64];
        i.push(0.5);
        i.extend(vec![0.0; 64]);
        assert!(wf(i).flat_top_plateau(16).is_none());
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_channels_rejected() {
        Waveform::new("bad", vec![0.0], vec![0.0, 1.0], 1.0);
    }

    #[test]
    fn display_mentions_name_and_duration() {
        let w = wf(vec![0.0; 454]);
        let s = format!("{w}");
        assert!(s.contains("test") && s.contains("100.0 ns"));
    }
}
