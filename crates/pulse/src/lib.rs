//! # compaqt-pulse
//!
//! Pulse-generation substrate for the COMPAQT compressed waveform memory
//! architecture (Maurya & Tannu, MICRO 2022).
//!
//! The paper's evaluation reads per-qubit calibrated pulses from IBM
//! machines through Qiskit Pulse. That ecosystem does not exist in Rust and
//! the calibration data is not public, so this crate rebuilds the substrate:
//!
//! * [`waveform`] — the I/Q envelope type streamed to the DACs.
//! * [`shapes`] — parametric pulse shapes used on superconducting hardware:
//!   Gaussian, DRAG, flat-top (GaussianSquare), cosine-tapered, constant
//!   and band-limited synthetic shapes.
//! * [`topology`] — heavy-hexagonal (IBM), grid (Google) and linear qubit
//!   connectivities.
//! * [`vendor`] — the Table I control-hardware parameter sets.
//! * [`device`] — seeded synthetic machines: every qubit gets unique
//!   calibrated gate pulses, every coupled pair a unique cross-resonance
//!   pulse, every qubit a readout pulse — reproducing the per-device pulse
//!   diversity of Figure 4.
//! * [`library`] — the pulse library (waveform memory image) of a device.
//! * [`memory_model`] — the Section III capacity/bandwidth demand equations.
//! * [`exotic`] — complex multi-qubit and fluxonium gate pulses (Table IX).
//! * [`registry`] — declarative device descriptions (parsed from a simple
//!   text format) plus generators for a realistic fleet, so the whole
//!   pipeline can be driven per device instead of from one fixture.
//!
//! # Role in the COMPAQT pipeline
//!
//! This crate is stage 0 of the reproduction: it *produces* the waveform
//! libraries that `compaqt-core` compresses and the modelled hardware
//! engine decompresses, and the [`memory_model`] equations that motivate
//! compressing them at all (capacity and bandwidth demand versus qubit
//! count). Everything here is deterministic under a seed, so every
//! downstream figure is reproducible bit-for-bit. Waveforms are plain
//! `f64` I/Q pairs in `[-1, 1)`; quantization to the 16-bit DAC format
//! happens inside the codec, not here.
//!
//! # Example
//!
//! ```
//! use compaqt_pulse::device::Device;
//! use compaqt_pulse::vendor::Vendor;
//!
//! // A 16-qubit IBM-style machine ("Guadalupe-like"), deterministic seed.
//! let device = Device::synthesize(Vendor::Ibm, 16, 0xC0FFEE);
//! let library = device.pulse_library();
//! // Every qubit has unique calibrated X/SX pulses plus readout, and each
//! // coupled pair a CR pulse.
//! assert!(library.len() > 16 * 3);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod device;
pub mod exotic;
pub mod fdm;
pub mod library;
pub mod memory_model;
pub mod registry;
pub mod shapes;
pub mod topology;
pub mod vendor;
pub mod waveform;

pub use device::Device;
pub use library::{GateId, PulseLibrary};
pub use registry::{DeviceSpec, Registry, RegistryError};
pub use vendor::{Vendor, VendorParams};
pub use waveform::Waveform;
