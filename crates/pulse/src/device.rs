//! Synthetic device models with per-qubit calibrated pulses.
//!
//! The paper reads calibration data from real IBM backends. We substitute a
//! seeded synthetic model: every qubit gets unique gate-pulse parameters
//! drawn from realistic ranges, reproducing the per-qubit pulse diversity
//! of Figure 4 (every π pulse on a machine is different). The *shape class*
//! — smooth, band-limited envelopes — is what determines compressibility,
//! and that is preserved exactly.

use crate::library::{GateId, GateKind, PulseLibrary};
use crate::shapes::{Drag, GaussianSquare, PulseShape};
use crate::topology::Topology;
use crate::vendor::{Vendor, VendorParams};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Per-qubit calibration constants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QubitCalibration {
    /// Qubit transition frequency in GHz.
    pub frequency_ghz: f64,
    /// Anharmonicity in GHz (negative for transmons).
    pub anharmonicity_ghz: f64,
    /// π-pulse (X) peak amplitude.
    pub x_amp: f64,
    /// π/2-pulse (SX) peak amplitude.
    pub sx_amp: f64,
    /// Gaussian sigma as a fraction of the 1Q gate duration.
    pub sigma_frac: f64,
    /// DRAG coefficient.
    pub beta: f64,
    /// Readout pulse amplitude.
    pub readout_amp: f64,
}

/// Per-coupled-pair calibration constants (cross-resonance drive).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairCalibration {
    /// CR plateau amplitude.
    pub cr_amp: f64,
    /// Plateau width as a fraction of the 2Q gate duration.
    pub width_frac: f64,
    /// Ramp sigma as a fraction of the ramp length.
    pub sigma_frac: f64,
}

/// A synthetic superconducting machine: vendor parameters, topology, and
/// unique per-qubit / per-pair calibrations.
#[derive(Debug)]
pub struct Device {
    name: String,
    params: VendorParams,
    n_qubits: usize,
    qubits: Vec<QubitCalibration>,
    /// Directed pair calibrations, one per (control, target) ordering.
    pairs: Vec<((usize, usize), PairCalibration)>,
    library_cache: Mutex<Option<Arc<PulseLibrary>>>,
}

impl Clone for Device {
    fn clone(&self) -> Self {
        Device {
            name: self.name.clone(),
            params: self.params,
            n_qubits: self.n_qubits,
            qubits: self.qubits.clone(),
            pairs: self.pairs.clone(),
            library_cache: Mutex::new(None),
        }
    }
}

impl Device {
    /// Synthesizes an `n`-qubit machine for a vendor archetype from a
    /// deterministic seed.
    ///
    /// The same `(vendor, n, seed)` triple always produces the same device,
    /// so experiments are reproducible. Seeds play the role of distinct
    /// physical machines: the paper's IBM Bogota / Guadalupe / Hanoi / ...
    /// become distinct seeds at their qubit counts (see
    /// [`Device::named_machine`]).
    pub fn synthesize(vendor: Vendor, n: usize, seed: u64) -> Self {
        let edges = vendor.params().topology.edges(n);
        Device::synthesize_with_edges(vendor, n, seed, &edges)
    }

    /// Synthesizes a machine with an explicit coupling map instead of the
    /// vendor's default topology — used to build devices matching a
    /// surface-code patch or any experimental layout.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or an edge references a qubit out of range.
    pub fn synthesize_with_edges(
        vendor: Vendor,
        n: usize,
        seed: u64,
        edges: &[(usize, usize)],
    ) -> Self {
        Device::synthesize_configured(vendor.params(), n, seed, edges)
    }

    /// Synthesizes a machine from an explicit parameter set and coupling
    /// map — the fully configured entry point the declarative
    /// [`crate::registry`] builds through. `params` may differ from a
    /// stock [`Vendor::params`] set (e.g. a `sample-rate` override);
    /// calibration draws depend only on `(params, n, seed, edges)`, so a
    /// stock parameter set reproduces [`Device::synthesize_with_edges`]
    /// bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or an edge references a qubit out of range.
    pub fn synthesize_configured(
        params: VendorParams,
        n: usize,
        seed: u64,
        edges: &[(usize, usize)],
    ) -> Self {
        assert!(n > 0, "device needs at least one qubit");
        assert!(
            edges.iter().all(|&(a, b)| a < n && b < n),
            "coupling edge references a qubit out of range"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let qubits: Vec<QubitCalibration> = (0..n)
            .map(|q| {
                // Frequencies staggered around 5 GHz like IBM devices.
                let frequency_ghz = 4.8 + 0.4 * rng.random::<f64>() + 0.01 * (q % 7) as f64;
                QubitCalibration {
                    frequency_ghz,
                    anharmonicity_ghz: -0.34 + 0.02 * (rng.random::<f64>() - 0.5),
                    x_amp: rng.random_range(0.35..0.65),
                    sx_amp: rng.random_range(0.17..0.33),
                    sigma_frac: rng.random_range(0.22..0.28),
                    beta: rng.random_range(0.10..0.30),
                    readout_amp: rng.random_range(0.20..0.40),
                }
            })
            .collect();
        let mut pairs = Vec::new();
        for &(a, b) in edges {
            for (c, t) in [(a, b), (b, a)] {
                pairs.push((
                    (c, t),
                    PairCalibration {
                        cr_amp: rng.random_range(0.20..0.45),
                        width_frac: rng.random_range(0.70..0.85),
                        sigma_frac: rng.random_range(0.30..0.45),
                    },
                ));
            }
        }
        Device {
            name: format!("{}-{}q-{:08x}", params.name, n, seed & 0xFFFF_FFFF),
            params,
            n_qubits: n,
            qubits,
            pairs,
            library_cache: Mutex::new(None),
        }
    }

    /// Synthesizes the stand-in for one of the paper's named IBM machines.
    ///
    /// | name | qubits |
    /// |------|--------|
    /// | `bogota` | 5 | `guadalupe` | 16 | `toronto`/`montreal`/`mumbai`/`hanoi` | 27 |
    /// | `lima` | 5 | `brooklyn` | 65 | `washington` | 127 |
    ///
    /// # Panics
    ///
    /// Panics for unknown machine names.
    pub fn named_machine(name: &str) -> Self {
        // Named lookups and declarative descriptions share one code path:
        // the builtin registry carries the historical (qubits, seed)
        // pairs, so this route is bit-compatible with the old hand-built
        // table.
        let spec = crate::registry::Registry::builtin()
            .get(&format!("ibm_{name}"))
            .unwrap_or_else(|| panic!("unknown machine name: {name}"));
        spec.build_device().expect("named machines are transmon specs")
    }

    /// Renames the device (registry-built devices carry their spec name).
    pub(crate) fn set_name(&mut self, name: &str) {
        self.name = name.to_string();
    }

    /// Device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns a drifted copy of this device: every calibration constant
    /// is perturbed by up to `magnitude` (relative), modelling parameter
    /// drift between calibration cycles. The pulse-library cache is
    /// invalidated so the drifted pulses regenerate.
    pub fn with_drift(&self, seed: u64, magnitude: f64) -> Device {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD21F7);
        let mut drifted = self.clone();
        let mut jitter = |v: &mut f64| {
            *v *= 1.0 + magnitude * (rng.random::<f64>() * 2.0 - 1.0);
        };
        for cal in &mut drifted.qubits {
            jitter(&mut cal.x_amp);
            jitter(&mut cal.sx_amp);
            jitter(&mut cal.beta);
            jitter(&mut cal.readout_amp);
        }
        for (_, cal) in &mut drifted.pairs {
            jitter(&mut cal.cr_amp);
        }
        drifted.name = format!("{}*", self.name);
        drifted
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The vendor parameter set.
    pub fn params(&self) -> &VendorParams {
        &self.params
    }

    /// The connectivity family.
    pub fn topology(&self) -> Topology {
        self.params.topology
    }

    /// Calibration of qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn qubit(&self, q: usize) -> &QubitCalibration {
        &self.qubits[q]
    }

    /// Directed coupled pairs and their calibrations.
    pub fn pairs(&self) -> &[((usize, usize), PairCalibration)] {
        &self.pairs
    }

    /// The π-pulse (X gate) waveform of qubit `q` — what Figure 4 plots
    /// for every qubit of a machine.
    pub fn pi_pulse(&self, q: usize) -> crate::waveform::Waveform {
        let cal = &self.qubits[q];
        let p = &self.params;
        let n = p.samples_for(p.tau_1q_ns);
        let drag = Drag::new(n, cal.x_amp, cal.sigma_frac * n as f64, cal.beta);
        drag.to_waveform(&format!("X(q{q})"), p.sampling_rate_gs)
    }

    /// Builds (and caches) the full pulse library: every 1Q gate per qubit,
    /// every directed 2Q gate per coupled pair, and a readout pulse per
    /// qubit — the waveform-memory image of Section III.
    pub fn pulse_library(&self) -> Arc<PulseLibrary> {
        let mut cache = self.library_cache.lock();
        if let Some(lib) = cache.as_ref() {
            return Arc::clone(lib);
        }
        let lib = Arc::new(self.build_library());
        *cache = Some(Arc::clone(&lib));
        lib
    }

    fn build_library(&self) -> PulseLibrary {
        let p = &self.params;
        let mut lib = PulseLibrary::new();
        let n1 = p.samples_for(p.tau_1q_ns);
        let nr = p.samples_for(p.tau_readout_ns);
        for (q, cal) in self.qubits.iter().enumerate() {
            let qi = q as u16;
            match p.vendor {
                Vendor::Ibm => {
                    let x = Drag::new(n1, cal.x_amp, cal.sigma_frac * n1 as f64, cal.beta);
                    lib.insert(
                        GateId::single(GateKind::X, qi),
                        x.to_waveform(&format!("X(q{q})"), p.sampling_rate_gs),
                    );
                    let sx = Drag::new(n1, cal.sx_amp, cal.sigma_frac * n1 as f64, cal.beta);
                    lib.insert(
                        GateId::single(GateKind::Sx, qi),
                        sx.to_waveform(&format!("SX(q{q})"), p.sampling_rate_gs),
                    );
                }
                Vendor::Google => {
                    let px = Drag::new(n1, cal.x_amp, cal.sigma_frac * n1 as f64, cal.beta);
                    lib.insert(
                        GateId::single(GateKind::PhasedXz, qi),
                        px.to_waveform(&format!("PhXZ(q{q})"), p.sampling_rate_gs),
                    );
                }
            }
            // Readout: flat-top with ~80% plateau.
            let meas =
                GaussianSquare::new(nr, cal.readout_amp, 0.35 * (nr / 10) as f64, nr * 8 / 10);
            lib.insert(
                GateId::single(GateKind::Measure, qi),
                meas.to_waveform(&format!("Meas(q{q})"), p.sampling_rate_gs),
            );
        }
        let n2 = p.samples_for(p.tau_2q_ns);
        for ((c, t), cal) in &self.pairs {
            let width = (cal.width_frac * n2 as f64) as usize;
            let ramp = (n2 - width) / 2;
            let gs =
                GaussianSquare::new(n2, cal.cr_amp, cal.sigma_frac * ramp.max(2) as f64, width);
            match p.vendor {
                Vendor::Ibm => {
                    lib.insert(
                        GateId::pair(GateKind::Cx, *c as u16, *t as u16),
                        gs.to_waveform(&format!("CX(q{c},q{t})"), p.sampling_rate_gs),
                    );
                }
                Vendor::Google => {
                    // fsim and iSWAP drives per directed pair.
                    lib.insert(
                        GateId::pair(GateKind::Fsim, *c as u16, *t as u16),
                        gs.to_waveform(&format!("fsim(q{c},q{t})"), p.sampling_rate_gs),
                    );
                    let iswap = GaussianSquare::new(
                        n2,
                        cal.cr_amp * 0.9,
                        cal.sigma_frac * ramp.max(2) as f64,
                        width,
                    );
                    lib.insert(
                        GateId::pair(GateKind::ISwap, *c as u16, *t as u16),
                        iswap.to_waveform(&format!("iSWAP(q{c},q{t})"), p.sampling_rate_gs),
                    );
                }
            }
        }
        lib
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesis_is_deterministic() {
        let a = Device::synthesize(Vendor::Ibm, 5, 42);
        let b = Device::synthesize(Vendor::Ibm, 5, 42);
        assert_eq!(a.qubit(3).x_amp, b.qubit(3).x_amp);
        assert_eq!(a.pairs().len(), b.pairs().len());
    }

    #[test]
    fn different_seeds_differ() {
        let a = Device::synthesize(Vendor::Ibm, 5, 1);
        let b = Device::synthesize(Vendor::Ibm, 5, 2);
        assert_ne!(a.qubit(0).x_amp, b.qubit(0).x_amp);
    }

    #[test]
    fn every_qubit_has_unique_pi_pulse() {
        // Figure 4: all pi pulses on a machine differ.
        let d = Device::synthesize(Vendor::Ibm, 27, 7);
        let mut amps: Vec<f64> = (0..27).map(|q| d.qubit(q).x_amp).collect();
        amps.sort_by(f64::total_cmp);
        amps.dedup();
        assert_eq!(amps.len(), 27);
    }

    #[test]
    fn library_contains_all_gates() {
        let d = Device::synthesize(Vendor::Ibm, 16, 3);
        let lib = d.pulse_library();
        let edges = d.topology().edges(16).len();
        // X + SX + Measure per qubit, CX per directed pair.
        assert_eq!(lib.len(), 16 * 3 + edges * 2);
    }

    #[test]
    fn library_is_cached() {
        let d = Device::synthesize(Vendor::Ibm, 5, 3);
        let a = d.pulse_library();
        let b = d.pulse_library();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn ibm_guadalupe_library_is_dozens_of_waveforms() {
        // Figure 11 uses 132 waveforms from IBM Guadalupe; Qiskit counts
        // each echoed-CR sub-pulse separately, we store one CR waveform per
        // directed pair, so our count is lower but the same order.
        let d = Device::named_machine("guadalupe");
        let lib = d.pulse_library();
        assert!((60..=140).contains(&lib.len()), "got {} waveforms", lib.len());
    }

    #[test]
    fn per_qubit_memory_close_to_table_i() {
        // Table I: ~18KB per qubit on IBM machines.
        let d = Device::named_machine("guadalupe");
        let lib = d.pulse_library();
        let per_qubit = lib.total_storage_bytes(32) as f64 / 16.0;
        assert!((14_000.0..22_000.0).contains(&per_qubit), "got {per_qubit} bytes/qubit");
    }

    #[test]
    fn google_library_uses_google_gates() {
        let d = Device::synthesize(Vendor::Google, 9, 11);
        let lib = d.pulse_library();
        assert!(lib.of_kind(&GateKind::PhasedXz).count() == 9);
        assert!(lib.of_kind(&GateKind::Fsim).count() > 0);
        assert!(lib.of_kind(&GateKind::X).count() == 0);
    }

    #[test]
    fn cx_pulses_are_flat_top() {
        let d = Device::synthesize(Vendor::Ibm, 5, 9);
        let lib = d.pulse_library();
        let (_, wf) = lib.of_kind(&GateKind::Cx).next().unwrap();
        assert!(wf.flat_top_plateau(200).is_some(), "CR pulse has a plateau");
    }

    #[test]
    fn named_machines_have_expected_sizes() {
        assert_eq!(Device::named_machine("bogota").n_qubits(), 5);
        assert_eq!(Device::named_machine("guadalupe").n_qubits(), 16);
        assert_eq!(Device::named_machine("hanoi").n_qubits(), 27);
        assert_eq!(Device::named_machine("washington").n_qubits(), 127);
    }

    #[test]
    #[should_panic(expected = "unknown machine")]
    fn unknown_machine_panics() {
        Device::named_machine("osaka");
    }

    #[test]
    fn clone_preserves_calibrations() {
        let d = Device::synthesize(Vendor::Ibm, 5, 123);
        let c = d.clone();
        assert_eq!(d.qubit(2).beta, c.qubit(2).beta);
        assert_eq!(d.name(), c.name());
    }
}
