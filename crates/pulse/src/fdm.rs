//! Frequency-division multiplexing (FDM) of qubit drives.
//!
//! RFSoC platforms can drive 100+ qubits per board by mixing several
//! qubits' waveforms onto one wideband DAC channel at different
//! intermediate frequencies (Sections I and III-B). The catch the paper
//! leans on: *before* the waveforms are mixed, each must be stored and
//! generated individually — so FDM multiplies the waveform-memory
//! bandwidth demand per DAC rather than reducing it, which is exactly the
//! bottleneck COMPAQT removes.

use crate::waveform::Waveform;
use serde::{Deserialize, Serialize};

/// An FDM group: several qubit envelopes sharing one DAC at distinct
/// intermediate-frequency offsets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MuxGroup {
    /// Intermediate-frequency offsets in MHz, one per multiplexed drive.
    pub offsets_mhz: Vec<f64>,
}

impl MuxGroup {
    /// Creates a group with evenly spaced offsets covering `span_mhz`.
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`.
    pub fn evenly_spaced(lanes: usize, span_mhz: f64) -> Self {
        assert!(lanes > 0, "a mux group needs at least one lane");
        let step = if lanes > 1 { span_mhz / (lanes - 1) as f64 } else { 0.0 };
        MuxGroup { offsets_mhz: (0..lanes).map(|k| -span_mhz / 2.0 + step * k as f64).collect() }
    }

    /// Number of multiplexed drives.
    pub fn lanes(&self) -> usize {
        self.offsets_mhz.len()
    }

    /// Digitally up-converts and sums the envelopes onto one DAC stream:
    /// `out(t) = sum_k (I_k + iQ_k)(t) * e^{i 2 pi f_k t} / sqrt(lanes)`.
    ///
    /// All inputs must share a sample rate; shorter waveforms are treated
    /// as zero-padded. The `1/sqrt(lanes)` scaling keeps typical peaks in
    /// range (a real system would crest-factor optimize the phases).
    ///
    /// # Panics
    ///
    /// Panics if the waveform count differs from the lane count, the list
    /// is empty, or sample rates differ.
    pub fn multiplex(&self, waveforms: &[&Waveform]) -> Waveform {
        assert_eq!(waveforms.len(), self.lanes(), "one waveform per lane");
        assert!(!waveforms.is_empty(), "mux group cannot be empty");
        let rate = waveforms[0].sample_rate_gs();
        assert!(
            waveforms.iter().all(|w| (w.sample_rate_gs() - rate).abs() < 1e-12),
            "all lanes must share a sample rate"
        );
        let len = waveforms.iter().map(|w| w.len()).max().expect("non-empty");
        let norm = 1.0 / (self.lanes() as f64).sqrt();
        let mut i_out = vec![0.0; len];
        let mut q_out = vec![0.0; len];
        for (wf, &f_mhz) in waveforms.iter().zip(&self.offsets_mhz) {
            // Phase advance per sample: 2 pi f / fs (f in GHz-compatible units).
            let w = 2.0 * std::f64::consts::PI * (f_mhz * 1e-3) / rate;
            for t in 0..wf.len() {
                let (s, c) = (w * t as f64).sin_cos();
                let (iv, qv) = (wf.i()[t], wf.q()[t]);
                i_out[t] += norm * (iv * c - qv * s);
                q_out[t] += norm * (iv * s + qv * c);
            }
        }
        Waveform::new(format!("fdm[{}]", self.lanes()), i_out, q_out, rate)
    }

    /// Waveform-memory read bandwidth this group demands while all lanes
    /// play concurrently, in GB/s: each lane streams its own envelope
    /// before mixing (`lanes * fs * Ns`).
    pub fn memory_bandwidth_gb(&self, sample_rate_gs: f64, sample_bits: u32) -> f64 {
        self.lanes() as f64 * sample_rate_gs * f64::from(sample_bits) / 8.0
    }

    /// DAC output bandwidth (one channel regardless of lane count).
    pub fn dac_bandwidth_gb(&self, sample_rate_gs: f64, sample_bits: u32) -> f64 {
        sample_rate_gs * f64::from(sample_bits) / 8.0
    }
}

/// Single-bin DFT magnitude (Goertzel-style) used to verify lane
/// placement in tests and examples.
pub fn tone_magnitude(waveform: &Waveform, freq_mhz: f64) -> f64 {
    let w = 2.0 * std::f64::consts::PI * (freq_mhz * 1e-3) / waveform.sample_rate_gs();
    let (mut re, mut im) = (0.0f64, 0.0f64);
    for t in 0..waveform.len() {
        let (s, c) = (w * t as f64).sin_cos();
        // Project the complex envelope onto e^{i w t}.
        re += waveform.i()[t] * c + waveform.q()[t] * s;
        im += waveform.q()[t] * c - waveform.i()[t] * s;
    }
    (re * re + im * im).sqrt() / waveform.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapes::{Gaussian, PulseShape};

    fn envelope(amp: f64) -> Waveform {
        Gaussian::new(454, amp, 80.0).to_waveform("g", 4.54)
    }

    #[test]
    fn single_lane_zero_offset_is_identity_up_to_norm() {
        let wf = envelope(0.5);
        let group = MuxGroup { offsets_mhz: vec![0.0] };
        let muxed = group.multiplex(&[&wf]);
        assert!(wf.mse(&muxed) < 1e-20);
    }

    #[test]
    fn lanes_land_on_their_carriers() {
        let a = envelope(0.5);
        let b = envelope(0.5);
        let group = MuxGroup { offsets_mhz: vec![-150.0, 150.0] };
        let muxed = group.multiplex(&[&a, &b]);
        let on_carrier = tone_magnitude(&muxed, 150.0);
        let off_carrier = tone_magnitude(&muxed, 450.0);
        assert!(on_carrier > 10.0 * off_carrier, "carrier {on_carrier} vs off {off_carrier}");
    }

    #[test]
    fn evenly_spaced_offsets_are_symmetric() {
        let g = MuxGroup::evenly_spaced(5, 400.0);
        assert_eq!(g.lanes(), 5);
        assert!((g.offsets_mhz[0] + 200.0).abs() < 1e-12);
        assert!((g.offsets_mhz[4] - 200.0).abs() < 1e-12);
        assert!((g.offsets_mhz[2]).abs() < 1e-12);
    }

    #[test]
    fn memory_bandwidth_scales_with_lanes_but_dac_does_not() {
        let g = MuxGroup::evenly_spaced(8, 800.0);
        let mem = g.memory_bandwidth_gb(6.0, 32);
        let dac = g.dac_bandwidth_gb(6.0, 32);
        assert!((mem / dac - 8.0).abs() < 1e-12);
    }

    #[test]
    fn mux_peak_stays_in_range() {
        let wfs: Vec<Waveform> = (0..4).map(|k| envelope(0.4 + 0.05 * k as f64)).collect();
        let refs: Vec<&Waveform> = wfs.iter().collect();
        let g = MuxGroup::evenly_spaced(4, 600.0);
        let muxed = g.multiplex(&refs);
        assert!(muxed.peak_amplitude() < 1.0, "got {}", muxed.peak_amplitude());
    }

    #[test]
    #[should_panic(expected = "one waveform per lane")]
    fn lane_count_mismatch_panics() {
        let wf = envelope(0.3);
        MuxGroup::evenly_spaced(2, 100.0).multiplex(&[&wf]);
    }
}
