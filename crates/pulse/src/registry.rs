//! Declarative device registry: fleet-scale scenario descriptions.
//!
//! Every test and benchmark used to exercise one hand-built 16-qubit
//! library. This module is the probe-rs move applied to quantum control:
//! a *declarative* device description (qubit count, topology, vendor gate
//! set, sample rate, FDM plan) that one pipeline consumes, plus
//! programmatic generators for a realistic fleet — heavy-hex machines at
//! 27/65/127/433 qubits, surface-code patches sized by code distance, a
//! Sycamore-style grid and the Table IX exotic set.
//!
//! # Text format
//!
//! Descriptions are parsed from a deliberately simple line format (no
//! serde — the vendored derives are no-op markers):
//!
//! ```text
//! # comments run to end of line
//! device hex-65
//!   class transmon        # transmon (default) | exotic
//!   vendor ibm            # ibm (default) | google
//!   topology heavy-hex    # line | heavy-hex | grid | surface:<distance>
//!   qubits 65             # required unless topology is surface:<d>
//!   seed 0xf1ee7065       # decimal or 0x-hex, defaults to 0xc0dec
//!   sample-rate 4.54      # optional GS/s override of the vendor DAC rate
//!   fdm 8 400             # optional: <lanes> <span-mhz> mux plan
//! end
//! ```
//!
//! A `surface:<d>` topology derives its qubit count from the code
//! distance — an unrotated distance-`d` patch is a `(2d-1) x (2d-1)`
//! qubit lattice, so `qubits`, when given, must equal `(2d-1)^2`.
//! `class exotic` devices are the fixed Table IX pulse set
//! ([`crate::exotic::table_ix_library`]); only `seed` may be configured.
//!
//! Parsing is total: hostile bytes produce a typed [`RegistryError`],
//! never a panic, and [`Registry::to_text`] → [`Registry::parse`] is an
//! exact round trip.

use crate::device::Device;
use crate::exotic;
use crate::fdm::MuxGroup;
use crate::library::PulseLibrary;
use crate::topology::Topology;
use crate::vendor::Vendor;
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;
use std::sync::{Arc, OnceLock};

/// Upper bound on declared qubit counts (sanity stop for hostile input).
pub const MAX_QUBITS: usize = 1024;
/// Largest accepted surface-code distance (`surface:16` is 961 qubits).
pub const MAX_SURFACE_DISTANCE: usize = 16;
/// Upper bound on FDM lanes sharing one DAC.
pub const MAX_FDM_LANES: usize = 64;
/// Maximum device-name length in bytes.
pub const MAX_NAME_LEN: usize = 48;
/// Seed used when a description omits the `seed` key.
pub const DEFAULT_SEED: u64 = 0xC0DEC;
/// Qubit count of the fixed Table IX exotic set (gates act on qubits 0–3).
pub const EXOTIC_QUBITS: usize = 4;

/// What kind of pulse substrate a description builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceClass {
    /// A seeded synthetic transmon machine ([`Device`]).
    Transmon,
    /// The fixed Table IX exotic / fluxonium pulse set.
    Exotic,
}

impl DeviceClass {
    /// The text-format token for this class.
    pub fn token(&self) -> &'static str {
        match self {
            DeviceClass::Transmon => "transmon",
            DeviceClass::Exotic => "exotic",
        }
    }
}

/// Connectivity named by a description: the three [`Topology`] families
/// plus surface-code patches sized by code distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TopologyKind {
    /// A 1-D chain.
    Line,
    /// IBM-style heavy-hexagonal lattice.
    HeavyHex,
    /// Square grid.
    Grid,
    /// An unrotated surface-code patch of the given code distance: a
    /// `(2d-1) x (2d-1)` data+ancilla lattice whose couplings are exactly
    /// the square-grid edges on `(2d-1)^2` qubits.
    Surface {
        /// Code distance `d` (patch side is `2d-1` qubits).
        distance: usize,
    },
}

impl TopologyKind {
    /// The base connectivity family used to generate edges.
    pub fn base(&self) -> Topology {
        match self {
            TopologyKind::Line => Topology::Line,
            TopologyKind::HeavyHex => Topology::HeavyHex,
            TopologyKind::Grid | TopologyKind::Surface { .. } => Topology::Grid,
        }
    }

    /// Undirected coupling edges for an `n`-qubit device of this kind.
    pub fn edges(&self, n: usize) -> Vec<(usize, usize)> {
        self.base().edges(n)
    }

    /// The text-format token (`line`, `heavy-hex`, `grid`, `surface:<d>`).
    pub fn label(&self) -> String {
        match self {
            TopologyKind::Line => "line".into(),
            TopologyKind::HeavyHex => "heavy-hex".into(),
            TopologyKind::Grid => "grid".into(),
            TopologyKind::Surface { distance } => format!("surface:{distance}"),
        }
    }
}

/// A frequency-division-multiplexing plan: how many qubit drives share
/// one wideband DAC and over what IF span.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FdmSpec {
    /// Drives multiplexed per DAC channel.
    pub lanes: usize,
    /// Total intermediate-frequency span in MHz.
    pub span_mhz: f64,
}

/// One declarative device description — everything needed to rebuild the
/// device and its pulse library deterministically.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Registry-unique device name (`[A-Za-z0-9_.-]{1,48}`).
    pub name: String,
    /// Pulse substrate class.
    pub class: DeviceClass,
    /// Vendor archetype: gate set, pulse shapes, DAC defaults.
    pub vendor: Vendor,
    /// Connectivity.
    pub topology: TopologyKind,
    /// Resolved qubit count (derived for surface patches and exotic sets).
    pub qubits: usize,
    /// Calibration seed: same spec, same seed → bit-identical library.
    pub seed: u64,
    /// Optional DAC sample-rate override in GS/s.
    pub sample_rate_gs: Option<f64>,
    /// Optional FDM plan.
    pub fdm: Option<FdmSpec>,
}

impl DeviceSpec {
    /// Creates a transmon device description.
    pub fn transmon(
        name: &str,
        vendor: Vendor,
        topology: TopologyKind,
        qubits: usize,
        seed: u64,
    ) -> Self {
        let qubits = match topology {
            TopologyKind::Surface { distance } => surface_qubits(distance),
            _ => qubits,
        };
        DeviceSpec {
            name: name.to_string(),
            class: DeviceClass::Transmon,
            vendor,
            topology,
            qubits,
            seed,
            sample_rate_gs: None,
            fdm: None,
        }
    }

    /// Creates a Table IX exotic-set description.
    pub fn exotic(name: &str, seed: u64) -> Self {
        DeviceSpec {
            name: name.to_string(),
            class: DeviceClass::Exotic,
            vendor: Vendor::Ibm,
            topology: TopologyKind::Line,
            qubits: EXOTIC_QUBITS,
            seed,
            sample_rate_gs: None,
            fdm: None,
        }
    }

    /// Attaches an FDM plan (builder style).
    pub fn with_fdm(mut self, lanes: usize, span_mhz: f64) -> Self {
        self.fdm = Some(FdmSpec { lanes, span_mhz });
        self
    }

    /// Overrides the vendor DAC sample rate (builder style).
    pub fn with_sample_rate(mut self, rate_gs: f64) -> Self {
        self.sample_rate_gs = Some(rate_gs);
        self
    }

    /// Resolved qubit count.
    pub fn n_qubits(&self) -> usize {
        self.qubits
    }

    /// Checks every semantic bound the parser enforces line-by-line, for
    /// programmatically constructed specs.
    pub fn validate(&self) -> Result<(), RegistryError> {
        if !valid_name(&self.name) {
            return Err(RegistryError::InvalidDeviceName { line: 0, name: snip(&self.name) });
        }
        let fail =
            |reason: String| Err(RegistryError::InvalidSpec { device: self.name.clone(), reason });
        if self.qubits == 0 || self.qubits > MAX_QUBITS {
            return fail(format!("qubit count {} outside 1..={MAX_QUBITS}", self.qubits));
        }
        if let TopologyKind::Surface { distance } = self.topology {
            if !(2..=MAX_SURFACE_DISTANCE).contains(&distance) {
                return fail(format!(
                    "surface distance {distance} outside 2..={MAX_SURFACE_DISTANCE}"
                ));
            }
            if self.qubits != surface_qubits(distance) {
                return Err(RegistryError::SurfaceSizeMismatch {
                    device: self.name.clone(),
                    expected: surface_qubits(distance),
                    got: self.qubits,
                });
            }
        }
        if self.class == DeviceClass::Exotic && self.qubits != EXOTIC_QUBITS {
            return fail(format!("exotic sets are fixed at {EXOTIC_QUBITS} qubits"));
        }
        if let Some(rate) = self.sample_rate_gs {
            if !rate.is_finite() || rate <= 0.0 || rate > 1000.0 {
                return fail(format!("sample rate {rate} GS/s outside (0, 1000]"));
            }
        }
        if let Some(fdm) = self.fdm {
            if fdm.lanes == 0 || fdm.lanes > MAX_FDM_LANES {
                return fail(format!("fdm lanes {} outside 1..={MAX_FDM_LANES}", fdm.lanes));
            }
            if !fdm.span_mhz.is_finite() || fdm.span_mhz < 0.0 || fdm.span_mhz > 100_000.0 {
                return fail(format!("fdm span {} MHz outside [0, 100000]", fdm.span_mhz));
            }
        }
        Ok(())
    }

    /// Builds the synthetic machine this spec describes. Returns `None`
    /// for [`DeviceClass::Exotic`] specs, which have a pulse library but
    /// no per-qubit calibrated machine model.
    pub fn build_device(&self) -> Option<Device> {
        match self.class {
            DeviceClass::Exotic => None,
            DeviceClass::Transmon => {
                let mut params = self.vendor.params();
                if let Some(rate) = self.sample_rate_gs {
                    params.sampling_rate_gs = rate;
                }
                let edges = self.topology.edges(self.qubits);
                let mut device =
                    Device::synthesize_configured(params, self.qubits, self.seed, &edges);
                device.set_name(&self.name);
                Some(device)
            }
        }
    }

    /// Builds the full pulse library for this device — the waveform-memory
    /// image the compression pipeline consumes.
    pub fn build_library(&self) -> Arc<PulseLibrary> {
        match self.class {
            DeviceClass::Exotic => Arc::new(exotic::table_ix_library(self.seed)),
            DeviceClass::Transmon => {
                self.build_device().expect("transmon specs build a device").pulse_library()
            }
        }
    }

    /// The FDM mux group this spec declares, if any.
    pub fn mux_group(&self) -> Option<MuxGroup> {
        self.fdm.map(|f| MuxGroup::evenly_spaced(f.lanes, f.span_mhz))
    }

    /// Waveform-memory read bandwidth demanded by the FDM plan in GB/s
    /// (each lane streams its own envelope before mixing), if one is
    /// declared.
    pub fn fdm_memory_bandwidth_gb(&self) -> Option<f64> {
        let params = self.vendor.params();
        let rate = self.sample_rate_gs.unwrap_or(params.sampling_rate_gs);
        self.mux_group().map(|g| g.memory_bandwidth_gb(rate, params.sample_bits))
    }

    fn write_text(&self, out: &mut String) {
        let _ = writeln!(out, "device {}", self.name);
        let _ = writeln!(out, "  class {}", self.class.token());
        if self.class == DeviceClass::Transmon {
            let _ = writeln!(out, "  vendor {}", vendor_token(self.vendor));
            let _ = writeln!(out, "  topology {}", self.topology.label());
            let _ = writeln!(out, "  qubits {}", self.qubits);
        }
        let _ = writeln!(out, "  seed 0x{:x}", self.seed);
        if let Some(rate) = self.sample_rate_gs {
            let _ = writeln!(out, "  sample-rate {rate}");
        }
        if let Some(fdm) = self.fdm {
            let _ = writeln!(out, "  fdm {} {}", fdm.lanes, fdm.span_mhz);
        }
        let _ = writeln!(out, "end");
    }
}

/// Qubit count of an unrotated distance-`d` surface patch.
pub fn surface_qubits(distance: usize) -> usize {
    let side = 2 * distance - 1;
    side * side
}

/// Everything that can go wrong parsing or assembling a description.
///
/// Line numbers are 1-based positions in the parsed text; programmatic
/// (non-text) failures report line `0`. Offending values are truncated to
/// a short prefix so hostile input cannot balloon error memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// Input bytes are not UTF-8.
    NotUtf8,
    /// A key line appeared outside any `device ... end` block.
    JunkOutsideDevice {
        /// Offending line.
        line: usize,
    },
    /// A `device` line appeared inside an open block.
    NestedDevice {
        /// Offending line.
        line: usize,
    },
    /// A `device` line with no name.
    MissingDeviceName {
        /// Offending line.
        line: usize,
    },
    /// Device name is empty, too long, or uses characters outside
    /// `[A-Za-z0-9_.-]`.
    InvalidDeviceName {
        /// Offending line (0 when constructed programmatically).
        line: usize,
        /// Truncated offending name.
        name: String,
    },
    /// Extra tokens after a complete directive.
    TrailingTokens {
        /// Offending line.
        line: usize,
    },
    /// The text ended inside an open `device` block.
    UnterminatedDevice {
        /// Name of the unterminated device.
        name: String,
    },
    /// Two devices share a name.
    DuplicateDevice {
        /// Line of the second definition (0 when pushed programmatically).
        line: usize,
        /// The colliding name.
        name: String,
    },
    /// An `end` with no open `device` block.
    StrayEnd {
        /// Offending line.
        line: usize,
    },
    /// A key with too few value tokens.
    MissingValue {
        /// Offending line.
        line: usize,
        /// The key missing its value.
        key: String,
    },
    /// An unrecognized key inside a device block.
    UnknownKey {
        /// Offending line.
        line: usize,
        /// Truncated offending key.
        key: String,
    },
    /// The same key given twice in one device block.
    DuplicateKey {
        /// Line of the second occurrence.
        line: usize,
        /// The repeated key.
        key: String,
    },
    /// A value token that does not parse for its key.
    InvalidValue {
        /// Offending line.
        line: usize,
        /// The key.
        key: String,
        /// Truncated offending value.
        value: String,
    },
    /// A count that parsed but violates its bound (qubits, lanes,
    /// surface distance).
    CountOutOfRange {
        /// Offending line.
        line: usize,
        /// The key.
        key: String,
        /// The out-of-range count.
        got: u64,
    },
    /// A key not permitted for the device's class (exotic sets only
    /// accept `class` and `seed`).
    KeyNotAllowed {
        /// Line where the key was set.
        line: usize,
        /// The disallowed key.
        key: String,
    },
    /// A required key was never given.
    MissingField {
        /// The device missing the field.
        device: String,
        /// The missing key.
        key: String,
    },
    /// `qubits` disagrees with the count derived from `surface:<d>`.
    SurfaceSizeMismatch {
        /// The device.
        device: String,
        /// `(2d-1)^2` for the declared distance.
        expected: usize,
        /// The declared qubit count.
        got: usize,
    },
    /// A programmatically built spec violates a semantic bound.
    InvalidSpec {
        /// The device.
        device: String,
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::NotUtf8 => write!(f, "registry text is not valid UTF-8"),
            RegistryError::JunkOutsideDevice { line } => {
                write!(f, "line {line}: directive outside any `device ... end` block")
            }
            RegistryError::NestedDevice { line } => {
                write!(f, "line {line}: `device` inside an open device block")
            }
            RegistryError::MissingDeviceName { line } => {
                write!(f, "line {line}: `device` needs a name")
            }
            RegistryError::InvalidDeviceName { line, name } => {
                write!(f, "line {line}: invalid device name {name:?}")
            }
            RegistryError::TrailingTokens { line } => {
                write!(f, "line {line}: trailing tokens after directive")
            }
            RegistryError::UnterminatedDevice { name } => {
                write!(f, "device {name:?} is missing its `end`")
            }
            RegistryError::DuplicateDevice { line, name } => {
                write!(f, "line {line}: duplicate device {name:?}")
            }
            RegistryError::StrayEnd { line } => {
                write!(f, "line {line}: `end` without an open device block")
            }
            RegistryError::MissingValue { line, key } => {
                write!(f, "line {line}: key `{key}` is missing a value")
            }
            RegistryError::UnknownKey { line, key } => {
                write!(f, "line {line}: unknown key {key:?}")
            }
            RegistryError::DuplicateKey { line, key } => {
                write!(f, "line {line}: key `{key}` given twice")
            }
            RegistryError::InvalidValue { line, key, value } => {
                write!(f, "line {line}: invalid value {value:?} for key `{key}`")
            }
            RegistryError::CountOutOfRange { line, key, got } => {
                write!(f, "line {line}: `{key}` count {got} out of range")
            }
            RegistryError::KeyNotAllowed { line, key } => {
                write!(f, "line {line}: key `{key}` not allowed for this device class")
            }
            RegistryError::MissingField { device, key } => {
                write!(f, "device {device:?}: required key `{key}` missing")
            }
            RegistryError::SurfaceSizeMismatch { device, expected, got } => {
                write!(
                    f,
                    "device {device:?}: qubits {got} does not match surface patch size {expected}"
                )
            }
            RegistryError::InvalidSpec { device, reason } => {
                write!(f, "device {device:?}: {reason}")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// An ordered, name-indexed collection of device descriptions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    entries: Vec<DeviceSpec>,
    index: HashMap<String, usize>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Validates and appends a description; rejects duplicate names.
    pub fn push(&mut self, spec: DeviceSpec) -> Result<(), RegistryError> {
        spec.validate()?;
        if self.index.contains_key(&spec.name) {
            return Err(RegistryError::DuplicateDevice { line: 0, name: spec.name });
        }
        self.index.insert(spec.name.clone(), self.entries.len());
        self.entries.push(spec);
        Ok(())
    }

    /// Looks a description up by name.
    pub fn get(&self, name: &str) -> Option<&DeviceSpec> {
        self.index.get(name).map(|&k| &self.entries[k])
    }

    /// Number of descriptions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over descriptions in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &DeviceSpec> {
        self.entries.iter()
    }

    /// Device names in insertion order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|s| s.name.as_str())
    }

    /// Parses registry text. Total: any input yields `Ok` or a typed
    /// [`RegistryError`] — never a panic.
    pub fn parse(text: &str) -> Result<Self, RegistryError> {
        let mut reg = Registry::new();
        let mut current: Option<Pending> = None;
        for (k, raw) in text.lines().enumerate() {
            let line = k + 1;
            let stripped = raw.split('#').next().unwrap_or("").trim();
            if stripped.is_empty() {
                continue;
            }
            let mut tokens = stripped.split_whitespace();
            let head = tokens.next().expect("non-empty line has a first token");
            match head {
                "device" => {
                    if current.is_some() {
                        return Err(RegistryError::NestedDevice { line });
                    }
                    let name = tokens.next().ok_or(RegistryError::MissingDeviceName { line })?;
                    if tokens.next().is_some() {
                        return Err(RegistryError::TrailingTokens { line });
                    }
                    if !valid_name(name) {
                        return Err(RegistryError::InvalidDeviceName { line, name: snip(name) });
                    }
                    current = Some(Pending::new(name));
                }
                "end" => {
                    if tokens.next().is_some() {
                        return Err(RegistryError::TrailingTokens { line });
                    }
                    let pending = current.take().ok_or(RegistryError::StrayEnd { line })?;
                    let spec = pending.finish()?;
                    match reg.push(spec) {
                        Ok(()) => {}
                        Err(RegistryError::DuplicateDevice { name, .. }) => {
                            return Err(RegistryError::DuplicateDevice { line, name });
                        }
                        Err(e) => return Err(e),
                    }
                }
                key => {
                    let pending =
                        current.as_mut().ok_or(RegistryError::JunkOutsideDevice { line })?;
                    let values: Vec<&str> = tokens.collect();
                    pending.set(key, &values, line)?;
                }
            }
        }
        if let Some(pending) = current {
            return Err(RegistryError::UnterminatedDevice { name: pending.name });
        }
        Ok(reg)
    }

    /// Parses raw bytes (UTF-8 validated first).
    pub fn parse_bytes(bytes: &[u8]) -> Result<Self, RegistryError> {
        let text = std::str::from_utf8(bytes).map_err(|_| RegistryError::NotUtf8)?;
        Registry::parse(text)
    }

    /// Serializes every description back to the text format.
    /// `Registry::parse(reg.to_text())` reproduces `reg` exactly.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (k, spec) in self.entries.iter().enumerate() {
            if k > 0 {
                out.push('\n');
            }
            spec.write_text(&mut out);
        }
        out
    }

    /// The built-in fleet plus the paper's named IBM machines — the
    /// registry behind [`Device::named_machine`] and the CI scenario
    /// matrix.
    pub fn builtin() -> &'static Registry {
        static BUILTIN: OnceLock<Registry> = OnceLock::new();
        BUILTIN.get_or_init(|| {
            let mut reg = Registry::new();
            for spec in fleet().into_iter().chain(named_machines()) {
                reg.push(spec).expect("builtin registry entries are valid and unique");
            }
            reg
        })
    }
}

/// Heavy-hex transmon machines at the paper's scaling points: 27 (Falcon),
/// 65 (Hummingbird), 127 (Eagle) and 433 (Osprey) qubits. The ≥65-qubit
/// machines declare FDM plans — the bandwidth-multiplying configuration
/// COMPAQT targets.
pub fn heavy_hex_fleet() -> Vec<DeviceSpec> {
    vec![
        DeviceSpec::transmon("hex-27", Vendor::Ibm, TopologyKind::HeavyHex, 27, 0xF1EE_7027),
        DeviceSpec::transmon("hex-65", Vendor::Ibm, TopologyKind::HeavyHex, 65, 0xF1EE_7065)
            .with_fdm(8, 400.0),
        DeviceSpec::transmon("hex-127", Vendor::Ibm, TopologyKind::HeavyHex, 127, 0xF1EE_7127)
            .with_fdm(8, 400.0),
        DeviceSpec::transmon("hex-433", Vendor::Ibm, TopologyKind::HeavyHex, 433, 0xF1EE_7433)
            .with_fdm(16, 800.0),
    ]
}

/// Surface-code patch devices at distances 3 and 5 (25 and 81 qubits),
/// coupled exactly like `compaqt_quantum`'s unrotated patches.
pub fn surface_fleet() -> Vec<DeviceSpec> {
    vec![
        DeviceSpec::transmon(
            "surface-d3",
            Vendor::Ibm,
            TopologyKind::Surface { distance: 3 },
            0,
            0x5F3,
        ),
        DeviceSpec::transmon(
            "surface-d5",
            Vendor::Ibm,
            TopologyKind::Surface { distance: 5 },
            0,
            0x5F5,
        ),
    ]
}

/// The Table IX exotic / fluxonium pulse set as a registry device.
pub fn exotic_fleet() -> Vec<DeviceSpec> {
    vec![DeviceSpec::exotic("exotic-tableix", 0xE207)]
}

/// The full built-in fleet: heavy-hex scaling points, surface patches, a
/// Sycamore-style Google grid and the exotic set — eight devices spanning
/// both vendors, four topologies and qubit counts from 4 to 433.
pub fn fleet() -> Vec<DeviceSpec> {
    let mut specs = heavy_hex_fleet();
    specs.extend(surface_fleet());
    specs.push(DeviceSpec::transmon("sycamore-53", Vendor::Google, TopologyKind::Grid, 53, 0x51C0));
    specs.extend(exotic_fleet());
    specs
}

/// The paper's named IBM machines as registry descriptions, with the
/// exact `(qubits, seed)` pairs [`Device::named_machine`] has always
/// used — the registry route is bit-compatible with the historical
/// hand-built table.
pub fn named_machines() -> Vec<DeviceSpec> {
    [
        ("bogota", 5, 0xB060),
        ("lima", 5, 0x117A),
        ("guadalupe", 16, 0x60AD),
        ("toronto", 27, 0x7040),
        ("montreal", 27, 0xE041),
        ("mumbai", 27, 0x3BA1),
        ("hanoi", 27, 0x4A01),
        ("brooklyn", 65, 0xB400),
        ("washington", 127, 0x3A50),
    ]
    .into_iter()
    .map(|(name, n, seed)| {
        DeviceSpec::transmon(&format!("ibm_{name}"), Vendor::Ibm, TopologyKind::HeavyHex, n, seed)
    })
    .collect()
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= MAX_NAME_LEN
        && name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'.' || b == b'-')
}

fn vendor_token(vendor: Vendor) -> &'static str {
    match vendor {
        Vendor::Ibm => "ibm",
        Vendor::Google => "google",
    }
}

/// Truncates a hostile token for inclusion in an error.
fn snip(s: &str) -> String {
    const MAX: usize = 32;
    if s.len() <= MAX {
        s.to_string()
    } else {
        let mut cut = MAX;
        while !s.is_char_boundary(cut) {
            cut -= 1;
        }
        format!("{}...", &s[..cut])
    }
}

fn parse_u64(token: &str) -> Option<u64> {
    if let Some(hex) = token.strip_prefix("0x").or_else(|| token.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        token.parse().ok()
    }
}

/// A device block being assembled; each field remembers the line that set
/// it so class-legality errors can point at the right place.
struct Pending {
    name: String,
    class: Option<(DeviceClass, usize)>,
    vendor: Option<(Vendor, usize)>,
    topology: Option<(TopologyKind, usize)>,
    qubits: Option<(usize, usize)>,
    seed: Option<(u64, usize)>,
    sample_rate: Option<(f64, usize)>,
    fdm: Option<(FdmSpec, usize)>,
}

impl Pending {
    fn new(name: &str) -> Self {
        Pending {
            name: name.to_string(),
            class: None,
            vendor: None,
            topology: None,
            qubits: None,
            seed: None,
            sample_rate: None,
            fdm: None,
        }
    }

    fn set(&mut self, key: &str, values: &[&str], line: usize) -> Result<(), RegistryError> {
        let arity = match key {
            "class" | "vendor" | "topology" | "qubits" | "seed" | "sample-rate" => 1,
            "fdm" => 2,
            other => {
                return Err(RegistryError::UnknownKey { line, key: snip(other) });
            }
        };
        if values.len() < arity {
            return Err(RegistryError::MissingValue { line, key: key.to_string() });
        }
        if values.len() > arity {
            return Err(RegistryError::TrailingTokens { line });
        }
        let invalid = |value: &str| RegistryError::InvalidValue {
            line,
            key: key.to_string(),
            value: snip(value),
        };
        let dup = |set: bool| -> Result<(), RegistryError> {
            if set {
                Err(RegistryError::DuplicateKey { line, key: key.to_string() })
            } else {
                Ok(())
            }
        };
        match key {
            "class" => {
                dup(self.class.is_some())?;
                let class = match values[0] {
                    "transmon" => DeviceClass::Transmon,
                    "exotic" => DeviceClass::Exotic,
                    other => return Err(invalid(other)),
                };
                self.class = Some((class, line));
            }
            "vendor" => {
                dup(self.vendor.is_some())?;
                let vendor = match values[0] {
                    "ibm" => Vendor::Ibm,
                    "google" => Vendor::Google,
                    other => return Err(invalid(other)),
                };
                self.vendor = Some((vendor, line));
            }
            "topology" => {
                dup(self.topology.is_some())?;
                let kind = match values[0] {
                    "line" => TopologyKind::Line,
                    "heavy-hex" => TopologyKind::HeavyHex,
                    "grid" => TopologyKind::Grid,
                    other => {
                        let Some(dist) = other.strip_prefix("surface:") else {
                            return Err(invalid(other));
                        };
                        let d = parse_u64(dist).ok_or_else(|| invalid(other))?;
                        if !(2..=MAX_SURFACE_DISTANCE as u64).contains(&d) {
                            return Err(RegistryError::CountOutOfRange {
                                line,
                                key: "topology".to_string(),
                                got: d,
                            });
                        }
                        TopologyKind::Surface { distance: d as usize }
                    }
                };
                self.topology = Some((kind, line));
            }
            "qubits" => {
                dup(self.qubits.is_some())?;
                let n = parse_u64(values[0]).ok_or_else(|| invalid(values[0]))?;
                if n == 0 || n > MAX_QUBITS as u64 {
                    return Err(RegistryError::CountOutOfRange {
                        line,
                        key: "qubits".to_string(),
                        got: n,
                    });
                }
                self.qubits = Some((n as usize, line));
            }
            "seed" => {
                dup(self.seed.is_some())?;
                let seed = parse_u64(values[0]).ok_or_else(|| invalid(values[0]))?;
                self.seed = Some((seed, line));
            }
            "sample-rate" => {
                dup(self.sample_rate.is_some())?;
                let rate: f64 = values[0].parse().map_err(|_| invalid(values[0]))?;
                if !rate.is_finite() || rate <= 0.0 || rate > 1000.0 {
                    return Err(invalid(values[0]));
                }
                self.sample_rate = Some((rate, line));
            }
            "fdm" => {
                dup(self.fdm.is_some())?;
                let lanes = parse_u64(values[0]).ok_or_else(|| invalid(values[0]))?;
                if lanes == 0 || lanes > MAX_FDM_LANES as u64 {
                    return Err(RegistryError::CountOutOfRange {
                        line,
                        key: "fdm".to_string(),
                        got: lanes,
                    });
                }
                let span: f64 = values[1].parse().map_err(|_| invalid(values[1]))?;
                if !span.is_finite() || !(0.0..=100_000.0).contains(&span) {
                    return Err(invalid(values[1]));
                }
                self.fdm = Some((FdmSpec { lanes: lanes as usize, span_mhz: span }, line));
            }
            _ => unreachable!("arity check covers every key"),
        }
        Ok(())
    }

    fn finish(self) -> Result<DeviceSpec, RegistryError> {
        let class = self.class.map_or(DeviceClass::Transmon, |(c, _)| c);
        let seed = self.seed.map_or(DEFAULT_SEED, |(s, _)| s);
        match class {
            DeviceClass::Exotic => {
                for (set_line, key) in [
                    (self.vendor.map(|(_, l)| l), "vendor"),
                    (self.topology.map(|(_, l)| l), "topology"),
                    (self.qubits.map(|(_, l)| l), "qubits"),
                    (self.sample_rate.map(|(_, l)| l), "sample-rate"),
                    (self.fdm.map(|(_, l)| l), "fdm"),
                ] {
                    if let Some(line) = set_line {
                        return Err(RegistryError::KeyNotAllowed { line, key: key.to_string() });
                    }
                }
                Ok(DeviceSpec::exotic(&self.name, seed))
            }
            DeviceClass::Transmon => {
                let vendor = self.vendor.map_or(Vendor::Ibm, |(v, _)| v);
                let topology = self.topology.map_or_else(
                    || match vendor.params().topology {
                        Topology::Line => TopologyKind::Line,
                        Topology::HeavyHex => TopologyKind::HeavyHex,
                        Topology::Grid => TopologyKind::Grid,
                    },
                    |(t, _)| t,
                );
                let qubits = match topology {
                    TopologyKind::Surface { distance } => {
                        let derived = surface_qubits(distance);
                        if let Some((declared, _)) = self.qubits {
                            if declared != derived {
                                return Err(RegistryError::SurfaceSizeMismatch {
                                    device: self.name,
                                    expected: derived,
                                    got: declared,
                                });
                            }
                        }
                        derived
                    }
                    _ => {
                        self.qubits.map(|(n, _)| n).ok_or_else(|| RegistryError::MissingField {
                            device: self.name.clone(),
                            key: "qubits".to_string(),
                        })?
                    }
                };
                let mut spec = DeviceSpec::transmon(&self.name, vendor, topology, qubits, seed);
                spec.sample_rate_gs = self.sample_rate.map(|(r, _)| r);
                spec.fdm = self.fdm.map(|(f, _)| f);
                Ok(spec)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_minimal_transmon() {
        let reg = Registry::parse("device tiny\n  qubits 5\nend\n").unwrap();
        let spec = reg.get("tiny").unwrap();
        assert_eq!(spec.class, DeviceClass::Transmon);
        assert_eq!(spec.vendor, Vendor::Ibm);
        assert_eq!(spec.topology, TopologyKind::HeavyHex);
        assert_eq!(spec.n_qubits(), 5);
        assert_eq!(spec.seed, DEFAULT_SEED);
    }

    #[test]
    fn parse_full_block_with_comments() {
        let text = "# fleet file\ndevice big # eagle-class\n  class transmon\n  vendor ibm\n  \
                    topology heavy-hex\n  qubits 127\n  seed 0xAB\n  sample-rate 4.54\n  \
                    fdm 8 400\nend\n";
        let spec = Registry::parse(text).unwrap().get("big").cloned().unwrap();
        assert_eq!(spec.seed, 0xAB);
        assert_eq!(spec.sample_rate_gs, Some(4.54));
        assert_eq!(spec.fdm, Some(FdmSpec { lanes: 8, span_mhz: 400.0 }));
    }

    #[test]
    fn surface_topology_derives_qubits() {
        let reg = Registry::parse("device s\n  topology surface:3\nend\n").unwrap();
        assert_eq!(reg.get("s").unwrap().n_qubits(), 25);
    }

    #[test]
    fn surface_qubit_mismatch_is_typed() {
        let err =
            Registry::parse("device s\n  topology surface:3\n  qubits 24\nend\n").unwrap_err();
        assert_eq!(
            err,
            RegistryError::SurfaceSizeMismatch { device: "s".into(), expected: 25, got: 24 }
        );
    }

    #[test]
    fn typed_errors_carry_line_numbers() {
        assert_eq!(
            Registry::parse("qubits 5\n").unwrap_err(),
            RegistryError::JunkOutsideDevice { line: 1 }
        );
        assert_eq!(
            Registry::parse("device a\n  qubits 5\n  qubits 6\nend\n").unwrap_err(),
            RegistryError::DuplicateKey { line: 3, key: "qubits".into() }
        );
        assert_eq!(
            Registry::parse("device a\nend\ndevice a\nend\n").unwrap_err(),
            RegistryError::MissingField { device: "a".into(), key: "qubits".into() }
        );
        assert_eq!(
            Registry::parse("device a\n  qubits 2000\nend\n").unwrap_err(),
            RegistryError::CountOutOfRange { line: 2, key: "qubits".into(), got: 2000 }
        );
        assert_eq!(Registry::parse("end\n").unwrap_err(), RegistryError::StrayEnd { line: 1 });
        assert_eq!(
            Registry::parse("device a\n  qubits 5\n").unwrap_err(),
            RegistryError::UnterminatedDevice { name: "a".into() }
        );
    }

    #[test]
    fn duplicate_device_reports_second_definition() {
        let text = "device a\n  qubits 5\nend\ndevice a\n  qubits 5\nend\n";
        assert_eq!(
            Registry::parse(text).unwrap_err(),
            RegistryError::DuplicateDevice { line: 6, name: "a".into() }
        );
    }

    #[test]
    fn exotic_rejects_transmon_keys() {
        let err = Registry::parse("device e\n  class exotic\n  qubits 4\nend\n").unwrap_err();
        assert_eq!(err, RegistryError::KeyNotAllowed { line: 3, key: "qubits".into() });
        let ok = Registry::parse("device e\n  class exotic\n  seed 7\nend\n").unwrap();
        assert_eq!(ok.get("e").unwrap().n_qubits(), EXOTIC_QUBITS);
    }

    #[test]
    fn non_utf8_is_typed() {
        assert_eq!(Registry::parse_bytes(&[0x64, 0xFF, 0xFE]).unwrap_err(), RegistryError::NotUtf8);
    }

    #[test]
    fn builtin_round_trips_through_text() {
        let builtin = Registry::builtin();
        let reparsed = Registry::parse(&builtin.to_text()).unwrap();
        assert_eq!(builtin.len(), reparsed.len());
        for spec in builtin.iter() {
            assert_eq!(reparsed.get(&spec.name), Some(spec), "{}", spec.name);
        }
    }

    #[test]
    fn builtin_meets_fleet_floor() {
        let reg = Registry::builtin();
        assert!(reg.len() >= 6);
        let hex_big = reg
            .iter()
            .filter(|s| s.topology == TopologyKind::HeavyHex && s.n_qubits() >= 65)
            .count();
        assert!(hex_big >= 2, "need >=2 heavy-hex devices at >=65 qubits");
        assert!(
            reg.iter().any(|s| matches!(s.topology, TopologyKind::Surface { .. })),
            "need a surface patch"
        );
        assert!(reg.iter().any(|s| s.class == DeviceClass::Exotic));
    }

    #[test]
    fn specs_build_libraries() {
        let reg = Registry::builtin();
        let small = reg.get("ibm_bogota").unwrap();
        let lib = small.build_library();
        // X + SX + Measure per qubit, CX per directed pair (4 line-ish edges).
        assert!(lib.len() > 5 * 3);
        let exotic = reg.get("exotic-tableix").unwrap();
        assert_eq!(exotic.build_library().len(), 7);
        assert!(exotic.build_device().is_none());
    }

    #[test]
    fn built_device_carries_spec_name_and_size() {
        let spec = Registry::builtin().get("surface-d3").unwrap();
        let device = spec.build_device().unwrap();
        assert_eq!(device.name(), "surface-d3");
        assert_eq!(device.n_qubits(), 25);
    }

    #[test]
    fn sample_rate_override_changes_waveform_lengths() {
        let base = DeviceSpec::transmon("a", Vendor::Ibm, TopologyKind::Line, 2, 1);
        let slow = base.clone().with_sample_rate(1.0);
        let lib_base = base.build_library();
        let lib_slow = slow.build_library();
        assert!(lib_base.total_samples() > lib_slow.total_samples());
    }

    #[test]
    fn fdm_bandwidth_scales_with_lanes() {
        let spec = Registry::builtin().get("hex-433").unwrap();
        let bw = spec.fdm_memory_bandwidth_gb().unwrap();
        let per_qubit = Vendor::Ibm.params().bandwidth_per_qubit_gb();
        assert!((bw / per_qubit - 16.0).abs() < 1e-9, "16 lanes multiply demand 16x");
    }

    #[test]
    fn push_rejects_invalid_specs() {
        let mut reg = Registry::new();
        let bad = DeviceSpec::transmon("bad name!", Vendor::Ibm, TopologyKind::Line, 4, 1);
        assert!(matches!(reg.push(bad), Err(RegistryError::InvalidDeviceName { .. })));
        let mut huge = DeviceSpec::transmon("huge", Vendor::Ibm, TopologyKind::Line, 4, 1);
        huge.qubits = MAX_QUBITS + 1;
        assert!(matches!(reg.push(huge), Err(RegistryError::InvalidSpec { .. })));
        let ok = DeviceSpec::transmon("ok", Vendor::Ibm, TopologyKind::Line, 4, 1);
        reg.push(ok.clone()).unwrap();
        assert_eq!(
            reg.push(ok),
            Err(RegistryError::DuplicateDevice { line: 0, name: "ok".into() })
        );
    }

    #[test]
    fn snip_bounds_error_payloads() {
        let long = "x".repeat(500);
        let err = Registry::parse(&format!("device a\n  {long} 1\nend\n")).unwrap_err();
        if let RegistryError::UnknownKey { key, .. } = err {
            assert!(key.len() <= 40);
        } else {
            panic!("expected UnknownKey, got {err:?}");
        }
    }

    #[test]
    fn errors_display_without_panicking() {
        let errs = [
            RegistryError::NotUtf8,
            RegistryError::UnterminatedDevice { name: "a".into() },
            RegistryError::CountOutOfRange { line: 3, key: "qubits".into(), got: 9999 },
            RegistryError::InvalidSpec { device: "d".into(), reason: "r".into() },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
