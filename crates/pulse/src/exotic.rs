//! Complex multi-qubit and emerging-qubit gate pulses (Table IX).
//!
//! The paper's Discussion section shows that compressibility is not
//! specific to IBM's basis gates: numerically optimized three-qubit drives
//! (iToffoli, Toffoli, CCZ) and fluxonium single-qubit pulses compress
//! 5-8x too. The published pulse data is not available, so we synthesize
//! the same shape classes:
//!
//! * **iToffoli** [Kim et al. 2022] — a long, simultaneous two-tone drive
//!   with smooth flat-top envelopes: very compressible.
//! * **Toffoli / CCZ** [Zahedinejad et al. 2016] — machine-learned drives:
//!   smooth but with energy spread over several harmonics, less
//!   compressible than analytic shapes.
//! * **Fluxonium 1Q set** [Propson et al. 2022] — trajectory-optimized
//!   X, X/2, Y/2, Z/2 pulses: short and smooth.

use crate::library::{GateId, GateKind, PulseLibrary};
use crate::shapes::{BandLimited, CosineTapered, GaussianSquare, PulseShape};
use crate::waveform::Waveform;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// IBM-style DAC rate used for the transmon pulses below.
const TRANSMON_RATE_GS: f64 = 4.54;

/// Synthesizes the iToffoli three-qubit gate drive (~350 ns flat-top
/// simultaneous drive on the two control qubits).
pub fn itoffoli(seed: u64) -> Waveform {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x17F0);
    let n = (TRANSMON_RATE_GS * 350.0) as usize;
    let amp = rng.random_range(0.30..0.40);
    let width = (n as f64 * rng.random_range(0.78..0.84)) as usize;
    let ramp = (n - width) / 2;
    GaussianSquare::new(n, amp, 0.4 * ramp as f64, width).to_waveform("iToffoli", TRANSMON_RATE_GS)
}

/// Synthesizes a machine-learned Toffoli drive: band-limited with energy
/// across ~8 harmonics (per the single-shot three-qubit gate designs).
pub fn toffoli_ml(seed: u64) -> Waveform {
    band_limited_drive("Toffoli", seed ^ 0x70FF, 300.0, 8)
}

/// Synthesizes a machine-learned CCZ drive (slightly narrower band than
/// the Toffoli design).
pub fn ccz_ml(seed: u64) -> Waveform {
    band_limited_drive("CCZ", seed ^ 0xCC2, 280.0, 7)
}

/// Synthesizes the fluxonium single-qubit gate set (X, X/2, Y/2, Z/2):
/// short trajectory-optimized cosine-tapered drives.
pub fn fluxonium_gate_set(seed: u64) -> Vec<Waveform> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF1F0);
    ["X", "X/2", "Y/2", "Z/2"]
        .iter()
        .map(|name| {
            let n = (TRANSMON_RATE_GS * rng.random_range(55.0..75.0)) as usize;
            let amp = rng.random_range(0.4..0.7);
            let taper = rng.random_range(0.5..0.8);
            CosineTapered::new(n, amp, taper)
                .to_waveform(&format!("fluxonium-{name}"), TRANSMON_RATE_GS)
        })
        .collect()
}

fn band_limited_drive(name: &str, seed: u64, tau_ns: f64, harmonics: usize) -> Waveform {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = (TRANSMON_RATE_GS * tau_ns) as usize;
    // Decaying random harmonic weights: smooth but non-analytic shape.
    let coeffs = |rng: &mut StdRng| -> Vec<f64> {
        (0..harmonics)
            .map(|k| {
                let scale = 1.0 / (1.0 + k as f64);
                scale * rng.random_range(-1.0..1.0)
            })
            .collect()
    };
    let i = {
        let mut c = coeffs(&mut rng);
        c[0] = c[0].abs().max(0.5); // dominant fundamental
        c
    };
    let q = coeffs(&mut rng).iter().map(|c| 0.3 * c).collect();
    BandLimited::new(n, rng.random_range(0.4..0.6), i, q).to_waveform(name, TRANSMON_RATE_GS)
}

/// The full Table IX pulse set as a library (one instance of each gate on
/// representative qubits).
pub fn table_ix_library(seed: u64) -> PulseLibrary {
    let mut lib = PulseLibrary::new();
    lib.insert(
        GateId { kind: GateKind::Custom("iToffoli".into()), qubits: vec![0, 1, 2] },
        itoffoli(seed),
    );
    lib.insert(
        GateId { kind: GateKind::Custom("Toffoli".into()), qubits: vec![0, 1, 2] },
        toffoli_ml(seed),
    );
    lib.insert(
        GateId { kind: GateKind::Custom("CCZ".into()), qubits: vec![0, 1, 2] },
        ccz_ml(seed),
    );
    for (k, wf) in fluxonium_gate_set(seed).into_iter().enumerate() {
        lib.insert(
            GateId { kind: GateKind::Custom(wf.name().to_string()), qubits: vec![k as u16] },
            wf,
        );
    }
    lib
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn itoffoli_is_long_and_flat() {
        let wf = itoffoli(1);
        assert!(wf.duration_ns() > 300.0);
        assert!(wf.flat_top_plateau(500).is_some());
    }

    #[test]
    fn toffoli_is_smooth_and_bounded() {
        let wf = toffoli_ml(1);
        assert!(wf.peak_amplitude() < 1.0);
        // Smooth: adjacent-sample steps are small.
        let i = wf.i();
        let max_step = i.windows(2).map(|w| (w[1] - w[0]).abs()).fold(0.0, f64::max);
        assert!(max_step < 0.02, "max step {max_step}");
    }

    #[test]
    fn fluxonium_set_has_four_gates() {
        let set = fluxonium_gate_set(9);
        assert_eq!(set.len(), 4);
        for wf in &set {
            assert!(wf.duration_ns() < 100.0, "fluxonium gates are fast");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(toffoli_ml(5).i()[100], toffoli_ml(5).i()[100]);
        assert!(toffoli_ml(5).i()[100] != toffoli_ml(6).i()[100]);
    }

    #[test]
    fn table_ix_library_has_seven_entries() {
        assert_eq!(table_ix_library(3).len(), 7);
    }
}
