//! Parametric pulse shapes used on superconducting quantum hardware.
//!
//! Single-qubit gates use DRAG (Derivative Removal by Adiabatic Gate)
//! envelopes — a Gaussian I channel plus a scaled-derivative Q channel that
//! suppresses leakage to the second excited state. Two-qubit
//! cross-resonance gates and readout use flat-top (Gaussian-square)
//! envelopes (Sections II-A, V-D). All shapes are *lifted* so the envelope
//! starts and ends exactly at zero, like Qiskit Pulse's implementations.

use crate::waveform::Waveform;
use serde::{Deserialize, Serialize};

/// A parametric pulse shape that can be sampled into I/Q channels.
pub trait PulseShape: std::fmt::Debug {
    /// Number of samples the shape spans.
    fn samples(&self) -> usize;

    /// Samples the envelope, returning the `(I, Q)` channels.
    fn envelope(&self) -> (Vec<f64>, Vec<f64>);

    /// Samples the shape into a named [`Waveform`] at the given DAC rate.
    fn to_waveform(&self, name: &str, sample_rate_gs: f64) -> Waveform {
        let (i, q) = self.envelope();
        Waveform::new(name, i, q, sample_rate_gs)
    }
}

/// Evaluates a lifted Gaussian: a Gaussian with its boundary value
/// subtracted and rescaled so the endpoints are exactly zero and the peak
/// is exactly `amp` (Qiskit's `LiftedGaussian`).
fn lifted_gaussian(n: usize, amp: f64, sigma: f64) -> Vec<f64> {
    assert!(n > 1, "shape needs at least two samples");
    assert!(sigma > 0.0, "sigma must be positive");
    let center = (n - 1) as f64 / 2.0;
    let g = |t: f64| (-0.5 * ((t - center) / sigma).powi(2)).exp();
    let edge = g(-1.0);
    (0..n).map(|k| amp * ((g(k as f64) - edge) / (1.0 - edge)).max(0.0)).collect()
}

/// A plain (lifted) Gaussian envelope.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Gaussian {
    /// Sample count.
    pub samples: usize,
    /// Peak amplitude (full scale = 1).
    pub amp: f64,
    /// Standard deviation in samples.
    pub sigma: f64,
}

impl Gaussian {
    /// Creates a Gaussian envelope.
    pub fn new(samples: usize, amp: f64, sigma: f64) -> Self {
        Gaussian { samples, amp, sigma }
    }
}

impl PulseShape for Gaussian {
    fn samples(&self) -> usize {
        self.samples
    }

    fn envelope(&self) -> (Vec<f64>, Vec<f64>) {
        let i = lifted_gaussian(self.samples, self.amp, self.sigma);
        let q = vec![0.0; self.samples];
        (i, q)
    }
}

/// A DRAG envelope: Gaussian I channel, derivative Q channel.
///
/// `q[t] = beta * d(i[t])/dt`, the standard first-order DRAG correction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Drag {
    /// Sample count.
    pub samples: usize,
    /// Peak amplitude.
    pub amp: f64,
    /// Standard deviation in samples.
    pub sigma: f64,
    /// DRAG coefficient (dimensionless; Q channel is `beta * dI/dt * sigma`).
    pub beta: f64,
}

impl Drag {
    /// Creates a DRAG envelope.
    pub fn new(samples: usize, amp: f64, sigma: f64, beta: f64) -> Self {
        Drag { samples, amp, sigma, beta }
    }
}

impl PulseShape for Drag {
    fn samples(&self) -> usize {
        self.samples
    }

    fn envelope(&self) -> (Vec<f64>, Vec<f64>) {
        let i = lifted_gaussian(self.samples, self.amp, self.sigma);
        // Central-difference derivative, scaled by sigma to keep the DRAG
        // channel dimensionless and well below full scale.
        let n = self.samples;
        let mut q = vec![0.0; n];
        for k in 0..n {
            let prev = if k == 0 { 0.0 } else { i[k - 1] };
            let next = if k == n - 1 { 0.0 } else { i[k + 1] };
            q[k] = self.beta * self.sigma * (next - prev) / 2.0 / self.sigma;
        }
        (i, q)
    }
}

/// A flat-top envelope: Gaussian rise, constant plateau, Gaussian fall
/// (Qiskit's `GaussianSquare`). Used for cross-resonance two-qubit gates
/// and readout pulses, and the target of adaptive decompression
/// (Figure 13).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaussianSquare {
    /// Total sample count.
    pub samples: usize,
    /// Plateau amplitude.
    pub amp: f64,
    /// Rise/fall standard deviation in samples.
    pub sigma: f64,
    /// Plateau width in samples (must leave room for the ramps).
    pub width: usize,
}

impl GaussianSquare {
    /// Creates a flat-top envelope.
    ///
    /// # Panics
    ///
    /// Panics if `width >= samples`.
    pub fn new(samples: usize, amp: f64, sigma: f64, width: usize) -> Self {
        assert!(width < samples, "plateau must be shorter than the pulse");
        GaussianSquare { samples, amp, sigma, width }
    }

    /// Number of samples in each ramp.
    pub fn ramp_samples(&self) -> usize {
        (self.samples - self.width) / 2
    }
}

impl PulseShape for GaussianSquare {
    fn samples(&self) -> usize {
        self.samples
    }

    fn envelope(&self) -> (Vec<f64>, Vec<f64>) {
        let n = self.samples;
        let ramp = self.ramp_samples();
        let plateau_start = ramp;
        let plateau_end = n - ramp;
        let g = |dist: f64| (-0.5 * (dist / self.sigma).powi(2)).exp();
        let edge = g(ramp as f64 + 1.0);
        let lift = |v: f64| ((v - edge) / (1.0 - edge)).max(0.0);
        let mut i = vec![0.0; n];
        for (k, v) in i.iter_mut().enumerate().take(plateau_start) {
            *v = self.amp * lift(g((plateau_start - k) as f64));
        }
        for v in i.iter_mut().take(plateau_end).skip(plateau_start) {
            *v = self.amp;
        }
        for (k, v) in i.iter_mut().enumerate().skip(plateau_end) {
            *v = self.amp * lift(g((k + 1 - plateau_end) as f64));
        }
        let q = vec![0.0; n];
        (i, q)
    }
}

/// A constant (square) envelope.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Constant {
    /// Sample count.
    pub samples: usize,
    /// Amplitude.
    pub amp: f64,
}

impl Constant {
    /// Creates a constant envelope.
    pub fn new(samples: usize, amp: f64) -> Self {
        Constant { samples, amp }
    }
}

impl PulseShape for Constant {
    fn samples(&self) -> usize {
        self.samples
    }

    fn envelope(&self) -> (Vec<f64>, Vec<f64>) {
        (vec![self.amp; self.samples], vec![0.0; self.samples])
    }
}

/// A cosine-tapered (Tukey) envelope: raised-cosine ramps around a flat
/// plateau. Common for fluxonium and tunable-coupler drives.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CosineTapered {
    /// Sample count.
    pub samples: usize,
    /// Plateau amplitude.
    pub amp: f64,
    /// Fraction of the pulse spent ramping (0..1, split between both ends).
    pub taper: f64,
}

impl CosineTapered {
    /// Creates a cosine-tapered envelope.
    ///
    /// # Panics
    ///
    /// Panics if `taper` is outside `(0, 1]`.
    pub fn new(samples: usize, amp: f64, taper: f64) -> Self {
        assert!(taper > 0.0 && taper <= 1.0, "taper fraction must be in (0, 1]");
        CosineTapered { samples, amp, taper }
    }
}

impl PulseShape for CosineTapered {
    fn samples(&self) -> usize {
        self.samples
    }

    fn envelope(&self) -> (Vec<f64>, Vec<f64>) {
        let n = self.samples;
        let ramp = ((n as f64 * self.taper) / 2.0).round() as usize;
        let mut i = vec![self.amp; n];
        for k in 0..ramp.min(n) {
            let w =
                0.5 * (1.0 - (std::f64::consts::PI * (k as f64 + 1.0) / (ramp as f64 + 1.0)).cos());
            i[k] = self.amp * w;
            i[n - 1 - k] = self.amp * w;
        }
        (i, vec![0.0; n])
    }
}

/// A smooth band-limited envelope built from half-sine harmonics:
/// `x[t] = amp * sum_k c_k sin(pi (k+1) t / T)`.
///
/// This models numerically optimized ("machine-learned") gate pulses such
/// as the Toffoli/CCZ drives of Table IX: smooth, zero at the endpoints,
/// with energy spread over the first few harmonics. More harmonics means
/// less compressible.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BandLimited {
    /// Sample count.
    pub samples: usize,
    /// Overall amplitude scale.
    pub amp: f64,
    /// Harmonic coefficients for the I channel (`c_0` is the fundamental).
    pub i_harmonics: Vec<f64>,
    /// Harmonic coefficients for the Q channel.
    pub q_harmonics: Vec<f64>,
}

impl BandLimited {
    /// Creates a band-limited envelope from harmonic coefficients.
    pub fn new(samples: usize, amp: f64, i_harmonics: Vec<f64>, q_harmonics: Vec<f64>) -> Self {
        BandLimited { samples, amp, i_harmonics, q_harmonics }
    }

    fn synth(&self, harmonics: &[f64]) -> Vec<f64> {
        let n = self.samples;
        let mut out = vec![0.0; n];
        // Normalize so the peak stays at `amp` regardless of coefficients.
        let norm: f64 = harmonics.iter().map(|c| c.abs()).sum::<f64>().max(1e-12);
        for (k, &c) in harmonics.iter().enumerate() {
            let f = (k + 1) as f64 * std::f64::consts::PI / n as f64;
            for (t, o) in out.iter_mut().enumerate() {
                *o += self.amp * c / norm * (f * (t as f64 + 0.5)).sin();
            }
        }
        out
    }
}

impl PulseShape for BandLimited {
    fn samples(&self) -> usize {
        self.samples
    }

    fn envelope(&self) -> (Vec<f64>, Vec<f64>) {
        (self.synth(&self.i_harmonics), self.synth(&self.q_harmonics))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_is_lifted_and_peaks_at_amp() {
        let (i, q) = Gaussian::new(161, 0.6, 30.0).envelope();
        // Lifted against the sample one step outside the window, so the
        // endpoints are within one quantization step of zero.
        assert!(i[0].abs() < 0.01 * 0.6, "starts near zero: {}", i[0]);
        assert!(i[160].abs() < 0.01 * 0.6, "ends near zero: {}", i[160]);
        assert!((i[80] - 0.6).abs() < 1e-12, "peaks at amp");
        assert!(q.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn gaussian_is_symmetric() {
        let (i, _) = Gaussian::new(160, 0.5, 25.0).envelope();
        for k in 0..80 {
            assert!((i[k] - i[159 - k]).abs() < 1e-12, "sample {k}");
        }
    }

    #[test]
    fn drag_q_channel_is_antisymmetric_derivative() {
        let (i, q) = Drag::new(161, 0.5, 30.0, 0.2).envelope();
        // Q is the scaled derivative: zero at the peak, antisymmetric.
        assert!(q[80].abs() < 1e-9);
        for k in 1..80 {
            assert!((q[k] + q[160 - k]).abs() < 1e-9, "sample {k}");
        }
        // Q leads I on the rise (positive derivative, positive beta).
        assert!(q[40] > 0.0);
        assert!(i[40] > 0.0);
    }

    #[test]
    fn drag_q_is_much_smaller_than_i() {
        let (i, q) = Drag::new(160, 0.8, 40.0, 0.2).envelope();
        let imax = i.iter().cloned().fold(0.0, f64::max);
        let qmax = q.iter().map(|v| v.abs()).fold(0.0, f64::max);
        assert!(qmax < imax / 5.0);
    }

    #[test]
    fn gaussian_square_has_exact_plateau() {
        let gs = GaussianSquare::new(1362, 0.35, 64.0, 1000);
        let (i, _) = gs.envelope();
        let ramp = gs.ramp_samples();
        for (k, &v) in i.iter().enumerate().take(1362 - ramp).skip(ramp) {
            assert_eq!(v, 0.35, "plateau sample {k}");
        }
        assert!(i[0] < 0.01, "rise starts near zero");
        assert!(i[1361] < 0.01, "fall ends near zero");
    }

    #[test]
    fn gaussian_square_ramps_are_monotone() {
        let gs = GaussianSquare::new(200, 0.5, 12.0, 120);
        let (i, _) = gs.envelope();
        let ramp = gs.ramp_samples();
        for k in 1..ramp {
            assert!(i[k] >= i[k - 1], "rise sample {k}");
        }
        for k in (200 - ramp + 1)..200 {
            assert!(i[k] <= i[k - 1], "fall sample {k}");
        }
    }

    #[test]
    #[should_panic(expected = "plateau")]
    fn gaussian_square_rejects_oversize_plateau() {
        GaussianSquare::new(100, 0.5, 10.0, 100);
    }

    #[test]
    fn constant_is_constant() {
        let (i, _) = Constant::new(10, 0.3).envelope();
        assert!(i.iter().all(|&v| v == 0.3));
    }

    #[test]
    fn cosine_taper_endpoints_are_low() {
        let (i, _) = CosineTapered::new(100, 0.7, 0.4).envelope();
        assert!(i[0] < 0.1);
        assert!(i[99] < 0.1);
        assert_eq!(i[50], 0.7);
    }

    #[test]
    fn band_limited_peaks_at_most_amp() {
        let bl = BandLimited::new(300, 0.6, vec![1.0, 0.4, -0.2, 0.1], vec![0.3, -0.1]);
        let (i, q) = bl.envelope();
        let peak = i.iter().chain(q.iter()).map(|v| v.abs()).fold(0.0, f64::max);
        assert!(peak <= 0.6 + 1e-9);
        assert!(i[0].abs() < 0.05, "starts near zero");
    }

    #[test]
    fn to_waveform_carries_rate_and_name() {
        let w = Drag::new(136, 0.5, 34.0, 0.18).to_waveform("X(q0)", 4.54);
        assert_eq!(w.name(), "X(q0)");
        assert_eq!(w.len(), 136);
        assert!((w.duration_ns() - 29.95).abs() < 0.1);
    }
}
