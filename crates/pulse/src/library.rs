//! Pulse libraries: the contents of waveform memory.
//!
//! A pulse library maps each physical gate (on specific qubits) to its
//! calibrated waveform. It is built by the calibration flow, loaded into
//! the controller's waveform memory, and is read-only during execution —
//! the property COMPAQT exploits to compress it offline (Section IV-A).

use crate::waveform::Waveform;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// The kind of physical gate a waveform implements.
///
/// Ordered (`Ord`) so gate collections can be listed deterministically:
/// built-in kinds sort in declaration order, custom kinds last by name.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum GateKind {
    /// IBM π rotation (X gate).
    X,
    /// IBM π/2 rotation (SX gate).
    Sx,
    /// IBM cross-resonance CNOT drive (directed: control -> target).
    Cx,
    /// Google single-qubit phased-XZ drive.
    PhasedXz,
    /// Google fSim two-qubit drive.
    Fsim,
    /// Google iSWAP two-qubit drive.
    ISwap,
    /// Readout (measurement) pulse.
    Measure,
    /// A named custom pulse (Toffoli, iToffoli, CCZ, fluxonium gates...).
    Custom(String),
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GateKind::X => write!(f, "X"),
            GateKind::Sx => write!(f, "SX"),
            GateKind::Cx => write!(f, "CX"),
            GateKind::PhasedXz => write!(f, "PhXZ"),
            GateKind::Fsim => write!(f, "fsim"),
            GateKind::ISwap => write!(f, "iSWAP"),
            GateKind::Measure => write!(f, "Meas"),
            GateKind::Custom(name) => write!(f, "{name}"),
        }
    }
}

/// Identifies one waveform in the library: a gate kind applied to specific
/// qubits (order matters for directed gates such as CX).
///
/// Ordered (`Ord`) by kind then qubit list, so sorted gate listings are
/// stable across runs and machines.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GateId {
    /// The gate kind.
    pub kind: GateKind,
    /// The qubits the pulse drives, in gate order.
    pub qubits: Vec<u16>,
}

impl GateId {
    /// Creates a single-qubit gate id.
    pub fn single(kind: GateKind, qubit: u16) -> Self {
        GateId { kind, qubits: vec![qubit] }
    }

    /// Creates a two-qubit gate id.
    pub fn pair(kind: GateKind, a: u16, b: u16) -> Self {
        GateId { kind, qubits: vec![a, b] }
    }

    /// A stable 64-bit hash of the id (FNV-1a over the kind and qubit
    /// list), independent of the process's `HashMap` seeding.
    ///
    /// Consumers that partition gates across fixed buckets — the sharded
    /// waveform store, or any persisted layout — need the same gate to
    /// land in the same bucket on every run; `std::hash` makes no such
    /// cross-process promise, so this method is the contract instead.
    pub fn stable_hash(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |byte: u8| {
            h ^= u64::from(byte);
            h = h.wrapping_mul(FNV_PRIME);
        };
        let tag: u8 = match &self.kind {
            GateKind::X => 0,
            GateKind::Sx => 1,
            GateKind::Cx => 2,
            GateKind::PhasedXz => 3,
            GateKind::Fsim => 4,
            GateKind::ISwap => 5,
            GateKind::Measure => 6,
            GateKind::Custom(_) => 7,
        };
        eat(tag);
        if let GateKind::Custom(name) = &self.kind {
            for &b in name.as_bytes() {
                eat(b);
            }
            eat(0xFF); // terminator: "ab"+[1] never collides with "a"+[0xFF01]
        }
        for &q in &self.qubits {
            let [lo, hi] = q.to_le_bytes();
            eat(lo);
            eat(hi);
        }
        h
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.kind)?;
        for (i, q) in self.qubits.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "q{q}")?;
        }
        write!(f, ")")
    }
}

/// A device's pulse library: the image loaded into waveform memory.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PulseLibrary {
    entries: Vec<(GateId, Waveform)>,
    #[serde(skip)]
    index: HashMap<GateId, usize>,
}

impl PulseLibrary {
    /// Creates an empty library.
    pub fn new() -> Self {
        PulseLibrary::default()
    }

    /// Adds (or replaces) the waveform for a gate.
    pub fn insert(&mut self, id: GateId, waveform: Waveform) {
        if let Some(&slot) = self.index.get(&id) {
            self.entries[slot].1 = waveform;
        } else {
            self.index.insert(id.clone(), self.entries.len());
            self.entries.push((id, waveform));
        }
    }

    /// Looks up a gate's waveform.
    pub fn get(&self, id: &GateId) -> Option<&Waveform> {
        self.index.get(id).map(|&slot| &self.entries[slot].1)
    }

    /// Number of waveforms stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the library holds no waveforms.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(gate, waveform)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&GateId, &Waveform)> {
        self.entries.iter().map(|(id, wf)| (id, wf))
    }

    /// Iterates over `(gate, waveform)` pairs in sorted gate order
    /// ([`GateId`]'s `Ord`: kind, then qubit list) — the deterministic
    /// listing persisted formats and cross-process tooling key on,
    /// independent of the library's insertion history.
    pub fn iter_sorted(&self) -> impl Iterator<Item = (&GateId, &Waveform)> {
        let mut order: Vec<usize> = (0..self.entries.len()).collect();
        order.sort_by(|&a, &b| self.entries[a].0.cmp(&self.entries[b].0));
        order.into_iter().map(|k| {
            let (id, wf) = &self.entries[k];
            (id, wf)
        })
    }

    /// The DAC sample rate shared by every waveform, if the library is
    /// rate-uniform (`None` when empty or mixed-rate). Persisted
    /// container headers record this library-level rate so a loader can
    /// size DAC staging before parsing a single entry.
    pub fn uniform_sample_rate_gs(&self) -> Option<f64> {
        let mut rates = self.entries.iter().map(|(_, wf)| wf.sample_rate_gs());
        let first = rates.next()?;
        rates.all(|r| r == first).then_some(first)
    }

    /// Total uncompressed storage in bytes at the given packed sample size.
    pub fn total_storage_bytes(&self, sample_bits: u32) -> usize {
        self.entries.iter().map(|(_, wf)| wf.storage_bytes(sample_bits)).sum()
    }

    /// Total sample count over all waveforms (per channel).
    pub fn total_samples(&self) -> usize {
        self.entries.iter().map(|(_, wf)| wf.len()).sum()
    }

    /// All waveforms for gates of the given kind.
    pub fn of_kind<'a>(
        &'a self,
        kind: &'a GateKind,
    ) -> impl Iterator<Item = (&'a GateId, &'a Waveform)> {
        self.iter().filter(move |(id, _)| &id.kind == kind)
    }
}

impl FromIterator<(GateId, Waveform)> for PulseLibrary {
    fn from_iter<T: IntoIterator<Item = (GateId, Waveform)>>(iter: T) -> Self {
        let mut lib = PulseLibrary::new();
        for (id, wf) in iter {
            lib.insert(id, wf);
        }
        lib
    }
}

impl Extend<(GateId, Waveform)> for PulseLibrary {
    fn extend<T: IntoIterator<Item = (GateId, Waveform)>>(&mut self, iter: T) {
        for (id, wf) in iter {
            self.insert(id, wf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wf(n: usize) -> Waveform {
        Waveform::from_real("w", vec![0.1; n], 4.54)
    }

    #[test]
    fn insert_and_get() {
        let mut lib = PulseLibrary::new();
        let id = GateId::single(GateKind::X, 3);
        lib.insert(id.clone(), wf(136));
        assert_eq!(lib.len(), 1);
        assert_eq!(lib.get(&id).unwrap().len(), 136);
        assert!(lib.get(&GateId::single(GateKind::X, 4)).is_none());
    }

    #[test]
    fn insert_replaces_existing() {
        let mut lib = PulseLibrary::new();
        let id = GateId::single(GateKind::Sx, 0);
        lib.insert(id.clone(), wf(10));
        lib.insert(id.clone(), wf(20));
        assert_eq!(lib.len(), 1);
        assert_eq!(lib.get(&id).unwrap().len(), 20);
    }

    #[test]
    fn directed_cx_ids_are_distinct() {
        let a = GateId::pair(GateKind::Cx, 0, 1);
        let b = GateId::pair(GateKind::Cx, 1, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn storage_sums_over_entries() {
        let mut lib = PulseLibrary::new();
        lib.insert(GateId::single(GateKind::X, 0), wf(100));
        lib.insert(GateId::single(GateKind::Measure, 0), wf(200));
        assert_eq!(lib.total_storage_bytes(32), 1200);
        assert_eq!(lib.total_samples(), 300);
    }

    #[test]
    fn of_kind_filters() {
        let mut lib = PulseLibrary::new();
        lib.insert(GateId::single(GateKind::X, 0), wf(10));
        lib.insert(GateId::single(GateKind::X, 1), wf(10));
        lib.insert(GateId::single(GateKind::Sx, 0), wf(10));
        assert_eq!(lib.of_kind(&GateKind::X).count(), 2);
        assert_eq!(lib.of_kind(&GateKind::Measure).count(), 0);
    }

    #[test]
    fn iter_sorted_is_insertion_order_independent() {
        let mut a = PulseLibrary::new();
        let mut b = PulseLibrary::new();
        let ids = [
            GateId::pair(GateKind::Cx, 1, 0),
            GateId::single(GateKind::X, 2),
            GateId::single(GateKind::X, 0),
        ];
        for id in &ids {
            a.insert(id.clone(), wf(8));
        }
        for id in ids.iter().rev() {
            b.insert(id.clone(), wf(8));
        }
        let la: Vec<&GateId> = a.iter_sorted().map(|(id, _)| id).collect();
        let lb: Vec<&GateId> = b.iter_sorted().map(|(id, _)| id).collect();
        assert_eq!(la, lb);
        assert!(la.windows(2).all(|w| w[0] < w[1]), "strictly ascending");
    }

    #[test]
    fn uniform_sample_rate_detection() {
        let mut lib = PulseLibrary::new();
        assert_eq!(lib.uniform_sample_rate_gs(), None, "empty library has no rate");
        lib.insert(GateId::single(GateKind::X, 0), wf(8));
        lib.insert(GateId::single(GateKind::X, 1), wf(16));
        assert_eq!(lib.uniform_sample_rate_gs(), Some(4.54));
        lib.insert(
            GateId::single(GateKind::Measure, 0),
            Waveform::from_real("m", vec![0.1; 8], 2.0),
        );
        assert_eq!(lib.uniform_sample_rate_gs(), None, "mixed rates");
    }

    #[test]
    fn from_iterator_collects() {
        let lib: PulseLibrary =
            (0..4u16).map(|q| (GateId::single(GateKind::X, q), wf(8))).collect();
        assert_eq!(lib.len(), 4);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", GateId::pair(GateKind::Cx, 2, 5)), "CX(q2,q5)");
        assert_eq!(
            format!("{}", GateId::single(GateKind::Custom("toffoli".into()), 1)),
            "toffoli(q1)"
        );
    }
}
