//! Qubit connectivity graphs.
//!
//! The number of two-qubit waveforms per qubit scales with its degree
//! (Section III), so connectivity directly drives waveform-memory capacity.
//! IBM machines use a heavy-hexagonal lattice (max degree 3, average ~2);
//! Google uses a square grid (max degree 4).

use serde::{Deserialize, Serialize};

/// A qubit connectivity family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Topology {
    /// A 1-D chain (e.g. the 5-qubit IBM Bogota).
    Line,
    /// IBM's heavy-hexagonal lattice: rows of qubits joined by bridge
    /// qubits every four columns with alternating offsets.
    HeavyHex,
    /// Google's square grid (Sycamore-style).
    Grid,
}

impl Topology {
    /// The undirected coupling edges for an `n`-qubit device.
    ///
    /// Edges are returned with `a < b` and no duplicates. All generated
    /// graphs are connected for `n >= 1`.
    pub fn edges(&self, n: usize) -> Vec<(usize, usize)> {
        match self {
            Topology::Line => (1..n).map(|i| (i - 1, i)).collect(),
            Topology::Grid => grid_edges(n),
            Topology::HeavyHex => heavy_hex_edges(n),
        }
    }

    /// Per-qubit degrees for an `n`-qubit device.
    pub fn degrees(&self, n: usize) -> Vec<usize> {
        let mut deg = vec![0usize; n];
        for (a, b) in self.edges(n) {
            deg[a] += 1;
            deg[b] += 1;
        }
        deg
    }

    /// Average degree (2 * |E| / n).
    pub fn average_degree(&self, n: usize) -> f64 {
        if n == 0 {
            return 0.0;
        }
        2.0 * self.edges(n).len() as f64 / n as f64
    }

    /// Neighbours of qubit `q` in an `n`-qubit device.
    pub fn neighbours(&self, n: usize, q: usize) -> Vec<usize> {
        self.edges(n)
            .into_iter()
            .filter_map(|(a, b)| {
                if a == q {
                    Some(b)
                } else if b == q {
                    Some(a)
                } else {
                    None
                }
            })
            .collect()
    }
}

fn grid_edges(n: usize) -> Vec<(usize, usize)> {
    if n == 0 {
        return Vec::new();
    }
    let cols = (n as f64).sqrt().ceil() as usize;
    let mut edges = Vec::new();
    for q in 0..n {
        let (r, c) = (q / cols, q % cols);
        if c + 1 < cols && q + 1 < n && (q + 1) / cols == r {
            edges.push((q, q + 1));
        }
        if q + cols < n {
            edges.push((q, q + cols));
        }
    }
    edges
}

/// Generates a heavy-hex-like lattice: qubits snake through rows of width
/// `cols` (which guarantees connectivity and degree 2 along the chain),
/// with sparse vertical rungs every 8 columns whose offset alternates
/// between row gaps — the IBM Falcon/Eagle bridge pattern. The result has
/// max degree 3 and average degree ~2.1-2.3, matching IBM machines.
fn heavy_hex_edges(n: usize) -> Vec<(usize, usize)> {
    if n <= 2 {
        return (1..n).map(|i| (i - 1, i)).collect();
    }
    let cols = ((n as f64).sqrt().ceil() as usize).next_multiple_of(4).clamp(4, 12);
    // Serpentine index of the qubit at (row, col).
    let idx = |r: usize, c: usize| r * cols + if r.is_multiple_of(2) { c } else { cols - 1 - c };
    let mut edges: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
    let rows = n.div_ceil(cols);
    for gap in 0..rows.saturating_sub(1) {
        let offset = if gap % 2 == 0 { 0 } else { cols / 2 };
        let mut c = offset;
        while c < cols {
            let (a, b) = (idx(gap, c), idx(gap + 1, c));
            if a < n && b < n {
                edges.push((a.min(b), a.max(b)));
            }
            c += 8;
        }
    }
    edges.sort_unstable();
    edges.dedup();
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_connected(n: usize, edges: &[(usize, usize)]) -> bool {
        if n == 0 {
            return true;
        }
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in edges {
            adj[a].push(b);
            adj[b].push(a);
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(q) = stack.pop() {
            for &p in &adj[q] {
                if !seen[p] {
                    seen[p] = true;
                    stack.push(p);
                }
            }
        }
        seen.iter().all(|&s| s)
    }

    #[test]
    fn line_is_a_chain() {
        let e = Topology::Line.edges(5);
        assert_eq!(e, vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert!((Topology::Line.average_degree(5) - 1.6).abs() < 1e-12);
    }

    #[test]
    fn grid_has_max_degree_four() {
        for n in [4, 9, 16, 53, 100] {
            let deg = Topology::Grid.degrees(n);
            assert!(deg.iter().all(|&d| d <= 4), "n={n}");
            assert!(is_connected(n, &Topology::Grid.edges(n)), "n={n}");
        }
    }

    #[test]
    fn grid_interior_degree_is_four() {
        // 5x5 grid: the center qubit (index 12) has 4 neighbours.
        assert_eq!(Topology::Grid.degrees(25)[12], 4);
    }

    #[test]
    fn heavy_hex_has_max_degree_three() {
        for n in [5, 16, 27, 65, 127] {
            let deg = Topology::HeavyHex.degrees(n);
            assert!(deg.iter().all(|&d| d <= 3), "n={n}: max degree {}", deg.iter().max().unwrap());
        }
    }

    #[test]
    fn heavy_hex_average_degree_matches_ibm() {
        // IBM heavy-hex machines average close to degree 2 (e.g. 27-qubit
        // Falcon: 28 edges -> 2.07).
        for n in [16, 27, 65, 127] {
            let avg = Topology::HeavyHex.average_degree(n);
            assert!((1.8..=2.4).contains(&avg), "n={n}: avg degree {avg}");
        }
    }

    #[test]
    fn heavy_hex_is_connected() {
        for n in 1..=130 {
            assert!(
                is_connected(n, &Topology::HeavyHex.edges(n)),
                "heavy-hex with {n} qubits is disconnected"
            );
        }
    }

    #[test]
    fn edges_are_canonical_and_unique() {
        for topo in [Topology::Line, Topology::Grid, Topology::HeavyHex] {
            let edges = topo.edges(64);
            let mut sorted = edges.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(edges.len(), sorted.len(), "{topo:?} has duplicate edges");
            assert!(edges.iter().all(|&(a, b)| a < b), "{topo:?} has non-canonical edges");
        }
    }

    #[test]
    fn neighbours_are_symmetric() {
        let topo = Topology::HeavyHex;
        let n = 27;
        for q in 0..n {
            for p in topo.neighbours(n, q) {
                assert!(topo.neighbours(n, p).contains(&q));
            }
        }
    }
}
