//! Property tests of the device and pulse substrate.

use compaqt_pulse::device::Device;
use compaqt_pulse::memory_model;
use compaqt_pulse::shapes::{Drag, Gaussian, GaussianSquare, PulseShape};
use compaqt_pulse::topology::Topology;
use compaqt_pulse::vendor::Vendor;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn devices_are_reproducible(n in 1usize..32, seed in proptest::num::u64::ANY) {
        let a = Device::synthesize(Vendor::Ibm, n, seed);
        let b = Device::synthesize(Vendor::Ibm, n, seed);
        for q in 0..n {
            prop_assert_eq!(a.qubit(q).x_amp, b.qubit(q).x_amp);
        }
        prop_assert_eq!(a.pairs().len(), b.pairs().len());
    }

    #[test]
    fn all_pulses_stay_in_dac_range(n in 1usize..12, seed in proptest::num::u64::ANY) {
        let device = Device::synthesize(Vendor::Ibm, n, seed);
        for (gate, wf) in device.pulse_library().iter() {
            prop_assert!(wf.peak_amplitude() < 1.0, "{gate} clips");
            prop_assert!(!wf.is_empty());
        }
    }

    #[test]
    fn library_capacity_matches_model_within_20_percent(
        n in 2usize..24,
        seed in proptest::num::u64::ANY,
    ) {
        let device = Device::synthesize(Vendor::Ibm, n, seed);
        let lib = device.pulse_library();
        let actual = lib.total_storage_bytes(32) as f64;
        let modelled = memory_model::total_capacity_bytes(device.params(), n);
        let rel = (actual - modelled).abs() / modelled;
        prop_assert!(rel < 0.2, "actual {actual} vs model {modelled}");
    }

    #[test]
    fn gaussian_peak_equals_amp(amp in 0.05f64..0.95, sigma in 8.0f64..64.0) {
        let (i, _) = Gaussian::new(161, amp, sigma).envelope();
        let peak = i.iter().cloned().fold(0.0, f64::max);
        prop_assert!((peak - amp).abs() < 1e-9);
    }

    #[test]
    fn drag_q_energy_scales_with_beta(beta in 0.05f64..0.5) {
        let (_, q1) = Drag::new(160, 0.5, 40.0, beta).envelope();
        let (_, q2) = Drag::new(160, 0.5, 40.0, 2.0 * beta).envelope();
        let e1: f64 = q1.iter().map(|v| v * v).sum();
        let e2: f64 = q2.iter().map(|v| v * v).sum();
        prop_assert!((e2 / e1 - 4.0).abs() < 1e-6, "ratio {}", e2 / e1);
    }

    #[test]
    fn flat_top_width_is_respected(width_frac in 0.5f64..0.9) {
        let n = 400;
        let width = (n as f64 * width_frac) as usize;
        let gs = GaussianSquare::new(n, 0.4, 10.0, width);
        let wf = gs.to_waveform("f", 4.54);
        let (_, plateau_len) = wf.flat_top_plateau(16).unwrap();
        // Plateau detection must find at least the configured width.
        prop_assert!(plateau_len >= width, "found {plateau_len} of {width}");
    }

    #[test]
    fn topology_degrees_are_bounded(n in 1usize..150) {
        for (topo, max_deg) in [
            (Topology::Line, 2),
            (Topology::HeavyHex, 3),
            (Topology::Grid, 4),
        ] {
            let degrees = topo.degrees(n);
            prop_assert!(degrees.iter().all(|&d| d <= max_deg), "{topo:?} n={n}");
        }
    }

    #[test]
    fn capacity_model_grows_with_qubits(n in 2usize..100) {
        // Near-monotone: adding a qubit always adds 1Q+readout storage,
        // but the heavy-hex generator can drop a rung when its row width
        // re-quantizes, so allow one coupler's worth of slack.
        let p = Vendor::Ibm.params();
        let c1 = memory_model::total_capacity_bytes(&p, n);
        let c2 = memory_model::total_capacity_bytes(&p, n + 1);
        let slack = 2.0 * p.waveform_bytes(p.tau_2q_ns);
        prop_assert!(c2 > c1 - slack, "n={n}: {c2} vs {c1}");
        // And over a 10-qubit span growth always wins.
        let c10 = memory_model::total_capacity_bytes(&p, n + 10);
        prop_assert!(c10 > c1);
    }

    #[test]
    fn drift_is_bounded(seed in proptest::num::u64::ANY, mag in 0.001f64..0.1) {
        let device = Device::synthesize(Vendor::Ibm, 4, 7);
        let drifted = device.with_drift(seed, mag);
        for q in 0..4 {
            let rel = (drifted.qubit(q).x_amp / device.qubit(q).x_amp - 1.0).abs();
            prop_assert!(rel <= mag + 1e-12, "drift {rel} exceeds {mag}");
        }
    }
}
