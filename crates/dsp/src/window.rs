//! Splitting waveforms into fixed-size transform windows.
//!
//! The windowed DCT (`DCT-W`) breaks a waveform into windows of a fixed
//! size (`WS`, typically 8 or 16) so the hardware IDCT is a small
//! fixed-size block (Section IV-C). The final window is padded; for
//! qubit-control envelopes that decay to zero, zero padding is natural, but
//! edge padding is also provided because flat-top pulses may end a window
//! mid-plateau.

use serde::{Deserialize, Serialize};

/// How the final partial window is filled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PadMode {
    /// Pad with zeros (default; correct for envelopes that end at zero).
    #[default]
    Zero,
    /// Repeat the last sample (avoids an artificial step for pulses that
    /// end off zero).
    Edge,
}

/// Splits `signal` into windows of `ws` samples, padding the last window.
///
/// Returns the windows and the number of valid samples in the final window
/// (equal to `ws` when the signal length is a multiple of `ws`).
///
/// # Panics
///
/// Panics if `ws == 0` or the signal is empty.
///
/// # Example
///
/// ```
/// use compaqt_dsp::window::{split, PadMode};
///
/// let (wins, tail) = split(&[1.0, 2.0, 3.0, 4.0, 5.0], 4, PadMode::Edge);
/// assert_eq!(wins.len(), 2);
/// assert_eq!(wins[1], vec![5.0, 5.0, 5.0, 5.0]);
/// assert_eq!(tail, 1);
/// ```
pub fn split(signal: &[f64], ws: usize, pad: PadMode) -> (Vec<Vec<f64>>, usize) {
    assert!(ws > 0, "window size must be positive");
    assert!(!signal.is_empty(), "signal must be non-empty");
    let mut windows = Vec::with_capacity(signal.len().div_ceil(ws));
    for chunk in signal.chunks(ws) {
        let mut w = chunk.to_vec();
        if w.len() < ws {
            let fill = match pad {
                PadMode::Zero => 0.0,
                PadMode::Edge => *w.last().expect("chunk is non-empty"),
            };
            w.resize(ws, fill);
        }
        windows.push(w);
    }
    let tail = signal.len() - (windows.len() - 1) * ws;
    (windows, tail)
}

/// Reassembles windows into a signal of `len` samples, dropping padding.
///
/// # Panics
///
/// Panics if the windows cannot cover `len` samples.
pub fn join(windows: &[Vec<f64>], len: usize) -> Vec<f64> {
    let total: usize = windows.iter().map(Vec::len).sum();
    assert!(total >= len, "windows cover {total} samples, need {len}");
    let mut out = Vec::with_capacity(len);
    for w in windows {
        for &v in w {
            if out.len() == len {
                return out;
            }
            out.push(v);
        }
    }
    out
}

/// Number of windows of size `ws` needed to cover `len` samples.
pub fn window_count(len: usize, ws: usize) -> usize {
    assert!(ws > 0, "window size must be positive");
    len.div_ceil(ws)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_multiple_needs_no_padding() {
        let sig: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let (wins, tail) = split(&sig, 8, PadMode::Zero);
        assert_eq!(wins.len(), 2);
        assert_eq!(tail, 8);
        assert_eq!(join(&wins, 16), sig);
    }

    #[test]
    fn zero_padding_fills_tail() {
        let (wins, tail) = split(&[1.0, 2.0, 3.0], 8, PadMode::Zero);
        assert_eq!(wins.len(), 1);
        assert_eq!(tail, 3);
        assert_eq!(wins[0][3..], [0.0; 5]);
    }

    #[test]
    fn edge_padding_repeats_last_sample() {
        let (wins, _) = split(&[1.0, 2.0, 7.0], 5, PadMode::Edge);
        assert_eq!(wins[0], vec![1.0, 2.0, 7.0, 7.0, 7.0]);
    }

    #[test]
    fn join_drops_padding() {
        let sig = vec![0.5; 13];
        let (wins, _) = split(&sig, 8, PadMode::Zero);
        assert_eq!(join(&wins, 13), sig);
    }

    #[test]
    fn window_count_rounds_up() {
        assert_eq!(window_count(16, 8), 2);
        assert_eq!(window_count(17, 8), 3);
        assert_eq!(window_count(1, 8), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_rejected() {
        split(&[1.0], 0, PadMode::Zero);
    }
}
