//! Magnitude thresholding of transform coefficients.
//!
//! Compression is lossy only through this step (plus integer rounding):
//! coefficients with magnitude below a threshold are zeroed so the
//! run-length stage can collapse the tail of each window. The
//! fidelity-aware compression loop (Algorithm 1) repeatedly halves the
//! threshold until the reconstruction error meets the target.

/// Zeroes every coefficient with `|c| < threshold`; returns how many were
/// zeroed.
///
/// # Example
///
/// ```
/// let mut c = [0.9, 0.04, -0.03, 0.5];
/// let zeroed = compaqt_dsp::threshold::apply_threshold(&mut c, 0.05);
/// assert_eq!(zeroed, 2);
/// assert_eq!(c, [0.9, 0.0, 0.0, 0.5]);
/// ```
pub fn apply_threshold(coeffs: &mut [f64], threshold: f64) -> usize {
    let mut zeroed = 0;
    for c in coeffs.iter_mut() {
        if c.abs() < threshold && *c != 0.0 {
            *c = 0.0;
            zeroed += 1;
        }
    }
    zeroed
}

/// Integer-coefficient variant of [`apply_threshold`].
pub fn apply_threshold_int(coeffs: &mut [i32], threshold: i32) -> usize {
    let mut zeroed = 0;
    for c in coeffs.iter_mut() {
        if c.abs() < threshold && *c != 0 {
            *c = 0;
            zeroed += 1;
        }
    }
    zeroed
}

/// Number of trailing zeros in a window — the run the RLE stage collapses.
pub fn trailing_zeros(coeffs: &[i32]) -> usize {
    coeffs.iter().rev().take_while(|&&c| c == 0).count()
}

/// Number of non-zero coefficients in a window.
pub fn nonzero_count(coeffs: &[i32]) -> usize {
    coeffs.iter().filter(|&&c| c != 0).count()
}

/// The threshold schedule of Algorithm 1: starts at `initial` and halves on
/// every retry until dropping below `floor` (at which point compression
/// gives up and the pulse is stored uncompressed).
#[derive(Debug, Clone, Copy)]
pub struct ThresholdSchedule {
    next: f64,
    floor: f64,
}

impl ThresholdSchedule {
    /// Creates the schedule used by the paper: halving from `initial`,
    /// failing below `1e-6`.
    pub fn new(initial: f64) -> Self {
        ThresholdSchedule { next: initial, floor: 1e-6 }
    }

    /// Creates a schedule with an explicit floor.
    pub fn with_floor(initial: f64, floor: f64) -> Self {
        ThresholdSchedule { next: initial, floor }
    }

    /// The failure floor.
    pub fn floor(&self) -> f64 {
        self.floor
    }
}

impl Iterator for ThresholdSchedule {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        if self.next < self.floor {
            return None;
        }
        let t = self.next;
        self.next /= 2.0;
        Some(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_zeroes_small_magnitudes_only() {
        let mut c = [1.0, -1.0, 0.01, -0.01, 0.0];
        let n = apply_threshold(&mut c, 0.05);
        assert_eq!(n, 2);
        assert_eq!(c, [1.0, -1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn threshold_boundary_is_exclusive() {
        let mut c = [0.05, 0.049_999];
        apply_threshold(&mut c, 0.05);
        assert_eq!(c[0], 0.05, "values exactly at the threshold survive");
        assert_eq!(c[1], 0.0);
    }

    #[test]
    fn int_threshold_behaviour_matches() {
        let mut c = [100, -100, 3, -3, 0];
        let n = apply_threshold_int(&mut c, 4);
        assert_eq!(n, 2);
        assert_eq!(c, [100, -100, 0, 0, 0]);
    }

    #[test]
    fn trailing_zero_and_nonzero_counts() {
        let c = [5, 0, 3, 0, 0, 0];
        assert_eq!(trailing_zeros(&c), 3);
        assert_eq!(nonzero_count(&c), 2);
        assert_eq!(trailing_zeros(&[0; 4]), 4);
        assert_eq!(nonzero_count(&[0; 4]), 0);
    }

    #[test]
    fn schedule_halves_until_floor() {
        let steps: Vec<f64> = ThresholdSchedule::with_floor(1.0, 0.2).collect();
        assert_eq!(steps, vec![1.0, 0.5, 0.25]);
    }

    #[test]
    fn schedule_matches_algorithm_one_floor() {
        let s = ThresholdSchedule::new(1e-2);
        let count = s.count();
        // 1e-2 / 2^k >= 1e-6  =>  k <= log2(1e4) ~ 13.28 -> 14 thresholds.
        assert_eq!(count, 14);
    }
}
