//! Fast recursive DCT-II/III (O(N log N)) for long waveforms.
//!
//! `DCT-N` transforms whole waveforms — IBM cross-resonance pulses exceed
//! 1300 samples, where the direct O(N^2) matrix transform is wasteful.
//! This is the classic even/odd split: for even N,
//!
//! ```text
//! even coefficients:  DCT-II of  e[n] = x[n] + x[N-1-n]   (length N/2)
//! odd  coefficients:  from DCT-II of o[n] = (x[n] - x[N-1-n]) * 2cos(pi(2n+1)/2N)
//!                     via y[2k+1] = O[k] - y[2k-1] recurrence
//! ```
//!
//! Odd lengths fall back to the direct transform, so any N is accepted.
//! Outputs use the same orthonormal convention as [`crate::dct`].

use crate::dct::Dct;

/// Fast orthonormal DCT-II; exact inverse is [`fast_dct3`].
///
/// # Example
///
/// ```
/// let x: Vec<f64> = (0..1362).map(|i| (i as f64 * 0.01).sin()).collect();
/// let fast = compaqt_dsp::fastdct::fast_dct2(&x);
/// let direct = compaqt_dsp::dct::dct2(&x);
/// for (a, b) in fast.iter().zip(&direct) {
///     assert!((a - b).abs() < 1e-9);
/// }
/// ```
pub fn fast_dct2(x: &[f64]) -> Vec<f64> {
    let n = x.len();
    // Unnormalized recursive kernel, then orthonormal scaling.
    let mut y = dct2_unnorm(x);
    let s0 = (1.0 / n as f64).sqrt();
    let s = (2.0 / n as f64).sqrt();
    for (k, v) in y.iter_mut().enumerate() {
        *v *= if k == 0 { s0 } else { s };
    }
    y
}

/// Fast orthonormal DCT-III (inverse of [`fast_dct2`]).
pub fn fast_dct3(y: &[f64]) -> Vec<f64> {
    let n = y.len();
    // Undo orthonormal scaling, run the transposed recursion.
    let s0 = (1.0 / n as f64).sqrt();
    let s = (2.0 / n as f64).sqrt();
    let scaled: Vec<f64> = y
        .iter()
        .enumerate()
        .map(|(k, &v)| v * if k == 0 { s0 } else { s })
        .collect();
    dct3_unnorm(&scaled)
}

/// Unnormalized DCT-II: `y[k] = sum_n x[n] cos(pi (2n+1) k / 2N)`.
fn dct2_unnorm(x: &[f64]) -> Vec<f64> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![x[0]];
    }
    if n % 2 == 1 || n < 8 {
        // Direct evaluation for odd or tiny lengths.
        let mut y = vec![0.0; n];
        for (k, yk) in y.iter_mut().enumerate() {
            *yk = (0..n)
                .map(|i| {
                    x[i] * (std::f64::consts::PI * (2 * i + 1) as f64 * k as f64
                        / (2 * n) as f64)
                        .cos()
                })
                .sum();
        }
        return y;
    }
    let h = n / 2;
    let mut even = vec![0.0; h];
    let mut odd = vec![0.0; h];
    for i in 0..h {
        let a = x[i];
        let b = x[n - 1 - i];
        even[i] = a + b;
        let c = 2.0 * (std::f64::consts::PI * (2 * i + 1) as f64 / (2 * n) as f64).cos();
        odd[i] = (a - b) * c;
    }
    let ye = dct2_unnorm(&even);
    let yo = dct2_unnorm(&odd);
    let mut y = vec![0.0; n];
    for k in 0..h {
        y[2 * k] = ye[k];
    }
    // y[2k+1] = yo[k] - y[2k-1], with y[-1] defined so y[1] = yo[0]/2... the
    // standard recurrence: y[1] = yo[0]/2? Derivation: O[k] = y[2k+1] + y[2k-1]
    // with y[-1] = y[1], i.e. O[0] = 2 y[1].
    y[1] = yo[0] / 2.0;
    for k in 1..h {
        y[2 * k + 1] = yo[k] - y[2 * k - 1];
    }
    y
}

/// Unnormalized DCT-III, the exact transpose of [`dct2_unnorm`].
fn dct3_unnorm(y: &[f64]) -> Vec<f64> {
    let n = y.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![y[0]];
    }
    if n % 2 == 1 || n < 8 {
        let mut x = vec![0.0; n];
        for (i, xi) in x.iter_mut().enumerate() {
            *xi = (0..n)
                .map(|k| {
                    y[k] * (std::f64::consts::PI * (2 * i + 1) as f64 * k as f64
                        / (2 * n) as f64)
                        .cos()
                })
                .sum();
        }
        return x;
    }
    // Exact transpose of the forward factorization (DCT-III matrix is the
    // transpose of DCT-II): transpose the interleave/recurrence stage,
    // recurse, then transpose the input butterfly.
    let h = n / 2;
    let ye: Vec<f64> = (0..h).map(|k| y[2 * k]).collect();
    // Forward recurrence was y[2k+1] = yo[k] - y[2k-1] (with y[1] =
    // yo[0]/2); its transpose is the backward alternating suffix sum
    // s[j] = u[j] - s[j+1] over u[k] = y[2k+1], halving the j = 0 term.
    let mut yo = vec![0.0; h];
    let mut suffix = 0.0;
    for j in (0..h).rev() {
        suffix = y[2 * j + 1] - suffix;
        yo[j] = suffix;
    }
    yo[0] /= 2.0;
    let xe = dct3_unnorm(&ye);
    let xo = dct3_unnorm(&yo);
    let mut x = vec![0.0; n];
    for i in 0..h {
        // The forward butterfly's odd rows carry 2cos(pi(2i+1)/2N).
        let c = 2.0 * (std::f64::consts::PI * (2 * i + 1) as f64 / (2 * n) as f64).cos();
        let o = xo[i] * c;
        x[i] = xe[i] + o;
        x[n - 1 - i] = xe[i] - o;
    }
    x
}

/// Convenience: pick the faster implementation by length (direct matrix
/// for short windows where the precomputed basis wins, recursive for
/// long waveforms).
pub fn adaptive_dct2(x: &[f64]) -> Vec<f64> {
    if x.len() <= 64 {
        Dct::new(x.len()).forward(x)
    } else {
        fast_dct2(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dct::{dct2, dct3};

    #[test]
    fn fast_matches_direct_for_many_lengths() {
        for n in [1usize, 2, 4, 7, 8, 16, 17, 64, 136, 160, 454, 1362] {
            let x: Vec<f64> = (0..n).map(|i| ((i * i) as f64 * 0.013).sin() * 0.7).collect();
            let fast = fast_dct2(&x);
            let direct = dct2(&x);
            for (k, (a, b)) in fast.iter().zip(&direct).enumerate() {
                assert!((a - b).abs() < 1e-9, "n={n} k={k}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn fast_inverse_matches_direct_inverse() {
        for n in [8usize, 32, 136, 1362] {
            let y: Vec<f64> = (0..n).map(|k| (k as f64 * 0.37).cos() / (1.0 + k as f64)).collect();
            let fast = fast_dct3(&y);
            let direct = dct3(&y);
            for (a, b) in fast.iter().zip(&direct) {
                assert!((a - b).abs() < 1e-9, "n={n}");
            }
        }
    }

    #[test]
    fn fast_round_trip() {
        let x: Vec<f64> = (0..1024).map(|i| (i as f64 * 0.02).sin()).collect();
        let back = fast_dct3(&fast_dct2(&x));
        for (a, b) in x.iter().zip(&back) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_and_single_are_handled() {
        assert!(fast_dct2(&[]).is_empty());
        let y = fast_dct2(&[0.5]);
        assert!((y[0] - 0.5).abs() < 1e-15);
    }

    #[test]
    fn adaptive_dispatches_consistently() {
        for n in [8usize, 64, 65, 500] {
            let x: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
            let a = adaptive_dct2(&x);
            let d = dct2(&x);
            for (u, v) in a.iter().zip(&d) {
                assert!((u - v).abs() < 1e-9, "n={n}");
            }
        }
    }
}
