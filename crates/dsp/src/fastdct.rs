//! Fast DCT-II/III (O(N log N)) for long waveforms.
//!
//! `DCT-N` transforms whole waveforms — IBM cross-resonance pulses exceed
//! 1300 samples, where the direct O(N^2) matrix transform is wasteful.
//! The factorization is the classic even/odd split: for even N,
//!
//! ```text
//! even coefficients:  DCT-II of  e[n] = x[n] + x[N-1-n]   (length N/2)
//! odd  coefficients:  from DCT-II of o[n] = (x[n] - x[N-1-n]) * 2cos(pi(2n+1)/2N)
//!                     via y[2k+1] = O[k] - y[2k-1] recurrence
//! ```
//!
//! Odd lengths fall back to the direct transform, so any N is accepted.
//! Outputs use the same orthonormal convention as [`crate::dct`].
//!
//! The kernel itself lives in [`crate::plan::DctPlan`] as an *iterative,
//! in-place* pass structure over a single scratch buffer (the historical
//! recursive implementation allocated two fresh `Vec`s per split level).
//! The free functions here are the allocating convenience wrappers: they
//! build a throwaway plan per call. Hot loops (the decompression engine,
//! batch compilers) should hold a [`crate::plan::DctPlan`] and call its
//! `forward_into`/`inverse_into` instead.

use crate::dct::Dct;
use crate::plan::DctPlan;

/// Fast orthonormal DCT-II; exact inverse is [`fast_dct3`].
///
/// # Example
///
/// ```
/// let x: Vec<f64> = (0..1362).map(|i| (i as f64 * 0.01).sin()).collect();
/// let fast = compaqt_dsp::fastdct::fast_dct2(&x);
/// let direct = compaqt_dsp::dct::dct2(&x);
/// for (a, b) in fast.iter().zip(&direct) {
///     assert!((a - b).abs() < 1e-9);
/// }
/// ```
pub fn fast_dct2(x: &[f64]) -> Vec<f64> {
    DctPlan::new(x.len()).forward(x)
}

/// Fast orthonormal DCT-III (inverse of [`fast_dct2`]).
pub fn fast_dct3(y: &[f64]) -> Vec<f64> {
    DctPlan::new(y.len()).inverse(y)
}

/// Convenience: pick the faster implementation by length (direct matrix
/// for short windows where the precomputed basis wins, split-radix plan
/// for long waveforms).
pub fn adaptive_dct2(x: &[f64]) -> Vec<f64> {
    if x.len() <= 64 {
        Dct::new(x.len()).forward(x)
    } else {
        fast_dct2(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dct::{dct2, dct3};

    #[test]
    fn fast_matches_direct_for_many_lengths() {
        for n in [1usize, 2, 4, 7, 8, 16, 17, 64, 136, 160, 454, 1362] {
            let x: Vec<f64> = (0..n).map(|i| ((i * i) as f64 * 0.013).sin() * 0.7).collect();
            let fast = fast_dct2(&x);
            let direct = dct2(&x);
            for (k, (a, b)) in fast.iter().zip(&direct).enumerate() {
                assert!((a - b).abs() < 1e-9, "n={n} k={k}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn fast_inverse_matches_direct_inverse() {
        for n in [8usize, 32, 136, 1362] {
            let y: Vec<f64> = (0..n).map(|k| (k as f64 * 0.37).cos() / (1.0 + k as f64)).collect();
            let fast = fast_dct3(&y);
            let direct = dct3(&y);
            for (a, b) in fast.iter().zip(&direct) {
                assert!((a - b).abs() < 1e-9, "n={n}");
            }
        }
    }

    #[test]
    fn fast_round_trip() {
        let x: Vec<f64> = (0..1024).map(|i| (i as f64 * 0.02).sin()).collect();
        let back = fast_dct3(&fast_dct2(&x));
        for (a, b) in x.iter().zip(&back) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_and_single_are_handled() {
        assert!(fast_dct2(&[]).is_empty());
        let y = fast_dct2(&[0.5]);
        assert!((y[0] - 0.5).abs() < 1e-15);
    }

    #[test]
    fn adaptive_dispatches_consistently() {
        for n in [8usize, 64, 65, 500] {
            let x: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
            let a = adaptive_dct2(&x);
            let d = dct2(&x);
            for (u, v) in a.iter().zip(&d) {
                assert!((u - v).abs() < 1e-9, "n={n}");
            }
        }
    }
}
