//! Run-length codewords for thresholded transform windows.
//!
//! After thresholding, the tail of a DCT window is all zeros; COMPAQT
//! replaces the run with a single codeword carrying (1) a signature that
//! identifies it as a codeword and (2) the run length (Section IV-C).
//! Adaptive decompression (Section V-D) adds a second codeword kind that
//! repeats the *previous* sample, used to encode the constant segment of
//! flat-top waveforms without touching the IDCT.
//!
//! # Wire format
//!
//! Each stored word is 16 bits:
//!
//! | bits 15..14 | meaning                         | payload             |
//! |-------------|---------------------------------|---------------------|
//! | `0b0x`      | transform coefficient           | 15-bit signed value |
//! | `0b10`      | zero run (feeds zeros to IDCT)  | 14-bit run length   |
//! | `0b11`      | repeat previous output sample   | 14-bit run length   |
//!
//! Reserving one tag bit narrows coefficients to 15 bits; the compressor
//! accounts for that by clamping (the fidelity impact is part of the
//! measured int-DCT MSE).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum run length representable in one codeword (14-bit field).
pub const MAX_RUN: u16 = (1 << 14) - 1;

/// Maximum coefficient magnitude storable in a value word (15-bit signed).
pub const MAX_COEFF: i32 = (1 << 14) - 1;

/// Minimum coefficient value storable in a value word.
pub const MIN_COEFF: i32 = -(1 << 14);

/// A run-length codeword (the paper's "RLE codeword").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RleCodeword {
    /// How many samples the codeword expands to.
    pub run: u16,
    /// Whether the run repeats the previous sample instead of zeros.
    pub repeat_previous: bool,
}

/// One 16-bit word of the compressed stream: either a coefficient or a
/// run-length codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CodedWord {
    /// A (15-bit) transform coefficient or literal sample.
    Coeff(i16),
    /// A run-length codeword.
    Rle(RleCodeword),
}

impl CodedWord {
    /// Packs the word into its 16-bit wire representation.
    ///
    /// # Panics
    ///
    /// Panics if a coefficient exceeds the 15-bit range or a run exceeds
    /// [`MAX_RUN`]; encoders are responsible for clamping first.
    pub fn pack(self) -> u16 {
        match self {
            CodedWord::Coeff(v) => {
                assert!(
                    (MIN_COEFF..=MAX_COEFF).contains(&i32::from(v)),
                    "coefficient {v} exceeds 15-bit storage"
                );
                (v as u16) & 0x7FFF
            }
            CodedWord::Rle(cw) => {
                assert!(cw.run <= MAX_RUN, "run {} exceeds codeword field", cw.run);
                let tag = if cw.repeat_previous { 0xC000 } else { 0x8000 };
                tag | cw.run
            }
        }
    }

    /// Decodes a 16-bit wire word.
    pub fn unpack(word: u16) -> Self {
        if word & 0x8000 == 0 {
            // Sign-extend the 15-bit payload.
            let v = ((word << 1) as i16) >> 1;
            CodedWord::Coeff(v)
        } else {
            CodedWord::Rle(RleCodeword { run: word & 0x3FFF, repeat_previous: word & 0x4000 != 0 })
        }
    }

    /// Clamps an i32 coefficient into the storable 15-bit range.
    pub fn clamp_coeff(v: i32) -> i16 {
        v.clamp(MIN_COEFF, MAX_COEFF) as i16
    }
}

impl fmt::Display for CodedWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodedWord::Coeff(v) => write!(f, "C({v})"),
            CodedWord::Rle(r) if r.repeat_previous => write!(f, "REP({})", r.run),
            CodedWord::Rle(r) => write!(f, "Z({})", r.run),
        }
    }
}

/// Encodes thresholded transform windows into coded words.
///
/// Per the paper, run-length encoding starts only once the remaining tail
/// of the window is consistently zero; interior zeros are stored literally
/// so the hardware decoder never reorders coefficients.
#[derive(Debug, Clone, Copy, Default)]
pub struct RleEncoder;

impl RleEncoder {
    /// Creates an encoder.
    pub fn new() -> Self {
        RleEncoder
    }

    /// Encodes one window of coefficients.
    ///
    /// Trailing zeros are replaced by a single zero-run codeword. A window
    /// of all zeros becomes exactly one codeword. Coefficients are clamped
    /// into the 15-bit storable range.
    ///
    /// # Example
    ///
    /// ```
    /// use compaqt_dsp::rle::{RleEncoder, CodedWord};
    ///
    /// let words = RleEncoder::new().encode_window(&[900, -42, 0, 0, 0, 0, 0, 0]);
    /// assert_eq!(words.len(), 3); // 2 coefficients + 1 RLE codeword
    /// assert!(matches!(words[2], CodedWord::Rle(_)));
    /// ```
    pub fn encode_window(&self, coeffs: &[i32]) -> Vec<CodedWord> {
        let tail_zeros = coeffs.iter().rev().take_while(|&&c| c == 0).count();
        let head = coeffs.len() - tail_zeros;
        let mut out: Vec<CodedWord> =
            coeffs[..head].iter().map(|&c| CodedWord::Coeff(CodedWord::clamp_coeff(c))).collect();
        if tail_zeros > 0 {
            let mut remaining = tail_zeros;
            while remaining > 0 {
                let run = remaining.min(MAX_RUN as usize);
                out.push(CodedWord::Rle(RleCodeword { run: run as u16, repeat_previous: false }));
                remaining -= run;
            }
        }
        out
    }

    /// Encodes a constant run of `len` samples of value `value` for the
    /// adaptive (IDCT-bypass) path: one literal sample followed by a
    /// repeat-previous codeword chain.
    pub fn encode_constant_run(&self, value: i16, len: usize) -> Vec<CodedWord> {
        assert!(len > 0, "constant run must be non-empty");
        let mut out = vec![CodedWord::Coeff(CodedWord::clamp_coeff(i32::from(value)))];
        let mut remaining = len - 1;
        while remaining > 0 {
            let run = remaining.min(MAX_RUN as usize);
            out.push(CodedWord::Rle(RleCodeword { run: run as u16, repeat_previous: true }));
            remaining -= run;
        }
        out
    }
}

/// Decodes coded words back into fixed-length coefficient windows.
///
/// This mirrors stage 1 of the hardware decompression pipeline (Figure 10):
/// the RLE decoder expands codewords into the RLE buffer that feeds the
/// IDCT.
#[derive(Debug, Clone, Copy, Default)]
pub struct RleDecoder;

impl RleDecoder {
    /// Creates a decoder.
    pub fn new() -> Self {
        RleDecoder
    }

    /// Decodes one window worth of words into exactly `window` coefficients.
    ///
    /// Allocating wrapper over [`RleDecoder::decode_window_into`].
    ///
    /// # Errors
    ///
    /// Returns [`RleError`] if the words expand to more or fewer samples
    /// than `window`, or if a repeat codeword appears with no preceding
    /// sample.
    pub fn decode_window(&self, words: &[CodedWord], window: usize) -> Result<Vec<i32>, RleError> {
        let mut out = vec![0i32; window];
        self.decode_window_into(words, &mut out)?;
        Ok(out)
    }

    /// Decodes one window of words into a caller-provided buffer,
    /// allocation-free; the buffer length *is* the window length.
    ///
    /// This is also the hardened entry point for untrusted streams: run
    /// lengths are checked against the remaining buffer space *before*
    /// any sample is written, so a hostile codeword claiming a 16k-sample
    /// run inside a 16-sample window errors out without expanding (the
    /// historical `Vec`-growing decoder materialized the whole bogus run
    /// beyond its reserved capacity before noticing).
    ///
    /// # Errors
    ///
    /// Returns [`RleError`] if the words would expand to more or fewer
    /// samples than `out.len()`, or if a repeat codeword appears with no
    /// preceding sample. The buffer contents are unspecified on error.
    pub fn decode_window_into(&self, words: &[CodedWord], out: &mut [i32]) -> Result<(), RleError> {
        let window = out.len();
        let mut pos = 0usize;
        for &w in words {
            match w {
                CodedWord::Coeff(v) => {
                    if pos >= window {
                        return Err(RleError::Overflow { produced: pos + 1, window });
                    }
                    out[pos] = i32::from(v);
                    pos += 1;
                }
                CodedWord::Rle(RleCodeword { run, repeat_previous }) => {
                    let fill = if repeat_previous {
                        if pos == 0 {
                            return Err(RleError::RepeatWithoutSample);
                        }
                        out[pos - 1]
                    } else {
                        0
                    };
                    let run = usize::from(run);
                    if run > window - pos {
                        return Err(RleError::Overflow { produced: pos + run, window });
                    }
                    out[pos..pos + run].fill(fill);
                    pos += run;
                }
            }
        }
        if pos != window {
            return Err(RleError::Underflow { produced: pos, window });
        }
        Ok(())
    }

    /// Decodes an unbounded stream (used by the adaptive bypass path where
    /// a single codeword may expand to an entire flat-top plateau).
    ///
    /// # Errors
    ///
    /// Returns [`RleError::RepeatWithoutSample`] if a repeat codeword has no
    /// preceding sample.
    pub fn decode_stream(&self, words: &[CodedWord]) -> Result<Vec<i32>, RleError> {
        let mut out = Vec::new();
        for &w in words {
            match w {
                CodedWord::Coeff(v) => out.push(i32::from(v)),
                CodedWord::Rle(RleCodeword { run, repeat_previous }) => {
                    let fill = if repeat_previous {
                        *out.last().ok_or(RleError::RepeatWithoutSample)?
                    } else {
                        0
                    };
                    for _ in 0..run {
                        out.push(fill);
                    }
                }
            }
        }
        Ok(out)
    }
}

/// Errors produced while decoding run-length streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RleError {
    /// The words expanded past the window length.
    Overflow {
        /// Samples produced so far.
        produced: usize,
        /// Expected window length.
        window: usize,
    },
    /// The words expanded to fewer samples than the window length.
    Underflow {
        /// Samples produced.
        produced: usize,
        /// Expected window length.
        window: usize,
    },
    /// A repeat-previous codeword appeared before any sample.
    RepeatWithoutSample,
}

impl fmt::Display for RleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RleError::Overflow { produced, window } => {
                write!(
                    f,
                    "run-length stream produced {produced} samples for a {window}-sample window"
                )
            }
            RleError::Underflow { produced, window } => {
                write!(f, "run-length stream produced only {produced} of {window} samples")
            }
            RleError::RepeatWithoutSample => {
                write!(f, "repeat codeword with no preceding sample")
            }
        }
    }
}

impl std::error::Error for RleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_round_trips_coefficients() {
        for v in [-16384i16, -1, 0, 1, 42, 16383, -9000] {
            let w = CodedWord::Coeff(v);
            assert_eq!(CodedWord::unpack(w.pack()), w, "value {v}");
        }
    }

    #[test]
    fn pack_unpack_round_trips_codewords() {
        for run in [0u16, 1, 5, 100, MAX_RUN] {
            for repeat in [false, true] {
                let w = CodedWord::Rle(RleCodeword { run, repeat_previous: repeat });
                assert_eq!(CodedWord::unpack(w.pack()), w);
            }
        }
    }

    #[test]
    #[should_panic(expected = "15-bit")]
    fn pack_rejects_oversized_coefficient() {
        CodedWord::Coeff(i16::MAX).pack();
    }

    #[test]
    fn encode_replaces_trailing_zeros_only() {
        let enc = RleEncoder::new();
        // Interior zero is kept literal; trailing run collapses.
        let words = enc.encode_window(&[5, 0, 7, 0, 0, 0, 0, 0]);
        assert_eq!(words.len(), 4);
        assert_eq!(words[0], CodedWord::Coeff(5));
        assert_eq!(words[1], CodedWord::Coeff(0));
        assert_eq!(words[2], CodedWord::Coeff(7));
        assert_eq!(words[3], CodedWord::Rle(RleCodeword { run: 5, repeat_previous: false }));
    }

    #[test]
    fn all_zero_window_is_one_codeword() {
        let words = RleEncoder::new().encode_window(&[0; 16]);
        assert_eq!(words.len(), 1);
        assert_eq!(words[0], CodedWord::Rle(RleCodeword { run: 16, repeat_previous: false }));
    }

    #[test]
    fn dense_window_has_no_codeword() {
        let coeffs: Vec<i32> = (1..=8).collect();
        let words = RleEncoder::new().encode_window(&coeffs);
        assert_eq!(words.len(), 8);
        assert!(words.iter().all(|w| matches!(w, CodedWord::Coeff(_))));
    }

    #[test]
    fn encode_decode_round_trip() {
        let enc = RleEncoder::new();
        let dec = RleDecoder::new();
        let cases: [&[i32]; 5] = [
            &[1, 2, 3, 0, 0, 0, 0, 0],
            &[0, 0, 0, 0, 0, 0, 0, 0],
            &[-7, 0, 0, 9, 0, 0, 0, 0],
            &[1, 2, 3, 4, 5, 6, 7, 8],
            &[16383, -16384, 0, 0, 0, 0, 0, 0],
        ];
        for coeffs in cases {
            let words = enc.encode_window(coeffs);
            let back = dec.decode_window(&words, coeffs.len()).unwrap();
            assert_eq!(&back, coeffs);
        }
    }

    #[test]
    fn oversized_coefficients_are_clamped() {
        let words = RleEncoder::new().encode_window(&[100_000, -100_000, 0, 0]);
        assert_eq!(words[0], CodedWord::Coeff(MAX_COEFF as i16));
        assert_eq!(words[1], CodedWord::Coeff(MIN_COEFF as i16));
    }

    #[test]
    fn constant_run_round_trips() {
        let enc = RleEncoder::new();
        let dec = RleDecoder::new();
        let words = enc.encode_constant_run(1200, 454);
        assert_eq!(words.len(), 2, "value + one repeat codeword");
        let back = dec.decode_stream(&words).unwrap();
        assert_eq!(back.len(), 454);
        assert!(back.iter().all(|&v| v == 1200));
    }

    #[test]
    fn long_runs_chain_codewords() {
        let enc = RleEncoder::new();
        let n = MAX_RUN as usize * 2 + 10;
        let words = enc.encode_constant_run(5, n + 1);
        let back = RleDecoder::new().decode_stream(&words).unwrap();
        assert_eq!(back.len(), n + 1);
    }

    #[test]
    fn decode_detects_length_mismatch() {
        let dec = RleDecoder::new();
        let words = [CodedWord::Coeff(1), CodedWord::Coeff(2)];
        assert!(matches!(dec.decode_window(&words, 8), Err(RleError::Underflow { .. })));
        let words = RleEncoder::new().encode_window(&[0; 16]);
        assert!(matches!(dec.decode_window(&words, 8), Err(RleError::Overflow { .. })));
    }

    #[test]
    fn decode_into_matches_allocating_decoder() {
        let enc = RleEncoder::new();
        let dec = RleDecoder::new();
        let cases: [&[i32]; 4] = [
            &[1, 2, 3, 0, 0, 0, 0, 0],
            &[0; 8],
            &[-7, 0, 0, 9, 0, 0, 0, 0],
            &[1, 2, 3, 4, 5, 6, 7, 8],
        ];
        for coeffs in cases {
            let words = enc.encode_window(coeffs);
            let alloc = dec.decode_window(&words, coeffs.len()).unwrap();
            let mut buf = [0i32; 8];
            dec.decode_window_into(&words, &mut buf).unwrap();
            assert_eq!(alloc, buf);
        }
    }

    #[test]
    fn hostile_run_is_rejected_without_expansion() {
        // A corrupted stream claiming a MAX_RUN-length zero run inside a
        // 16-sample window must error before any fill happens.
        let dec = RleDecoder::new();
        let words = [
            CodedWord::Coeff(3),
            CodedWord::Rle(RleCodeword { run: MAX_RUN, repeat_previous: false }),
        ];
        let mut buf = [7i32; 16];
        let err = dec.decode_window_into(&words, &mut buf).unwrap_err();
        assert_eq!(err, RleError::Overflow { produced: 1 + MAX_RUN as usize, window: 16 });
        // Nothing past the literal was touched.
        assert_eq!(&buf[1..], &[7i32; 15]);
        // The allocating wrapper inherits the same early rejection.
        assert!(matches!(dec.decode_window(&words, 16), Err(RleError::Overflow { .. })));
    }

    #[test]
    fn repeat_without_sample_is_an_error() {
        let dec = RleDecoder::new();
        let words = [CodedWord::Rle(RleCodeword { run: 3, repeat_previous: true })];
        assert_eq!(dec.decode_stream(&words), Err(RleError::RepeatWithoutSample));
    }

    #[test]
    fn display_is_nonempty() {
        for w in [
            CodedWord::Coeff(5),
            CodedWord::Rle(RleCodeword { run: 2, repeat_previous: false }),
            CodedWord::Rle(RleCodeword { run: 2, repeat_previous: true }),
        ] {
            assert!(!format!("{w}").is_empty());
        }
    }
}
