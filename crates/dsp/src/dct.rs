//! Orthonormal discrete cosine transforms (DCT-II and DCT-III).
//!
//! These are the floating-point reference transforms behind the paper's
//! `DCT-N` (window = whole waveform) and `DCT-W` (fixed window) variants,
//! equivalent to `scipy.fftpack.dct(..., norm="ortho")` which the authors
//! used for compression.
//!
//! The paper's Eq. (1) prints the forward transform with a uniform
//! `1/sqrt(N)` factor; the orthonormal convention actually used by SciPy
//! (and required for Eq. (2) to be its inverse) scales the `k = 0` term by
//! `sqrt(1/N)` and the remaining terms by `sqrt(2/N)`. We implement the
//! orthonormal pair so that `dct3(dct2(x)) == x`.

use std::f64::consts::PI;

/// A precomputed N-point orthonormal DCT-II/DCT-III transform pair.
///
/// Precomputing the cosine basis makes repeated windowed transforms cheap
/// and keeps forward/inverse numerically consistent.
///
/// # Example
///
/// ```
/// use compaqt_dsp::dct::Dct;
///
/// let dct = Dct::new(16);
/// let x: Vec<f64> = (0..16).map(|i| (i as f64 / 16.0).cos()).collect();
/// let y = dct.forward(&x);
/// let x_hat = dct.inverse(&y);
/// for (a, b) in x.iter().zip(&x_hat) {
///     assert!((a - b).abs() < 1e-12);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Dct {
    n: usize,
    /// Row-major basis matrix: `basis[k * n + i] = s(k) * cos(pi (2i+1) k / 2N)`.
    basis: Vec<f64>,
}

impl Dct {
    /// Creates an N-point transform pair.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "DCT length must be positive");
        let mut basis = vec![0.0; n * n];
        let norm0 = (1.0 / n as f64).sqrt();
        let norm = (2.0 / n as f64).sqrt();
        for k in 0..n {
            let s = if k == 0 { norm0 } else { norm };
            for i in 0..n {
                basis[k * n + i] = s * (PI * (2 * i + 1) as f64 * k as f64 / (2 * n) as f64).cos();
            }
        }
        Dct { n, basis }
    }

    /// Transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Basis matrix row `k` (`basis[k*n..][..n]`), for the batched SoA
    /// forward kernel in [`crate::batched`].
    pub(crate) fn basis_row(&self, k: usize) -> &[f64] {
        &self.basis[k * self.n..(k + 1) * self.n]
    }

    /// Returns `true` if this is the (degenerate) 0-point transform.
    ///
    /// Always `false`: construction requires `n > 0`.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Forward orthonormal DCT-II.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the transform length.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n];
        self.forward_into(x, &mut y);
        y
    }

    /// [`Dct::forward`] into a caller-provided buffer, allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` or `out.len()` differs from the transform
    /// length.
    pub fn forward_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.n, "input length must match transform length");
        assert_eq!(out.len(), self.n, "output length must match transform length");
        for (k, o) in out.iter_mut().enumerate() {
            let row = &self.basis[k * self.n..(k + 1) * self.n];
            *o = row.iter().zip(x).map(|(b, v)| b * v).sum();
        }
    }

    /// Inverse transform (orthonormal DCT-III), the exact inverse of
    /// [`Dct::forward`].
    ///
    /// # Panics
    ///
    /// Panics if `y.len()` differs from the transform length.
    pub fn inverse(&self, y: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; self.n];
        self.inverse_into(y, &mut x);
        x
    }

    /// [`Dct::inverse`] into a caller-provided buffer, allocation-free.
    ///
    /// Zero coefficients are skipped (thresholded codec windows are
    /// sparse), identically to [`Dct::inverse`], so both paths produce
    /// bit-identical output.
    ///
    /// # Panics
    ///
    /// Panics if `y.len()` or `out.len()` differs from the transform
    /// length.
    pub fn inverse_into(&self, y: &[f64], out: &mut [f64]) {
        assert_eq!(y.len(), self.n, "input length must match transform length");
        assert_eq!(out.len(), self.n, "output length must match transform length");
        out.fill(0.0);
        for (k, &c) in y.iter().enumerate() {
            if c != 0.0 {
                let row = &self.basis[k * self.n..(k + 1) * self.n];
                for (xi, b) in out.iter_mut().zip(row) {
                    *xi += c * b;
                }
            }
        }
    }
}

/// One-shot forward orthonormal DCT-II of an arbitrary-length signal.
///
/// Prefer [`Dct`] when transforming many windows of the same size.
///
/// # Example
///
/// ```
/// let y = compaqt_dsp::dct::dct2(&[1.0, 1.0, 1.0, 1.0]);
/// // A constant signal compacts all energy into coefficient 0.
/// assert!((y[0] - 2.0).abs() < 1e-12);
/// assert!(y[1..].iter().all(|c| c.abs() < 1e-12));
/// ```
pub fn dct2(x: &[f64]) -> Vec<f64> {
    Dct::new(x.len()).forward(x)
}

/// One-shot inverse (orthonormal DCT-III); the inverse of [`dct2`].
pub fn dct3(y: &[f64]) -> Vec<f64> {
    Dct::new(y.len()).inverse(y)
}

/// Fraction of total signal energy captured by the first `k` DCT
/// coefficients — the "energy compaction" property that makes smooth
/// waveforms compressible (Section IV-B of the paper).
///
/// Returns 1.0 for an all-zero signal.
///
/// # Example
///
/// ```
/// use compaqt_dsp::dct::{dct2, energy_compaction};
/// // A slowly varying signal concentrates energy in low frequencies.
/// let x: Vec<f64> = (0..64).map(|i| (i as f64 / 64.0 * 3.14).sin()).collect();
/// let y = dct2(&x);
/// assert!(energy_compaction(&y, 8) > 0.99);
/// ```
pub fn energy_compaction(coeffs: &[f64], k: usize) -> f64 {
    let total: f64 = coeffs.iter().map(|c| c * c).sum();
    if total == 0.0 {
        return 1.0;
    }
    let head: f64 = coeffs.iter().take(k).map(|c| c * c).sum();
    head / total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> Vec<f64> {
        (0..n).map(|i| i as f64 / n as f64 - 0.5).collect()
    }

    #[test]
    fn forward_inverse_round_trip() {
        for n in [1, 2, 3, 8, 16, 17, 64, 160] {
            let x = ramp(n);
            let x_hat = dct3(&dct2(&x));
            for (a, b) in x.iter().zip(&x_hat) {
                assert!((a - b).abs() < 1e-10, "n={n}");
            }
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let x: Vec<f64> = (0..32).map(|i| ((i * i) as f64 * 0.01).sin()).collect();
        let y = dct2(&x);
        let ex: f64 = x.iter().map(|v| v * v).sum();
        let ey: f64 = y.iter().map(|v| v * v).sum();
        assert!((ex - ey).abs() < 1e-10);
    }

    #[test]
    fn dc_signal_compacts_to_first_coefficient() {
        let x = vec![0.7; 16];
        let y = dct2(&x);
        assert!((y[0] - 0.7 * 4.0).abs() < 1e-12);
        assert!(y[1..].iter().all(|c| c.abs() < 1e-12));
    }

    #[test]
    fn basis_rows_are_orthonormal() {
        let dct = Dct::new(12);
        for k1 in 0..12 {
            for k2 in 0..12 {
                let dot: f64 =
                    (0..12).map(|i| dct.basis[k1 * 12 + i] * dct.basis[k2 * 12 + i]).sum();
                let expect = if k1 == k2 { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-12, "rows {k1},{k2}");
            }
        }
    }

    #[test]
    fn smooth_signal_has_high_compaction() {
        // Gaussian-like envelope, the typical single-qubit pulse shape.
        let n = 160;
        let x: Vec<f64> = (0..n)
            .map(|i| {
                let t = (i as f64 - n as f64 / 2.0) / (n as f64 / 6.0);
                0.8 * (-0.5 * t * t).exp()
            })
            .collect();
        let y = dct2(&x);
        assert!(energy_compaction(&y, 10) > 0.9999);
    }

    #[test]
    fn energy_compaction_of_zero_signal_is_one() {
        assert_eq!(energy_compaction(&[0.0; 8], 4), 1.0);
    }

    #[test]
    #[should_panic(expected = "input length")]
    fn forward_rejects_wrong_length() {
        Dct::new(8).forward(&[0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_length_rejected() {
        Dct::new(0);
    }
}
