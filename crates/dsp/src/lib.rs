//! # compaqt-dsp
//!
//! Signal-processing substrate for the COMPAQT compressed waveform memory
//! architecture (Maurya & Tannu, MICRO 2022).
//!
//! This crate provides the numerical kernels that both the software
//! compressor (compile-time) and the modelled hardware decompression engine
//! (runtime) are built from:
//!
//! * [`fixed`] — saturating fixed-point sample types (`Q15`) matching the
//!   16-bit DAC sample format used by qubit controllers.
//! * [`dct`] — exact orthonormal DCT-II / DCT-III (the paper's Eq. 1/2),
//!   both full-length (`DCT-N`) and windowed (`DCT-W`).
//! * [`loeffler`] — Loeffler's fast 8-point DCT factorization (11 multiplies,
//!   29 adds), the minimal-multiplier floating-point engine of Table IV,
//!   plus the generic power-of-two integer butterfly kernel
//!   ([`loeffler::IntButterflyPlan`]) behind the factorized forward
//!   integer DCT.
//! * [`intdct`] — HEVC-style integer DCT/IDCT for window sizes
//!   4/8/16/32/64 (64 is the VVC-style extension whose even rows are
//!   exactly the normative 32-point matrix), multiplierless when lowered
//!   through [`csd`]. The forward defaults to the factorized butterfly
//!   kernel, bit-exact with the dense matrix oracle it keeps alongside.
//! * [`csd`] — canonical-signed-digit decomposition used to replace constant
//!   multipliers with shift-and-add networks, plus the resource-count model
//!   behind Table IV.
//! * [`rle`] — the run-length codeword scheme used after thresholding.
//! * [`threshold`] — magnitude thresholding of transform coefficients.
//! * [`metrics`] — MSE / PSNR / compression-ratio measurements.
//! * [`window`] — splitting waveforms into fixed-size transform windows.
//! * [`plan`] — reusable transform plans ([`plan::DctPlan`],
//!   [`plan::IntDctPlan`]) with caller-provided output buffers, plus the
//!   bounded keyed [`plan::DctPlanCache`] for mixed-length workloads.
//! * [`batched`] — structure-of-arrays batch transforms
//!   ([`batched::BatchedIntDctPlan`], [`batched::BatchedDct`]) that
//!   process many windows per call through runtime-dispatched
//!   SSE2/AVX2 kernels with a mandatory scalar fallback, bit-identical
//!   to the per-window kernels.
//!
//! # Plans and buffer reuse
//!
//! Every transform and the run-length decoder exist in two forms with one
//! contract:
//!
//! * **Allocating** (`forward`, `inverse`, `decode_window`, ...) —
//!   returns a fresh `Vec` per call. Convenient for analysis code and
//!   tests; this is the historical API and its numerics are frozen.
//! * **Buffer-reuse** (`forward_into(&input, &mut out)`,
//!   `inverse_into`, `decode_window_into`, ...) — writes into a
//!   caller-provided buffer whose length must equal the transform/window
//!   length (checked; length mismatches panic for transforms and return
//!   `RleError` for untrusted codec streams). Steady-state loops that
//!   reuse their buffers perform **zero heap allocations per window**.
//!
//! Both forms are *bit-exact* with each other: the allocating wrappers
//! are thin shims over the `_into` kernels, so a stream decoded through
//! either path produces identical samples. Internal scratch (the fast
//! DCT's split/interleave workspace) lives inside [`plan::DctPlan`],
//! which is why its methods take `&mut self`; the table-driven
//! [`Dct`]/[`IntDct`] kernels need no scratch and stay `&self`, making
//! them shareable across decoder threads.
//!
//! # Example
//!
//! Round-trip a smooth signal through the windowed integer DCT:
//!
//! ```
//! use compaqt_dsp::fixed::Q15;
//! use compaqt_dsp::intdct::IntDct;
//!
//! let dct = IntDct::new(8).expect("8 is a supported window size");
//! let x: Vec<Q15> = (0..8).map(|i| Q15::from_f64(0.5 * (i as f64 / 8.0))).collect();
//! let y = dct.forward(&x);
//! let x_hat = dct.inverse(&y);
//! for (a, b) in x.iter().zip(x_hat.iter()) {
//!     assert!((a.to_f64() - b.to_f64()).abs() < 1e-3);
//! }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod batched;
pub mod csd;
pub mod dct;
pub mod fastdct;
pub mod fixed;
pub mod intdct;
pub mod loeffler;
pub mod metrics;
pub mod plan;
pub mod rle;
pub mod threshold;
pub mod window;

pub use batched::{BatchedDct, BatchedIntDctPlan, KernelTier};
pub use dct::{dct2, dct3, Dct};
pub use fixed::Q15;
pub use intdct::IntDct;
pub use plan::{DctPlan, IntDctPlan};
pub use rle::{RleCodeword, RleDecoder, RleEncoder};
