//! Saturating fixed-point sample types.
//!
//! Qubit-control DACs consume signed fixed-point samples; the IBM systems
//! modelled by the paper use 32-bit samples that pack the in-phase (I) and
//! quadrature (Q) channels as two 16-bit values (Table I). [`Q15`] is that
//! 16-bit channel format: a signed Q1.15 value in `[-1.0, 1.0)`.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Neg, Sub};

/// A signed Q1.15 fixed-point sample in the range `[-1.0, 1.0)`.
///
/// This is the per-channel DAC sample format. Conversions from `f64`
/// saturate instead of wrapping, mirroring the saturating behaviour of the
/// DAC front-end.
///
/// # Example
///
/// ```
/// use compaqt_dsp::fixed::Q15;
///
/// let half = Q15::from_f64(0.5);
/// assert!((half.to_f64() - 0.5).abs() < 1e-4);
/// assert_eq!(Q15::from_f64(2.0), Q15::MAX); // saturates
/// assert_eq!(Q15::from_f64(-2.0), Q15::MIN);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Q15(i16);

/// Number of fractional bits in [`Q15`].
pub const Q15_FRAC_BITS: u32 = 15;

/// The scale factor `2^15` relating [`Q15`] raw values to real values.
pub const Q15_ONE: f64 = (1i32 << Q15_FRAC_BITS) as f64;

impl Q15 {
    /// The largest representable value, `32767 / 32768`.
    pub const MAX: Q15 = Q15(i16::MAX);
    /// The smallest representable value, `-1.0`.
    pub const MIN: Q15 = Q15(i16::MIN);
    /// Zero.
    pub const ZERO: Q15 = Q15(0);

    /// Creates a sample from a raw two's-complement bit pattern.
    pub const fn from_raw(raw: i16) -> Self {
        Q15(raw)
    }

    /// Returns the raw two's-complement bit pattern.
    pub const fn raw(self) -> i16 {
        self.0
    }

    /// Converts a real value to Q1.15, saturating outside `[-1.0, 1.0)`.
    pub fn from_f64(value: f64) -> Self {
        let scaled = (value * Q15_ONE).round();
        if scaled >= i16::MAX as f64 {
            Q15::MAX
        } else if scaled <= i16::MIN as f64 {
            Q15::MIN
        } else {
            Q15(scaled as i16)
        }
    }

    /// Converts the sample back to a real value.
    pub fn to_f64(self) -> f64 {
        f64::from(self.0) / Q15_ONE
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: Self) -> Self {
        Q15(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Self) -> Self {
        Q15(self.0.saturating_sub(rhs.0))
    }

    /// Returns the absolute value, saturating `-1.0` to `MAX`.
    pub fn saturating_abs(self) -> Self {
        Q15(self.0.checked_abs().unwrap_or(i16::MAX))
    }

    /// True if the sample is exactly zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Q15 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:+.6}", self.to_f64())
    }
}

impl From<i16> for Q15 {
    fn from(raw: i16) -> Self {
        Q15(raw)
    }
}

impl From<Q15> for i16 {
    fn from(q: Q15) -> Self {
        q.0
    }
}

impl From<Q15> for f64 {
    fn from(q: Q15) -> Self {
        q.to_f64()
    }
}

impl Add for Q15 {
    type Output = Q15;
    fn add(self, rhs: Self) -> Self::Output {
        self.saturating_add(rhs)
    }
}

impl Sub for Q15 {
    type Output = Q15;
    fn sub(self, rhs: Self) -> Self::Output {
        self.saturating_sub(rhs)
    }
}

impl Neg for Q15 {
    type Output = Q15;
    fn neg(self) -> Self::Output {
        Q15(self.0.checked_neg().unwrap_or(i16::MAX))
    }
}

/// Quantizes a slice of real-valued samples to Q1.15.
///
/// # Example
///
/// ```
/// let q = compaqt_dsp::fixed::quantize(&[0.0, 0.25, -0.25]);
/// assert_eq!(q.len(), 3);
/// ```
pub fn quantize(samples: &[f64]) -> Vec<Q15> {
    samples.iter().map(|&s| Q15::from_f64(s)).collect()
}

/// Converts a slice of Q1.15 samples back to real values.
pub fn dequantize(samples: &[Q15]) -> Vec<f64> {
    samples.iter().map(|s| s.to_f64()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_default() {
        assert_eq!(Q15::default(), Q15::ZERO);
        assert!(Q15::ZERO.is_zero());
    }

    #[test]
    fn round_trip_is_tight() {
        for &v in &[0.0, 0.5, -0.5, 0.999, -1.0, 0.123456, -0.654321] {
            let q = Q15::from_f64(v);
            assert!((q.to_f64() - v).abs() <= 1.0 / Q15_ONE, "value {v}");
        }
    }

    #[test]
    fn saturates_at_extremes() {
        assert_eq!(Q15::from_f64(1.0), Q15::MAX);
        assert_eq!(Q15::from_f64(1e9), Q15::MAX);
        assert_eq!(Q15::from_f64(-1.0), Q15::MIN);
        assert_eq!(Q15::from_f64(-1e9), Q15::MIN);
    }

    #[test]
    fn saturating_arithmetic() {
        assert_eq!(Q15::MAX + Q15::MAX, Q15::MAX);
        assert_eq!(Q15::MIN + Q15::MIN, Q15::MIN);
        assert_eq!(Q15::MIN - Q15::MAX, Q15::MIN);
        let a = Q15::from_f64(0.25);
        let b = Q15::from_f64(0.5);
        assert!(((a + b).to_f64() - 0.75).abs() < 1e-4);
    }

    #[test]
    fn neg_of_min_saturates() {
        assert_eq!(-Q15::MIN, Q15::MAX);
        assert_eq!(Q15::MIN.saturating_abs(), Q15::MAX);
    }

    #[test]
    fn ordering_matches_real_values() {
        let values = [-1.0, -0.7, -0.1, 0.0, 0.2, 0.9];
        let qs: Vec<Q15> = values.iter().map(|&v| Q15::from_f64(v)).collect();
        let mut sorted = qs.clone();
        sorted.sort();
        assert_eq!(qs, sorted);
    }

    #[test]
    fn quantize_dequantize_round_trip() {
        let signal: Vec<f64> = (0..64).map(|i| (i as f64 * 0.1).sin() * 0.8).collect();
        let restored = dequantize(&quantize(&signal));
        for (a, b) in signal.iter().zip(restored.iter()) {
            assert!((a - b).abs() <= 1.0 / Q15_ONE);
        }
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Q15::ZERO).is_empty());
        assert!(!format!("{:?}", Q15::ZERO).is_empty());
    }
}
