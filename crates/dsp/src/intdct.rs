//! HEVC-style integer DCT/IDCT (`int-DCT-W`).
//!
//! The paper makes waveform decompression hardware-efficient by replacing
//! the floating-point DCT with the integer transform of the HEVC video
//! standard: matrix entries are small integers, so the inverse transform in
//! hardware needs no multipliers at all — every constant multiplication
//! lowers to a short shift-and-add network (see [`crate::csd`]).
//!
//! The N-point integer matrix approximates `S * D` where `D` is the
//! orthonormal DCT-II matrix and `S = 2^(6 + log2(N)/2)` is the constant
//! scaling factor quoted in Section IV-C. Because `T ≈ S*D` and `D` is
//! orthogonal, `T^t * T ≈ S^2 * I = 2^(12 + log2 N) * I`, so the inverse is
//! the transposed matrix followed by a pure right-shift — no division.
//!
//! The matrices are generated from the normative 33-entry magnitude table of
//! the HEVC 32-point transform with the cosine sign-folding rule; the N-point
//! matrix is the standard row-subsampling `T_N[k][n] = T_32[k*32/N][n]`.
//! The 64-point matrix extends the family the way VVC (H.266) does: even
//! angle indices reuse the normative HEVC table unchanged — so the even
//! rows of `T_64` are *exactly* `T_32`, and every committed 4..32-point
//! stream is untouched — while odd indices are pure roundings of
//! `64*sqrt(2)*cos(m*pi/128)`.
//!
//! # Forward kernel selection and the scale-folding contract
//!
//! Since the factorized-forward work, every `IntDct` carries two forward
//! kernels with one arithmetic contract:
//!
//! * the **factorized butterfly** ([`crate::loeffler::IntButterflyPlan`],
//!   the default) — Loeffler reflection butterflies recursing through the
//!   even rows, dense integer rotator banks for the odd rows; roughly a
//!   third of the dense multiply count; and
//! * the **dense matrix oracle** ([`IntDct::forward_matrix_into`]) — the
//!   historical row-by-row multiply, kept as the reference the butterfly
//!   is proptested against.
//!
//! Both compute the *identical* integer accumulator
//! `sum_i T[k][i] * x[i]` (the factorization only reorders exact integer
//! additions), then apply the same `(acc + rnd) >> forward_shift`
//! rounding. The flowgraph's uniform scale `S = 2^(6 + log2(N)/2)` thus
//! stays folded into [`IntDct::forward_shift`] and the quantization
//! constants exactly as before — selecting a kernel never changes a
//! stored stream, and `forward_shift + inverse_shift = 12 + log2 N`
//! keeps cancelling `S^2`. Should a future matrix lack the butterfly
//! symmetry (or exceed [`crate::loeffler::MAX_BUTTERFLY_LEN`]), plan
//! construction falls back to the matrix path silently and bit-exactly.

use crate::fixed::Q15;
use crate::loeffler::IntButterflyPlan;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Magnitudes of the HEVC 32-point transform basis, indexed by angle index
/// `m` where the basis value is `cosfold(m) ~ 64*sqrt(2)*cos(m*pi/64)`.
///
/// These are normative constants of the HEVC core transform (a handful of
/// entries are hand-tuned away from pure rounding for near-orthogonality,
/// e.g. `g[8] = 83`, not 84).
const HEVC_MAGNITUDE: [i32; 33] = [
    64, 90, 90, 90, 89, 88, 87, 85, 83, 82, 80, 78, 75, 73, 70, 67, 64, 61, 57, 54, 50, 46, 43, 38,
    36, 31, 25, 22, 18, 13, 9, 4, 0,
];

/// Evaluates the signed HEVC basis value for angle index `m` (mod 128),
/// i.e. the integer approximation of `64*sqrt(2)*cos(m*pi/64)`.
fn cos_fold(m: usize) -> i32 {
    let m = m % 128;
    match m {
        0..=32 => HEVC_MAGNITUDE[m],
        33..=64 => -HEVC_MAGNITUDE[64 - m],
        65..=96 => -HEVC_MAGNITUDE[m - 64],
        _ => HEVC_MAGNITUDE[128 - m],
    }
}

/// Odd-index magnitudes of the 64-point extension, `round(64*sqrt(2) *
/// cos(m*pi/128))` for `m = 1, 3, ..., 63` (the VVC-style construction).
/// Even indices reuse [`HEVC_MAGNITUDE`], which makes the even rows of
/// `T_64` exactly `T_32` — the identity both the butterfly factorization
/// and backward bit-compatibility rest on.
const EXT64_ODD_MAGNITUDE: [i32; 32] = [
    90, 90, 90, 89, 88, 87, 86, 84, 83, 81, 79, 76, 74, 71, 69, 66, 62, 59, 56, 52, 48, 45, 41, 37,
    33, 28, 24, 20, 15, 11, 7, 2,
];

/// Magnitude for 64-point angle index `m` in `0..=64`: normative HEVC
/// entries at even indices, the rounded extension at odd indices.
fn magnitude64(m: usize) -> i32 {
    if m.is_multiple_of(2) {
        HEVC_MAGNITUDE[m / 2]
    } else {
        EXT64_ODD_MAGNITUDE[(m - 1) / 2]
    }
}

/// Signed 64-point basis value for angle index `m` (mod 256), the
/// integer approximation of `64*sqrt(2)*cos(m*pi/128)`.
fn cos_fold64(m: usize) -> i32 {
    let m = m % 256;
    match m {
        0..=64 => magnitude64(m),
        65..=128 => -magnitude64(128 - m),
        129..=192 => -magnitude64(m - 128),
        _ => magnitude64(256 - m),
    }
}

/// Window sizes supported by the integer transform.
pub const SUPPORTED_SIZES: [usize; 5] = [4, 8, 16, 32, 64];

/// Error returned when constructing an [`IntDct`] with an unsupported size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnsupportedSizeError {
    /// The rejected transform length.
    pub size: usize,
}

impl fmt::Display for UnsupportedSizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "integer DCT size {} is not supported (expected one of {:?})",
            self.size, SUPPORTED_SIZES
        )
    }
}

impl std::error::Error for UnsupportedSizeError {}

/// An N-point HEVC-style integer DCT/IDCT pair (N in 4/8/16/32/64).
///
/// Forward transforms map Q1.15 samples to integer coefficients; the
/// inverse maps coefficients back to Q1.15 with only adds and shifts, which
/// is what makes the hardware decompression engine cheap (Table IV).
/// The forward runs the factorized Loeffler-style butterfly kernel by
/// default (bit-exact with the matrix, ~3x fewer multiplies; see the
/// module docs), with [`IntDct::forward_matrix_into`] kept as the dense
/// oracle.
///
/// # Example
///
/// ```
/// use compaqt_dsp::intdct::IntDct;
/// use compaqt_dsp::fixed::Q15;
///
/// let t = IntDct::new(16)?;
/// let x: Vec<Q15> = (0..16)
///     .map(|i| Q15::from_f64(0.6 * (std::f64::consts::PI * i as f64 / 16.0).sin()))
///     .collect();
/// let coeffs = t.forward(&x);
/// let back = t.inverse(&coeffs);
/// for (a, b) in x.iter().zip(&back) {
///     assert!((a.to_f64() - b.to_f64()).abs() < 2e-3);
/// }
/// # Ok::<(), compaqt_dsp::intdct::UnsupportedSizeError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IntDct {
    n: usize,
    log2n: u32,
    /// Row-major `n x n` integer basis matrix.
    matrix: Vec<i32>,
    /// Factorized forward/inverse kernel; `None` only for matrices the
    /// butterfly cannot represent (never for the built-in sizes), in
    /// which case the dense matrix path serves both directions.
    butterfly: Option<IntButterflyPlan>,
}

impl IntDct {
    /// Creates an N-point integer transform.
    ///
    /// # Errors
    ///
    /// Returns [`UnsupportedSizeError`] unless `n` is 4, 8, 16, 32 or 64.
    pub fn new(n: usize) -> Result<Self, UnsupportedSizeError> {
        if !SUPPORTED_SIZES.contains(&n) {
            return Err(UnsupportedSizeError { size: n });
        }
        let log2n = n.trailing_zeros();
        let mut matrix = vec![0i32; n * n];
        for k in 0..n {
            for (i, e) in matrix[k * n..(k + 1) * n].iter_mut().enumerate() {
                *e = if n == 64 {
                    cos_fold64((2 * i + 1) * k)
                } else {
                    cos_fold((2 * i + 1) * k * (32 / n))
                };
            }
        }
        let butterfly = IntButterflyPlan::from_matrix(n, &matrix);
        debug_assert!(butterfly.is_some(), "built-in matrices always factorize");
        Ok(IntDct { n, log2n, matrix, butterfly })
    }

    /// Transform length (the window size `WS`).
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always `false`; the transform length is at least 4.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The constant scaling factor `S = 2^(6 + log2(N)/2)` relating the
    /// integer matrix to the orthonormal DCT (Section IV-C).
    pub fn scale(&self) -> f64 {
        2f64.powf(6.0 + self.log2n as f64 / 2.0)
    }

    /// The forward right-shift applied after the matrix multiply so that
    /// full-scale Q1.15 inputs produce coefficients that fit in 16 bits.
    pub fn forward_shift(&self) -> u32 {
        6 + self.log2n
    }

    /// The inverse right-shift; `forward_shift + inverse_shift`
    /// equals `12 + log2 N`, cancelling `S^2` exactly.
    pub fn inverse_shift(&self) -> u32 {
        6
    }

    /// Integer basis matrix entry `T[k][i]`.
    ///
    /// # Panics
    ///
    /// Panics if `k` or `i` is out of range.
    pub fn coefficient(&self, k: usize, i: usize) -> i32 {
        assert!(k < self.n && i < self.n, "matrix index out of range");
        self.matrix[k * self.n + i]
    }

    /// Basis matrix row `T[k]` (the shift-add network constants one
    /// coefficient drives). Lets fused decoder kernels accumulate rows
    /// straight off the coded stream.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn row(&self, k: usize) -> &[i32] {
        &self.matrix[k * self.n..(k + 1) * self.n]
    }

    /// The distinct positive constants of the matrix — the multiplier
    /// constants a hardware engine must realize with shift-add networks.
    pub fn distinct_constants(&self) -> Vec<i32> {
        let mut v: Vec<i32> = self.matrix.iter().map(|c| c.abs()).filter(|&c| c != 0).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Forward integer DCT of one window of Q1.15 samples.
    ///
    /// The result is rounded and shifted by [`IntDct::forward_shift`];
    /// coefficients are saturated to the 16-bit range so they can be stored
    /// in one compressed-memory word.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.len()`.
    pub fn forward(&self, x: &[Q15]) -> Vec<i32> {
        let mut y = vec![0i32; self.n];
        self.forward_into(x, &mut y);
        y
    }

    /// [`IntDct::forward`] into a caller-provided buffer — the
    /// zero-allocation entry point used by plan-based codec loops.
    ///
    /// Runs the factorized butterfly kernel when the matrix supports it
    /// (always, for the built-in sizes), falling back to the dense
    /// matrix path otherwise; the two are bit-identical (see the module
    /// docs), so callers never observe the selection.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` or `out.len()` differs from the transform size.
    pub fn forward_into(&self, x: &[Q15], out: &mut [i32]) {
        let Some(bf) = &self.butterfly else {
            self.forward_matrix_into(x, out);
            return;
        };
        assert_eq!(x.len(), self.n, "window length must match transform size");
        assert_eq!(out.len(), self.n, "output length must match transform size");
        // Widen Q1.15 to i32 for the kernel. All arithmetic fits i32:
        // the accumulator bound max|T| * n * max|x| = 90 * 64 * 2^15 is
        // under 2^28, so the reassociated sums equal the i64 oracle's.
        let mut wide = [0i32; crate::loeffler::MAX_BUTTERFLY_LEN];
        let wide = &mut wide[..self.n];
        for (w, s) in wide.iter_mut().zip(x) {
            *w = i32::from(s.raw());
        }
        bf.forward_accumulate(wide, out);
        let shift = self.forward_shift();
        let rnd = 1i32 << (shift - 1);
        for o in out.iter_mut() {
            let v = (*o + rnd) >> shift;
            *o = v.clamp(i32::from(i16::MIN), i32::from(i16::MAX));
        }
    }

    /// The dense matrix-multiply forward — the historical kernel, kept
    /// as the bit-exact oracle the factorized path is verified against
    /// (`tests/transform_equivalence.rs`).
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` or `out.len()` differs from the transform size.
    pub fn forward_matrix_into(&self, x: &[Q15], out: &mut [i32]) {
        assert_eq!(x.len(), self.n, "window length must match transform size");
        assert_eq!(out.len(), self.n, "output length must match transform size");
        let shift = self.forward_shift();
        let rnd = 1i64 << (shift - 1);
        for (k, o) in out.iter_mut().enumerate() {
            let row = &self.matrix[k * self.n..(k + 1) * self.n];
            let acc: i64 =
                row.iter().zip(x).map(|(&t, &s)| i64::from(t) * i64::from(s.raw())).sum();
            let v = (acc + rnd) >> shift;
            *o = v.clamp(i64::from(i16::MIN), i64::from(i16::MAX)) as i32;
        }
    }

    /// Whether the factorized butterfly kernel is driving
    /// [`IntDct::forward_into`] (`false` only for matrices outside the
    /// butterfly's representable family).
    pub fn uses_factorized_forward(&self) -> bool {
        self.butterfly.is_some()
    }

    /// The factorized kernel, when the matrix admits one — shared with the
    /// batched SoA plans in [`crate::batched`] so both drive the identical
    /// flowgraph constants.
    pub(crate) fn butterfly(&self) -> Option<&IntButterflyPlan> {
        self.butterfly.as_ref()
    }

    /// Inverse integer DCT: transposed matrix multiply plus a right shift.
    ///
    /// This is the arithmetic the hardware IDCT engine performs (Figure 10,
    /// stage 2); in silicon every `T[k][i] * y[k]` product is a shift-add
    /// network, see [`crate::csd::Csd`].
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != self.len()`.
    pub fn inverse(&self, y: &[i32]) -> Vec<Q15> {
        let mut x = vec![Q15::ZERO; self.n];
        self.inverse_into(y, &mut x);
        x
    }

    /// [`IntDct::inverse`] into a caller-provided buffer, allocation-free.
    ///
    /// The accumulation loops are column-major and skip zero coefficients
    /// — after thresholding, a typical codec window carries 2-3 nonzero
    /// coefficients out of 16, so this does ~5x less multiply-add work
    /// than the dense transform while producing bit-identical results
    /// (skipped terms contribute exactly zero to the integer
    /// accumulators; accumulator state lives on the stack).
    ///
    /// # Panics
    ///
    /// Panics if `y.len()` or `out.len()` differs from the transform size.
    pub fn inverse_into(&self, y: &[i32], out: &mut [Q15]) {
        let mut acc = [0i64; 64];
        self.accumulate_inverse(y, out.len(), &mut acc);
        let shift = self.inverse_shift();
        let rnd = 1i64 << (shift - 1);
        for (o, &a) in out.iter_mut().zip(acc.iter()) {
            let v = (a + rnd) >> shift;
            *o = Q15::from_raw(v.clamp(i64::from(i16::MIN), i64::from(i16::MAX)) as i16);
        }
    }

    /// Inverse transform through the *factorized* transposed flowgraph —
    /// bit-identical to [`IntDct::inverse_into`] (both compute the exact
    /// transposed-matrix accumulator; only the addition order differs).
    ///
    /// The default decode path keeps the sparse column-skipping matrix
    /// kernel, which wins on the thresholded 2-3-nonzero windows real
    /// streams carry; this entry point serves dense-coefficient
    /// workloads, where the butterfly's reduced multiply count wins, and
    /// anchors the equivalence suite's round-trip composition tests.
    ///
    /// # Panics
    ///
    /// Panics if `y.len()` or `out.len()` differs from the transform size.
    pub fn inverse_butterfly_into(&self, y: &[i32], out: &mut [Q15]) {
        let Some(bf) = &self.butterfly else {
            self.inverse_into(y, out);
            return;
        };
        assert_eq!(y.len(), self.n, "coefficient count must match transform size");
        assert_eq!(out.len(), self.n, "output length must match transform size");
        let mut acc = [0i64; 64];
        bf.inverse_accumulate(y, &mut acc[..self.n]);
        let shift = self.inverse_shift();
        let rnd = 1i64 << (shift - 1);
        for (o, &a) in out.iter_mut().zip(acc.iter()) {
            let v = (a + rnd) >> shift;
            *o = Q15::from_raw(v.clamp(i64::from(i16::MIN), i64::from(i16::MAX)) as i16);
        }
    }

    /// Fused dequantize + inverse + Q1.15-to-`f64`, allocation-free: the
    /// stored coefficients are shifted left by `pre_shift` (undoing a
    /// storage quantization such as the codec's 2-bit headroom shift)
    /// inside the accumulator, and the reconstructed samples land
    /// directly in a caller `f64` buffer. Bit-exact with
    /// `inverse(&coeffs.map(|c| c << pre_shift)).to_f64()` — the shift
    /// distributes over the exact i64 accumulation.
    ///
    /// # Panics
    ///
    /// Panics if `y.len()` or `out.len()` differs from the transform size.
    pub fn inverse_f64_into(&self, y: &[i32], pre_shift: u32, out: &mut [f64]) {
        let mut acc = [0i64; 64];
        self.accumulate_inverse(y, out.len(), &mut acc);
        let shift = self.inverse_shift();
        let rnd = 1i64 << (shift - 1);
        for (o, &a) in out.iter_mut().zip(acc.iter()) {
            let v = ((a << pre_shift) + rnd) >> shift;
            let raw = v.clamp(i64::from(i16::MIN), i64::from(i16::MAX)) as i16;
            *o = f64::from(raw) / 32768.0;
        }
    }

    /// Shared sparse transposed-matrix accumulation for the inverse
    /// kernels (`acc[i] = sum_k T[k][i] * y[k]` over nonzero `y[k]`).
    fn accumulate_inverse(&self, y: &[i32], out_len: usize, acc: &mut [i64; 64]) {
        assert_eq!(y.len(), self.n, "coefficient count must match transform size");
        assert_eq!(out_len, self.n, "output length must match transform size");
        let acc = &mut acc[..self.n];
        for (k, &c) in y.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let c = i64::from(c);
            let row = &self.matrix[k * self.n..(k + 1) * self.n];
            for (a, &t) in acc.iter_mut().zip(row) {
                *a += i64::from(t) * c;
            }
        }
    }

    /// Forward transform of real-valued samples (convenience for analysis
    /// paths that have not yet quantized to Q1.15).
    pub fn forward_f64(&self, x: &[f64]) -> Vec<i32> {
        let q: Vec<Q15> = x.iter().map(|&v| Q15::from_f64(v)).collect();
        self.forward(&q)
    }

    /// Inverse transform returning real values in `[-1, 1)`.
    pub fn inverse_f64(&self, y: &[i32]) -> Vec<f64> {
        self.inverse(y).iter().map(|q| q.to_f64()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dct::Dct;

    #[test]
    fn rejects_unsupported_sizes() {
        for n in [0, 1, 2, 3, 5, 7, 9, 12, 24, 48, 128] {
            assert_eq!(IntDct::new(n).unwrap_err().size, n);
        }
        for n in SUPPORTED_SIZES {
            assert!(IntDct::new(n).is_ok());
        }
    }

    #[test]
    fn matrix_64pt_even_rows_are_exactly_the_32pt_matrix() {
        // The backward-compatibility and butterfly-recursion identity of
        // the VVC-style extension: T64[2k][i] == T32[k][i].
        let t64 = IntDct::new(64).unwrap();
        let t32 = IntDct::new(32).unwrap();
        for k in 0..32 {
            for i in 0..32 {
                assert_eq!(t64.coefficient(2 * k, i), t32.coefficient(k, i), "k={k} i={i}");
            }
        }
    }

    #[test]
    fn matrix_64pt_odd_rows_use_extension_constants() {
        let t = IntDct::new(64).unwrap();
        // First column of odd rows walks the odd-index magnitudes.
        let expect = [90, 90, 90, 89, 88, 87, 86, 84, 83, 81, 79, 76, 74, 71, 69, 66];
        for (j, &e) in expect.iter().enumerate() {
            assert_eq!(t.coefficient(2 * j + 1, 0), e, "row {}", 2 * j + 1);
        }
        assert_eq!(t.scale(), 512.0);
        assert_eq!(t.forward_shift(), 12);
    }

    #[test]
    fn factorized_forward_is_the_default_for_all_sizes() {
        for n in SUPPORTED_SIZES {
            assert!(IntDct::new(n).unwrap().uses_factorized_forward(), "n={n}");
        }
    }

    #[test]
    fn forward_matches_matrix_oracle_on_extremes() {
        for n in SUPPORTED_SIZES {
            let t = IntDct::new(n).unwrap();
            let cases: [Vec<Q15>; 4] = [
                vec![Q15::MAX; n],
                vec![Q15::MIN; n],
                (0..n).map(|i| if i % 2 == 0 { Q15::MAX } else { Q15::MIN }).collect(),
                (0..n).map(|i| if i == 0 { Q15::MAX } else { Q15::ZERO }).collect(),
            ];
            for x in &cases {
                let mut fast = vec![0i32; n];
                let mut oracle = vec![0i32; n];
                t.forward_into(x, &mut fast);
                t.forward_matrix_into(x, &mut oracle);
                assert_eq!(fast, oracle, "n={n}");
            }
        }
    }

    #[test]
    fn inverse_butterfly_matches_sparse_matrix_inverse() {
        for n in SUPPORTED_SIZES {
            let t = IntDct::new(n).unwrap();
            let y: Vec<i32> = (0..n)
                .map(|k| match k % 5 {
                    0 => i32::from(i16::MAX),
                    1 => 0,
                    2 => i32::from(i16::MIN),
                    3 => -12345,
                    _ => 777,
                })
                .collect();
            let mut a = vec![Q15::ZERO; n];
            let mut b = vec![Q15::ZERO; n];
            t.inverse_into(&y, &mut a);
            t.inverse_butterfly_into(&y, &mut b);
            assert_eq!(a, b, "n={n}");
        }
    }

    #[test]
    fn matrix_matches_hevc_4pt() {
        let t = IntDct::new(4).unwrap();
        let expect = [[64, 64, 64, 64], [83, 36, -36, -83], [64, -64, -64, 64], [36, -83, 83, -36]];
        for (k, row) in expect.iter().enumerate() {
            for (i, &e) in row.iter().enumerate() {
                assert_eq!(t.coefficient(k, i), e, "T4[{k}][{i}]");
            }
        }
    }

    #[test]
    fn matrix_matches_hevc_8pt() {
        let t = IntDct::new(8).unwrap();
        let expect: [[i32; 8]; 8] = [
            [64, 64, 64, 64, 64, 64, 64, 64],
            [89, 75, 50, 18, -18, -50, -75, -89],
            [83, 36, -36, -83, -83, -36, 36, 83],
            [75, -18, -89, -50, 50, 89, 18, -75],
            [64, -64, -64, 64, 64, -64, -64, 64],
            [50, -89, 18, 75, -75, -18, 89, -50],
            [36, -83, 83, -36, -36, 83, -83, 36],
            [18, -50, 75, -89, 89, -75, 50, -18],
        ];
        for (k, row) in expect.iter().enumerate() {
            for (i, &e) in row.iter().enumerate() {
                assert_eq!(t.coefficient(k, i), e, "T8[{k}][{i}]");
            }
        }
    }

    #[test]
    fn matrix_16pt_odd_rows_use_standard_constants() {
        let t = IntDct::new(16).unwrap();
        // First column of odd rows: the normative 16-point odd set.
        let expect = [90, 87, 80, 70, 57, 43, 25, 9];
        for (j, &e) in expect.iter().enumerate() {
            assert_eq!(t.coefficient(2 * j + 1, 0), e);
        }
    }

    #[test]
    fn matrix_32pt_odd_rows_use_standard_constants() {
        let t = IntDct::new(32).unwrap();
        let expect = [90, 90, 88, 85, 82, 78, 73, 67, 61, 54, 46, 38, 31, 22, 13, 4];
        for (j, &e) in expect.iter().enumerate() {
            assert_eq!(t.coefficient(2 * j + 1, 0), e);
        }
    }

    #[test]
    fn rows_are_nearly_orthogonal() {
        for n in SUPPORTED_SIZES {
            let t = IntDct::new(n).unwrap();
            let s2 = t.scale() * t.scale();
            for k1 in 0..n {
                for k2 in 0..n {
                    let dot: i64 = (0..n)
                        .map(|i| i64::from(t.coefficient(k1, i)) * i64::from(t.coefficient(k2, i)))
                        .sum();
                    if k1 == k2 {
                        let rel = (dot as f64 - s2).abs() / s2;
                        assert!(rel < 0.01, "n={n} row {k1} norm off by {rel}");
                    } else {
                        // Cross-terms are tiny relative to the diagonal.
                        assert!((dot as f64).abs() / s2 < 0.01, "n={n} rows {k1},{k2} dot {dot}");
                    }
                }
            }
        }
    }

    #[test]
    fn matrix_approximates_scaled_orthonormal_dct() {
        for n in SUPPORTED_SIZES {
            let t = IntDct::new(n).unwrap();
            let exact = Dct::new(n);
            let s = t.scale();
            // Entries differ from s*D by < 1.5 (the standard hand-tunes a
            // few entries away from pure rounding, e.g. T4[1][1]=36 vs 34.6,
            // to improve orthogonality).
            for k in 0..n {
                for i in 0..n {
                    let mut probe = vec![0.0; n];
                    probe[i] = 1.0;
                    let d_ki = exact.forward(&probe)[k];
                    assert!(
                        (f64::from(t.coefficient(k, i)) - s * d_ki).abs() < 1.5,
                        "n={n} entry [{k}][{i}]"
                    );
                }
            }
        }
    }

    #[test]
    fn round_trip_error_is_small() {
        for n in SUPPORTED_SIZES {
            let t = IntDct::new(n).unwrap();
            let x: Vec<Q15> = (0..n)
                .map(|i| {
                    let ph = std::f64::consts::PI * (i as f64 + 0.5) / n as f64;
                    Q15::from_f64(0.7 * ph.sin() + 0.1 * (3.0 * ph).cos())
                })
                .collect();
            let back = t.inverse(&t.forward(&x));
            // Forward rounding noise accumulates ~sqrt(N) per sample;
            // 4e-3 is the calibrated bound at N <= 32.
            let bound = 4e-3 * (n as f64 / 32.0).sqrt().max(1.0);
            for (a, b) in x.iter().zip(&back) {
                assert!(
                    (a.to_f64() - b.to_f64()).abs() < bound,
                    "n={n}: {} vs {}",
                    a.to_f64(),
                    b.to_f64()
                );
            }
        }
    }

    #[test]
    fn dc_window_compacts_to_single_coefficient() {
        let t = IntDct::new(8).unwrap();
        let x = vec![Q15::from_f64(0.5); 8];
        let y = t.forward(&x);
        assert!(y[0] > 0);
        assert!(y[1..].iter().all(|&c| c == 0), "AC leakage: {y:?}");
    }

    #[test]
    fn full_scale_dc_does_not_overflow() {
        let t = IntDct::new(16).unwrap();
        let x = vec![Q15::MAX; 16];
        let y = t.forward(&x);
        assert_eq!(y[0], i32::from(i16::MAX));
        let back = t.inverse(&y);
        for b in back {
            assert!((b.to_f64() - Q15::MAX.to_f64()).abs() < 2e-3);
        }
    }

    #[test]
    fn scale_matches_paper_formula() {
        // S = 2^((6 + log2 N) / ... ) printed as 2^(6 + log2(N)/2).
        assert!((IntDct::new(8).unwrap().scale() - 181.019_335_983_756_2).abs() < 1e-9);
        assert!((IntDct::new(16).unwrap().scale() - 256.0).abs() < 1e-12);
    }
}
