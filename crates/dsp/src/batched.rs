//! Batched structure-of-arrays (SoA) transform kernels with runtime
//! SIMD dispatch.
//!
//! The per-window kernels in [`crate::intdct`] and [`crate::dct`]
//! transform one window per call, so the compiler cannot vectorize
//! *across* windows — yet a codec stream is nothing but a long run of
//! independent same-size windows. This module restructures the hot
//! transforms around **window batches**: [`BatchedIntDctPlan`] (and its
//! float twin [`BatchedDct`]) accept N concatenated windows per call,
//! transpose them into structure-of-arrays layout — lane `j` of every
//! window contiguous, `soa[j * batch + b]` — and replay the exact
//! butterfly flowgraph with every arithmetic step applied to a whole
//! batch row at once. The batch dimension is purely data-parallel, so
//! the inner loops are straight-line add/sub/mul over contiguous memory:
//! prime SIMD material.
//!
//! # Kernel tiers and runtime dispatch
//!
//! Three implementations of the row primitives exist, selected once per
//! process by [`KernelTier::detected`]:
//!
//! * **Scalar** — plain slice loops, fixed-width chunk friendly; the
//!   mandatory fallback on every platform and the autovectorization
//!   baseline.
//! * **Sse2** — explicit `core::arch` x86_64 SSE2 intrinsics (128-bit,
//!   4 x i32 / 2 x i64 / 2 x f64 per op). SSE2 is part of the x86_64
//!   baseline, so this tier needs no feature check.
//! * **Avx2** — explicit AVX2 intrinsics (256-bit, 8 x i32 / 4 x i64 /
//!   4 x f64 per op), used only when `is_x86_feature_detected!("avx2")`
//!   reports support at runtime.
//!
//! Setting the environment variable `COMPAQT_FORCE_SCALAR` to any value
//! other than `0` or the empty string forces the scalar tier for the
//! whole process (read once, at first dispatch) — the debugging and CI
//! knob that keeps the fallback path from rotting. Tests can also pin a
//! tier explicitly with [`BatchedIntDctPlan::with_tier`].
//!
//! # Bit-exactness contract
//!
//! Batched output is **bit-identical** to the per-window kernels
//! ([`IntDct::forward_into`], [`IntDct::inverse_f64_into`],
//! [`Dct::forward_into`]) on every tier:
//!
//! * the integer kernels compute exact (overflow-free, see
//!   [`crate::loeffler::IntButterflyPlan`]) integer accumulators, where
//!   addition is associative, so reordering across the batch cannot
//!   change a single bit;
//! * the float forward applies the *same* multiply and add sequence to
//!   each window (one window per SIMD lane, no FMA contraction), so
//!   every per-window rounding step is reproduced exactly.
//!
//! The `transform_equivalence` suite proptests batched == per-window ==
//! matrix-oracle across all supported window sizes, every batch size
//! including ragged tails, and forced-scalar vs detected-tier pairs.
//!
//! # Example
//!
//! ```
//! use compaqt_dsp::batched::BatchedIntDctPlan;
//! use compaqt_dsp::fixed::Q15;
//!
//! let mut plan = BatchedIntDctPlan::new(8)?;
//! // Three concatenated 8-sample windows.
//! let windows: Vec<Q15> =
//!     (0..24).map(|i| Q15::from_f64(0.7 * (i as f64 / 5.0).sin())).collect();
//! let mut batched = vec![0i32; 24];
//! plan.forward_batched_into(&windows, &mut batched);
//!
//! // Bit-identical to transforming each window on its own.
//! let mut per_window = vec![0i32; 24];
//! for (w, o) in windows.chunks(8).zip(per_window.chunks_mut(8)) {
//!     plan.transform().forward_into(w, o);
//! }
//! assert_eq!(batched, per_window);
//! # Ok::<(), compaqt_dsp::intdct::UnsupportedSizeError>(())
//! ```

use crate::dct::Dct;
use crate::fixed::Q15;
use crate::intdct::{IntDct, UnsupportedSizeError};
use crate::loeffler::IntButterflyPlan;
use std::sync::OnceLock;

/// Upper bound on the number of windows a single SoA kernel invocation
/// processes; longer batches are split into chunks of this many windows
/// so the working set (at most `64 * 32` i64 accumulators, 16 KiB) stays
/// cache-resident.
pub const MAX_BATCH_CHUNK: usize = 32;

/// The SIMD capability tier driving the batched row primitives.
///
/// Every tier computes bit-identical results (see the module docs); the
/// tiers differ only in how many lanes one instruction touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelTier {
    /// Plain slice loops — the mandatory fallback on every platform.
    Scalar,
    /// 128-bit `core::arch` x86_64 SSE2 intrinsics (baseline on x86_64).
    Sse2,
    /// 256-bit `core::arch` x86_64 AVX2 intrinsics (runtime-detected).
    Avx2,
}

impl KernelTier {
    /// The best tier the running CPU supports, detected once per process
    /// with `is_x86_feature_detected!` and cached.
    ///
    /// Setting `COMPAQT_FORCE_SCALAR` (to anything but `0` or empty)
    /// pins the result to [`KernelTier::Scalar`]; the variable is read
    /// at first call only. Non-x86_64 platforms always report
    /// [`KernelTier::Scalar`].
    pub fn detected() -> KernelTier {
        static TIER: OnceLock<KernelTier> = OnceLock::new();
        *TIER.get_or_init(|| {
            if std::env::var_os("COMPAQT_FORCE_SCALAR").is_some_and(|v| !v.is_empty() && v != "0") {
                return KernelTier::Scalar;
            }
            #[cfg(target_arch = "x86_64")]
            {
                if std::arch::is_x86_feature_detected!("avx2") {
                    KernelTier::Avx2
                } else {
                    KernelTier::Sse2
                }
            }
            #[cfg(not(target_arch = "x86_64"))]
            KernelTier::Scalar
        })
    }

    /// Clamps a requested tier to what the compilation target can run:
    /// the x86 tiers degrade to [`KernelTier::Scalar`] elsewhere.
    pub fn supported(self) -> KernelTier {
        if cfg!(target_arch = "x86_64") {
            self
        } else {
            KernelTier::Scalar
        }
    }
}

/// Row primitives the SoA kernel bodies are generic over. Each method
/// processes one full batch row (`batch` contiguous lanes, one per
/// window).
///
/// # Safety
///
/// Implementations may use target-specific intrinsics; callers must
/// guarantee the corresponding CPU features are present (enforced by
/// routing all calls through the `#[target_feature]` wrappers selected
/// by [`KernelTier`]).
trait Backend {
    /// Forward reflection butterfly: `diff = top - bot; top = top + bot`.
    unsafe fn butterfly_i32(top: &mut [i32], bot: &mut [i32], diff: &mut [i32]);
    /// `out[b] = t * v[b]` (exact low-32 product; overflow-free by the
    /// butterfly bound).
    unsafe fn mul_i32(out: &mut [i32], t: i32, v: &[i32]);
    /// `acc[b] += t * v[b]`.
    unsafe fn mul_acc_i32(acc: &mut [i32], t: i32, v: &[i32]);
    /// `out[b] = i64(t) * i64(v[b])`.
    unsafe fn widen_mul_i64(out: &mut [i64], t: i32, v: &[i32]);
    /// `acc[b] += i64(t) * i64(v[b])`.
    unsafe fn mul_acc_i64(acc: &mut [i64], t: i32, v: &[i32]);
    /// Transposed butterfly: `e = top; top = e + odd; bot = e - odd`.
    unsafe fn butterfly_i64(top: &mut [i64], bot: &mut [i64], odd: &[i64]);
    /// `acc[b] += t * v[b]` with separate multiply and add roundings
    /// (no FMA), matching the scalar kernel's op sequence per lane.
    unsafe fn mul_acc_f64(acc: &mut [f64], t: f64, v: &[f64]);
}

/// Plain slice loops; written over full rows so the autovectorizer can
/// chunk them at the target's native width.
struct ScalarBackend;

impl Backend for ScalarBackend {
    #[inline(always)]
    unsafe fn butterfly_i32(top: &mut [i32], bot: &mut [i32], diff: &mut [i32]) {
        for ((t, bo), d) in top.iter_mut().zip(bot.iter()).zip(diff.iter_mut()) {
            let a = *t;
            let b = *bo;
            *d = a - b;
            *t = a + b;
        }
    }

    #[inline(always)]
    unsafe fn mul_i32(out: &mut [i32], t: i32, v: &[i32]) {
        for (o, &x) in out.iter_mut().zip(v) {
            *o = t * x;
        }
    }

    #[inline(always)]
    unsafe fn mul_acc_i32(acc: &mut [i32], t: i32, v: &[i32]) {
        for (a, &x) in acc.iter_mut().zip(v) {
            *a += t * x;
        }
    }

    #[inline(always)]
    unsafe fn widen_mul_i64(out: &mut [i64], t: i32, v: &[i32]) {
        let t = i64::from(t);
        for (o, &x) in out.iter_mut().zip(v) {
            *o = t * i64::from(x);
        }
    }

    #[inline(always)]
    unsafe fn mul_acc_i64(acc: &mut [i64], t: i32, v: &[i32]) {
        let t = i64::from(t);
        for (a, &x) in acc.iter_mut().zip(v) {
            *a += t * i64::from(x);
        }
    }

    #[inline(always)]
    unsafe fn butterfly_i64(top: &mut [i64], bot: &mut [i64], odd: &[i64]) {
        for ((t, bo), &o) in top.iter_mut().zip(bot.iter_mut()).zip(odd) {
            let e = *t;
            *t = e + o;
            *bo = e - o;
        }
    }

    #[inline(always)]
    unsafe fn mul_acc_f64(acc: &mut [f64], t: f64, v: &[f64]) {
        for (a, &x) in acc.iter_mut().zip(v) {
            *a += t * x;
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! Explicit SSE2/AVX2 row primitives plus the `#[target_feature]`
    //! kernel wrappers. All loads/stores are unaligned (`loadu`/`storeu`)
    //! — the SoA scratch rows carry no alignment guarantee — with scalar
    //! tails for `batch % lanes` remainders.

    use super::{
        dct_forward_soa_body, forward_soa_body, inverse_soa_body, Backend, Dct, IntButterflyPlan,
    };
    use std::arch::x86_64::*;

    /// Exact low-32 product per lane on SSE2, which lacks
    /// `_mm_mullo_epi32` (SSE4.1): split into even/odd 32x32->64
    /// unsigned products (`pmuludq` — the low 32 bits of the unsigned
    /// product equal the signed one's) and recombine the low halves.
    #[inline(always)]
    unsafe fn mullo_epi32_sse2(a: __m128i, b: __m128i) -> __m128i {
        let even = _mm_mul_epu32(a, b);
        let odd = _mm_mul_epu32(_mm_srli_si128::<4>(a), _mm_srli_si128::<4>(b));
        // Gather the low dwords of the two 64-bit products in each
        // register, then interleave back to lane order 0,1,2,3.
        let even_lo = _mm_shuffle_epi32::<0b10_00_10_00>(even);
        let odd_lo = _mm_shuffle_epi32::<0b10_00_10_00>(odd);
        _mm_unpacklo_epi32(even_lo, odd_lo)
    }

    pub(super) struct Sse2Backend;

    impl Backend for Sse2Backend {
        #[inline(always)]
        unsafe fn butterfly_i32(top: &mut [i32], bot: &mut [i32], diff: &mut [i32]) {
            let n = top.len();
            let mut i = 0;
            while i + 4 <= n {
                let a = _mm_loadu_si128(top.as_ptr().add(i).cast());
                let b = _mm_loadu_si128(bot.as_ptr().add(i).cast());
                _mm_storeu_si128(diff.as_mut_ptr().add(i).cast(), _mm_sub_epi32(a, b));
                _mm_storeu_si128(top.as_mut_ptr().add(i).cast(), _mm_add_epi32(a, b));
                i += 4;
            }
            while i < n {
                let a = top[i];
                let b = bot[i];
                diff[i] = a - b;
                top[i] = a + b;
                i += 1;
            }
        }

        #[inline(always)]
        unsafe fn mul_i32(out: &mut [i32], t: i32, v: &[i32]) {
            let n = out.len();
            let tv = _mm_set1_epi32(t);
            let mut i = 0;
            while i + 4 <= n {
                let x = _mm_loadu_si128(v.as_ptr().add(i).cast());
                _mm_storeu_si128(out.as_mut_ptr().add(i).cast(), mullo_epi32_sse2(tv, x));
                i += 4;
            }
            while i < n {
                out[i] = t * v[i];
                i += 1;
            }
        }

        #[inline(always)]
        unsafe fn mul_acc_i32(acc: &mut [i32], t: i32, v: &[i32]) {
            let n = acc.len();
            let tv = _mm_set1_epi32(t);
            let mut i = 0;
            while i + 4 <= n {
                let x = _mm_loadu_si128(v.as_ptr().add(i).cast());
                let a = _mm_loadu_si128(acc.as_ptr().add(i).cast());
                let sum = _mm_add_epi32(a, mullo_epi32_sse2(tv, x));
                _mm_storeu_si128(acc.as_mut_ptr().add(i).cast(), sum);
                i += 4;
            }
            while i < n {
                acc[i] += t * v[i];
                i += 1;
            }
        }

        // SSE2 has no signed 32x32->64 multiply (`pmuldq` is SSE4.1), so
        // the widening products stay scalar on this tier; the i64
        // butterflies below still vectorize.
        #[inline(always)]
        unsafe fn widen_mul_i64(out: &mut [i64], t: i32, v: &[i32]) {
            ScalarBackendDelegate::widen_mul_i64(out, t, v);
        }

        #[inline(always)]
        unsafe fn mul_acc_i64(acc: &mut [i64], t: i32, v: &[i32]) {
            ScalarBackendDelegate::mul_acc_i64(acc, t, v);
        }

        #[inline(always)]
        unsafe fn butterfly_i64(top: &mut [i64], bot: &mut [i64], odd: &[i64]) {
            let n = top.len();
            let mut i = 0;
            while i + 2 <= n {
                let e = _mm_loadu_si128(top.as_ptr().add(i).cast());
                let o = _mm_loadu_si128(odd.as_ptr().add(i).cast());
                _mm_storeu_si128(top.as_mut_ptr().add(i).cast(), _mm_add_epi64(e, o));
                _mm_storeu_si128(bot.as_mut_ptr().add(i).cast(), _mm_sub_epi64(e, o));
                i += 2;
            }
            while i < n {
                let e = top[i];
                let o = odd[i];
                top[i] = e + o;
                bot[i] = e - o;
                i += 1;
            }
        }

        #[inline(always)]
        unsafe fn mul_acc_f64(acc: &mut [f64], t: f64, v: &[f64]) {
            let n = acc.len();
            let tv = _mm_set1_pd(t);
            let mut i = 0;
            while i + 2 <= n {
                let x = _mm_loadu_pd(v.as_ptr().add(i));
                let a = _mm_loadu_pd(acc.as_ptr().add(i));
                _mm_storeu_pd(acc.as_mut_ptr().add(i), _mm_add_pd(a, _mm_mul_pd(tv, x)));
                i += 2;
            }
            while i < n {
                acc[i] += t * v[i];
                i += 1;
            }
        }
    }

    /// Scalar fallbacks for the primitives an SSE2-only machine cannot
    /// vectorize, shared by [`Sse2Backend`].
    struct ScalarBackendDelegate;

    impl ScalarBackendDelegate {
        #[inline(always)]
        fn widen_mul_i64(out: &mut [i64], t: i32, v: &[i32]) {
            let t = i64::from(t);
            for (o, &x) in out.iter_mut().zip(v) {
                *o = t * i64::from(x);
            }
        }

        #[inline(always)]
        fn mul_acc_i64(acc: &mut [i64], t: i32, v: &[i32]) {
            let t = i64::from(t);
            for (a, &x) in acc.iter_mut().zip(v) {
                *a += t * i64::from(x);
            }
        }
    }

    pub(super) struct Avx2Backend;

    impl Backend for Avx2Backend {
        #[inline(always)]
        unsafe fn butterfly_i32(top: &mut [i32], bot: &mut [i32], diff: &mut [i32]) {
            let n = top.len();
            let mut i = 0;
            while i + 8 <= n {
                let a = _mm256_loadu_si256(top.as_ptr().add(i).cast());
                let b = _mm256_loadu_si256(bot.as_ptr().add(i).cast());
                _mm256_storeu_si256(diff.as_mut_ptr().add(i).cast(), _mm256_sub_epi32(a, b));
                _mm256_storeu_si256(top.as_mut_ptr().add(i).cast(), _mm256_add_epi32(a, b));
                i += 8;
            }
            while i < n {
                let a = top[i];
                let b = bot[i];
                diff[i] = a - b;
                top[i] = a + b;
                i += 1;
            }
        }

        #[inline(always)]
        unsafe fn mul_i32(out: &mut [i32], t: i32, v: &[i32]) {
            let n = out.len();
            let tv = _mm256_set1_epi32(t);
            let mut i = 0;
            while i + 8 <= n {
                let x = _mm256_loadu_si256(v.as_ptr().add(i).cast());
                _mm256_storeu_si256(out.as_mut_ptr().add(i).cast(), _mm256_mullo_epi32(tv, x));
                i += 8;
            }
            while i < n {
                out[i] = t * v[i];
                i += 1;
            }
        }

        #[inline(always)]
        unsafe fn mul_acc_i32(acc: &mut [i32], t: i32, v: &[i32]) {
            let n = acc.len();
            let tv = _mm256_set1_epi32(t);
            let mut i = 0;
            while i + 8 <= n {
                let x = _mm256_loadu_si256(v.as_ptr().add(i).cast());
                let a = _mm256_loadu_si256(acc.as_ptr().add(i).cast());
                let sum = _mm256_add_epi32(a, _mm256_mullo_epi32(tv, x));
                _mm256_storeu_si256(acc.as_mut_ptr().add(i).cast(), sum);
                i += 8;
            }
            while i < n {
                acc[i] += t * v[i];
                i += 1;
            }
        }

        // `vpmuldq` multiplies the low 32 bits of each 64-bit lane as
        // signed integers into a full 64-bit product; sign-extending the
        // i32 inputs first makes those low halves exactly the operands.
        #[inline(always)]
        unsafe fn widen_mul_i64(out: &mut [i64], t: i32, v: &[i32]) {
            let n = out.len();
            let tv = _mm256_set1_epi64x(i64::from(t));
            let mut i = 0;
            while i + 4 <= n {
                let x = _mm256_cvtepi32_epi64(_mm_loadu_si128(v.as_ptr().add(i).cast()));
                _mm256_storeu_si256(out.as_mut_ptr().add(i).cast(), _mm256_mul_epi32(tv, x));
                i += 4;
            }
            let t = i64::from(t);
            while i < n {
                out[i] = t * i64::from(v[i]);
                i += 1;
            }
        }

        #[inline(always)]
        unsafe fn mul_acc_i64(acc: &mut [i64], t: i32, v: &[i32]) {
            let n = acc.len();
            let tv = _mm256_set1_epi64x(i64::from(t));
            let mut i = 0;
            while i + 4 <= n {
                let x = _mm256_cvtepi32_epi64(_mm_loadu_si128(v.as_ptr().add(i).cast()));
                let a = _mm256_loadu_si256(acc.as_ptr().add(i).cast());
                let sum = _mm256_add_epi64(a, _mm256_mul_epi32(tv, x));
                _mm256_storeu_si256(acc.as_mut_ptr().add(i).cast(), sum);
                i += 4;
            }
            let t = i64::from(t);
            while i < n {
                acc[i] += t * i64::from(v[i]);
                i += 1;
            }
        }

        #[inline(always)]
        unsafe fn butterfly_i64(top: &mut [i64], bot: &mut [i64], odd: &[i64]) {
            let n = top.len();
            let mut i = 0;
            while i + 4 <= n {
                let e = _mm256_loadu_si256(top.as_ptr().add(i).cast());
                let o = _mm256_loadu_si256(odd.as_ptr().add(i).cast());
                _mm256_storeu_si256(top.as_mut_ptr().add(i).cast(), _mm256_add_epi64(e, o));
                _mm256_storeu_si256(bot.as_mut_ptr().add(i).cast(), _mm256_sub_epi64(e, o));
                i += 4;
            }
            while i < n {
                let e = top[i];
                let o = odd[i];
                top[i] = e + o;
                bot[i] = e - o;
                i += 1;
            }
        }

        #[inline(always)]
        unsafe fn mul_acc_f64(acc: &mut [f64], t: f64, v: &[f64]) {
            let n = acc.len();
            let tv = _mm256_set1_pd(t);
            let mut i = 0;
            while i + 4 <= n {
                let x = _mm256_loadu_pd(v.as_ptr().add(i));
                let a = _mm256_loadu_pd(acc.as_ptr().add(i));
                _mm256_storeu_pd(acc.as_mut_ptr().add(i), _mm256_add_pd(a, _mm256_mul_pd(tv, x)));
                i += 4;
            }
            while i < n {
                acc[i] += t * v[i];
                i += 1;
            }
        }
    }

    // ---- `#[target_feature]` kernel wrappers ------------------------
    //
    // The generic bodies are `#[inline(always)]`, so inside these
    // wrappers every backend primitive compiles with the enabled
    // feature set. SSE2 is unconditionally available on x86_64; the
    // AVX2 wrappers are only reached when runtime detection succeeded.

    /// # Safety
    /// SSE2 is part of the x86_64 baseline; always safe to call there.
    pub(super) unsafe fn forward_soa_sse2(
        plan: &IntButterflyPlan,
        buf: &mut [i32],
        diff: &mut [i32],
        out: &mut [i32],
        batch: usize,
    ) {
        forward_soa_body::<Sse2Backend>(plan, buf, diff, out, batch);
    }

    /// # Safety
    /// The caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn forward_soa_avx2(
        plan: &IntButterflyPlan,
        buf: &mut [i32],
        diff: &mut [i32],
        out: &mut [i32],
        batch: usize,
    ) {
        forward_soa_body::<Avx2Backend>(plan, buf, diff, out, batch);
    }

    /// # Safety
    /// SSE2 is part of the x86_64 baseline; always safe to call there.
    pub(super) unsafe fn inverse_soa_sse2(
        plan: &IntButterflyPlan,
        y: &[i32],
        acc: &mut [i64],
        odd: &mut [i64],
        batch: usize,
    ) {
        inverse_soa_body::<Sse2Backend>(plan, y, acc, odd, batch);
    }

    /// # Safety
    /// The caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn inverse_soa_avx2(
        plan: &IntButterflyPlan,
        y: &[i32],
        acc: &mut [i64],
        odd: &mut [i64],
        batch: usize,
    ) {
        inverse_soa_body::<Avx2Backend>(plan, y, acc, odd, batch);
    }

    /// # Safety
    /// SSE2 is part of the x86_64 baseline; always safe to call there.
    pub(super) unsafe fn dct_forward_soa_sse2(
        dct: &Dct,
        soa: &[f64],
        out: &mut [f64],
        batch: usize,
    ) {
        dct_forward_soa_body::<Sse2Backend>(dct, soa, out, batch);
    }

    /// # Safety
    /// The caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dct_forward_soa_avx2(
        dct: &Dct,
        soa: &[f64],
        out: &mut [f64],
        batch: usize,
    ) {
        dct_forward_soa_body::<Avx2Backend>(dct, soa, out, batch);
    }
}

// ---- Generic SoA kernel bodies --------------------------------------

/// Raw batched forward accumulators: on entry `buf[i * batch + b]` holds
/// lane `i` of window `b` (widened Q1.15); on return
/// `out[k * batch + b] = sum_i T[k][i] * x_b[i]`, exactly — the same
/// flowgraph as [`IntButterflyPlan::forward_accumulate`], with each step
/// applied to a whole batch row.
///
/// # Safety
/// `B`'s target features must be enabled on the calling path.
#[inline(always)]
unsafe fn forward_soa_body<B: Backend>(
    plan: &IntButterflyPlan,
    buf: &mut [i32],
    diff: &mut [i32],
    out: &mut [i32],
    batch: usize,
) {
    let n = plan.len();
    let mut len = n;
    let mut level = 0usize;
    let mut step = 1usize;
    while len > 1 {
        let half = len / 2;
        // Reflection butterflies: row i pairs with row len-1-i, which
        // always lives in the upper half, so a split borrows both.
        let (lo, hi) = buf[..len * batch].split_at_mut(half * batch);
        for i in 0..half {
            let top = &mut lo[i * batch..(i + 1) * batch];
            let bot = &mut hi[(half - 1 - i) * batch..(half - i) * batch];
            let d = &mut diff[i * batch..(i + 1) * batch];
            B::butterfly_i32(top, bot, d);
        }
        // Odd rotator bank: every output row is a dot product of the
        // difference rows with constant weights.
        let rows = plan.rows_at(level);
        for (k, row) in rows.chunks_exact(half).enumerate() {
            let o = &mut out[step * (2 * k + 1) * batch..][..batch];
            B::mul_i32(o, row[0], &diff[..batch]);
            for (i, &t) in row.iter().enumerate().skip(1) {
                B::mul_acc_i32(o, t, &diff[i * batch..(i + 1) * batch]);
            }
        }
        len = half;
        level += 1;
        step *= 2;
    }
    B::mul_i32(&mut out[..batch], plan.dc_gain(), &buf[..batch]);
}

/// Raw batched transposed (inverse-direction) accumulators:
/// `acc[i * batch + b] = sum_k T[k][i] * y_b[k]` from SoA coefficients
/// `y[k * batch + b]` — the batched twin of
/// [`IntButterflyPlan::inverse_accumulate`]. Rotator rows whose entire
/// batch row is zero are skipped (their contribution is exactly zero),
/// preserving the sparse-stream advantage across the batch.
///
/// # Safety
/// `B`'s target features must be enabled on the calling path.
#[inline(always)]
unsafe fn inverse_soa_body<B: Backend>(
    plan: &IntButterflyPlan,
    y: &[i32],
    acc: &mut [i64],
    odd: &mut [i64],
    batch: usize,
) {
    let n = plan.len();
    B::widen_mul_i64(&mut acc[..batch], plan.dc_gain(), &y[..batch]);
    let mut len = 2usize;
    while len <= n {
        let half = len / 2;
        let level = plan.level_count() - len.trailing_zeros() as usize;
        let step = n / len;
        let rows = plan.rows_at(level);
        let odd = &mut odd[..half * batch];
        odd.fill(0);
        for (k, row) in rows.chunks_exact(half).enumerate() {
            let v = &y[step * (2 * k + 1) * batch..][..batch];
            if v.iter().all(|&c| c == 0) {
                continue;
            }
            for (i, &t) in row.iter().enumerate() {
                B::mul_acc_i64(&mut odd[i * batch..(i + 1) * batch], t, v);
            }
        }
        // Transposed butterflies expand the even half outward; the
        // freshly-written bottom rows are write-only here.
        let (lo, hi) = acc[..len * batch].split_at_mut(half * batch);
        for i in 0..half {
            let top = &mut lo[i * batch..(i + 1) * batch];
            let bot = &mut hi[(half - 1 - i) * batch..(half - i) * batch];
            B::butterfly_i64(top, bot, &odd[i * batch..(i + 1) * batch]);
        }
        len *= 2;
    }
}

/// Batched float forward: `out[k * batch + b] = sum_i basis[k][i] *
/// x_b[i]`, accumulated in the same `i` order (from an explicit `0.0`)
/// as [`Dct::forward_into`]'s per-window sum, so each lane reproduces
/// the scalar rounding sequence bit-for-bit.
///
/// # Safety
/// `B`'s target features must be enabled on the calling path.
#[inline(always)]
unsafe fn dct_forward_soa_body<B: Backend>(dct: &Dct, soa: &[f64], out: &mut [f64], batch: usize) {
    let n = dct.len();
    out[..n * batch].fill(0.0);
    for k in 0..n {
        let row = dct.basis_row(k);
        let o = &mut out[k * batch..(k + 1) * batch];
        for (i, &b) in row.iter().enumerate() {
            B::mul_acc_f64(o, b, &soa[i * batch..(i + 1) * batch]);
        }
    }
}

// ---- Tier dispatch --------------------------------------------------

fn forward_dispatch(
    tier: KernelTier,
    plan: &IntButterflyPlan,
    buf: &mut [i32],
    diff: &mut [i32],
    out: &mut [i32],
    batch: usize,
) {
    match tier {
        // SAFETY: the scalar backend uses no target-specific intrinsics.
        KernelTier::Scalar => unsafe {
            forward_soa_body::<ScalarBackend>(plan, buf, diff, out, batch)
        },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86_64 baseline.
        KernelTier::Sse2 => unsafe { x86::forward_soa_sse2(plan, buf, diff, out, batch) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the Avx2 tier is only constructed after runtime detection.
        KernelTier::Avx2 => unsafe { x86::forward_soa_avx2(plan, buf, diff, out, batch) },
        #[cfg(not(target_arch = "x86_64"))]
        // SAFETY: scalar fallback, no intrinsics.
        _ => unsafe { forward_soa_body::<ScalarBackend>(plan, buf, diff, out, batch) },
    }
}

fn inverse_dispatch(
    tier: KernelTier,
    plan: &IntButterflyPlan,
    y: &[i32],
    acc: &mut [i64],
    odd: &mut [i64],
    batch: usize,
) {
    match tier {
        // SAFETY: the scalar backend uses no target-specific intrinsics.
        KernelTier::Scalar => unsafe {
            inverse_soa_body::<ScalarBackend>(plan, y, acc, odd, batch)
        },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86_64 baseline.
        KernelTier::Sse2 => unsafe { x86::inverse_soa_sse2(plan, y, acc, odd, batch) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the Avx2 tier is only constructed after runtime detection.
        KernelTier::Avx2 => unsafe { x86::inverse_soa_avx2(plan, y, acc, odd, batch) },
        #[cfg(not(target_arch = "x86_64"))]
        // SAFETY: scalar fallback, no intrinsics.
        _ => unsafe { inverse_soa_body::<ScalarBackend>(plan, y, acc, odd, batch) },
    }
}

fn dct_forward_dispatch(tier: KernelTier, dct: &Dct, soa: &[f64], out: &mut [f64], batch: usize) {
    match tier {
        // SAFETY: the scalar backend uses no target-specific intrinsics.
        KernelTier::Scalar => unsafe {
            dct_forward_soa_body::<ScalarBackend>(dct, soa, out, batch)
        },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86_64 baseline.
        KernelTier::Sse2 => unsafe { x86::dct_forward_soa_sse2(dct, soa, out, batch) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the Avx2 tier is only constructed after runtime detection.
        KernelTier::Avx2 => unsafe { x86::dct_forward_soa_avx2(dct, soa, out, batch) },
        #[cfg(not(target_arch = "x86_64"))]
        // SAFETY: scalar fallback, no intrinsics.
        _ => unsafe { dct_forward_soa_body::<ScalarBackend>(dct, soa, out, batch) },
    }
}

// ---- Public plan types ----------------------------------------------

/// A batched integer DCT plan: transforms N concatenated windows per
/// call through the SoA butterfly kernels, bit-identically to the
/// per-window [`IntDct`] entry points.
///
/// The plan owns its SoA staging buffers, which is why the batched
/// methods take `&mut self`; steady-state reuse performs zero heap
/// allocations once the buffers have grown to the chunk size.
///
/// # Example
///
/// ```
/// use compaqt_dsp::batched::BatchedIntDctPlan;
/// use compaqt_dsp::fixed::Q15;
///
/// let mut plan = BatchedIntDctPlan::new(16)?;
/// let windows = vec![Q15::from_f64(0.25); 16 * 5]; // five DC windows
/// let mut coeffs = vec![0i32; 16 * 5];
/// plan.forward_batched_into(&windows, &mut coeffs);
///
/// let mut back = vec![0.0f64; 16 * 5];
/// plan.inverse_f64_batched_into(&coeffs, 0, &mut back);
/// for (a, b) in windows.iter().zip(&back) {
///     assert!((a.to_f64() - b).abs() < 2e-3);
/// }
/// # Ok::<(), compaqt_dsp::intdct::UnsupportedSizeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BatchedIntDctPlan {
    dct: IntDct,
    tier: KernelTier,
    /// SoA input/working rows (i32), `n * chunk` lanes.
    soa: Vec<i32>,
    /// Forward butterfly difference rows, `(n/2) * chunk` lanes.
    diff: Vec<i32>,
    /// Forward SoA output rows, `n * chunk` lanes.
    out_soa: Vec<i32>,
    /// Inverse i64 accumulator rows, `n * chunk` lanes.
    acc: Vec<i64>,
    /// Inverse odd-bank scratch rows, `(n/2) * chunk` lanes.
    odd: Vec<i64>,
}

impl BatchedIntDctPlan {
    /// Creates a batched plan for window size `ws`, selecting the kernel
    /// tier with [`KernelTier::detected`].
    ///
    /// # Errors
    ///
    /// Returns [`UnsupportedSizeError`] unless `ws` is 4, 8, 16, 32
    /// or 64.
    pub fn new(ws: usize) -> Result<Self, UnsupportedSizeError> {
        Ok(Self::from_transform(IntDct::new(ws)?))
    }

    /// Wraps an existing transform, selecting the kernel tier with
    /// [`KernelTier::detected`].
    pub fn from_transform(dct: IntDct) -> Self {
        Self::with_tier(dct, KernelTier::detected())
    }

    /// Wraps an existing transform with an explicitly pinned kernel tier
    /// (clamped to what the platform can run) — the testing hook behind
    /// the forced-scalar vs detected-tier agreement suites.
    pub fn with_tier(dct: IntDct, tier: KernelTier) -> Self {
        BatchedIntDctPlan {
            dct,
            tier: tier.supported(),
            soa: Vec::new(),
            diff: Vec::new(),
            out_soa: Vec::new(),
            acc: Vec::new(),
            odd: Vec::new(),
        }
    }

    /// The window size this plan transforms.
    pub fn len(&self) -> usize {
        self.dct.len()
    }

    /// Always `false`; the window size is at least 4.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The kernel tier this plan dispatches to.
    pub fn tier(&self) -> KernelTier {
        self.tier
    }

    /// The wrapped per-window transform (shared constants; useful for
    /// oracle comparisons and scalar tails).
    pub fn transform(&self) -> &IntDct {
        &self.dct
    }

    /// Batched [`IntDct::forward_into`]: transforms
    /// `windows.len() / ws` concatenated Q1.15 windows into rounded,
    /// 16-bit-saturated coefficients, bit-identically to calling the
    /// per-window kernel on each window.
    ///
    /// # Panics
    ///
    /// Panics if `windows.len()` is not a multiple of the window size or
    /// `out.len() != windows.len()`.
    pub fn forward_batched_into(&mut self, windows: &[Q15], out: &mut [i32]) {
        let n = self.dct.len();
        assert!(windows.len().is_multiple_of(n), "input must be whole windows");
        assert_eq!(out.len(), windows.len(), "output length must match input length");
        let Some(bf) = self.dct.butterfly() else {
            // No factorization (never the built-in sizes): per-window
            // dense fallback, still bit-exact.
            for (w, o) in windows.chunks_exact(n).zip(out.chunks_exact_mut(n)) {
                self.dct.forward_into(w, o);
            }
            return;
        };
        let shift = self.dct.forward_shift();
        let rnd = 1i32 << (shift - 1);
        let max_batch = (windows.len() / n).min(MAX_BATCH_CHUNK);
        self.soa.resize(n * max_batch, 0);
        self.diff.resize(n / 2 * max_batch, 0);
        self.out_soa.resize(n * max_batch, 0);
        for (wchunk, ochunk) in
            windows.chunks(n * MAX_BATCH_CHUNK).zip(out.chunks_mut(n * MAX_BATCH_CHUNK))
        {
            let batch = wchunk.len() / n;
            // Transpose in: lane rows are contiguous writes, window reads
            // stride by `n` (bounds-check-free via `step_by`).
            for (i, row) in self.soa[..n * batch].chunks_exact_mut(batch).enumerate() {
                for (o, s) in row.iter_mut().zip(wchunk[i..].iter().step_by(n)) {
                    *o = i32::from(s.raw());
                }
            }
            forward_dispatch(
                self.tier,
                bf,
                &mut self.soa[..n * batch],
                &mut self.diff[..n / 2 * batch],
                &mut self.out_soa[..n * batch],
                batch,
            );
            // Round + saturate contiguously (autovectorizable), then
            // transpose out with contiguous per-window writes.
            for v in &mut self.out_soa[..n * batch] {
                *v = ((*v + rnd) >> shift).clamp(i32::from(i16::MIN), i32::from(i16::MAX));
            }
            for (w, dst) in ochunk.chunks_exact_mut(n).enumerate() {
                for (o, &v) in dst.iter_mut().zip(self.out_soa[w..].iter().step_by(batch)) {
                    *o = v;
                }
            }
        }
    }

    /// Batched [`IntDct::inverse_into`]: reconstructs Q1.15 samples from
    /// `coeffs.len() / ws` concatenated coefficient windows,
    /// bit-identically to the per-window kernel.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len()` is not a multiple of the window size or
    /// `out.len() != coeffs.len()`.
    pub fn inverse_batched_into(&mut self, coeffs: &[i32], out: &mut [Q15]) {
        let n = self.dct.len();
        assert!(coeffs.len().is_multiple_of(n), "input must be whole windows");
        assert_eq!(out.len(), coeffs.len(), "output length must match input length");
        if self.dct.butterfly().is_none() {
            for (y, o) in coeffs.chunks_exact(n).zip(out.chunks_exact_mut(n)) {
                self.dct.inverse_into(y, o);
            }
            return;
        }
        let shift = self.dct.inverse_shift();
        let rnd = 1i64 << (shift - 1);
        for (cchunk, ochunk) in
            coeffs.chunks(n * MAX_BATCH_CHUNK).zip(out.chunks_mut(n * MAX_BATCH_CHUNK))
        {
            let batch = cchunk.len() / n;
            self.run_inverse_chunk(cchunk, batch);
            for (w, dst) in ochunk.chunks_exact_mut(n).enumerate() {
                for (o, &a) in dst.iter_mut().zip(self.acc[w..].iter().step_by(batch)) {
                    let v = (a + rnd) >> shift;
                    *o = Q15::from_raw(v.clamp(i64::from(i16::MIN), i64::from(i16::MAX)) as i16);
                }
            }
        }
    }

    /// Batched [`IntDct::inverse_f64_into`]: fused dequantize (left
    /// shift by `pre_shift` inside the exact accumulator) + inverse +
    /// Q1.15-to-`f64`, bit-identical to the per-window kernel.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len()` is not a multiple of the window size or
    /// `out.len() != coeffs.len()`.
    pub fn inverse_f64_batched_into(&mut self, coeffs: &[i32], pre_shift: u32, out: &mut [f64]) {
        let n = self.dct.len();
        assert!(coeffs.len().is_multiple_of(n), "input must be whole windows");
        assert_eq!(out.len(), coeffs.len(), "output length must match input length");
        if self.dct.butterfly().is_none() {
            for (y, o) in coeffs.chunks_exact(n).zip(out.chunks_exact_mut(n)) {
                self.dct.inverse_f64_into(y, pre_shift, o);
            }
            return;
        }
        let shift = self.dct.inverse_shift();
        let rnd = 1i64 << (shift - 1);
        for (cchunk, ochunk) in
            coeffs.chunks(n * MAX_BATCH_CHUNK).zip(out.chunks_mut(n * MAX_BATCH_CHUNK))
        {
            let batch = cchunk.len() / n;
            self.run_inverse_chunk(cchunk, batch);
            for (w, dst) in ochunk.chunks_exact_mut(n).enumerate() {
                for (o, &a) in dst.iter_mut().zip(self.acc[w..].iter().step_by(batch)) {
                    let v = ((a << pre_shift) + rnd) >> shift;
                    let raw = v.clamp(i64::from(i16::MIN), i64::from(i16::MAX)) as i16;
                    *o = f64::from(raw) / 32768.0;
                }
            }
        }
    }

    /// Stages one chunk of AoS coefficients into SoA and runs the
    /// batched transposed kernel, leaving the raw accumulators in
    /// `self.acc`. Callers finalize with their own rounding.
    fn run_inverse_chunk(&mut self, cchunk: &[i32], batch: usize) {
        let n = self.dct.len();
        if self.soa.len() < n * batch {
            self.soa.resize(n * batch, 0);
        }
        if self.acc.len() < n * batch {
            self.acc.resize(n * batch, 0);
        }
        if self.odd.len() < n / 2 * batch {
            self.odd.resize(n / 2 * batch, 0);
        }
        // Transpose in: lane rows are contiguous writes, window reads
        // stride by `n` (bounds-check-free via `step_by`).
        for (k, row) in self.soa[..n * batch].chunks_exact_mut(batch).enumerate() {
            for (o, &c) in row.iter_mut().zip(cchunk[k..].iter().step_by(n)) {
                *o = c;
            }
        }
        let bf = self.dct.butterfly().expect("checked by callers");
        inverse_dispatch(
            self.tier,
            bf,
            &self.soa[..n * batch],
            &mut self.acc[..n * batch],
            &mut self.odd[..n / 2 * batch],
            batch,
        );
    }
}

/// The float twin of [`BatchedIntDctPlan`]: a batched forward
/// orthonormal DCT-II over concatenated `f64` windows, bit-identical to
/// per-window [`Dct::forward_into`] calls (each window occupies one
/// SIMD lane, so its multiply/add rounding sequence is unchanged; no
/// FMA contraction).
///
/// # Example
///
/// ```
/// use compaqt_dsp::batched::BatchedDct;
///
/// let mut plan = BatchedDct::new(8);
/// let windows: Vec<f64> = (0..32).map(|i| (i as f64 / 7.0).cos()).collect();
/// let mut batched = vec![0.0; 32];
/// plan.forward_batched_into(&windows, &mut batched);
///
/// let mut per_window = vec![0.0; 32];
/// for (w, o) in windows.chunks(8).zip(per_window.chunks_mut(8)) {
///     plan.transform().forward_into(w, o);
/// }
/// assert_eq!(batched, per_window); // bit-identical, not just close
/// ```
#[derive(Debug, Clone)]
pub struct BatchedDct {
    dct: Dct,
    tier: KernelTier,
    soa: Vec<f64>,
    out_soa: Vec<f64>,
}

impl BatchedDct {
    /// Creates a batched N-point float forward plan, selecting the
    /// kernel tier with [`KernelTier::detected`].
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        Self::from_transform(Dct::new(n))
    }

    /// Wraps an existing transform, selecting the kernel tier with
    /// [`KernelTier::detected`].
    pub fn from_transform(dct: Dct) -> Self {
        Self::with_tier(dct, KernelTier::detected())
    }

    /// Wraps an existing transform with an explicitly pinned kernel tier
    /// (clamped to what the platform can run).
    pub fn with_tier(dct: Dct, tier: KernelTier) -> Self {
        BatchedDct { dct, tier: tier.supported(), soa: Vec::new(), out_soa: Vec::new() }
    }

    /// The window size this plan transforms.
    pub fn len(&self) -> usize {
        self.dct.len()
    }

    /// Always `false`; construction requires a positive length.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The kernel tier this plan dispatches to.
    pub fn tier(&self) -> KernelTier {
        self.tier
    }

    /// The wrapped per-window transform.
    pub fn transform(&self) -> &Dct {
        &self.dct
    }

    /// Batched [`Dct::forward_into`] over `samples.len() / n`
    /// concatenated windows, bit-identical to the per-window kernel.
    ///
    /// # Panics
    ///
    /// Panics if `samples.len()` is not a multiple of the window size or
    /// `out.len() != samples.len()`.
    pub fn forward_batched_into(&mut self, samples: &[f64], out: &mut [f64]) {
        let n = self.dct.len();
        assert!(samples.len().is_multiple_of(n), "input must be whole windows");
        assert_eq!(out.len(), samples.len(), "output length must match input length");
        let max_batch = (samples.len() / n).min(MAX_BATCH_CHUNK);
        self.soa.resize(n * max_batch, 0.0);
        self.out_soa.resize(n * max_batch, 0.0);
        for (schunk, ochunk) in
            samples.chunks(n * MAX_BATCH_CHUNK).zip(out.chunks_mut(n * MAX_BATCH_CHUNK))
        {
            let batch = schunk.len() / n;
            for (w, win) in schunk.chunks_exact(n).enumerate() {
                for (i, &s) in win.iter().enumerate() {
                    self.soa[i * batch + w] = s;
                }
            }
            dct_forward_dispatch(
                self.tier,
                &self.dct,
                &self.soa[..n * batch],
                &mut self.out_soa[..n * batch],
                batch,
            );
            for (w, dst) in ochunk.chunks_exact_mut(n).enumerate() {
                for (k, o) in dst.iter_mut().enumerate() {
                    *o = self.out_soa[k * batch + w];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intdct::SUPPORTED_SIZES;

    /// Deterministic pseudo-random stream (mirrors the loeffler tests).
    fn xorshift(state: &mut u64) -> i32 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        (*state >> 32) as i32
    }

    fn tiers_to_test() -> Vec<KernelTier> {
        let mut tiers = vec![KernelTier::Scalar];
        if cfg!(target_arch = "x86_64") {
            tiers.push(KernelTier::Sse2);
            if KernelTier::detected() == KernelTier::Avx2 {
                tiers.push(KernelTier::Avx2);
            }
        }
        tiers
    }

    #[test]
    fn forward_batched_matches_per_window_on_all_tiers() {
        for ws in SUPPORTED_SIZES {
            for tier in tiers_to_test() {
                for batch in [1usize, 2, 3, 7, MAX_BATCH_CHUNK, MAX_BATCH_CHUNK + 5] {
                    let mut state = 0xD1CE_0000_0000_0001 ^ (ws as u64) << 8 ^ batch as u64;
                    let windows: Vec<Q15> = (0..ws * batch)
                        .map(|_| Q15::from_raw((xorshift(&mut state) >> 16) as i16))
                        .collect();
                    let mut plan = BatchedIntDctPlan::with_tier(IntDct::new(ws).unwrap(), tier);
                    let mut batched = vec![0i32; ws * batch];
                    plan.forward_batched_into(&windows, &mut batched);
                    let mut per = vec![0i32; ws * batch];
                    for (w, o) in windows.chunks_exact(ws).zip(per.chunks_exact_mut(ws)) {
                        plan.transform().forward_into(w, o);
                    }
                    assert_eq!(batched, per, "ws={ws} tier={tier:?} batch={batch}");
                }
            }
        }
    }

    #[test]
    fn forward_batched_handles_hostile_saturation_windows() {
        for ws in SUPPORTED_SIZES {
            for tier in tiers_to_test() {
                let patterns: [Vec<Q15>; 3] = [
                    vec![Q15::MAX; ws * 4],
                    vec![Q15::MIN; ws * 4],
                    (0..ws * 4).map(|i| if i % 2 == 0 { Q15::MAX } else { Q15::MIN }).collect(),
                ];
                for windows in &patterns {
                    let mut plan = BatchedIntDctPlan::with_tier(IntDct::new(ws).unwrap(), tier);
                    let mut batched = vec![0i32; ws * 4];
                    plan.forward_batched_into(windows, &mut batched);
                    let mut per = vec![0i32; ws * 4];
                    for (w, o) in windows.chunks_exact(ws).zip(per.chunks_exact_mut(ws)) {
                        plan.transform().forward_into(w, o);
                    }
                    assert_eq!(batched, per, "ws={ws} tier={tier:?}");
                }
            }
        }
    }

    #[test]
    fn inverse_batched_matches_per_window_on_all_tiers() {
        for ws in SUPPORTED_SIZES {
            for tier in tiers_to_test() {
                for batch in [1usize, 3, MAX_BATCH_CHUNK + 2] {
                    let mut state = 0xBEEF_0000_0000_0002 ^ (ws as u64) << 8 ^ batch as u64;
                    // Mix of dense, sparse and hostile-extreme windows.
                    let coeffs: Vec<i32> = (0..ws * batch)
                        .map(|j| match j % 7 {
                            0 => xorshift(&mut state),
                            1..=3 => 0,
                            4 => i32::MAX,
                            5 => i32::MIN,
                            _ => xorshift(&mut state) >> 12,
                        })
                        .collect();
                    let mut plan = BatchedIntDctPlan::with_tier(IntDct::new(ws).unwrap(), tier);
                    let mut batched = vec![Q15::ZERO; ws * batch];
                    plan.inverse_batched_into(&coeffs, &mut batched);
                    let mut per = vec![Q15::ZERO; ws * batch];
                    for (y, o) in coeffs.chunks_exact(ws).zip(per.chunks_exact_mut(ws)) {
                        plan.transform().inverse_into(y, o);
                    }
                    assert_eq!(batched, per, "ws={ws} tier={tier:?} batch={batch}");

                    for pre_shift in [0u32, 2] {
                        let mut batched = vec![0.0f64; ws * batch];
                        plan.inverse_f64_batched_into(&coeffs, pre_shift, &mut batched);
                        let mut per = vec![0.0f64; ws * batch];
                        for (y, o) in coeffs.chunks_exact(ws).zip(per.chunks_exact_mut(ws)) {
                            plan.transform().inverse_f64_into(y, pre_shift, o);
                        }
                        assert_eq!(
                            batched, per,
                            "ws={ws} tier={tier:?} batch={batch} pre_shift={pre_shift}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn all_zero_batch_stays_zero() {
        let mut plan = BatchedIntDctPlan::new(16).unwrap();
        let coeffs = vec![0i32; 16 * 6];
        let mut out = vec![1.0f64; 16 * 6];
        plan.inverse_f64_batched_into(&coeffs, 2, &mut out);
        assert!(out.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut plan = BatchedIntDctPlan::new(8).unwrap();
        plan.forward_batched_into(&[], &mut []);
        plan.inverse_f64_batched_into(&[], 2, &mut []);
        let mut fplan = BatchedDct::new(8);
        fplan.forward_batched_into(&[], &mut []);
    }

    #[test]
    #[should_panic(expected = "whole windows")]
    fn forward_rejects_ragged_input() {
        let mut plan = BatchedIntDctPlan::new(8).unwrap();
        let mut out = vec![0i32; 12];
        plan.forward_batched_into(&[Q15::ZERO; 12], &mut out);
    }

    #[test]
    fn float_forward_batched_is_bit_identical() {
        for n in [4usize, 8, 16, 32, 64] {
            for tier in tiers_to_test() {
                for batch in [1usize, 5, MAX_BATCH_CHUNK + 3] {
                    let mut state = 0xF10A_0000_0000_0003 ^ (n as u64) << 8 ^ batch as u64;
                    let samples: Vec<f64> = (0..n * batch)
                        .map(|_| f64::from(xorshift(&mut state)) / f64::from(i32::MAX))
                        .collect();
                    let mut plan = BatchedDct::with_tier(Dct::new(n), tier);
                    let mut batched = vec![0.0; n * batch];
                    plan.forward_batched_into(&samples, &mut batched);
                    let mut per = vec![0.0; n * batch];
                    for (w, o) in samples.chunks_exact(n).zip(per.chunks_exact_mut(n)) {
                        plan.transform().forward_into(w, o);
                    }
                    // Bitwise equality, including signed zeros.
                    for (a, b) in batched.iter().zip(&per) {
                        assert_eq!(a.to_bits(), b.to_bits(), "n={n} tier={tier:?} batch={batch}");
                    }
                }
            }
        }
    }

    #[test]
    fn detected_tier_is_stable_and_supported() {
        let t = KernelTier::detected();
        assert_eq!(t, KernelTier::detected());
        assert_eq!(t, t.supported());
        if !cfg!(target_arch = "x86_64") {
            assert_eq!(t, KernelTier::Scalar);
        }
    }

    #[test]
    fn plan_reports_len_and_tier() {
        let plan = BatchedIntDctPlan::with_tier(IntDct::new(32).unwrap(), KernelTier::Scalar);
        assert_eq!(plan.len(), 32);
        assert!(!plan.is_empty());
        assert_eq!(plan.tier(), KernelTier::Scalar);
        let f = BatchedDct::with_tier(Dct::new(12), KernelTier::Scalar);
        assert_eq!(f.len(), 12);
        assert!(!f.is_empty());
        assert_eq!(f.tier(), KernelTier::Scalar);
    }
}
