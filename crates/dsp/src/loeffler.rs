//! Loeffler's practical fast 8-point DCT (11 multiplications, 29 additions).
//!
//! This is the minimal-multiplier floating/fixed-point DCT factorization
//! [Loeffler, Ligtenberg, Moschytz, ICASSP 1989] that the paper's `DCT-W`
//! hardware engine is based on (Table IV: 11 multipliers, 29 adders for
//! WS=8). The flowgraph computes a *uniformly scaled* DCT: every output
//! equals `sqrt(8)` times the orthonormal DCT-II coefficient, so the scale
//! can be folded into quantization with no extra hardware.
//!
//! The inverse runs the transposed flowgraph (rotations negated, stages
//! reversed) followed by a single shift-by-8 normalization, which is why
//! "IDCT circuits are simply the reverse of DCT circuits" (Section V-B).

use std::f64::consts::PI;

/// Number of multipliers in the 8-point Loeffler DCT/IDCT flowgraph.
pub const LOEFFLER_8_MULTIPLIERS: usize = 11;
/// Number of adders in the 8-point Loeffler DCT/IDCT flowgraph.
pub const LOEFFLER_8_ADDERS: usize = 29;
/// Multipliers for the minimal known 16-point factorization (Table IV).
pub const LOEFFLER_16_MULTIPLIERS: usize = 26;
/// Adders for the minimal known 16-point factorization (Table IV).
pub const LOEFFLER_16_ADDERS: usize = 81;

/// The uniform output scale of the flowgraph relative to the orthonormal
/// DCT: `sqrt(8)`.
pub const LOEFFLER_8_SCALE: f64 = 2.828_427_124_746_190_3;

#[inline]
fn rot(a: f64, b: f64, theta: f64) -> (f64, f64) {
    let (s, c) = theta.sin_cos();
    (a * c + b * s, -a * s + b * c)
}

/// Forward 8-point Loeffler DCT.
///
/// Returns `sqrt(8)` times the orthonormal DCT-II of `x`.
///
/// # Example
///
/// ```
/// use compaqt_dsp::loeffler::{loeffler_dct8, LOEFFLER_8_SCALE};
/// use compaqt_dsp::dct::dct2;
///
/// let x = [0.1, 0.3, 0.5, 0.7, 0.7, 0.5, 0.3, 0.1];
/// let fast = loeffler_dct8(&x);
/// let exact = dct2(&x);
/// for k in 0..8 {
///     assert!((fast[k] / LOEFFLER_8_SCALE - exact[k]).abs() < 1e-12);
/// }
/// ```
pub fn loeffler_dct8(x: &[f64; 8]) -> [f64; 8] {
    // Stage 1: reflection butterflies.
    let a0 = x[0] + x[7];
    let a1 = x[1] + x[6];
    let a2 = x[2] + x[5];
    let a3 = x[3] + x[4];
    let a4 = x[3] - x[4];
    let a5 = x[2] - x[5];
    let a6 = x[1] - x[6];
    let a7 = x[0] - x[7];

    // Stage 2, even half: 4-point butterflies.
    let b0 = a0 + a3;
    let b1 = a1 + a2;
    let b2 = a1 - a2;
    let b3 = a0 - a3;
    // Stage 2, odd half: two rotators (3 multipliers each in hardware).
    let (b4, b7) = rot(a4, a7, 3.0 * PI / 16.0);
    let (b5, b6) = rot(a5, a6, PI / 16.0);

    // Stage 3, even: DC/Nyquist butterfly plus the sqrt(2)*c(pi/8) rotator.
    let y0 = b0 + b1;
    let y4 = b0 - b1;
    let (c, s) = ((PI / 8.0).cos(), (PI / 8.0).sin());
    let r2 = std::f64::consts::SQRT_2;
    let y2 = r2 * (c * b3 + s * b2);
    let y6 = r2 * (s * b3 - c * b2);

    // Stage 3, odd: butterflies.
    let c4 = b4 + b6;
    let c5 = b7 - b5;
    let c6 = b4 - b6;
    let c7 = b7 + b5;

    // Stage 4, odd: output butterflies and two sqrt(2) scalings.
    let y1 = c7 + c4;
    let y7 = c7 - c4;
    let y3 = r2 * c5;
    let y5 = r2 * c6;

    [y0, y1, y2, y3, y4, y5, y6, y7]
}

/// Inverse 8-point Loeffler IDCT: the transposed flowgraph followed by a
/// divide-by-8, the exact inverse of [`loeffler_dct8`].
///
/// # Example
///
/// ```
/// use compaqt_dsp::loeffler::{loeffler_dct8, loeffler_idct8};
///
/// let x = [0.0, 0.2, 0.4, 0.2, -0.1, -0.4, -0.2, 0.0];
/// let y = loeffler_dct8(&x);
/// let x_hat = loeffler_idct8(&y);
/// for k in 0..8 {
///     assert!((x[k] - x_hat[k]).abs() < 1e-12);
/// }
/// ```
pub fn loeffler_idct8(y: &[f64; 8]) -> [f64; 8] {
    let r2 = std::f64::consts::SQRT_2;

    // Transposed stage 4 (odd).
    let c7 = y[1] + y[7];
    let c4 = y[1] - y[7];
    let c5 = r2 * y[3];
    let c6 = r2 * y[5];

    // Transposed stage 3 (odd butterflies).
    let b4 = c4 + c6;
    let b6 = c4 - c6;
    let b5 = c7 - c5;
    let b7 = c7 + c5;

    // Transposed stage 3 (even).
    let b0 = y[0] + y[4];
    let b1 = y[0] - y[4];
    let (c, s) = ((PI / 8.0).cos(), (PI / 8.0).sin());
    let b2 = r2 * (s * y[2] - c * y[6]);
    let b3 = r2 * (c * y[2] + s * y[6]);

    // Transposed stage 2: even butterflies and negated rotators.
    let a0 = b0 + b3;
    let a3 = b0 - b3;
    let a1 = b1 + b2;
    let a2 = b1 - b2;
    let (a4, a7) = rot(b4, b7, -3.0 * PI / 16.0);
    let (a5, a6) = rot(b5, b6, -PI / 16.0);

    // Transposed stage 1 and final 1/8 normalization.
    [
        (a0 + a7) / 8.0,
        (a1 + a6) / 8.0,
        (a2 + a5) / 8.0,
        (a3 + a4) / 8.0,
        (a3 - a4) / 8.0,
        (a2 - a5) / 8.0,
        (a1 - a6) / 8.0,
        (a0 - a7) / 8.0,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dct::dct2;

    #[test]
    fn matches_exact_dct_up_to_scale() {
        let x = [0.9, -0.3, 0.25, 0.6, -0.75, 0.1, 0.0, 0.45];
        let fast = loeffler_dct8(&x);
        let exact = dct2(&x);
        for k in 0..8 {
            assert!(
                (fast[k] / LOEFFLER_8_SCALE - exact[k]).abs() < 1e-12,
                "coefficient {k}: {} vs {}",
                fast[k] / LOEFFLER_8_SCALE,
                exact[k]
            );
        }
    }

    #[test]
    fn inverse_round_trips() {
        let x = [0.11, 0.22, 0.33, 0.44, -0.44, -0.33, -0.22, -0.11];
        let x_hat = loeffler_idct8(&loeffler_dct8(&x));
        for k in 0..8 {
            assert!((x[k] - x_hat[k]).abs() < 1e-12);
        }
    }

    #[test]
    fn impulse_round_trips() {
        for pos in 0..8 {
            let mut x = [0.0; 8];
            x[pos] = 1.0;
            let x_hat = loeffler_idct8(&loeffler_dct8(&x));
            for (k, &v) in x_hat.iter().enumerate() {
                let expect = if k == pos { 1.0 } else { 0.0 };
                assert!((v - expect).abs() < 1e-12, "impulse at {pos}, sample {k}");
            }
        }
    }

    #[test]
    fn scale_constant_is_sqrt8() {
        assert!((LOEFFLER_8_SCALE - 8f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn resource_counts_match_table_iv() {
        // Table IV, DCT-W rows.
        assert_eq!(LOEFFLER_8_MULTIPLIERS, 11);
        assert_eq!(LOEFFLER_8_ADDERS, 29);
        assert_eq!(LOEFFLER_16_MULTIPLIERS, 26);
        assert_eq!(LOEFFLER_16_ADDERS, 81);
    }
}
