//! Loeffler-style fast DCT factorizations: the classic 8-point f64
//! flowgraph plus a generic power-of-two *integer* butterfly kernel.
//!
//! The first half of this module is the minimal-multiplier DCT
//! factorization [Loeffler, Ligtenberg, Moschytz, ICASSP 1989] that the
//! paper's `DCT-W` hardware engine is based on (Table IV: 11 multipliers,
//! 29 adders for WS=8). The flowgraph computes a *uniformly scaled* DCT:
//! every output equals `sqrt(8)` times the orthonormal DCT-II
//! coefficient, so the scale can be folded into quantization with no
//! extra hardware. The inverse runs the transposed flowgraph (rotations
//! negated, stages reversed) followed by a single shift-by-8
//! normalization, which is why "IDCT circuits are simply the reverse of
//! DCT circuits" (Section V-B).
//!
//! The second half, [`IntButterflyPlan`], generalizes the *first stage*
//! of that flowgraph — the reflection butterflies `x[i] ± x[N-1-i]` — to
//! any power-of-two length and to integer arithmetic, which is what the
//! codec's forward [`crate::intdct::IntDct`] runs on. The even half of a
//! symmetric integer DCT matrix recurses into the half-size matrix; the
//! odd half stays a dense rotator bank (the Q15/i32 rotations of the
//! Loeffler graph, one constant multiply per matrix entry). Keeping the
//! odd half dense instead of factoring it all the way down to 11
//! multipliers is a deliberate trade: integer additions reassociate
//! *exactly*, so the butterfly kernel is **bit-identical** to the full
//! matrix multiply it replaces — no max-ulp bound to document, the
//! matrix path stays available as the oracle — while still cutting the
//! multiply count roughly threefold (22 vs 64 at N=8, 342 vs 1024 at
//! N=32). A fully reduced Loeffler graph would need irrational rotation
//! pairs that cannot reproduce the hand-tuned HEVC integers bit-for-bit.

use std::f64::consts::PI;

/// Number of multipliers in the 8-point Loeffler DCT/IDCT flowgraph.
pub const LOEFFLER_8_MULTIPLIERS: usize = 11;
/// Number of adders in the 8-point Loeffler DCT/IDCT flowgraph.
pub const LOEFFLER_8_ADDERS: usize = 29;
/// Multipliers for the minimal known 16-point factorization (Table IV).
pub const LOEFFLER_16_MULTIPLIERS: usize = 26;
/// Adders for the minimal known 16-point factorization (Table IV).
pub const LOEFFLER_16_ADDERS: usize = 81;

/// The uniform output scale of the flowgraph relative to the orthonormal
/// DCT: `sqrt(8)`.
pub const LOEFFLER_8_SCALE: f64 = 2.828_427_124_746_190_3;

#[inline]
fn rot(a: f64, b: f64, theta: f64) -> (f64, f64) {
    let (s, c) = theta.sin_cos();
    (a * c + b * s, -a * s + b * c)
}

/// Forward 8-point Loeffler DCT.
///
/// Returns `sqrt(8)` times the orthonormal DCT-II of `x`.
///
/// # Example
///
/// ```
/// use compaqt_dsp::loeffler::{loeffler_dct8, LOEFFLER_8_SCALE};
/// use compaqt_dsp::dct::dct2;
///
/// let x = [0.1, 0.3, 0.5, 0.7, 0.7, 0.5, 0.3, 0.1];
/// let fast = loeffler_dct8(&x);
/// let exact = dct2(&x);
/// for k in 0..8 {
///     assert!((fast[k] / LOEFFLER_8_SCALE - exact[k]).abs() < 1e-12);
/// }
/// ```
pub fn loeffler_dct8(x: &[f64; 8]) -> [f64; 8] {
    // Stage 1: reflection butterflies.
    let a0 = x[0] + x[7];
    let a1 = x[1] + x[6];
    let a2 = x[2] + x[5];
    let a3 = x[3] + x[4];
    let a4 = x[3] - x[4];
    let a5 = x[2] - x[5];
    let a6 = x[1] - x[6];
    let a7 = x[0] - x[7];

    // Stage 2, even half: 4-point butterflies.
    let b0 = a0 + a3;
    let b1 = a1 + a2;
    let b2 = a1 - a2;
    let b3 = a0 - a3;
    // Stage 2, odd half: two rotators (3 multipliers each in hardware).
    let (b4, b7) = rot(a4, a7, 3.0 * PI / 16.0);
    let (b5, b6) = rot(a5, a6, PI / 16.0);

    // Stage 3, even: DC/Nyquist butterfly plus the sqrt(2)*c(pi/8) rotator.
    let y0 = b0 + b1;
    let y4 = b0 - b1;
    let (c, s) = ((PI / 8.0).cos(), (PI / 8.0).sin());
    let r2 = std::f64::consts::SQRT_2;
    let y2 = r2 * (c * b3 + s * b2);
    let y6 = r2 * (s * b3 - c * b2);

    // Stage 3, odd: butterflies.
    let c4 = b4 + b6;
    let c5 = b7 - b5;
    let c6 = b4 - b6;
    let c7 = b7 + b5;

    // Stage 4, odd: output butterflies and two sqrt(2) scalings.
    let y1 = c7 + c4;
    let y7 = c7 - c4;
    let y3 = r2 * c5;
    let y5 = r2 * c6;

    [y0, y1, y2, y3, y4, y5, y6, y7]
}

/// Inverse 8-point Loeffler IDCT: the transposed flowgraph followed by a
/// divide-by-8, the exact inverse of [`loeffler_dct8`].
///
/// # Example
///
/// ```
/// use compaqt_dsp::loeffler::{loeffler_dct8, loeffler_idct8};
///
/// let x = [0.0, 0.2, 0.4, 0.2, -0.1, -0.4, -0.2, 0.0];
/// let y = loeffler_dct8(&x);
/// let x_hat = loeffler_idct8(&y);
/// for k in 0..8 {
///     assert!((x[k] - x_hat[k]).abs() < 1e-12);
/// }
/// ```
pub fn loeffler_idct8(y: &[f64; 8]) -> [f64; 8] {
    let r2 = std::f64::consts::SQRT_2;

    // Transposed stage 4 (odd).
    let c7 = y[1] + y[7];
    let c4 = y[1] - y[7];
    let c5 = r2 * y[3];
    let c6 = r2 * y[5];

    // Transposed stage 3 (odd butterflies).
    let b4 = c4 + c6;
    let b6 = c4 - c6;
    let b5 = c7 - c5;
    let b7 = c7 + c5;

    // Transposed stage 3 (even).
    let b0 = y[0] + y[4];
    let b1 = y[0] - y[4];
    let (c, s) = ((PI / 8.0).cos(), (PI / 8.0).sin());
    let b2 = r2 * (s * y[2] - c * y[6]);
    let b3 = r2 * (c * y[2] + s * y[6]);

    // Transposed stage 2: even butterflies and negated rotators.
    let a0 = b0 + b3;
    let a3 = b0 - b3;
    let a1 = b1 + b2;
    let a2 = b1 - b2;
    let (a4, a7) = rot(b4, b7, -3.0 * PI / 16.0);
    let (a5, a6) = rot(b5, b6, -PI / 16.0);

    // Transposed stage 1 and final 1/8 normalization.
    [
        (a0 + a7) / 8.0,
        (a1 + a6) / 8.0,
        (a2 + a5) / 8.0,
        (a3 + a4) / 8.0,
        (a3 - a4) / 8.0,
        (a2 - a5) / 8.0,
        (a1 - a6) / 8.0,
        (a0 - a7) / 8.0,
    ]
}

/// Largest transform length the stack-allocated butterfly kernel
/// supports. Longer power-of-two matrices fall back to the dense matrix
/// path in [`crate::intdct::IntDct`].
pub const MAX_BUTTERFLY_LEN: usize = 64;

/// A factorized fixed-point forward/inverse DCT kernel for one
/// power-of-two length: the Loeffler reflection-butterfly stages applied
/// recursively to the even half of an integer DCT matrix, with each odd
/// half kept as a dense bank of integer rotators.
///
/// # Exactness contract
///
/// [`IntButterflyPlan::forward_accumulate`] computes *exactly*
/// `out[k] = sum_i T[k][i] * x[i]` for the matrix `T` the plan was built
/// from, and [`IntButterflyPlan::inverse_accumulate`] exactly
/// `out[i] = sum_k T[k][i] * y[k]` — the factorization only reorders
/// integer additions, which are associative, so both directions are
/// bit-identical to the dense matrix multiply (the
/// `transform_equivalence` suite proptests this against the matrix
/// oracle for every supported window size). The uniform flowgraph scale
/// therefore stays folded wherever the matrix's scale already lives:
/// the caller's `forward_shift`/quantization constants are untouched.
///
/// # Construction
///
/// [`IntButterflyPlan::from_matrix`] accepts any row-major `n x n`
/// integer matrix whose rows are recursively reflection-symmetric (even
/// rows `T[2k][i] == T[2k][n-1-i]`, odd rows antisymmetric) — the
/// defining property of every DCT-II-family matrix, including the
/// hand-tuned HEVC/VVC integer transforms — and returns `None` for
/// matrices without the symmetry or lengths outside
/// `1..=`[`MAX_BUTTERFLY_LEN`], letting callers fall back to the dense
/// path.
///
/// # Example
///
/// ```
/// use compaqt_dsp::loeffler::IntButterflyPlan;
///
/// // The 4-point HEVC core transform.
/// let t = [64, 64, 64, 64, 83, 36, -36, -83, 64, -64, -64, 64, 36, -83, 83, -36];
/// let plan = IntButterflyPlan::from_matrix(4, &t).expect("symmetric");
/// let x = [100, -3000, 1234, 32767];
/// let mut fast = [0i32; 4];
/// plan.forward_accumulate(&x, &mut fast);
/// for k in 0..4 {
///     let dense: i32 = (0..4).map(|i| t[k * 4 + i] * x[i]).sum();
///     assert_eq!(fast[k], dense, "bit-exact by construction");
/// }
/// assert_eq!(plan.multiplies(), 6); // vs 16 for the dense multiply
/// ```
#[derive(Debug, Clone)]
pub struct IntButterflyPlan {
    n: usize,
    /// Flattened odd-row half-matrices, outermost level first: level `L`
    /// (segment length `n >> L`, half `h = n >> (L + 1)`) contributes
    /// `h * h` entries `T_{n>>L}[2k+1][i]` for `i < h`, where
    /// `T_{n>>L}` is the `L`-fold even-row subsampling of the matrix.
    odd: Vec<i32>,
    /// Start of each level's rows inside `odd`.
    level_off: Vec<usize>,
    /// The 1x1 base case `T[0][0]` (64 for the HEVC family).
    dc: i32,
}

impl IntButterflyPlan {
    /// Builds the butterfly factorization of a row-major `n x n` integer
    /// matrix, or `None` if `n` is not a power of two in
    /// `1..=`[`MAX_BUTTERFLY_LEN`] or the matrix lacks the recursive
    /// even-symmetric / odd-antisymmetric row structure.
    ///
    /// # Panics
    ///
    /// Panics if `matrix.len() != n * n`.
    pub fn from_matrix(n: usize, matrix: &[i32]) -> Option<Self> {
        assert_eq!(matrix.len(), n * n, "matrix must be n x n row-major");
        if n == 0 || !n.is_power_of_two() || n > MAX_BUTTERFLY_LEN {
            return None;
        }
        let mut cur = matrix.to_vec();
        let mut odd = Vec::new();
        let mut level_off = Vec::new();
        let mut len = n;
        while len > 1 {
            let half = len / 2;
            for (k, row) in cur.chunks_exact(len).enumerate() {
                let sign: i64 = if k % 2 == 0 { 1 } else { -1 };
                for i in 0..half {
                    if i64::from(row[i]) != sign * i64::from(row[len - 1 - i]) {
                        return None;
                    }
                }
            }
            level_off.push(odd.len());
            for k in 0..half {
                let row = (2 * k + 1) * len;
                odd.extend_from_slice(&cur[row..row + half]);
            }
            let mut next = vec![0i32; half * half];
            for k in 0..half {
                next[k * half..(k + 1) * half]
                    .copy_from_slice(&cur[2 * k * len..2 * k * len + half]);
            }
            cur = next;
            len = half;
        }
        Some(IntButterflyPlan { n, odd, level_off, dc: cur[0] })
    }

    /// The planned transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// The dense odd-rotator bank of recursion level `level`: a row-major
    /// `half x half` block with `half = n >> (level + 1)`, row `k` holding
    /// the first half of matrix row `2k+1` at that level. Exposed for the
    /// batched SoA kernels in [`crate::batched`], which replay the exact
    /// flowgraph across a whole window batch.
    pub(crate) fn rows_at(&self, level: usize) -> &[i32] {
        let half = self.n >> (level + 1);
        &self.odd[self.level_off[level]..self.level_off[level] + half * half]
    }

    /// Number of butterfly recursion levels (`log2 n`).
    pub(crate) fn level_count(&self) -> usize {
        self.level_off.len()
    }

    /// The 1x1 base-case gain `T[0][0]`.
    pub(crate) fn dc_gain(&self) -> i32 {
        self.dc
    }

    /// Always `false`: zero-length plans are rejected at construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Constant multiplies one forward (or inverse) evaluation performs:
    /// every odd-bank entry plus the 1x1 base case. Compare `n * n` for
    /// the dense multiply (22 vs 64 at N=8, 86 vs 256 at N=16).
    pub fn multiplies(&self) -> usize {
        self.odd.len() + 1
    }

    /// Integer additions per evaluation: `len/2` butterflies (one add,
    /// one subtract) per level plus the odd-bank dot-product
    /// accumulations.
    pub fn adds(&self) -> usize {
        let mut total = 0;
        let mut len = self.n;
        while len > 1 {
            let half = len / 2;
            total += len + half * (half - 1);
            len = half;
        }
        total
    }

    /// Forward factorized transform: `out[k] = sum_i T[k][i] * x[i]`,
    /// exactly, with no rounding or shifting (the caller owns the scale
    /// folding). All intermediates live on the stack.
    ///
    /// Arithmetic is `i32`; the caller must guarantee
    /// `max|T| * n * max|x| < 2^31` (every butterfly level satisfies the
    /// same bound, see the inline proof). Q1.15 samples through the
    /// HEVC-family matrices satisfy it with 11x headroom at N=64.
    ///
    /// Dispatches to a monomorphized kernel per length so the butterfly
    /// and rotator-bank loops unroll with compile-time trip counts —
    /// without this, the dense matrix multiply's perfectly regular loops
    /// out-vectorize the factorization at small N.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` or `out.len()` differs from the plan length.
    pub fn forward_accumulate(&self, x: &[i32], out: &mut [i32]) {
        assert_eq!(x.len(), self.n, "input length must match plan length");
        assert_eq!(out.len(), self.n, "output length must match plan length");
        match self.n {
            1 => out[0] = self.dc * x[0],
            2 => self.forward_impl::<2>(x, out),
            4 => self.forward_impl::<4>(x, out),
            8 => self.forward_impl::<8>(x, out),
            16 => self.forward_impl::<16>(x, out),
            32 => self.forward_impl::<32>(x, out),
            64 => self.forward_impl::<64>(x, out),
            _ => unreachable!("construction admits only powers of two up to MAX_BUTTERFLY_LEN"),
        }
    }

    /// Monomorphized forward kernel body; `N == self.n` by dispatch.
    fn forward_impl<const N: usize>(&self, x: &[i32], out: &mut [i32]) {
        let mut buf = [0i32; N];
        buf.copy_from_slice(x);
        let mut len = N;
        let mut level = 0usize;
        let mut step = 1usize;
        while len > 1 {
            let half = len / 2;
            // Loeffler stage-1 reflection butterflies: the sums continue
            // into the even recursion in place, the differences feed the
            // odd rotator bank. After L levels |buf| <= 2^L * max|x|, and
            // each dot product has n >> (L+1) terms, so every accumulator
            // is bounded by max|T| * n/2 * 2 * max|x| independent of L.
            let mut diff = [0i32; N];
            for i in 0..half {
                let a = buf[i];
                let b = buf[len - 1 - i];
                diff[i] = a - b;
                buf[i] = a + b;
            }
            let rows = &self.odd[self.level_off[level]..self.level_off[level] + half * half];
            for (k, row) in rows.chunks_exact(half).enumerate() {
                let acc: i32 = row.iter().zip(&diff[..half]).map(|(&t, &d)| t * d).sum();
                out[step * (2 * k + 1)] = acc;
            }
            len = half;
            level += 1;
            step *= 2;
        }
        out[0] = self.dc * buf[0];
    }

    /// Transposed (inverse-direction) factorized transform:
    /// `out[i] = sum_k T[k][i] * y[k]`, exactly — the reversed flowgraph
    /// with negated-rotation semantics absorbed by the transpose.
    ///
    /// Accumulation is `i64`, matching the dense inverse oracle for
    /// arbitrary `i32` coefficients (hostile streams included); zero
    /// coefficients skip their rotator bank rows, so thresholded windows
    /// stay cheap.
    ///
    /// # Panics
    ///
    /// Panics if `y.len()` or `out.len()` differs from the plan length.
    pub fn inverse_accumulate(&self, y: &[i32], out: &mut [i64]) {
        assert_eq!(y.len(), self.n, "input length must match plan length");
        assert_eq!(out.len(), self.n, "output length must match plan length");
        let mut buf = [0i64; MAX_BUTTERFLY_LEN];
        buf[0] = i64::from(self.dc) * i64::from(y[0]);
        let mut len = 2usize;
        while len <= self.n {
            let half = len / 2;
            let level = self.level_off.len() - len.trailing_zeros() as usize;
            let step = self.n / len;
            let rows = &self.odd[self.level_off[level]..self.level_off[level] + half * half];
            let mut odd = [0i64; MAX_BUTTERFLY_LEN / 2];
            let odd = &mut odd[..half];
            for (k, row) in rows.chunks_exact(half).enumerate() {
                let v = y[step * (2 * k + 1)];
                if v == 0 {
                    continue;
                }
                let v = i64::from(v);
                for (o, &t) in odd.iter_mut().zip(row) {
                    *o += i64::from(t) * v;
                }
            }
            // Transposed butterflies: expand the even half outward.
            for (i, &o) in odd.iter().enumerate() {
                let e = buf[i];
                buf[i] = e + o;
                buf[len - 1 - i] = e - o;
            }
            len *= 2;
        }
        out.copy_from_slice(&buf[..self.n]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dct::dct2;

    #[test]
    fn matches_exact_dct_up_to_scale() {
        let x = [0.9, -0.3, 0.25, 0.6, -0.75, 0.1, 0.0, 0.45];
        let fast = loeffler_dct8(&x);
        let exact = dct2(&x);
        for k in 0..8 {
            assert!(
                (fast[k] / LOEFFLER_8_SCALE - exact[k]).abs() < 1e-12,
                "coefficient {k}: {} vs {}",
                fast[k] / LOEFFLER_8_SCALE,
                exact[k]
            );
        }
    }

    #[test]
    fn inverse_round_trips() {
        let x = [0.11, 0.22, 0.33, 0.44, -0.44, -0.33, -0.22, -0.11];
        let x_hat = loeffler_idct8(&loeffler_dct8(&x));
        for k in 0..8 {
            assert!((x[k] - x_hat[k]).abs() < 1e-12);
        }
    }

    #[test]
    fn impulse_round_trips() {
        for pos in 0..8 {
            let mut x = [0.0; 8];
            x[pos] = 1.0;
            let x_hat = loeffler_idct8(&loeffler_dct8(&x));
            for (k, &v) in x_hat.iter().enumerate() {
                let expect = if k == pos { 1.0 } else { 0.0 };
                assert!((v - expect).abs() < 1e-12, "impulse at {pos}, sample {k}");
            }
        }
    }

    #[test]
    fn scale_constant_is_sqrt8() {
        assert!((LOEFFLER_8_SCALE - 8f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn resource_counts_match_table_iv() {
        // Table IV, DCT-W rows.
        assert_eq!(LOEFFLER_8_MULTIPLIERS, 11);
        assert_eq!(LOEFFLER_8_ADDERS, 29);
        assert_eq!(LOEFFLER_16_MULTIPLIERS, 26);
        assert_eq!(LOEFFLER_16_ADDERS, 81);
    }

    /// Deterministic pseudo-random i32 stream for kernel cross-checks.
    fn xorshift(state: &mut u64) -> i32 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        (*state >> 32) as i32
    }

    /// A scaled integer DCT-II matrix built through a shared quarter-wave
    /// magnitude table, so the reflection symmetry is exact at every
    /// recursion level (mirrored entries reuse the same table value; no
    /// independent float roundings that could differ by an ulp).
    fn scaled_cos_matrix(n: usize, scale: f64) -> Vec<i32> {
        let quarter: Vec<i32> = (0..=n)
            .map(|m| (scale * (PI * m as f64 / (2 * n) as f64).cos()).round() as i32)
            .collect();
        let fold = |m: usize| -> i32 {
            let m = m % (4 * n);
            match m {
                m if m <= n => quarter[m],
                m if m <= 2 * n => -quarter[2 * n - m],
                m if m <= 3 * n => -quarter[m - 2 * n],
                m => quarter[4 * n - m],
            }
        };
        let mut mat = vec![0i32; n * n];
        for k in 0..n {
            for (i, e) in mat[k * n..(k + 1) * n].iter_mut().enumerate() {
                *e = fold((2 * i + 1) * k);
            }
        }
        mat
    }

    #[test]
    fn butterfly_matches_dense_multiply_both_directions() {
        for n in [1usize, 2, 4, 8, 16, 32, 64] {
            let m = scaled_cos_matrix(n, 181.0);
            let plan = IntButterflyPlan::from_matrix(n, &m)
                .unwrap_or_else(|| panic!("n={n} should factorize"));
            let mut state = 0x5EED_0000_1234_5678 ^ n as u64;
            let x: Vec<i32> = (0..n).map(|_| xorshift(&mut state) >> 16).collect();
            let mut fwd = vec![0i32; n];
            plan.forward_accumulate(&x, &mut fwd);
            for k in 0..n {
                let dense: i64 = (0..n).map(|i| i64::from(m[k * n + i]) * i64::from(x[i])).sum();
                assert_eq!(i64::from(fwd[k]), dense, "n={n} forward k={k}");
            }
            let y: Vec<i32> = (0..n).map(|_| xorshift(&mut state)).collect();
            let mut inv = vec![0i64; n];
            plan.inverse_accumulate(&y, &mut inv);
            for i in 0..n {
                let dense: i64 = (0..n).map(|k| i64::from(m[k * n + i]) * i64::from(y[k])).sum();
                assert_eq!(inv[i], dense, "n={n} inverse i={i}");
            }
        }
    }

    #[test]
    fn butterfly_rejects_unfactorizable_matrices() {
        // Not a power of two.
        assert!(IntButterflyPlan::from_matrix(3, &[1; 9]).is_none());
        assert!(IntButterflyPlan::from_matrix(0, &[]).is_none());
        // Power of two but no reflection symmetry.
        let asym = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16];
        assert!(IntButterflyPlan::from_matrix(4, &asym).is_none());
        // Symmetric at the top level but broken in the even recursion:
        // rows 0/2 symmetric, rows 1/3 antisymmetric, yet the half
        // matrix [[1, 2], [5, 5]] has an asymmetric even row.
        let deep = [1, 2, 2, 1, 7, 3, -3, -7, 5, 5, 5, 5, 2, -9, 9, -2];
        assert!(IntButterflyPlan::from_matrix(4, &deep).is_none());
    }

    #[test]
    fn butterfly_cost_model_counts() {
        let t4 = [64, 64, 64, 64, 83, 36, -36, -83, 64, -64, -64, 64, 36, -83, 83, -36];
        let p = IntButterflyPlan::from_matrix(4, &t4).unwrap();
        // Odd banks: 2x2 at the top level + 1x1 at len 2, plus the base.
        assert_eq!(p.multiplies(), 4 + 1 + 1);
        // Butterflies: 4 + 2 adds; dot products: 2*(2-1) + 0.
        assert_eq!(p.adds(), 4 + 2 + 2);
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
    }

    #[test]
    fn butterfly_multiply_count_beats_dense() {
        // The whole point of the factorization: fewer constant multiplies
        // than the n^2 dense product at every codec window size.
        for n in [4usize, 8, 16, 32, 64] {
            let m = scaled_cos_matrix(n, 256.0);
            let p = IntButterflyPlan::from_matrix(n, &m).unwrap();
            assert!(
                2 * p.multiplies() <= n * n,
                "n={n}: {} multiplies vs dense {}",
                p.multiplies(),
                n * n
            );
        }
    }
}
