//! Reusable transform plans with caller-provided output buffers.
//!
//! The codec hot loop transforms millions of windows per pulse-library
//! compile, and the modelled hardware engine inverse-transforms every
//! window streamed to a DAC. The original kernels allocated fresh `Vec`s
//! at every call (and, for the recursive fast DCT, at every even/odd
//! split level). A *plan* hoists all of that out of the loop, FFTW-style:
//!
//! * [`DctPlan`] — arbitrary-length fast DCT-II/III. Construction
//!   precomputes the per-level butterfly twiddles `2cos(pi(2i+1)/2L)` and
//!   the base-case cosine basis once; `forward_into`/`inverse_into` then
//!   run an iterative, in-place kernel over one internal scratch buffer —
//!   zero heap allocations per transform.
//! * [`IntDctPlan`] — the windowed HEVC integer transform. The matrix is
//!   already precomputed by [`IntDct`]; the plan adds the `_into` entry
//!   points (including the sparse, dequantizing inverse the decompression
//!   engine uses) under the same naming scheme.
//!
//! The original allocating APIs ([`crate::fastdct::fast_dct2`],
//! [`IntDct::forward`], ...) remain as thin wrappers, so existing callers
//! and tests keep working bit-exactly.
//!
//! For workloads that mix transform *lengths* — a pulse library whose
//! `DCT-N` waveforms span many durations — [`DctPlanCache`] keeps a small
//! bounded set of plans keyed by length, so revisiting a length reuses its
//! twiddle tables instead of rebuilding them per waveform.
//!
//! # Example
//!
//! ```
//! use compaqt_dsp::plan::DctPlan;
//!
//! let x: Vec<f64> = (0..1362).map(|i| (i as f64 * 0.01).sin()).collect();
//! let mut plan = DctPlan::new(x.len());
//! let mut coeffs = vec![0.0; x.len()];
//! let mut back = vec![0.0; x.len()];
//! plan.forward_into(&x, &mut coeffs);
//! plan.inverse_into(&coeffs, &mut back);
//! for (a, b) in x.iter().zip(&back) {
//!     assert!((a - b).abs() < 1e-9);
//! }
//! ```

use crate::fixed::Q15;
use crate::intdct::{IntDct, UnsupportedSizeError};
use std::f64::consts::PI;

/// A reusable fast-DCT plan for one transform length.
///
/// Holds the precomputed butterfly twiddles for every even/odd split
/// level, the dense cosine basis for the odd/short base case, and an
/// internal scratch buffer, so repeated transforms perform no heap
/// allocation. Methods take `&mut self` because they use the internal
/// scratch; clone the plan (or build one per worker) for parallel use.
///
/// # Example: plan once, transform many times
///
/// ```
/// use compaqt_dsp::plan::DctPlan;
///
/// let mut plan = DctPlan::new(64);
/// let mut coeffs = vec![0.0; 64];
/// for phase in 0..100 {
///     let x: Vec<f64> = (0..64).map(|i| ((i + phase) as f64 * 0.1).sin()).collect();
///     // Steady state: no allocation — the plan's tables and scratch,
///     // and the caller's output buffer, are all reused.
///     plan.forward_into(&x, &mut coeffs);
/// }
/// assert_eq!(plan.len(), 64);
/// ```
#[derive(Debug, Clone)]
pub struct DctPlan {
    n: usize,
    /// `twiddles[d][i] = 2cos(pi(2i+1)/2L)` with `L = n >> d`.
    twiddles: Vec<Vec<f64>>,
    /// Base-case transform length (`n >> levels`; odd or `< 8`).
    base_len: usize,
    /// Row-major unnormalized cosine basis
    /// `base[k*m + i] = cos(pi(2i+1)k/2m)` for the base length `m`.
    base_basis: Vec<f64>,
    scratch: Vec<f64>,
}

impl DctPlan {
    /// Plans an `n`-point orthonormal DCT-II/DCT-III pair.
    ///
    /// Any `n` is accepted: even lengths are halved recursively while the
    /// half is still `>= 4` (matching the recursive kernel this replaces),
    /// the remainder is handled by a precomputed dense basis.
    pub fn new(n: usize) -> Self {
        let mut twiddles = Vec::new();
        let mut len = n;
        while len.is_multiple_of(2) && len >= 8 {
            let tw: Vec<f64> = (0..len / 2)
                .map(|i| 2.0 * (PI * (2 * i + 1) as f64 / (2 * len) as f64).cos())
                .collect();
            twiddles.push(tw);
            len /= 2;
        }
        let base_len = len;
        let mut base_basis = vec![0.0; base_len * base_len];
        for k in 0..base_len {
            for i in 0..base_len {
                base_basis[k * base_len + i] =
                    (PI * (2 * i + 1) as f64 * k as f64 / (2 * base_len) as f64).cos();
            }
        }
        DctPlan { n, twiddles, base_len, base_basis, scratch: vec![0.0; n] }
    }

    /// The planned transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether this is the degenerate zero-length plan.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Forward orthonormal DCT-II of `x` into `out`, allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` or `out.len()` differs from the plan length.
    pub fn forward_into(&mut self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.n, "input length must match plan length");
        assert_eq!(out.len(), self.n, "output length must match plan length");
        if self.n == 0 {
            return;
        }
        out.copy_from_slice(x);
        self.forward_unnorm_inplace(out);
        let s0 = (1.0 / self.n as f64).sqrt();
        let s = (2.0 / self.n as f64).sqrt();
        for (k, v) in out.iter_mut().enumerate() {
            *v *= if k == 0 { s0 } else { s };
        }
    }

    /// Inverse transform (orthonormal DCT-III) of `y` into `out`,
    /// allocation-free. Exact inverse of [`DctPlan::forward_into`].
    ///
    /// # Panics
    ///
    /// Panics if `y.len()` or `out.len()` differs from the plan length.
    pub fn inverse_into(&mut self, y: &[f64], out: &mut [f64]) {
        assert_eq!(y.len(), self.n, "input length must match plan length");
        assert_eq!(out.len(), self.n, "output length must match plan length");
        if self.n == 0 {
            return;
        }
        let s0 = (1.0 / self.n as f64).sqrt();
        let s = (2.0 / self.n as f64).sqrt();
        for (k, v) in out.iter_mut().enumerate() {
            *v = y[k] * if k == 0 { s0 } else { s };
        }
        self.inverse_unnorm_inplace(out);
    }

    /// Allocating convenience wrapper over [`DctPlan::forward_into`].
    pub fn forward(&mut self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.n];
        self.forward_into(x, &mut out);
        out
    }

    /// Allocating convenience wrapper over [`DctPlan::inverse_into`].
    pub fn inverse(&mut self, y: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.n];
        self.inverse_into(y, &mut out);
        out
    }

    /// Iterative unnormalized DCT-II over `buf`, replacing the recursive
    /// even/odd split. Level `d` holds `2^d` contiguous segments of
    /// length `n >> d`; the butterfly runs in place, segment odd halves
    /// are reversed into natural order, base cases use the precomputed
    /// dense basis, and the interleave recurrence unwinds bottom-up
    /// through the single scratch buffer.
    fn forward_unnorm_inplace(&mut self, buf: &mut [f64]) {
        let n = self.n;
        // Split passes (top-down).
        for (d, tw) in self.twiddles.iter().enumerate() {
            let seg_len = n >> d;
            let h = seg_len / 2;
            for seg in buf.chunks_exact_mut(seg_len) {
                for i in 0..h {
                    let a = seg[i];
                    let b = seg[seg_len - 1 - i];
                    seg[i] = a + b;
                    seg[seg_len - 1 - i] = (a - b) * tw[i];
                }
                // The in-place butterfly leaves the odd half reversed.
                seg[h..].reverse();
            }
        }
        // Base transforms.
        let m = self.base_len;
        if m > 1 {
            let basis = &self.base_basis;
            let tmp = &mut self.scratch[..m];
            for seg in buf.chunks_exact_mut(m) {
                for (k, t) in tmp.iter_mut().enumerate() {
                    *t = basis[k * m..(k + 1) * m].iter().zip(seg.iter()).map(|(b, v)| b * v).sum();
                }
                seg.copy_from_slice(tmp);
            }
        }
        // Interleave/recurrence passes (bottom-up).
        for d in (0..self.twiddles.len()).rev() {
            let seg_len = n >> d;
            let h = seg_len / 2;
            let tmp = &mut self.scratch[..seg_len];
            for seg in buf.chunks_exact_mut(seg_len) {
                for k in 0..h {
                    tmp[2 * k] = seg[k];
                }
                // y[1] = yo[0]/2;  y[2k+1] = yo[k] - y[2k-1].
                tmp[1] = seg[h] / 2.0;
                for k in 1..h {
                    tmp[2 * k + 1] = seg[h + k] - tmp[2 * k - 1];
                }
                seg.copy_from_slice(tmp);
            }
        }
    }

    /// Iterative unnormalized DCT-III (exact transpose of
    /// [`DctPlan::forward_unnorm_inplace`]): de-interleave passes
    /// top-down, transposed base transform, butterflies bottom-up.
    fn inverse_unnorm_inplace(&mut self, buf: &mut [f64]) {
        let n = self.n;
        // De-interleave passes (top-down): transpose of the recurrence.
        for d in 0..self.twiddles.len() {
            let seg_len = n >> d;
            let h = seg_len / 2;
            let tmp = &mut self.scratch[..seg_len];
            for seg in buf.chunks_exact_mut(seg_len) {
                for k in 0..h {
                    tmp[k] = seg[2 * k];
                }
                // Backward alternating suffix sum, halving the j=0 term.
                let mut suffix = 0.0;
                for j in (0..h).rev() {
                    suffix = seg[2 * j + 1] - suffix;
                    tmp[h + j] = suffix;
                }
                tmp[h] /= 2.0;
                seg.copy_from_slice(tmp);
            }
        }
        // Transposed base transforms.
        let m = self.base_len;
        if m > 1 {
            let basis = &self.base_basis;
            let tmp = &mut self.scratch[..m];
            for seg in buf.chunks_exact_mut(m) {
                for (i, t) in tmp.iter_mut().enumerate() {
                    *t = (0..m).map(|k| seg[k] * basis[k * m + i]).sum();
                }
                seg.copy_from_slice(tmp);
            }
        }
        // Butterfly passes (bottom-up): transpose of the input butterfly.
        for d in (0..self.twiddles.len()).rev() {
            let seg_len = n >> d;
            let h = seg_len / 2;
            let tw = &self.twiddles[d];
            let tmp = &mut self.scratch[..seg_len];
            for seg in buf.chunks_exact_mut(seg_len) {
                for i in 0..h {
                    let o = seg[h + i] * tw[i];
                    tmp[i] = seg[i] + o;
                    tmp[seg_len - 1 - i] = seg[i] - o;
                }
                seg.copy_from_slice(tmp);
            }
        }
    }
}

/// A small bounded cache of [`DctPlan`]s keyed by transform length.
///
/// A single cached plan thrashes as soon as a workload alternates between
/// two lengths — every `DCT-N` waveform of a mixed-duration pulse library
/// would rebuild its twiddle tables. The cache keeps the
/// most-recently-used plans (up to [`DctPlanCache::capacity`]); looking up
/// a cached length costs a linear scan over at most `capacity` entries
/// and no allocation, while a miss builds the plan once and evicts the
/// least-recently-used entry. Both the encode and decode scratches are
/// built on this type, so a host compiling and a model decoding the same
/// mixed-length library each pay each twiddle table once.
///
/// # Example
///
/// ```
/// use compaqt_dsp::plan::DctPlanCache;
///
/// let mut cache = DctPlanCache::new();
/// let mut a = vec![0.0; 136];
/// let mut b = vec![0.0; 1362];
/// for _ in 0..10 {
///     // Alternating lengths no longer rebuild plans: each length is
///     // planned exactly once and found in cache thereafter.
///     cache.plan(136).forward_into(&vec![0.5; 136], &mut a);
///     cache.plan(1362).forward_into(&vec![0.5; 1362], &mut b);
/// }
/// assert_eq!(cache.len(), 2);
/// assert!(cache.len() <= cache.capacity());
/// ```
#[derive(Debug, Clone)]
pub struct DctPlanCache {
    /// Cached plans, most recently used first.
    plans: Vec<DctPlan>,
    capacity: usize,
}

impl DctPlanCache {
    /// Default number of cached plans — covers the handful of distinct
    /// waveform durations a typical pulse library replays while keeping
    /// the linear lookup scan trivially cheap.
    pub const DEFAULT_CAPACITY: usize = 8;

    /// Creates an empty cache with [`DctPlanCache::DEFAULT_CAPACITY`].
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Creates an empty cache bounded to `capacity` plans.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` (a cache that can hold nothing would
    /// silently rebuild every plan).
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "plan cache capacity must be positive");
        DctPlanCache { plans: Vec::new(), capacity }
    }

    /// The maximum number of plans the cache retains.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of plans currently cached (at most [`DctPlanCache::capacity`]).
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Whether the cache holds no plans yet.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Whether a plan for length `n` is currently cached.
    pub fn contains(&self, n: usize) -> bool {
        self.plans.iter().any(|p| p.len() == n)
    }

    /// Returns the plan for transform length `n`, building (and caching)
    /// it on first use. The returned plan is moved to the front of the
    /// LRU order; on a full cache the least-recently-used plan is evicted.
    pub fn plan(&mut self, n: usize) -> &mut DctPlan {
        if let Some(idx) = self.plans.iter().position(|p| p.len() == n) {
            // Move-to-front keeps LRU order without touching the heap.
            self.plans[..=idx].rotate_right(1);
        } else {
            if self.plans.len() == self.capacity {
                self.plans.pop();
            }
            self.plans.insert(0, DctPlan::new(n));
        }
        &mut self.plans[0]
    }
}

impl Default for DctPlanCache {
    fn default() -> Self {
        Self::new()
    }
}

/// A reusable plan for the windowed HEVC integer transform.
///
/// [`IntDct`] already precomputes its basis matrix *and* its factorized
/// Loeffler-style butterfly kernel; this wrapper exposes the
/// buffer-reuse entry points under the plan naming scheme, including
/// the fused sparse inverse ([`IntDctPlan::inverse_f64_into`]) that the
/// decompression engine's zero-allocation path is built on. All methods
/// take `&self`: the integer kernels need no scratch (butterfly
/// intermediates live on the stack), so one plan can be shared across
/// threads.
///
/// # Kernel selection
///
/// [`IntDctPlan::forward_into`] runs the factorized butterfly whenever
/// the matrix supports it — every built-in window size does — and falls
/// back to the dense matrix multiply otherwise
/// ([`IntDctPlan::uses_factorized_forward`] reports which). Both kernels
/// are bit-identical, and [`IntDctPlan::forward_matrix_into`] keeps the
/// dense path callable as the oracle, so the selection is purely a
/// throughput decision: encode loops get ~3x fewer multiplies per
/// window with unchanged streams. The inverse default stays the sparse
/// column-skipping matrix kernel (thresholded decode windows carry only
/// a few nonzero coefficients); see
/// [`IntDct::inverse_butterfly_into`][crate::intdct::IntDct::inverse_butterfly_into]
/// for the factorized transpose.
///
/// # Example: one plan, caller-owned buffers
///
/// ```
/// use compaqt_dsp::fixed::Q15;
/// use compaqt_dsp::plan::IntDctPlan;
///
/// let plan = IntDctPlan::new(16)?;
/// let mut coeffs = vec![0i32; 16];
/// let mut back = vec![Q15::ZERO; 16];
/// for step in 0..50 {
///     let x: Vec<Q15> = (0..16)
///         .map(|i| Q15::from_f64(0.5 * ((i + step) as f64 * 0.2).sin()))
///         .collect();
///     // Transform round trip with zero allocations per iteration.
///     plan.forward_into(&x, &mut coeffs);
///     plan.inverse_into(&coeffs, &mut back);
/// }
/// # Ok::<(), compaqt_dsp::intdct::UnsupportedSizeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct IntDctPlan {
    transform: IntDct,
}

impl IntDctPlan {
    /// Plans an N-point integer transform (N in 4/8/16/32/64).
    ///
    /// # Errors
    ///
    /// Returns [`UnsupportedSizeError`] for other sizes.
    pub fn new(n: usize) -> Result<Self, UnsupportedSizeError> {
        Ok(IntDctPlan { transform: IntDct::new(n)? })
    }

    /// Wraps an existing transform.
    pub fn from_transform(transform: IntDct) -> Self {
        IntDctPlan { transform }
    }

    /// The underlying transform tables.
    pub fn transform(&self) -> &IntDct {
        &self.transform
    }

    /// The planned window size.
    pub fn len(&self) -> usize {
        self.transform.len()
    }

    /// Always `false`; the transform length is at least 4.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Forward transform into a caller buffer; see [`IntDct::forward_into`].
    /// Runs the factorized butterfly kernel (matrix fallback otherwise).
    pub fn forward_into(&self, x: &[Q15], out: &mut [i32]) {
        self.transform.forward_into(x, out);
    }

    /// The dense matrix-multiply forward oracle; see
    /// [`IntDct::forward_matrix_into`]. Bit-identical to
    /// [`IntDctPlan::forward_into`] — kept callable so equivalence
    /// suites (and any caller wanting the reference arithmetic) can
    /// cross-check the factorized kernel.
    pub fn forward_matrix_into(&self, x: &[Q15], out: &mut [i32]) {
        self.transform.forward_matrix_into(x, out);
    }

    /// Whether [`IntDctPlan::forward_into`] is running the factorized
    /// butterfly kernel (`true` for every built-in window size).
    pub fn uses_factorized_forward(&self) -> bool {
        self.transform.uses_factorized_forward()
    }

    /// Inverse transform into a caller buffer; see [`IntDct::inverse_into`].
    pub fn inverse_into(&self, y: &[i32], out: &mut [Q15]) {
        self.transform.inverse_into(y, out);
    }

    /// Dequantizing sparse inverse straight to `f64` DAC samples; see
    /// [`IntDct::inverse_f64_into`].
    pub fn inverse_f64_into(&self, y: &[i32], pre_shift: u32, out: &mut [f64]) {
        self.transform.inverse_f64_into(y, pre_shift, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dct::{dct2, dct3};

    #[test]
    fn plan_matches_direct_for_many_lengths() {
        for n in [1usize, 2, 4, 7, 8, 16, 17, 64, 136, 160, 454, 1362] {
            let x: Vec<f64> = (0..n).map(|i| ((i * i) as f64 * 0.013).sin() * 0.7).collect();
            let mut plan = DctPlan::new(n);
            let fast = plan.forward(&x);
            let direct = dct2(&x);
            for (k, (a, b)) in fast.iter().zip(&direct).enumerate() {
                assert!((a - b).abs() < 1e-9, "n={n} k={k}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn plan_inverse_matches_direct_inverse() {
        for n in [8usize, 32, 136, 1362] {
            let y: Vec<f64> = (0..n).map(|k| (k as f64 * 0.37).cos() / (1.0 + k as f64)).collect();
            let mut plan = DctPlan::new(n);
            let fast = plan.inverse(&y);
            let direct = dct3(&y);
            for (a, b) in fast.iter().zip(&direct) {
                assert!((a - b).abs() < 1e-9, "n={n}");
            }
        }
    }

    #[test]
    fn plan_is_reusable_without_drift() {
        let n = 320;
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.05).sin()).collect();
        let mut plan = DctPlan::new(n);
        let first = plan.forward(&x);
        let mut out = vec![0.0; n];
        for _ in 0..10 {
            plan.forward_into(&x, &mut out);
            assert_eq!(out, first, "repeated plan use must be bit-identical");
        }
    }

    #[test]
    fn degenerate_lengths_are_handled() {
        let mut p0 = DctPlan::new(0);
        p0.forward_into(&[], &mut []);
        assert!(p0.is_empty());
        let mut p1 = DctPlan::new(1);
        let y = p1.forward(&[0.5]);
        assert!((y[0] - 0.5).abs() < 1e-15);
        assert_eq!(p1.len(), 1);
    }

    #[test]
    fn int_plan_round_trips_like_transform() {
        for ws in crate::intdct::SUPPORTED_SIZES {
            let plan = IntDctPlan::new(ws).unwrap();
            let x: Vec<Q15> = (0..ws)
                .map(|i| Q15::from_f64(0.6 * (std::f64::consts::PI * i as f64 / ws as f64).sin()))
                .collect();
            let mut coeffs = vec![0i32; ws];
            plan.forward_into(&x, &mut coeffs);
            assert_eq!(coeffs, plan.transform().forward(&x));
            let mut back = vec![Q15::ZERO; ws];
            plan.inverse_into(&coeffs, &mut back);
            assert_eq!(back, plan.transform().inverse(&coeffs));
        }
    }

    #[test]
    fn int_plan_rejects_unsupported_sizes() {
        assert!(IntDctPlan::new(12).is_err());
        assert!(IntDctPlan::new(128).is_err());
    }

    #[test]
    fn int_plan_selects_factorized_forward_with_matrix_oracle_agreement() {
        for ws in crate::intdct::SUPPORTED_SIZES {
            let plan = IntDctPlan::new(ws).unwrap();
            assert!(plan.uses_factorized_forward(), "ws={ws}");
            let x: Vec<Q15> =
                (0..ws).map(|i| Q15::from_f64(((i * 7) as f64 * 0.13).sin() * 0.9)).collect();
            let mut fast = vec![0i32; ws];
            let mut oracle = vec![0i32; ws];
            plan.forward_into(&x, &mut fast);
            plan.forward_matrix_into(&x, &mut oracle);
            assert_eq!(fast, oracle, "ws={ws}: kernels must be bit-identical");
        }
    }

    #[test]
    fn cache_reuses_plans_across_mixed_lengths() {
        let mut cache = DctPlanCache::new();
        let lengths = [136usize, 1362, 454, 136, 1362, 454, 136];
        for &n in &lengths {
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).sin()).collect();
            let mut out = vec![0.0; n];
            cache.plan(n).forward_into(&x, &mut out);
            let direct = dct2(&x);
            for (a, b) in out.iter().zip(&direct) {
                assert!((a - b).abs() < 1e-9, "n={n}");
            }
        }
        assert_eq!(cache.len(), 3, "three distinct lengths -> three plans");
    }

    #[test]
    fn cache_results_are_bit_identical_to_fresh_plans() {
        let mut cache = DctPlanCache::with_capacity(2);
        // Adversarial: cycle more lengths than the capacity, forcing
        // evictions; rebuilt plans must still match fresh ones exactly.
        for &n in &[64usize, 136, 454, 64, 136, 454] {
            let x: Vec<f64> = (0..n).map(|i| ((i * 3) as f64 * 0.017).cos()).collect();
            let mut cached = vec![0.0; n];
            cache.plan(n).forward_into(&x, &mut cached);
            assert_eq!(cached, DctPlan::new(n).forward(&x), "n={n}");
            assert!(cache.len() <= cache.capacity());
        }
    }

    #[test]
    fn cache_stays_within_bound_under_adversarial_sequences() {
        let mut cache = DctPlanCache::with_capacity(4);
        // Monotone sweep (never repeats): worst case for any LRU.
        for n in 1..200 {
            let _ = cache.plan(n);
            assert!(cache.len() <= 4, "length {n} overflowed the bound");
        }
        // The most recent lengths survive; ancient ones were evicted.
        assert!(cache.contains(199) && cache.contains(196));
        assert!(!cache.contains(1));
    }

    #[test]
    fn cache_hit_moves_plan_to_front() {
        let mut cache = DctPlanCache::with_capacity(2);
        cache.plan(8);
        cache.plan(16);
        // Touch 8 so it becomes most-recent; inserting 32 must evict 16.
        cache.plan(8);
        cache.plan(32);
        assert!(cache.contains(8) && cache.contains(32));
        assert!(!cache.contains(16));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_cache_rejected() {
        DctPlanCache::with_capacity(0);
    }
}
