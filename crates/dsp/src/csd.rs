//! Canonical-signed-digit (CSD) lowering of constant multipliers.
//!
//! The integer IDCT engine replaces every constant multiplication with a
//! shift-and-add network (Section V-B: "the multiplications are converted to
//! shift-and-add operations"). CSD is the standard minimal-adder recoding: a
//! constant is expressed as a sum of signed powers of two with no two
//! adjacent non-zero digits, so multiplying by it costs
//! `(nonzero digits - 1)` adders/subtractors and up to `nonzero digits`
//! shifters.
//!
//! [`engine_resources`] aggregates these costs over a whole N-point
//! partial-butterfly IDCT, which is how the Table IV resource rows for
//! `int-DCT-W` are produced.

use serde::{Deserialize, Serialize};

/// A single signed-power-of-two term of a CSD decomposition:
/// `sign * 2^shift` with `sign` in `{-1, +1}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsdTerm {
    /// +1 or -1.
    pub sign: i8,
    /// Power of two.
    pub shift: u32,
}

/// The canonical-signed-digit decomposition of a non-negative constant.
///
/// # Example
///
/// ```
/// use compaqt_dsp::csd::Csd;
///
/// // 83 = 64 + 16 + 2 + 1 in binary, but CSD finds 83 = 64 + 16 + 4 - 1.
/// let csd = Csd::of(83);
/// assert_eq!(csd.reconstruct(), 83);
/// assert!(csd.adder_count() <= 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Csd {
    value: u32,
    terms: Vec<CsdTerm>,
}

impl Csd {
    /// Computes the CSD form of `value`.
    pub fn of(value: u32) -> Self {
        let mut terms = Vec::new();
        // Classic recoding: scan bits of 3v and v; digit = bit(3v) - bit(v).
        let v = u64::from(value);
        let v3 = 3 * v;
        let bits = 64 - v3.leading_zeros();
        for i in 1..bits {
            let b3 = (v3 >> i) & 1;
            let b1 = (v >> i) & 1;
            match b3 as i64 - b1 as i64 {
                1 => terms.push(CsdTerm { sign: 1, shift: i - 1 }),
                -1 => terms.push(CsdTerm { sign: -1, shift: i - 1 }),
                _ => {}
            }
        }
        Csd { value, terms }
    }

    /// The constant this decomposition represents.
    pub fn value(&self) -> u32 {
        self.value
    }

    /// The signed power-of-two terms.
    pub fn terms(&self) -> &[CsdTerm] {
        &self.terms
    }

    /// Re-evaluates the decomposition (used by tests and verification).
    pub fn reconstruct(&self) -> u32 {
        let sum: i64 = self.terms.iter().map(|t| i64::from(t.sign) * (1i64 << t.shift)).sum();
        sum as u32
    }

    /// Number of adders/subtractors needed to multiply by this constant:
    /// one fewer than the number of non-zero digits (zero for powers of two
    /// and for zero itself).
    pub fn adder_count(&self) -> usize {
        self.terms.len().saturating_sub(1)
    }

    /// Number of non-trivial shifters (terms with `shift > 0`).
    ///
    /// In silicon a fixed shift is just wiring, but following the paper we
    /// report shifter *instances* as Table IV does.
    pub fn shifter_count(&self) -> usize {
        self.terms.iter().filter(|t| t.shift > 0).count()
    }
}

/// Hardware resource totals for a transform engine (one Table IV row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct EngineResources {
    /// Hardware multiplier instances.
    pub multipliers: usize,
    /// Adder/subtractor instances.
    pub adders: usize,
    /// Shifter instances.
    pub shifters: usize,
}

impl EngineResources {
    /// Resources of the floating/fixed-point `DCT-W` IDCT engine for the
    /// given window size (Loeffler-style minimal-multiplier factorization;
    /// Table IV rows 1 and 3).
    ///
    /// # Panics
    ///
    /// Panics if `ws` is not 8 or 16 (the window sizes the paper evaluates
    /// for the multiplier-based engine).
    pub fn dct_w(ws: usize) -> Self {
        match ws {
            8 => EngineResources { multipliers: 11, adders: 29, shifters: 0 },
            16 => EngineResources { multipliers: 26, adders: 81, shifters: 0 },
            _ => panic!("DCT-W engine resources are defined for WS=8/16, got {ws}"),
        }
    }

    /// Resources reported by the paper for the multiplierless
    /// `int-DCT-W` IDCT engine (Table IV rows 2 and 4).
    ///
    /// # Panics
    ///
    /// Panics if `ws` is not 8 or 16.
    pub fn int_dct_w_paper(ws: usize) -> Self {
        match ws {
            8 => EngineResources { multipliers: 0, adders: 50, shifters: 26 },
            16 => EngineResources { multipliers: 0, adders: 186, shifters: 128 },
            _ => panic!("int-DCT-W paper resources are defined for WS=8/16, got {ws}"),
        }
    }

    /// Best available resource numbers for an `int-DCT-W` engine: the
    /// paper's synthesized counts for WS=8/16, our CSD derivation for the
    /// other supported sizes.
    ///
    /// # Panics
    ///
    /// Panics for window sizes outside 4/8/16/32/64.
    pub fn int_dct_w(ws: usize) -> Self {
        match ws {
            8 | 16 => EngineResources::int_dct_w_paper(ws),
            4 | 32 | 64 => engine_resources(ws, false),
            _ => panic!("int-DCT-W engines exist for WS in 4/8/16/32/64, got {ws}"),
        }
    }
}

/// Derives the shift-add resource totals of an N-point partial-butterfly
/// integer IDCT from first principles.
///
/// The engine follows the HEVC even/odd decomposition: the odd half is an
/// `N/2 x N/2` constant-matrix multiply whose constants are lowered through
/// CSD; the even half recurses down to the trivial 2-point butterfly; each
/// decomposition level adds `N` reconstruction adders. Constant multiplies
/// by identical constants within one output column share hardware only when
/// `share_constants` is set (a common optimization in published designs).
///
/// The result lands in the same regime as the paper's Table IV counts; the
/// exact numbers depend on subexpression-sharing choices, so
/// [`EngineResources::int_dct_w_paper`] is what the Table IV harness prints
/// alongside this derivation.
pub fn engine_resources(n: usize, share_constants: bool) -> EngineResources {
    assert!(
        crate::intdct::SUPPORTED_SIZES.contains(&n),
        "engine resources defined for N in {:?}",
        crate::intdct::SUPPORTED_SIZES
    );
    let t = crate::intdct::IntDct::new(n).expect("size validated above");
    let mut res = EngineResources::default();
    resources_rec(&t, n, share_constants, &mut res);
    res
}

fn resources_rec(t: &crate::intdct::IntDct, n: usize, share: bool, res: &mut EngineResources) {
    if n == 2 {
        // 2-point butterfly: two adders, no constants beyond +/-64 (wiring).
        res.adders += 2;
        return;
    }
    let full = t.len();
    let stride = full / n;
    // Odd half: rows 1,3,5,.. of the n-point matrix, columns 0..n/2.
    let half = n / 2;
    for j in 0..half {
        let k = (2 * j + 1) * stride;
        let mut seen: Vec<u32> = Vec::new();
        for i in 0..half {
            let c = t.coefficient(k, i).unsigned_abs();
            if c == 0 {
                continue;
            }
            let is_new = !seen.contains(&c);
            if is_new {
                seen.push(c);
            }
            if share && !is_new {
                // Shared network: reuse the product, no new resources.
                continue;
            }
            let csd = Csd::of(c);
            res.adders += csd.adder_count();
            res.shifters += csd.shifter_count();
        }
        // Accumulating half products into one output needs half-1 adders.
        res.adders += half - 1;
    }
    // Butterfly reconstruction stage: n adders (n/2 sums + n/2 differences).
    res.adders += n;
    resources_rec(t, half, share, res);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csd_reconstructs_all_hevc_constants() {
        // 64 covers the full constant family: its even rows are exactly
        // the 32-point (normative HEVC) matrix, its odd rows add the
        // VVC-style extension constants.
        for c in crate::intdct::IntDct::new(64).unwrap().distinct_constants() {
            let csd = Csd::of(c as u32);
            assert_eq!(csd.reconstruct(), c as u32, "constant {c}");
        }
    }

    #[test]
    fn csd_has_no_adjacent_nonzero_digits() {
        for v in 1u32..=1024 {
            let csd = Csd::of(v);
            let mut shifts: Vec<u32> = csd.terms().iter().map(|t| t.shift).collect();
            shifts.sort_unstable();
            for w in shifts.windows(2) {
                assert!(w[1] > w[0] + 1, "value {v}: adjacent digits {shifts:?}");
            }
        }
    }

    #[test]
    fn csd_of_power_of_two_needs_no_adders() {
        for p in 0..12 {
            let csd = Csd::of(1 << p);
            assert_eq!(csd.adder_count(), 0);
            assert_eq!(csd.reconstruct(), 1 << p);
        }
    }

    #[test]
    fn csd_is_minimal_for_known_cases() {
        // 83 = 64+16+4-1 -> 4 digits, 3 adders (binary would also need 3).
        assert_eq!(Csd::of(83).adder_count(), 3);
        // 90 = 64+32-8+2 -> 3 adders; binary 1011010 has 4 ones -> 3 adds too.
        assert_eq!(Csd::of(90).adder_count(), 3);
        // 64 is a pure shift.
        assert_eq!(Csd::of(64).adder_count(), 0);
    }

    #[test]
    fn derived_resources_are_multiplierless() {
        for n in [4, 8, 16, 32, 64] {
            let res = engine_resources(n, true);
            assert_eq!(res.multipliers, 0);
            assert!(res.adders > 0);
        }
    }

    #[test]
    fn derived_resources_scale_with_window() {
        let r8 = engine_resources(8, true);
        let r16 = engine_resources(16, true);
        let r32 = engine_resources(32, true);
        assert!(r16.adders > r8.adders);
        assert!(r32.adders > 2 * r16.adders);
    }

    #[test]
    fn derived_ws8_brackets_paper_count() {
        // Paper: 50 adders / 26 shifters for WS=8, from the hand-optimized
        // shift-add design of its reference [68] which shares common
        // subexpressions across outputs. Our naive per-product CSD lowering
        // is an upper bound; it must sit above the paper count but within
        // the same small-engine regime (< 2x).
        let r = engine_resources(8, false);
        let paper = EngineResources::int_dct_w_paper(8);
        assert!(r.adders >= paper.adders, "derived {} vs paper {}", r.adders, paper.adders);
        assert!(r.adders < 2 * paper.adders, "derived {} vs paper {}", r.adders, paper.adders);
    }

    #[test]
    fn paper_table_iv_constants() {
        let d8 = EngineResources::dct_w(8);
        assert_eq!((d8.multipliers, d8.adders, d8.shifters), (11, 29, 0));
        let i16 = EngineResources::int_dct_w_paper(16);
        assert_eq!((i16.multipliers, i16.adders, i16.shifters), (0, 186, 128));
    }
}
