//! Distortion and size metrics: MSE, PSNR, compression ratio.
//!
//! The paper uses mean-squared error between the original and decompressed
//! waveform as the compile-time proxy for gate fidelity (Section IV-C:
//! "MSE between decompressed and uncompressed pulses are highly correlated
//! to the gate fidelity"), and compression ratio `R = old size / new size`
//! as the capacity/bandwidth gain.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Mean squared error between two equal-length signals.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
///
/// # Example
///
/// ```
/// let mse = compaqt_dsp::metrics::mse(&[1.0, 0.0], &[1.0, 0.2]);
/// assert!((mse - 0.02).abs() < 1e-12);
/// ```
pub fn mse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "signals must have equal length");
    assert!(!a.is_empty(), "signals must be non-empty");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>() / a.len() as f64
}

/// Root-mean-squared error.
pub fn rmse(a: &[f64], b: &[f64]) -> f64 {
    mse(a, b).sqrt()
}

/// Largest absolute sample error.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn max_abs_error(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "signals must have equal length");
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
}

/// Peak signal-to-noise ratio in dB against a unit full scale.
///
/// Returns `f64::INFINITY` for identical signals.
pub fn psnr(a: &[f64], b: &[f64]) -> f64 {
    let e = mse(a, b);
    if e == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (1.0 / e).log10()
    }
}

/// A compression ratio `R = old size / new size` (paper convention:
/// `R > 1` means the data shrank).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompressionRatio {
    old_size: usize,
    new_size: usize,
}

impl CompressionRatio {
    /// Builds a ratio from byte (or word) counts.
    ///
    /// # Panics
    ///
    /// Panics if `new_size` is zero.
    pub fn new(old_size: usize, new_size: usize) -> Self {
        assert!(new_size > 0, "compressed size must be positive");
        CompressionRatio { old_size, new_size }
    }

    /// Original size.
    pub fn old_size(&self) -> usize {
        self.old_size
    }

    /// Compressed size.
    pub fn new_size(&self) -> usize {
        self.new_size
    }

    /// The ratio as a float.
    pub fn ratio(&self) -> f64 {
        self.old_size as f64 / self.new_size as f64
    }

    /// Combines two ratios by summing sizes (e.g. I and Q channels, or all
    /// waveforms of a benchmark).
    pub fn combine(&self, other: &CompressionRatio) -> CompressionRatio {
        CompressionRatio {
            old_size: self.old_size + other.old_size,
            new_size: self.new_size + other.new_size,
        }
    }
}

impl fmt::Display for CompressionRatio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}x ({} -> {})", self.ratio(), self.old_size, self.new_size)
    }
}

/// Aggregates min/avg/max statistics over a set of per-waveform values
/// (used for Table VII's min/max/average compression-ratio rows).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Smallest observed value.
    pub min: f64,
    /// Mean value.
    pub avg: f64,
    /// Largest observed value.
    pub max: f64,
    /// Number of samples aggregated.
    pub count: usize,
}

impl Summary {
    /// Summarizes a non-empty iterator of values.
    ///
    /// Returns `None` for an empty iterator.
    pub fn of(values: impl IntoIterator<Item = f64>) -> Option<Summary> {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        let mut count = 0usize;
        for v in values {
            min = min.min(v);
            max = max.max(v);
            sum += v;
            count += 1;
        }
        if count == 0 {
            None
        } else {
            Some(Summary { min, avg: sum / count as f64, max, count })
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "min {:.2} / avg {:.2} / max {:.2} (n={})",
            self.min, self.avg, self.max, self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_of_identical_signals_is_zero() {
        let x = [0.5, -0.25, 0.1];
        assert_eq!(mse(&x, &x), 0.0);
        assert_eq!(psnr(&x, &x), f64::INFINITY);
    }

    #[test]
    fn mse_matches_hand_computation() {
        let e = mse(&[0.0, 0.0, 0.0, 0.0], &[0.1, -0.1, 0.1, -0.1]);
        assert!((e - 0.01).abs() < 1e-14);
        assert!((rmse(&[0.0; 4], &[0.1, -0.1, 0.1, -0.1]) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn psnr_decreases_with_noise() {
        let clean = [0.3; 64];
        let light: Vec<f64> = clean.iter().map(|v| v + 1e-4).collect();
        let heavy: Vec<f64> = clean.iter().map(|v| v + 1e-2).collect();
        assert!(psnr(&clean, &light) > psnr(&clean, &heavy));
    }

    #[test]
    fn max_error_finds_peak() {
        assert_eq!(max_abs_error(&[0.0, 0.0], &[0.5, -0.9]), 0.9);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mse_rejects_mismatched_lengths() {
        mse(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn ratio_behaviour() {
        let r = CompressionRatio::new(1600, 200);
        assert_eq!(r.ratio(), 8.0);
        let c = r.combine(&CompressionRatio::new(400, 400));
        assert_eq!(c.ratio(), 2000.0 / 600.0);
        assert!(format!("{r}").contains("8.00x"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn ratio_rejects_zero_compressed_size() {
        CompressionRatio::new(10, 0);
    }

    #[test]
    fn summary_aggregates() {
        let s = Summary::of([2.0, 4.0, 6.0]).unwrap();
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 6.0);
        assert!((s.avg - 4.0).abs() < 1e-12);
        assert_eq!(s.count, 3);
        assert!(Summary::of(std::iter::empty()).is_none());
    }
}
