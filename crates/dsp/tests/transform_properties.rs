//! Property-based tests of the transform kernels.

use compaqt_dsp::csd::Csd;
use compaqt_dsp::dct::{dct2, energy_compaction, Dct};
use compaqt_dsp::fixed::Q15;
use compaqt_dsp::intdct::{IntDct, SUPPORTED_SIZES};
use compaqt_dsp::loeffler::{loeffler_dct8, loeffler_idct8, LOEFFLER_8_SCALE};
use compaqt_dsp::window::{join, split, PadMode};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn dct_is_linear(
        a in proptest::collection::vec(-1.0f64..1.0, 16),
        b in proptest::collection::vec(-1.0f64..1.0, 16),
        s in -2.0f64..2.0,
    ) {
        let dct = Dct::new(16);
        let lhs: Vec<f64> = a.iter().zip(&b).map(|(x, y)| s * x + y).collect();
        let fa = dct.forward(&a);
        let fb = dct.forward(&b);
        let f_lhs = dct.forward(&lhs);
        for k in 0..16 {
            prop_assert!((f_lhs[k] - (s * fa[k] + fb[k])).abs() < 1e-10);
        }
    }

    #[test]
    fn dct_preserves_energy(xs in proptest::collection::vec(-1.0f64..1.0, 1..64)) {
        let y = dct2(&xs);
        let ex: f64 = xs.iter().map(|v| v * v).sum();
        let ey: f64 = y.iter().map(|v| v * v).sum();
        prop_assert!((ex - ey).abs() < 1e-9 * ex.max(1.0));
    }

    #[test]
    fn energy_compaction_is_monotone(xs in proptest::collection::vec(-1.0f64..1.0, 32)) {
        let y = dct2(&xs);
        let mut prev = 0.0;
        for k in 0..=32 {
            let e = energy_compaction(&y, k);
            prop_assert!(e + 1e-12 >= prev, "k={k}");
            prev = e;
        }
        prop_assert!((energy_compaction(&y, 32) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn loeffler_agrees_with_exact_dct(xs in proptest::collection::vec(-1.0f64..1.0, 8)) {
        let arr: [f64; 8] = xs.clone().try_into().unwrap();
        let fast = loeffler_dct8(&arr);
        let exact = dct2(&xs);
        for k in 0..8 {
            prop_assert!((fast[k] / LOEFFLER_8_SCALE - exact[k]).abs() < 1e-10);
        }
        let back = loeffler_idct8(&fast);
        for k in 0..8 {
            prop_assert!((back[k] - arr[k]).abs() < 1e-10);
        }
    }

    #[test]
    fn int_dct_is_shift_invariant_in_dc(level in -0.9f64..0.9) {
        // A constant input must produce exactly one nonzero coefficient.
        for &ws in &SUPPORTED_SIZES {
            let t = IntDct::new(ws).unwrap();
            let x = vec![Q15::from_f64(level); ws];
            let y = t.forward(&x);
            for (k, &c) in y.iter().enumerate().skip(1) {
                prop_assert!(c.abs() <= 1, "ws={ws} k={k} leak {c}");
            }
        }
    }

    #[test]
    fn int_dct_round_trip_is_bounded_even_for_noise(
        xs in proptest::collection::vec(-0.95f64..0.95, 32),
    ) {
        // Full-spectrum random inputs are outside the codec's smooth
        // domain; the HEVC matrix's ~1% row non-orthogonality then
        // accumulates, so the guarantee is a 3% absolute bound (smooth
        // signals round-trip ~10x tighter, see the core crate's tests).
        let t = IntDct::new(32).unwrap();
        let q: Vec<Q15> = xs.iter().map(|&v| Q15::from_f64(v)).collect();
        let back = t.inverse(&t.forward(&q));
        for (a, b) in q.iter().zip(&back) {
            prop_assert!((a.to_f64() - b.to_f64()).abs() < 0.03);
        }
    }

    #[test]
    fn csd_reconstructs_any_constant(v in 0u32..100_000) {
        prop_assert_eq!(Csd::of(v).reconstruct(), v);
    }

    #[test]
    fn csd_digit_count_at_most_binary(v in 1u32..100_000) {
        let csd_digits = Csd::of(v).terms().len();
        let binary_digits = v.count_ones() as usize;
        prop_assert!(csd_digits <= binary_digits.max(1) + 1);
    }

    #[test]
    fn split_join_round_trips(
        xs in proptest::collection::vec(-1.0f64..1.0, 1..200),
        ws in 1usize..32,
    ) {
        for pad in [PadMode::Zero, PadMode::Edge] {
            let (wins, _) = split(&xs, ws, pad);
            prop_assert_eq!(join(&wins, xs.len()), xs.clone());
        }
    }

    #[test]
    fn q15_conversion_is_monotone(a in -1.0f64..0.999, b in -1.0f64..0.999) {
        let (qa, qb) = (Q15::from_f64(a), Q15::from_f64(b));
        if a < b {
            prop_assert!(qa <= qb);
        }
    }
}
