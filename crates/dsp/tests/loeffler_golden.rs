//! Committed golden vectors for the Loeffler flowgraphs.
//!
//! Proptest equivalence suites catch *relative* regressions (factorized
//! vs matrix), but if both kernels drifted together — a twiddle edit, a
//! rounding change, a shift off by one — they would still agree with
//! each other. These tests pin the *absolute* outputs: committed input
//! vectors with committed expected outputs for the 8-point f64 Loeffler
//! flowgraph and the 8/16-point factorized integer forward, each also
//! cross-checked against the exact f64 DCT reference so the constants
//! can be re-derived if they ever need to move. Failures here point at a
//! kernel regression directly, with no proptest shrink noise in the way.

use compaqt_dsp::dct::dct2;
use compaqt_dsp::fixed::Q15;
use compaqt_dsp::intdct::IntDct;
use compaqt_dsp::loeffler::{
    loeffler_dct8, loeffler_idct8, IntButterflyPlan, LOEFFLER_16_ADDERS, LOEFFLER_16_MULTIPLIERS,
    LOEFFLER_8_ADDERS, LOEFFLER_8_MULTIPLIERS, LOEFFLER_8_SCALE,
};

/// Committed input for the f64 flowgraph: exactly representable
/// multiples of 2^-5, so the input itself carries no rounding.
const F64_INPUT: [f64; 8] =
    [0.21875, -0.40625, 0.59375, 0.09375, -0.71875, 0.46875, -0.15625, 0.84375];

/// Committed `loeffler_dct8(F64_INPUT)` outputs.
const F64_GOLDEN: [f64; 8] = [
    9.375e-1,
    -8.384886884654028e-1,
    1.325381340491315e0,
    -1.477704541046152e0,
    -6.25e-2,
    8.455869617146949e-1,
    3.03643323692082e0,
    -9.559987964768888e-1,
];

/// Committed Q1.15 raw inputs for the 8-point integer flowgraph.
const WS8_INPUT: [i16; 8] = [-9189, 25840, 31495, 12383, 11499, -26864, -25902, -9814];

/// Committed 8-point factorized forward outputs (after the
/// `forward_shift` rounding, before RLE storage quantization).
const WS8_GOLDEN: [i32; 8] = [1181, 13418, -7282, -11958, 39, -6752, -2255, 3364];

/// Committed Q1.15 raw inputs for the 16-point integer flowgraph.
const WS16_INPUT: [i16; 16] = [
    -8790, -28786, 2292, 11949, 21948, 3615, -18143, -14986, 13628, -23762, -938, -27909, 21579,
    -17221, 3866, -32594,
];

/// Committed 16-point factorized forward outputs.
const WS16_GOLDEN: [i32; 16] = [
    -5891, 3036, -2400, -3200, -7617, -614, -3628, 6903, 3994, 8, -848, 3081, 1952, 4670, -6255,
    8407,
];

#[test]
fn f64_flowgraph_matches_committed_vectors() {
    let y = loeffler_dct8(&F64_INPUT);
    for (k, (got, want)) in y.iter().zip(&F64_GOLDEN).enumerate() {
        assert!((got - want).abs() < 1e-14, "k={k}: {got:e} vs committed {want:e}");
    }
    // The committed vector itself must satisfy the scale contract
    // against the exact orthonormal DCT, and invert back to the input.
    let exact = dct2(&F64_INPUT);
    for k in 0..8 {
        assert!((F64_GOLDEN[k] / LOEFFLER_8_SCALE - exact[k]).abs() < 1e-12, "k={k}");
    }
    let back = loeffler_idct8(&F64_GOLDEN);
    for k in 0..8 {
        assert!((back[k] - F64_INPUT[k]).abs() < 1e-12, "k={k}");
    }
}

#[test]
fn int8_flowgraph_matches_committed_vectors() {
    let t = IntDct::new(8).unwrap();
    let x: Vec<Q15> = WS8_INPUT.iter().map(|&r| Q15::from_raw(r)).collect();
    assert_eq!(t.forward(&x), WS8_GOLDEN, "factorized default");
    let mut oracle = vec![0i32; 8];
    t.forward_matrix_into(&x, &mut oracle);
    assert_eq!(oracle, WS8_GOLDEN, "matrix oracle");
}

#[test]
fn int16_flowgraph_matches_committed_vectors() {
    let t = IntDct::new(16).unwrap();
    let x: Vec<Q15> = WS16_INPUT.iter().map(|&r| Q15::from_raw(r)).collect();
    assert_eq!(t.forward(&x), WS16_GOLDEN, "factorized default");
    let mut oracle = vec![0i32; 16];
    t.forward_matrix_into(&x, &mut oracle);
    assert_eq!(oracle, WS16_GOLDEN, "matrix oracle");
}

#[test]
fn committed_int_vectors_track_the_f64_reference() {
    // The integer goldens must stay explainable from first principles:
    // T ~ S*D with S = 2^(6 + log2(N)/2) folded into forward_shift, so
    // forward(x) ~ sqrt(N) * DCT(x) / 2 in Q1.15 raw units (one factor
    // of S cancels against the shift, the /2 is the 16->15-bit headroom
    // convention of the stored format: out = S*D*x / 2^(6+log2 N)).
    for (input, golden) in [(&WS8_INPUT[..], &WS8_GOLDEN[..]), (&WS16_INPUT[..], &WS16_GOLDEN[..])]
    {
        let n = input.len();
        let real: Vec<f64> = input.iter().map(|&r| f64::from(r) / 32768.0).collect();
        let exact = dct2(&real);
        let t = IntDct::new(n).unwrap();
        let expected_scale = t.scale() / f64::from(1u32 << t.forward_shift());
        for (k, (&g, &e)) in golden.iter().zip(&exact).enumerate() {
            let predicted = e * expected_scale * 32768.0;
            assert!(
                (f64::from(g) - predicted).abs() < 0.01 * 32768.0,
                "n={n} k={k}: committed {g} vs reference {predicted:.1}"
            );
        }
    }
}

#[test]
fn table_iv_counts_and_butterfly_cost_model() {
    // Table IV, DCT-W rows: the minimal-multiplier flowgraph the f64
    // reference implements.
    assert_eq!((LOEFFLER_8_MULTIPLIERS, LOEFFLER_8_ADDERS), (11, 29));
    assert_eq!((LOEFFLER_16_MULTIPLIERS, LOEFFLER_16_ADDERS), (26, 81));
    // The exact-integer butterfly trades some of that reduction for
    // bit-exactness with the HEVC matrix: 22 multiplies at N=8 (vs 64
    // dense, vs Loeffler's 11), 86 at N=16 (vs 256 dense, vs 26).
    let counts: Vec<(usize, usize)> = [8usize, 16]
        .iter()
        .map(|&n| {
            let t = IntDct::new(n).unwrap();
            let m: Vec<i32> = (0..n * n).map(|j| t.coefficient(j / n, j % n)).collect();
            let p = IntButterflyPlan::from_matrix(n, &m).unwrap();
            (p.multiplies(), p.adds())
        })
        .collect();
    assert_eq!(counts[0], (22, 28), "8-point butterfly cost");
    assert_eq!(counts[1], (86, 100), "16-point butterfly cost");
    assert!(counts[0].0 > LOEFFLER_8_MULTIPLIERS && counts[0].0 < 64);
    assert!(counts[1].0 > LOEFFLER_16_MULTIPLIERS && counts[1].0 < 256);
}
