//! Discussion (Section IX): compressed waveform tables for SFQ control.
//!
//! SFQ control chips have tens of kilobytes of on-chip memory — less than
//! two qubits' worth of uncompressed waveform library. The paper's closing
//! insight: the same compression makes waveform-table control plausible
//! there too.

use compaqt_bench::experiments::machine_report;
use compaqt_bench::print;
use compaqt_core::compress::Variant;
use compaqt_hw::sfq::SfqController;

fn main() {
    // Real compression ratio from a machine library.
    let report = machine_report("lima", Variant::IntDctW { ws: 16 });
    let ratio = report.overall.ratio();
    let library_bytes = 18.0 * 1024.0;

    let mut rows = Vec::new();
    for memory_kb in [16.0f64, 32.0, 64.0, 128.0] {
        let chip = SfqController { memory_kb, waveform_fraction: 0.5 };
        rows.push(vec![
            format!("{memory_kb:.0} KB"),
            chip.qubits_supported(library_bytes, 1.0).to_string(),
            chip.qubits_supported(library_bytes, ratio).to_string(),
        ]);
    }
    print::table(
        &format!("SFQ waveform tables: qubits per chip (measured R = {ratio:.2})"),
        &["on-chip memory", "uncompressed", "COMPAQT"],
        &rows,
    );
    println!("  paper: \"these insights can be used for designing SFQ based qubit control,");
    println!("  in which on-chip memory is limited to tens of kilobytes\" (Section IX).");
}
