//! Figure 16: clock-frequency degradation of the decompression engines.

use compaqt_bench::print;
use compaqt_core::compress::Variant;
use compaqt_hw::timing::{figure_16_paper, EngineDesign, TimingModel};

fn main() {
    let model = TimingModel::default();
    let designs = [
        ("Baseline", None),
        (
            "DCT-W WS=8 (pipelined)",
            Some(EngineDesign { variant: Variant::DctW { ws: 8 }, pipelined: true }),
        ),
        (
            "int-DCT-W WS=8",
            Some(EngineDesign { variant: Variant::IntDctW { ws: 8 }, pipelined: false }),
        ),
        (
            "int-DCT-W WS=16",
            Some(EngineDesign { variant: Variant::IntDctW { ws: 16 }, pipelined: false }),
        ),
        (
            "int-DCT-W WS=32",
            Some(EngineDesign { variant: Variant::IntDctW { ws: 32 }, pipelined: false }),
        ),
    ];
    let mut rows = Vec::new();
    for (name, design) in designs {
        let (mhz, norm, paper) = match design {
            None => (model.baseline_mhz(), 1.0, 1.0),
            Some(d) => (
                model.max_frequency_mhz(&d),
                model.normalized_frequency(&d),
                figure_16_paper(d.variant, d.pipelined),
            ),
        };
        rows.push(vec![
            name.to_string(),
            format!("{mhz:.0}"),
            print::f(norm),
            print::f(paper),
            print::bar(norm, 30),
        ]);
    }
    print::table(
        "Figure 16: normalized maximum clock frequency",
        &["design", "fmax (MHz)", "ours", "paper", ""],
        &rows,
    );
    println!("  paper: DCT-W drops >33% (multipliers); unpipelined int-DCT-W <=10-17%;");
    println!("  pipelining the int engine removes the degradation entirely.");
}
