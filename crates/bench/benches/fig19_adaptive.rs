//! Figure 19: adaptive (IDCT-bypass) decompression power on a 100 ns
//! flat-top waveform.

use compaqt_bench::experiments::fig19;
use compaqt_bench::print;

fn main() {
    let rows_data = fig19();
    let base_total = rows_data[0].1.total_mw();
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|(name, b)| {
            vec![
                name.clone(),
                print::f(b.dac_mw),
                print::f(b.memory_mw),
                print::f(b.idct_mw),
                print::f(b.total_mw()),
                print::f(base_total / b.total_mw()),
            ]
        })
        .collect();
    print::table(
        "Figure 19: adaptive decompression power, 100 ns flat-top (mW)",
        &["design", "DAC", "memory", "IDCT", "total", "reduction"],
        &rows,
    );
    println!("  paper: up to 4x total reduction — memory and IDCT idle through the plateau.");
}
