//! Table IV: hardware resources of the IDCT engines.

use compaqt_bench::print;
use compaqt_dsp::csd::{engine_resources, EngineResources};

fn main() {
    let mut rows = Vec::new();
    for ws in [8usize, 16] {
        let dct_w = EngineResources::dct_w(ws);
        rows.push(vec![
            format!("DCT-W WS={ws}"),
            dct_w.multipliers.to_string(),
            dct_w.adders.to_string(),
            dct_w.shifters.to_string(),
            "paper (Loeffler-minimal)".to_string(),
        ]);
        let paper = EngineResources::int_dct_w_paper(ws);
        rows.push(vec![
            format!("int-DCT-W WS={ws}"),
            paper.multipliers.to_string(),
            paper.adders.to_string(),
            paper.shifters.to_string(),
            "paper (ref [68] design)".to_string(),
        ]);
        let derived = engine_resources(ws, false);
        rows.push(vec![
            format!("int-DCT-W WS={ws}"),
            derived.multipliers.to_string(),
            derived.adders.to_string(),
            derived.shifters.to_string(),
            "derived (naive CSD, upper bound)".to_string(),
        ]);
    }
    print::table(
        "Table IV: IDCT engine resources",
        &["engine", "multipliers", "adders", "shifters", "source"],
        &rows,
    );
    println!("  int-DCT-W eliminates every multiplier; the CSD derivation upper-bounds the");
    println!("  hand-optimized design the paper cites (sharing closes the gap).");
}
