//! Figure 7: compressibility and distortion of the DCT variants.

use compaqt_bench::experiments::{fig07a, fig07bc};
use compaqt_bench::print;

fn main() {
    // (a) per-waveform ratios.
    let data = fig07a();
    let headers: Vec<&str> = vec!["variant", "SX(q2)", "SX(q3)", "SX(q5)", "SX(q8)", "Meas(q0)"];
    let variants: Vec<String> = data[0].1.iter().map(|(v, _)| v.clone()).collect();
    let mut rows = Vec::new();
    for (k, v) in variants.iter().enumerate() {
        let mut row = vec![v.clone()];
        for (_, per) in &data {
            row.push(print::f(per[k].1));
        }
        rows.push(row);
    }
    print::table("Figure 7a: compression ratio per waveform (WS=16)", &headers, &rows);
    println!("  paper: Delta ~1-2x, DCT variants 4-8x per waveform; Meas compresses most.");

    // (b)+(c) overall ratio and MSE.
    let rows: Vec<Vec<String>> = fig07bc("guadalupe")
        .into_iter()
        .map(|(label, ratio, mse)| vec![label, print::f(ratio), format!("{mse:.2e}")])
        .collect();
    print::table(
        "Figure 7b/7c: overall compression and mean MSE (guadalupe library)",
        &["variant", "overall R", "mean MSE"],
        &rows,
    );
    println!("  paper (qft-4 library): Delta 1.9, DCT-N 126.2, DCT-W 4.0, int-DCT-W 7.8/8.0;");
    println!("  MSE within 1e-7..5e-6. Our libraries store tight envelopes (no schedule");
    println!("  padding), so DCT-N lands lower and WS=8 saturates near its 2.7-4x bound;");
    println!("  orderings (WS16 > WS8, int-DCT MSE highest) match.");
}
