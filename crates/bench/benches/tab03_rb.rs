//! Table III: 2Q RB fidelity on three machines, four designs.

use compaqt_bench::experiments::rb_experiment;
use compaqt_bench::print;
use compaqt_core::compress::Variant;
use compaqt_quantum::rb::RbConfig;

fn main() {
    let config = RbConfig {
        lengths: vec![1, 5, 10, 20, 40, 70, 100],
        sequences_per_length: 16,
        seed: 0x7AB3,
    };
    let machines = ["bogota", "guadalupe", "hanoi"];
    let variants = [
        ("DCT-N", Variant::DctN),
        ("DCT-W", Variant::DctW { ws: 16 }),
        ("int-DCT-W", Variant::IntDctW { ws: 16 }),
    ];
    let mut rows = Vec::new();
    // Baseline row (identical across variants; compute once per machine).
    let mut base_cells = vec!["Baseline".to_string()];
    let mut base_ps = Vec::new();
    for machine in machines {
        let (base, _) = rb_experiment(machine, Variant::IntDctW { ws: 16 }, &config);
        base_cells.push(print::f(base.p));
        base_ps.push(base.p);
    }
    rows.push(base_cells);
    for (name, variant) in variants {
        let mut cells = vec![name.to_string()];
        for machine in machines {
            let (_, comp) = rb_experiment(machine, variant, &config);
            cells.push(print::f(comp.p));
        }
        rows.push(cells);
    }
    print::table(
        "Table III: 2Q RB fidelity (decay parameter p), WS=16",
        &["design", "IBM bogota", "IBM guadalupe", "IBM hanoi"],
        &rows,
    );
    println!("  paper: baseline 0.980/0.978/0.987; all compressed designs within ~0.003.");
}
