//! Ablation: the window-size design space (the trade DESIGN.md calls
//! out and the paper navigates to pick WS=16).
//!
//! Sweeps WS in {4, 8, 16, 32} and the coefficient threshold, reporting
//! compression ratio, distortion, engine resources, clock cost and cryo
//! power — the full multi-objective picture behind "WS=32 is a
//! sub-optimal design".

use compaqt_bench::print;
use compaqt_core::compress::{Compressor, Variant};
use compaqt_core::stats::compress_library;
use compaqt_dsp::csd::engine_resources;
use compaqt_hw::power::{CryoDesign, CryoPowerModel};
use compaqt_hw::resources::estimate;
use compaqt_hw::rfsoc::RfsocModel;
use compaqt_hw::timing::{EngineDesign, TimingModel};
use compaqt_pulse::device::Device;

fn main() {
    let device = Device::named_machine("guadalupe");
    let lib = device.pulse_library();
    let timing = TimingModel::default();
    let power = CryoPowerModel::default();
    let rfsoc = RfsocModel::default();

    // Window-size sweep at the default threshold.
    let mut rows = Vec::new();
    for ws in [4usize, 8, 16, 32] {
        let compressor = Compressor::new(Variant::IntDctW { ws }).with_max_window_words(3.min(ws));
        let report = compress_library(&lib, &compressor).expect("supported sizes");
        let res = engine_resources(ws, false);
        let fpga = estimate(&res, ws);
        let nf = timing.normalized_frequency(&EngineDesign {
            variant: Variant::IntDctW { ws },
            pipelined: false,
        });
        let hist = report.samples_per_window_histogram();
        let total: usize = hist.values().sum();
        let avg_words = hist.iter().map(|(&w, &n)| w * n).sum::<usize>() as f64 / total as f64;
        let p = power.breakdown(&CryoDesign::Compressed {
            ws,
            avg_words_per_window: avg_words,
            capacity_ratio: report.overall.ratio(),
        });
        rows.push(vec![
            format!("WS={ws}"),
            print::f(report.overall.ratio()),
            format!("{:.1e}", report.mean_mse()),
            rfsoc.qubits_supported(3.min(ws), ws).to_string(),
            fpga.luts.to_string(),
            print::f(nf),
            print::f(p.total_mw()),
        ]);
    }
    print::table(
        "Ablation A: window size (int-DCT-W, cap 3 words, default threshold)",
        &["design", "overall R", "MSE", "RFSoC qubits", "LUT est.", "norm. fmax", "cryo mW"],
        &rows,
    );
    println!("  WS=16 maximizes qubits before the LUT/clock costs of WS=32 bite (paper VII-C).");

    // Threshold sweep at WS=16.
    let mut rows = Vec::new();
    for thr in [0.002, 0.006, 0.012, 0.025, 0.05, 0.1] {
        let compressor = Compressor::new(Variant::IntDctW { ws: 16 }).with_threshold(thr);
        let report = compress_library(&lib, &compressor).expect("supported");
        rows.push(vec![
            format!("{thr}"),
            print::f(report.overall.ratio()),
            format!("{:.1e}", report.mean_mse()),
            report.waveforms.iter().map(|w| w.worst_case_window_words).max().unwrap().to_string(),
        ]);
    }
    print::table(
        "Ablation B: threshold sweep (WS=16)",
        &["threshold", "overall R", "MSE", "worst window"],
        &rows,
    );
    println!("  the fidelity-aware compiler (Algorithm 1) walks this frontier per pulse.");

    // Uniform-width cap sweep.
    let mut rows = Vec::new();
    for cap in [2usize, 3, 4, 6, 16] {
        let compressor = Compressor::new(Variant::IntDctW { ws: 16 }).with_max_window_words(cap);
        let report = compress_library(&lib, &compressor).expect("supported");
        rows.push(vec![
            cap.to_string(),
            print::f(report.overall.ratio()),
            format!("{:.1e}", report.mean_mse()),
            rfsoc.qubits_supported(cap, 16).to_string(),
        ]);
    }
    print::table(
        "Ablation C: uniform window-width cap (WS=16)",
        &["cap (words)", "overall R", "MSE", "RFSoC qubits"],
        &rows,
    );
    println!("  cap=3 keeps MSE intact while maximizing the bank-level qubit count (Fig. 11).");
}
