//! Ablation: overlapped windows against WS=8 boundary distortion.
//!
//! Section VII-B: WS=8's fidelity losses come from window-boundary
//! distortion and "can be reduced by using overlapping windows". This
//! harness quantifies the extension implemented in
//! `compaqt_core::overlap`: boundary-localized MSE drops, at a
//! compression-ratio cost.

use compaqt_bench::print;
use compaqt_core::compress::{Compressor, Variant};
use compaqt_core::overlap::{boundary_mse, OverlapCompressor};
use compaqt_pulse::device::Device;

fn main() {
    let device = Device::named_machine("guadalupe");
    let lib = device.pulse_library();
    for ws in [8usize, 16] {
        let mut rows = Vec::new();
        let mut totals = (0.0f64, 0.0f64, 0.0f64, 0.0f64, 0usize);
        for (gate, wf) in lib.iter().take(24) {
            let plain = Compressor::new(Variant::DctW { ws }).with_threshold(0.04);
            let lapped = OverlapCompressor::new(ws).unwrap().with_threshold(0.04);
            let zp = plain.compress(wf).expect("supported");
            let zl = lapped.compress(wf).expect("supported");
            let bp = zp.decompress().expect("valid");
            let bl = zl.decompress().expect("valid");
            let plain_boundary = boundary_mse(wf, &bp, ws, 1);
            let lapped_boundary = boundary_mse(wf, &bl, ws, 1);
            totals.0 += zp.ratio().ratio();
            totals.1 += zl.ratio().ratio();
            totals.2 += plain_boundary;
            totals.3 += lapped_boundary;
            totals.4 += 1;
            if rows.len() < 6 {
                rows.push(vec![
                    format!("{gate}"),
                    print::f(zp.ratio().ratio()),
                    print::f(zl.ratio().ratio()),
                    format!("{plain_boundary:.1e}"),
                    format!("{lapped_boundary:.1e}"),
                ]);
            }
        }
        print::table(
            &format!("Overlap ablation (WS={ws}, threshold 0.04; first 6 of {} pulses)", totals.4),
            &["waveform", "R plain", "R lapped", "boundary MSE plain", "boundary MSE lapped"],
            &rows,
        );
        let n = totals.4 as f64;
        println!(
            "  averages over {} pulses: R {:.2} -> {:.2}; boundary MSE {:.2e} -> {:.2e} ({:.1}x lower)",
            totals.4,
            totals.0 / n,
            totals.1 / n,
            totals.2 / n,
            totals.3 / n,
            totals.2 / totals.3.max(1e-30)
        );
    }
    println!("\npaper: overlapping windows reduce the WS=8 boundary distortions (Section VII-B).");
}
