//! Figure 8: a gate waveform and its DCT — energy compaction in action.

use compaqt_bench::print;
use compaqt_dsp::dct::{dct2, energy_compaction};
use compaqt_pulse::shapes::{Drag, PulseShape};

fn main() {
    let wf = Drag::new(160, 0.5, 40.0, 0.2).to_waveform("X(q0)", 4.54);
    let coeffs = dct2(wf.i());
    let mut rows = Vec::new();
    for k in 0..24 {
        rows.push(vec![
            k.to_string(),
            print::f(coeffs[k]),
            print::bar(coeffs[k].abs() / coeffs[0].abs().max(1e-12), 40),
        ]);
    }
    print::table(
        "Figure 8: DCT of a DRAG X-pulse envelope (first 24 coefficients)",
        &["k", "y[k]", "|y[k]| (normalized)"],
        &rows,
    );
    for k in [4, 8, 16, 32] {
        println!("  energy in first {k:>2} coefficients: {:.6}", energy_compaction(&coeffs, k));
    }
    let threshold = 0.025;
    let tail_start = coeffs.iter().position(|c| c.abs() < threshold).unwrap_or(coeffs.len());
    println!("  RLE would start at coefficient {tail_start} (|y| < {threshold}).");
    println!("  paper: high-energy components in the first few samples, then RLE (Fig. 8).");
}
