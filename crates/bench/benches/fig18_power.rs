//! Figure 18: cryogenic controller power with compressed waveform memory.

use compaqt_bench::experiments::fig18;
use compaqt_bench::print;

fn main() {
    let rows_data = fig18();
    let base_total = rows_data[0].1.total_mw();
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|(name, b)| {
            vec![
                name.clone(),
                print::f(b.dac_mw),
                print::f(b.memory_mw),
                print::f(b.idct_mw),
                print::f(b.total_mw()),
                print::f(base_total / b.total_mw()),
            ]
        })
        .collect();
    print::table(
        "Figure 18: cryo controller power (mW, one qubit)",
        &["design", "DAC", "memory", "IDCT", "total", "reduction"],
        &rows,
    );
    let base_mem = rows_data[0].1.memory_mw;
    for (name, b) in &rows_data[1..] {
        println!("  {name}: memory power reduced {:.1}x", base_mem / b.memory_mw);
    }
    println!("  paper: memory power reduced >2.5x; IDCT overhead does not overshadow the gain.");
}
