//! Table I: vendor parameters and the derived per-qubit memory footprint.

use compaqt_bench::print;
use compaqt_pulse::memory_model::capacity_per_qubit_bytes;
use compaqt_pulse::vendor::Vendor;

fn main() {
    let mut rows = Vec::new();
    for vendor in [Vendor::Ibm, Vendor::Google] {
        let p = vendor.params();
        let degree = p.topology.average_degree(27);
        let mc = capacity_per_qubit_bytes(&p, degree);
        rows.push(vec![
            p.name.to_string(),
            format!("{} GS/s", p.sampling_rate_gs),
            format!("{}-bit", p.sample_bits),
            format!("{}x 1Q + {}x 2Q", p.single_qubit_gate_types, p.two_qubit_gate_types),
            format!("{}/{}/{} ns", p.tau_1q_ns, p.tau_2q_ns, p.tau_readout_ns),
            format!("{:?}", p.topology),
            format!("{:.1} KB", mc / 1024.0),
        ]);
    }
    print::table(
        "Table I: control-hardware parameters",
        &["vendor", "fs", "Ns", "gate set", "latencies", "topology", "memory/qubit"],
        &rows,
    );
    println!("  paper: IBM ~18 KB/qubit, Google ~3 KB/qubit.");
}
