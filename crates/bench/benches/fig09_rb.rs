//! Figure 9: two-qubit randomized benchmarking, uncompressed baseline vs
//! int-DCT-W compressed pulses, on the Guadalupe-class machine.

use compaqt_bench::experiments::rb_experiment;
use compaqt_bench::print;
use compaqt_core::compress::Variant;
use compaqt_quantum::rb::RbConfig;

fn main() {
    let config = RbConfig {
        lengths: vec![1, 5, 10, 20, 35, 50, 75, 100],
        sequences_per_length: 60,
        seed: 0x916,
    };
    let (base, comp) = rb_experiment("guadalupe", Variant::IntDctW { ws: 16 }, &config);
    let mut rows = Vec::new();
    for (k, &m) in base.lengths.iter().enumerate() {
        rows.push(vec![
            m.to_string(),
            print::f(base.survival[k]),
            print::bar(base.survival[k], 30),
            print::f(comp.survival[k]),
            print::bar(comp.survival[k], 30),
        ]);
    }
    print::table(
        "Figure 9: 2Q RB sequence fidelity (guadalupe)",
        &["m", "baseline", "", "int-DCT-W (WS=16)", ""],
        &rows,
    );
    println!("  baseline    : fidelity p = {:.3}, EPC = {:.3e}", base.p, base.epc);
    println!("  compressed  : fidelity p = {:.3}, EPC = {:.3e}", comp.p, comp.epc);
    println!(
        "  paper       : baseline p = 0.978 / EPC 1.650e-2; compressed p = 0.975 / EPC 1.842e-2."
    );
}
