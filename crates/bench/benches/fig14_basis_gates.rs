//! Figure 14: per-qubit compression ratios of the basis gates on the
//! 16-qubit machine (int-DCT-W, WS=16).

use compaqt_bench::experiments::fig14;
use compaqt_bench::print;

fn main() {
    let data = fig14();
    let rows: Vec<Vec<String>> = data
        .iter()
        .map(|(q, sx, x, cx)| {
            vec![
                format!("q{q}"),
                print::f(*sx),
                print::f(*x),
                print::f(*cx),
                print::bar(cx / 9.0, 27),
            ]
        })
        .collect();
    print::table(
        "Figure 14: basis-gate compression ratio per qubit (WS=16)",
        &["qubit", "SX", "X", "CX (mean)", "CX bar (0..9x)"],
        &rows,
    );
    let avg: f64 = data.iter().map(|(_, sx, x, cx)| (sx + x + cx) / 3.0).sum::<f64>() / 16.0;
    println!("  mean over qubits and gates: {avg:.2}x (paper: >5x per device, SX lowest at 5.33).");
}
