//! Dynamic controller simulation (Figure 2c): play a real surface-code
//! syndrome cycle through the sequencer + compressed banked memory and
//! observe whether the memory system sustains it.

use compaqt_bench::print;
use compaqt_core::compress::{Compressor, Variant};
use compaqt_core::sequencer::{Controller, ControllerConfig, Instruction};
use compaqt_pulse::device::Device;
use compaqt_pulse::library::{GateId, GateKind};
use compaqt_pulse::vendor::Vendor;
use compaqt_quantum::circuits::Op;
use compaqt_quantum::schedule::asap;
use compaqt_quantum::surface::SurfacePatch;
use compaqt_quantum::transpile::transpile;

/// Maps a scheduled circuit op to the device's gate id (H was transpiled
/// away; RZ is virtual).
fn gate_of(op: Op) -> Option<GateId> {
    match op {
        Op::X(q) => Some(GateId::single(GateKind::X, q as u16)),
        Op::Sx(q) => Some(GateId::single(GateKind::Sx, q as u16)),
        Op::Cx(c, t) => Some(GateId::pair(GateKind::Cx, c as u16, t as u16)),
        Op::Measure(q) => Some(GateId::single(GateKind::Measure, q as u16)),
        _ => None,
    }
}

fn main() {
    let patch = SurfacePatch::rotated_d3();
    // Build a device whose coupling map is exactly the patch's
    // ancilla-data graph, so every scheduled CX has a calibrated pulse.
    let mut edges: Vec<(usize, usize)> = patch
        .stabilizers
        .iter()
        .flat_map(|s| s.data.iter().map(move |&d| (s.ancilla.min(d), s.ancilla.max(d))))
        .collect();
    edges.sort_unstable();
    edges.dedup();
    let device = Device::synthesize_with_edges(Vendor::Ibm, patch.n_qubits, 0x5EC, &edges);
    let lib = (*device.pulse_library()).clone();
    let cycle = transpile(&patch.syndrome_cycle());
    let sched = asap(&cycle, &Vendor::Ibm.params());
    let instructions: Vec<Instruction> = sched
        .ops
        .iter()
        .filter_map(|sop| gate_of(sop.op).map(|gate| Instruction { gate, start_ns: sop.start_ns }))
        .collect();

    // Uncompressed baseline: every channel needs `clock_ratio` banks, so
    // a gate (I+Q) costs 32 banks; peak demand is analytic.
    let compressor = Compressor::new(Variant::IntDctW { ws: 16 }).with_max_window_words(3);
    let mut rows = Vec::new();
    for (name, budget) in [("generous (1152 banks)", 1152usize), ("tight (60 banks)", 60)] {
        let controller = Controller::load(
            ControllerConfig { total_banks: budget, clock_ratio: 16, window: 16 },
            &lib,
            &compressor,
        )
        .expect("library loads");
        let report = controller.play(&instructions).expect("all gates resident");
        let uncompressed_peak = report.peak_concurrent_gates * 2 * 16;
        rows.push(vec![
            name.to_string(),
            report.peak_concurrent_gates.to_string(),
            uncompressed_peak.to_string(),
            format!(
                "{} ({})",
                report.peak_banks_demanded,
                if report.sustained() { "sustained" } else { "OVERSUBSCRIBED" }
            ),
            if uncompressed_peak <= budget {
                "sustained".into()
            } else {
                "OVERSUBSCRIBED".to_string()
            },
            print::f(report.bandwidth_expansion()),
        ]);
    }
    print::table(
        &format!(
            "Controller simulation: one {} syndrome cycle ({} instructions)",
            patch.name,
            instructions.len()
        ),
        &[
            "bank budget",
            "peak gates",
            "uncomp. banks",
            "COMPAQT banks",
            "uncomp. fits?",
            "expansion",
        ],
        &rows,
    );
    println!("  COMPAQT streams the same cycle in ~5.3x fewer banks (6 vs 32 per gate);");
    println!("  on the 60-bank slice the uncompressed design oversubscribes, COMPAQT fits");
    println!("  — the dynamic version of Figure 2c / Table V.");
}
