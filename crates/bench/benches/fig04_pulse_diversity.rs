//! Figure 4: per-qubit π-pulse diversity on three IBM-class machines.
//!
//! Every qubit's X pulse is uniquely calibrated; the spread of amplitudes,
//! widths and DRAG coefficients is what forces the waveform memory to hold
//! one waveform per qubit per gate.

use compaqt_bench::print;
use compaqt_pulse::device::Device;

fn main() {
    for machine in ["toronto", "brooklyn", "washington"] {
        let device = Device::named_machine(machine);
        let n = device.n_qubits();
        let mut amps = Vec::new();
        let mut rows = Vec::new();
        for q in 0..n {
            let wf = device.pi_pulse(q);
            let cal = device.qubit(q);
            amps.push(cal.x_amp);
            if q < 8 {
                rows.push(vec![
                    format!("q{q}"),
                    print::f(cal.x_amp),
                    print::f(cal.beta),
                    print::f(wf.peak_amplitude()),
                    print::bar(wf.peak_amplitude(), 32),
                ]);
            }
        }
        let min = amps.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = amps.iter().cloned().fold(0.0, f64::max);
        print::table(
            &format!("Figure 4: pi pulses on {} ({} qubits; first 8 shown)", device.name(), n),
            &["qubit", "amp", "beta", "peak", "envelope peak"],
            &rows,
        );
        println!(
            "  all {n} qubits unique; amplitude spread {:.3}..{:.3} ({}x)",
            min,
            max,
            print::f(max / min)
        );
    }
    println!("\npaper: every qubit on 27/65/127-qubit machines has a distinct pi pulse (Fig. 4).");
}
