//! Table V: qubits supported by an FPGA controller, normalized.

use compaqt_bench::print;
use compaqt_hw::rfsoc::RfsocModel;

fn main() {
    let m = RfsocModel::default();
    let base = m.qubits_uncompressed();
    let rows = vec![
        vec!["Uncompressed".to_string(), base.to_string(), "1.00".to_string(), "1".to_string()],
        vec![
            "int-DCT-W WS=8".to_string(),
            m.qubits_supported(3, 8).to_string(),
            print::f(m.gain(3, 8)),
            "2.66".to_string(),
        ],
        vec![
            "int-DCT-W WS=16".to_string(),
            m.qubits_supported(3, 16).to_string(),
            print::f(m.gain(3, 16)),
            "5.33".to_string(),
        ],
    ];
    print::table(
        "Table V: concurrent qubits per RFSoC (QICK-class, ratio 16)",
        &["design", "qubits", "normalized (ours)", "normalized (paper)"],
        &rows,
    );
    println!("  paper: QICK baseline ~36 qubits; ~95 with WS=8; ~191 with WS=16.");
}
