//! Table VIII: FPGA resource usage of the baseline and IDCT engines.

use compaqt_bench::print;
use compaqt_dsp::csd::engine_resources;
use compaqt_hw::resources::{baseline_qick, estimate, int_dct_paper};

fn main() {
    let mut rows = Vec::new();
    let base = baseline_qick();
    rows.push(vec![
        "Baseline (QICK)".to_string(),
        format!("{} ({:.2}%)", base.luts, base.lut_percent()),
        format!("{} ({:.2}%)", base.ffs, base.ff_percent()),
        "paper".to_string(),
    ]);
    for ws in [8usize, 16, 32] {
        let p = int_dct_paper(ws);
        rows.push(vec![
            format!("int-DCT-W WS={ws}"),
            format!("{} ({:.2}%)", p.luts, p.lut_percent()),
            format!("{} ({:.2}%)", p.ffs, p.ff_percent()),
            "paper".to_string(),
        ]);
        let e = estimate(&engine_resources(ws, false), ws);
        rows.push(vec![
            format!("int-DCT-W WS={ws}"),
            format!("{} ({:.2}%)", e.luts, e.lut_percent()),
            format!("{} ({:.2}%)", e.ffs, e.ff_percent()),
            "estimated".to_string(),
        ]);
    }
    print::table(
        "Table VIII: FPGA resource usage (Xilinx ZU7EV)",
        &["design", "LUTs", "FFs", "source"],
        &rows,
    );
    println!("  paper: WS=8/16 engines are far below the baseline; WS=32 uses ~4% of LUTs,");
    println!("  making it a sub-optimal design point.");
}
