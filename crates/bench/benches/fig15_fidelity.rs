//! Figure 15: normalized benchmark fidelity (compressed / baseline) for
//! the Table VI suite, WS=8 and WS=16.

use compaqt_bench::print;
use compaqt_core::compress::{Compressor, Variant};
use compaqt_pulse::device::Device;
use compaqt_quantum::circuits::table_vi_suite;
use compaqt_quantum::errors::NoiseModel;
use compaqt_quantum::fidelity::{benchmark_fidelity, normalized_fidelity};
use compaqt_quantum::transpile::transpile;

fn main() {
    let device = Device::named_machine("guadalupe");
    let lib = device.pulse_library();
    let baseline = NoiseModel::ibm_baseline();
    let models: Vec<(usize, NoiseModel)> = [8, 16]
        .into_iter()
        .map(|ws| {
            let c = Compressor::new(Variant::IntDctW { ws });
            (ws, NoiseModel::from_compression(baseline, &lib, &c).expect("compress"))
        })
        .collect();
    let trajectories = 60;
    let mut rows = Vec::new();
    for circuit in table_vi_suite() {
        let t = transpile(&circuit);
        let f_base = benchmark_fidelity(&t, &baseline, trajectories, 0xF15);
        let mut row = vec![circuit.name.clone(), print::f(f_base)];
        for (_, model) in &models {
            let nf = normalized_fidelity(&t, &baseline, model, trajectories, 0xF15);
            row.push(print::f(nf));
        }
        rows.push(row);
    }
    print::table(
        "Figure 15: normalized fidelity vs baseline (int-DCT-W)",
        &["benchmark", "baseline F", "WS=8 norm.", "WS=16 norm."],
        &rows,
    );
    println!("  paper: WS=16 shows no degradation (norm ~1.00 +- experiment noise);");
    println!(
        "  WS=8 loses up to a few percent on some benchmarks from window-boundary distortion."
    );
}
