//! Figure 17: surface-code concurrency and logical-qubit capacity.

use compaqt_bench::print;
use compaqt_hw::rfsoc::RfsocModel;
use compaqt_pulse::vendor::Vendor;
use compaqt_quantum::schedule::{asap, profile};
use compaqt_quantum::surface::SurfacePatch;
use compaqt_quantum::transpile::transpile;

fn main() {
    // (a) peak concurrent gates during a syndrome cycle.
    let params = Vendor::Ibm.params();
    let mut rows = Vec::new();
    for patch in [SurfacePatch::rotated_d3(), SurfacePatch::unrotated(3)] {
        let sched = asap(&transpile(&patch.syndrome_cycle()), &params);
        let prof = profile(&sched, 1.0);
        rows.push(vec![
            patch.name.clone(),
            patch.n_qubits.to_string(),
            prof.peak_gates.to_string(),
            prof.peak_channels.to_string(),
            format!("{:.0}%", 100.0 * prof.peak_channels as f64 / patch.n_qubits as f64),
        ]);
    }
    print::table(
        "Figure 17a: syndrome-cycle concurrency",
        &["patch", "qubits", "peak gates", "peak channels", "driven"],
        &rows,
    );
    println!("  paper: >80% of physical qubits driven concurrently.");

    // (b) logical qubits per controller.
    let rfsoc = RfsocModel::default();
    let mut rows = Vec::new();
    for (patch_name, patch_qubits) in [("surface-17", 17), ("surface-25", 25)] {
        for (design, words, ws) in [("Uncompressed", 16, 16), ("WS=8", 3, 8), ("WS=16", 3, 16)] {
            rows.push(vec![
                patch_name.to_string(),
                design.to_string(),
                rfsoc.qubits_supported(words, ws).to_string(),
                rfsoc.logical_qubits(words, ws, patch_qubits).to_string(),
            ]);
        }
    }
    print::table(
        "Figure 17b: logical qubits per RFSoC controller",
        &["patch", "design", "physical qubits", "logical qubits"],
        &rows,
    );
    println!("  paper: COMPAQT supports 5x more logical qubits than the uncompressed baseline.");
}
