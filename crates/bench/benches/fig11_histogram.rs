//! Figure 11: histogram of stored words per compressed window — the
//! empirical basis for the 3-word uniform memory width.

use compaqt_bench::experiments::fig11;
use compaqt_bench::print;

fn main() {
    for (ws, hist) in fig11() {
        let total: usize = hist.values().sum();
        let rows: Vec<Vec<String>> = hist
            .iter()
            .map(|(&words, &count)| {
                vec![
                    words.to_string(),
                    count.to_string(),
                    format!("{:.1}%", 100.0 * count as f64 / total as f64),
                    print::bar(count as f64 / total as f64, 40),
                ]
            })
            .collect();
        print::table(
            &format!("Figure 11: words per window, int-DCT-W WS={ws} (guadalupe library)"),
            &["words", "windows", "share", ""],
            &rows,
        );
        let le3: usize = hist.iter().filter(|(&w, _)| w <= 3).map(|(_, &c)| c).sum();
        println!(
            "  windows needing <= 3 stored words: {:.1}% (paper: worst case 3; Fig. 11)",
            100.0 * le3 as f64 / total as f64
        );
    }
}
