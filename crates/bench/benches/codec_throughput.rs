//! Criterion micro-benchmarks of the codec hot paths: compression
//! throughput (Figure 20's subject) and — more importantly — the modelled
//! decompression engine, whose sample rate is the bandwidth-expansion
//! claim of Figure 2.
//!
//! Both codec directions are measured as allocating-vs-reuse pairs:
//!
//! * `decompress_engine/*` vs `decompress_into/*` — the historical
//!   allocating decode (fresh `Vec` per pipeline stage per window, dense
//!   integer IDCT) against the plan/buffer-reuse path (caller-owned
//!   `DecodeScratch` + output buffers; density-routed between the sparse
//!   fused IDCT kernel and the batched SIMD inverse);
//! * `compress/*` vs `compress_into/*` — the allocating compressor
//!   (fresh scratch, fresh plans, fresh output per call) against the
//!   encode twin (caller-owned `EncodeScratch` + reused output stream,
//!   batched SoA forward kernels).
//!
//! The `intdct_kernel` group pairs each per-window kernel with its
//! `*_batched_*` SoA row (64 windows per call, runtime-dispatched SIMD);
//! the batched rows are gated to meet or beat the per-window rows on
//! elements/s in the same run.
//!
//! The serving path is measured too: `store_fetch/cold_fetch_into`
//! (sharded-store streaming fetch, decodes every call) vs
//! `store_fetch/hot_fetch_cached` (decoded-LRU hit, no IDCT) — the
//! runtime single-gate workload the store exists for. The `container_io`
//! group adds informational serialize/validate/serve rows for the CWL
//! persistence layer (`compaqt-io`), and the `serve` group measures the
//! wire daemon's loopback fetch/ping round trips (surfaced as the
//! informational `serve_fetch_roundtrip_ns` / `serve_fetches_per_sec`
//! headline fields); none of them are gated.
//!
//! The run writes `BENCH_codec.json` at the repository root with every
//! measurement plus the headline `decode_speedup_ws16` ratio, which the
//! PR acceptance gate tracks (target: >= 3x), and the matching
//! `encode_speedup_*` ratios for the compress side. A `scenario_matrix`
//! array adds informational per-device ratio/fidelity rows from the
//! registry fleet (each row round-trip-verified bit-exact before it is
//! emitted); none of those rows are gated.

use compaqt_core::batch;
use compaqt_core::compress::{CompressedWaveform, Compressor, Variant};
use compaqt_core::engine::{DecodeScratch, DecompressionEngine, EncodeScratch, EngineStats};
use compaqt_core::store::Store;
use compaqt_dsp::batched::BatchedIntDctPlan;
use compaqt_dsp::intdct::IntDct;
use compaqt_pulse::device::Device;
use compaqt_pulse::shapes::{Drag, GaussianSquare, PulseShape};
use criterion::{Criterion, Throughput};
use std::hint::black_box;

fn bench_intdct_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("intdct_kernel");
    for ws in [8usize, 16, 32] {
        let t = IntDct::new(ws).unwrap();
        let x: Vec<compaqt_dsp::fixed::Q15> = (0..ws)
            .map(|i| compaqt_dsp::fixed::Q15::from_f64(0.5 * (i as f64 / ws as f64).sin()))
            .collect();
        let y = t.forward(&x);
        group.throughput(Throughput::Elements(ws as u64));
        // Forward kernel pair: the factorized butterfly default the
        // encode path runs vs the dense matrix oracle it replaced.
        let mut fwd = vec![0i32; ws];
        group.bench_function(format!("forward_ws{ws}"), |b| {
            b.iter(|| {
                t.forward_into(black_box(&x), black_box(&mut fwd));
                black_box(fwd[0])
            })
        });
        group.bench_function(format!("forward_matrix_ws{ws}"), |b| {
            b.iter(|| {
                t.forward_matrix_into(black_box(&x), black_box(&mut fwd));
                black_box(fwd[0])
            })
        });
        group.bench_function(format!("inverse_ws{ws}"), |b| {
            b.iter(|| black_box(t.inverse(black_box(&y))))
        });
        // The sparse in-place kernel on a realistic thresholded window
        // (2 nonzero coefficients), as the engine drives it.
        let mut sparse = vec![0i32; ws];
        sparse[0] = y[0];
        sparse[1] = y[1];
        let mut out = vec![0.0f64; ws];
        group.bench_function(format!("inverse_f64_into_sparse_ws{ws}"), |b| {
            b.iter(|| {
                t.inverse_f64_into(black_box(&sparse), 2, black_box(&mut out));
                black_box(out[0])
            })
        });
        // Batched SoA kernels: the same transform over BATCH independent
        // windows per call through the runtime-dispatched SIMD backend.
        // Gated below against the per-window rows of the *same run*, so
        // the comparison is immune to machine-speed drift between runs.
        const BATCH: usize = 64;
        let mut plan = BatchedIntDctPlan::from_transform(t.clone());
        let xs: Vec<compaqt_dsp::fixed::Q15> = (0..ws * BATCH)
            .map(|i| compaqt_dsp::fixed::Q15::from_f64(0.4 * (i as f64 * 0.37).sin()))
            .collect();
        let mut fwd_b = vec![0i32; ws * BATCH];
        group.throughput(Throughput::Elements((ws * BATCH) as u64));
        group.bench_function(format!("forward_batched_ws{ws}"), |b| {
            b.iter(|| {
                plan.forward_batched_into(black_box(&xs), black_box(&mut fwd_b));
                black_box(fwd_b[0])
            })
        });
        if ws == 16 {
            // Dense coefficient windows: the regime the decode path
            // routes to the batched inverse.
            let dense: Vec<i32> = (0..BATCH).flat_map(|_| y.iter().copied()).collect();
            let mut out_b = vec![0.0f64; ws * BATCH];
            group.bench_function(format!("inverse_batched_ws{ws}"), |b| {
                b.iter(|| {
                    plan.inverse_f64_batched_into(black_box(&dense), 2, black_box(&mut out_b));
                    black_box(out_b[0])
                })
            });
        }
    }
    group.finish();
}

fn bench_compress(c: &mut Criterion) {
    let x_pulse = Drag::new(136, 0.5, 34.0, 0.2).to_waveform("X", 4.54);
    let cr_pulse = GaussianSquare::new(1362, 0.3, 40.0, 1020).to_waveform("CR", 4.54);
    // Allocating baseline: fresh scratch + fresh output per call.
    let mut group = c.benchmark_group("compress");
    for (name, wf) in [("x_136", &x_pulse), ("cr_1362", &cr_pulse)] {
        group.throughput(Throughput::Elements(wf.len() as u64));
        for ws in [8usize, 16] {
            let comp = Compressor::new(Variant::IntDctW { ws });
            group.bench_function(format!("{name}_ws{ws}"), |b| {
                b.iter(|| black_box(comp.compress(black_box(wf)).unwrap()))
            });
        }
    }
    group.finish();
    // Plan/buffer-reuse path: same streams, zero steady-state allocation.
    let mut group = c.benchmark_group("compress_into");
    for (name, wf) in [("x_136", &x_pulse), ("cr_1362", &cr_pulse)] {
        group.throughput(Throughput::Elements(wf.len() as u64));
        for ws in [8usize, 16] {
            let comp = Compressor::new(Variant::IntDctW { ws });
            let mut scratch = EncodeScratch::new();
            let mut out = CompressedWaveform::empty();
            group.bench_function(format!("{name}_ws{ws}"), |b| {
                b.iter(|| {
                    comp.compress_into(black_box(wf), &mut scratch, &mut out).unwrap();
                    black_box(out.words())
                })
            });
        }
    }
    group.finish();
}

fn bench_decompress(c: &mut Criterion) {
    let cr_pulse = GaussianSquare::new(1362, 0.3, 40.0, 1020).to_waveform("CR", 4.54);
    // Allocating baseline.
    let mut group = c.benchmark_group("decompress_engine");
    for ws in [8usize, 16] {
        let z = Compressor::new(Variant::IntDctW { ws }).compress(&cr_pulse).unwrap();
        let engine = DecompressionEngine::for_variant(z.variant).unwrap();
        group.throughput(Throughput::Elements(2 * cr_pulse.len() as u64));
        group.bench_function(format!("cr_1362_ws{ws}"), |b| {
            b.iter(|| {
                let mut stats = EngineStats::default();
                let i = engine.decode_channel(black_box(&z.i), z.n_samples, &mut stats).unwrap();
                let q = engine.decode_channel(black_box(&z.q), z.n_samples, &mut stats).unwrap();
                black_box((i, q))
            })
        });
    }
    group.finish();
    // Plan/buffer-reuse path: same streams, zero steady-state allocation.
    let mut group = c.benchmark_group("decompress_into");
    for ws in [8usize, 16] {
        let z = Compressor::new(Variant::IntDctW { ws }).compress(&cr_pulse).unwrap();
        let engine = DecompressionEngine::for_variant(z.variant).unwrap();
        let mut scratch = DecodeScratch::new();
        let (mut i, mut q) = (Vec::new(), Vec::new());
        group.throughput(Throughput::Elements(2 * cr_pulse.len() as u64));
        group.bench_function(format!("cr_1362_ws{ws}"), |b| {
            b.iter(|| {
                let stats =
                    engine.decompress_into(black_box(&z), &mut scratch, &mut i, &mut q).unwrap();
                black_box((stats.output_samples, i.last().copied(), q.last().copied()))
            })
        });
    }
    group.finish();
}

fn bench_library_compile(c: &mut Criterion) {
    // Calibration-cycle scale: a 16-qubit machine's full library.
    let device = Device::named_machine("guadalupe");
    let lib = device.pulse_library();
    let samples: u64 = lib.iter().map(|(_, wf)| wf.len() as u64).sum();
    let compressor = Compressor::new(Variant::IntDctW { ws: 16 });
    let mut group = c.benchmark_group("library_compile");
    group.throughput(Throughput::Elements(samples));
    group.bench_function("guadalupe_seq", |b| {
        b.iter(|| {
            black_box(compaqt_core::stats::compress_library(black_box(&lib), &compressor).unwrap())
        })
    });
    group.bench_function("guadalupe_par", |b| {
        b.iter(|| black_box(batch::compress_library_par(black_box(&lib), &compressor).unwrap()))
    });
    let zs: Vec<_> = lib.iter().map(|(_, wf)| compressor.compress(wf).unwrap()).collect();
    group.bench_function("decode_library_seq", |b| {
        b.iter(|| black_box(batch::decompress_library(black_box(&zs)).unwrap().1.output_samples))
    });
    group.bench_function("decode_library_par", |b| {
        b.iter(|| {
            black_box(batch::decompress_library_par(black_box(&zs)).unwrap().1.output_samples)
        })
    });
    group.finish();
}

fn bench_store_fetch(c: &mut Criterion) {
    // Runtime serving path: single-gate fetches from the sharded store.
    // `cold` always decodes (streaming fetch into reused buffers, the
    // zero-allocation path); `hot` hits the decoded LRU and skips the
    // RLE + IDCT entirely. The gap between the two rows is what the
    // hot set buys calibration-critical gates.
    let device = Device::named_machine("guadalupe");
    let lib = device.pulse_library();
    let compressor = Compressor::new(Variant::IntDctW { ws: 16 });
    let store = Store::from_library(&lib, &compressor).unwrap();
    // A long two-qubit drive: the expensive, representative fetch.
    let (gate, wf) =
        lib.iter().max_by_key(|(_, wf)| wf.len()).expect("guadalupe library is non-empty");
    let mut group = c.benchmark_group("store_fetch");
    group.throughput(Throughput::Elements(2 * wf.len() as u64));
    let (mut i, mut q) = (Vec::new(), Vec::new());
    group.bench_function("cold_fetch_into", |b| {
        b.iter(|| {
            let stats = store.fetch_into(black_box(gate), &mut i, &mut q).unwrap();
            black_box(stats.output_samples)
        })
    });
    store.fetch_cached(gate).unwrap(); // park the decode
    group.bench_function("hot_fetch_cached", |b| {
        b.iter(|| {
            let cached = store.fetch_cached(black_box(gate)).unwrap();
            black_box(cached.i()[0])
        })
    });

    // The same two fetches with every observability instrument armed:
    // per-variant codec histograms on and a live trace ring attached.
    // The lock-free hit path carries no instrument at all, so the
    // `instrumented_hot_fetch_cached` row is self-gated in `main`
    // against this run's own `hot_fetch_cached` — zero-overhead
    // telemetry as a measured claim, not a comment.
    let obs_store = Store::from_library_with(
        &lib,
        &compressor,
        compaqt_core::store::StoreConfig {
            codec_metrics: true,
            ..compaqt_core::store::StoreConfig::default()
        },
    )
    .unwrap();
    obs_store.attach_trace(std::sync::Arc::new(compaqt_obs::TraceRing::new(256)));
    group.throughput(Throughput::Elements(2 * wf.len() as u64));
    group.bench_function("instrumented_cold_fetch_into", |b| {
        b.iter(|| {
            let stats = obs_store.fetch_into(black_box(gate), &mut i, &mut q).unwrap();
            black_box(stats.output_samples)
        })
    });
    obs_store.fetch_cached(gate).unwrap();
    group.bench_function("instrumented_hot_fetch_cached", |b| {
        b.iter(|| {
            let cached = obs_store.fetch_cached(black_box(gate)).unwrap();
            black_box(cached.i()[0])
        })
    });
    group.finish();
}

fn bench_container_io(c: &mut Criterion) {
    // Persistence layer (informational rows, no gate): serialize a
    // whole library store to CWL container bytes, validate + index the
    // container (header, sorted index, per-entry CRC-32), random-access
    // decode one gate straight from the backing buffer, and bulk-load a
    // serving store.
    let device = Device::named_machine("guadalupe");
    let lib = device.pulse_library();
    let compressor = Compressor::new(Variant::IntDctW { ws: 16 });
    let store = Store::from_library(&lib, &compressor).unwrap();
    let bytes = compaqt_io::write_store(&store).unwrap();
    let (gate, wf) =
        lib.iter().max_by_key(|(_, wf)| wf.len()).expect("guadalupe library is non-empty");
    let mut group = c.benchmark_group("container_io");
    group.throughput(Throughput::Elements(bytes.len() as u64));
    group.bench_function("write_store", |b| {
        b.iter(|| black_box(compaqt_io::write_store(black_box(&store)).unwrap().len()))
    });
    group.bench_function("reader_validate", |b| {
        b.iter(|| black_box(compaqt_io::Reader::new(black_box(bytes.clone())).unwrap().len()))
    });
    let reader = compaqt_io::Reader::new(bytes.clone()).unwrap();
    let mut scratch = compaqt_io::ContainerScratch::new();
    let (mut i, mut q) = (Vec::new(), Vec::new());
    group.throughput(Throughput::Elements(2 * wf.len() as u64));
    group.bench_function("reader_fetch_into", |b| {
        b.iter(|| {
            let stats = reader.fetch_into(black_box(gate), &mut scratch, &mut i, &mut q).unwrap();
            black_box(stats.output_samples)
        })
    });
    group.throughput(Throughput::Elements(lib.len() as u64));
    group.bench_function("into_store", |b| {
        b.iter(|| {
            let loaded = compaqt_io::Reader::new(bytes.clone())
                .unwrap()
                .into_store(Default::default())
                .unwrap();
            black_box(loaded.len())
        })
    });
    group.finish();
}

fn bench_reader_open(c: &mut Criterion) {
    // Validation-mode pair (informational rows, no gate): eager open
    // sweeps every payload CRC-32 up front (O(payload)); lazy open
    // audits the index only and defers per-entry payload verdicts to
    // first touch (O(index)) — the knob that makes opening a
    // larger-than-RAM mapped library cheap. Same bytes, same validated
    // index, different opening cost; the `reader_open_eager_ns` /
    // `reader_open_lazy_ns` headline pair tracks the gap.
    let device = Device::named_machine("guadalupe");
    let lib = device.pulse_library();
    let compressor = Compressor::new(Variant::IntDctW { ws: 16 });
    let store = Store::from_library(&lib, &compressor).unwrap();
    let bytes = compaqt_io::write_store(&store).unwrap();
    let mut group = c.benchmark_group("reader_open");
    group.throughput(Throughput::Elements(bytes.len() as u64));
    group.bench_function("eager", |b| {
        b.iter(|| {
            let reader = compaqt_io::Reader::open(
                black_box(bytes.clone()),
                compaqt_io::ReaderOptions::new(),
            )
            .unwrap();
            black_box(reader.len())
        })
    });
    group.bench_function("lazy_crc", |b| {
        b.iter(|| {
            let reader = compaqt_io::Reader::open(
                black_box(bytes.clone()),
                compaqt_io::ReaderOptions::lazy_crc(),
            )
            .unwrap();
            black_box(reader.len())
        })
    });
    group.finish();
}

/// Hand-timed multi-core contention rows (criterion's bencher drives a
/// single thread): N reader threads hammer lock-free `fetch_cached`
/// hits on a warmed hot working set while one writer continuously
/// recalibrates *other* gates of the same store — every insert
/// republishes that shard's hot snapshot, so the readers ride exactly
/// the generation flips the RCU path exists for. Returns
/// `(readers, ns_per_hit, aggregate_hits_per_sec)` rows for N in
/// {1, 2, 4, 8}. On a single-vCPU runner the aggregate rate stays
/// roughly flat (threads time-share one core); on real multi-core
/// hardware it is expected to scale with N because hits share no lock
/// and no writable cache line beyond the recency stamps.
fn bench_store_contention() -> Vec<(usize, f64, f64)> {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Instant;

    let device = Device::named_machine("guadalupe");
    let lib = device.pulse_library();
    let compressor = Compressor::new(Variant::IntDctW { ws: 16 });
    let store = Store::from_library(&lib, &compressor).unwrap();
    let gates = store.gates();
    let (hot, cold) = gates.split_at(8.min(gates.len() / 2));
    for gate in hot {
        store.fetch_cached(gate).unwrap(); // warm: every timed fetch is a hit
    }
    // Pre-compressed recalibration streams for the writer to flip.
    let recal: Vec<_> = cold
        .iter()
        .map(|g| (g.clone(), compressor.compress(lib.get(g).unwrap()).unwrap()))
        .collect();
    assert!(!recal.is_empty(), "guadalupe library must have cold gates to recalibrate");

    const PASSES: usize = 2_000;
    let mut rows = Vec::new();
    for n in [1usize, 2, 4, 8] {
        let stop = AtomicBool::new(false);
        let elapsed = std::thread::scope(|scope| {
            let (store, stop, recal) = (&store, &stop, &recal);
            scope.spawn(move || {
                let mut k = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let (gate, z) = &recal[k % recal.len()];
                    store.insert(gate.clone(), z.clone()).unwrap();
                    k += 1;
                }
            });
            let start = Instant::now();
            let readers: Vec<_> = (0..n)
                .map(|_| {
                    scope.spawn(move || {
                        for _ in 0..PASSES {
                            for gate in hot {
                                black_box(store.fetch_cached(black_box(gate)).unwrap().len());
                            }
                        }
                    })
                })
                .collect();
            for r in readers {
                r.join().unwrap();
            }
            let elapsed = start.elapsed();
            stop.store(true, Ordering::Relaxed);
            elapsed
        });
        let hits = (n * PASSES * hot.len()) as f64;
        let per_thread_hits = (PASSES * hot.len()) as f64;
        let ns_per_hit = elapsed.as_nanos() as f64 / per_thread_hits;
        let hits_per_sec = hits / elapsed.as_secs_f64();
        println!(
            "store_contention/readers_{n}: {ns_per_hit:.1} ns/hit, \
             {:.2} Mhits/s aggregate",
            hits_per_sec / 1e6
        );
        rows.push((n, ns_per_hit, hits_per_sec));
    }
    rows
}

fn bench_serve(c: &mut Criterion) {
    // Wire serving path (informational rows, no gate): one blocking
    // client fetching the representative long pulse over loopback TCP.
    // A round trip covers frame encode + CRC on the client, a kernel
    // round trip, the server's shard read + stream serialization, and
    // the client-side parse + decode — the paper's deployment loop with
    // a real socket in the middle.
    let device = Device::named_machine("guadalupe");
    let lib = device.pulse_library();
    let compressor = Compressor::new(Variant::IntDctW { ws: 16 });
    let store = std::sync::Arc::new(Store::from_library(&lib, &compressor).unwrap());
    let handle = compaqt_io::serve::serve(store, "127.0.0.1:0").expect("bind loopback");
    let mut client = compaqt_io::serve::Client::connect(handle.local_addr()).expect("connect");
    let (gate, wf) =
        lib.iter().max_by_key(|(_, wf)| wf.len()).expect("guadalupe library is non-empty");
    let mut group = c.benchmark_group("serve");
    group.throughput(Throughput::Elements(2 * wf.len() as u64));
    let (mut i, mut q) = (Vec::new(), Vec::new());
    group.bench_function("fetch_roundtrip", |b| {
        b.iter(|| {
            let stats = client.fetch_into(black_box(gate), &mut i, &mut q).unwrap();
            black_box(stats.output_samples)
        })
    });
    group.throughput(Throughput::Elements(1));
    group.bench_function("ping_roundtrip", |b| b.iter(|| client.ping().unwrap()));
    group.finish();
    drop(client);
    handle.shutdown();
}

fn main() {
    let mut criterion = Criterion::default();
    bench_intdct_kernel(&mut criterion);
    bench_compress(&mut criterion);
    bench_decompress(&mut criterion);
    bench_library_compile(&mut criterion);
    bench_store_fetch(&mut criterion);
    bench_container_io(&mut criterion);
    bench_serve(&mut criterion);
    bench_reader_open(&mut criterion);
    let contention = bench_store_contention();
    criterion.final_summary();

    // Headline ratio the acceptance gate tracks.
    let ns = |group: &str, name: &str| {
        criterion
            .results()
            .iter()
            .find(|r| r.group == group && r.name == name)
            .map(|r| r.ns_per_iter)
    };
    let speedup = |ws: usize| -> Option<f64> {
        let name = format!("cr_1362_ws{ws}");
        Some(ns("decompress_engine", &name)? / ns("decompress_into", &name)?)
    };
    let encode_speedup = |ws: usize| -> Option<f64> {
        let name = format!("cr_1362_ws{ws}");
        Some(ns("compress", &name)? / ns("compress_into", &name)?)
    };
    let ws16 = speedup(16).unwrap_or(f64::NAN);
    let ws8 = speedup(8).unwrap_or(f64::NAN);
    let enc16 = encode_speedup(16).unwrap_or(f64::NAN);
    let enc8 = encode_speedup(8).unwrap_or(f64::NAN);
    println!("\ndecode_speedup_ws16: {ws16:.2}x   decode_speedup_ws8: {ws8:.2}x");
    println!("encode_speedup_ws16: {enc16:.2}x   encode_speedup_ws8: {enc8:.2}x");

    // Informational wire-serving headline (no gate): the loopback TCP
    // fetch round trip and the single-connection fetch rate it implies.
    let serve_ns = ns("serve", "fetch_roundtrip").unwrap_or(f64::NAN);
    let serve_fps = if serve_ns > 0.0 { 1e9 / serve_ns } else { f64::NAN };
    println!("serve_fetch_roundtrip_ns: {serve_ns:.0}   serve_fetches_per_sec: {serve_fps:.0}");

    // Informational validation-mode headline (no gate): what eager
    // whole-payload CRC costs at open versus the lazy index-only audit.
    let open_eager = ns("reader_open", "eager").unwrap_or(f64::NAN);
    let open_lazy = ns("reader_open", "lazy_crc").unwrap_or(f64::NAN);
    println!("reader_open_eager_ns: {open_eager:.0}   reader_open_lazy_ns: {open_lazy:.0}");

    // Zero-overhead telemetry headline: the lock-free hit with every
    // instrument armed, next to the uninstrumented row from this same
    // run (self-gated below).
    let hot_ns = ns("store_fetch", "hot_fetch_cached").unwrap_or(f64::NAN);
    let instrumented_hot_ns =
        ns("store_fetch", "instrumented_hot_fetch_cached").unwrap_or(f64::NAN);
    println!(
        "hot_fetch_cached_ns: {hot_ns:.1}   instrumented_hot_fetch_ns: {instrumented_hot_ns:.1}"
    );

    // Baseline file with every measurement plus the headline ratios.
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"decode_speedup_ws16\": {ws16:.3},\n"));
    json.push_str(&format!("  \"decode_speedup_ws8\": {ws8:.3},\n"));
    json.push_str(&format!("  \"encode_speedup_ws16\": {enc16:.3},\n"));
    json.push_str(&format!("  \"encode_speedup_ws8\": {enc8:.3},\n"));
    json.push_str(&format!("  \"serve_fetch_roundtrip_ns\": {serve_ns:.1},\n"));
    json.push_str(&format!("  \"serve_fetches_per_sec\": {serve_fps:.1},\n"));
    json.push_str(&format!("  \"reader_open_eager_ns\": {open_eager:.1},\n"));
    json.push_str(&format!("  \"reader_open_lazy_ns\": {open_lazy:.1},\n"));
    json.push_str(&format!("  \"hot_fetch_cached_ns\": {hot_ns:.1},\n"));
    json.push_str(&format!("  \"instrumented_hot_fetch_ns\": {instrumented_hot_ns:.1},\n"));
    json.push_str("  \"benchmarks\": [\n");
    let results = criterion.results();
    for r in results.iter() {
        let thrpt = match r.per_second() {
            Some(v) => format!(", \"elements_per_second\": {v:.1}"),
            None => String::new(),
        };
        // The hand-timed contention rows below always follow, so every
        // criterion row takes a trailing comma.
        json.push_str(&format!(
            "    {{\"group\": \"{}\", \"name\": \"{}\", \"ns_per_iter\": {:.1}{thrpt}}},\n",
            r.group, r.name, r.ns_per_iter,
        ));
    }
    // Multi-threaded rows measured outside criterion (informational, no
    // gate: thread scaling on the shared 1-vCPU CI runner is noise).
    // `elements_per_second` here is the aggregate hit rate across all
    // reader threads; `ns_per_iter` is the per-thread hit latency.
    for (k, (n, ns_per_hit, hps)) in contention.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"group\": \"store_contention\", \"name\": \"hot_hits_readers_{n}\", \
             \"ns_per_iter\": {ns_per_hit:.1}, \"elements_per_second\": {hps:.1}}}{}\n",
            if k + 1 == contention.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");

    // Informational per-device rows from the registry-driven scenario
    // matrix (no gate): every fleet device except the 433-qubit lattice,
    // compressed at the paper's design point and round-trip-verified
    // bit-exact before a row is emitted.
    let fleet: Vec<_> =
        compaqt_pulse::registry::fleet().into_iter().filter(|s| s.n_qubits() <= 127).collect();
    let rows = compaqt_io::run_fleet(&fleet, &compaqt_io::ScenarioVariant::smoke_matrix())
        .expect("fleet scenario matrix must round-trip bit-exactly");
    json.push_str("  \"scenario_matrix\": [\n");
    for (k, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"device\": \"{}\", \"qubits\": {}, \"variant\": \"{}\", \
             \"gates\": {}, \"container_bytes\": {}, \"ratio\": {:.3}, \
             \"mean_mse\": {:.3e}}}{}\n",
            row.device,
            row.qubits,
            row.variant,
            row.gates,
            row.container_bytes,
            row.ratio,
            row.mean_mse,
            if k + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_codec.json");
    // The committed file is the authoritative baseline the smoke gates
    // compare against; it is only overwritten once the gates pass *and*
    // the gated encode ratio did not dip below the committed reference.
    // Without the second condition the gate would ratchet downward:
    // each run inside the 20% jitter margin would rewrite the baseline
    // a little lower, compounding sub-threshold regressions into an
    // arbitrarily large one that never fails CI. Within-jitter dips
    // therefore pass but leave the file alone; improvements move it up;
    // accepting a deliberate encode regression is a manual edit of
    // BENCH_codec.json.
    let committed_enc8 = std::fs::read_to_string(path)
        .ok()
        .and_then(|s| parse_baseline_field(&s, "encode_speedup_ws8"));

    // ---- CI smoke gates (fresh numbers vs the committed baseline). ----
    let mut failures = Vec::new();
    // Hard decode gate: the headline bandwidth-expansion claim.
    if ws16.is_nan() || ws16 < 3.0 {
        failures.push(format!("decode_speedup_ws16 {ws16:.2}x fell below the 3x floor"));
    }
    // Encode-side regression gate: the committed baseline minus the
    // documented ~20% run-to-run jitter of the 1-vCPU CI container.
    if let Some(baseline) = committed_enc8 {
        let floor = baseline * 0.8;
        if enc8.is_nan() || enc8 < floor {
            failures.push(format!(
                "encode_speedup_ws8 {enc8:.2}x regressed below {floor:.2}x \
                 (committed {baseline:.2}x - 20% jitter margin)"
            ));
        }
    } else {
        println!("no committed encode_speedup_ws8 baseline; encode gate skipped");
    }
    // Batched-kernel floor: the SoA batched rows must at least match the
    // per-window rows on elements/s. Both sides come from the same run,
    // so the gate is immune to machine-speed drift between runs and
    // cannot ratchet.
    let per_second = |group: &str, name: &str| {
        criterion
            .results()
            .iter()
            .find(|r| r.group == group && r.name == name)
            .and_then(|r| r.per_second())
    };
    let mut kernel_floor = |batched: String, scalar: String| {
        if let (Some(b), Some(s)) =
            (per_second("intdct_kernel", &batched), per_second("intdct_kernel", &scalar))
        {
            if b < s {
                failures.push(format!(
                    "{batched} {:.1} Melem/s fell below per-window {scalar} {:.1} Melem/s",
                    b / 1e6,
                    s / 1e6
                ));
            }
        }
    };
    for ws in [8usize, 16, 32] {
        kernel_floor(format!("forward_batched_ws{ws}"), format!("forward_ws{ws}"));
    }
    kernel_floor("inverse_batched_ws16".to_string(), "inverse_ws16".to_string());
    // Zero-overhead telemetry gate: the instrumented store's lock-free
    // hit must stay within this run's own jitter of the uninstrumented
    // row. Both sides come from the same run (machine drift cancels,
    // no ratchet); the hit path carries no instrument, so anything
    // past the ~30% + 10 ns small-number jitter margin of the shared
    // 1-vCPU runner is a real regression.
    if !hot_ns.is_nan() && !instrumented_hot_ns.is_nan() {
        let ceiling = hot_ns * 1.30 + 10.0;
        if instrumented_hot_ns > ceiling {
            failures.push(format!(
                "instrumented_hot_fetch_ns {instrumented_hot_ns:.1} exceeded {ceiling:.1} \
                 (hot_fetch_cached {hot_ns:.1} ns + jitter margin)"
            ));
        }
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("BENCH GATE FAILED: {f}");
        }
        eprintln!("BENCH_codec.json left untouched (committed baseline preserved)");
        std::process::exit(1);
    }
    println!(
        "bench gates passed (decode >= 3x, encode within jitter margin, \
         batched kernels >= per-window, instrumented hot fetch within jitter)"
    );
    match committed_enc8 {
        Some(baseline) if enc8 < baseline => println!(
            "encode_speedup_ws8 {enc8:.2}x is below the committed {baseline:.2}x \
             (within jitter): baseline left untouched so the gate cannot ratchet down"
        ),
        _ => {
            std::fs::write(path, json).expect("write BENCH_codec.json");
            println!("baseline written to BENCH_codec.json");
        }
    }
}

/// Extracts a `"name": 1.234` field from the committed baseline JSON
/// (hand-rolled: the workspace's serde is a no-op stub).
fn parse_baseline_field(json: &str, name: &str) -> Option<f64> {
    let key = format!("\"{name}\":");
    let start = json.find(&key)? + key.len();
    let rest = json[start..].trim_start();
    let end = rest.find([',', '\n', '}'])?;
    rest[..end].trim().parse().ok()
}
