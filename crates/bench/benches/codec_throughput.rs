//! Criterion micro-benchmarks of the codec hot paths: compression
//! throughput (Figure 20's subject) and — more importantly — the modelled
//! decompression engine, whose sample rate is the bandwidth-expansion
//! claim of Figure 2.

use compaqt_core::compress::{Compressor, Variant};
use compaqt_core::engine::{DecompressionEngine, EngineStats};
use compaqt_dsp::intdct::IntDct;
use compaqt_pulse::shapes::{Drag, GaussianSquare, PulseShape};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_intdct_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("intdct_kernel");
    for ws in [8usize, 16, 32] {
        let t = IntDct::new(ws).unwrap();
        let x: Vec<compaqt_dsp::fixed::Q15> = (0..ws)
            .map(|i| compaqt_dsp::fixed::Q15::from_f64(0.5 * (i as f64 / ws as f64).sin()))
            .collect();
        let y = t.forward(&x);
        group.throughput(Throughput::Elements(ws as u64));
        group.bench_function(format!("inverse_ws{ws}"), |b| {
            b.iter(|| black_box(t.inverse(black_box(&y))))
        });
    }
    group.finish();
}

fn bench_compress(c: &mut Criterion) {
    let mut group = c.benchmark_group("compress");
    let x_pulse = Drag::new(136, 0.5, 34.0, 0.2).to_waveform("X", 4.54);
    let cr_pulse = GaussianSquare::new(1362, 0.3, 40.0, 1020).to_waveform("CR", 4.54);
    for (name, wf) in [("x_136", &x_pulse), ("cr_1362", &cr_pulse)] {
        group.throughput(Throughput::Elements(wf.len() as u64));
        for ws in [8usize, 16] {
            let comp = Compressor::new(Variant::IntDctW { ws });
            group.bench_function(format!("{name}_ws{ws}"), |b| {
                b.iter(|| black_box(comp.compress(black_box(wf)).unwrap()))
            });
        }
    }
    group.finish();
}

fn bench_decompress(c: &mut Criterion) {
    let mut group = c.benchmark_group("decompress_engine");
    let cr_pulse = GaussianSquare::new(1362, 0.3, 40.0, 1020).to_waveform("CR", 4.54);
    for ws in [8usize, 16] {
        let z = Compressor::new(Variant::IntDctW { ws }).compress(&cr_pulse).unwrap();
        let engine = DecompressionEngine::for_variant(z.variant).unwrap();
        group.throughput(Throughput::Elements(2 * cr_pulse.len() as u64));
        group.bench_function(format!("cr_1362_ws{ws}"), |b| {
            b.iter(|| {
                let mut stats = EngineStats::default();
                let i = engine.decode_channel(black_box(&z.i), z.n_samples, &mut stats).unwrap();
                let q = engine.decode_channel(black_box(&z.q), z.n_samples, &mut stats).unwrap();
                black_box((i, q))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_intdct_kernel, bench_compress, bench_decompress);
criterion_main!(benches);
