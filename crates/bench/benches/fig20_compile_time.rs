//! Figure 20: software compression latency per waveform — negligible next
//! to the hours-long calibration cycle it piggybacks on.

use compaqt_bench::experiments::{fig20, parallel_compress_stats};
use compaqt_bench::print;

fn main() {
    let rows: Vec<Vec<String>> = fig20()
        .into_iter()
        .map(|(machine, waveforms, t8, t16)| {
            vec![
                machine,
                waveforms.to_string(),
                format!("{:.3} ms", t8 * 1e3),
                format!("{:.3} ms", t16 * 1e3),
            ]
        })
        .collect();
    print::table(
        "Figure 20: mean int-DCT-W compression time per waveform",
        &["machine", "waveforms", "WS=8", "WS=16"],
        &rows,
    );
    println!("  paper: ~0.1-0.2 s per waveform in Python; our Rust codec is orders faster,");
    println!("  the conclusion is unchanged: negligible next to ~4 h calibration cycles.");

    // Calibration-cycle scale: recompress a 127-qubit machine's library.
    let mut rows = Vec::new();
    for threads in [1usize, 4] {
        let (n, secs, ratio) = parallel_compress_stats("washington", 16, threads);
        rows.push(vec![
            format!("{threads} thread(s)"),
            n.to_string(),
            format!("{:.1} ms", secs * 1e3),
            print::f(ratio),
        ]);
    }
    print::table(
        "Calibration-cycle recompression: ibm_washington (127 qubits, WS=16)",
        &["workers", "waveforms", "total time", "overall R"],
        &rows,
    );
    println!("  a full 127-qubit library recompresses in milliseconds — compression can");
    println!("  live inside the calibration loop (Section IV-C). (Worker scaling shows");
    println!("  only on multi-core hosts.)");
}
