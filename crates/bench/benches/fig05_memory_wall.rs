//! Figure 5: the waveform-memory wall.
//!
//! (a) capacity scaling, (b) bandwidth scaling, (c) peak/average bandwidth
//! for representative circuits, (d) qubits supported under capacity vs
//! bandwidth constraints.

use compaqt_bench::print;
use compaqt_hw::rfsoc::RfsocModel;
use compaqt_pulse::memory_model::{
    self, demand_sweep, rfsoc_bandwidth_per_qubit_gb, RFSOC_CAPACITY_BYTES, RFSOC_MAX_BANDWIDTH_GB,
};
use compaqt_pulse::vendor::Vendor;
use compaqt_quantum::circuits;
use compaqt_quantum::schedule::{asap, profile};
use compaqt_quantum::surface::SurfacePatch;
use compaqt_quantum::transpile::transpile;

fn main() {
    // (a) + (b): capacity and bandwidth demand curves.
    let counts = [10, 25, 50, 75, 100, 150, 200];
    let mut rows = Vec::new();
    for vendor in [Vendor::Ibm, Vendor::Google] {
        let p = vendor.params();
        for d in demand_sweep(&p, counts) {
            rows.push(vec![
                p.name.to_string(),
                d.qubits.to_string(),
                print::f(d.capacity_mb),
                print::f(d.bandwidth_gb),
            ]);
        }
    }
    print::table(
        "Figure 5a/5b: waveform memory demand",
        &["vendor", "qubits", "capacity (MB)", "bandwidth (GB/s)"],
        &rows,
    );
    println!(
        "  RFSoC reference: capacity {:.2} MB, max internal bandwidth {} GB/s",
        RFSOC_CAPACITY_BYTES / 1e6,
        RFSOC_MAX_BANDWIDTH_GB
    );
    println!("  paper: IBM reaches the 7.56 MB RFSoC capacity near ~100 qubits; BW crosses 866 GB/s near ~36.");

    // (c): peak and average bandwidth for qaoa-40, surface-25, surface-81.
    let params = Vendor::Ibm.params();
    let bw = rfsoc_bandwidth_per_qubit_gb();
    let mut rows = Vec::new();
    let mut run = |name: &str, circuit: compaqt_quantum::Circuit| {
        let sched = asap(&transpile(&circuit), &params);
        let prof = profile(&sched, bw);
        rows.push(vec![
            name.to_string(),
            print::f(prof.peak_bandwidth_gb),
            print::f(prof.average_bandwidth_gb),
        ]);
    };
    run("qaoa-40", circuits::qaoa(40, 3, 40));
    run("surface-25 (d=3)", SurfacePatch::unrotated(3).syndrome_cycle());
    run("surface-81 (d=5)", SurfacePatch::unrotated(5).syndrome_cycle());
    print::table(
        "Figure 5c: peak/average bandwidth per benchmark",
        &["benchmark", "peak (GB/s)", "average (GB/s)"],
        &rows,
    );
    println!("  paper: qaoa-40 894/241, surface-25 447/402, surface-81 1609/1453 GB/s.");

    // (d): capacity-only vs bandwidth-only qubit limits.
    let rfsoc = RfsocModel::default();
    let by_cap = rfsoc.qubits_by_capacity(&params);
    let by_bw = rfsoc.qubits_by_bandwidth();
    print::table(
        "Figure 5d: RFSoC qubit limits",
        &["constraint", "qubits"],
        &[
            vec!["capacity only".into(), by_cap.to_string()],
            vec!["bandwidth".into(), by_bw.to_string()],
        ],
    );
    println!(
        "  bandwidth drops the limit {:.1}x (paper: 5x, >200 -> <40).",
        by_cap as f64 / by_bw as f64
    );
    let _ = memory_model::total_capacity_bytes(&params, 1);
}
