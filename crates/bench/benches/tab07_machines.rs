//! Table VII: min/max/avg compression ratios across five machines.

use compaqt_bench::experiments::tab07;
use compaqt_bench::print;

fn main() {
    let rows: Vec<Vec<String>> = tab07()
        .into_iter()
        .map(|(machine, min, max, avg)| vec![machine, print::f(min), print::f(max), print::f(avg)])
        .collect();
    print::table(
        "Table VII: compression ratios, int-DCT-W WS=16",
        &["machine", "min", "max", "avg"],
        &rows,
    );
    println!("  paper: min 5.33, max ~8.0-8.1, avg ~6.3-6.5 on all five machines.");
}
