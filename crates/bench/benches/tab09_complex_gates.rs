//! Table IX: compressibility of complex multi-qubit and fluxonium pulses.

use compaqt_bench::experiments::tab09;
use compaqt_bench::print;

fn main() {
    let paper: &[(&str, f64)] = &[
        ("iToffoli", 8.32),
        ("Toffoli", 5.31),
        ("CCZ", 5.59),
        ("Fluxonium X/X2/Y2/Z2 (avg)", 7.2),
    ];
    let rows: Vec<Vec<String>> = tab09()
        .into_iter()
        .map(|(gate, r)| {
            let p = paper
                .iter()
                .find(|(n, _)| gate.starts_with(n) || n.starts_with(&gate))
                .map(|(_, v)| print::f(*v))
                .unwrap_or_else(|| "-".to_string());
            vec![gate, print::f(r), p]
        })
        .collect();
    print::table(
        "Table IX: complex-gate compression, int-DCT-W WS=16",
        &["gate pulse", "R (ours)", "R (paper)"],
        &rows,
    );
    println!("  paper: all complex/emerging-technology pulses compress 5-8x.");
}
