//! Shared experiment runners used by the bench targets and integration
//! tests. Each function reproduces the data behind one table or figure;
//! the bench binaries only format the results.

use compaqt_core::adaptive::AdaptiveCompressor;
use compaqt_core::compress::{Compressor, Variant};
use compaqt_core::stats::{compress_library, LibraryReport};
use compaqt_hw::power::{CryoDesign, CryoPowerModel, PowerBreakdown};
use compaqt_pulse::device::Device;
use compaqt_pulse::library::GateKind;
use compaqt_quantum::errors::NoiseModel;
use compaqt_quantum::rb::{run_rb, RbConfig, RbQubits, RbResult};
use std::collections::BTreeMap;
use std::time::Instant;

/// The three compression variants compared throughout the evaluation,
/// for a given window size.
pub fn dct_variants(ws: usize) -> Vec<Variant> {
    vec![Variant::DctN, Variant::DctW { ws }, Variant::IntDctW { ws }]
}

/// Compresses one machine's library with one variant (reused by several
/// figures).
pub fn machine_report(machine: &str, variant: Variant) -> LibraryReport {
    let device = Device::named_machine(machine);
    let lib = device.pulse_library();
    compress_library(&lib, &Compressor::new(variant)).expect("supported window sizes")
}

/// Figure 7a: per-waveform compression ratios for representative
/// waveforms of the Guadalupe-class machine under all variants.
pub fn fig07a() -> Vec<(String, Vec<(String, f64)>)> {
    let device = Device::named_machine("guadalupe");
    let lib = device.pulse_library();
    let picks: Vec<(&GateKind, u16)> = vec![
        (&GateKind::Sx, 2),
        (&GateKind::Sx, 3),
        (&GateKind::Sx, 5),
        (&GateKind::Sx, 8),
        (&GateKind::Measure, 0),
    ];
    let variants =
        vec![Variant::Delta, Variant::DctN, Variant::DctW { ws: 16 }, Variant::IntDctW { ws: 16 }];
    let mut out = Vec::new();
    for (kind, qubit) in picks {
        let id = compaqt_pulse::library::GateId::single(kind.clone(), qubit);
        let wf = lib.get(&id).expect("gate exists on the device");
        let mut per = Vec::new();
        for &v in &variants {
            let z = Compressor::new(v).compress(wf).expect("supported");
            per.push((v.label(), z.ratio().ratio()));
        }
        out.push((format!("{id}"), per));
    }
    out
}

/// Figure 7b/7c: overall ratio and mean MSE over a whole library for
/// every variant and window size 8/16.
pub fn fig07bc(machine: &str) -> Vec<(String, f64, f64)> {
    let device = Device::named_machine(machine);
    let lib = device.pulse_library();
    let mut out = Vec::new();
    let delta = compress_library(&lib, &Compressor::new(Variant::Delta)).expect("delta");
    out.push(("Delta".to_string(), delta.overall.ratio(), delta.mean_mse()));
    let dct_n = compress_library(&lib, &Compressor::new(Variant::DctN)).expect("dct-n");
    out.push(("DCT-N".to_string(), dct_n.overall.ratio(), dct_n.mean_mse()));
    for ws in [8, 16] {
        for v in [Variant::DctW { ws }, Variant::IntDctW { ws }] {
            let r = compress_library(&lib, &Compressor::new(v)).expect("windowed");
            out.push((v.label(), r.overall.ratio(), r.mean_mse()));
        }
    }
    out
}

/// Figure 11: histogram of stored words per window for WS=8 and WS=16.
pub fn fig11() -> Vec<(usize, BTreeMap<usize, usize>)> {
    [8, 16]
        .into_iter()
        .map(|ws| {
            let report = machine_report("guadalupe", Variant::IntDctW { ws });
            (ws, report.samples_per_window_histogram())
        })
        .collect()
}

/// Figure 14: per-qubit mean compression ratio of each basis gate on the
/// 16-qubit machine (int-DCT-W, WS=16).
pub fn fig14() -> Vec<(u16, f64, f64, f64)> {
    let report = machine_report("guadalupe", Variant::IntDctW { ws: 16 });
    (0..16u16)
        .map(|q| {
            let sx = report.mean_ratio_of_kind_on_qubit(&GateKind::Sx, q).unwrap_or(0.0);
            let x = report.mean_ratio_of_kind_on_qubit(&GateKind::X, q).unwrap_or(0.0);
            let cx = report.mean_ratio_of_kind_on_qubit(&GateKind::Cx, q).unwrap_or(0.0);
            (q, sx, x, cx)
        })
        .collect()
}

/// Table VII: min/max/avg compression ratios for the five machines.
pub fn tab07() -> Vec<(String, f64, f64, f64)> {
    ["toronto", "montreal", "mumbai", "guadalupe", "lima"]
        .iter()
        .map(|m| {
            let report = machine_report(m, Variant::IntDctW { ws: 16 });
            let s = report.ratio_summary();
            (format!("IBM {m}"), s.min, s.max, s.avg)
        })
        .collect()
}

/// The RB experiment (Figure 9 / Table III): baseline and compressed
/// noise models for one machine seed.
pub fn rb_experiment(machine: &str, variant: Variant, config: &RbConfig) -> (RbResult, RbResult) {
    let device = Device::named_machine(machine);
    let lib = device.pulse_library();
    let baseline = NoiseModel::ibm_baseline();
    let compressed =
        NoiseModel::from_compression(baseline, &lib, &Compressor::new(variant)).expect("compress");
    let base = run_rb(RbQubits::Two, &baseline, config);
    let comp = run_rb(RbQubits::Two, &compressed, config);
    (base, comp)
}

/// Figure 18: the cryo power sweep, with compression statistics taken
/// from the actual library compression (average words per window and
/// capacity ratio).
pub fn fig18() -> Vec<(String, PowerBreakdown)> {
    let model = CryoPowerModel::default();
    let mut out = vec![("Uncompressed".to_string(), model.breakdown(&CryoDesign::Uncompressed))];
    for ws in [8, 16] {
        let report = machine_report("guadalupe", Variant::IntDctW { ws });
        let (words, cap) = library_power_stats(&report, ws);
        let b = model.breakdown(&CryoDesign::Compressed {
            ws,
            avg_words_per_window: words,
            capacity_ratio: cap,
        });
        out.push((format!("WS={ws}"), b));
    }
    out
}

/// Figure 19: adaptive decompression power on a 100 ns flat-top.
pub fn fig19() -> Vec<(String, PowerBreakdown)> {
    use compaqt_pulse::shapes::{GaussianSquare, PulseShape};
    let flat = GaussianSquare::new(454, 0.35, 12.0, 360).to_waveform("flat-100ns", 4.54);
    let model = CryoPowerModel::default();
    let mut out = vec![("Uncompressed".to_string(), model.breakdown(&CryoDesign::Uncompressed))];
    for ws in [8, 16] {
        let z = AdaptiveCompressor::new(Variant::IntDctW { ws })
            .compress(&flat)
            .expect("flat-top has a plateau");
        let plain = Compressor::new(Variant::IntDctW { ws }).compress(&flat).expect("ok");
        let words = mean_words_per_window(&plain);
        let b = model.breakdown(&CryoDesign::Adaptive {
            ws,
            avg_words_per_window: words,
            capacity_ratio: z.ratio().ratio(),
            bypass_fraction: z.bypass_fraction(),
        });
        out.push((format!("WS={ws} adaptive"), b));
    }
    out
}

/// Figure 20: mean compression time per waveform for three machines.
pub fn fig20() -> Vec<(String, usize, f64, f64)> {
    ["bogota", "guadalupe", "hanoi"]
        .iter()
        .map(|m| {
            let device = Device::named_machine(m);
            let lib = device.pulse_library();
            let mut times = Vec::new();
            for ws in [8, 16] {
                let c = Compressor::new(Variant::IntDctW { ws });
                let start = Instant::now();
                for (_, wf) in lib.iter() {
                    let _ = c.compress(wf).expect("supported");
                }
                times.push(start.elapsed().as_secs_f64() / lib.len() as f64);
            }
            (format!("ibm_{m}"), lib.len(), times[0], times[1])
        })
        .collect()
}

/// Table IX: compression ratios of the complex/emerging gate pulses.
pub fn tab09() -> Vec<(String, f64)> {
    let lib = compaqt_pulse::exotic::table_ix_library(7);
    let c = Compressor::new(Variant::IntDctW { ws: 16 });
    let mut out = Vec::new();
    let mut fluxonium = Vec::new();
    for (gate, wf) in lib.iter() {
        let r = c.compress(wf).expect("supported").ratio().ratio();
        let name = format!("{}", gate.kind);
        if name.starts_with("fluxonium") {
            fluxonium.push(r);
        } else {
            out.push((name, r));
        }
    }
    if !fluxonium.is_empty() {
        let avg = fluxonium.iter().sum::<f64>() / fluxonium.len() as f64;
        out.push(("Fluxonium X/X2/Y2/Z2 (avg)".to_string(), avg));
    }
    out
}

/// Compresses a large machine's library across an explicit number of
/// scoped worker threads (the calibration-cycle recompression path for
/// 100+ qubit machines). Returns `(waveforms, seconds, overall ratio)`.
///
/// For the thread-count-agnostic production path use
/// [`compaqt_core::batch::compress_library_par`]; this runner pins the
/// worker count so Figure 20 can report per-thread scaling.
pub fn parallel_compress_stats(machine: &str, ws: usize, threads: usize) -> (usize, f64, f64) {
    let device = Device::named_machine(machine);
    let lib = device.pulse_library();
    let waveforms: Vec<_> = lib.iter().map(|(_, wf)| wf.clone()).collect();
    let compressor = Compressor::new(Variant::IntDctW { ws });
    let start = Instant::now();
    let chunk = waveforms.len().div_ceil(threads.max(1));
    let sizes: Vec<(usize, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = waveforms
            .chunks(chunk)
            .map(|slice| {
                scope.spawn(move || {
                    let mut old = 0usize;
                    let mut new = 0usize;
                    for wf in slice {
                        let z = compressor.compress(wf).expect("supported");
                        let r = z.ratio();
                        old += r.old_size();
                        new += r.new_size();
                    }
                    (old, new)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker")).collect()
    });
    let secs = start.elapsed().as_secs_f64();
    let (old, new): (usize, usize) = sizes.iter().fold((0, 0), |(a, b), &(o, n)| (a + o, b + n));
    (waveforms.len(), secs, old as f64 / new.max(1) as f64)
}

/// Average stored words per window and capacity ratio of a compressed
/// library (the power model's inputs).
pub fn library_power_stats(report: &LibraryReport, _ws: usize) -> (f64, f64) {
    let hist = report.samples_per_window_histogram();
    let total: usize = hist.values().sum();
    let weighted: usize = hist.iter().map(|(&w, &n)| w * n).sum();
    let avg_words = weighted as f64 / total.max(1) as f64;
    (avg_words, report.overall.ratio())
}

fn mean_words_per_window(z: &compaqt_core::compress::CompressedWaveform) -> f64 {
    let counts: Vec<usize> =
        z.i.window_word_counts().into_iter().chain(z.q.window_word_counts()).collect();
    counts.iter().sum::<usize>() as f64 / counts.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig07a_covers_five_waveforms_and_four_variants() {
        let data = fig07a();
        assert_eq!(data.len(), 5);
        assert!(data.iter().all(|(_, per)| per.len() == 4));
    }

    #[test]
    fn tab07_averages_exceed_four() {
        for (machine, min, max, avg) in tab07() {
            assert!(avg > 4.0, "{machine}: avg {avg}");
            assert!(min <= avg && avg <= max);
        }
    }

    #[test]
    fn fig18_power_decreases_with_compression() {
        let rows = fig18();
        let base = rows[0].1.total_mw();
        for (name, b) in &rows[1..] {
            assert!(b.total_mw() < base, "{name}: {} vs {base}", b.total_mw());
        }
    }

    #[test]
    fn library_power_stats_are_sane() {
        let report = machine_report("lima", Variant::IntDctW { ws: 16 });
        let (words, cap) = library_power_stats(&report, 16);
        assert!((1.0..6.0).contains(&words), "words {words}");
        assert!(cap > 3.0, "cap {cap}");
    }
}
