//! Plain-text table rendering for the bench harnesses.

/// Prints a titled, column-aligned table.
pub fn table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!();
    println!("== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (k, cell) in row.iter().enumerate() {
            if k < widths.len() {
                widths[k] = widths[k].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let joined: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(k, c)| format!("{:width$}", c, width = widths.get(k).copied().unwrap_or(8)))
            .collect();
        println!("  {}", joined.join("  "));
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Renders a unit-interval value as an ASCII bar (for decay curves).
pub fn bar(value: f64, scale: usize) -> String {
    let filled = (value.clamp(0.0, 1.0) * scale as f64).round() as usize;
    format!("{}{}", "#".repeat(filled), ".".repeat(scale - filled))
}

/// Formats a float with engineering-friendly precision.
pub fn f(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else if v.abs() >= 1e-3 {
        format!("{v:.4}")
    } else {
        format!("{v:.2e}")
    }
}
