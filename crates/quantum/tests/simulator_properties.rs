//! Property tests of the quantum simulator substrate.

use compaqt_quantum::circuits::{self, Circuit, Op};
use compaqt_quantum::fidelity::{apply_readout_error, ideal_distribution};
use compaqt_quantum::gates;
use compaqt_quantum::linalg::{average_gate_fidelity, c, CMatrix};
use compaqt_quantum::state::{tvd, StateVector};
use compaqt_quantum::transpile::transpile;
use proptest::prelude::*;

fn random_unitary_strategy() -> impl Strategy<Value = CMatrix> {
    // Random products of H/S/T are dense in SU(2) enough for testing.
    proptest::collection::vec(0u8..3, 1..12).prop_map(|seq| {
        let mut u = CMatrix::identity(2);
        for g in seq {
            let m = match g {
                0 => gates::h(),
                1 => gates::s(),
                _ => gates::t(),
            };
            u = m.matmul(&u);
        }
        u
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_gate_words_are_unitary(u in random_unitary_strategy()) {
        prop_assert!(u.is_unitary(1e-10));
    }

    #[test]
    fn fidelity_is_symmetric_and_bounded(
        u in random_unitary_strategy(),
        v in random_unitary_strategy(),
    ) {
        let f_uv = average_gate_fidelity(&u, &v);
        let f_vu = average_gate_fidelity(&v, &u);
        prop_assert!((f_uv - f_vu).abs() < 1e-12);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&f_uv));
    }

    #[test]
    fn state_norm_is_preserved_by_any_circuit(ops in proptest::collection::vec(0u8..5, 1..40)) {
        let mut sv = StateVector::zero(3);
        for (k, g) in ops.iter().enumerate() {
            match g {
                0 => sv.apply_1q(k % 3, &gates::h()),
                1 => sv.apply_1q(k % 3, &gates::t()),
                2 => sv.apply_2q(k % 3, (k + 1) % 3, &gates::cx()),
                3 => sv.apply_1q(k % 3, &gates::sx()),
                _ => sv.apply_2q((k + 1) % 3, k % 3, &gates::cz()),
            }
        }
        prop_assert!((sv.norm() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn readout_error_preserves_total_probability(
        raw in proptest::collection::vec(0.0f64..1.0, 8),
        eps in 0.0f64..0.2,
    ) {
        let total: f64 = raw.iter().sum();
        prop_assume!(total > 1e-9);
        let dist: Vec<f64> = raw.iter().map(|v| v / total).collect();
        let out = apply_readout_error(&dist, 3, eps);
        prop_assert!((out.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(out.iter().all(|&p| p >= -1e-12));
    }

    #[test]
    fn tvd_is_a_metric(
        a_raw in proptest::collection::vec(0.01f64..1.0, 4),
        b_raw in proptest::collection::vec(0.01f64..1.0, 4),
    ) {
        let norm = |v: &[f64]| {
            let s: f64 = v.iter().sum();
            v.iter().map(|x| x / s).collect::<Vec<f64>>()
        };
        let a = norm(&a_raw);
        let b = norm(&b_raw);
        prop_assert!(tvd(&a, &a) < 1e-12);
        prop_assert!((tvd(&a, &b) - tvd(&b, &a)).abs() < 1e-12);
        prop_assert!(tvd(&a, &b) <= 1.0 + 1e-12);
    }

    #[test]
    fn transpilation_preserves_distributions(layers in 1usize..3, seed in 0u64..50) {
        let circuit = circuits::qaoa(4, layers, seed);
        let t = transpile(&circuit);
        let da = ideal_distribution(&circuit);
        let db = ideal_distribution(&t);
        prop_assert!(tvd(&da, &db) < 1e-9, "tvd {}", tvd(&da, &db));
    }

    #[test]
    fn bv_always_finds_its_secret(secret in 0u64..32) {
        let c_ = circuits::bernstein_vazirani(5, secret);
        let d = ideal_distribution(&c_);
        let mass: f64 = d
            .iter()
            .enumerate()
            .filter(|(k, _)| (*k as u64) & 0b11111 == secret)
            .map(|(_, &p)| p)
            .sum();
        prop_assert!((mass - 1.0).abs() < 1e-9);
    }

    #[test]
    fn qft_echo_returns_to_input(n in 2usize..6) {
        let c_ = circuits::qft(n);
        let d = ideal_distribution(&c_);
        // The echoed QFT leaves a basis state: one outcome holds all mass.
        let peak = d.iter().cloned().fold(0.0, f64::max);
        prop_assert!((peak - 1.0).abs() < 1e-9, "peak {peak}");
    }

    #[test]
    fn rz_commutes_with_measurement_distribution(theta in -3.0f64..3.0) {
        // Virtual Z before measurement must not change probabilities.
        let mut with = Circuit::new("w", 2);
        with.push(Op::H(0));
        with.push(Op::Cx(0, 1));
        with.push(Op::Rz(0, theta));
        with.measure_all();
        let mut without = Circuit::new("wo", 2);
        without.push(Op::H(0));
        without.push(Op::Cx(0, 1));
        without.measure_all();
        let a = ideal_distribution(&with);
        let b = ideal_distribution(&without);
        prop_assert!(tvd(&a, &b) < 1e-12);
    }

    #[test]
    fn expm_of_scaled_pauli_is_rotation(theta in -6.0f64..6.0) {
        let gen = gates::x().scale(c(0.0, -theta / 2.0));
        let u = gen.expm();
        let expect = gates::rx(theta);
        prop_assert!(u.distance(&expect) < 1e-9);
    }
}
