//! Surface-code patches and syndrome-extraction schedules.
//!
//! The scalability benchmarks (Table VI: surface-17, surface-25; Figure
//! 5c: surface-81) are syndrome-measurement cycles of surface-code
//! patches. QEC cycles drive >80% of the patch's qubits concurrently
//! (Figure 17a), which is what makes waveform-memory bandwidth the
//! binding constraint for fault tolerance.
//!
//! * surface-17: rotated distance-3 patch (9 data + 8 ancilla).
//! * surface-25 / surface-81: unrotated distance-3/5 patches
//!   (`(2d-1)^2` qubits).

use crate::circuits::{Circuit, Op};
use serde::{Deserialize, Serialize};

/// A surface-code stabilizer: its ancilla qubit and data-qubit supports.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stabilizer {
    /// Ancilla qubit index.
    pub ancilla: usize,
    /// Data qubits in interaction order (N/E/W/S style ordering).
    pub data: Vec<usize>,
    /// X-type (true) or Z-type (false).
    pub is_x: bool,
}

/// A surface-code patch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurfacePatch {
    /// Human-readable name (e.g. `surface-25`).
    pub name: String,
    /// Code distance.
    pub distance: usize,
    /// Total qubits (data + ancilla).
    pub n_qubits: usize,
    /// Data-qubit count.
    pub n_data: usize,
    /// The stabilizers.
    pub stabilizers: Vec<Stabilizer>,
}

impl SurfacePatch {
    /// The rotated distance-3 patch: 9 data qubits (indices 0-8, row
    /// major 3x3) and 8 ancillas (indices 9-16) — the paper's surface-17.
    pub fn rotated_d3() -> Self {
        // Standard rotated-d3 stabilizer supports.
        let z_supports: [&[usize]; 4] = [&[0, 1, 3, 4], &[4, 5, 7, 8], &[2, 5], &[3, 6]];
        let x_supports: [&[usize]; 4] = [&[1, 2, 4, 5], &[3, 4, 6, 7], &[0, 1], &[7, 8]];
        let mut stabilizers = Vec::new();
        let mut anc = 9;
        for s in z_supports {
            stabilizers.push(Stabilizer { ancilla: anc, data: s.to_vec(), is_x: false });
            anc += 1;
        }
        for s in x_supports {
            stabilizers.push(Stabilizer { ancilla: anc, data: s.to_vec(), is_x: true });
            anc += 1;
        }
        SurfacePatch {
            name: "surface-17".to_string(),
            distance: 3,
            n_qubits: 17,
            n_data: 9,
            stabilizers,
        }
    }

    /// An unrotated distance-`d` patch on a `(2d-1) x (2d-1)` lattice:
    /// data qubits on even-parity sites, ancillas on odd-parity sites
    /// (25 qubits for d=3, 81 for d=5).
    ///
    /// # Panics
    ///
    /// Panics if `d < 2`.
    pub fn unrotated(d: usize) -> Self {
        assert!(d >= 2, "distance must be at least 2");
        let side = 2 * d - 1;
        let n = side * side;
        let idx = |r: usize, c_: usize| r * side + c_;
        let mut n_data = 0;
        for r in 0..side {
            for c_ in 0..side {
                if (r + c_) % 2 == 0 {
                    n_data += 1;
                }
            }
        }
        let mut stabilizers = Vec::new();
        for r in 0..side {
            for c_ in 0..side {
                if (r + c_) % 2 == 1 {
                    // Ancilla site: neighbours N/E/W/S within the lattice.
                    let mut data = Vec::new();
                    if r > 0 {
                        data.push(idx(r - 1, c_));
                    }
                    if c_ + 1 < side {
                        data.push(idx(r, c_ + 1));
                    }
                    if c_ > 0 {
                        data.push(idx(r, c_ - 1));
                    }
                    if r + 1 < side {
                        data.push(idx(r + 1, c_));
                    }
                    // Ancillas on odd rows measure Z, even rows X (the
                    // two interleaved sublattices).
                    stabilizers.push(Stabilizer { ancilla: idx(r, c_), data, is_x: r % 2 == 0 });
                }
            }
        }
        SurfacePatch { name: format!("surface-{n}"), distance: d, n_qubits: n, n_data, stabilizers }
    }

    /// One syndrome-extraction cycle as a gate circuit: H on X ancillas,
    /// four interleaved CX rounds, H, then concurrent ancilla readout.
    pub fn syndrome_cycle(&self) -> Circuit {
        let mut c = Circuit::new(format!("{}-cycle", self.name), self.n_qubits);
        for s in &self.stabilizers {
            if s.is_x {
                c.push(Op::H(s.ancilla));
            }
        }
        let rounds = self.stabilizers.iter().map(|s| s.data.len()).max().unwrap_or(0);
        for round in 0..rounds {
            for s in &self.stabilizers {
                if let Some(&d) = s.data.get(round) {
                    if s.is_x {
                        c.push(Op::Cx(s.ancilla, d));
                    } else {
                        c.push(Op::Cx(d, s.ancilla));
                    }
                }
            }
        }
        for s in &self.stabilizers {
            if s.is_x {
                c.push(Op::H(s.ancilla));
            }
        }
        for s in &self.stabilizers {
            c.push(Op::Measure(s.ancilla));
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{asap, profile};
    use crate::transpile::transpile;
    use compaqt_pulse::vendor::Vendor;

    #[test]
    fn rotated_d3_has_17_qubits_and_8_stabilizers() {
        let p = SurfacePatch::rotated_d3();
        assert_eq!(p.n_qubits, 17);
        assert_eq!(p.n_data, 9);
        assert_eq!(p.stabilizers.len(), 8);
        // Weight-4 interior + weight-2 boundary stabilizers.
        let w4 = p.stabilizers.iter().filter(|s| s.data.len() == 4).count();
        let w2 = p.stabilizers.iter().filter(|s| s.data.len() == 2).count();
        assert_eq!((w4, w2), (4, 4));
    }

    #[test]
    fn unrotated_sizes_match_paper() {
        assert_eq!(SurfacePatch::unrotated(3).n_qubits, 25);
        assert_eq!(SurfacePatch::unrotated(5).n_qubits, 81);
        assert_eq!(SurfacePatch::unrotated(3).stabilizers.len(), 12);
    }

    #[test]
    fn every_data_qubit_is_checked() {
        let p = SurfacePatch::unrotated(3);
        let mut covered = vec![false; p.n_qubits];
        for s in &p.stabilizers {
            for &d in &s.data {
                covered[d] = true;
            }
        }
        let data_sites = (0..p.n_qubits).filter(|&k| {
            let side = 5;
            (k / side + k % side) % 2 == 0
        });
        for k in data_sites {
            assert!(covered[k], "data qubit {k} unchecked");
        }
    }

    #[test]
    fn syndrome_cycle_drives_most_qubits_concurrently() {
        // Figure 17a: >80% of physical qubits driven concurrently.
        for patch in [SurfacePatch::rotated_d3(), SurfacePatch::unrotated(3)] {
            let cycle = transpile(&patch.syndrome_cycle());
            let sched = asap(&cycle, &Vendor::Ibm.params());
            let prof = profile(&sched, 1.0);
            let frac = prof.peak_channels as f64 / patch.n_qubits as f64;
            assert!(frac > 0.7, "{}: peak fraction {frac}", patch.name);
        }
    }

    #[test]
    fn surface_average_is_close_to_peak() {
        // Figure 5c: surface codes have avg close to peak (unlike QAOA).
        let cycle = transpile(&SurfacePatch::unrotated(3).syndrome_cycle());
        let sched = asap(&cycle, &Vendor::Ibm.params());
        let prof = profile(&sched, 24.0);
        assert!(
            prof.average_bandwidth_gb > 0.4 * prof.peak_bandwidth_gb,
            "avg {} peak {}",
            prof.average_bandwidth_gb,
            prof.peak_bandwidth_gb
        );
    }

    #[test]
    fn cx_rounds_alternate_direction_by_type() {
        let p = SurfacePatch::rotated_d3();
        let cycle = p.syndrome_cycle();
        // X-stabilizer CXs have the ancilla as control; Z-type as target.
        let mut x_ctrl = 0;
        let mut z_tgt = 0;
        for op in &cycle.ops {
            if let Op::Cx(ctrl, tgt) = op {
                if *ctrl >= 9 {
                    x_ctrl += 1;
                }
                if *tgt >= 9 {
                    z_tgt += 1;
                }
            }
        }
        assert!(x_ctrl > 0 && z_tgt > 0);
    }
}
