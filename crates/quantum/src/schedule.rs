//! ASAP pulse scheduling and bandwidth-demand profiling (Figure 5c).
//!
//! Peak waveform-memory bandwidth is set by the maximum number of qubits
//! driven concurrently; average bandwidth by the mean concurrency over
//! the circuit. NISQ circuits are bursty (low average, full-width peak at
//! the final measurement); surface-code cycles run near-constant
//! concurrency — which is why QEC makes bandwidth the binding constraint.

use crate::circuits::{Circuit, Op};
use compaqt_pulse::vendor::VendorParams;
use serde::{Deserialize, Serialize};

/// One scheduled operation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduledOp {
    /// The operation.
    pub op: Op,
    /// Start time in ns.
    pub start_ns: f64,
    /// Duration in ns (0 for virtual gates).
    pub duration_ns: f64,
}

/// An ASAP schedule of a circuit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Schedule {
    /// Scheduled operations.
    pub ops: Vec<ScheduledOp>,
    /// Total duration in ns.
    pub makespan_ns: f64,
    /// Number of qubits.
    pub n_qubits: usize,
}

/// Schedules a circuit as-soon-as-possible with the vendor's gate
/// latencies. Virtual RZ gates take zero time; measurements of different
/// qubits run concurrently (serializing readout degrades fidelity,
/// Section III-A).
pub fn asap(circuit: &Circuit, params: &VendorParams) -> Schedule {
    let mut qubit_free = vec![0.0f64; circuit.n_qubits];
    let mut ops = Vec::with_capacity(circuit.ops.len());
    for &op in &circuit.ops {
        let duration = duration_ns(op, params);
        let qs = op.qubits();
        let start = qs.iter().map(|&q| qubit_free[q]).fold(0.0, f64::max);
        for &q in &qs {
            qubit_free[q] = start + duration;
        }
        ops.push(ScheduledOp { op, start_ns: start, duration_ns: duration });
    }
    let makespan_ns = qubit_free.iter().cloned().fold(0.0, f64::max);
    Schedule { ops, makespan_ns, n_qubits: circuit.n_qubits }
}

/// Pulse duration of an operation under a vendor parameter set.
pub fn duration_ns(op: Op, params: &VendorParams) -> f64 {
    match op {
        Op::Rz(..) => 0.0,
        Op::Measure(_) => params.tau_readout_ns,
        Op::X(_) | Op::Sx(_) | Op::H(_) => params.tau_1q_ns,
        // Composite ops count one 2Q latency per entangler here; lower to
        // the basis first for exact budgets.
        Op::Cx(..) | Op::Cz(..) | Op::Cp(..) | Op::Swap(..) | Op::Ccx(..) => params.tau_2q_ns,
    }
}

/// Concurrency and bandwidth profile of a schedule.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BandwidthProfile {
    /// Peak number of concurrently driven qubit channels.
    pub peak_channels: usize,
    /// Time-averaged driven channels (over the makespan).
    pub average_channels: f64,
    /// Peak number of concurrent gates.
    pub peak_gates: usize,
    /// Peak memory bandwidth in GB/s.
    pub peak_bandwidth_gb: f64,
    /// Average memory bandwidth in GB/s.
    pub average_bandwidth_gb: f64,
}

/// Profiles a schedule: sweeps time events, counting driven qubit
/// channels (every qubit of an active non-virtual gate streams a
/// waveform) and converting to bandwidth at `bw_per_channel_gb`.
pub fn profile(schedule: &Schedule, bw_per_channel_gb: f64) -> BandwidthProfile {
    let mut events: Vec<(f64, i64, i64)> = Vec::new(); // (time, d_channels, d_gates)
    for sop in &schedule.ops {
        if sop.op.is_virtual() || sop.duration_ns == 0.0 {
            continue;
        }
        let ch = sop.op.qubits().len() as i64;
        events.push((sop.start_ns, ch, 1));
        events.push((sop.start_ns + sop.duration_ns, -ch, -1));
    }
    events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut channels = 0i64;
    let mut gates = 0i64;
    let mut peak_channels = 0i64;
    let mut peak_gates = 0i64;
    let mut weighted = 0.0;
    let mut last_t = 0.0;
    for (t, dc, dg) in events {
        weighted += channels as f64 * (t - last_t);
        last_t = t;
        channels += dc;
        gates += dg;
        peak_channels = peak_channels.max(channels);
        peak_gates = peak_gates.max(gates);
    }
    let average_channels =
        if schedule.makespan_ns > 0.0 { weighted / schedule.makespan_ns } else { 0.0 };
    BandwidthProfile {
        peak_channels: peak_channels as usize,
        average_channels,
        peak_gates: peak_gates as usize,
        peak_bandwidth_gb: peak_channels as f64 * bw_per_channel_gb,
        average_bandwidth_gb: average_channels * bw_per_channel_gb,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuits;
    use crate::transpile::transpile;
    use compaqt_pulse::vendor::Vendor;

    #[test]
    fn serial_ops_do_not_overlap() {
        let mut c = Circuit::new("serial", 1);
        c.push(Op::X(0));
        c.push(Op::X(0));
        let s = asap(&c, &Vendor::Ibm.params());
        assert_eq!(s.ops[1].start_ns, s.ops[0].duration_ns);
        assert_eq!(s.makespan_ns, 60.0);
    }

    #[test]
    fn independent_ops_run_concurrently() {
        let mut c = Circuit::new("par", 2);
        c.push(Op::X(0));
        c.push(Op::X(1));
        let s = asap(&c, &Vendor::Ibm.params());
        assert_eq!(s.ops[0].start_ns, s.ops[1].start_ns);
        let p = profile(&s, 1.0);
        assert_eq!(p.peak_channels, 2);
    }

    #[test]
    fn virtual_rz_takes_no_time() {
        let mut c = Circuit::new("rz", 1);
        c.push(Op::Rz(0, 1.0));
        c.push(Op::X(0));
        let s = asap(&c, &Vendor::Ibm.params());
        assert_eq!(s.ops[1].start_ns, 0.0);
    }

    #[test]
    fn final_measurement_peaks_at_all_qubits() {
        // Section III-A: "the last step of all NISQ circuits involves the
        // concurrent measurement of all qubits".
        let c = transpile(&circuits::qaoa(10, 2, 1));
        let s = asap(&c, &Vendor::Ibm.params());
        let p = profile(&s, 1.0);
        assert_eq!(p.peak_channels, 10);
    }

    #[test]
    fn qaoa_average_is_far_below_peak() {
        // Figure 5c: QAOA is not bandwidth intensive on average.
        let c = transpile(&circuits::qaoa(10, 3, 2));
        let s = asap(&c, &Vendor::Ibm.params());
        let p = profile(&s, 24.0);
        assert!(
            p.average_bandwidth_gb < 0.6 * p.peak_bandwidth_gb,
            "avg {} peak {}",
            p.average_bandwidth_gb,
            p.peak_bandwidth_gb
        );
    }

    #[test]
    fn bandwidth_scales_with_channel_rate() {
        let c = transpile(&circuits::qft(4));
        let s = asap(&c, &Vendor::Ibm.params());
        let p1 = profile(&s, 1.0);
        let p24 = profile(&s, 24.0);
        assert!((p24.peak_bandwidth_gb - 24.0 * p1.peak_bandwidth_gb).abs() < 1e-9);
    }

    #[test]
    fn makespan_covers_all_ops() {
        let c = transpile(&circuits::qft(4));
        let s = asap(&c, &Vendor::Ibm.params());
        for op in &s.ops {
            assert!(op.start_ns + op.duration_ns <= s.makespan_ns + 1e-9);
        }
    }
}
