//! Circuit fidelity via total variational distance (Section VI, Eq. 3).
//!
//! `F(P, Q) = 1 - TVD(P, Q)` between the ideal output distribution and
//! the noisy one. The paper compares `F` with compressed versus
//! uncompressed waveforms (normalized fidelity, Figure 15); the noisy
//! distribution is produced by Monte-Carlo noise trajectories over the
//! state-vector simulator.

use crate::circuits::{Circuit, Op};
use crate::errors::NoiseModel;
use crate::gates;
use crate::state::{tvd, StateVector};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Applies one operation ideally.
fn apply_op(sv: &mut StateVector, op: Op) {
    match op {
        Op::X(q) => sv.apply_1q(q, &gates::x()),
        Op::Sx(q) => sv.apply_1q(q, &gates::sx()),
        Op::H(q) => sv.apply_1q(q, &gates::h()),
        Op::Rz(q, theta) => sv.apply_1q(q, &gates::rz(theta)),
        Op::Cx(c_, t) => sv.apply_2q(c_, t, &gates::cx()),
        Op::Cz(a, b) => sv.apply_2q(a, b, &gates::cz()),
        Op::Cp(a, b, theta) => sv.apply_2q(a, b, &gates::cp(theta)),
        Op::Swap(a, b) => sv.apply_2q(a, b, &gates::swap()),
        Op::Ccx(a, b, t) => sv.apply_3q(a, b, t, &gates::toffoli()),
        Op::Measure(_) => {}
    }
}

/// The ideal (noiseless) output distribution of a circuit.
pub fn ideal_distribution(circuit: &Circuit) -> Vec<f64> {
    let mut sv = StateVector::zero(circuit.n_qubits);
    for &op in &circuit.ops {
        apply_op(&mut sv, op);
    }
    sv.probabilities()
}

/// Simulates the circuit under a noise model, averaging over Monte-Carlo
/// noise trajectories, and returns the output distribution including
/// readout error.
pub fn noisy_distribution(
    circuit: &Circuit,
    noise: &NoiseModel,
    trajectories: usize,
    seed: u64,
) -> Vec<f64> {
    let dim = 1usize << circuit.n_qubits;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut acc = vec![0.0; dim];
    for _ in 0..trajectories {
        let mut sv = StateVector::zero(circuit.n_qubits);
        for &op in &circuit.ops {
            apply_op(&mut sv, op);
            apply_noise(&mut sv, op, noise, &mut rng);
        }
        for (a, p) in acc.iter_mut().zip(sv.probabilities()) {
            *a += p;
        }
    }
    for a in &mut acc {
        *a /= trajectories as f64;
    }
    apply_readout_error(&acc, circuit.n_qubits, noise.readout_error)
}

/// Applies per-gate stochastic and coherent noise after an operation.
fn apply_noise(sv: &mut StateVector, op: Op, noise: &NoiseModel, rng: &mut StdRng) {
    if op.is_virtual() || matches!(op, Op::Measure(_)) {
        return;
    }
    let qubits = op.qubits();
    let (epg, coherent) = if qubits.len() == 1 {
        (noise.epg_1q, noise.coherent_1q_angle)
    } else {
        (noise.epg_2q, noise.coherent_2q_angle)
    };
    let paulis = [gates::x(), gates::y(), gates::z()];
    for &q in &qubits {
        if rng.random::<f64>() < epg {
            sv.apply_1q(q, &paulis[rng.random_range(0..3)]);
        }
        if coherent != 0.0 {
            sv.apply_1q(q, &gates::rx(coherent));
        }
    }
}

/// Convolves a distribution with independent per-qubit readout bit flips.
pub fn apply_readout_error(dist: &[f64], n_qubits: usize, eps: f64) -> Vec<f64> {
    if eps == 0.0 {
        return dist.to_vec();
    }
    let mut cur = dist.to_vec();
    for q in 0..n_qubits {
        let bit = 1usize << q;
        let mut next = vec![0.0; cur.len()];
        for (k, &p) in cur.iter().enumerate() {
            next[k] += p * (1.0 - eps);
            next[k ^ bit] += p * eps;
        }
        cur = next;
    }
    cur
}

/// Benchmark fidelity `F = 1 - TVD(ideal, noisy)` (Eq. 3).
pub fn benchmark_fidelity(
    circuit: &Circuit,
    noise: &NoiseModel,
    trajectories: usize,
    seed: u64,
) -> f64 {
    let ideal = ideal_distribution(circuit);
    let noisy = noisy_distribution(circuit, noise, trajectories, seed);
    1.0 - tvd(&ideal, &noisy)
}

/// Normalized fidelity: compressed over baseline (Figure 15's metric).
///
/// Both runs use the same seed (common random numbers): the stochastic
/// Pauli draws are identical, so the ratio isolates the coherent
/// distortion added by compression — mirroring how the paper runs both
/// pulse sets back-to-back on the same machine.
pub fn normalized_fidelity(
    circuit: &Circuit,
    baseline: &NoiseModel,
    compressed: &NoiseModel,
    trajectories: usize,
    seed: u64,
) -> f64 {
    let f_base = benchmark_fidelity(circuit, baseline, trajectories, seed);
    let f_comp = benchmark_fidelity(circuit, compressed, trajectories, seed);
    f_comp / f_base.max(1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuits;

    #[test]
    fn ideal_bv_recovers_secret() {
        let secret = 0b1011u64;
        let c = circuits::bernstein_vazirani(4, secret);
        let d = ideal_distribution(&c);
        // Data qubits end in |secret>; the ancilla is in |->, spreading
        // probability over the ancilla bit only.
        let data_mass: f64 = d
            .iter()
            .enumerate()
            .filter(|(k, _)| (*k as u64) & 0b1111 == secret)
            .map(|(_, &p)| p)
            .sum();
        assert!((data_mass - 1.0).abs() < 1e-10, "got {data_mass}");
    }

    #[test]
    fn noiseless_matches_ideal() {
        let c = circuits::qft(3);
        let noisy = noisy_distribution(&c, &NoiseModel::noiseless(), 3, 1);
        let ideal = ideal_distribution(&c);
        assert!(tvd(&ideal, &noisy) < 1e-12);
    }

    #[test]
    fn fidelity_decreases_with_noise() {
        let c = circuits::qft(4);
        let light = benchmark_fidelity(&c, &NoiseModel::ibm_baseline(), 40, 3);
        let mut heavy_model = NoiseModel::ibm_baseline();
        heavy_model.epg_2q *= 10.0;
        heavy_model.readout_error *= 3.0;
        let heavy = benchmark_fidelity(&c, &heavy_model, 40, 3);
        assert!(light > heavy, "light {light} vs heavy {heavy}");
    }

    #[test]
    fn readout_convolution_conserves_probability() {
        let d = vec![0.5, 0.25, 0.25, 0.0];
        let out = apply_readout_error(&d, 2, 0.03);
        assert!((out.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(out[3] > 0.0, "flips populate empty outcomes");
    }

    #[test]
    fn normalized_fidelity_near_one_for_tiny_distortion() {
        // Figure 15: WS=16 shows no visible degradation.
        let c = circuits::swap();
        let base = NoiseModel::ibm_baseline();
        let comp = NoiseModel::ibm_baseline().with_distortion(3e-5, 3e-5);
        let nf = normalized_fidelity(&c, &base, &comp, 200, 5);
        assert!((0.97..=1.03).contains(&nf), "got {nf}");
    }

    #[test]
    fn large_distortion_hurts() {
        let c = circuits::qft(4);
        let base = NoiseModel::ibm_baseline();
        let comp = NoiseModel::ibm_baseline().with_distortion(5e-3, 5e-3);
        let nf = normalized_fidelity(&c, &base, &comp, 150, 7);
        assert!(nf < 1.0, "got {nf}");
    }
}
