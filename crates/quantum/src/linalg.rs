//! Minimal complex linear algebra for quantum simulation.
//!
//! The quantum substrate needs only small dense complex matrices (2x2 to
//! 8x8 gate unitaries, 3x3 transmon Hamiltonians) and state vectors, so we
//! implement exactly that rather than pulling in a linear-algebra crate.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// A complex number (f64 components).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// Shorthand constructor for a complex number.
pub const fn c(re: f64, im: f64) -> Complex {
    Complex { re, im }
}

/// The complex zero.
pub const C_ZERO: Complex = c(0.0, 0.0);
/// The complex one.
pub const C_ONE: Complex = c(1.0, 0.0);
/// The imaginary unit.
pub const C_I: Complex = c(0.0, 1.0);

impl Complex {
    /// Complex conjugate.
    pub fn conj(self) -> Complex {
        c(self.re, -self.im)
    }

    /// Squared magnitude `|z|^2`.
    pub fn abs2(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.abs2().sqrt()
    }

    /// `e^{i theta}`.
    pub fn from_phase(theta: f64) -> Complex {
        let (s, co) = theta.sin_cos();
        c(co, s)
    }

    /// Whether both components are finite.
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        c(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        c(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        c(self.re * rhs.re - self.im * rhs.im, self.re * rhs.im + self.im * rhs.re)
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, rhs: f64) -> Complex {
        c(self.re * rhs, self.im * rhs)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    fn div(self, rhs: f64) -> Complex {
        c(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        c(-self.re, -self.im)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:+.4}{:+.4}i", self.re, self.im)
    }
}

/// A dense square complex matrix (row major).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CMatrix {
    n: usize,
    data: Vec<Complex>,
}

impl CMatrix {
    /// The `n x n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        CMatrix { n, data: vec![C_ZERO; n * n] }
    }

    /// The `n x n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = CMatrix::zeros(n);
        for k in 0..n {
            m[(k, k)] = C_ONE;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows are not square.
    pub fn from_rows(rows: &[&[Complex]]) -> Self {
        let n = rows.len();
        let mut m = CMatrix::zeros(n);
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), n, "matrix must be square");
            for (col, &v) in row.iter().enumerate() {
                m[(r, col)] = v;
            }
        }
        m
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn matmul(&self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.n, rhs.n, "dimension mismatch");
        let n = self.n;
        let mut out = CMatrix::zeros(n);
        for i in 0..n {
            for k in 0..n {
                let a = self[(i, k)];
                if a.abs2() == 0.0 {
                    continue;
                }
                for j in 0..n {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// Conjugate transpose.
    pub fn adjoint(&self) -> CMatrix {
        let n = self.n;
        let mut out = CMatrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                out[(j, i)] = self[(i, j)].conj();
            }
        }
        out
    }

    /// Scales every entry.
    pub fn scale(&self, s: Complex) -> CMatrix {
        CMatrix { n: self.n, data: self.data.iter().map(|&v| v * s).collect() }
    }

    /// Entry-wise sum.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn add(&self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.n, rhs.n, "dimension mismatch");
        CMatrix { n: self.n, data: self.data.iter().zip(&rhs.data).map(|(&a, &b)| a + b).collect() }
    }

    /// Trace.
    pub fn trace(&self) -> Complex {
        (0..self.n).fold(C_ZERO, |acc, k| acc + self[(k, k)])
    }

    /// Kronecker (tensor) product `self (x) rhs`.
    pub fn kron(&self, rhs: &CMatrix) -> CMatrix {
        let (a, b) = (self.n, rhs.n);
        let n = a * b;
        let mut out = CMatrix::zeros(n);
        for i in 0..a {
            for j in 0..a {
                let v = self[(i, j)];
                if v.abs2() == 0.0 {
                    continue;
                }
                for p in 0..b {
                    for q in 0..b {
                        out[(i * b + p, j * b + q)] = v * rhs[(p, q)];
                    }
                }
            }
        }
        out
    }

    /// Largest absolute row sum (induced infinity norm), used to scale the
    /// matrix exponential.
    pub fn norm_inf(&self) -> f64 {
        (0..self.n)
            .map(|i| (0..self.n).map(|j| self[(i, j)].abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Matrix exponential `exp(self)` by scaling-and-squaring with a
    /// Taylor series — accurate for the small anti-Hermitian matrices the
    /// simulator produces (`-i H dt`).
    pub fn expm(&self) -> CMatrix {
        let norm = self.norm_inf();
        let s = if norm > 0.5 { (norm / 0.5).log2().ceil() as u32 } else { 0 };
        let scaled = self.scale(c(1.0 / 2f64.powi(s as i32), 0.0));
        // Taylor to machine precision for ||A|| <= 0.5 (~20 terms).
        let mut result = CMatrix::identity(self.n);
        let mut term = CMatrix::identity(self.n);
        for k in 1..=24 {
            term = term.matmul(&scaled).scale(c(1.0 / k as f64, 0.0));
            result = result.add(&term);
            if term.norm_inf() < 1e-18 {
                break;
            }
        }
        for _ in 0..s {
            result = result.matmul(&result);
        }
        result
    }

    /// Frobenius distance to another matrix.
    pub fn distance(&self, rhs: &CMatrix) -> f64 {
        assert_eq!(self.n, rhs.n, "dimension mismatch");
        self.data.iter().zip(&rhs.data).map(|(&a, &b)| (a - b).abs2()).sum::<f64>().sqrt()
    }

    /// Checks unitarity within `tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        self.adjoint().matmul(self).distance(&CMatrix::identity(self.n)) < tol
    }
}

impl std::ops::Index<(usize, usize)> for CMatrix {
    type Output = Complex;
    fn index(&self, (i, j): (usize, usize)) -> &Complex {
        &self.data[i * self.n + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for CMatrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Complex {
        &mut self.data[i * self.n + j]
    }
}

/// Average gate fidelity between two unitaries of dimension `d`:
/// `F = (|Tr(U^dag V)|^2 + d) / (d^2 + d)`.
///
/// # Panics
///
/// Panics on dimension mismatch.
pub fn average_gate_fidelity(u: &CMatrix, v: &CMatrix) -> f64 {
    assert_eq!(u.dim(), v.dim(), "dimension mismatch");
    let d = u.dim() as f64;
    let tr = u.adjoint().matmul(v).trace();
    (tr.abs2() + d) / (d * d + d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complex_arithmetic() {
        let a = c(1.0, 2.0);
        let b = c(3.0, -1.0);
        assert_eq!(a + b, c(4.0, 1.0));
        assert_eq!(a * b, c(5.0, 5.0));
        assert_eq!(a.conj(), c(1.0, -2.0));
        assert!((a.abs2() - 5.0).abs() < 1e-15);
        assert!((Complex::from_phase(std::f64::consts::PI).re + 1.0).abs() < 1e-15);
    }

    #[test]
    fn identity_is_multiplicative_unit() {
        let m = CMatrix::from_rows(&[&[c(1.0, 1.0), c(0.5, 0.0)], &[c(0.0, -1.0), c(2.0, 0.0)]]);
        let i = CMatrix::identity(2);
        assert_eq!(m.matmul(&i), m);
        assert_eq!(i.matmul(&m), m);
    }

    #[test]
    fn adjoint_squares_to_identity_for_unitaries() {
        // Hadamard.
        let s = 1.0 / 2f64.sqrt();
        let h = CMatrix::from_rows(&[&[c(s, 0.0), c(s, 0.0)], &[c(s, 0.0), c(-s, 0.0)]]);
        assert!(h.is_unitary(1e-12));
        assert!(h.matmul(&h).distance(&CMatrix::identity(2)) < 1e-12);
    }

    #[test]
    fn expm_of_zero_is_identity() {
        assert!(CMatrix::zeros(3).expm().distance(&CMatrix::identity(3)) < 1e-15);
    }

    #[test]
    fn expm_matches_rotation_formula() {
        // exp(-i theta X / 2) = cos(t/2) I - i sin(t/2) X.
        let theta = 1.234;
        let x = CMatrix::from_rows(&[&[C_ZERO, C_ONE], &[C_ONE, C_ZERO]]);
        let gen = x.scale(c(0.0, -theta / 2.0));
        let u = gen.expm();
        let expect = CMatrix::from_rows(&[
            &[c((theta / 2.0).cos(), 0.0), c(0.0, -(theta / 2.0).sin())],
            &[c(0.0, -(theta / 2.0).sin()), c((theta / 2.0).cos(), 0.0)],
        ]);
        assert!(u.distance(&expect) < 1e-12, "distance {}", u.distance(&expect));
    }

    #[test]
    fn expm_is_unitary_for_anti_hermitian_input() {
        // -i H for Hermitian H with a large norm (exercises squaring).
        let h = CMatrix::from_rows(&[
            &[c(3.0, 0.0), c(1.0, 2.0), c(0.0, 0.5)],
            &[c(1.0, -2.0), c(-1.0, 0.0), c(0.3, 0.0)],
            &[c(0.0, -0.5), c(0.3, 0.0), c(2.0, 0.0)],
        ]);
        let u = h.scale(c(0.0, -1.0)).expm();
        assert!(u.is_unitary(1e-10));
    }

    #[test]
    fn kron_dimensions_and_values() {
        let x = CMatrix::from_rows(&[&[C_ZERO, C_ONE], &[C_ONE, C_ZERO]]);
        let i = CMatrix::identity(2);
        let xi = x.kron(&i);
        assert_eq!(xi.dim(), 4);
        assert_eq!(xi[(0, 2)], C_ONE);
        assert_eq!(xi[(1, 3)], C_ONE);
        assert_eq!(xi[(0, 1)], C_ZERO);
    }

    #[test]
    fn fidelity_of_identical_unitaries_is_one() {
        let s = 1.0 / 2f64.sqrt();
        let h = CMatrix::from_rows(&[&[c(s, 0.0), c(s, 0.0)], &[c(s, 0.0), c(-s, 0.0)]]);
        assert!((average_gate_fidelity(&h, &h) - 1.0).abs() < 1e-14);
    }

    #[test]
    fn fidelity_is_phase_invariant() {
        let u = CMatrix::identity(2);
        let v = CMatrix::identity(2).scale(Complex::from_phase(0.7));
        assert!((average_gate_fidelity(&u, &v) - 1.0).abs() < 1e-14);
    }

    #[test]
    fn fidelity_of_orthogonal_gates() {
        // I vs X: F = (0 + 2) / 6 = 1/3.
        let x = CMatrix::from_rows(&[&[C_ZERO, C_ONE], &[C_ONE, C_ZERO]]);
        let f = average_gate_fidelity(&CMatrix::identity(2), &x);
        assert!((f - 1.0 / 3.0).abs() < 1e-14);
    }

    #[test]
    fn small_rotation_fidelity_matches_second_order() {
        // F ~ 1 - theta^2 * d/(2(d+1)) ... for small rotations about X:
        // |Tr(U)|^2 = 4 cos^2(t/2) -> F = (4cos^2 + 2)/6.
        let theta = 0.01;
        let x = CMatrix::from_rows(&[&[C_ZERO, C_ONE], &[C_ONE, C_ZERO]]);
        let u = x.scale(c(0.0, -theta / 2.0)).expm();
        let f = average_gate_fidelity(&CMatrix::identity(2), &u);
        let expect = (4.0 * (theta / 2.0f64).cos().powi(2) + 2.0) / 6.0;
        assert!((f - expect).abs() < 1e-10);
    }
}
