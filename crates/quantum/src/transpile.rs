//! Transpilation to the IBM basis set {RZ, SX, X, CX}.
//!
//! Mirrors the role of the Qiskit transpiler in the paper's flow: fidelity
//! benchmarks are lowered to the physical gates whose waveforms actually
//! live in waveform memory. RZ is virtual (no waveform, Section II-A), so
//! only SX/X/CX/measure consume memory bandwidth.

use crate::circuits::{Circuit, Op};
use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

/// Lowers a circuit to the {RZ, SX, X, CX, Measure} basis.
pub fn transpile(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::new(format!("{}-transpiled", circuit.name), circuit.n_qubits);
    for &op in &circuit.ops {
        lower(op, &mut out);
    }
    out
}

fn lower(op: Op, out: &mut Circuit) {
    match op {
        Op::X(_) | Op::Sx(_) | Op::Rz(..) | Op::Cx(..) | Op::Measure(_) => out.push(op),
        Op::H(q) => {
            // H = global_phase * RZ(pi/2) SX RZ(pi/2).
            out.push(Op::Rz(q, FRAC_PI_2));
            out.push(Op::Sx(q));
            out.push(Op::Rz(q, FRAC_PI_2));
        }
        Op::Cz(a, b) => {
            lower(Op::H(b), out);
            out.push(Op::Cx(a, b));
            lower(Op::H(b), out);
        }
        Op::Cp(a, b, theta) => {
            // Controlled phase via two CX and three RZ.
            out.push(Op::Rz(a, theta / 2.0));
            out.push(Op::Cx(a, b));
            out.push(Op::Rz(b, -theta / 2.0));
            out.push(Op::Cx(a, b));
            out.push(Op::Rz(b, theta / 2.0));
        }
        Op::Swap(a, b) => {
            out.push(Op::Cx(a, b));
            out.push(Op::Cx(b, a));
            out.push(Op::Cx(a, b));
        }
        Op::Ccx(c1, c2, t) => {
            // Standard 6-CNOT Toffoli decomposition.
            lower(Op::H(t), out);
            out.push(Op::Cx(c2, t));
            out.push(Op::Rz(t, -FRAC_PI_4));
            out.push(Op::Cx(c1, t));
            out.push(Op::Rz(t, FRAC_PI_4));
            out.push(Op::Cx(c2, t));
            out.push(Op::Rz(t, -FRAC_PI_4));
            out.push(Op::Cx(c1, t));
            out.push(Op::Rz(c2, FRAC_PI_4));
            out.push(Op::Rz(t, FRAC_PI_4));
            lower(Op::H(t), out);
            out.push(Op::Cx(c1, c2));
            out.push(Op::Rz(c1, FRAC_PI_4));
            out.push(Op::Rz(c2, -FRAC_PI_4));
            out.push(Op::Cx(c1, c2));
        }
    }
}

/// RZ angle sum sanity: total virtual-Z rotation introduced (useful in
/// tests and schedule statistics).
pub fn total_rz(circuit: &Circuit) -> f64 {
    circuit.ops.iter().map(|op| if let Op::Rz(_, theta) = op { theta.abs() } else { 0.0 }).sum()
}

/// Verifies transpilation preserves circuit semantics by comparing ideal
/// output distributions (exported for integration tests).
pub fn distributions_match(a: &Circuit, b: &Circuit, tol: f64) -> bool {
    let da = crate::fidelity::ideal_distribution(a);
    let db = crate::fidelity::ideal_distribution(b);
    crate::state::tvd(&da, &db) < tol
}

/// Angle used by the Toffoli decomposition (exposed for reuse).
pub const T_ANGLE: f64 = FRAC_PI_4;

/// Full rotation constant.
pub const TWO_PI: f64 = 2.0 * PI;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuits;

    fn only_basis_ops(c: &Circuit) -> bool {
        c.ops
            .iter()
            .all(|o| matches!(o, Op::X(_) | Op::Sx(_) | Op::Rz(..) | Op::Cx(..) | Op::Measure(_)))
    }

    #[test]
    fn everything_lowers_to_basis() {
        for c in circuits::table_vi_suite() {
            let t = transpile(&c);
            assert!(only_basis_ops(&t), "{} not in basis", c.name);
        }
    }

    #[test]
    fn qft4_cx_count_matches_table_vi_scale() {
        // Table VI lists 27 CNOTs for qft-4; our echoed variant (QFT +
        // inverse, which makes TVD noise-sensitive) lands at 36 — the
        // same order of CX budget.
        let t = transpile(&circuits::qft(4));
        let cx = t.cx_count();
        assert!((20..=40).contains(&cx), "got {cx}");
    }

    #[test]
    fn toffoli_uses_six_cx_plus_two_for_phase() {
        let t = transpile(&circuits::toffoli());
        // 6 CX in the core + 2 in the tail CS correction = 8; Table VI
        // counts 12 for a hardware-mapped version.
        assert!((6..=12).contains(&t.cx_count()), "got {}", t.cx_count());
    }

    #[test]
    fn swap_becomes_three_cx() {
        let t = transpile(&circuits::swap());
        assert_eq!(t.cx_count(), 3);
    }

    #[test]
    fn transpile_preserves_semantics() {
        for c in [
            circuits::swap(),
            circuits::toffoli(),
            circuits::qft(4),
            circuits::bernstein_vazirani(4, 0b1011),
        ] {
            let t = transpile(&c);
            assert!(distributions_match(&c, &t, 1e-9), "{} changed meaning", c.name);
        }
    }

    #[test]
    fn transpiled_circuit_has_no_h() {
        let t = transpile(&circuits::qft(4));
        assert!(!t.ops.iter().any(|o| matches!(o, Op::H(_))));
    }
}
