//! Gate-error model for circuit and RB simulation.
//!
//! The paper evaluates fidelity on real IBM machines; we substitute a
//! standard noise model whose parameters are anchored to the paper's
//! baseline numbers (2Q RB fidelity ~0.978 -> EPC ~1.65e-2) and whose
//! *compression-dependent* part is derived from the actual waveform
//! distortion via [`crate::transmon::distortion_infidelity`] — so the
//! experiment logic is the paper's: compression can only hurt through
//! waveform distortion.

use compaqt_core::compress::Compressor;
use compaqt_pulse::library::GateKind;
use compaqt_pulse::PulseLibrary;
use serde::{Deserialize, Serialize};

/// Stochastic + coherent gate-error parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Depolarizing error per single-qubit gate.
    pub epg_1q: f64,
    /// Depolarizing error per two-qubit gate.
    pub epg_2q: f64,
    /// Per-qubit readout bit-flip probability.
    pub readout_error: f64,
    /// Coherent over/under-rotation per 1Q gate (radians) caused by
    /// waveform distortion; zero for the uncompressed baseline.
    pub coherent_1q_angle: f64,
    /// Coherent error per 2Q gate (radians on the target qubit).
    pub coherent_2q_angle: f64,
}

impl NoiseModel {
    /// Baseline parameters for an IBM Falcon-class machine: 1Q EPG ~3e-4,
    /// 2Q EPG ~9e-3, readout ~1.5e-2. A two-qubit Clifford averages ~1.5
    /// CX plus several 1Q gates, reproducing the paper's ~1.65e-2 EPC.
    pub fn ibm_baseline() -> Self {
        NoiseModel {
            epg_1q: 3e-4,
            epg_2q: 9e-3,
            readout_error: 1.5e-2,
            coherent_1q_angle: 0.0,
            coherent_2q_angle: 0.0,
        }
    }

    /// A noiseless model (for ideal-distribution reference runs).
    pub fn noiseless() -> Self {
        NoiseModel {
            epg_1q: 0.0,
            epg_2q: 0.0,
            readout_error: 0.0,
            coherent_1q_angle: 0.0,
            coherent_2q_angle: 0.0,
        }
    }

    /// Adds the coherent distortion contribution of compressed waveforms.
    ///
    /// `infid_1q` / `infid_2q` are average distortion infidelities from
    /// [`crate::transmon::distortion_infidelity`]; the equivalent coherent
    /// rotation angle satisfies `infid = (2/3) sin^2(theta/2)`.
    pub fn with_distortion(mut self, infid_1q: f64, infid_2q: f64) -> Self {
        self.coherent_1q_angle = infidelity_to_angle(infid_1q);
        self.coherent_2q_angle = infidelity_to_angle(infid_2q);
        self
    }

    /// Builds the compressed-waveform noise model for a pulse library by
    /// compressing every 1Q/2Q gate waveform and averaging the
    /// distortion infidelity per class.
    ///
    /// # Errors
    ///
    /// Propagates compression errors.
    pub fn from_compression(
        baseline: NoiseModel,
        library: &PulseLibrary,
        compressor: &Compressor,
    ) -> Result<NoiseModel, compaqt_core::CompressError> {
        let mut one_q = Vec::new();
        let mut two_q = Vec::new();
        for (gate, wf) in library.iter() {
            let z = compressor.compress(wf)?;
            let back = z.decompress()?;
            match gate.kind {
                GateKind::X | GateKind::Sx | GateKind::PhasedXz => {
                    one_q.push(crate::transmon::distortion_infidelity(wf, &back));
                }
                GateKind::Cx | GateKind::Fsim | GateKind::ISwap => {
                    // Two-qubit drives evolve the effective CR Hamiltonian.
                    two_q.push(crate::transmon::distortion_infidelity_cr(wf, &back));
                }
                _ => {}
            }
        }
        let avg =
            |v: &[f64]| if v.is_empty() { 0.0 } else { v.iter().sum::<f64>() / v.len() as f64 };
        Ok(baseline.with_distortion(avg(&one_q), avg(&two_q)))
    }
}

/// Converts an average-gate-infidelity to the equivalent coherent
/// rotation angle: `infid = (2/3) sin^2(theta/2)`.
pub fn infidelity_to_angle(infid: f64) -> f64 {
    if infid <= 0.0 {
        return 0.0;
    }
    2.0 * (1.5 * infid).min(1.0).sqrt().asin()
}

#[cfg(test)]
mod tests {
    use super::*;
    use compaqt_core::compress::Variant;
    use compaqt_pulse::device::Device;
    use compaqt_pulse::vendor::Vendor;

    #[test]
    fn angle_conversion_round_trips() {
        for theta in [0.001, 0.01, 0.1] {
            let infid = 2.0 / 3.0 * (theta / 2.0f64).sin().powi(2);
            let back = infidelity_to_angle(infid);
            assert!((back - theta).abs() < 1e-12, "theta {theta}");
        }
        assert_eq!(infidelity_to_angle(0.0), 0.0);
    }

    #[test]
    fn baseline_has_no_coherent_error() {
        let m = NoiseModel::ibm_baseline();
        assert_eq!(m.coherent_1q_angle, 0.0);
        assert_eq!(m.coherent_2q_angle, 0.0);
        assert!(m.epg_2q > m.epg_1q);
    }

    #[test]
    fn compression_adds_small_coherent_error() {
        let device = Device::synthesize(Vendor::Ibm, 3, 0xAB);
        let lib = device.pulse_library();
        let compressor = Compressor::new(Variant::IntDctW { ws: 16 });
        let m =
            NoiseModel::from_compression(NoiseModel::ibm_baseline(), &lib, &compressor).unwrap();
        assert!(m.coherent_1q_angle > 0.0, "distortion should be nonzero");
        // "< 0.1% fidelity degradation": angle stays well below 0.1 rad.
        assert!(m.coherent_1q_angle < 0.1, "got {}", m.coherent_1q_angle);
        // Stochastic part is untouched.
        assert_eq!(m.epg_2q, NoiseModel::ibm_baseline().epg_2q);
    }

    #[test]
    fn tighter_threshold_means_smaller_coherent_error() {
        let device = Device::synthesize(Vendor::Ibm, 2, 0xCD);
        let lib = device.pulse_library();
        let loose = Compressor::new(Variant::IntDctW { ws: 16 }).with_threshold(0.05);
        let tight = Compressor::new(Variant::IntDctW { ws: 16 }).with_threshold(0.002);
        let ml = NoiseModel::from_compression(NoiseModel::ibm_baseline(), &lib, &loose).unwrap();
        let mt = NoiseModel::from_compression(NoiseModel::ibm_baseline(), &lib, &tight).unwrap();
        assert!(
            mt.coherent_1q_angle <= ml.coherent_1q_angle,
            "tight {} vs loose {}",
            mt.coherent_1q_angle,
            ml.coherent_1q_angle
        );
    }
}
