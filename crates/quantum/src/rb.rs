//! Randomized benchmarking (RB) simulation.
//!
//! Reproduces the paper's Figure 9 / Table III experiment: two-qubit RB
//! with the uncompressed baseline pulses versus decompressed pulses.
//! Random Clifford sequences are applied with a recovery inverse at the
//! end; each Clifford suffers (a) depolarizing noise matching the machine
//! baseline, and (b) — when compression is enabled — the coherent
//! distortion rotation derived from the waveform pipeline. The survival
//! probability decays as `A p^m + B`; the decay constant `p` is what the
//! paper reports as "RB fidelity", with `EPC = (d-1)/d * (1-p)`.

use crate::errors::NoiseModel;
use crate::gates;
use crate::linalg::CMatrix;
use crate::state::StateVector;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// RB experiment configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RbConfig {
    /// Clifford sequence lengths to measure.
    pub lengths: Vec<usize>,
    /// Random sequences sampled per length.
    pub sequences_per_length: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RbConfig {
    fn default() -> Self {
        RbConfig {
            lengths: vec![1, 5, 10, 20, 35, 50, 75, 100],
            sequences_per_length: 12,
            seed: 0x5EED,
        }
    }
}

/// The outcome of an RB experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RbResult {
    /// Sequence lengths.
    pub lengths: Vec<usize>,
    /// Mean survival probability at each length.
    pub survival: Vec<f64>,
    /// Fitted decay amplitude `A`.
    pub a: f64,
    /// Fitted decay constant `p` — the paper's "RB fidelity".
    pub p: f64,
    /// Fit floor `B` (1/2^n).
    pub b: f64,
    /// Error per Clifford: `(d-1)/d * (1-p)`.
    pub epc: f64,
}

/// Number of qubits benchmarked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RbQubits {
    /// Single-qubit RB.
    One,
    /// Two-qubit RB (the paper's experiment).
    Two,
}

/// Runs randomized benchmarking under a noise model.
///
/// The average number of physical gates per two-qubit Clifford is ~1.5 CX
/// and ~9 single-qubit gates; the depolarizing strength per Clifford is
/// composed accordingly from the model's per-gate errors.
pub fn run_rb(qubits: RbQubits, noise: &NoiseModel, config: &RbConfig) -> RbResult {
    let n = match qubits {
        RbQubits::One => 1,
        RbQubits::Two => 2,
    };
    let dim = 1usize << n;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut survival = Vec::with_capacity(config.lengths.len());
    for &m in &config.lengths {
        let mut acc = 0.0;
        for _ in 0..config.sequences_per_length {
            acc += simulate_sequence(n, m, noise, &mut rng);
        }
        survival.push(acc / config.sequences_per_length as f64);
    }
    let b = 1.0 / dim as f64;
    let (a, p) = fit_decay(&config.lengths, &survival, b);
    let d = dim as f64;
    RbResult { lengths: config.lengths.clone(), survival, a, p, b, epc: (d - 1.0) / d * (1.0 - p) }
}

/// One random sequence: m Cliffords + recovery, with noise; returns the
/// ground-state survival probability.
fn simulate_sequence(n: usize, m: usize, noise: &NoiseModel, rng: &mut StdRng) -> f64 {
    let mut sv = StateVector::zero(n);
    let mut total = CMatrix::identity(1 << n);
    for _ in 0..m {
        let cl = random_clifford(n, rng);
        apply_unitary(&mut sv, &cl);
        total = cl.matmul(&total);
        apply_clifford_noise(&mut sv, n, noise, rng);
    }
    // Recovery: the exact inverse, also noisy.
    let recovery = total.adjoint();
    apply_unitary(&mut sv, &recovery);
    apply_clifford_noise(&mut sv, n, noise, rng);
    // Readout error: mix the survival with bit-flipped outcomes.
    let p0 = sv.ground_population();
    let eps = noise.readout_error;
    p0 * (1.0 - eps).powi(n as i32)
        + (1.0 - p0) * (1.0 - (1.0 - eps).powi(n as i32)) / ((1 << n) - 1) as f64
}

fn apply_unitary(sv: &mut StateVector, u: &CMatrix) {
    match u.dim() {
        2 => sv.apply_1q(0, u),
        4 => sv.apply_2q(1, 0, u),
        _ => unreachable!("RB uses 1- or 2-qubit Cliffords"),
    }
}

/// Samples an (approximately Haar-random) Clifford as a product of
/// generators; the exact group element is tracked so the recovery is the
/// true inverse.
fn random_clifford(n: usize, rng: &mut StdRng) -> CMatrix {
    let h = gates::h();
    let s = gates::s();
    if n == 1 {
        let mut u = CMatrix::identity(2);
        for _ in 0..8 {
            u = if rng.random_bool(0.5) { h.matmul(&u) } else { s.matmul(&u) };
        }
        u
    } else {
        let mut u = CMatrix::identity(4);
        let id2 = CMatrix::identity(2);
        for _ in 0..12 {
            let g = match rng.random_range(0..5) {
                0 => h.kron(&id2),
                1 => id2.kron(&h),
                2 => s.kron(&id2),
                3 => id2.kron(&s),
                _ => gates::cx(),
            };
            u = g.matmul(&u);
        }
        u
    }
}

/// Depolarizing + coherent noise for one Clifford application.
///
/// Random draws are consumed identically regardless of the noise
/// strength (common-random-numbers coupling), so two models compared at
/// the same seed see nested error events: more noise always means more
/// errors on the same sequences.
fn apply_clifford_noise(sv: &mut StateVector, n: usize, noise: &NoiseModel, rng: &mut StdRng) {
    // Gate content of an average Clifford (Barends et al. style counts).
    let (n_1q, n_2q) = if n == 1 { (1.875, 0.0) } else { (9.0, 1.5) };
    let p_dep = (n_1q * noise.epg_1q + n_2q * noise.epg_2q).min(1.0);
    let trigger: f64 = rng.random();
    let choices: Vec<usize> = (0..n).map(|_| rng.random_range(0..4)).collect();
    if trigger < p_dep {
        let paulis = [gates::x(), gates::y(), gates::z()];
        let mut any = false;
        for (q, &choice) in choices.iter().enumerate() {
            if choice < 3 {
                sv.apply_1q(q, &paulis[choice]);
                any = true;
            }
        }
        if !any {
            // All-identity draw: fall back to an X on qubit 0 so the
            // event always injects an error.
            sv.apply_1q(0, &gates::x());
        }
    }
    // Coherent distortion: per-gate coherent errors are twirled by the
    // interleaved random Cliffords, so their infidelities add
    // incoherently over the Clifford's gate content; apply the single
    // equivalent rotation.
    let infid = |theta: f64| 2.0 / 3.0 * (theta / 2.0).sin().powi(2);
    let total_infid = n_1q * infid(noise.coherent_1q_angle) + n_2q * infid(noise.coherent_2q_angle);
    if total_infid > 0.0 {
        let theta = crate::errors::infidelity_to_angle(total_infid);
        sv.apply_1q(0, &gates::rx(theta));
    }
}

/// Least-squares fit of `y = A p^m + B` with fixed `B`, by linear
/// regression of `log(y - B)` against `m`.
pub fn fit_decay(lengths: &[usize], survival: &[f64], b: f64) -> (f64, f64) {
    let pts: Vec<(f64, f64)> = lengths
        .iter()
        .zip(survival)
        .filter(|&(_, &y)| y > b + 1e-6)
        .map(|(&m, &y)| (m as f64, (y - b).ln()))
        .collect();
    if pts.len() < 2 {
        return (1.0 - b, 1.0);
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let intercept = (sy - slope * sx) / n;
    (intercept.exp(), slope.exp().clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(seed: u64) -> RbConfig {
        RbConfig { lengths: vec![1, 5, 10, 20, 40, 60], sequences_per_length: 16, seed }
    }

    #[test]
    fn noiseless_rb_has_unit_decay() {
        let r = run_rb(RbQubits::Two, &NoiseModel::noiseless(), &quick_config(1));
        assert!(r.p > 0.999, "p = {}", r.p);
        assert!(r.epc < 1e-3);
        assert!(r.survival.iter().all(|&s| s > 0.999));
    }

    #[test]
    fn baseline_2q_rb_matches_paper_regime() {
        // Paper Figure 9: baseline fidelity ~0.978, EPC ~1.65e-2.
        let r = run_rb(RbQubits::Two, &NoiseModel::ibm_baseline(), &quick_config(2));
        assert!((0.96..0.995).contains(&r.p), "p = {}", r.p);
        assert!((5e-3..3e-2).contains(&r.epc), "epc = {}", r.epc);
    }

    #[test]
    fn survival_decays_with_length() {
        let r = run_rb(RbQubits::Two, &NoiseModel::ibm_baseline(), &quick_config(3));
        assert!(r.survival.first().unwrap() > r.survival.last().unwrap());
    }

    #[test]
    fn more_noise_means_lower_p() {
        let mut noisy = NoiseModel::ibm_baseline();
        noisy.epg_2q *= 3.0;
        let base = run_rb(RbQubits::Two, &NoiseModel::ibm_baseline(), &quick_config(4));
        let worse = run_rb(RbQubits::Two, &noisy, &quick_config(4));
        assert!(worse.p < base.p, "worse {} vs base {}", worse.p, base.p);
    }

    #[test]
    fn coherent_distortion_lowers_p_slightly() {
        // The compressed-pulse experiment: small coherent angle on top of
        // the baseline lowers p by a fraction of a percent (Table III).
        let base = run_rb(RbQubits::Two, &NoiseModel::ibm_baseline(), &quick_config(5));
        let compressed_model = NoiseModel::ibm_baseline().with_distortion(5e-5, 5e-5);
        let comp = run_rb(RbQubits::Two, &compressed_model, &quick_config(5));
        assert!(comp.p <= base.p + 0.005, "comp {} vs base {}", comp.p, base.p);
        assert!(base.p - comp.p < 0.02, "degradation should be small");
    }

    #[test]
    fn one_qubit_rb_is_gentler() {
        let r1 = run_rb(RbQubits::One, &NoiseModel::ibm_baseline(), &quick_config(6));
        let r2 = run_rb(RbQubits::Two, &NoiseModel::ibm_baseline(), &quick_config(6));
        assert!(r1.epc < r2.epc);
    }

    #[test]
    fn fit_recovers_known_decay() {
        let lengths: Vec<usize> = vec![1, 2, 5, 10, 20, 50];
        let survival: Vec<f64> =
            lengths.iter().map(|&m| 0.75 * 0.98f64.powi(m as i32) + 0.25).collect();
        let (a, p) = fit_decay(&lengths, &survival, 0.25);
        assert!((a - 0.75).abs() < 1e-6);
        assert!((p - 0.98).abs() < 1e-6);
    }
}
