//! Standard gate unitaries.

use crate::linalg::{c, CMatrix, Complex, C_I, C_ONE, C_ZERO};

/// The 2x2 identity.
pub fn id() -> CMatrix {
    CMatrix::identity(2)
}

/// Pauli X.
pub fn x() -> CMatrix {
    CMatrix::from_rows(&[&[C_ZERO, C_ONE], &[C_ONE, C_ZERO]])
}

/// Pauli Y.
pub fn y() -> CMatrix {
    CMatrix::from_rows(&[&[C_ZERO, -C_I], &[C_I, C_ZERO]])
}

/// Pauli Z.
pub fn z() -> CMatrix {
    CMatrix::from_rows(&[&[C_ONE, C_ZERO], &[C_ZERO, -C_ONE]])
}

/// Hadamard.
pub fn h() -> CMatrix {
    let s = c(std::f64::consts::FRAC_1_SQRT_2, 0.0);
    CMatrix::from_rows(&[&[s, s], &[s, -s]])
}

/// Phase gate S = diag(1, i).
pub fn s() -> CMatrix {
    CMatrix::from_rows(&[&[C_ONE, C_ZERO], &[C_ZERO, C_I]])
}

/// S-dagger.
pub fn sdg() -> CMatrix {
    CMatrix::from_rows(&[&[C_ONE, C_ZERO], &[C_ZERO, -C_I]])
}

/// T gate = diag(1, e^{i pi/4}).
pub fn t() -> CMatrix {
    CMatrix::from_rows(&[
        &[C_ONE, C_ZERO],
        &[C_ZERO, Complex::from_phase(std::f64::consts::FRAC_PI_4)],
    ])
}

/// The sqrt-X gate used as the IBM basis gate SX.
pub fn sx() -> CMatrix {
    let a = c(0.5, 0.5);
    let b = c(0.5, -0.5);
    CMatrix::from_rows(&[&[a, b], &[b, a]])
}

/// Rotation about X by `theta`.
pub fn rx(theta: f64) -> CMatrix {
    let (s_, co) = (theta / 2.0).sin_cos();
    CMatrix::from_rows(&[&[c(co, 0.0), c(0.0, -s_)], &[c(0.0, -s_), c(co, 0.0)]])
}

/// Rotation about Y by `theta`.
pub fn ry(theta: f64) -> CMatrix {
    let (s_, co) = (theta / 2.0).sin_cos();
    CMatrix::from_rows(&[&[c(co, 0.0), c(-s_, 0.0)], &[c(s_, 0.0), c(co, 0.0)]])
}

/// Rotation about Z by `theta` (virtual on hardware — Section II-A).
pub fn rz(theta: f64) -> CMatrix {
    CMatrix::from_rows(&[
        &[Complex::from_phase(-theta / 2.0), C_ZERO],
        &[C_ZERO, Complex::from_phase(theta / 2.0)],
    ])
}

/// General single-qubit U(theta, phi, lambda).
pub fn u3(theta: f64, phi: f64, lambda: f64) -> CMatrix {
    let (st, ct) = ((theta / 2.0).sin(), (theta / 2.0).cos());
    CMatrix::from_rows(&[
        &[c(ct, 0.0), Complex::from_phase(lambda) * (-st)],
        &[Complex::from_phase(phi) * st, Complex::from_phase(phi + lambda) * ct],
    ])
}

/// CNOT with the control on the *higher* (first) qubit of a 2-qubit
/// little-endian register |q1 q0>: control = q1.
pub fn cx() -> CMatrix {
    let mut m = CMatrix::zeros(4);
    m[(0, 0)] = C_ONE;
    m[(1, 1)] = C_ONE;
    m[(2, 3)] = C_ONE;
    m[(3, 2)] = C_ONE;
    m
}

/// Controlled-Z (symmetric in its qubits).
pub fn cz() -> CMatrix {
    let mut m = CMatrix::identity(4);
    m[(3, 3)] = -C_ONE;
    m
}

/// SWAP.
pub fn swap() -> CMatrix {
    let mut m = CMatrix::zeros(4);
    m[(0, 0)] = C_ONE;
    m[(1, 2)] = C_ONE;
    m[(2, 1)] = C_ONE;
    m[(3, 3)] = C_ONE;
    m
}

/// iSWAP.
pub fn iswap() -> CMatrix {
    let mut m = CMatrix::zeros(4);
    m[(0, 0)] = C_ONE;
    m[(1, 2)] = C_I;
    m[(2, 1)] = C_I;
    m[(3, 3)] = C_ONE;
    m
}

/// Controlled-phase by `theta`.
pub fn cp(theta: f64) -> CMatrix {
    let mut m = CMatrix::identity(4);
    m[(3, 3)] = Complex::from_phase(theta);
    m
}

/// Toffoli (CCX) on a 3-qubit register; controls are the two higher
/// qubits.
pub fn toffoli() -> CMatrix {
    let mut m = CMatrix::identity(8);
    m[(6, 6)] = C_ZERO;
    m[(7, 7)] = C_ZERO;
    m[(6, 7)] = C_ONE;
    m[(7, 6)] = C_ONE;
    m
}

/// CCZ.
pub fn ccz() -> CMatrix {
    let mut m = CMatrix::identity(8);
    m[(7, 7)] = -C_ONE;
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::average_gate_fidelity;

    #[test]
    fn all_gates_are_unitary() {
        for (name, g) in [
            ("X", x()),
            ("Y", y()),
            ("Z", z()),
            ("H", h()),
            ("S", s()),
            ("T", t()),
            ("SX", sx()),
            ("RX", rx(0.37)),
            ("RY", ry(-1.2)),
            ("RZ", rz(2.5)),
            ("U3", u3(0.3, 1.1, -0.4)),
            ("CX", cx()),
            ("CZ", cz()),
            ("SWAP", swap()),
            ("iSWAP", iswap()),
            ("CP", cp(0.9)),
            ("CCX", toffoli()),
            ("CCZ", ccz()),
        ] {
            assert!(g.is_unitary(1e-12), "{name} is not unitary");
        }
    }

    #[test]
    fn sx_squared_is_x() {
        assert!((average_gate_fidelity(&sx().matmul(&sx()), &x()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn s_squared_is_z_and_t_squared_is_s() {
        assert!(s().matmul(&s()).distance(&z()) < 1e-12);
        assert!(t().matmul(&t()).distance(&s()) < 1e-12);
    }

    #[test]
    fn hadamard_from_rz_sx_rz() {
        // H = e^{i pi/2} RZ(pi/2) SX RZ(pi/2): the standard basis
        // decomposition used by the transpiler.
        let composed =
            rz(std::f64::consts::FRAC_PI_2).matmul(&sx()).matmul(&rz(std::f64::consts::FRAC_PI_2));
        assert!((average_gate_fidelity(&composed, &h()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cx_from_h_cz_h() {
        let h_target = CMatrix::identity(2).kron(&h());
        let composed = h_target.matmul(&cz()).matmul(&h_target);
        assert!(composed.distance(&cx()) < 1e-12);
    }

    #[test]
    fn swap_is_three_cnots() {
        // SWAP = CX(a,b) CX(b,a) CX(a,b); with our fixed control layout
        // the middle CX is conjugated by Hadamards on both qubits.
        let hh = h().kron(&h());
        let cx_rev = hh.matmul(&cx()).matmul(&hh);
        let composed = cx().matmul(&cx_rev).matmul(&cx());
        assert!(composed.distance(&swap()) < 1e-12);
    }

    #[test]
    fn rz_is_diagonal_phase() {
        let g = rz(1.0);
        assert_eq!(g[(0, 1)], crate::linalg::C_ZERO);
        assert!((g[(0, 0)].abs() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn toffoli_flips_only_when_both_controls_set() {
        let m = toffoli();
        for basis in 0..6 {
            assert_eq!(m[(basis, basis)], C_ONE, "basis {basis} unchanged");
        }
        assert_eq!(m[(6, 7)], C_ONE);
        assert_eq!(m[(7, 6)], C_ONE);
    }
}
