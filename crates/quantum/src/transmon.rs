//! Pulse-level transmon simulation: waveform -> gate unitary.
//!
//! In the frame rotating at the qubit frequency, a resonant drive with
//! envelope `(I(t), Q(t))` generates
//! `H(t) = kappa/2 * (I(t) X + Q(t) Y)` for a two-level qubit; `kappa`
//! converts DAC amplitude to Rabi rate and is fixed by calibration (a π
//! pulse must integrate to a π rotation). A three-level extension with
//! anharmonicity `Delta` captures the leakage that DRAG pulses suppress.
//!
//! This is how we substitute the paper's hardware experiments: the *only*
//! way compression can hurt a gate is by distorting its waveform, and the
//! distortion-induced error is exactly the unitary distance between the
//! evolutions under the original and decompressed envelopes.

use crate::linalg::{average_gate_fidelity, c, CMatrix, C_ZERO};
use compaqt_pulse::waveform::Waveform;

/// Calibrates the drive strength `kappa` (radians per sample per unit
/// amplitude) so the given envelope implements a rotation by `angle`.
///
/// # Panics
///
/// Panics if the envelope integrates to (numerically) zero.
pub fn calibrate(waveform: &Waveform, angle: f64) -> f64 {
    let area: f64 = waveform.i().iter().sum();
    assert!(area.abs() > 1e-9, "cannot calibrate a zero-area envelope");
    angle / area
}

/// Evolves a two-level qubit under the waveform with drive strength
/// `kappa`, returning the 2x2 gate unitary.
///
/// Uses the exact per-sample propagator
/// `exp(-i (a X + b Y)) = cos r - i sin r (a X + b Y)/r`.
pub fn evolve_2level(waveform: &Waveform, kappa: f64) -> CMatrix {
    let mut u = CMatrix::identity(2);
    for (&i_s, &q_s) in waveform.i().iter().zip(waveform.q()) {
        let a = 0.5 * kappa * i_s;
        let b = 0.5 * kappa * q_s;
        let r = (a * a + b * b).sqrt();
        let step = if r < 1e-15 {
            CMatrix::identity(2)
        } else {
            let (sin_r, cos_r) = r.sin_cos();
            let f = sin_r / r;
            // -i sin(r)/r * (a X + b Y) + cos(r) I
            CMatrix::from_rows(&[
                &[c(cos_r, 0.0), c(-b * f, -a * f)],
                &[c(b * f, -a * f), c(cos_r, 0.0)],
            ])
        };
        u = step.matmul(&u);
    }
    u
}

/// Evolves a three-level transmon (|0>, |1>, |2>) with anharmonicity
/// `delta` (radians/sample, negative for transmons) under the waveform.
///
/// The |1>-|2> transition couples sqrt(2) stronger, which is what makes
/// leakage a first-order concern and DRAG effective.
pub fn evolve_3level(waveform: &Waveform, kappa: f64, delta: f64) -> CMatrix {
    let s2 = 2f64.sqrt();
    let mut u = CMatrix::identity(3);
    for (&i_s, &q_s) in waveform.i().iter().zip(waveform.q()) {
        let a = 0.5 * kappa * i_s;
        let b = 0.5 * kappa * q_s;
        // H = a (X01 + s2 X12) + b (Y01 + s2 Y12) + delta |2><2|
        let h = CMatrix::from_rows(&[
            &[C_ZERO, c(a, -b), C_ZERO],
            &[c(a, b), C_ZERO, c(s2 * a, -s2 * b)],
            &[C_ZERO, c(s2 * a, s2 * b), c(delta, 0.0)],
        ]);
        let step = h.scale(c(0.0, -1.0)).expm();
        u = step.matmul(&u);
    }
    u
}

/// Leakage out of the computational subspace after applying the pulse to
/// |0>: the |2> population.
pub fn leakage(waveform: &Waveform, kappa: f64, delta: f64) -> f64 {
    let u = evolve_3level(waveform, kappa, delta);
    u[(2, 0)].abs2()
}

/// The distortion-induced gate infidelity between the original and
/// decompressed envelopes: `1 - F_avg(U_orig, U_decomp)` with both
/// unitaries produced by the same calibrated drive.
///
/// This is the quantity the paper's MSE proxy tracks ("MSE ... highly
/// correlated to the gate fidelity", Section IV-C).
pub fn distortion_infidelity(original: &Waveform, decompressed: &Waveform) -> f64 {
    let kappa = calibrate(original, std::f64::consts::PI);
    let u = evolve_2level(original, kappa);
    let v = evolve_2level(decompressed, kappa);
    (1.0 - average_gate_fidelity(&u, &v)).max(0.0)
}

/// Effective cross-resonance Hamiltonian coefficients (relative to the
/// drive envelope): the desired `ZX` interaction plus the parasitic `IX`
/// and `ZI` terms a real CR drive produces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrCoefficients {
    /// ZX rate per unit drive amplitude (the entangling term).
    pub zx: f64,
    /// IX rate (unconditional target rotation, echoed away on hardware).
    pub ix: f64,
    /// ZI rate (control Stark shift).
    pub zi: f64,
}

impl Default for CrCoefficients {
    fn default() -> Self {
        // Typical effective-Hamiltonian ratios for IBM CR gates.
        CrCoefficients { zx: 1.0, ix: 0.45, zi: 0.2 }
    }
}

/// Evolves a two-qubit system under the effective cross-resonance
/// Hamiltonian driven by the envelope:
/// `H(t) = kappa/2 * A(t) * (zx ZX + ix IX + zi ZI)` with `A` the I
/// channel (the CR drive phase is absorbed into the frame).
///
/// The three Pauli terms pairwise commute (`ZX * IX = ZI`), so the
/// time-ordered product collapses exactly to a single exponential of the
/// integrated drive area — no per-sample stepping needed.
///
/// Returns the 4x4 unitary on |control, target>.
pub fn evolve_cr(waveform: &Waveform, kappa: f64, coeffs: &CrCoefficients) -> CMatrix {
    let zx = crate::gates::z().kron(&crate::gates::x());
    let ix = CMatrix::identity(2).kron(&crate::gates::x());
    let zi = crate::gates::z().kron(&CMatrix::identity(2));
    let area: f64 = waveform.i().iter().sum();
    let h = zx
        .scale(c(coeffs.zx, 0.0))
        .add(&ix.scale(c(coeffs.ix, 0.0)))
        .add(&zi.scale(c(coeffs.zi, 0.0)))
        .scale(c(0.5 * kappa * area, 0.0));
    h.scale(c(0.0, -1.0)).expm()
}

/// Calibrates the CR drive so the ZX angle integrates to `pi/4` (a
/// CNOT-equivalent CR90) and returns the drive strength.
pub fn calibrate_cr(waveform: &Waveform, coeffs: &CrCoefficients) -> f64 {
    let area: f64 = waveform.i().iter().sum();
    assert!(area.abs() > 1e-9, "cannot calibrate a zero-area CR envelope");
    // theta_zx = kappa * zx * area -> want pi/4... with the 1/2 in H and
    // the 2-angle convention, kappa = pi/2 / (zx * area).
    std::f64::consts::FRAC_PI_2 / (coeffs.zx * area)
}

/// Distortion infidelity of a two-qubit CR pulse: evolve the effective
/// CR Hamiltonian under original and decompressed envelopes.
pub fn distortion_infidelity_cr(original: &Waveform, decompressed: &Waveform) -> f64 {
    let coeffs = CrCoefficients::default();
    let kappa = calibrate_cr(original, &coeffs);
    let u = evolve_cr(original, kappa, &coeffs);
    let v = evolve_cr(decompressed, kappa, &coeffs);
    (1.0 - average_gate_fidelity(&u, &v)).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;
    use compaqt_pulse::shapes::{Drag, Gaussian, PulseShape};

    fn pi_pulse() -> Waveform {
        Gaussian::new(160, 0.5, 40.0).to_waveform("X", 4.54)
    }

    #[test]
    fn calibrated_gaussian_implements_x() {
        let wf = pi_pulse();
        let kappa = calibrate(&wf, std::f64::consts::PI);
        let u = evolve_2level(&wf, kappa);
        // Up to global phase, U == X.
        let f = average_gate_fidelity(&u, &gates::x());
        assert!((f - 1.0).abs() < 1e-9, "fidelity {f}");
    }

    #[test]
    fn half_amplitude_gives_sx() {
        let wf = pi_pulse();
        let kappa = calibrate(&wf, std::f64::consts::PI);
        let half = Waveform::new(
            "SX",
            wf.i().iter().map(|v| v / 2.0).collect(),
            wf.q().to_vec(),
            wf.sample_rate_gs(),
        );
        let u = evolve_2level(&half, kappa);
        let f = average_gate_fidelity(&u, &gates::sx());
        assert!((f - 1.0).abs() < 1e-9, "fidelity {f}");
    }

    #[test]
    fn evolution_is_unitary() {
        let wf = Drag::new(160, 0.4, 40.0, 0.2).to_waveform("X", 4.54);
        let kappa = calibrate(&wf, std::f64::consts::PI);
        assert!(evolve_2level(&wf, kappa).is_unitary(1e-10));
        assert!(evolve_3level(&wf, kappa, -0.3).is_unitary(1e-8));
    }

    #[test]
    fn identical_waveforms_have_zero_distortion() {
        let wf = pi_pulse();
        assert!(distortion_infidelity(&wf, &wf.clone()) < 1e-14);
    }

    #[test]
    fn distortion_grows_with_amplitude_error() {
        let wf = pi_pulse();
        let scale = |f: f64| {
            Waveform::new(
                "d",
                wf.i().iter().map(|v| v * f).collect(),
                wf.q().to_vec(),
                wf.sample_rate_gs(),
            )
        };
        let small = distortion_infidelity(&wf, &scale(1.001));
        let large = distortion_infidelity(&wf, &scale(1.01));
        assert!(large > small);
        // 1% amplitude error on a pi pulse: theta_err = 0.01*pi,
        // infidelity ~ (2/3) sin^2(theta_err/2) ~ 1.6e-4.
        assert!((1e-5..1e-3).contains(&large), "got {large:e}");
    }

    #[test]
    fn drag_reduces_leakage() {
        let plain = Gaussian::new(80, 0.8, 16.0).to_waveform("X", 4.54);
        let kappa = calibrate(&plain, std::f64::consts::PI);
        // Realistic anharmonicity: -330 MHz at 4.54 GS/s sampling ->
        // delta = 2 pi * -0.33 GHz / 4.54 GS/s = -0.457 rad/sample.
        let delta = -0.457;
        let l_plain = leakage(&plain, kappa, delta);
        let dragged = Drag::new(80, 0.8, 16.0, 0.4).to_waveform("Xd", 4.54);
        let l_drag = leakage(&dragged, kappa, delta);
        assert!(l_drag < l_plain, "DRAG should reduce leakage: {l_drag:e} vs {l_plain:e}");
    }

    #[test]
    fn cr_evolution_is_unitary_and_entangling() {
        use compaqt_pulse::shapes::GaussianSquare;
        let wf = GaussianSquare::new(1362, 0.3, 40.0, 1020).to_waveform("CR", 4.54);
        let coeffs = CrCoefficients::default();
        let kappa = calibrate_cr(&wf, &coeffs);
        let u = evolve_cr(&wf, kappa, &coeffs);
        assert!(u.is_unitary(1e-8));
        // A ZX(pi/4)-class gate is locally equivalent to CNOT: it must
        // not be a tensor product. Check entangling power via the
        // magic-basis invariant proxy: |Tr(U U^T...)| — simpler: apply to
        // |+0> and verify the reduced state is mixed (entanglement).
        let mut sv = crate::state::StateVector::zero(2);
        sv.apply_1q(1, &crate::gates::h());
        sv.apply_2q(1, 0, &u);
        // Probability distribution should not factorize: P(00)P(11) !=
        // P(01)P(10) for an entangled state measured in this basis.
        let p = sv.probabilities();
        let det = p[0] * p[3] - p[1] * p[2];
        assert!(det.abs() > 1e-3, "CR gate left the state separable: {p:?}");
    }

    #[test]
    fn cr_distortion_is_zero_for_identical_and_small_when_compressed() {
        use compaqt_core::compress::{Compressor, Variant};
        use compaqt_pulse::shapes::GaussianSquare;
        let wf = GaussianSquare::new(1362, 0.3, 40.0, 1020).to_waveform("CR", 4.54);
        assert!(distortion_infidelity_cr(&wf, &wf.clone()) < 1e-12);
        let z = Compressor::new(Variant::IntDctW { ws: 16 }).compress(&wf).unwrap();
        let back = z.decompress().unwrap();
        let infid = distortion_infidelity_cr(&wf, &back);
        assert!(infid < 1e-3, "got {infid:e}");
    }

    #[test]
    fn compressed_pulse_distortion_is_tiny() {
        use compaqt_core::compress::{Compressor, Variant};
        let wf = Drag::new(160, 0.5, 40.0, 0.2).to_waveform("X", 4.54);
        let z = Compressor::new(Variant::IntDctW { ws: 16 }).compress(&wf).unwrap();
        let back = z.decompress().unwrap();
        let infid = distortion_infidelity(&wf, &back);
        // Less than 0.1% fidelity degradation (abstract's headline claim).
        assert!(infid < 1e-3, "got {infid:e}");
    }
}
