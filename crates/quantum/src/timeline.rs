//! Pulse timelines: lowering a scheduled circuit to per-qubit sample
//! streams.
//!
//! This is the last stage of the control stack (Qiskit Pulse's schedule
//! rendering): each qubit's drive channel is a timeline of waveform
//! playbacks separated by idle gaps. Rendering it validates the whole
//! chain — library waveforms, gate durations and the ASAP schedule agree
//! sample-for-sample — and gives an exact count of the samples the
//! waveform memory must deliver, cross-checking the analytic bandwidth
//! profile of [`crate::schedule`].

use crate::circuits::Op;
use crate::schedule::Schedule;
use compaqt_pulse::library::{GateId, GateKind, PulseLibrary};
use compaqt_pulse::waveform::Waveform;
use serde::{Deserialize, Serialize};

/// One playback on a channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Playback {
    /// Which gate's waveform plays.
    pub gate: GateId,
    /// Start sample index on the channel.
    pub start_sample: usize,
    /// Number of samples.
    pub samples: usize,
}

/// A rendered pulse timeline for every qubit drive channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    /// Sample rate in GS/s.
    pub sample_rate_gs: f64,
    /// Total samples per channel (the schedule makespan).
    pub length: usize,
    /// Playbacks per qubit channel.
    pub channels: Vec<Vec<Playback>>,
}

/// Errors while rendering a timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimelineError {
    /// A scheduled gate has no waveform in the library.
    MissingWaveform(GateId),
    /// Two playbacks overlap on one channel (scheduler bug or wrong
    /// durations).
    Overlap {
        /// The channel (qubit index).
        qubit: usize,
    },
}

impl std::fmt::Display for TimelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TimelineError::MissingWaveform(g) => write!(f, "no waveform for {g}"),
            TimelineError::Overlap { qubit } => write!(f, "overlapping playbacks on qubit {qubit}"),
        }
    }
}

impl std::error::Error for TimelineError {}

/// Maps a basis-circuit op to its library gate (virtual RZ -> None).
pub fn library_gate(op: Op) -> Option<GateId> {
    match op {
        Op::X(q) => Some(GateId::single(GateKind::X, q as u16)),
        Op::Sx(q) => Some(GateId::single(GateKind::Sx, q as u16)),
        Op::Cx(c, t) => Some(GateId::pair(GateKind::Cx, c as u16, t as u16)),
        Op::Measure(q) => Some(GateId::single(GateKind::Measure, q as u16)),
        _ => None,
    }
}

/// Renders a schedule into per-channel playbacks using a device library.
///
/// Multi-qubit gates are attributed to their first (drive) qubit's
/// channel, matching how CR pulses drive the control qubit.
///
/// # Errors
///
/// Returns [`TimelineError`] if a waveform is missing or playbacks
/// overlap.
pub fn render(
    schedule: &Schedule,
    library: &PulseLibrary,
    sample_rate_gs: f64,
) -> Result<Timeline, TimelineError> {
    let mut channels: Vec<Vec<Playback>> = vec![Vec::new(); schedule.n_qubits];
    let mut length = 0usize;
    for sop in &schedule.ops {
        let Some(gate) = library_gate(sop.op) else { continue };
        let wf = library.get(&gate).ok_or_else(|| TimelineError::MissingWaveform(gate.clone()))?;
        let channel = gate.qubits[0] as usize;
        let start_sample = (sop.start_ns * sample_rate_gs).round() as usize;
        let playback = Playback { gate, start_sample, samples: wf.len() };
        length = length.max(start_sample + wf.len());
        channels[channel].push(playback);
    }
    // Overlap check per channel.
    for (qubit, plays) in channels.iter_mut().enumerate() {
        plays.sort_by_key(|p| p.start_sample);
        for w in plays.windows(2) {
            if w[0].start_sample + w[0].samples > w[1].start_sample {
                return Err(TimelineError::Overlap { qubit });
            }
        }
    }
    Ok(Timeline { sample_rate_gs, length, channels })
}

impl Timeline {
    /// Total samples the waveform memory streams over the schedule (all
    /// channels, per I/Q pair counted once).
    pub fn total_samples(&self) -> usize {
        self.channels.iter().flatten().map(|p| p.samples).sum()
    }

    /// Duty cycle of channel `q`: fraction of the makespan it is driven.
    pub fn duty_cycle(&self, q: usize) -> f64 {
        if self.length == 0 {
            return 0.0;
        }
        let busy: usize = self.channels[q].iter().map(|p| p.samples).sum();
        busy as f64 / self.length as f64
    }

    /// Renders channel `q`'s concatenated I-channel samples (idle = 0) —
    /// the stream the DAC actually sees.
    pub fn channel_samples(&self, q: usize, library: &PulseLibrary) -> Vec<f64> {
        let mut out = vec![0.0; self.length];
        for p in &self.channels[q] {
            if let Some(wf) = library.get(&p.gate) {
                for (k, &v) in wf.i().iter().enumerate() {
                    if p.start_sample + k < out.len() {
                        out[p.start_sample + k] = v;
                    }
                }
            }
        }
        out
    }

    /// Average memory bandwidth implied by the rendered samples, in GB/s
    /// at `bytes_per_sample` — the exact counterpart of the analytic
    /// profile from [`crate::schedule::profile`].
    pub fn average_bandwidth_gb(&self, bytes_per_sample: f64) -> f64 {
        if self.length == 0 {
            return 0.0;
        }
        // samples * bytes / (length / rate) seconds.
        let seconds = self.length as f64 / (self.sample_rate_gs * 1e9);
        self.total_samples() as f64 * bytes_per_sample / seconds / 1e9
    }
}

/// Reconstructs a single composite waveform for one channel (useful for
/// plotting and for compressing whole-channel streams).
pub fn channel_waveform(timeline: &Timeline, q: usize, library: &PulseLibrary) -> Waveform {
    Waveform::from_real(
        format!("channel-q{q}"),
        timeline.channel_samples(q, library),
        timeline.sample_rate_gs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuits::{self, Circuit};
    use crate::schedule::{asap, profile};
    use crate::transpile::transpile;
    use compaqt_pulse::device::Device;
    use compaqt_pulse::vendor::Vendor;

    fn star_device() -> Device {
        let edges = [(0usize, 4usize), (1, 4), (2, 4), (3, 4)];
        Device::synthesize_with_edges(Vendor::Ibm, 5, 0x71E, &edges)
    }

    fn rendered(circuit: &Circuit) -> (Timeline, std::sync::Arc<PulseLibrary>) {
        let device = star_device();
        let lib = device.pulse_library();
        let t = transpile(circuit);
        let sched = asap(&t, device.params());
        let timeline = render(&sched, &lib, device.params().sampling_rate_gs).unwrap();
        (timeline, lib)
    }

    #[test]
    fn bv_renders_without_overlap() {
        let (timeline, _) = rendered(&circuits::bernstein_vazirani(4, 0b1011));
        assert!(timeline.length > 0);
        assert!(timeline.total_samples() > 0);
    }

    #[test]
    fn duty_cycle_is_bounded() {
        let (timeline, _) = rendered(&circuits::bernstein_vazirani(4, 0b1011));
        for q in 0..5 {
            let d = timeline.duty_cycle(q);
            assert!((0.0..=1.0).contains(&d), "q{q}: {d}");
        }
    }

    #[test]
    fn channel_samples_match_playback_content() {
        let (timeline, lib) = rendered(&circuits::bernstein_vazirani(4, 0b0001));
        let samples = timeline.channel_samples(0, &lib);
        assert_eq!(samples.len(), timeline.length);
        // The channel is non-trivial where playbacks exist.
        let energy: f64 = samples.iter().map(|v| v * v).sum();
        assert!(energy > 0.0);
    }

    #[test]
    fn rendered_bandwidth_is_close_to_analytic_average() {
        let device = star_device();
        let lib = device.pulse_library();
        let t = transpile(&circuits::bernstein_vazirani(4, 0b1111));
        let sched = asap(&t, device.params());
        let timeline = render(&sched, &lib, device.params().sampling_rate_gs).unwrap();
        // Analytic profile counts every qubit of a 2Q gate as a channel;
        // the timeline attributes the CR pulse to the drive qubit only,
        // so the rendered number is lower but within 2.5x.
        let analytic = profile(&sched, device.params().bandwidth_per_qubit_gb());
        let rendered_bw = timeline.average_bandwidth_gb(4.0);
        let ratio = analytic.average_bandwidth_gb / rendered_bw;
        assert!((1.0..2.5).contains(&ratio), "analytic/rendered = {ratio}");
    }

    #[test]
    fn missing_waveform_is_reported() {
        let device = star_device();
        let lib = device.pulse_library();
        // A CX on an uncoupled pair is not in the library.
        let mut c = Circuit::new("bad", 5);
        c.push(crate::circuits::Op::Cx(0, 1));
        let sched = asap(&c, device.params());
        let err = render(&sched, &lib, 4.54).unwrap_err();
        assert!(matches!(err, TimelineError::MissingWaveform(_)));
    }

    #[test]
    fn composite_channel_waveform_compresses() {
        // Whole-channel streams (pulses + idle gaps) are even more
        // compressible than isolated pulses: the idle zeros RLE away.
        use compaqt_core::compress::{Compressor, Variant};
        let (timeline, lib) = rendered(&circuits::bernstein_vazirani(4, 0b1010));
        let wf = channel_waveform(&timeline, 4, &lib);
        let z = Compressor::new(Variant::IntDctW { ws: 16 }).compress(&wf).unwrap();
        assert!(z.ratio().ratio() > 4.0, "got {}", z.ratio());
    }
}
