//! State-vector simulation.
//!
//! Little-endian convention: basis index bit `q` is the state of qubit
//! `q`. Multi-qubit gate matrices act on sub-indices ordered
//! most-significant-qubit first, matching [`crate::gates`].

use crate::linalg::{CMatrix, Complex, C_ONE, C_ZERO};
use rand::RngExt;

/// A pure state of `n` qubits.
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    n_qubits: usize,
    amps: Vec<Complex>,
}

impl StateVector {
    /// The all-zeros state `|0...0>`.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits` is 0 or large enough to overflow memory
    /// (> 24 qubits).
    pub fn zero(n_qubits: usize) -> Self {
        assert!(n_qubits > 0, "need at least one qubit");
        assert!(n_qubits <= 24, "state vector too large");
        let mut amps = vec![C_ZERO; 1 << n_qubits];
        amps[0] = C_ONE;
        StateVector { n_qubits, amps }
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Amplitude of basis state `k`.
    pub fn amplitude(&self, k: usize) -> Complex {
        self.amps[k]
    }

    /// Applies a single-qubit unitary to qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not 2x2 or `q` is out of range.
    pub fn apply_1q(&mut self, q: usize, m: &CMatrix) {
        assert_eq!(m.dim(), 2, "expected a 2x2 matrix");
        assert!(q < self.n_qubits, "qubit {q} out of range");
        let bit = 1usize << q;
        for base in 0..self.amps.len() {
            if base & bit != 0 {
                continue;
            }
            let i0 = base;
            let i1 = base | bit;
            let a0 = self.amps[i0];
            let a1 = self.amps[i1];
            self.amps[i0] = m[(0, 0)] * a0 + m[(0, 1)] * a1;
            self.amps[i1] = m[(1, 0)] * a0 + m[(1, 1)] * a1;
        }
    }

    /// Applies a two-qubit unitary; `hi` is the gate's first (most
    /// significant) qubit — e.g. the control of [`crate::gates::cx`].
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not 4x4 or qubits collide/overflow.
    pub fn apply_2q(&mut self, hi: usize, lo: usize, m: &CMatrix) {
        assert_eq!(m.dim(), 4, "expected a 4x4 matrix");
        assert!(hi != lo, "qubits must differ");
        assert!(hi < self.n_qubits && lo < self.n_qubits, "qubit out of range");
        let (bh, bl) = (1usize << hi, 1usize << lo);
        for base in 0..self.amps.len() {
            if base & bh != 0 || base & bl != 0 {
                continue;
            }
            let idx = [base, base | bl, base | bh, base | bh | bl];
            let amps: Vec<Complex> = idx.iter().map(|&i| self.amps[i]).collect();
            for (r, &i) in idx.iter().enumerate() {
                let mut acc = C_ZERO;
                for (col, &a) in amps.iter().enumerate() {
                    acc += m[(r, col)] * a;
                }
                self.amps[i] = acc;
            }
        }
    }

    /// Applies a three-qubit unitary; qubit order is most significant
    /// first, matching [`crate::gates::toffoli`].
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not 8x8 or qubits collide/overflow.
    pub fn apply_3q(&mut self, q2: usize, q1: usize, q0: usize, m: &CMatrix) {
        assert_eq!(m.dim(), 8, "expected an 8x8 matrix");
        assert!(q2 != q1 && q1 != q0 && q2 != q0, "qubits must differ");
        let bits = [1usize << q2, 1usize << q1, 1usize << q0];
        for base in 0..self.amps.len() {
            if bits.iter().any(|&b| base & b != 0) {
                continue;
            }
            let idx: Vec<usize> = (0..8)
                .map(|k| {
                    let mut i = base;
                    if k & 4 != 0 {
                        i |= bits[0];
                    }
                    if k & 2 != 0 {
                        i |= bits[1];
                    }
                    if k & 1 != 0 {
                        i |= bits[2];
                    }
                    i
                })
                .collect();
            let amps: Vec<Complex> = idx.iter().map(|&i| self.amps[i]).collect();
            for (r, &i) in idx.iter().enumerate() {
                let mut acc = C_ZERO;
                for (col, &a) in amps.iter().enumerate() {
                    acc += m[(r, col)] * a;
                }
                self.amps[i] = acc;
            }
        }
    }

    /// Measurement probabilities over all basis states.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.abs2()).collect()
    }

    /// Probability of measuring all qubits in |0>.
    pub fn ground_population(&self) -> f64 {
        self.amps[0].abs2()
    }

    /// Samples `shots` measurement outcomes.
    pub fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R, shots: usize) -> Vec<usize> {
        let probs = self.probabilities();
        let mut cdf = Vec::with_capacity(probs.len());
        let mut acc = 0.0;
        for p in probs {
            acc += p;
            cdf.push(acc);
        }
        (0..shots)
            .map(|_| {
                let r: f64 = rng.random::<f64>() * acc;
                cdf.partition_point(|&x| x < r).min(cdf.len() - 1)
            })
            .collect()
    }

    /// Norm of the state (should be 1 up to rounding).
    pub fn norm(&self) -> f64 {
        self.amps.iter().map(|a| a.abs2()).sum::<f64>().sqrt()
    }
}

/// Empirical distribution over basis states from sampled outcomes.
pub fn distribution(outcomes: &[usize], dim: usize) -> Vec<f64> {
    let mut d = vec![0.0; dim];
    for &o in outcomes {
        d[o] += 1.0;
    }
    let n = outcomes.len().max(1) as f64;
    for v in &mut d {
        *v /= n;
    }
    d
}

/// Total variational distance between two distributions (Equation 3 uses
/// `F = 1 - TVD`).
///
/// # Panics
///
/// Panics if the distributions differ in length.
pub fn tvd(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distributions must have equal support");
    0.5 * p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn x_flips_qubit() {
        let mut sv = StateVector::zero(2);
        sv.apply_1q(1, &gates::x());
        assert!((sv.amplitude(0b10).abs2() - 1.0).abs() < 1e-14);
    }

    #[test]
    fn hadamard_gives_uniform() {
        let mut sv = StateVector::zero(1);
        sv.apply_1q(0, &gates::h());
        let p = sv.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-14);
        assert!((p[1] - 0.5).abs() < 1e-14);
    }

    #[test]
    fn bell_state_via_h_and_cx() {
        let mut sv = StateVector::zero(2);
        sv.apply_1q(1, &gates::h());
        sv.apply_2q(1, 0, &gates::cx());
        let p = sv.probabilities();
        assert!((p[0b00] - 0.5).abs() < 1e-14);
        assert!((p[0b11] - 0.5).abs() < 1e-14);
        assert!(p[0b01].abs() < 1e-14);
    }

    #[test]
    fn cx_control_is_high_qubit() {
        let mut sv = StateVector::zero(2);
        // Set only q0 (the target slot): no flip expected.
        sv.apply_1q(0, &gates::x());
        sv.apply_2q(1, 0, &gates::cx());
        assert!((sv.amplitude(0b01).abs2() - 1.0).abs() < 1e-14);
        // Set control q1: target toggles.
        let mut sv = StateVector::zero(2);
        sv.apply_1q(1, &gates::x());
        sv.apply_2q(1, 0, &gates::cx());
        assert!((sv.amplitude(0b11).abs2() - 1.0).abs() < 1e-14);
    }

    #[test]
    fn toffoli_needs_both_controls() {
        let mut sv = StateVector::zero(3);
        sv.apply_1q(2, &gates::x());
        sv.apply_3q(2, 1, 0, &gates::toffoli());
        assert!((sv.amplitude(0b100).abs2() - 1.0).abs() < 1e-14, "one control: no flip");
        let mut sv = StateVector::zero(3);
        sv.apply_1q(2, &gates::x());
        sv.apply_1q(1, &gates::x());
        sv.apply_3q(2, 1, 0, &gates::toffoli());
        assert!((sv.amplitude(0b111).abs2() - 1.0).abs() < 1e-14, "both controls: flip");
    }

    #[test]
    fn norm_is_preserved() {
        let mut sv = StateVector::zero(3);
        sv.apply_1q(0, &gates::h());
        sv.apply_2q(2, 0, &gates::cx());
        sv.apply_1q(1, &gates::t());
        sv.apply_2q(1, 2, &gates::swap());
        assert!((sv.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gate_on_nonadjacent_qubits() {
        let mut sv = StateVector::zero(4);
        sv.apply_1q(3, &gates::x());
        sv.apply_2q(3, 0, &gates::cx());
        assert!((sv.amplitude(0b1001).abs2() - 1.0).abs() < 1e-14);
    }

    #[test]
    fn sampling_matches_probabilities() {
        let mut sv = StateVector::zero(1);
        sv.apply_1q(0, &gates::h());
        let mut rng = StdRng::seed_from_u64(7);
        let outcomes = sv.sample(&mut rng, 20_000);
        let d = distribution(&outcomes, 2);
        assert!((d[0] - 0.5).abs() < 0.02, "got {}", d[0]);
    }

    #[test]
    fn tvd_properties() {
        assert_eq!(tvd(&[1.0, 0.0], &[1.0, 0.0]), 0.0);
        assert_eq!(tvd(&[1.0, 0.0], &[0.0, 1.0]), 1.0);
        assert!((tvd(&[0.5, 0.5], &[0.75, 0.25]) - 0.25).abs() < 1e-14);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn apply_rejects_bad_qubit() {
        StateVector::zero(2).apply_1q(5, &gates::x());
    }
}
