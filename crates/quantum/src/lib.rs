//! # compaqt-quantum
//!
//! Quantum-dynamics substrate for the COMPAQT reproduction
//! (Maurya & Tannu, MICRO 2022).
//!
//! The paper evaluates gate and circuit fidelity on real IBM machines.
//! This crate substitutes that hardware with simulation whose error model
//! is *driven by the actual waveform pipeline*: the only way compression
//! can degrade fidelity is by distorting a pulse envelope, and the
//! distortion-induced error is computed by time-evolving a transmon under
//! the original versus decompressed waveforms.
//!
//! * [`linalg`] — complex vectors/matrices, matrix exponential, average
//!   gate fidelity.
//! * [`gates`] — standard gate unitaries.
//! * [`state`] — state-vector simulation and TVD.
//! * [`transmon`] — pulse-to-unitary evolution (2- and 3-level), leakage,
//!   distortion infidelity.
//! * [`errors`] — the stochastic + coherent noise model anchored to IBM
//!   baselines.
//! * [`rb`] — randomized benchmarking (Figure 9, Table III).
//! * [`circuits`] — the Table VI benchmark suite.
//! * [`transpile`] — lowering to the {RZ, SX, X, CX} hardware basis.
//! * [`schedule`] — ASAP scheduling and bandwidth profiling (Figure 5c).
//! * [`surface`] — surface-code patches and syndrome cycles
//!   (surface-17/25/81).
//! * [`fidelity`] — TVD benchmark fidelity (Figure 15).
//!
//! # Role in the COMPAQT pipeline
//!
//! This crate closes the loop on the paper's central claim: compression
//! is only acceptable if it does not hurt *computation*. The codec in
//! `compaqt-core` reports MSE; this crate converts waveform distortion
//! into gate infidelity, randomized-benchmarking error per Clifford, and
//! end-to-end benchmark fidelity, so a threshold choice can be judged in
//! the units experimentalists care about. Nothing here depends on how a
//! waveform was produced — original and decompressed envelopes go
//! through the identical evolution path, so any fidelity difference is
//! attributable to the codec alone.
//!
//! # Example
//!
//! ```
//! use compaqt_quantum::{circuits, errors::NoiseModel, fidelity};
//!
//! let circuit = circuits::qft(4);
//! let f = fidelity::benchmark_fidelity(&circuit, &NoiseModel::ibm_baseline(), 50, 7);
//! assert!(f > 0.5 && f <= 1.0);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod circuits;
pub mod errors;
pub mod fidelity;
pub mod gates;
pub mod linalg;
pub mod rb;
pub mod schedule;
pub mod state;
pub mod surface;
pub mod timeline;
pub mod transmon;
pub mod transpile;

pub use circuits::Circuit;
pub use errors::NoiseModel;
pub use linalg::{CMatrix, Complex};
pub use state::StateVector;
