//! Benchmark circuits (Table VI).
//!
//! The fidelity benchmarks: swap, toffoli, qft-4, adder-4, bv-5, and the
//! qaoa family; plus builders used by the scalability experiments.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use std::f64::consts::PI;
use std::fmt;

/// A circuit operation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Op {
    /// Pauli X.
    X(usize),
    /// sqrt(X) (IBM basis gate).
    Sx(usize),
    /// Hadamard.
    H(usize),
    /// Z rotation (virtual on hardware).
    Rz(usize, f64),
    /// CNOT (control, target).
    Cx(usize, usize),
    /// Controlled-Z.
    Cz(usize, usize),
    /// Controlled phase.
    Cp(usize, usize, f64),
    /// SWAP.
    Swap(usize, usize),
    /// Toffoli (c1, c2, target).
    Ccx(usize, usize, usize),
    /// Readout.
    Measure(usize),
}

impl Op {
    /// Qubits the operation touches.
    pub fn qubits(&self) -> Vec<usize> {
        match *self {
            Op::X(q) | Op::Sx(q) | Op::H(q) | Op::Rz(q, _) | Op::Measure(q) => vec![q],
            Op::Cx(a, b) | Op::Cz(a, b) | Op::Cp(a, b, _) | Op::Swap(a, b) => vec![a, b],
            Op::Ccx(a, b, c) => vec![a, b, c],
        }
    }

    /// True for gates that need no waveform (virtual Z).
    pub fn is_virtual(&self) -> bool {
        matches!(self, Op::Rz(..))
    }
}

/// A gate-level quantum circuit.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Circuit {
    /// Number of qubits.
    pub n_qubits: usize,
    /// Circuit name.
    pub name: String,
    /// Operations in program order.
    pub ops: Vec<Op>,
}

impl Circuit {
    /// Creates an empty circuit.
    pub fn new(name: impl Into<String>, n_qubits: usize) -> Self {
        Circuit { n_qubits, name: name.into(), ops: Vec::new() }
    }

    /// Appends an operation.
    ///
    /// # Panics
    ///
    /// Panics if the op references a qubit out of range.
    pub fn push(&mut self, op: Op) {
        assert!(
            op.qubits().iter().all(|&q| q < self.n_qubits),
            "op {op:?} out of range for {} qubits",
            self.n_qubits
        );
        self.ops.push(op);
    }

    /// Appends measurement of every qubit (the concurrent final readout
    /// every NISQ circuit ends with — Section III-A).
    pub fn measure_all(&mut self) {
        for q in 0..self.n_qubits {
            self.ops.push(Op::Measure(q));
        }
    }

    /// Number of CNOTs (after no decomposition; see
    /// [`crate::transpile::transpile`] for basis counts).
    pub fn cx_count(&self) -> usize {
        self.ops.iter().filter(|o| matches!(o, Op::Cx(..))).count()
    }

    /// Number of non-virtual operations.
    pub fn gate_count(&self) -> usize {
        self.ops.iter().filter(|o| !o.is_virtual()).count()
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} qubits, {} ops)", self.name, self.n_qubits, self.ops.len())
    }
}

/// The 2-qubit swap benchmark (3 CNOTs).
pub fn swap() -> Circuit {
    let mut c = Circuit::new("swap", 2);
    c.push(Op::X(0));
    c.push(Op::Swap(0, 1));
    c.measure_all();
    c
}

/// The 3-qubit Toffoli benchmark.
pub fn toffoli() -> Circuit {
    let mut c = Circuit::new("toffoli", 3);
    c.push(Op::X(0));
    c.push(Op::X(1));
    c.push(Op::Ccx(0, 1, 2));
    c.measure_all();
    c
}

/// n-qubit Quantum Fourier Transform echo benchmark (qft-4 in Table VI):
/// prepares a basis state, applies QFT then its inverse, and measures.
///
/// The echo makes the ideal output a single basis state, so the TVD
/// fidelity metric is sensitive to gate noise (a bare QFT ends in a
/// uniform distribution that TVD cannot distinguish from noise).
pub fn qft(n: usize) -> Circuit {
    let mut c = Circuit::new(format!("qft-{n}"), n);
    c.push(Op::X(0));
    if n > 2 {
        c.push(Op::X(n - 2));
    }
    let mut body: Vec<Op> = Vec::new();
    for q in (0..n).rev() {
        body.push(Op::H(q));
        for t in (0..q).rev() {
            body.push(Op::Cp(t, q, PI / f64::from(1u32 << (q - t))));
        }
    }
    for q in 0..n / 2 {
        body.push(Op::Swap(q, n - 1 - q));
    }
    for &op in &body {
        c.push(op);
    }
    for &op in body.iter().rev() {
        let inv = match op {
            Op::Cp(a, b, theta) => Op::Cp(a, b, -theta),
            other => other, // H and SWAP are self-inverse
        };
        c.push(inv);
    }
    c.measure_all();
    c
}

/// 4-bit ripple-carry adder fragment (adder-4 in Table VI): adds |a=11>
/// to |b=01> using Toffoli/CNOT majority logic.
pub fn adder4() -> Circuit {
    let mut c = Circuit::new("adder-4", 4);
    // a = q0,q1 ; b = q2,q3 (little endian)
    c.push(Op::X(0));
    c.push(Op::X(1));
    c.push(Op::X(2));
    // bit 0: sum and carry
    c.push(Op::Ccx(0, 2, 3));
    c.push(Op::Cx(0, 2));
    // carry into bit 1
    c.push(Op::Ccx(1, 3, 2));
    c.push(Op::Cx(1, 3));
    // propagate
    c.push(Op::Cx(3, 1));
    c.push(Op::Ccx(0, 1, 3));
    c.push(Op::Cx(0, 1));
    c.measure_all();
    c
}

/// Bernstein-Vazirani with an `n-1`-bit secret (bv-5 uses 6 qubits in
/// Table VI: 5 data + 1 ancilla).
pub fn bernstein_vazirani(n_data: usize, secret: u64) -> Circuit {
    let n = n_data + 1;
    let anc = n_data;
    let mut c = Circuit::new(format!("bv-{n_data}"), n);
    c.push(Op::X(anc));
    c.push(Op::H(anc));
    for q in 0..n_data {
        c.push(Op::H(q));
    }
    for q in 0..n_data {
        if secret >> q & 1 == 1 {
            c.push(Op::Cx(q, anc));
        }
    }
    for q in 0..n_data {
        c.push(Op::H(q));
    }
    for q in 0..n_data {
        c.push(Op::Measure(q));
    }
    c
}

/// QAOA on a random 3-regular-ish graph with `layers` alternating
/// cost/mixer layers (the qaoa-6/8a/8b/10/40 family).
pub fn qaoa(n: usize, layers: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(format!("qaoa-{n}"), n);
    // Random graph: each qubit connects to ~3 neighbours.
    let mut edges = Vec::new();
    for a in 0..n {
        for _ in 0..2 {
            let b = rng.random_range(0..n);
            if a != b {
                let e = (a.min(b), a.max(b));
                if !edges.contains(&e) {
                    edges.push(e);
                }
            }
        }
    }
    for q in 0..n {
        c.push(Op::H(q));
    }
    for layer in 0..layers {
        let gamma = 0.4 + 0.15 * layer as f64;
        let beta = 0.7 - 0.1 * layer as f64;
        for &(a, b) in &edges {
            // ZZ interaction: CX - RZ - CX.
            c.push(Op::Cx(a, b));
            c.push(Op::Rz(b, 2.0 * gamma));
            c.push(Op::Cx(a, b));
        }
        for q in 0..n {
            // Mixer RX = H RZ H.
            c.push(Op::H(q));
            c.push(Op::Rz(q, 2.0 * beta));
            c.push(Op::H(q));
        }
    }
    c.measure_all();
    c
}

/// The Table VI fidelity-benchmark suite with qubit counts and CNOT
/// budgets in the paper's regime.
pub fn table_vi_suite() -> Vec<Circuit> {
    let mut qaoa_8a = qaoa(8, 2, 81);
    qaoa_8a.name = "qaoa-8a".to_string();
    let mut qaoa_8b = qaoa(8, 3, 82);
    qaoa_8b.name = "qaoa-8b".to_string();
    vec![
        swap(),
        toffoli(),
        qft(4),
        adder4(),
        bernstein_vazirani(5, 0b10110),
        qaoa(6, 4, 60),
        qaoa_8a,
        qaoa_8b,
        qaoa(10, 3, 100),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swap_has_expected_shape() {
        let c = swap();
        assert_eq!(c.n_qubits, 2);
        assert!(c.ops.iter().any(|o| matches!(o, Op::Swap(..))));
    }

    #[test]
    fn qft4_matches_table_vi_qubits() {
        let c = qft(4);
        assert_eq!(c.n_qubits, 4);
        // 6 controlled-phases each way (echo) decompose to ~27+ CNOTs.
        assert_eq!(c.ops.iter().filter(|o| matches!(o, Op::Cp(..))).count(), 12);
    }

    #[test]
    fn bv_measures_only_data_qubits() {
        let c = bernstein_vazirani(5, 0b10110);
        assert_eq!(c.n_qubits, 6);
        assert_eq!(c.ops.iter().filter(|o| matches!(o, Op::Measure(_))).count(), 5);
        // CNOT count equals secret weight (paper lists 2-3 CNOTs for bv-5).
        assert_eq!(c.cx_count(), 3);
    }

    #[test]
    fn qaoa_is_deterministic_per_seed() {
        assert_eq!(qaoa(8, 2, 81), qaoa(8, 2, 81));
        assert_ne!(qaoa(8, 2, 81), qaoa(8, 2, 82));
    }

    #[test]
    fn qaoa_cx_count_grows_with_layers() {
        assert!(qaoa(6, 4, 1).cx_count() > qaoa(6, 2, 1).cx_count());
    }

    #[test]
    fn suite_matches_table_vi_sizes() {
        let suite = table_vi_suite();
        let sizes: Vec<usize> = suite.iter().map(|c| c.n_qubits).collect();
        assert_eq!(sizes, vec![2, 3, 4, 4, 6, 6, 8, 8, 10]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_validates_qubits() {
        Circuit::new("bad", 2).push(Op::Cx(0, 5));
    }

    #[test]
    fn measure_all_is_concurrent_tail() {
        let c = qft(4);
        let tail: Vec<_> = c.ops.iter().rev().take(4).collect();
        assert!(tail.iter().all(|o| matches!(o, Op::Measure(_))));
    }
}
