//! Fidelity-aware compression inside the calibration loop.
//!
//! Section IV-C: "We can take a step further and integrate the
//! Fidelity-Aware compression within the gate calibration loop." Machines
//! recalibrate every few hours; after each cycle the waveform library
//! changes and must be recompressed before it is loaded into the
//! controller. This module models that loop: apply parameter drift,
//! regenerate the library, run Algorithm 1 per waveform against a target
//! MSE, and report the outcome — demonstrating that compression adds
//! negligible time to a calibration cycle (Figure 20's conclusion).

use crate::compress::{CompressedWaveform, Compressor};
use crate::CompressError;
use compaqt_dsp::metrics::Summary;
use compaqt_pulse::device::Device;
use compaqt_pulse::library::GateId;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// A fully compressed pulse library: one coded stream per gate.
pub type CompressedLibrary = Vec<(GateId, CompressedWaveform)>;

/// Result of recompressing one calibration cycle's library.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CycleReport {
    /// Cycle index.
    pub cycle: usize,
    /// Waveforms recompressed.
    pub waveforms: usize,
    /// Waveforms that met the target at the default threshold.
    pub met_at_default: usize,
    /// Waveforms that needed Algorithm 1 to lower the threshold.
    pub tuned: usize,
    /// Waveforms that could not meet the target (stored uncompressed).
    pub fallback_uncompressed: usize,
    /// Min/avg/max compression ratio achieved.
    pub ratio: Summary,
    /// Wall-clock seconds spent compressing.
    pub compression_seconds: f64,
}

/// The calibration-loop model.
#[derive(Debug, Clone)]
pub struct CalibrationLoop {
    device: Device,
    compressor: Compressor,
    target_mse: f64,
    drift_magnitude: f64,
}

impl CalibrationLoop {
    /// Creates a loop around a device with a per-waveform MSE target.
    pub fn new(device: Device, compressor: Compressor, target_mse: f64) -> Self {
        CalibrationLoop { device, compressor, target_mse, drift_magnitude: 0.02 }
    }

    /// Sets the relative drift applied between cycles (default 2%).
    pub fn with_drift(mut self, magnitude: f64) -> Self {
        self.drift_magnitude = magnitude;
        self
    }

    /// Runs `cycles` calibration cycles, returning one report per cycle
    /// and the final compressed library.
    ///
    /// # Errors
    ///
    /// Propagates structural compression errors (bad window sizes); pulses
    /// that merely miss the MSE target are counted as fallbacks, not
    /// errors — the controller stores those uncompressed, as Algorithm 1
    /// prescribes (`return -1`).
    pub fn run(
        &self,
        cycles: usize,
    ) -> Result<(Vec<CycleReport>, CompressedLibrary), CompressError> {
        let mut reports = Vec::with_capacity(cycles);
        let mut final_library = Vec::new();
        let mut device = self.device.clone();
        for cycle in 0..cycles {
            device = device.with_drift(cycle as u64 + 1, self.drift_magnitude);
            let lib = device.pulse_library();
            let start = Instant::now();
            let mut met = 0usize;
            let mut tuned = 0usize;
            let mut fallback = 0usize;
            let mut ratios = Vec::with_capacity(lib.len());
            let mut compressed = Vec::with_capacity(lib.len());
            for (gate, wf) in lib.iter() {
                match self.compressor.compress_with_target(wf, self.target_mse) {
                    Ok((z, threshold)) => {
                        if (threshold - self.compressor.threshold()).abs() < f64::EPSILON {
                            met += 1;
                        } else {
                            tuned += 1;
                        }
                        ratios.push(z.ratio().ratio());
                        compressed.push((gate.clone(), z));
                    }
                    Err(CompressError::TargetUnreachable { .. }) => {
                        fallback += 1;
                        ratios.push(1.0);
                    }
                    Err(other) => return Err(other),
                }
            }
            reports.push(CycleReport {
                cycle,
                waveforms: lib.len(),
                met_at_default: met,
                tuned,
                fallback_uncompressed: fallback,
                ratio: Summary::of(ratios).expect("library is non-empty"),
                compression_seconds: start.elapsed().as_secs_f64(),
            });
            final_library = compressed;
        }
        Ok((reports, final_library))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::Variant;
    use compaqt_pulse::vendor::Vendor;

    fn small_loop(target: f64) -> CalibrationLoop {
        let device = Device::synthesize(Vendor::Ibm, 3, 0xCA1);
        let compressor = Compressor::new(Variant::IntDctW { ws: 16 });
        CalibrationLoop::new(device, compressor, target)
    }

    #[test]
    fn cycles_produce_reports_and_library() {
        let (reports, library) = small_loop(1e-4).run(3).unwrap();
        assert_eq!(reports.len(), 3);
        assert!(!library.is_empty());
        for r in &reports {
            assert_eq!(r.waveforms, r.met_at_default + r.tuned + r.fallback_uncompressed);
            assert!(r.compression_seconds < 5.0, "compression must be fast");
        }
    }

    #[test]
    fn loose_target_needs_no_tuning() {
        let (reports, _) = small_loop(1e-3).run(1).unwrap();
        assert_eq!(reports[0].tuned, 0, "default threshold already meets 1e-3");
        assert_eq!(reports[0].fallback_uncompressed, 0);
    }

    #[test]
    fn tight_target_invokes_algorithm_1() {
        let (reports, library) = small_loop(5e-7).run(1).unwrap();
        assert!(reports[0].tuned > 0, "5e-7 forces threshold halving");
        // All compressed pulses genuinely meet the target.
        for (gate, z) in &library {
            let restored = z.decompress().unwrap();
            let lib_dev = Device::synthesize(Vendor::Ibm, 3, 0xCA1)
                .with_drift(1, 0.02)
                .pulse_library()
                .get(gate)
                .cloned();
            if let Some(orig) = lib_dev {
                assert!(orig.mse(&restored) <= 5e-7, "{gate}");
            }
        }
    }

    #[test]
    fn drift_changes_the_library_each_cycle() {
        let device = Device::synthesize(Vendor::Ibm, 2, 0xD1);
        let d1 = device.with_drift(1, 0.02);
        let d2 = d1.with_drift(2, 0.02);
        assert_ne!(d1.qubit(0).x_amp, d2.qubit(0).x_amp);
        assert_ne!(device.qubit(0).x_amp, d1.qubit(0).x_amp);
    }

    #[test]
    fn tuned_cycles_still_compress_well() {
        let (reports, _) = small_loop(1e-5).run(2).unwrap();
        for r in &reports {
            assert!(r.ratio.avg > 3.0, "cycle {}: avg ratio {}", r.cycle, r.ratio.avg);
        }
    }
}
