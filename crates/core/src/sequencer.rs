//! The COMPAQT controller: pulse sequencer, instruction buffer, waveform
//! table and per-channel decompression engines (Figure 6).
//!
//! The sequencer triggers gates at scheduled times; each active gate
//! streams its waveform's windows from the banked compressed memory
//! through a decompression engine to the DAC. The controller has a finite
//! bank budget, so only so many channels can stream concurrently — this
//! module turns the static Table V arithmetic into a dynamic simulation:
//! load a real library, play a real schedule, and observe whether the
//! memory system keeps up (Figure 2c's "5x more concurrent gates").

use crate::compress::{CompressedWaveform, Compressor};
use crate::engine::{DecompressionEngine, EngineStats};
use crate::memory::{banks_per_channel, BankedMemory, ChannelHandle};
use crate::CompressError;
use compaqt_pulse::library::{GateId, PulseLibrary};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Static configuration of a controller's waveform-memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// Total memory banks available for waveform streaming.
    pub total_banks: usize,
    /// DAC-to-fabric clock ratio (16 on QICK).
    pub clock_ratio: usize,
    /// Transform window size (= samples produced per engine fire).
    pub window: usize,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        // QICK-class: 1260 BRAMs minus system overhead.
        ControllerConfig { total_banks: 1152, clock_ratio: 16, window: 16 }
    }
}

/// One sequencer instruction: fire a gate's waveform at a start time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instruction {
    /// Which waveform to play.
    pub gate: GateId,
    /// Start time in nanoseconds.
    pub start_ns: f64,
}

/// A waveform's residency in the controller: its two channel handles and
/// stream metadata.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Residency {
    i: ChannelHandle,
    q: ChannelHandle,
    n_samples: usize,
    duration_ns: f64,
    banks_needed: usize,
}

/// Outcome of playing a schedule on the controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Gates issued.
    pub instructions: usize,
    /// Peak banks demanded by concurrently streaming channels.
    pub peak_banks_demanded: usize,
    /// Peak concurrent gates.
    pub peak_concurrent_gates: usize,
    /// Time (ns) during which demand exceeded the bank budget.
    pub oversubscribed_ns: f64,
    /// Total schedule duration in ns.
    pub makespan_ns: f64,
    /// DAC samples streamed (both channels).
    pub samples_streamed: usize,
    /// Memory words fetched.
    pub words_fetched: usize,
}

impl RunReport {
    /// True if the memory system sustained the schedule with no
    /// oversubscription.
    pub fn sustained(&self) -> bool {
        self.oversubscribed_ns == 0.0
    }

    /// Effective bandwidth expansion achieved (samples per word).
    pub fn bandwidth_expansion(&self) -> f64 {
        if self.words_fetched == 0 {
            f64::INFINITY
        } else {
            self.samples_streamed as f64 / self.words_fetched as f64
        }
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} instr, peak {} gates / {} banks, oversubscribed {:.0} ns of {:.0} ns, {:.2}x expansion",
            self.instructions,
            self.peak_concurrent_gates,
            self.peak_banks_demanded,
            self.oversubscribed_ns,
            self.makespan_ns,
            self.bandwidth_expansion()
        )
    }
}

/// A loaded controller: compressed waveform memory plus the waveform
/// table mapping gates to bank groups.
#[derive(Debug)]
pub struct Controller {
    config: ControllerConfig,
    memory: BankedMemory,
    table: HashMap<GateId, Residency>,
    engine: DecompressionEngine,
    streams: HashMap<GateId, CompressedWaveform>,
}

impl Controller {
    /// Compresses and loads a whole pulse library.
    ///
    /// # Errors
    ///
    /// Propagates compression errors; fails if the compressor's variant is
    /// not windowed (the streaming model needs fixed windows).
    pub fn load(
        config: ControllerConfig,
        library: &PulseLibrary,
        compressor: &Compressor,
    ) -> Result<Self, CompressError> {
        let ws = compressor.variant().window_size().ok_or(CompressError::UnsupportedWindow(0))?;
        let engine = DecompressionEngine::for_variant(compressor.variant())?;
        let mut memory = BankedMemory::new();
        let mut table = HashMap::new();
        let mut streams = HashMap::new();
        for (gate, wf) in library.iter() {
            let z = compressor.compress(wf)?;
            let (hi, hq) = memory.store(&z);
            let words = hi.banks.max(hq.banks);
            table.insert(
                gate.clone(),
                Residency {
                    i: hi,
                    q: hq,
                    n_samples: z.n_samples,
                    duration_ns: z.n_samples as f64 / z.sample_rate_gs,
                    banks_needed: 2 * banks_per_channel(config.clock_ratio, words, ws),
                },
            );
            streams.insert(gate.clone(), z);
        }
        Ok(Controller { config, memory, table, engine, streams })
    }

    /// The configuration.
    pub fn config(&self) -> ControllerConfig {
        self.config
    }

    /// Number of waveforms resident.
    pub fn waveform_count(&self) -> usize {
        self.table.len()
    }

    /// Total stored bits in the banked memory.
    pub fn stored_bits(&self) -> usize {
        self.memory.stored_bits()
    }

    /// Banks a gate's streaming occupies while active.
    ///
    /// # Panics
    ///
    /// Panics if the gate is not resident.
    pub fn banks_for(&self, gate: &GateId) -> usize {
        self.table[gate].banks_needed
    }

    /// Maximum gates of uniform bank cost `b` the controller can stream
    /// concurrently.
    pub fn concurrency_limit(&self, banks_per_gate: usize) -> usize {
        self.config.total_banks / banks_per_gate.max(1)
    }

    /// Plays an instruction stream: checks bank occupancy over time and
    /// streams every waveform through the decompression engine
    /// (bit-exactness is asserted upstream; here we account traffic).
    ///
    /// # Errors
    ///
    /// Returns an error if an instruction references a non-resident gate
    /// or a stream is malformed.
    pub fn play(&self, instructions: &[Instruction]) -> Result<RunReport, CompressError> {
        // Bank-occupancy sweep.
        let mut events: Vec<(f64, i64, i64)> = Vec::new();
        let mut report = RunReport { instructions: instructions.len(), ..RunReport::default() };
        for instr in instructions {
            let res =
                self.table.get(&instr.gate).ok_or(CompressError::UnsupportedWindow(usize::MAX))?;
            events.push((instr.start_ns, res.banks_needed as i64, 1));
            events.push((instr.start_ns + res.duration_ns, -(res.banks_needed as i64), -1));
            report.makespan_ns = report.makespan_ns.max(instr.start_ns + res.duration_ns);

            // Stream the waveform through the engine (traffic accounting).
            let z = &self.streams[&instr.gate];
            let mut stats = EngineStats::default();
            let _ = self.engine.decode_channel(&z.i, z.n_samples, &mut stats)?;
            let _ = self.engine.decode_channel(&z.q, z.n_samples, &mut stats)?;
            report.samples_streamed += stats.output_samples;
            report.words_fetched += stats.memory_words_read;
        }
        events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut banks = 0i64;
        let mut gates = 0i64;
        let mut last_t = 0.0;
        for (t, db, dg) in events {
            if banks > self.config.total_banks as i64 {
                report.oversubscribed_ns += t - last_t;
            }
            last_t = t;
            banks += db;
            gates += dg;
            report.peak_banks_demanded = report.peak_banks_demanded.max(banks.max(0) as usize);
            report.peak_concurrent_gates = report.peak_concurrent_gates.max(gates.max(0) as usize);
        }
        Ok(report)
    }
}

/// Converts a scheduled circuit (from `compaqt-quantum`'s ASAP scheduler,
/// or any `(gate, start)` list) into sequencer instructions against a
/// device's gate naming.
pub fn instructions_from_pairs(pairs: impl IntoIterator<Item = (GateId, f64)>) -> Vec<Instruction> {
    pairs.into_iter().map(|(gate, start_ns)| Instruction { gate, start_ns }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::Variant;
    use compaqt_pulse::device::Device;
    use compaqt_pulse::library::GateKind;
    use compaqt_pulse::vendor::Vendor;

    fn controller(ws: usize, cap: usize) -> (Controller, PulseLibrary) {
        let device = Device::synthesize(Vendor::Ibm, 5, 0x5EC);
        let lib = (*device.pulse_library()).clone();
        let compressor = Compressor::new(Variant::IntDctW { ws }).with_max_window_words(cap);
        let c = Controller::load(
            ControllerConfig { total_banks: 1152, clock_ratio: 16, window: ws },
            &lib,
            &compressor,
        )
        .unwrap();
        (c, lib)
    }

    #[test]
    fn library_loads_and_is_resident() {
        let (c, lib) = controller(16, 3);
        assert_eq!(c.waveform_count(), lib.len());
        assert!(c.stored_bits() > 0);
    }

    #[test]
    fn compressed_gates_need_three_banks_per_channel() {
        let (c, lib) = controller(16, 3);
        let (gate, _) = lib.iter().next().unwrap();
        // WS=16, worst 3 words, ratio 16 -> 3 banks per channel, 2 channels.
        assert_eq!(c.banks_for(gate), 6);
    }

    #[test]
    fn concurrent_x_gates_fit_within_budget() {
        let (c, lib) = controller(16, 3);
        // Fire X on every qubit simultaneously.
        let instrs: Vec<Instruction> = lib
            .of_kind(&GateKind::X)
            .map(|(gate, _)| Instruction { gate: gate.clone(), start_ns: 0.0 })
            .collect();
        let report = c.play(&instrs).unwrap();
        assert_eq!(report.peak_concurrent_gates, 5);
        assert!(report.sustained());
        assert!(report.bandwidth_expansion() > 3.0);
    }

    #[test]
    fn oversubscription_is_detected() {
        // A tiny controller that can stream only one gate at a time.
        let device = Device::synthesize(Vendor::Ibm, 3, 0x0B5);
        let lib = (*device.pulse_library()).clone();
        let compressor = Compressor::new(Variant::IntDctW { ws: 16 }).with_max_window_words(3);
        let c = Controller::load(
            ControllerConfig { total_banks: 6, clock_ratio: 16, window: 16 },
            &lib,
            &compressor,
        )
        .unwrap();
        let instrs: Vec<Instruction> = lib
            .of_kind(&GateKind::X)
            .map(|(gate, _)| Instruction { gate: gate.clone(), start_ns: 0.0 })
            .collect();
        let report = c.play(&instrs).unwrap();
        assert!(!report.sustained(), "3 concurrent gates cannot fit in 6 banks");
        assert!(report.oversubscribed_ns > 0.0);
    }

    #[test]
    fn serial_gates_never_oversubscribe() {
        let (c, lib) = controller(16, 3);
        let mut t = 0.0;
        let mut instrs = Vec::new();
        for (gate, wf) in lib.of_kind(&GateKind::X) {
            instrs.push(Instruction { gate: gate.clone(), start_ns: t });
            t += wf.duration_ns() + 1.0;
        }
        let report = c.play(&instrs).unwrap();
        assert_eq!(report.peak_concurrent_gates, 1);
        assert!(report.sustained());
    }

    #[test]
    fn unknown_gate_is_an_error() {
        let (c, _) = controller(16, 3);
        let bogus = Instruction {
            gate: GateId::single(GateKind::Custom("nope".into()), 99),
            start_ns: 0.0,
        };
        assert!(c.play(&[bogus]).is_err());
    }

    #[test]
    fn instructions_from_pairs_preserves_order_and_times() {
        let pairs =
            vec![(GateId::single(GateKind::X, 0), 0.0), (GateId::single(GateKind::Sx, 1), 30.0)];
        let instrs = instructions_from_pairs(pairs);
        assert_eq!(instrs.len(), 2);
        assert_eq!(instrs[0].start_ns, 0.0);
        assert_eq!(instrs[1].start_ns, 30.0);
        assert_eq!(instrs[1].gate, GateId::single(GateKind::Sx, 1));
    }

    #[test]
    fn play_reports_traffic_for_every_instruction() {
        let (c, lib) = controller(16, 3);
        let (gate, wf) = lib.iter().next().unwrap();
        let instrs = vec![
            Instruction { gate: gate.clone(), start_ns: 0.0 },
            Instruction { gate: gate.clone(), start_ns: 1000.0 },
        ];
        let report = c.play(&instrs).unwrap();
        assert_eq!(report.instructions, 2);
        assert_eq!(report.samples_streamed, 2 * 2 * wf.len());
        assert!(report.words_fetched > 0);
    }

    #[test]
    fn concurrency_limit_matches_table_v() {
        let (c, _) = controller(16, 3);
        // 1152 banks / 6 banks-per-gate = 192 concurrent 1Q gates.
        assert_eq!(c.concurrency_limit(6), 192);
        // Uncompressed: 32 banks per gate -> 36.
        assert_eq!(c.concurrency_limit(32), 36);
    }
}
