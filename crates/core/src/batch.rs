//! Parallel batch compilation and decode of whole pulse libraries.
//!
//! A calibration cycle ends with every waveform of a 100+ qubit machine
//! being recompressed and packed into the controller memory image
//! (Figure 6). The per-waveform codec is embarrassingly parallel — each
//! waveform (and within it, each I/Q channel) compresses and decodes
//! independently — so this module fans the library out across a rayon
//! thread pool:
//!
//! * [`compress_waveforms`] / [`compress_library_par`] — the compile
//!   side; `compress_library_par` is the drop-in parallel twin of
//!   [`crate::stats::compress_library`], producing an identical
//!   [`LibraryReport`] (same order, same numbers — the codec is
//!   deterministic, so parallelism cannot change results). Workers carry
//!   a private [`EncodeScratch`] (cached transform plans + staging), so
//!   per-window compression work allocates nothing; only the compressed
//!   streams each worker returns are allocated.
//! * [`decompress_library`] / [`decompress_library_par`] — the decode
//!   side, built on the zero-allocation engine path: workers share one
//!   `&self` engine per variant and carry a private [`DecodeScratch`]
//!   plus reusable output buffers (`map_init`), so each worker allocates
//!   only the final sample vectors it returns. The parallel variant fans
//!   out per waveform x per channel.
//!
//! The memory-image builders ([`crate::bitstream::compress_image`] /
//! [`crate::bitstream::compress_image_par`]) sit on top of this module's
//! sequential and parallel compile paths.
//!
//! # `_par` on small machines: the sequential fallback
//!
//! Every `_par` entry point degrades to its sequential twin when only
//! one worker would run (`available_parallelism() == 1`, or
//! `RAYON_NUM_THREADS=1`): spawning "parallel" workers that time-slice a
//! single core only adds thread spawn/join overhead and per-item buffer
//! churn on top of identical arithmetic. The fallback is observable only
//! in timing — the codec is deterministic, so both paths produce
//! bit-identical results (the round-trip suites assert `==`) — and it
//! closes the regression where `decode_library_par` trailed
//! `decode_library_seq` on the 1-vCPU CI container. When comparing
//! `_seq` and `_par` rows of `BENCH_codec.json`, remember the committed
//! baseline comes from that container: with the fallback both rows
//! measure the same sequential loop there, and near-linear scaling is
//! only observable on a box whose workers have real cores to land on.

use crate::compress::{CompressedWaveform, Compressor};
use crate::engine::{DecodeScratch, DecompressionEngine, EncodeScratch, EngineStats};
use crate::stats::{LibraryReport, WaveformReport};
use crate::CompressError;
use compaqt_pulse::library::PulseLibrary;
use compaqt_pulse::waveform::Waveform;
use rayon::prelude::*;

/// `true` when a `_par` entry point should skip the thread fan-out and
/// run its sequential twin instead: with a single worker, parallelism
/// buys nothing and the spawn/join overhead is a pure regression (the
/// 1-vCPU CI container measured `decode_library_par` *slower* than the
/// sequential decode before this guard existed).
fn fan_out_is_useless(workers: usize) -> bool {
    workers <= 1
}

/// Compresses a batch of waveforms in parallel, preserving order.
///
/// On a single-worker host this degrades to the sequential
/// scratch-reuse loop (see the module docs); results are bit-identical
/// either way.
///
/// # Errors
///
/// Returns the first compression error (none occur for supported window
/// sizes).
pub fn compress_waveforms(
    waveforms: &[Waveform],
    compressor: &Compressor,
) -> Result<Vec<CompressedWaveform>, CompressError> {
    if fan_out_is_useless(rayon::current_num_threads()) {
        let mut enc = EncodeScratch::new();
        let mut out = Vec::with_capacity(waveforms.len());
        for wf in waveforms {
            let mut z = CompressedWaveform::empty();
            compressor.compress_into(wf, &mut enc, &mut z)?;
            out.push(z);
        }
        return Ok(out);
    }
    waveforms
        .par_iter()
        .map_init(EncodeScratch::new, |enc, wf| {
            let mut z = CompressedWaveform::empty();
            compressor.compress_into(wf, enc, &mut z)?;
            Ok(z)
        })
        .collect()
}

/// Parallel twin of [`crate::stats::compress_library`]: compresses every
/// waveform of a library across worker threads and aggregates the same
/// [`LibraryReport`] (library order, identical numbers).
///
/// Each worker verifies its own streams through the zero-allocation
/// decode path with a thread-private scratch, so the reconstruction-MSE
/// accounting adds no per-window allocations. On a single-worker host
/// this is literally [`crate::stats::compress_library`] (sequential
/// fallback, identical report).
///
/// # Errors
///
/// Propagates the first compression or decode error.
pub fn compress_library_par(
    library: &PulseLibrary,
    compressor: &Compressor,
) -> Result<LibraryReport, CompressError> {
    if fan_out_is_useless(rayon::current_num_threads()) {
        return crate::stats::compress_library(library, compressor);
    }
    let engine = DecompressionEngine::for_variant(compressor.variant())?;
    let entries: Vec<_> = library.iter().collect();
    let engine = &engine;
    let reports: Result<Vec<WaveformReport>, CompressError> = entries
        .par_iter()
        .map_init(
            || (EncodeScratch::new(), DecodeScratch::new(), Vec::new(), Vec::new()),
            |(enc, scratch, i_buf, q_buf), &(gate, wf)| {
                let mut compressed = CompressedWaveform::empty();
                compressor.compress_into(wf, enc, &mut compressed)?;
                engine.decompress_into(&compressed, scratch, i_buf, q_buf)?;
                let mse = (compaqt_dsp::metrics::mse(wf.i(), i_buf)
                    + compaqt_dsp::metrics::mse(wf.q(), q_buf))
                    / 2.0;
                Ok(WaveformReport {
                    gate: gate.clone(),
                    ratio: compressed.ratio().ratio(),
                    mse,
                    worst_case_window_words: compressed.worst_case_window_words(),
                    compressed,
                })
            },
        )
        .collect();
    let waveforms = reports?;
    let overall = waveforms
        .iter()
        .map(|w| w.compressed.ratio())
        .reduce(|acc, r| acc.combine(&r))
        .expect("library must be non-empty");
    Ok(LibraryReport { waveforms, overall })
}

/// Sequentially decodes a batch of compressed waveforms through one
/// reused scratch (the steady-state zero-allocation loop: after the
/// first waveform, only the returned sample vectors are allocated).
/// Returns the waveforms plus aggregate engine stats.
///
/// # Errors
///
/// Returns the first malformed-stream error.
pub fn decompress_library(
    compressed: &[CompressedWaveform],
) -> Result<(Vec<Waveform>, EngineStats), CompressError> {
    let engines = engines_for(compressed)?;
    let mut scratch = DecodeScratch::new();
    let (mut i_buf, mut q_buf) = (Vec::new(), Vec::new());
    let mut stats = EngineStats::default();
    let mut out = Vec::with_capacity(compressed.len());
    for z in compressed {
        let engine = engine_of(&engines, z);
        let s = engine.decompress_into(z, &mut scratch, &mut i_buf, &mut q_buf)?;
        stats.merge(&s);
        out.push(crate::engine::checked_waveform(
            &z.name,
            i_buf.clone(),
            q_buf.clone(),
            z.sample_rate_gs,
        )?);
    }
    Ok((out, stats))
}

/// Parallel decode of a compressed batch with per-waveform x per-channel
/// fan-out: every (waveform, channel) pair is an independent work item,
/// so a two-channel library saturates twice as many workers as waveforms.
/// Engines are shared `&self` across threads; scratch is per worker.
/// Bit-exact with [`decompress_library`], which it becomes outright on a
/// single-worker host (sequential fallback).
///
/// # Errors
///
/// Returns the first malformed-stream error.
pub fn decompress_library_par(
    compressed: &[CompressedWaveform],
) -> Result<(Vec<Waveform>, EngineStats), CompressError> {
    if fan_out_is_useless(rayon::current_num_threads()) {
        return decompress_library(compressed);
    }
    let engines = engines_for(compressed)?;
    let engines = &engines;
    // Work item k decodes channel k % 2 of waveform k / 2.
    let items: Vec<usize> = (0..2 * compressed.len()).collect();
    let channels: Result<Vec<(Vec<f64>, EngineStats)>, CompressError> = items
        .par_iter()
        .map_init(DecodeScratch::new, |scratch, &k| {
            let z = &compressed[k / 2];
            let channel = if k % 2 == 0 { &z.i } else { &z.q };
            let engine = engine_of(engines, z);
            let mut out = Vec::new();
            let mut stats = EngineStats::default();
            engine.decode_channel_into(channel, z.n_samples, scratch, &mut out, &mut stats)?;
            Ok((out, stats))
        })
        .collect();
    let mut channels = channels?;
    let mut stats = EngineStats::default();
    let mut out = Vec::with_capacity(compressed.len());
    for (z, pair) in compressed.iter().zip(channels.chunks_exact_mut(2)) {
        stats.merge(&pair[0].1);
        stats.merge(&pair[1].1);
        let i = std::mem::take(&mut pair[0].0);
        let q = std::mem::take(&mut pair[1].0);
        // Same hostile-stream guards as the single-waveform path:
        // per-channel decodes can diverge on corrupted input, and
        // Waveform::new must never see them (or a bogus rate) raw.
        out.push(crate::engine::checked_waveform(&z.name, i, q, z.sample_rate_gs)?);
    }
    Ok((out, stats))
}

/// Builds one shared engine per distinct variant in the batch.
fn engines_for(
    compressed: &[CompressedWaveform],
) -> Result<Vec<(crate::compress::Variant, DecompressionEngine)>, CompressError> {
    let mut engines: Vec<(crate::compress::Variant, DecompressionEngine)> = Vec::new();
    for z in compressed {
        if !engines.iter().any(|(v, _)| *v == z.variant) {
            engines.push((z.variant, DecompressionEngine::for_variant(z.variant)?));
        }
    }
    Ok(engines)
}

fn engine_of<'e>(
    engines: &'e [(crate::compress::Variant, DecompressionEngine)],
    z: &CompressedWaveform,
) -> &'e DecompressionEngine {
    &engines.iter().find(|(v, _)| *v == z.variant).expect("engine prebuilt per variant").1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::Variant;
    use crate::stats::compress_library;
    use compaqt_pulse::device::Device;
    use compaqt_pulse::vendor::Vendor;

    fn library() -> std::sync::Arc<PulseLibrary> {
        Device::synthesize(Vendor::Ibm, 4, 0xBA7C4).pulse_library()
    }

    #[test]
    fn parallel_report_matches_sequential_exactly() {
        let lib = library();
        let c = Compressor::new(Variant::IntDctW { ws: 16 });
        let seq = compress_library(&lib, &c).unwrap();
        let par = compress_library_par(&lib, &c).unwrap();
        assert_eq!(seq.waveforms.len(), par.waveforms.len());
        assert_eq!(seq.overall.ratio(), par.overall.ratio());
        for (a, b) in seq.waveforms.iter().zip(&par.waveforms) {
            assert_eq!(a.gate, b.gate, "library order must be preserved");
            assert_eq!(a.compressed, b.compressed);
            assert_eq!(a.mse, b.mse, "{}: mse must be bit-identical", a.gate);
        }
    }

    #[test]
    fn parallel_decode_matches_sequential_exactly() {
        let lib = library();
        let c = Compressor::new(Variant::IntDctW { ws: 16 });
        let zs: Vec<CompressedWaveform> =
            lib.iter().map(|(_, wf)| c.compress(wf).unwrap()).collect();
        let (seq, seq_stats) = decompress_library(&zs).unwrap();
        let (par, par_stats) = decompress_library_par(&zs).unwrap();
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.i(), b.i());
            assert_eq!(a.q(), b.q());
        }
        assert_eq!(seq_stats, par_stats);
    }

    #[test]
    fn mixed_variant_batches_decode() {
        let lib = library();
        let mut zs = Vec::new();
        for (k, (_, wf)) in lib.iter().enumerate() {
            let variant = if k % 2 == 0 { Variant::IntDctW { ws: 16 } } else { Variant::DctN };
            zs.push(Compressor::new(variant).compress(wf).unwrap());
        }
        let (out, stats) = decompress_library_par(&zs).unwrap();
        assert_eq!(out.len(), zs.len());
        assert!(stats.output_samples > 0);
        for (z, wf) in zs.iter().zip(&out) {
            assert_eq!(wf.len(), z.n_samples);
        }
    }

    #[test]
    fn compress_waveforms_preserves_order() {
        let lib = library();
        let wfs: Vec<Waveform> = lib.iter().map(|(_, wf)| wf.clone()).collect();
        let c = Compressor::new(Variant::IntDctW { ws: 8 });
        let batch = compress_waveforms(&wfs, &c).unwrap();
        for (wf, z) in wfs.iter().zip(&batch) {
            assert_eq!(&c.compress(wf).unwrap(), z);
        }
    }

    #[test]
    fn unsupported_variant_errors_cleanly() {
        let lib = library();
        let c = Compressor::new(Variant::IntDctW { ws: 12 });
        assert!(compress_library_par(&lib, &c).is_err());
    }

    #[test]
    fn fan_out_guard_trips_only_on_a_single_worker() {
        // The sequential fallback must engage exactly when one worker
        // would run — the case where thread spawn/join is pure overhead.
        assert!(fan_out_is_useless(0));
        assert!(fan_out_is_useless(1));
        assert!(!fan_out_is_useless(2));
        assert!(!fan_out_is_useless(64));
    }
}
