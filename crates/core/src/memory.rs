//! Banked compressed waveform memory (Section V-C, Figure 12).
//!
//! FPGA block RAMs are clocked far slower than the DACs (16x on QICK), so
//! waveform samples must be interleaved across multiple BRAMs to sustain
//! the DAC rate. Compression shrinks the number of words needed per window
//! to a small worst case (<= 3 for `int-DCT-W`, Figure 11), so far fewer
//! banks are needed per qubit — which is exactly where the 2.66x/5.33x
//! qubit-count gains of Table V come from.
//!
//! For hardware simplicity the compressed memory is uniform-width: every
//! window occupies the worst-case word count, sacrificing a little
//! compressibility for a simple address generator (Section V-A).

use crate::compress::{ChannelData, CompressedWaveform};
use compaqt_dsp::rle::CodedWord;
use serde::{Deserialize, Serialize};

/// Capacity of one BRAM in bits (Xilinx RAMB36).
pub const BRAM_BITS: usize = 36 * 1024;

/// A handle to one stored channel inside the banked memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelHandle {
    /// Index of the first bank of this channel's bank group.
    pub first_bank: usize,
    /// Number of banks the channel is striped across (= uniform window
    /// width in words).
    pub banks: usize,
    /// Starting row within the bank group.
    pub first_row: usize,
    /// Number of windows stored.
    pub windows: usize,
}

/// A banked, uniform-width compressed waveform memory.
///
/// Words of window `w` are striped across the bank group one word per
/// bank, so a whole window is fetched in a single FPGA cycle
/// (Figure 12b/c).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BankedMemory {
    banks: Vec<Vec<u16>>,
}

impl BankedMemory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        BankedMemory::default()
    }

    /// Number of banks allocated so far.
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// Total stored bits.
    pub fn stored_bits(&self) -> usize {
        self.banks.iter().map(|b| b.len() * 16).sum()
    }

    /// Number of physical BRAMs this memory maps onto (each bank uses at
    /// least one BRAM; deep banks use several).
    pub fn brams_used(&self) -> usize {
        self.banks.iter().map(|b| (b.len() * 16).div_ceil(BRAM_BITS).max(1)).sum()
    }

    /// Stores one compressed channel at uniform (worst-case) window width.
    ///
    /// Returns the handle for streaming. Windows shorter than the uniform
    /// width are padded with zero-run codewords of length 0, which the
    /// decoder treats as no-ops (the Figure 12c "zero" inputs).
    ///
    /// # Panics
    ///
    /// Panics if the channel is not window-structured (delta/raw channels
    /// use the plain sequential memory path, not the banked layout).
    pub fn store_channel(&mut self, channel: &ChannelData) -> ChannelHandle {
        let windows = match channel {
            ChannelData::Windows(w) => w,
            _ => panic!("banked memory stores windowed channels"),
        };
        let width = windows.iter().map(Vec::len).max().unwrap_or(1).max(1);
        let first_bank = self.banks.len();
        self.banks.extend(std::iter::repeat_with(Vec::new).take(width));
        let first_row = 0;
        for win in windows {
            for k in 0..width {
                let word = win
                    .get(k)
                    .copied()
                    .unwrap_or(CodedWord::Rle(compaqt_dsp::rle::RleCodeword {
                        run: 0,
                        repeat_previous: false,
                    }))
                    .pack();
                self.banks[first_bank + k].push(word);
            }
        }
        ChannelHandle { first_bank, banks: width, first_row, windows: windows.len() }
    }

    /// Stores both channels of a compressed waveform, returning
    /// `(i_handle, q_handle)`.
    pub fn store(&mut self, z: &CompressedWaveform) -> (ChannelHandle, ChannelHandle) {
        (self.store_channel(&z.i), self.store_channel(&z.q))
    }

    /// Fetches one whole window (all banks in parallel — one FPGA cycle).
    ///
    /// # Panics
    ///
    /// Panics if the handle or window index is out of range.
    pub fn read_window(&self, handle: ChannelHandle, window: usize) -> Vec<CodedWord> {
        assert!(window < handle.windows, "window index out of range");
        (0..handle.banks)
            .map(|k| {
                CodedWord::unpack(self.banks[handle.first_bank + k][handle.first_row + window])
            })
            .collect()
    }

    /// Reconstructs the coded word lists for a stored channel (dropping
    /// the uniform-width padding no-ops).
    pub fn load_channel(&self, handle: ChannelHandle) -> ChannelData {
        let mut windows = Vec::with_capacity(handle.windows);
        for w in 0..handle.windows {
            let mut words = self.read_window(handle, w);
            // Drop trailing zero-length run pads.
            while let Some(CodedWord::Rle(cw)) = words.last() {
                if cw.run == 0 && !cw.repeat_previous {
                    words.pop();
                } else {
                    break;
                }
            }
            windows.push(words);
        }
        ChannelData::Windows(windows)
    }
}

/// Number of memory banks a qubit's channel needs so the FPGA can feed the
/// DAC at full rate: `ceil(clock_ratio * words_per_window / window)`
/// (Section V-C). The uncompressed case is `words_per_window == window`,
/// giving `clock_ratio` banks.
pub fn banks_per_channel(clock_ratio: usize, words_per_window: usize, window: usize) -> usize {
    assert!(window > 0, "window must be positive");
    (clock_ratio * words_per_window).div_ceil(window)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::{Compressor, Variant};
    use compaqt_pulse::shapes::{Drag, PulseShape};

    fn compressed() -> CompressedWaveform {
        let wf = Drag::new(136, 0.5, 34.0, 0.2).to_waveform("X(q0)", 4.54);
        Compressor::new(Variant::IntDctW { ws: 16 }).compress(&wf).unwrap()
    }

    #[test]
    fn store_load_round_trips_stream() {
        let z = compressed();
        let mut mem = BankedMemory::new();
        let (hi, hq) = mem.store(&z);
        let li = mem.load_channel(hi);
        let lq = mem.load_channel(hq);
        // Loading drops uniform-width padding; decoding must still agree.
        let engine = crate::engine::DecompressionEngine::for_variant(z.variant).unwrap();
        let mut s1 = crate::engine::EngineStats::default();
        let mut s2 = crate::engine::EngineStats::default();
        let direct = engine.decode_channel(&z.i, z.n_samples, &mut s1).unwrap();
        let banked = engine.decode_channel(&li, z.n_samples, &mut s2).unwrap();
        assert_eq!(direct, banked);
        let direct_q = engine.decode_channel(&z.q, z.n_samples, &mut s1).unwrap();
        let banked_q = engine.decode_channel(&lq, z.n_samples, &mut s2).unwrap();
        assert_eq!(direct_q, banked_q);
    }

    #[test]
    fn uniform_width_equals_worst_case() {
        let z = compressed();
        let mut mem = BankedMemory::new();
        let (hi, _) = mem.store(&z);
        let worst = z.i.window_word_counts().into_iter().max().unwrap();
        assert_eq!(hi.banks, worst);
    }

    #[test]
    fn window_fetch_is_one_word_per_bank() {
        let z = compressed();
        let mut mem = BankedMemory::new();
        let (hi, _) = mem.store(&z);
        let words = mem.read_window(hi, 0);
        assert_eq!(words.len(), hi.banks);
    }

    #[test]
    fn banks_formula_matches_table_v() {
        // QICK ratio 16: uncompressed needs 16 banks/channel; WS=8 with a
        // 3-word worst case needs 6; WS=16 needs 3 (Section V-C).
        assert_eq!(banks_per_channel(16, 8, 8), 16);
        assert_eq!(banks_per_channel(16, 16, 16), 16);
        assert_eq!(banks_per_channel(16, 3, 8), 6);
        assert_eq!(banks_per_channel(16, 3, 16), 3);
        // Non-multiple ratios lose a little (Section V-C's 6x example:
        // 2x gain instead of 2.66x).
        assert_eq!(banks_per_channel(6, 3, 8), 3);
    }

    #[test]
    fn stored_bits_track_uniform_width() {
        let z = compressed();
        let mut mem = BankedMemory::new();
        let _hi = mem.store_channel(&z.i);
        let windows = z.i.window_word_counts().len();
        let worst: usize = z.i.window_word_counts().into_iter().max().unwrap();
        assert_eq!(mem.stored_bits(), windows * worst * 16);
    }

    #[test]
    #[should_panic(expected = "windowed")]
    fn raw_channels_are_rejected() {
        let mut mem = BankedMemory::new();
        mem.store_channel(&ChannelData::Raw(vec![0, 1, 2]));
    }

    #[test]
    fn brams_used_is_at_least_bank_count() {
        let z = compressed();
        let mut mem = BankedMemory::new();
        mem.store(&z);
        assert!(mem.brams_used() >= mem.bank_count());
    }
}
